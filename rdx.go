// Package rdx is the public API of the RDX reproduction: featherlight
// reuse-distance measurement via hardware-counter sampling and debug
// registers (Wang, Liu, Chabbi — HPCA 2019), together with the simulated
// CPU substrate, exhaustive ground-truth measurement, synthetic SPEC-
// CPU2017-style workloads and cache-analysis helpers the evaluation uses.
//
// # Quick start
//
//	stream, _ := rdx.Workload("mcf", 1, 10_000_000) // or any rdx.Reader
//	result, err := rdx.New().Profile(ctx, stream)
//	if err != nil { ... }
//	fmt.Println(result.ReuseDistance) // log2 reuse-distance histogram
//
// New builds a Session; Profile runs the stream on a simulated core
// whose PMU samples memory accesses and whose debug registers catch the
// reuses — no access is instrumented. Options select everything else
// while keeping results bit-identical:
//
//	rdx.New(rdx.WithConfig(cfg))                     // custom operating point
//	rdx.New(rdx.WithRemote("host:9090"))             // profile on an rdxd daemon
//	rdx.New(rdx.WithRemote("host:9090"),
//	        rdx.WithRetry(rdx.RetryPolicy{}))        // + reconnect/resume fault tolerance
//	rdx.New(rdx.WithRemote("a:9090,b:9090,c:9090"))  // shard threads across a fleet
//
// Session.ProfileThreads profiles multithreaded programs (one stream
// per thread, merged program-level histograms); with several remotes
// the streams shard across the backends with health-checked failover.
// Exact measures a stream exhaustively (Olken's algorithm) for ground
// truth; Accuracy compares the two histograms the way the paper does.
//
// The package-level Profile* functions are the deprecated pre-Session
// forms; they delegate to the options API and return bit-identical
// results.
package rdx

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/mrc"
	"repro/internal/trace"
	"repro/internal/wire"
	"repro/internal/workloads"
)

// Core vocabulary, re-exported from the internal packages so downstream
// code needs only this import.
type (
	// Addr is a virtual byte address.
	Addr = mem.Addr
	// Access is one dynamic memory access.
	Access = mem.Access
	// Kind distinguishes loads from stores.
	Kind = mem.Kind
	// Granularity is the power-of-two block size of measurement.
	Granularity = mem.Granularity
	// Reader is a stream of memory accesses (the profiled "program").
	Reader = trace.Reader
	// Histogram is a weighted log2 histogram of distances or times.
	Histogram = histogram.Histogram
	// Config configures the RDX profiler.
	Config = core.Config
	// Result is the output of one profiling session.
	Result = core.Result
	// ReplacementPolicy selects watchpoint replacement behaviour.
	ReplacementPolicy = core.ReplacementPolicy
	// PairKey identifies a use→reuse pair of code sites.
	PairKey = core.PairKey
	// PairStat aggregates the reuses carried by one code pair.
	PairStat = core.PairStat
	// Attribution is the per-code-pair breakdown of a profile.
	Attribution = core.Attribution
	// MultiResult is the merged outcome of profiling several threads.
	MultiResult = core.MultiResult
	// Costs is the cycle-cost model used for overhead accounting.
	Costs = cpumodel.Costs
)

// Access kinds.
const (
	Load  = mem.Load
	Store = mem.Store
)

// Measurement granularities.
const (
	ByteGranularity = mem.ByteGranularity
	WordGranularity = mem.WordGranularity
	LineGranularity = mem.LineGranularity
)

// Watchpoint replacement policies.
const (
	ReplaceProbabilistic = core.ReplaceProbabilistic
	ReplaceReservoir     = core.ReplaceReservoir
	ReplaceAlways        = core.ReplaceAlways
	ReplaceNever         = core.ReplaceNever
	ReplaceHybrid        = core.ReplaceHybrid
)

// Infinite is the reuse distance recorded for cold (first-touch)
// accesses.
const Infinite = histogram.Infinite

// DefaultConfig returns the paper-style featherlight operating point:
// 64K mean sampling period, 4 watchpoints, word granularity,
// probabilistic replacement with censored-observation redistribution,
// footprint conversion on.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultCosts returns the calibrated cycle-cost table used for modelled
// overhead accounting.
func DefaultCosts() Costs { return cpumodel.Default() }

// Profile measures the reuse-distance histogram of an access stream with
// RDX: PMU sampling plus debug-register watchpoints on a simulated core,
// with zero instrumentation of the stream itself.
//
// Deprecated: use New(WithConfig(cfg)).Profile(ctx, r). This wrapper
// delegates there and returns a bit-identical result.
func Profile(r Reader, cfg Config) (*Result, error) {
	return New(WithConfig(cfg)).Profile(context.Background(), r)
}

// ProfileWithCosts is Profile with a caller-supplied cycle-cost table
// (for overhead studies).
//
// Deprecated: use New(WithConfig(cfg), WithCosts(costs)).Profile(ctx, r).
func ProfileWithCosts(r Reader, cfg Config, costs Costs) (*Result, error) {
	return New(WithConfig(cfg), WithCosts(costs)).Profile(context.Background(), r)
}

// Remote profiling against an rdxd daemon (cmd/rdxd). A remote session
// streams the access batches over the wire protocol and returns a
// result bit-identical to Profile on the same stream and config.
type (
	// RemoteResult is the serializable profile an rdxd daemon returns:
	// the same histograms, counters and attribution as Result, in
	// wire/JSON form.
	RemoteResult = wire.Result
	// RemoteOptions tunes a remote session (batch size, live-snapshot
	// cadence).
	RemoteOptions = wire.ProfileOptions
	// RetryPolicy tunes ProfileRemoteResilient's fault handling:
	// attempts, backoff, per-RPC timeouts, sync cadence.
	RetryPolicy = wire.RetryPolicy
)

// ProfileRemote profiles an access stream on an rdxd daemon at addr
// instead of in-process. The daemon runs the identical engine, so the
// returned profile is bit-identical to Profile(r, cfg) locally; use it
// to move profiling load off the measuring host or to watch live
// snapshots of a long run (RemoteOptions.OnSnapshot). The ctx bounds
// connection establishment; for cancellation and timeouts covering the
// whole session, use ProfileRemoteResilient.
//
// Deprecated: use
// New(WithConfig(cfg), WithRemote(addr), WithRemoteOptions(opts)).Profile(ctx, r),
// which returns the in-memory Result form directly (convert with
// ResultToRemote if the wire form is needed).
func ProfileRemote(ctx context.Context, addr string, r Reader, cfg Config, opts RemoteOptions) (*RemoteResult, error) {
	res, err := New(WithConfig(cfg), WithRemote(addr), WithRemoteOptions(opts)).Profile(ctx, r)
	if err != nil {
		return nil, err
	}
	return ResultToRemote(res), nil
}

// ProfileRemoteResilient is ProfileRemote with fault tolerance: the
// session transparently reconnects with exponential backoff, resumes
// from the daemon's checkpoint, and replays unacknowledged batches —
// surviving connection drops, corrupted frames, and even a daemon
// restart (when rdxd runs with -checkpoint-dir). The result is still
// bit-identical to the local Profile.
//
// Deprecated: use
// New(WithConfig(cfg), WithRemote(addr), WithRemoteOptions(opts), WithRetry(policy)).Profile(ctx, r).
func ProfileRemoteResilient(ctx context.Context, addr string, r Reader, cfg Config, opts RemoteOptions, policy RetryPolicy) (*RemoteResult, error) {
	res, err := New(WithConfig(cfg), WithRemote(addr), WithRemoteOptions(opts), WithRetry(policy)).Profile(ctx, r)
	if err != nil {
		return nil, err
	}
	return ResultToRemote(res), nil
}

// ResultToRemote converts a locally produced Result into the wire form,
// so local and remote profiles can share reporting code.
func ResultToRemote(res *Result) *RemoteResult { return wire.FromCore(res, true) }

// ProfileThreads profiles each stream as one thread of a multithreaded
// program — per-thread PMU and debug-register contexts, merged
// program-level histograms and attribution. Reuses crossing threads are
// not observed (per-thread hardware contexts), matching the real tool's
// behaviour.
//
// Deprecated: use New(WithConfig(cfg)).ProfileThreads(ctx, streams).
func ProfileThreads(streams []Reader, cfg Config) (*MultiResult, error) {
	return New(WithConfig(cfg)).ProfileThreads(context.Background(), streams)
}

// ProfileThreadsPool is ProfileThreads with an explicit worker-pool
// size: at most `workers` streams simulate concurrently (workers <= 0
// selects GOMAXPROCS), so thousands of streams can be profiled without
// a goroutine per stream. Results are independent of the pool size.
//
// Deprecated: use
// New(WithConfig(cfg), WithWorkers(workers)).ProfileThreads(ctx, streams).
func ProfileThreadsPool(streams []Reader, cfg Config, workers int) (*MultiResult, error) {
	return New(WithConfig(cfg), WithWorkers(workers)).ProfileThreads(context.Background(), streams)
}

// ExactResult is the ground-truth measurement of a stream.
type ExactResult struct {
	// ReuseDistance and ReuseTime are the exact histograms.
	ReuseDistance *Histogram
	ReuseTime     *Histogram
	// Accesses is the stream length; DistinctBlocks its footprint.
	Accesses       uint64
	DistinctBlocks uint64
	// StateBytes is the profiler state the exhaustive approach had to
	// hold (the "memory bloat" RDX avoids).
	StateBytes uint64
}

// Exact measures a stream exhaustively with Olken's algorithm — the
// ground truth RDX is evaluated against, at the classic
// instrument-every-access cost.
func Exact(r Reader, g Granularity) (*ExactResult, error) {
	p, err := exact.Measure(r, g)
	if err != nil {
		return nil, fmt.Errorf("rdx: exact measurement: %w", err)
	}
	return &ExactResult{
		ReuseDistance:  p.ReuseDistance(),
		ReuseTime:      p.ReuseTime(),
		Accesses:       p.Accesses(),
		DistinctBlocks: p.DistinctBlocks(),
		StateBytes:     p.StateBytes(),
	}, nil
}

// ExactParallel is Exact fanned out over contiguous trace shards on a
// bounded worker pool (workers <= 0 selects GOMAXPROCS) with an exact
// sequential merge: the histograms are bit-identical to Exact's for any
// worker count, but multi-billion-access traces measure at multicore
// speed.
func ExactParallel(r Reader, g Granularity, workers int) (*ExactResult, error) {
	p, err := exact.MeasureParallel(r, g, exact.ParallelOptions{Workers: workers})
	if err != nil {
		return nil, fmt.Errorf("rdx: exact measurement: %w", err)
	}
	return &ExactResult{
		ReuseDistance:  p.ReuseDistance(),
		ReuseTime:      p.ReuseTime(),
		Accesses:       p.Accesses(),
		DistinctBlocks: p.DistinctBlocks(),
		StateBytes:     p.StateBytes(),
	}, nil
}

// Accuracy compares two reuse histograms as the paper does: one minus
// the total-variation distance of the normalized distributions (1.0 =
// identical shapes).
func Accuracy(a, b *Histogram) float64 { return histogram.Accuracy(a, b) }

// Workload builds the access stream of one named SPEC-CPU2017-style
// suite benchmark (see WorkloadNames), with exactly n accesses.
func Workload(name string, seed, n uint64) (Reader, error) {
	return workloads.Build(name, seed, n)
}

// WorkloadNames lists the benchmark suite.
func WorkloadNames() []string { return workloads.Names() }

// PredictMissRatio predicts the miss ratio of a fully associative LRU
// cache of capacity `blocks` (in measurement-granularity blocks) from a
// reuse-distance histogram.
//
// Deprecated: this is the single point a MissRatioCurve samples; use
// Result.MissRatioCurve / Session.MissRatio for the whole curve, or
// Result.PredictCache for set-associative and multi-level predictions.
// This wrapper delegates to the curve primitive and returns bit-identical
// values.
func PredictMissRatio(rd *Histogram, blocks uint64) float64 {
	return mrc.StackMissRatio(rd, blocks)
}

// Stream generator re-exports: build custom profiled programs without
// touching internal packages.
var (
	// Sequential streams linearly: count accesses from base with the
	// given stride in bytes.
	Sequential = trace.Sequential
	// Cyclic loops over a working set of words.
	Cyclic = trace.Cyclic
	// RandomUniform draws uniformly from a region of words.
	RandomUniform = trace.RandomUniform
	// ZipfAccess draws from a Zipf popularity distribution.
	ZipfAccess = trace.ZipfAccess
	// PointerChase follows a random cyclic permutation.
	PointerChase = trace.PointerChase
	// FromSlice adapts a slice of accesses to a Reader.
	FromSlice = trace.FromSlice
	// Tag rebases the program counters of a stream (for attribution).
	Tag = trace.Tag
	// MatMulBlocked emits a blocked matrix multiply's address stream.
	MatMulBlocked = trace.MatMulBlocked
	// Stencil2D emits a 5-point stencil sweep's address stream.
	Stencil2D = trace.Stencil2D
	// Concat, Limit and Mix compose streams.
	Concat = trace.Concat
	Limit  = trace.Limit
	Mix    = trace.Mix
)
