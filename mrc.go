package rdx

import (
	"context"

	"repro/internal/cache"
	"repro/internal/mrc"
)

// Cache-analysis vocabulary, re-exported from internal/mrc and
// internal/cache: miss-ratio curves, set-associative and multi-level
// predictions, and the what-if engine, all driven by a profile's
// reuse-distance histogram — no re-profiling.
type (
	// MissRatioCurve is a predicted miss ratio as a function of cache
	// size, sampled at log-spaced capacities.
	MissRatioCurve = mrc.Curve
	// MissRatioPoint is one sampled cache size on a curve.
	MissRatioPoint = mrc.Point
	// SizeSweep configures a curve's cache-size sweep; the zero value
	// selects defaults covering the observed distances.
	SizeSweep = mrc.Sweep
	// CacheConfig describes one cache: capacity, line size,
	// associativity (Ways 0 = fully associative).
	CacheConfig = cache.Config
	// CacheLevel names one level of a cache hierarchy.
	CacheLevel = cache.LevelSpec
	// HierarchyPrediction is a multi-level miss-ratio prediction.
	HierarchyPrediction = mrc.HierarchyPrediction
	// LevelPrediction is one level of a HierarchyPrediction.
	LevelPrediction = mrc.LevelPrediction
	// WhatIfReport answers one cache what-if question: base and
	// modified hierarchy predictions plus the profile's curve.
	WhatIfReport = mrc.Report
)

// TypicalHierarchy returns a contemporary three-level cache
// configuration (32KiB/8-way L1, 1MiB/16-way L2, 32MiB fully
// associative LLC, 64-byte lines) — the default base for what-if
// questions.
func TypicalHierarchy() []CacheLevel { return cache.TypicalHierarchy() }

// ParseWhatIf parses a what-if specification ("l2.size=2x",
// "l1.ways=4,llc.size=64MiB") against a base hierarchy and returns the
// modified hierarchy. See the rdx -whatif flag and the rdxd POST
// /whatif endpoint for the same syntax over the wire.
func ParseWhatIf(spec string, base []CacheLevel) ([]CacheLevel, error) {
	return mrc.ParseSpec(spec, base)
}

// MissRatio profiles the stream under the session's configuration and
// returns its miss-ratio curve over cache size. For the curve of an
// existing profile, use Result.MissRatioCurve (histogram-based) or
// Result.MissRatioCurveSmooth (footprint-based) directly.
func (s *Session) MissRatio(ctx context.Context, r Reader, sweep SizeSweep) (*MissRatioCurve, error) {
	res, err := s.Profile(ctx, r)
	if err != nil {
		return nil, err
	}
	return res.MissRatioCurve(sweep), nil
}

// WhatIf profiles the stream and answers a cache what-if question
// against a base hierarchy (TypicalHierarchy when base is nil). For an
// existing profile, use Result.WhatIf.
func (s *Session) WhatIf(ctx context.Context, r Reader, base []CacheLevel, spec string, sweep SizeSweep) (*WhatIfReport, error) {
	res, err := s.Profile(ctx, r)
	if err != nil {
		return nil, err
	}
	if base == nil {
		base = TypicalHierarchy()
	}
	return res.WhatIf(base, spec, sweep)
}
