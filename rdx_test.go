package rdx

import (
	"math"
	"testing"
)

func TestProfileAgainstExact(t *testing.T) {
	mk := func() Reader { return Cyclic(0, 256, 300000) }
	cfg := DefaultConfig()
	cfg.SamplePeriod = 1000
	res, err := Profile(mk(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := Exact(mk(), WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(res.ReuseDistance, gt.ReuseDistance); acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95", acc)
	}
	if gt.DistinctBlocks != 256 {
		t.Errorf("distinct blocks = %d, want 256", gt.DistinctBlocks)
	}
	if gt.Accesses != 300000 {
		t.Errorf("accesses = %d", gt.Accesses)
	}
}

func TestProfileRejectsBadConfig(t *testing.T) {
	if _, err := Profile(Cyclic(0, 8, 100), Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestWorkloadAPI(t *testing.T) {
	names := WorkloadNames()
	if len(names) < 10 {
		t.Fatalf("suite has %d workloads", len(names))
	}
	r, err := Workload(names[0], 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SamplePeriod = 100
	if _, err := Profile(r, cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := Workload("bogus", 1, 10); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPredictMissRatioAPI(t *testing.T) {
	gt, err := Exact(Cyclic(0, 64, 64000), WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	// Working set of 64 words: a 128-word cache captures all reuse
	// (cold-only misses), a 32-word cache captures none.
	small := PredictMissRatio(gt.ReuseDistance, 32)
	big := PredictMissRatio(gt.ReuseDistance, 128)
	if small < 0.99 {
		t.Errorf("under-capacity miss ratio = %v, want ~1", small)
	}
	if big > 0.01 {
		t.Errorf("over-capacity miss ratio = %v, want ~0 (cold only)", big)
	}
}

func TestProfileWithCosts(t *testing.T) {
	costs := DefaultCosts()
	costs.SampleCycles *= 10
	cfg := DefaultConfig()
	cfg.SamplePeriod = 1000
	cheap, err := Profile(Cyclic(0, 64, 200000), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dear, err := ProfileWithCosts(Cyclic(0, 64, 200000), cfg, costs)
	if err != nil {
		t.Fatal(err)
	}
	if dear.TimeOverhead() <= cheap.TimeOverhead() {
		t.Errorf("10x sample cost did not raise overhead: %v vs %v",
			dear.TimeOverhead(), cheap.TimeOverhead())
	}
}

func TestStreamComposition(t *testing.T) {
	r := Limit(Concat(Sequential(0, 100, 8), RandomUniform(1, 1<<20, 64, 1000)), 500)
	gt, err := Exact(r, WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Accesses != 500 {
		t.Errorf("composed stream length = %d, want 500", gt.Accesses)
	}
}

func TestInfiniteSentinel(t *testing.T) {
	if Infinite != math.MaxUint64 {
		t.Error("Infinite sentinel changed")
	}
}
