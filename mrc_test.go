package rdx

import (
	"context"
	"math"
	"testing"

	"repro/internal/cache"
)

// TestPredictMissRatioDeprecatedBitIdentical is the deprecation
// contract: the PredictMissRatio wrapper must return values
// bit-identical to the pre-curve implementation (cache.PredictMissRatio)
// on profiles from every replacement policy, at every capacity.
func TestPredictMissRatioDeprecatedBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, pol := range allPolicies {
		cfg := policyConfig(pol)
		res, err := New(WithConfig(cfg)).Profile(ctx, ZipfAccess(11, 0, 4096, 1.0, 120000))
		if err != nil {
			t.Fatal(err)
		}
		for _, blocks := range []uint64{0, 1, 3, 16, 100, 1024, 1 << 16, 1 << 40} {
			got := PredictMissRatio(res.ReuseDistance, blocks)
			want := cache.PredictMissRatio(res.ReuseDistance, blocks)
			if got != want {
				t.Errorf("%v @%d blocks: wrapper %v != legacy %v", pol, blocks, got, want)
			}
		}
	}
}

func TestSessionMissRatio(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.SamplePeriod = 400
	s := New(WithConfig(cfg))
	curve, err := s.MissRatio(ctx, ZipfAccess(3, 0, 1<<14, 1.0, 150000), SizeSweep{})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) == 0 {
		t.Fatal("empty curve")
	}
	for i, p := range curve.Points {
		if p.MissRatio < 0 || p.MissRatio > 1 {
			t.Fatalf("point %d out of range: %v", i, p.MissRatio)
		}
		if i > 0 && p.MissRatio > curve.Points[i-1].MissRatio+1e-12 {
			t.Fatalf("curve not monotone at %d", i)
		}
	}
	// The curve samples the same identity the deprecated single-point
	// API evaluates; an equal-seed profile must agree point for point.
	res, err := s.Profile(ctx, ZipfAccess(3, 0, 1<<14, 1.0, 150000))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range curve.Points {
		if want := PredictMissRatio(res.ReuseDistance, p.Lines); math.Abs(p.MissRatio-want) > 1e-12 {
			t.Errorf("curve @%d = %v, single-point = %v", p.Lines, p.MissRatio, want)
		}
	}
	// Footprint-based variant is also monotone and bounded.
	smooth := res.MissRatioCurveSmooth(SizeSweep{MaxLines: 1 << 22})
	for i, p := range smooth.Points {
		if p.MissRatio < 0 || p.MissRatio > 1 {
			t.Fatalf("smooth point %d out of range: %v", i, p.MissRatio)
		}
		if i > 0 && p.MissRatio > smooth.Points[i-1].MissRatio+1e-12 {
			t.Fatalf("smooth curve not monotone at %d", i)
		}
	}
}

func TestSessionWhatIf(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	cfg.SamplePeriod = 400
	cfg.Granularity = LineGranularity
	s := New(WithConfig(cfg))
	rep, err := s.WhatIf(ctx, ZipfAccess(5, 0, 1<<15, 0.9, 150000), nil, "l2.size=2x", SizeSweep{})
	if err != nil {
		t.Fatal(err)
	}
	base := TypicalHierarchy()
	if rep.Modified.Levels[1].SizeBytes != 2*base[1].Config.SizeBytes {
		t.Errorf("modified L2 size = %d", rep.Modified.Levels[1].SizeBytes)
	}
	if len(rep.Curve.Points) == 0 {
		t.Error("what-if report missing curve")
	}
	if _, err := s.WhatIf(ctx, ZipfAccess(5, 0, 1<<15, 0.9, 1000), nil, "l2.banks=9", SizeSweep{}); err == nil {
		t.Error("malformed what-if spec accepted")
	}
	if _, err := ParseWhatIf("llc.ways=full", base); err != nil {
		t.Errorf("ParseWhatIf: %v", err)
	}
}
