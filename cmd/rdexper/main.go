// Command rdexper regenerates the paper's evaluation: every table and
// figure listed in DESIGN.md, with paper-vs-measured bands recorded in
// EXPERIMENTS.md.
//
// Usage:
//
//	rdexper -exp all                 # the full evaluation
//	rdexper -exp T2,F4,F5            # selected experiments
//	rdexper -n 16777216 -period 32768 -exp T2
//	rdexper -bench-out BENCH_engine.json   # engine + server throughput records
//	                                       # (BENCH_server.json lands alongside)
//	rdexper -exp MULTICORE                 # GOMAXPROCS sweep merged into BENCH_*.json
//	rdexper -bench-gate BENCH_engine.json  # throughput regression gate (noise-aware)
//	rdexper -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp           = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		n             = flag.Uint64("n", 4<<20, "accesses per workload run")
		period        = flag.Uint64("period", 8<<10, "default RDX sampling period")
		seed          = flag.Uint64("seed", 1, "random seed")
		reps          = flag.Int("reps", 3, "repetitions per benchmark row; rows record the median with a min/max noise band")
		list          = flag.Bool("list", false, "list experiment IDs and exit")
		benchOut      = flag.String("bench-out", "", "run the engine and server throughput benchmarks and write their JSON records to this path (e.g. BENCH_engine.json; BENCH_server.json is written alongside), then exit")
		benchBaseline = flag.String("bench-baseline", "", "directory holding a prior BENCH_engine.json/BENCH_server.json pair to embed as the baseline rows of the new records")
		compressCheck = flag.String("compress-check", "", "measure the strided-workload wire compression ratio and fail if it drops below the baseline committed in this BENCH_server.json, then exit")
		benchGate     = flag.String("bench-gate", "", "re-measure the engine gate rows at the operating point committed in this BENCH_engine.json and fail only below its recorded noise threshold, then exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			e, _ := experiments.Lookup(id)
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.Options{
		Accesses: *n,
		Period:   *period,
		Seed:     *seed,
		Reps:     *reps,
		Out:      os.Stdout,
	}

	if *compressCheck != "" {
		if err := runCompressCheck(opts, *compressCheck); err != nil {
			fatal(err)
		}
		return
	}

	if *benchGate != "" {
		if err := opts.RunBenchGate(*benchGate); err != nil {
			fatal(err)
		}
		fmt.Println("bench gate: OK")
		return
	}

	if *benchOut != "" {
		res, err := opts.RunEngineBench()
		if err != nil {
			fatal(err)
		}
		if *benchBaseline != "" {
			base, err := experiments.ReadEngineBench(filepath.Join(*benchBaseline, "BENCH_engine.json"))
			if err != nil {
				fatal(err)
			}
			res.AttachBaseline(base)
		}
		if err := res.WriteJSON(*benchOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *benchOut)

		srv, err := opts.RunServerBench()
		if err != nil {
			fatal(err)
		}
		srv.Pool, err = opts.RunPoolBench()
		if err != nil {
			fatal(err)
		}
		srv.Wire, err = opts.RunWireBench()
		if err != nil {
			fatal(err)
		}
		if *benchBaseline != "" {
			base, err := experiments.ReadServerBench(filepath.Join(*benchBaseline, "BENCH_server.json"))
			if err != nil {
				fatal(err)
			}
			srv.AttachBaseline(base)
		}
		srvOut := filepath.Join(filepath.Dir(*benchOut), "BENCH_server.json")
		if err := srv.WriteJSON(srvOut); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", srvOut)
		return
	}

	start := time.Now()
	if strings.EqualFold(*exp, "all") {
		if _, err := experiments.RunAll(opts); err != nil {
			fatal(err)
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, err := experiments.Run(id, opts); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

// runCompressCheck is the scripts/check.sh regression gate: re-measure
// the strided workload's v3 wire compression and compare it with the
// ratio committed in BENCH_server.json. The encoding is deterministic,
// so a real regression shows up as a large drop; the 5% tolerance only
// absorbs batch-boundary differences when -n differs from the
// committed run.
func runCompressCheck(opts experiments.Options, path string) error {
	base, err := experiments.ReadServerBench(path)
	if err != nil {
		return err
	}
	var committed float64
	for _, r := range base.Wire {
		if r.Workload == "strided" && r.WireVersion == 3 {
			committed = r.CompressionRatio
		}
	}
	if committed <= 0 {
		return fmt.Errorf("%s holds no strided v3 wire row to gate against", path)
	}
	got, err := opts.StridedCompressionRatio()
	if err != nil {
		return err
	}
	fmt.Printf("strided v3 compression: %.2fx measured, %.2fx committed\n", got, committed)
	if got < committed*0.95 {
		return fmt.Errorf("strided compression ratio regressed: %.2fx measured < %.2fx committed in %s",
			got, committed, path)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdexper:", err)
	os.Exit(1)
}
