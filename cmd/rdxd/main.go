// Command rdxd is the RDX remote-profiling daemon: it accepts streamed
// access traces over the wire protocol, profiles each session with the
// batched engine, and serves health and metrics endpoints for
// operations.
//
// Usage:
//
//	rdxd [-addr 127.0.0.1:9127] [-admin 127.0.0.1:9128] [-workers 0]
//	     [-queue-depth 8] [-max-sessions 64] [-drain-timeout 30s]
//	     [-checkpoint-dir /var/lib/rdxd] [-checkpoint-every 64]
//	     [-read-timeout 5m] [-write-timeout 1m] [-admin-timeout 10s]
//	     [-pprof] [-alert-working-set-bytes 33554432]
//
// SIGTERM or SIGINT drains the daemon: new sessions are refused,
// in-flight sessions get -drain-timeout to finish, stragglers are cut
// off. /healthz reports 503 from the moment draining starts. POST
// /drain on the admin listener drains live instead: each session is
// migrated to another backend by checkpoint handover and its client is
// redirected there (see `rdx -drain`); POST /migrate moves sessions
// for load rebalancing without draining.
//
// Sessions are checkpointed (at open, every -checkpoint-every batches,
// on client sync, and on disconnect) so interrupted clients can resume
// where they left off. With -checkpoint-dir the checkpoints are
// spilled to disk and sessions survive a daemon restart.
//
// Sessions may subscribe to pushed window snapshots (the wire watch
// frames; Session.Watch on the client side). The daemon windows each
// watched session's profile as it streams, scores consecutive windows
// for phase drift, and — when a window's working set grows past
// -alert-working-set-bytes — logs an alert once per excursion and
// surfaces it on /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9127", "profiling listener address")
		admin        = flag.String("admin", "127.0.0.1:9128", "admin (healthz/metrics) listener address; empty disables")
		workers      = flag.Int("workers", 0, "executor workers multiplexing all sessions (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 8, "per-session bounded batch queue depth")
		maxBatch     = flag.Int("max-batch", 1<<20, "largest accepted batch, in accesses")
		maxWire      = flag.Int("max-wire-version", 3, "highest wire protocol version to negotiate (2 = uncompressed RDT3 batches, 3 = compressed columnar batches)")
		maxSessions  = flag.Int("max-sessions", 64, "concurrent session limit")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight sessions get to finish on shutdown")
		ckptDir      = flag.String("checkpoint-dir", "", "spill session checkpoints to this directory so sessions survive a restart; empty keeps them in memory only")
		ckptEvery    = flag.Int("checkpoint-every", 64, "checkpoint each session every N batches (negative disables periodic checkpoints)")
		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "per-frame read deadline; idle connections past it are dropped and resumable (negative disables)")
		writeTimeout = flag.Duration("write-timeout", time.Minute, "per-frame write deadline for replies (negative disables)")
		adminTimeout = flag.Duration("admin-timeout", 10*time.Second, "end-to-end deadline for each admin API request; a stalled admin client is cut off (negative disables)")
		pprofOn      = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the admin listener")
		alertWS      = flag.Int64("alert-working-set-bytes", 0, "alert (log once per excursion, surface on /metrics) when a watched session's window working set grows past this many bytes; 0 selects the default 32 MiB (a typical L3), negative disables")
	)
	flag.Parse()

	s, err := server.New(server.Config{
		Addr:                 *addr,
		AdminAddr:            *admin,
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		MaxBatch:             *maxBatch,
		MaxWireVersion:       *maxWire,
		MaxSessions:          *maxSessions,
		CheckpointDir:        *ckptDir,
		CheckpointEvery:      *ckptEvery,
		ReadTimeout:          *readTimeout,
		WriteTimeout:         *writeTimeout,
		AdminTimeout:         *adminTimeout,
		EnablePprof:          *pprofOn,
		AlertWorkingSetBytes: *alertWS,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdxd:", err)
		os.Exit(1)
	}
	s.Start()
	log.Printf("rdxd: profiling on %s", s.Addr())
	if a := s.AdminAddr(); a != "" {
		extra := ""
		if *pprofOn {
			extra = ", /debug/pprof/"
		}
		log.Printf("rdxd: admin on http://%s (/healthz, /metrics, /whatif, /drain, /migrate%s)", a, extra)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("rdxd: %s received, draining (timeout %s)", got, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("rdxd: %v", err)
		os.Exit(1)
	}
	log.Printf("rdxd: drained cleanly")
}
