// Command rdxd is the RDX remote-profiling daemon: it accepts streamed
// access traces over the wire protocol, profiles each session with the
// batched engine, and serves health and metrics endpoints for
// operations.
//
// Usage:
//
//	rdxd [-addr 127.0.0.1:9127] [-admin 127.0.0.1:9128] [-workers 4]
//	     [-queue-depth 8] [-max-sessions 64] [-drain-timeout 30s]
//
// SIGTERM or SIGINT drains the daemon: new sessions are refused,
// in-flight sessions get -drain-timeout to finish, stragglers are cut
// off. /healthz reports 503 from the moment draining starts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:9127", "profiling listener address")
		admin        = flag.String("admin", "127.0.0.1:9128", "admin (healthz/metrics) listener address; empty disables")
		workers      = flag.Int("workers", 4, "concurrent engine executions across all sessions")
		queueDepth   = flag.Int("queue-depth", 8, "per-session bounded batch queue depth")
		maxBatch     = flag.Int("max-batch", 1<<20, "largest accepted batch, in accesses")
		maxSessions  = flag.Int("max-sessions", 64, "concurrent session limit")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long in-flight sessions get to finish on shutdown")
	)
	flag.Parse()

	s, err := server.New(server.Config{
		Addr:        *addr,
		AdminAddr:   *admin,
		Workers:     *workers,
		QueueDepth:  *queueDepth,
		MaxBatch:    *maxBatch,
		MaxSessions: *maxSessions,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "rdxd:", err)
		os.Exit(1)
	}
	s.Start()
	log.Printf("rdxd: profiling on %s", s.Addr())
	if a := s.AdminAddr(); a != "" {
		log.Printf("rdxd: admin on http://%s (/healthz, /metrics)", a)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	log.Printf("rdxd: %s received, draining (timeout %s)", got, *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Printf("rdxd: %v", err)
		os.Exit(1)
	}
	log.Printf("rdxd: drained cleanly")
}
