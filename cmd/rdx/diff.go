package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/report"
)

// runDiff is the `rdx diff` subcommand: load two saved `rdx -json`
// reports and classify the change between them against sampling noise
// bands. The exit code reports operational failure only (unreadable or
// incompatible reports); a "regressed" verdict still exits 0 — gating
// belongs to the caller, which can read the class from -json output.
func runDiff(args []string) {
	fs := flag.NewFlagSet("rdx diff", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the machine-readable diff to stdout instead of the table")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), `Usage: rdx diff [-json] baseline.json compared.json

Compares two saved rdx -json reports of "the same" workload — two
builds, two machines, before/after an optimization — and classifies the
change as unchanged, improved, regressed or shifted. Each metric is
judged against its own sampling noise band, so a verdict other than
"unchanged" is significant, not histogram jitter.

`)
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	a, err := report.Load(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := report.Load(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	d, err := report.DiffReports(a, b)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%s vs %s: %s\n\n", fs.Arg(0), fs.Arg(1), d.Class)
	fmt.Printf("%-22s %14s %14s %12s %10s %-5s %s\n",
		"metric", "baseline", "compared", "delta", "band", "sig", "direction")
	for _, m := range d.Metrics {
		fmt.Printf("%-22s %14.4f %14.4f %+12.4f %10.4f %-5s %s\n",
			m.Name, m.A, m.B, m.Delta, m.Band, m.Significance, m.Direction)
	}
	fmt.Printf("\n%s\n", d.Summary)
}
