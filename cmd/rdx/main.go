// Command rdx profiles one suite workload with RDX and (optionally) the
// exhaustive ground-truth tool, printing reuse histograms, overheads and
// accuracy.
//
// Usage:
//
//	rdx -workload mcf -n 4194304 -period 8192 [-exact] [-granularity word]
//	rdx -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		workload = flag.String("workload", "mcf", "suite workload to profile (see -list)")
		n        = flag.Uint64("n", 4<<20, "number of memory accesses to execute")
		period   = flag.Uint64("period", 8<<10, "mean sampling period in accesses")
		nwp      = flag.Int("watchpoints", 4, "number of hardware debug registers")
		seed     = flag.Uint64("seed", 1, "random seed for workload and profiler")
		gran     = flag.String("granularity", "word", "measurement granularity: byte, word or line")
		runExact = flag.Bool("exact", false, "also run the exhaustive ground-truth tool and report accuracy")
		pairs    = flag.Int("pairs", 0, "print the top N use→reuse code pairs by weight")
		jsonOut  = flag.String("json", "", "write the profile result (histograms + counters) as JSON to this file")
		list     = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, name := range rdx.WorkloadNames() {
			fmt.Println(name)
		}
		return
	}

	g, err := parseGranularity(*gran)
	if err != nil {
		fatal(err)
	}

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = *period
	cfg.NumWatchpoints = *nwp
	cfg.Granularity = g
	cfg.Seed = *seed

	stream, err := rdx.Workload(*workload, *seed, *n)
	if err != nil {
		fatal(err)
	}
	res, err := rdx.Profile(stream, cfg)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("workload %s: %d accesses, period %d, %d watchpoints, %s granularity\n",
		*workload, res.Accesses, *period, *nwp, g)
	fmt.Printf("samples=%d armed=%d traps=%d reuse-pairs=%d cold=%d dropped=%d\n",
		res.Samples, res.ArmedSamples, res.Traps, res.ReusePairs, res.ColdSamples, res.Dropped)
	fmt.Printf("modelled time overhead: %.2f%%\n", 100*res.TimeOverhead())
	fmt.Printf("\nRDX reuse-distance histogram:\n%s", res.ReuseDistance)

	if *pairs > 0 {
		fmt.Printf("\ntop %d use→reuse code pairs (by carried weight):\n", *pairs)
		fmt.Printf("%-12s %-12s %10s %12s %12s\n", "use PC", "reuse PC", "count", "mean RD", "weight")
		for _, p := range res.Attribution.TopWeight(*pairs) {
			fmt.Printf("%#-12x %#-12x %10d %12.0f %12.0f\n",
				uint64(p.Pair.UsePC), uint64(p.Pair.ReusePC), p.Count, p.MeanDistance, p.Weight)
		}
	}

	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, *workload, res); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote JSON profile to %s\n", *jsonOut)
	}

	if *runExact {
		stream, err := rdx.Workload(*workload, *seed, *n)
		if err != nil {
			fatal(err)
		}
		gt, err := rdx.Exact(stream, g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nground-truth reuse-distance histogram (%d distinct blocks):\n%s",
			gt.DistinctBlocks, gt.ReuseDistance)
		fmt.Printf("\naccuracy: %.4f\n", rdx.Accuracy(res.ReuseDistance, gt.ReuseDistance))
	}
}

// jsonProfile is the serialized form of a profile result.
type jsonProfile struct {
	Workload      string         `json:"workload"`
	Accesses      uint64         `json:"accesses"`
	SamplePeriod  uint64         `json:"sample_period"`
	Samples       uint64         `json:"samples"`
	ReusePairs    uint64         `json:"reuse_pairs"`
	ColdSamples   uint64         `json:"cold_samples"`
	TimeOverhead  float64        `json:"time_overhead"`
	ReuseDistance *rdx.Histogram `json:"reuse_distance"`
	ReuseTime     *rdx.Histogram `json:"reuse_time"`
	Attribution   []jsonPair     `json:"attribution,omitempty"`
}

type jsonPair struct {
	UsePC        uint64  `json:"use_pc"`
	ReusePC      uint64  `json:"reuse_pc"`
	Count        uint64  `json:"count"`
	Weight       float64 `json:"weight"`
	MeanDistance float64 `json:"mean_distance"`
}

func writeJSON(path, workload string, res *rdx.Result) error {
	jp := jsonProfile{
		Workload:      workload,
		Accesses:      res.Accesses,
		SamplePeriod:  res.Config.SamplePeriod,
		Samples:       res.Samples,
		ReusePairs:    res.ReusePairs,
		ColdSamples:   res.ColdSamples,
		TimeOverhead:  res.TimeOverhead(),
		ReuseDistance: res.ReuseDistance,
		ReuseTime:     res.ReuseTime,
	}
	for _, p := range res.Attribution {
		jp.Attribution = append(jp.Attribution, jsonPair{
			UsePC:        uint64(p.Pair.UsePC),
			ReusePC:      uint64(p.Pair.ReusePC),
			Count:        p.Count,
			Weight:       p.Weight,
			MeanDistance: p.MeanDistance,
		})
	}
	data, err := json.MarshalIndent(jp, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func parseGranularity(s string) (rdx.Granularity, error) {
	switch s {
	case "byte":
		return rdx.ByteGranularity, nil
	case "word":
		return rdx.WordGranularity, nil
	case "line":
		return rdx.LineGranularity, nil
	default:
		return 0, fmt.Errorf("unknown granularity %q (want byte, word or line)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdx:", err)
	os.Exit(1)
}
