// Command rdx profiles one suite workload (or a recorded trace) with
// RDX — in-process or against an rdxd daemon — and prints reuse
// histograms, overheads and accuracy.
//
// Usage:
//
//	rdx -workload mcf -n 4194304 -period 8192 [-exact] [-granularity word]
//	rdx -trace run.rdt -remote 127.0.0.1:9127 [-snapshot-every 50]
//	rdx -workload mcf -remote 127.0.0.1:9127 -retry 12 -dial-timeout 5s
//	rdx -workload mcf -remote a:9127=a:9128,b:9127=b:9128
//	rdx -workload mcf -json > profile.json
//	rdx diff baseline.json compared.json
//	rdx -list
//
// With -remote the access stream is generated (or replayed) locally and
// streamed to the daemon; the report is identical to local mode because
// the daemon runs the identical engine. With -retry N the session is
// fault-tolerant: it reconnects with exponential backoff (up to N
// consecutive attempts), resumes from the daemon's checkpoint, and
// replays unacknowledged batches. -remote also accepts a comma-separated
// backend list, each "addr" or "addr=adminaddr"; with several backends
// the session is dispatched through the health-checked pool (admin
// addresses enable /healthz probing and load-aware routing), and a
// backend dying mid-run fails over to the others.
//
// -json output is the versioned rdx.report/v1 envelope (see
// internal/report), the same schema the daemon's /whatif endpoint
// returns and `rdx diff` consumes; pre-versioning schema-less reports
// stay readable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/ctrl"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "diff" {
		runDiff(os.Args[2:])
		return
	}
	var (
		workload    = flag.String("workload", "mcf", "suite workload to profile (see -list)")
		tracePath   = flag.String("trace", "", "replay this recorded RDT3 trace file instead of a generated workload")
		n           = flag.Uint64("n", 4<<20, "number of memory accesses to execute")
		period      = flag.Uint64("period", 8<<10, "mean sampling period in accesses")
		nwp         = flag.Int("watchpoints", 4, "number of hardware debug registers")
		seed        = flag.Uint64("seed", 1, "random seed for workload and profiler")
		gran        = flag.String("granularity", "word", "measurement granularity: byte, word or line")
		runExact    = flag.Bool("exact", false, "also run the exhaustive ground-truth tool and report accuracy")
		pairs       = flag.Int("pairs", 0, "print the top N use→reuse code pairs by weight")
		jsonOut     = flag.Bool("json", false, "emit the machine-readable result (histograms, counters, overheads, accuracy) to stdout instead of the report")
		jsonFile    = flag.String("json-file", "", "additionally write the machine-readable result to this file")
		remote      = flag.String("remote", "", "profile via rdxd instead of in-process: one daemon address, or a comma-separated pool (each \"addr\" or \"addr=adminaddr\")")
		snapEvery   = flag.Int("snapshot-every", 0, "with -remote: print a live snapshot line every N batches (deprecated polling; the Session.Watch subscription delivers the same snapshots server-pushed)")
		retry       = flag.Int("retry", 0, "with -remote: survive connection faults with up to N consecutive reconnect attempts (0 = no retry)")
		dialTimeout = flag.Duration("dial-timeout", 10*time.Second, "with -remote: timeout for each connection attempt")
		maxWire     = flag.Int("max-wire-version", 3, "with -remote: highest wire protocol version to offer (2 = uncompressed RDT3 batches, 3 = compressed columnar batches)")
		mrcOut      = flag.Bool("mrc", false, "print the profile's predicted miss-ratio curve over cache size")
		whatIf      = flag.String("whatif", "", "answer a cache what-if question (e.g. \"l2.size=2x\", \"l1.ways=4,llc.size=64MiB\") against the typical three-level hierarchy")
		list        = flag.Bool("list", false, "list available workloads and exit")
		drain       = flag.String("drain", "", "control verb: drain the rdxd at this admin address (migrating its sessions to -to) and wait until it is empty, then exit")
		drainTo     = flag.String("to", "", "with -drain: comma-separated migration destinations, each \"addr\" or \"addr=adminaddr\"; empty stops new sessions but migrates nothing")
		drainWait   = flag.Duration("drain-wait", time.Minute, "with -drain: how long to wait for the backend to empty")
	)
	flag.Parse()

	if *list {
		for _, name := range rdx.WorkloadNames() {
			fmt.Println(name)
		}
		return
	}

	if *drain != "" {
		var targets []string
		for _, t := range strings.Split(*drainTo, ",") {
			if t = strings.TrimSpace(t); t != "" {
				targets = append(targets, t)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := ctrl.DrainBackend(ctx, *drain, targets, 0); err != nil {
			fatal(err)
		}
		fmt.Printf("drained %s: zero live sessions\n", *drain)
		return
	}

	g, err := parseGranularity(*gran)
	if err != nil {
		fatal(err)
	}

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = *period
	cfg.NumWatchpoints = *nwp
	cfg.Granularity = g
	cfg.Seed = *seed

	// openStream is callable more than once (-exact needs a second pass).
	openStream := func() rdx.Reader {
		if *tracePath != "" {
			f, err := os.Open(*tracePath)
			if err != nil {
				fatal(err)
			}
			r, err := trace.NewReader(f)
			if err != nil {
				fatal(err)
			}
			return r
		}
		stream, err := rdx.Workload(*workload, *seed, *n)
		if err != nil {
			fatal(err)
		}
		return stream
	}
	source := *workload
	if *tracePath != "" {
		source = *tracePath
	}

	sessOpts := []rdx.Option{rdx.WithConfig(cfg)}
	ctx := context.Background()
	if *remote != "" {
		sessOpts = append(sessOpts, rdx.WithRemote(*remote))
		ropts := rdx.RemoteOptions{SnapshotEvery: *snapEvery, MaxWireVersion: *maxWire}
		if *snapEvery > 0 && !*jsonOut {
			ropts.OnSnapshot = func(s *rdx.RemoteResult) {
				fmt.Printf("snapshot: %d accesses, %d samples, %d reuse pairs, overhead %.2f%%\n",
					s.Accesses, s.Samples, s.ReusePairs, 100*s.TimeOverhead)
			}
		}
		sessOpts = append(sessOpts, rdx.WithRemoteOptions(ropts))
		if *retry > 0 {
			sessOpts = append(sessOpts,
				rdx.WithRetry(rdx.RetryPolicy{MaxAttempts: *retry, DialTimeout: *dialTimeout, Seed: *seed}))
		} else if backends, perr := rdx.ParseBackends(*remote); perr == nil && len(backends) == 1 {
			// Single backend, no retry: bound connection establishment
			// the way the pre-pool CLI did.
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *dialTimeout)
			defer cancel()
		}
	}
	local, err := rdx.New(sessOpts...).Profile(ctx, openStream())
	if err != nil {
		fatal(err)
	}
	res := rdx.ResultToRemote(local)

	out := report.New(source, *remote, res)
	if *mrcOut {
		out.MRC = local.MissRatioCurve(rdx.SizeSweep{})
	}
	if *whatIf != "" {
		rep, err := local.WhatIf(rdx.TypicalHierarchy(), *whatIf, rdx.SizeSweep{})
		if err != nil {
			fatal(err)
		}
		out.WhatIf = rep
	}
	if *runExact {
		gt, err := rdx.Exact(openStream(), g)
		if err != nil {
			fatal(err)
		}
		acc := rdx.Accuracy(res.ReuseDistance, gt.ReuseDistance)
		out.Accuracy = &acc
		out.GroundTruth = gt.ReuseDistance
		out.DistinctBlocks = gt.DistinctBlocks
	}

	if *jsonFile != "" {
		if err := writeJSONFile(*jsonFile, out); err != nil {
			fatal(err)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}

	printReport(out, *pairs)
	if *jsonFile != "" {
		fmt.Printf("\nwrote JSON profile to %s\n", *jsonFile)
	}
}

func printReport(out *report.Report, pairs int) {
	res := out.Result
	where := "local"
	if out.Remote != "" {
		where = "rdxd @ " + out.Remote
	}
	fmt.Printf("%s (%s): %d accesses, period %d, %d watchpoints, %s granularity\n",
		out.Source, where, res.Accesses, res.Config.SamplePeriod, res.Config.NumWatchpoints, res.Config.Granularity)
	fmt.Printf("samples=%d armed=%d traps=%d reuse-pairs=%d cold=%d dropped=%d\n",
		res.Samples, res.ArmedSamples, res.Traps, res.ReusePairs, res.ColdSamples, res.Dropped)
	fmt.Printf("modelled time overhead: %.2f%%\n", 100*res.TimeOverhead)
	fmt.Printf("\nRDX reuse-distance histogram:\n%s", res.ReuseDistance)

	if pairs > 0 {
		fmt.Printf("\ntop %d use→reuse code pairs (by carried weight):\n", pairs)
		fmt.Printf("%-12s %-12s %10s %12s %12s\n", "use PC", "reuse PC", "count", "mean RD", "weight")
		for _, p := range res.Attribution.TopWeight(pairs) {
			fmt.Printf("%#-12x %#-12x %10d %12.0f %12.0f\n",
				uint64(p.Pair.UsePC), uint64(p.Pair.ReusePC), p.Count, p.MeanDistance, p.Weight)
		}
	}

	if out.MRC != nil {
		fmt.Printf("\npredicted miss-ratio curve:\n%s", out.MRC)
	}
	if out.WhatIf != nil {
		fmt.Printf("\n%s", out.WhatIf)
	}

	if out.Accuracy != nil {
		fmt.Printf("\nground-truth reuse-distance histogram (%d distinct blocks):\n%s",
			out.DistinctBlocks, out.GroundTruth)
		fmt.Printf("\naccuracy: %.4f\n", *out.Accuracy)
	}
}

func writeJSONFile(path string, out *report.Report) error {
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func parseGranularity(s string) (rdx.Granularity, error) {
	switch s {
	case "byte":
		return rdx.ByteGranularity, nil
	case "word":
		return rdx.WordGranularity, nil
	case "line":
		return rdx.LineGranularity, nil
	default:
		return 0, fmt.Errorf("unknown granularity %q (want byte, word or line)", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdx:", err)
	os.Exit(1)
}
