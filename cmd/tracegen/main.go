// Command tracegen records suite workloads to the compact binary trace
// format, inspects recorded traces, and replays them through either
// profiler. It exists so experiments can be repeated bit-exactly on a
// frozen trace, decoupled from the generators.
//
// Usage:
//
//	tracegen record -workload gcc -n 1048576 -o gcc.trace
//	tracegen info  -i gcc.trace
//	tracegen profile -i gcc.trace [-exact]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "profile":
		profile(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracegen {record|info|profile} [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "mcf", "suite workload to record")
	n := fs.Uint64("n", 1<<20, "number of accesses")
	seed := fs.Uint64("seed", 1, "workload seed")
	out := fs.String("o", "", "output trace file (required)")
	parse(fs, args)
	if *out == "" {
		fatal(fmt.Errorf("record: -o is required"))
	}

	stream, err := rdx.Workload(*workload, *seed, *n)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	count, err := trace.Record(f, stream)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	st, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("recorded %d accesses of %s to %s (%d bytes, %.2f bytes/access)\n",
		count, *workload, *out, st.Size(), float64(st.Size())/float64(count))
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	parse(fs, args)
	r := openTrace(*in)

	var n, loads, stores uint64
	blocks := map[rdx.Addr]bool{}
	err := trace.ForEach(r, func(a rdx.Access) bool {
		n++
		if a.Kind == rdx.Load {
			loads++
		} else {
			stores++
		}
		blocks[rdx.WordGranularity.Block(a.Addr)] = true
		return true
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d accesses (%d loads, %d stores), %d distinct words (%.2f MiB footprint)\n",
		*in, n, loads, stores, len(blocks), float64(len(blocks))*8/(1<<20))
}

func profile(args []string) {
	fs := flag.NewFlagSet("profile", flag.ExitOnError)
	in := fs.String("i", "", "input trace file (required)")
	period := fs.Uint64("period", 8<<10, "RDX sampling period")
	runExact := fs.Bool("exact", false, "run ground truth instead of RDX")
	parse(fs, args)

	if *runExact {
		gt, err := rdx.Exact(openTrace(*in), rdx.WordGranularity)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("exact reuse-distance histogram (%d accesses, %d blocks):\n%s",
			gt.Accesses, gt.DistinctBlocks, gt.ReuseDistance)
		return
	}
	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = *period
	res, err := rdx.Profile(openTrace(*in), cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("RDX reuse-distance histogram (%d samples, %d pairs):\n%s",
		res.Samples, res.ReusePairs, res.ReuseDistance)
}

func openTrace(path string) rdx.Reader {
	if path == "" {
		fatal(fmt.Errorf("-i is required"))
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	r, err := trace.NewReader(f)
	if err != nil {
		fatal(err)
	}
	return r
}

func parse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
