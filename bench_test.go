package rdx

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md's experiment index), plus micro
// benchmarks of the performance-critical substrates. Each experiment
// benchmark runs the corresponding experiment end to end and reports its
// headline number as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation alongside Go-level throughput numbers.
// Sizes use a reduced operating point (see internal/experiments) so the
// whole suite completes in minutes; cmd/rdexper runs the same code at
// arbitrary scale.

import (
	"fmt"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/experiments"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func benchOpts() experiments.Options {
	o := experiments.Quick()
	o.Seed = 1
	return o
}

// featherOpts is benchOpts at the paper's featherlight 64K period, for
// the overhead benchmarks whose headline numbers are period-determined.
func featherOpts() experiments.Options {
	o := benchOpts()
	o.Accesses = 2 << 20
	o.Period = 64 << 10
	return o
}

// BenchmarkT1_ExhaustiveOverhead regenerates T1: the exhaustive
// baseline's slowdown and memory bloat (the motivation table).
func BenchmarkT1_ExhaustiveOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunT1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoSlowdown, "geo-slowdown")
		b.ReportMetric(res.MeanMemPct, "mem-ovh-%")
	}
}

// BenchmarkT2_RDXAccuracy regenerates T2: RDX accuracy vs ground truth
// across the suite (paper claim: >90%).
func BenchmarkT2_RDXAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunT2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanAccuracy, "mean-accuracy")
		b.ReportMetric(res.MinAccuracy, "min-accuracy")
	}
}

// BenchmarkF3_HistogramOverlays regenerates F3: RDX vs ground-truth
// histogram overlays on the representative workloads.
func BenchmarkF3_HistogramOverlays(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunF3()
		if err != nil {
			b.Fatal(err)
		}
		mean := 0.0
		for _, a := range res.Accuracies {
			mean += a
		}
		b.ReportMetric(mean/float64(len(res.Accuracies)), "mean-accuracy")
	}
}

// BenchmarkF4_RDXTimeOverhead regenerates F4: RDX modelled time overhead
// at the featherlight 64K period (paper claim: ~5%).
func BenchmarkF4_RDXTimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := featherOpts().RunF4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPct, "mean-ovh-%")
	}
}

// BenchmarkF5_RDXMemOverhead regenerates F5: RDX memory overhead (paper
// claim: ~7%).
func BenchmarkF5_RDXMemOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunF5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPct, "mean-ovh-%")
	}
}

// BenchmarkF6_PeriodSweep regenerates F6: accuracy/overhead vs sampling
// period.
func BenchmarkF6_PeriodSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunF6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Points)), "points")
	}
}

// BenchmarkF7_WatchpointSweep regenerates F7: accuracy vs number of
// debug registers.
func BenchmarkF7_WatchpointSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunF7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Points)), "points")
	}
}

// BenchmarkT8_Characterization regenerates T8: the SPEC-CPU2017-style
// memory characterization table.
func BenchmarkT8_Characterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunT8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "workloads")
	}
}

// BenchmarkF9_MissRatioPrediction regenerates F9: miss ratios predicted
// from RDX histograms vs LRU simulation.
func BenchmarkF9_MissRatioPrediction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunF9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanAbsError, "mean-abs-err")
	}
}

// BenchmarkA1_ReplacementPolicy regenerates ablation A1.
func BenchmarkA1_ReplacementPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunA1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Rows {
			b.ReportMetric(r.MeanAccuracy, r.Policy.String()+"-accuracy")
		}
	}
}

// BenchmarkA2_FootprintConversion regenerates ablation A2.
func BenchmarkA2_FootprintConversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunA2()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ConvertedMean, "converted-accuracy")
		b.ReportMetric(res.RawMean, "raw-accuracy")
	}
}

// BenchmarkA3_CostSensitivity regenerates ablation A3 at the
// featherlight period (the regime its shape claim concerns).
func BenchmarkA3_CostSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := featherOpts().RunA3()
		if err != nil {
			b.Fatal(err)
		}
		intact := 0.0
		for _, p := range res.Points {
			if p.ShapeIntact {
				intact++
			}
		}
		b.ReportMetric(intact/float64(len(res.Points)), "shape-intact-frac")
	}
}

// BenchmarkA4_GranularityApprox regenerates ablation A4.
func BenchmarkA4_GranularityApprox(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunA4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "patterns")
	}
}

// BenchmarkC1_AttributionCaseStudy regenerates the C1 case study.
func BenchmarkC1_AttributionCaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunC1()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Improvement, "tiling-improvement-x")
	}
}

// BenchmarkA5_CensoredRedistribution regenerates ablation A5.
func BenchmarkA5_CensoredRedistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := benchOpts().RunA5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.OnMean, "on-accuracy")
		b.ReportMetric(res.OffMean, "off-accuracy")
	}
}

// --- Substrate micro benchmarks ---

// BenchmarkMachineThroughput measures the simulated core's raw
// access-execution rate with RDX attached (accesses/op == 1).
func BenchmarkMachineThroughput(b *testing.B) {
	cfg := DefaultConfig()
	cfg.SamplePeriod = 64 << 10
	b.ReportAllocs()
	b.ResetTimer()
	res, err := Profile(Cyclic(0, 1<<16, uint64(b.N)+1), cfg)
	if err != nil {
		b.Fatal(err)
	}
	_ = res
}

// BenchmarkExactOlkenThroughput measures the ground-truth profiler's
// per-access cost (hash map + order-statistics treap).
func BenchmarkExactOlkenThroughput(b *testing.B) {
	r := trace.ZipfAccess(1, 0, 1<<20, 1.0, uint64(b.N)+1)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := exact.Measure(r, WordGranularity); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCacheSimThroughput measures the O(1) LRU simulator.
func BenchmarkCacheSimThroughput(b *testing.B) {
	r := trace.ZipfAccess(1, 0, 1<<22, 1.0, uint64(b.N)+1)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := cache.Simulate(r, cache.Config{SizeBytes: 32 << 20, LineBytes: 64, Ways: 0}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkWorkloadGeneration measures suite stream generation speed.
func BenchmarkWorkloadGeneration(b *testing.B) {
	for _, name := range []string{"lbm", "mcf", "gcc"} {
		b.Run(name, func(b *testing.B) {
			r, err := workloads.Build(name, 1, uint64(b.N)+1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, err := trace.Count(r); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkUninstrumentedBaseline measures the machine with no profiler
// attached — the denominator of every overhead ratio.
func BenchmarkUninstrumentedBaseline(b *testing.B) {
	r := trace.Cyclic(0, 1<<16, uint64(b.N)+1)
	m := cpu.New(cpumodel.Default())
	b.ResetTimer()
	if err := m.Run(r); err != nil {
		b.Fatal(err)
	}
}

// --- Batched-engine benchmarks ---

// engineWorkload is the default synthetic workload for the engine
// benchmarks (the same stream rdexper -bench-out times): a cyclic
// sweep over a small working set, where watchpoints resolve quickly
// and throughput is dominated by the event-free stretches the batched
// engine skips over.
func engineWorkload(n uint64) trace.Reader { return trace.Cyclic(0, 1<<10, n) }

func benchEngine(b *testing.B, reference bool) {
	p, err := core.NewProfiler(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	n := uint64(b.N) + 1
	b.ReportAllocs()
	b.ResetTimer()
	if reference {
		_, err = p.RunReference(engineWorkload(n), cpumodel.Default())
	} else {
		_, err = p.Run(engineWorkload(n), cpumodel.Default())
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "accesses/sec")
}

// BenchmarkMachineRun measures the batched execution engine — the
// skip-ahead PMU sampling and O(armed) watchpoint hot path — under a
// default-config RDX profiler.
func BenchmarkMachineRun(b *testing.B) { benchEngine(b, false) }

// BenchmarkMachineRunReference measures the retained per-access
// reference loop on the same workload: the pre-change engine
// BenchmarkMachineRun's speedup is judged against.
func BenchmarkMachineRunReference(b *testing.B) { benchEngine(b, true) }

// BenchmarkExactOracle measures the exhaustive oracle sequentially and
// sharded across a worker pool, in accesses/sec.
func BenchmarkExactOracle(b *testing.B) {
	mk := func(n uint64) trace.Reader { return trace.ZipfAccess(1, 0, 1<<16, 1.0, n) }
	b.Run("sequential", func(b *testing.B) {
		n := uint64(b.N) + 1
		b.ResetTimer()
		if _, err := exact.Measure(mk(n), WordGranularity); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "accesses/sec")
	})
	b.Run("parallel", func(b *testing.B) {
		n := uint64(b.N) + 1
		b.ResetTimer()
		if _, err := exact.MeasureParallel(mk(n), WordGranularity, exact.ParallelOptions{}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "accesses/sec")
	})
}

// BenchmarkServerThroughput measures end-to-end rdxd streaming over
// loopback TCP — encode, framing, decode and engine execution — at 1,
// 4, 16 and 64 concurrent sessions (64 is the daemon's MaxSessions
// default, so this is the saturation point), in aggregate accesses/sec.
func BenchmarkServerThroughput(b *testing.B) {
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	defer srv.Close()

	cfg := core.DefaultConfig()
	cfg.SamplePeriod = 8 << 10
	for _, sessions := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			perSession := (uint64(b.N) + uint64(sessions)) / uint64(sessions)
			accs, err := trace.Collect(trace.ZipfAccess(1, 0, 1<<14, 1.0, perSession))
			if err != nil {
				b.Fatal(err)
			}
			total := perSession * uint64(sessions)
			b.ReportAllocs()
			b.ResetTimer()
			if err := experiments.StreamSessions(srv.Addr(), sessions, accs, cfg); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "accesses/sec")
		})
	}
}

// BenchmarkPoolThroughput measures the sharded multi-backend dispatcher
// aggregating fleets of 1, 2 and 4 fixed-capacity backends (one worker
// + per-batch service delay each — on a single benchmark host, scaling
// must come from the dispatcher aggregating backend capacity, not from
// host CPUs; see experiments.StartThrottledBackends). Aggregate
// accesses/sec should approach linear in the fleet size.
func BenchmarkPoolThroughput(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = 8 << 10
	const streams = 32
	for _, backends := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("backends=%d", backends), func(b *testing.B) {
			srvs, bks, err := experiments.StartThrottledBackends(backends)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				for _, s := range srvs {
					s.Close()
				}
			}()
			perStream := (uint64(b.N) + streams) / streams
			accs, err := trace.Collect(trace.ZipfAccess(1, 0, 1<<14, 1.0, perStream))
			if err != nil {
				b.Fatal(err)
			}
			rs := make([]trace.Reader, streams)
			for i := range rs {
				rs[i] = trace.FromSlice(accs)
			}
			b.ResetTimer()
			m, err := experiments.PoolStreamOnce(bks, rs, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(m.Accesses)/b.Elapsed().Seconds(), "accesses/sec")
		})
	}
}
