package rdx

// Differential tests for the options-based Session API: every
// deprecated package-level entry point must produce results
// bit-identical to the equivalent New(...) call, across all watchpoint
// replacement policies — the compatibility contract the deprecation
// rests on.

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
)

var allPolicies = []ReplacementPolicy{
	ReplaceProbabilistic, ReplaceReservoir, ReplaceAlways, ReplaceNever, ReplaceHybrid,
}

// fingerprint reduces a Result to the byte-exact wire JSON (the form
// every bit-identity test in the repo compares).
func fingerprint(t *testing.T, r *Result) string {
	t.Helper()
	b, err := json.Marshal(ResultToRemote(r))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func policyConfig(pol ReplacementPolicy) Config {
	cfg := DefaultConfig()
	cfg.SamplePeriod = 400
	cfg.Replacement = pol
	return cfg
}

func TestSessionDifferentialLocal(t *testing.T) {
	ctx := context.Background()
	for _, pol := range allPolicies {
		cfg := policyConfig(pol)
		accs, err := trace.Collect(ZipfAccess(11, 0, 4096, 1.0, 120000))
		if err != nil {
			t.Fatal(err)
		}

		oldRes, err := Profile(FromSlice(accs), cfg)
		if err != nil {
			t.Fatal(err)
		}
		newRes, err := New(WithConfig(cfg)).Profile(ctx, FromSlice(accs))
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(t, oldRes) != fingerprint(t, newRes) {
			t.Errorf("%v: Profile wrapper diverges from Session", pol)
		}

		costs := DefaultCosts()
		costs.TrapCycles *= 2
		oldRes, err = ProfileWithCosts(FromSlice(accs), cfg, costs)
		if err != nil {
			t.Fatal(err)
		}
		newRes, err = New(WithConfig(cfg), WithCosts(costs)).Profile(ctx, FromSlice(accs))
		if err != nil {
			t.Fatal(err)
		}
		if fingerprint(t, oldRes) != fingerprint(t, newRes) {
			t.Errorf("%v: ProfileWithCosts wrapper diverges from Session", pol)
		}
	}
}

func TestSessionDifferentialThreads(t *testing.T) {
	ctx := context.Background()
	mkStreams := func() []Reader {
		var rs []Reader
		for i := 0; i < 4; i++ {
			rs = append(rs, ZipfAccess(uint64(70+i), Addr(uint64(i)<<40), 2048, 1.0, 50000))
		}
		return rs
	}
	multiFP := func(m *MultiResult) string {
		var parts []string
		for _, r := range m.Threads {
			parts = append(parts, fingerprint(t, r))
		}
		at, err := json.Marshal(m.Attribution)
		if err != nil {
			t.Fatal(err)
		}
		rd, _ := json.Marshal(m.ReuseDistance.Snapshot())
		parts = append(parts, string(at), string(rd))
		b, _ := json.Marshal(parts)
		return string(b)
	}
	for _, pol := range allPolicies {
		cfg := policyConfig(pol)
		oldM, err := ProfileThreads(mkStreams(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		newM, err := New(WithConfig(cfg)).ProfileThreads(ctx, mkStreams())
		if err != nil {
			t.Fatal(err)
		}
		if multiFP(oldM) != multiFP(newM) {
			t.Errorf("%v: ProfileThreads wrapper diverges from Session", pol)
		}

		oldM, err = ProfileThreadsPool(mkStreams(), cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		newM, err = New(WithConfig(cfg), WithWorkers(2)).ProfileThreads(ctx, mkStreams())
		if err != nil {
			t.Fatal(err)
		}
		if multiFP(oldM) != multiFP(newM) {
			t.Errorf("%v: ProfileThreadsPool wrapper diverges from Session", pol)
		}
	}
}

func TestSessionDifferentialRemote(t *testing.T) {
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	ctx := context.Background()
	cfg := policyConfig(ReplaceProbabilistic)
	accs, err := trace.Collect(ZipfAccess(13, 0, 4096, 1.0, 100000))
	if err != nil {
		t.Fatal(err)
	}
	local, err := New(WithConfig(cfg)).Profile(ctx, FromSlice(accs))
	if err != nil {
		t.Fatal(err)
	}
	localFP := fingerprint(t, local)

	// Plain remote: deprecated wrapper vs Session, vs local.
	oldW, err := ProfileRemote(ctx, srv.Addr(), FromSlice(accs), cfg, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := New(WithConfig(cfg), WithRemote(srv.Addr())).Profile(ctx, FromSlice(accs))
	if err != nil {
		t.Fatal(err)
	}
	oldJ, _ := json.Marshal(oldW)
	if string(oldJ) != fingerprint(t, newRes) {
		t.Error("ProfileRemote wrapper diverges from Session")
	}
	// StateBytes reports capacity growth, which legitimately differs
	// between the server's batch sizes and the local profiler's; zero it
	// for the remote-vs-local check.
	neutral := func(fp string) string {
		var w RemoteResult
		if err := json.Unmarshal([]byte(fp), &w); err != nil {
			t.Fatal(err)
		}
		w.StateBytes = 0
		b, _ := json.Marshal(&w)
		return string(b)
	}
	if neutral(fingerprint(t, newRes)) != neutral(localFP) {
		t.Error("remote Session result diverges from local")
	}

	// Resilient remote: deprecated wrapper vs Session.
	policy := RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, OpTimeout: 10 * time.Second}
	oldW, err = ProfileRemoteResilient(ctx, srv.Addr(), FromSlice(accs), cfg, RemoteOptions{}, policy)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err = New(WithConfig(cfg), WithRemote(srv.Addr()), WithRetry(policy)).Profile(ctx, FromSlice(accs))
	if err != nil {
		t.Fatal(err)
	}
	oldJ, _ = json.Marshal(oldW)
	if string(oldJ) != fingerprint(t, newRes) {
		t.Error("ProfileRemoteResilient wrapper diverges from Session")
	}
}

func TestSessionRemoteToResultInverse(t *testing.T) {
	cfg := policyConfig(ReplaceHybrid)
	res, err := New(WithConfig(cfg)).Profile(context.Background(), ZipfAccess(3, 0, 2048, 1.0, 80000))
	if err != nil {
		t.Fatal(err)
	}
	back := RemoteToResult(ResultToRemote(res))
	if fingerprint(t, back) != fingerprint(t, res) {
		t.Error("RemoteToResult is not the inverse of ResultToRemote")
	}
	if back.Footprint == nil {
		t.Error("footprint not rebuilt on conversion")
	}
}

func TestSessionBadRemoteSpec(t *testing.T) {
	s := New(WithRemote("=admin"))
	if _, err := s.Profile(context.Background(), Cyclic(0, 16, 100)); err == nil {
		t.Error("bad backend spec should surface at Profile time")
	}
	if _, err := s.ProfileThreads(context.Background(), []Reader{Cyclic(0, 16, 100)}); err == nil {
		t.Error("bad backend spec should surface at ProfileThreads time")
	}
}

func TestSessionLocalContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := New().Profile(ctx, Cyclic(0, 1024, 1<<30)); err == nil {
		t.Error("cancelled local profile should fail")
	}
}
