package rdx

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/trace"
	"repro/internal/window"
	"repro/internal/wire"
)

// Continuous-profiling vocabulary, re-exported from internal/window so
// subscribers configure and read drift scoring without importing
// internal packages.
type (
	// Window is one closed observation interval: the locality activity
	// between two consecutive cumulative snapshots, with its working
	// set and drift score.
	Window = window.Window
	// DriftOptions tunes the phase/drift detector (minimum evidence,
	// histogram-distance and working-set-shift thresholds).
	DriftOptions = window.DriftOptions
	// DriftScore is one window's drift verdict against its predecessor.
	DriftScore = window.Score
)

// DefaultWindowAccesses is the window length a watched session uses
// when WindowOptions does not say otherwise.
const DefaultWindowAccesses = 1 << 17

// WindowOptions shapes continuous observation of a profiling run: how
// long a window is, how many are retained, and when consecutive
// windows count as drift. The zero value selects all defaults.
type WindowOptions struct {
	// EveryAccesses is the window length in accesses per thread
	// (default DefaultWindowAccesses). Remote sessions observe at wire
	// batch boundaries, so the effective cadence is EveryAccesses
	// rounded down to a whole number of batches (minimum one).
	EveryAccesses uint64
	// Ring bounds how many recent windows the run's collector retains
	// (0 selects the internal default of 16).
	Ring int
	// Drift tunes the drift detector scoring consecutive windows.
	Drift DriftOptions
	// Buffer is the subscription channel's capacity (default 16). A
	// subscriber that stops draining eventually blocks the run — the
	// same backpressure contract as every other streaming path.
	Buffer int
}

func (o *WindowOptions) fill() {
	if o.EveryAccesses == 0 {
		o.EveryAccesses = DefaultWindowAccesses
	}
	if o.Buffer <= 0 {
		o.Buffer = 16
	}
}

// WithWindow sets the session's default windowing for Session.Watch
// (a per-call WatchOptions.Window overrides it).
func WithWindow(opts WindowOptions) Option {
	return func(s *Session) { s.window = &opts }
}

// WindowSnapshot is one delivered observation of a watched run: the
// merged cumulative profile at a window boundary plus the window it
// closed. The final snapshot of a run has Final set, carries the
// lifetime result in Cumulative — bit-identical to what ProfileThreads
// returns for the same streams and config — and reports the run's
// error, if any, in Err; the channel closes after it.
type WindowSnapshot struct {
	// Seq numbers window boundaries from 1 in delivery order. The
	// final snapshot repeats the last boundary's Seq.
	Seq int
	// Cumulative is the merged program-level profile of everything
	// executed up to this boundary (the lifetime result on the final
	// snapshot).
	Cumulative *MultiResult
	// Window is the interval this boundary closed (nil on the final
	// snapshot — the lifetime aggregate is not a window).
	Window *Window
	// Final marks the run's last snapshot.
	Final bool
	// Err is the run's error, set only on the final snapshot.
	Err error
}

// WatchOptions parameterizes one Session.Watch run.
type WatchOptions struct {
	// Streams are the access streams to profile, one per thread —
	// exactly ProfileThreads' input.
	Streams []Reader
	// Window overrides the session-level WithWindow configuration for
	// this run (nil keeps it).
	Window *WindowOptions
}

// Watch profiles the streams like ProfileThreads while streaming
// window snapshots to the returned channel: one WindowSnapshot per
// window boundary, in order, then a Final snapshot carrying the
// lifetime result, then close. This is the subscribe-style observation
// surface replacing poll-style snapshots (RemoteOptions.SnapshotEvery)
// — same engine, same windows the deprecated path would have polled,
// delivered server-initiated on remote sessions via the wire watch
// subscription, which survives reconnects without losing or
// reordering a single boundary.
//
// The lifetime aggregate never flows through the windowing code — it
// is the same exact-sum merge of per-thread finals ProfileThreads
// performs, so it stays bit-identical to an unwatched run.
//
// Cancelling ctx aborts the run; the final snapshot then reports
// ctx's error. The caller should drain the channel until it closes.
func (s *Session) Watch(ctx context.Context, opts WatchOptions) (<-chan WindowSnapshot, error) {
	if s.err != nil {
		return nil, s.err
	}
	if len(opts.Streams) == 0 {
		return nil, fmt.Errorf("rdx: Watch with no streams")
	}
	if err := s.cfg.Validate(); err != nil {
		return nil, err
	}
	wo := WindowOptions{}
	switch {
	case opts.Window != nil:
		wo = *opts.Window
	case s.window != nil:
		wo = *s.window
	}
	wo.fill()

	// Multi-backend (or forced-pool) runs claim one backend per thread
	// from the shared dispatcher, like ProfileThreads does.
	var pl *pool.Pool
	if len(s.remotes) > 1 || (len(s.remotes) == 1 && s.poolSet) {
		var err error
		if pl, err = s.newPool(); err != nil {
			return nil, err
		}
	}

	out := make(chan WindowSnapshot, wo.Buffer)
	go s.watchRun(ctx, opts.Streams, wo, pl, out)
	return out, nil
}

// threadEvent is one message from a watch thread driver: a boundary
// snapshot, or the terminal final result / error.
type threadEvent struct {
	cum   *core.Result // one window boundary's cumulative snapshot
	final *core.Result // terminal: the thread's lifetime result
	err   error        // terminal: the thread failed
}

// watchRun coordinates the per-thread drivers: each boundary round it
// collects one fresh cumulative snapshot from every still-running
// thread (finished threads stand in with their final result — their
// stream simply stopped contributing), merges them with a fresh
// exact-sum Merger, windows the merged aggregate, and delivers the
// snapshot. When every thread has finished it merges the finals —
// exactly as ProfileThreads would — and delivers the Final snapshot.
func (s *Session) watchRun(ctx context.Context, streams []Reader, wo WindowOptions, pl *pool.Pool, out chan<- WindowSnapshot) {
	defer close(out)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // unblocks any driver still trying to deliver
	if pl != nil {
		defer pl.Close()
	}

	chans := make([]chan threadEvent, len(streams))
	for i := range streams {
		chans[i] = make(chan threadEvent)
		go s.watchThread(ctx, i, streams[i], wo, pl, chans[i])
	}

	col := window.NewCollector(s.cfg.Granularity.BlockSize(), wo.Ring, wo.Drift)
	cums := make([]*core.Result, len(streams))
	finals := make([]*core.Result, len(streams))
	live := len(streams)
	var runErr error
	seq := 0
rounds:
	for live > 0 {
		progressed := false
		for i := range streams {
			if finals[i] != nil {
				continue
			}
			ev := <-chans[i]
			switch {
			case ev.err != nil:
				runErr = fmt.Errorf("rdx: watch thread %d: %w", i, ev.err)
				break rounds
			case ev.final != nil:
				finals[i] = ev.final
				cums[i] = ev.final
				live--
			default:
				cums[i] = ev.cum
				progressed = true
			}
		}
		if !progressed {
			break
		}
		seq++
		m := core.MergeResults(cums)
		w := col.Observe(m.Accesses, m.Samples, m.ReuseDistance, m.ReuseTime)
		select {
		case out <- WindowSnapshot{Seq: seq, Cumulative: m, Window: w}:
		case <-ctx.Done():
			runErr = ctx.Err()
			break rounds
		}
	}
	if runErr == nil {
		runErr = ctx.Err()
	}

	final := WindowSnapshot{Seq: seq, Final: true, Err: runErr}
	if runErr == nil {
		// The lifetime aggregate: the same merge of per-thread finals
		// ProfileThreads performs, untouched by any windowing.
		final.Cumulative = core.MergeResults(finals)
	}
	select {
	case out <- final:
	case <-ctx.Done():
	}
}

// watchThread drives one stream to completion, delivering a cumulative
// snapshot at every window boundary and a terminal final/error event.
func (s *Session) watchThread(ctx context.Context, i int, r Reader, wo WindowOptions, pl *pool.Pool, out chan<- threadEvent) {
	send := func(ev threadEvent) bool {
		select {
		case out <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}
	tcfg := core.ThreadConfig(s.cfg, i)

	if len(s.remotes) == 0 {
		p, err := core.NewProfiler(tcfg)
		if err != nil {
			send(threadEvent{err: err})
			return
		}
		res, err := p.RunWindowedContext(ctx, r, s.costs, wo.EveryAccesses, func(snap *core.Result) {
			send(threadEvent{cum: snap})
		})
		if err != nil {
			send(threadEvent{err: err})
			return
		}
		send(threadEvent{final: res})
		return
	}

	res, err := s.watchThreadRemote(ctx, r, tcfg, wo, pl, send)
	if err != nil {
		send(threadEvent{err: err})
		return
	}
	send(threadEvent{final: res})
}

// watchThreadRemote drives one stream against an rdxd backend under a
// wire watch subscription. The driver paces itself on boundaries: it
// sends the batches of one window, then blocks on the boundary's
// pushed snapshot before sending more. That pacing is what makes every
// boundary recoverable across a reconnect (see
// wire.ReconnectingClient.WatchSnapshot).
func (s *Session) watchThreadRemote(ctx context.Context, r Reader, tcfg core.Config, wo WindowOptions, pl *pool.Pool, send func(threadEvent) bool) (*core.Result, error) {
	addr := s.remotes[0].Addr
	if pl != nil {
		b, release, err := pl.PickBackend(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		addr = b.Addr
	}

	batch := s.remoteOpts.BatchSize
	if batch <= 0 {
		batch = trace.DefaultBatchSize
	}
	everyBatches := int(wo.EveryAccesses / uint64(batch))
	if everyBatches < 1 {
		everyBatches = 1
	}

	var buf []Access
	if batch <= trace.DefaultBatchSize {
		buf = trace.BatchBuf()[:batch]
		defer trace.ReleaseBatchBuf(buf)
	} else {
		buf = make([]Access, batch)
	}

	if s.retry != nil {
		rc := wire.NewReconnectingClient(addr, tcfg, *s.retry)
		defer rc.Close()
		if s.remoteOpts.MaxWireVersion != 0 {
			rc.SetMaxWireVersion(s.remoteOpts.MaxWireVersion)
		}
		if err := rc.Watch(ctx, everyBatches, nil); err != nil {
			return nil, err
		}
		var sent uint64
		for {
			n, rerr := r.Read(buf)
			if n > 0 {
				if err := rc.SendBatch(ctx, buf[:n]); err != nil {
					return nil, err
				}
				sent++
				if sent%uint64(everyBatches) == 0 {
					snap, err := rc.WatchSnapshot(ctx, sent)
					if err != nil {
						return nil, err
					}
					if !send(threadEvent{cum: wire.ToCore(snap)}) {
						return nil, ctx.Err()
					}
				}
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				return nil, fmt.Errorf("reading access stream: %w", rerr)
			}
		}
		res, err := rc.Finish(ctx)
		if err != nil {
			return nil, err
		}
		return wire.ToCore(res), nil
	}

	c, err := wire.DialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if s.remoteOpts.MaxWireVersion != 0 {
		c.SetMaxWireVersion(s.remoteOpts.MaxWireVersion)
	}
	if _, err := c.Open(tcfg); err != nil {
		return nil, err
	}
	if err := c.Watch(everyBatches); err != nil {
		return nil, err
	}
	var sent uint64
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if err := c.SendBatch(buf[:n]); err != nil {
				return nil, err
			}
			sent++
			if sent%uint64(everyBatches) == 0 {
				p, err := c.ReadPush()
				if err != nil {
					return nil, err
				}
				if p.Seq != sent {
					return nil, fmt.Errorf("watch pushed boundary %d, want %d", p.Seq, sent)
				}
				if !send(threadEvent{cum: wire.ToCore(p.Result)}) {
					return nil, ctx.Err()
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, fmt.Errorf("reading access stream: %w", rerr)
		}
	}
	res, err := c.Finish()
	if err != nil {
		return nil, err
	}
	return wire.ToCore(res), nil
}
