package rdx

// Tests for the subscribe-style continuous-profiling surface:
// Session.Watch must deliver every window boundary in order and leave
// the lifetime result bit-identical to ProfileThreads — locally,
// remotely, and across injected connection faults — and the window
// stream must match what the deprecated poll cadence observed.

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// watchMultiFP fingerprints a MultiResult the way the Session
// differential tests do: per-thread wire JSON plus the merged
// attribution and reuse-distance aggregates.
func watchMultiFP(t *testing.T, m *MultiResult) string {
	t.Helper()
	var parts []string
	for _, r := range m.Threads {
		parts = append(parts, fingerprint(t, r))
	}
	at, err := json.Marshal(m.Attribution)
	if err != nil {
		t.Fatal(err)
	}
	rd, _ := json.Marshal(m.ReuseDistance.Snapshot())
	parts = append(parts, string(at), string(rd))
	b, _ := json.Marshal(parts)
	return string(b)
}

// drainWatch collects every snapshot from a watch channel, failing on a
// missing, out-of-order or malformed delivery, and returns the window
// snapshots and the final one.
func drainWatch(t *testing.T, ch <-chan WindowSnapshot) ([]WindowSnapshot, WindowSnapshot) {
	t.Helper()
	var wins []WindowSnapshot
	var final WindowSnapshot
	sawFinal := false
	for snap := range ch {
		if sawFinal {
			t.Fatal("snapshot delivered after the final one")
		}
		if snap.Final {
			final, sawFinal = snap, true
			continue
		}
		if want := len(wins) + 1; snap.Seq != want {
			t.Fatalf("window Seq %d delivered, want %d", snap.Seq, want)
		}
		if snap.Window == nil || snap.Cumulative == nil {
			t.Fatalf("window snapshot %d missing its window or cumulative result", snap.Seq)
		}
		wins = append(wins, snap)
	}
	if !sawFinal {
		t.Fatal("watch channel closed without a final snapshot")
	}
	return wins, final
}

// neutralFP is fingerprint with StateBytes zeroed, for comparisons that
// legitimately cross batch-size regimes (see TestSessionDifferentialRemote).
func neutralFP(t *testing.T, r *Result) string {
	t.Helper()
	w := ResultToRemote(r)
	w.StateBytes = 0
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWatchLocalLifetimeBitIdentical is the tentpole differential: a
// watched local run must deliver contiguous windows and finish with a
// lifetime MultiResult bit-identical to an unwatched ProfileThreads on
// the same streams and config.
func TestWatchLocalLifetimeBitIdentical(t *testing.T) {
	ctx := context.Background()
	mkStreams := func() []Reader {
		var rs []Reader
		for i := 0; i < 3; i++ {
			rs = append(rs, ZipfAccess(uint64(90+i), Addr(uint64(i)<<40), 2048, 1.0, 50000))
		}
		return rs
	}
	for _, pol := range []ReplacementPolicy{ReplaceProbabilistic, ReplaceHybrid} {
		cfg := policyConfig(pol)
		ch, err := New(WithConfig(cfg), WithWindow(WindowOptions{EveryAccesses: 8192})).
			Watch(ctx, WatchOptions{Streams: mkStreams()})
		if err != nil {
			t.Fatal(err)
		}
		wins, final := drainWatch(t, ch)
		if final.Err != nil {
			t.Fatalf("%v: watch failed: %v", pol, final.Err)
		}
		// 50000 accesses per thread at an 8192-access window = 6 full
		// boundaries per thread = 6 coordinator rounds.
		if len(wins) != 6 {
			t.Fatalf("%v: got %d windows, want 6", pol, len(wins))
		}
		for i := 1; i < len(wins); i++ {
			prev, cur := wins[i-1].Window, wins[i].Window
			if cur.StartAccesses != prev.EndAccesses {
				t.Errorf("%v: window %d starts at %d, previous ended at %d",
					pol, wins[i].Seq, cur.StartAccesses, prev.EndAccesses)
			}
		}

		want, err := New(WithConfig(cfg)).ProfileThreads(ctx, mkStreams())
		if err != nil {
			t.Fatal(err)
		}
		if watchMultiFP(t, final.Cumulative) != watchMultiFP(t, want) {
			t.Errorf("%v: watched lifetime diverges from ProfileThreads", pol)
		}
	}
}

// TestWatchDriftDetectsPhaseChange runs a two-phase workload (tiny
// cyclic working set, then a large random one) through a local watch
// and asserts drift is flagged exactly at the phase boundary, with the
// stationary windows on either side staying clean.
func TestWatchDriftDetectsPhaseChange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SamplePeriod = 64 // dense sampling so every window clears MinSamples
	phased := trace.Concat(
		Cyclic(0, 64, 65536),
		trace.RandomUniform(17, 0, 1<<15, 65536),
	)
	ch, err := New(WithConfig(cfg)).Watch(context.Background(), WatchOptions{
		Streams: []Reader{phased},
		Window:  &WindowOptions{EveryAccesses: 16384},
	})
	if err != nil {
		t.Fatal(err)
	}
	wins, final := drainWatch(t, ch)
	if final.Err != nil {
		t.Fatal(final.Err)
	}
	if len(wins) != 8 {
		t.Fatalf("got %d windows, want 8", len(wins))
	}
	// Windows 1-4 are the cyclic phase, 5-8 the random one. The random
	// phase's reuses resolve with watchpoint latency (mean reuse time is
	// a couple of windows there), so the detector may fire a window or
	// two after the boundary — but never inside the stationary prefix.
	firstDrift := -1
	for _, w := range wins {
		if w.Window.Score != nil && w.Window.Score.Drift {
			firstDrift = w.Seq
			break
		}
	}
	if firstDrift < 5 || firstDrift > 7 {
		t.Errorf("first drift flagged at window %d, want within [5,7] of the phase boundary", firstDrift)
	}
	for _, w := range wins[1:4] {
		if w.Window.Score != nil && w.Window.Score.Drift {
			t.Errorf("stationary window %d flagged as drift", w.Seq)
		}
	}
	if wsOld, wsNew := wins[3].Window.WorkingSetBytes, wins[7].Window.WorkingSetBytes; wsNew <= wsOld {
		t.Errorf("working set did not grow across the phase change: %d -> %d bytes", wsOld, wsNew)
	}
}

// TestWatchRemoteDifferential watches the same stream locally and
// against an rdxd daemon: the runs must agree window by window
// (cumulative snapshots bit-identical modulo StateBytes) and on the
// lifetime result.
func TestWatchRemoteDifferential(t *testing.T) {
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	ctx := context.Background()
	cfg := policyConfig(ReplaceProbabilistic)
	accs, err := trace.Collect(ZipfAccess(23, 0, 4096, 1.0, 120000))
	if err != nil {
		t.Fatal(err)
	}
	wo := WindowOptions{EveryAccesses: 16384}

	local, err := New(WithConfig(cfg), WithWindow(wo)).
		Watch(ctx, WatchOptions{Streams: []Reader{FromSlice(accs)}})
	if err != nil {
		t.Fatal(err)
	}
	lwins, lfinal := drainWatch(t, local)
	if lfinal.Err != nil {
		t.Fatal(lfinal.Err)
	}

	// BatchSize 2048 divides the window length, so the remote boundaries
	// (whole batches) land on exactly the local ones.
	remote, err := New(WithConfig(cfg), WithRemote(srv.Addr()),
		WithRemoteOptions(RemoteOptions{BatchSize: 2048}), WithWindow(wo)).
		Watch(ctx, WatchOptions{Streams: []Reader{FromSlice(accs)}})
	if err != nil {
		t.Fatal(err)
	}
	rwins, rfinal := drainWatch(t, remote)
	if rfinal.Err != nil {
		t.Fatal(rfinal.Err)
	}

	if len(rwins) != len(lwins) {
		t.Fatalf("remote delivered %d windows, local %d", len(rwins), len(lwins))
	}
	for i := range rwins {
		if neutralFP(t, rwins[i].Cumulative.Threads[0]) != neutralFP(t, lwins[i].Cumulative.Threads[0]) {
			t.Errorf("window %d: remote cumulative diverges from local", i+1)
		}
	}
	if neutralFP(t, rfinal.Cumulative.Threads[0]) != neutralFP(t, lfinal.Cumulative.Threads[0]) {
		t.Error("remote watched lifetime diverges from local")
	}
}

// TestWatchMatchesDeprecatedSnapshotPolling pins the migration contract
// for -snapshot-every users: a Watch subscription at the equivalent
// cadence delivers cumulative snapshots byte-identical (StateBytes
// included — same daemon, same batches) to what the deprecated
// RemoteOptions.SnapshotEvery polling observed.
func TestWatchMatchesDeprecatedSnapshotPolling(t *testing.T) {
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	ctx := context.Background()
	cfg := policyConfig(ReplaceProbabilistic)
	accs, err := trace.Collect(ZipfAccess(29, 0, 4096, 1.0, 120000))
	if err != nil {
		t.Fatal(err)
	}

	var polled []string
	_, err = ProfileRemote(ctx, srv.Addr(), FromSlice(accs), cfg, RemoteOptions{
		BatchSize:     2048,
		SnapshotEvery: 8,
		OnSnapshot: func(r *RemoteResult) {
			b, err := json.Marshal(r)
			if err != nil {
				t.Error(err)
			}
			polled = append(polled, string(b))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// EveryAccesses 16384 at BatchSize 2048 is every 8 batches — the
	// same boundaries the poll hit.
	ch, err := New(WithConfig(cfg), WithRemote(srv.Addr()),
		WithRemoteOptions(RemoteOptions{BatchSize: 2048})).
		Watch(ctx, WatchOptions{
			Streams: []Reader{FromSlice(accs)},
			Window:  &WindowOptions{EveryAccesses: 16384},
		})
	if err != nil {
		t.Fatal(err)
	}
	wins, final := drainWatch(t, ch)
	if final.Err != nil {
		t.Fatal(final.Err)
	}
	if len(wins) == 0 || len(wins) != len(polled) {
		t.Fatalf("watch delivered %d windows, deprecated polling %d snapshots", len(wins), len(polled))
	}
	for i := range wins {
		b, err := json.Marshal(wire.FromCore(wins[i].Cumulative.Threads[0], false))
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != polled[i] {
			t.Errorf("boundary %d: watched snapshot differs from deprecated polled snapshot", i+1)
		}
	}
}

// TestWatchReconnectDeliversEveryWindowInOrder is the acceptance E2E:
// under an injected fault schedule that kills connections mid-stream,
// a watched remote session must still deliver every window snapshot,
// in order, with none duplicated or dropped, and finish with a result
// bit-identical to an unfaulted run.
func TestWatchReconnectDeliversEveryWindowInOrder(t *testing.T) {
	srv, err := server.New(server.Config{Logf: func(string, ...any) {}, CheckpointEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	defer srv.Close()
	ctx := context.Background()
	cfg := policyConfig(ReplaceProbabilistic)
	accs, err := trace.Collect(ZipfAccess(31, 0, 4096, 1.0, 250000))
	if err != nil {
		t.Fatal(err)
	}

	faults := faultnet.NewDialer(faultnet.Options{
		Seed:          99,
		DropAfterMin:  80_000,
		DropAfterMax:  200_000,
		CorruptProb:   0.02,
		PartialWrites: true,
	}, nil)
	policy := RetryPolicy{
		MaxAttempts: 40,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		OpTimeout:   10 * time.Second,
		SyncEvery:   8,
		Seed:        7,
	}
	policy.Dial = faults.DialContext

	ch, err := New(WithConfig(cfg), WithRemote(srv.Addr()), WithRetry(policy),
		WithRemoteOptions(RemoteOptions{BatchSize: 2048})).
		Watch(ctx, WatchOptions{
			Streams: []Reader{FromSlice(accs)},
			Window:  &WindowOptions{EveryAccesses: 16384},
		})
	if err != nil {
		t.Fatal(err)
	}
	wins, final := drainWatch(t, ch)
	if final.Err != nil {
		t.Fatalf("faulted watch failed: %v", final.Err)
	}
	// 250000 accesses in 2048-access batches = 123 batches; a boundary
	// every 8 batches = 15 windows (drainWatch already checked density
	// and order).
	if len(wins) != 15 {
		t.Fatalf("got %d windows, want 15", len(wins))
	}
	if faults.Conns() < 2 {
		t.Fatalf("fault schedule produced %d connections; the test needs at least one reconnect", faults.Conns())
	}

	ref, err := New(WithConfig(cfg), WithRemote(srv.Addr()),
		WithRemoteOptions(RemoteOptions{BatchSize: 2048})).Profile(ctx, FromSlice(accs))
	if err != nil {
		t.Fatal(err)
	}
	if neutralFP(t, final.Cumulative.Threads[0]) != neutralFP(t, ref) {
		t.Error("faulted watched lifetime diverges from unfaulted run")
	}
}
