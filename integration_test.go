package rdx

// Integration tests exercising the public API end to end: the complete
// profile → analyze → compare pipeline a downstream user runs.

import (
	"encoding/json"
	"math"
	"testing"
)

func TestEndToEndWorkloadPipeline(t *testing.T) {
	// Full pipeline on one suite workload: profile, ground truth,
	// accuracy, miss-ratio prediction, attribution, serialization.
	const n = 1 << 20
	cfg := DefaultConfig()
	cfg.SamplePeriod = 2 << 10

	stream, err := Workload("perlbench", 1, n)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Profile(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}

	stream, err = Workload("perlbench", 1, n)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := Exact(stream, WordGranularity)
	if err != nil {
		t.Fatal(err)
	}

	if acc := Accuracy(res.ReuseDistance, gt.ReuseDistance); acc < 0.80 {
		t.Errorf("pipeline accuracy = %v", acc)
	}

	// Histogram mass equals the access count on both sides.
	if math.Abs(res.ReuseDistance.Total()-float64(n)) > 1 {
		t.Errorf("RDX histogram mass = %v, want %d", res.ReuseDistance.Total(), n)
	}
	if gt.ReuseDistance.Total() != float64(n) {
		t.Errorf("GT histogram mass = %v, want %d", gt.ReuseDistance.Total(), n)
	}

	// Miss-ratio predictions from both histograms agree.
	for _, capWords := range []uint64{1 << 10, 1 << 16} {
		a := PredictMissRatio(res.ReuseDistance, capWords)
		b := PredictMissRatio(gt.ReuseDistance, capWords)
		if math.Abs(a-b) > 0.12 {
			t.Errorf("miss prediction at %d words: RDX %v vs GT %v", capWords, a, b)
		}
	}

	// Attribution carries the workload's tagged PCs.
	if len(res.Attribution) == 0 {
		t.Fatal("no attribution pairs")
	}
	for _, p := range res.Attribution {
		if p.Pair.UsePC < 0x400000 {
			t.Errorf("untagged PC %#x in attribution", uint64(p.Pair.UsePC))
		}
	}

	// Histograms survive a JSON round trip.
	data, err := json.Marshal(res.ReuseDistance)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(res.ReuseDistance, &back); acc != 1 {
		t.Errorf("JSON round trip accuracy = %v", acc)
	}
}

func TestEndToEndMultithreaded(t *testing.T) {
	const n = 512 << 10
	cfg := DefaultConfig()
	cfg.SamplePeriod = 1 << 10

	streams := make([]Reader, 3)
	for i := range streams {
		s, err := Workload("exchange2", uint64(i+1), n)
		if err != nil {
			t.Fatal(err)
		}
		streams[i] = s
	}
	multi, err := ProfileThreads(streams, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Accesses != 3*n {
		t.Errorf("merged accesses = %d", multi.Accesses)
	}
	single, err := Workload("exchange2", 1, n)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := Exact(single, WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	// Threads run the same kernel, so the merged shape matches one
	// thread's ground truth.
	if acc := Accuracy(multi.ReuseDistance, gt.ReuseDistance); acc < 0.85 {
		t.Errorf("merged multithread accuracy vs single GT = %v", acc)
	}
}

func TestEndToEndEveryWorkloadSmoke(t *testing.T) {
	// Every suite workload must survive the full pipeline at smoke size.
	cfg := DefaultConfig()
	cfg.SamplePeriod = 1 << 10
	for _, name := range WorkloadNames() {
		stream, err := Workload(name, 1, 128<<10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Profile(stream, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Component shares round down, so a stream may come up a few
		// accesses short of the requested n.
		if res.Accesses < 128<<10-8 || res.Accesses > 128<<10 {
			t.Errorf("%s: accesses = %d", name, res.Accesses)
		}
		if res.Samples == 0 {
			t.Errorf("%s: no samples", name)
		}
		if tot := res.ReuseDistance.Total(); math.Abs(tot-float64(res.Accesses)) > 1e-3 {
			t.Errorf("%s: histogram mass %v vs %d accesses", name, tot, res.Accesses)
		}
	}
}
