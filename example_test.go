package rdx_test

// Testable examples documenting the public API (go doc repro).

import (
	"fmt"

	"repro"
)

// Example_profile measures the reuse-distance histogram of a small
// cyclic loop: every post-warmup access reuses at distance 99, which the
// log2 histogram reports in the [64,128) bucket.
func Example_profile() {
	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 500

	res, err := rdx.Profile(rdx.Cyclic(0, 100, 500_000), cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	// All finite mass sits in the bucket containing distance 99.
	frac := res.ReuseDistance.Weight(7) / res.ReuseDistance.Total() // bucket [64,128)
	fmt.Printf("mass at distance ~99: %.2f\n", frac)
	// Output:
	// mass at distance ~99: 1.00
}

// Example_accuracy compares a featherlight profile against exhaustive
// ground truth, the way the paper's evaluation does.
func Example_accuracy() {
	mk := func() rdx.Reader { return rdx.ZipfAccess(7, 0, 4096, 1.0, 400_000) }

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 400
	res, err := rdx.Profile(mk(), cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	gt, err := rdx.Exact(mk(), rdx.WordGranularity)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("accuracy above 0.9: %v\n", rdx.Accuracy(res.ReuseDistance, gt.ReuseDistance) > 0.9)
	// Output:
	// accuracy above 0.9: true
}

// Example_missRatio predicts LRU cache behaviour from one profile: a
// 700-word working set misses a 512-word cache and fits a 1024-word one.
func Example_missRatio() {
	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 500
	res, err := rdx.Profile(rdx.Cyclic(0, 700, 700_000), cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("512-word cache thrashes: %v\n", rdx.PredictMissRatio(res.ReuseDistance, 512) > 0.9)
	fmt.Printf("1024-word cache fits:    %v\n", rdx.PredictMissRatio(res.ReuseDistance, 1024) < 0.1)
	// Output:
	// 512-word cache thrashes: true
	// 1024-word cache fits:    true
}

// Example_attribution finds the code pair carrying the worst locality:
// the big sweep at PC 0x2000, not the hot loop at PC 0x1000.
func Example_attribution() {
	const n = 400_000
	stream := rdx.Limit(rdx.Mix(3,
		[]rdx.Reader{
			rdx.Tag(0x1000, rdx.Cyclic(0, 64, n)),
			rdx.Tag(0x2000, rdx.Cyclic(1<<40, 9_000, n)),
		},
		[]float64{1, 1}), n)

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 300
	res, err := rdx.Profile(stream, cfg)
	if err != nil {
		fmt.Println(err)
		return
	}
	worst := res.Attribution.WorstLocality(1, res.Attribution[0].Weight/50)
	fmt.Printf("worst-locality code: %#x\n", uint64(worst[0].Pair.UsePC))
	// Output:
	// worst-locality code: 0x2000
}
