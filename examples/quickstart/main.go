// Quickstart: profile a synthetic program with RDX and compare against
// exhaustive ground truth — the library's core loop in ~40 lines.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The "program" is any access stream. Here: a loop over a 1 MiB
	// array mixed with Zipf-distributed lookups into an 8 MiB table —
	// a two-plateau locality profile.
	const n = 2 << 20
	program := func() rdx.Reader {
		return rdx.Limit(rdx.Mix(42,
			[]rdx.Reader{
				rdx.Cyclic(0, 100_000, n),                 // ~800KiB hot array
				rdx.ZipfAccess(7, 1<<30, 900_000, 1.1, n), // ~7MiB Zipf table
				rdx.PointerChase(9, 1<<31, 50_000, n),     // linked structure
			},
			[]float64{5, 3, 2}), n)
	}

	// Featherlight profile: PMU sampling + debug registers, no
	// instrumentation. The period is scaled to the short demo run.
	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 2 << 10
	res, err := rdx.Profile(program(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RDX: %d samples, %d reuse pairs, modelled overhead %.2f%%\n",
		res.Samples, res.ReusePairs, 100*res.TimeOverhead())
	fmt.Printf("\nRDX reuse-distance histogram:\n%s", res.ReuseDistance)

	// Ground truth via exhaustive (Olken) measurement.
	gt, err := rdx.Exact(program(), rdx.WordGranularity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGround truth (%d distinct words, %0.1f MiB of profiler state):\n%s",
		gt.DistinctBlocks, float64(gt.StateBytes)/(1<<20), gt.ReuseDistance)

	fmt.Printf("\naccuracy: %.4f\n", rdx.Accuracy(res.ReuseDistance, gt.ReuseDistance))
}
