// missratio derives a full miss-ratio curve — the machine-independent
// "how would any LRU cache size serve this program" view — from one RDX
// profile, and validates selected points against an actual LRU cache
// simulation. One featherlight run replaces a simulator sweep.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/cache"
)

func main() {
	name := flag.String("workload", "deepsjeng", "suite workload")
	n := flag.Uint64("n", 2<<20, "accesses to profile")
	flag.Parse()

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 4 << 10
	stream, err := rdx.Workload(*name, 1, *n)
	if err != nil {
		log.Fatal(err)
	}
	res, err := rdx.Profile(stream, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The whole curve from one profile: log-spaced capacities, miss
	// ratio at each, monotone by construction.
	curve := res.MissRatioCurve(rdx.SizeSweep{MinLines: 1 << 8, MaxLines: 1 << 20})
	fmt.Printf("miss-ratio curve for %s (from one RDX profile of %d accesses)\n\n%s\n",
		*name, *n, curve)

	// Spot-check selected capacities against a real LRU simulation at
	// word grain; curve.At interpolates between the sampled points.
	fmt.Printf("%-16s %-12s %-12s\n", "capacity(words)", "predicted%", "simulated%")
	for _, words := range []uint64{1 << 10, 1 << 14, 1 << 18} {
		stream, err := rdx.Workload(*name, 1, *n)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := cache.Simulate(stream, cache.Config{
			SizeBytes: words * 8,
			LineBytes: 8,
			Ways:      0,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16d %-12.2f %-12.2f\n", words, 100*curve.At(words), 100*sim)
	}
	fmt.Println("\n(predicted: stack-distance identity on the RDX histogram;")
	fmt.Println(" simulated: fully associative LRU reference)")
}
