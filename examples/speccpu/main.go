// speccpu reproduces the paper's headline application: characterizing
// the memory performance of a long-running SPEC-CPU2017-style suite with
// a featherlight tool. For each benchmark it reports the median reuse
// distance, the cold-access fraction, and how much of the access stream
// reaches past typical L1/L2/LLC capacities — all derived from RDX
// histograms alone, at a few percent modelled overhead.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	n := flag.Uint64("n", 4<<20, "accesses per benchmark")
	period := flag.Uint64("period", 8<<10, "RDX sampling period")
	flag.Parse()

	// Cache capacities in 8-byte words: 32 KiB L1, 1 MiB L2, 32 MiB LLC.
	const l1, l2, llc = 4 << 10, 128 << 10, 4 << 20

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = *period

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark\tmedian RD\tcold%\t>L1%\t>L2%\t>LLC%\tovh%")
	for _, name := range rdx.WorkloadNames() {
		stream, err := rdx.Workload(name, 1, *n)
		if err != nil {
			log.Fatal(err)
		}
		res, err := rdx.Profile(stream, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rd := res.ReuseDistance
		med := "inf"
		if m := rd.Percentile(0.5); !math.IsInf(m, 1) {
			med = fmt.Sprintf("%.0f", m)
		}
		fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n",
			name, med,
			100*rd.Cold()/rd.Total(),
			100*rd.FractionAbove(l1),
			100*rd.FractionAbove(l2),
			100*rd.FractionAbove(llc),
			100*res.TimeOverhead())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
