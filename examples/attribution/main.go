// attribution demonstrates RDX's actionable output: pinpointing *which
// code* causes poor locality, with no instrumentation. It profiles a
// naive matrix multiply, shows that the worst-locality use→reuse pair is
// the B-matrix load (whose column-wise reuse spans the whole matrix),
// applies the tiling fix a performance engineer would, and shows the
// pair's reuse distance collapse.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	matrixN := flag.Int("matrix", 256, "matrix dimension N")
	block := flag.Int("block", 32, "tile size for the fixed variant")
	flag.Parse()

	const kernelPC = rdx.Addr(0x770000)
	siteNames := map[rdx.Addr]string{
		kernelPC + 0: "load A[i][k]",
		kernelPC + 1: "load B[k][j]",
		kernelPC + 2: "load C[i][j]",
		kernelPC + 3: "store C[i][j]",
	}

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 2 << 10

	profile := func(label string, bs int) {
		stream := rdx.Tag(kernelPC, rdx.MatMulBlocked(0, *matrixN, bs))
		res, err := rdx.Profile(stream, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d samples, %d reuse pairs):\n", label, res.Samples, res.ReusePairs)
		fmt.Printf("  %-28s %-28s %10s %12s\n", "use site", "reuse site", "count", "mean RD")
		minW := 0.0
		if len(res.Attribution) > 0 {
			minW = res.Attribution[0].Weight / 50
		}
		for _, p := range res.Attribution.WorstLocality(4, minW) {
			fmt.Printf("  %-28s %-28s %10d %12.0f\n",
				site(siteNames, p.Pair.UsePC), site(siteNames, p.Pair.ReusePC),
				p.Count, p.MeanDistance)
		}
		fmt.Println()
	}

	fmt.Printf("profiling %dx%d matrix multiply, worst-locality code pairs first\n\n", *matrixN, *matrixN)
	profile("naive (i,j,k loops)", *matrixN)
	profile(fmt.Sprintf("tiled %dx%d", *block, *block), *block)

	fmt.Println("the B-load's reuse distance collapses under tiling — the exact")
	fmt.Println("diagnosis and fix the paper's attribution workflow targets.")
}

func site(names map[rdx.Addr]string, pc rdx.Addr) string {
	if s, ok := names[pc]; ok {
		return s
	}
	return fmt.Sprintf("%#x", uint64(pc))
}
