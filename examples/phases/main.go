// phases shows phase-resolved profiling of a long-running program — the
// paper's motivating scenario is production software whose locality
// changes over time, which exhaustive tools are too slow to watch. The
// program here moves through three phases (initialization sweep, hot
// compute loop, scattered lookups); segmenting the stream and profiling
// each segment with RDX exposes the phase structure at featherlight
// cost, plus a multithreaded profile of all phases running concurrently.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
)

func main() {
	const perPhase = 1 << 20
	phases := []struct {
		name string
		mk   func() rdx.Reader
	}{
		{"init: streaming sweep", func() rdx.Reader {
			return rdx.Tag(0x100000, rdx.Sequential(0, perPhase, 8))
		}},
		{"compute: hot loop", func() rdx.Reader {
			return rdx.Tag(0x200000, rdx.Cyclic(1<<40, 30_000, perPhase))
		}},
		{"analyze: scattered lookups", func() rdx.Reader {
			return rdx.Tag(0x300000, rdx.ZipfAccess(7, 1<<41, 2_000_000, 0.8, perPhase))
		}},
	}

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 4 << 10

	fmt.Println("per-phase profiles (segmented featherlight profiling):")
	fmt.Printf("%-28s %-12s %-10s %-10s\n", "phase", "median RD", "cold%", "pairs")
	for _, ph := range phases {
		res, err := rdx.Profile(ph.mk(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		med := "inf"
		if m := res.ReuseDistance.Percentile(0.5); !math.IsInf(m, 1) {
			med = fmt.Sprintf("%.0f", m)
		}
		fmt.Printf("%-28s %-12s %-10.1f %-10d\n", ph.name,
			med, 100*res.ReuseDistance.Cold()/res.ReuseDistance.Total(), res.ReusePairs)
	}

	// The same three phases as concurrent threads of one program.
	streams := make([]rdx.Reader, len(phases))
	for i, ph := range phases {
		streams[i] = ph.mk()
	}
	multi, err := rdx.ProfileThreads(streams, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmerged multithreaded profile: %d accesses, %d reuse pairs, worst-thread overhead %.2f%%\n",
		multi.Accesses, multi.ReusePairs, 100*multi.TimeOverhead())
	fmt.Printf("\nmerged reuse-distance histogram:\n%s", multi.ReuseDistance)
}
