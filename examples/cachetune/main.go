// cachetune shows RDX guiding a real optimization decision: choosing
// the blocking factor of a tiled matrix multiply. It profiles the
// multiply's address stream at several block sizes, predicts each
// variant's behavior across a full cache hierarchy — per-level miss
// ratios folded into one average memory access time — and picks the
// winner. A closing what-if asks whether doubling the L2 would have
// bought as much as the software fix: the workflow a performance
// engineer runs on a production binary where exhaustive tracing and
// simulator sweeps are unaffordable.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/trace"
)

// hierarchy is the tuning target: a scaled three-level machine sized so
// a few-hundred-KiB matmul working set exercises every level.
func hierarchy() []rdx.CacheLevel {
	return []rdx.CacheLevel{
		{Name: "L1", Config: rdx.CacheConfig{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}},
		{Name: "L2", Config: rdx.CacheConfig{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8}},
		{Name: "L3", Config: rdx.CacheConfig{SizeBytes: 2 << 20, LineBytes: 64, Ways: 0}},
	}
}

// Modelled hit latencies per level and for memory, in cycles.
var (
	levelLatency = []float64{4, 14, 40}
	memLatency   = 200.0
)

func main() {
	matrixN := flag.Int("matrix", 192, "matrix dimension N (three NxN float64 matrices)")
	flag.Parse()

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 4 << 10

	fmt.Printf("tuning %dx%d matmul over a 3-level hierarchy (L1 32KiB / L2 256KiB / L3 2MiB)\n\n",
		*matrixN, *matrixN)
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "block", "L1 miss%", "L2 miss%", "L3 miss%", "AMAT")

	best, bestAMAT := 0, 0.0
	var bestRes *rdx.Result
	for _, bs := range []int{8, 16, 32, 64, 128, *matrixN} {
		if bs > *matrixN {
			continue
		}
		stream := trace.MatMulBlocked(0, *matrixN, bs)
		res, err := rdx.Profile(stream, cfg)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := res.PredictHierarchy(hierarchy())
		if err != nil {
			log.Fatal(err)
		}
		amat, err := pred.AMAT(levelLatency, memLatency)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d", bs)
		if bs == *matrixN {
			label = "none"
		}
		fmt.Printf("%-8s %-10.2f %-10.2f %-10.2f %-10.1f\n", label,
			100*pred.Levels[0].Local, 100*pred.Levels[1].Local, 100*pred.Levels[2].Local, amat)
		if best == 0 || amat < bestAMAT {
			bestAMAT, best, bestRes = amat, bs, res
		}
	}

	label := fmt.Sprintf("block size %d", best)
	if best == *matrixN {
		label = "no blocking"
	}
	fmt.Printf("\nrecommendation: %s (modelled AMAT %.1f cycles)\n", label, bestAMAT)

	// Would hardware have fixed it instead? Ask the best variant's
	// profile directly — no new profiling run needed.
	rep, err := bestRes.WhatIf(hierarchy(), "l2.size=2x", rdx.SizeSweep{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", rep)
}
