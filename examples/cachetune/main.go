// cachetune shows RDX guiding a real optimization decision: choosing the
// blocking factor of a tiled matrix multiply. It profiles the multiply's
// address stream at several block sizes, predicts each variant's miss
// ratio for an L2-sized cache from the RDX histogram, and picks the
// winner — the workflow a performance engineer would run on a production
// binary where exhaustive tracing is unaffordable.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/trace"
)

func main() {
	matrixN := flag.Int("matrix", 192, "matrix dimension N (three NxN float64 matrices)")
	cacheWords := flag.Uint64("cachewords", 32<<10, "target cache capacity in 8-byte words (32K words = 256KiB)")
	flag.Parse()

	cfg := rdx.DefaultConfig()
	cfg.SamplePeriod = 4 << 10

	fmt.Printf("tuning %dx%d matmul for a %d-word LRU cache\n\n", *matrixN, *matrixN, *cacheWords)
	fmt.Printf("%-8s %-12s %-12s\n", "block", "pred. miss%", "reuse pairs")

	best, bestMiss := 0, 1.1
	for _, bs := range []int{8, 16, 32, 64, 128, *matrixN} {
		if bs > *matrixN {
			continue
		}
		stream := trace.MatMulBlocked(0, *matrixN, bs)
		res, err := rdx.Profile(stream, cfg)
		if err != nil {
			log.Fatal(err)
		}
		miss := rdx.PredictMissRatio(res.ReuseDistance, *cacheWords)
		label := fmt.Sprintf("%d", bs)
		if bs == *matrixN {
			label = "none"
		}
		fmt.Printf("%-8s %-12.2f %-12d\n", label, 100*miss, res.ReusePairs)
		if miss < bestMiss {
			bestMiss, best = miss, bs
		}
	}

	label := fmt.Sprintf("block size %d", best)
	if best == *matrixN {
		label = "no blocking"
	}
	fmt.Printf("\nrecommendation: %s (predicted miss ratio %.2f%%)\n", label, 100*bestMiss)
}
