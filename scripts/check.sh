#!/bin/sh
# Full verification gate: vet, build, and the complete test suite under
# the race detector (the engine's worker pools and sharded oracle are
# concurrent). Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

# Public-API surface golden: the root package's go doc dump must match
# the committed API.txt, so any accidental export, signature change or
# deletion shows up as a reviewable diff. Regenerate intentionally with:
#   go doc -all . > API.txt
echo "==> public API surface (API.txt)"
go doc -all . > /tmp/rdx-api-surface.txt
if ! diff -u API.txt /tmp/rdx-api-surface.txt; then
    echo "check: public API surface drifted from API.txt" >&2
    echo "check: if intentional, regenerate with: go doc -all . > API.txt" >&2
    exit 1
fi

# Multicore tier-1: the default test pass above runs at the host's
# GOMAXPROCS (1 on the CI box), which never exercises the executor's
# cross-worker stealing or the parallel merge fan-in. Re-run the suite
# pinned to 4 so those paths are covered even on a single-core host.
echo "==> go test ./... (GOMAXPROCS=4)"
GOMAXPROCS=4 go test -count=1 ./...

# Executor chaos smoke: 6 concurrent sessions on a 4-worker
# work-stealing executor at GOMAXPROCS=4, behind a fault-injecting
# transport, with every session handed off mid-stream to a second
# backend via checkpoint drain. Results must stay bit-identical to
# local ground truth — under the race detector, since stealing races
# workers by design.
echo "==> executor chaos smoke (-race, GOMAXPROCS=4)"
go test -race -run='^TestExecutorChaosGOMAXPROCS4$' -count=1 ./internal/server

# Pool fault smoke: the multi-backend E2E (64 streams, 3 backends,
# injected faults, one backend killed mid-run) must keep producing
# results bit-identical to the local run.
echo "==> pool fault-injection smoke"
go test -run='^TestPoolE2EFaultsAndBackendDeath$' -count=1 ./internal/pool

# Migration chaos smoke: the control-plane E2E (64 streams, a backend
# admitted mid-run, another drained live via checkpoint handover over a
# fault-injecting transport, a migration destination killed mid-drain)
# must keep the MultiResult bit-identical to the local run and leave the
# drained backend with zero live sessions — under the race detector,
# since migration races runners, drains, and probers by design.
echo "==> migration chaos smoke (-race)"
go test -race -run='^TestControlPlaneE2EChaos$' -count=1 ./internal/ctrl

# Short fuzz smoke on the wire-protocol decoders: enough to catch a
# regression in the corpus or an obvious panic, cheap enough for CI.
echo "==> fuzz smoke (wire decoders, 10s each)"
go test -run='^$' -fuzz='^FuzzReadFrame$' -fuzztime=10s ./internal/wire
go test -run='^$' -fuzz='^FuzzDecodeBatch$' -fuzztime=10s ./internal/wire
go test -run='^$' -fuzz='^FuzzDecodeColumns$' -fuzztime=10s ./internal/wire

# Wire-compression regression gate: the strided workload's v3
# compression ratio is re-measured and held against the baseline
# committed in BENCH_server.json. The columnar encoding is
# deterministic, so any drop beyond the 5% batch-boundary tolerance is
# a real encoder regression.
echo "==> wire compression gate (strided v3 vs BENCH_server.json)"
go run ./cmd/rdexper -n 1048576 -compress-check BENCH_server.json

# MRC differential gate: the analytical miss-ratio curve and hierarchy
# models are re-validated against real cache simulation on the two
# canonical workloads (mcf, lbm); the experiment itself fails if any
# prediction drifts beyond the tolerances committed in internal/mrc.
echo "==> MRC differential gate (curve and hierarchy vs simulation)"
go run ./cmd/rdexper -n 524288 -period 1024 -exp MRC

# Drift-detection gate: the DRIFT experiment injects three locality
# shifts into a four-phase workload and fails unless every boundary is
# flagged within the detector's latency budget, no stationary window is
# flagged, and an equally long stationary control produces zero flags.
# This covers the continuous-profiling path (windowed collector, drift
# scoring) that Session.Watch and the rdxd alerts run on.
echo "==> drift detection gate (injected phase changes, stationary control)"
go run ./cmd/rdexper -exp DRIFT

# Report diff smoke: a versioned rdx.report/v1 envelope diffed against
# itself must classify as unchanged — exercises the -json schema,
# report.Load, and the significance machinery end to end.
echo "==> rdx diff self-diff smoke"
rdx_report="$(mktemp /tmp/rdx-report-XXXXXX.json)"
go run ./cmd/rdx -workload mcf -n 262144 -period 1024 -json > "$rdx_report"
diff_out="$(go run ./cmd/rdx diff "$rdx_report" "$rdx_report")"
echo "$diff_out"
rm -f "$rdx_report"
case "$diff_out" in
*unchanged*) ;;
*)
    echo "check: rdx diff self-diff did not classify as unchanged" >&2
    exit 1
    ;;
esac

# Engine throughput gate: the two headline rows (batched engine,
# sequential oracle) are re-measured at the operating point committed
# in BENCH_engine.json and held against its recorded noise threshold
# (3x the row's rep spread, floored at 25% for shared-CPU boxes). A
# fresh median below that floor is a real regression, not noise.
echo "==> engine throughput gate (vs BENCH_engine.json)"
go run ./cmd/rdexper -bench-gate BENCH_engine.json

# Bench smoke: one iteration of the committed benchmark set, without
# -race (allocation counts and throughput are meaningless under it).
# Catches a benchmark that no longer compiles or crashes outright; the
# numbers themselves are tracked by BENCH_*.json via rdexper -bench-out.
echo "==> bench smoke (1 iteration)"
go test -run='^$' -bench='^(BenchmarkMachineRun|BenchmarkServerThroughput)$' -benchtime=1x .

echo "check: OK"
