#!/bin/sh
# Full verification gate: vet, build, and the complete test suite under
# the race detector (the engine's worker pools and sharded oracle are
# concurrent). Run from anywhere; operates on the repo root.
set -eu
cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "check: OK"
