package workloads

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

func TestSuiteIsSortedAndNonEmpty(t *testing.T) {
	s := Suite()
	if len(s) < 10 {
		t.Fatalf("suite has %d workloads, want >= 10", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i-1].Name >= s[i].Name {
			t.Errorf("suite not sorted: %q >= %q", s[i-1].Name, s[i].Name)
		}
	}
	for _, w := range s {
		if w.Desc == "" || w.FootprintWords == 0 || w.New == nil {
			t.Errorf("workload %q incompletely specified", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("mcf")
	if err != nil || w.Name != "mcf" {
		t.Errorf("ByName(mcf) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestBuildProducesRequestedCount(t *testing.T) {
	for _, name := range Names() {
		r, err := Build(name, 1, 20000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n, err := trace.Count(r)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n < 20000-8 || n > 20000 {
			t.Errorf("%s produced %d accesses, want ~20000", name, n)
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := Build("nope", 1, 100); err == nil {
		t.Error("Build accepted unknown workload")
	}
}

func TestWorkloadsAreDeterministic(t *testing.T) {
	for _, name := range []string{"mcf", "gcc", "x264"} {
		a, err := Build(name, 7, 5000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(name, 7, 5000)
		if err != nil {
			t.Fatal(err)
		}
		accsA, _ := trace.Collect(a)
		accsB, _ := trace.Collect(b)
		if len(accsA) != len(accsB) {
			t.Fatalf("%s: lengths differ", name)
		}
		for i := range accsA {
			if accsA[i] != accsB[i] {
				t.Fatalf("%s: access %d differs: %v vs %v", name, i, accsA[i], accsB[i])
			}
		}
	}
}

func TestWorkloadRegionsDoNotAlias(t *testing.T) {
	// Each workload lives in its own 2^40 region; streams from two
	// different workloads must never share a block.
	seen := map[string]map[mem.Addr]bool{}
	for _, name := range []string{"lbm", "mcf", "deepsjeng"} {
		r, err := Build(name, 1, 5000)
		if err != nil {
			t.Fatal(err)
		}
		blocks := map[mem.Addr]bool{}
		if err := trace.ForEach(r, func(a mem.Access) bool {
			blocks[a.Addr>>40] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		seen[name] = blocks
	}
	for a, ba := range seen {
		for b, bb := range seen {
			if a >= b {
				continue
			}
			for r := range ba {
				if bb[r] {
					t.Errorf("workloads %s and %s share region %d", a, b, r)
				}
			}
		}
	}
}

func TestWorkloadLocalitySpectrum(t *testing.T) {
	// The suite must span the locality spectrum: exchange2 (tiny working
	// set) reuses far more densely than lbm (streaming). Compare distinct
	// blocks touched in equal-length prefixes.
	distinct := func(name string) int {
		r, err := Build(name, 1, 50000)
		if err != nil {
			t.Fatal(err)
		}
		blocks := map[mem.Addr]bool{}
		if err := trace.ForEach(r, func(a mem.Access) bool {
			blocks[mem.WordGranularity.Block(a.Addr)] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return len(blocks)
	}
	small := distinct("exchange2")
	big := distinct("lbm")
	if small*10 > big {
		t.Errorf("locality spectrum too narrow: exchange2 %d blocks vs lbm %d", small, big)
	}
}
