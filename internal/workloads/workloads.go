// Package workloads provides the benchmark suite used throughout the
// evaluation: fifteen synthetic kernels whose address streams mimic the
// characteristic locality behaviour of named SPEC CPU2017 benchmarks.
//
// SPEC CPU2017 itself is proprietary and cannot ship with this
// repository; reuse-distance measurement, however, sees nothing but the
// address stream, so each kernel is built from the access-pattern
// primitives in internal/trace to land in the same qualitative regime as
// its namesake: streaming sweeps (lbm), pointer chasing (mcf, omnetpp),
// Zipf-distributed table lookups (deepsjeng, xalancbmk), structured-grid
// stencils (cactuBSSN, fotonik3d), blocked linear algebra (nab), sliding
// windows (xz), and cache-resident hot loops (exchange2). The suite spans
// tiny working sets through tens-of-MiB streaming footprints so that
// accuracy and overhead results exercise the full spectrum the paper's
// evaluation covers.
//
// Two sizing rules keep the suite faithful to the paper's regime at
// simulation-scale run lengths (millions of accesses, against SPEC's
// trillions):
//
//   - working sets are deliberately NOT powers of two, so true reuse
//     distances land mid-bucket in the log2 histograms rather than on
//     bucket boundaries where any estimator is brittle;
//   - components meant to be *observed reusing* cycle in well under the
//     run length (reuse time ≤ a few hundred thousand accesses), while
//     streaming components are sized near or beyond the run length so
//     that both RDX and the ground truth see them as cold/LLC-defeating,
//     mirroring how SPEC's big-footprint codes relate to real runs.
package workloads

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Workload is one named benchmark in the suite.
type Workload struct {
	// Name is the kernel's identifier (the SPEC CPU2017 benchmark it is
	// styled after).
	Name string
	// Desc summarizes the access pattern.
	Desc string
	// FootprintWords approximates the number of distinct 8-byte words the
	// kernel touches, independent of run length.
	FootprintWords uint64
	// New builds a fresh single-use access stream of approximately n
	// accesses with the given seed.
	New func(seed uint64, n uint64) trace.Reader
}

// base spreads each workload's address space apart so mixed traces never
// alias.
const regionStride = mem.Addr(1) << 40

// Each workload component is tagged with a stable fake code address
// (0x40N000 for workload region N), so attribution output names
// distinguishable "instructions"; multi-site kernels (stencils, matmul)
// additionally expose per-site PC offsets.

var suite = []Workload{
	{
		Name:           "lbm",
		Desc:           "lattice streaming: repeated linear sweeps over a ~30MiB array",
		FootprintWords: 3_900_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Tag(0x401000, trace.Cyclic(1*regionStride, 3_900_000, n))
		},
	},
	{
		Name:           "mcf",
		Desc:           "network simplex: pointer chase over an arc pool plus hot node metadata",
		FootprintWords: 300_000 + 12_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x402000, trace.PointerChase(seed+1, 2*regionStride, 300_000, n*7/10)),
					trace.Tag(0x402100, trace.ZipfAccess(seed+2, 2*regionStride+1<<30, 12_000, 1.1, n*3/10)),
				},
				[]float64{7, 3})
		},
	},
	{
		Name:           "deepsjeng",
		Desc:           "game tree search: Zipf-distributed transposition-table probes",
		FootprintWords: 3_000_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Tag(0x403000, trace.ZipfAccess(seed, 3*regionStride, 3_000_000, 0.9, n))
		},
	},
	{
		Name:           "leela",
		Desc:           "MCTS: hot Zipf node cache with uniform cold expansion traffic",
		FootprintWords: 230_000 + 3_500_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x404000, trace.ZipfAccess(seed+1, 4*regionStride, 230_000, 1.2, n*8/10)),
					trace.Tag(0x404100, trace.RandomUniform(seed+2, 4*regionStride+1<<30, 3_500_000, n*2/10)),
				},
				[]float64{8, 2})
		},
	},
	{
		Name:           "omnetpp",
		Desc:           "discrete event simulation: event-heap pointer chase with FIFO queue sweeps",
		FootprintWords: 190_000 + 95_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x405000, trace.PointerChase(seed+1, 5*regionStride, 190_000, n*6/10)),
					trace.Tag(0x405100, trace.Cyclic(5*regionStride+1<<30, 95_000, n*4/10)),
				},
				[]float64{6, 4})
		},
	},
	{
		Name:           "xalancbmk",
		Desc:           "XSLT: Zipf DOM-node lookups interleaved with tree pointer chases",
		FootprintWords: 1_900_000 + 210_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x406000, trace.ZipfAccess(seed+1, 6*regionStride, 1_900_000, 1.0, n/2)),
					trace.Tag(0x406100, trace.PointerChase(seed+2, 6*regionStride+1<<30, 210_000, n/2)),
				},
				[]float64{5, 5})
		},
	},
	{
		Name:           "gcc",
		Desc:           "compiler: small hot symbol tables, Zipf IR access, streaming passes",
		FootprintWords: 15_000 + 900_000 + 330_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x407000, trace.Cyclic(7*regionStride, 15_000, n*4/10)),
					trace.Tag(0x407100, trace.ZipfAccess(seed+1, 7*regionStride+1<<30, 900_000, 1.0, n*4/10)),
					trace.Tag(0x407200, trace.Cyclic(7*regionStride+1<<31, 330_000, n*2/10)),
				},
				[]float64{4, 4, 2})
		},
	},
	{
		Name:           "perlbench",
		Desc:           "interpreter: Zipf hash-table probes over a hot op-dispatch loop",
		FootprintWords: 3_800 + 470_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x408000, trace.Cyclic(8*regionStride, 3_800, n/2)),
					trace.Tag(0x408100, trace.ZipfAccess(seed+1, 8*regionStride+1<<30, 470_000, 1.1, n/2)),
				},
				[]float64{5, 5})
		},
	},
	{
		Name:           "x264",
		Desc:           "video encode: frame stencil with a drifting motion-search window",
		FootprintWords: 1920*1080 + 950_000,
		New: func(seed, n uint64) trace.Reader {
			sweeps := int(n/(1920*1080*6)) + 1
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x409000, trace.Stencil2D(9*regionStride, 1920, 1080, sweeps)),
					trace.Tag(0x409100, trace.GaussianWorkingSet(seed+1, 9*regionStride+1<<31, 950_000, 4096, 1<<16, n/2)),
				},
				[]float64{5, 5})
		},
	},
	{
		Name:           "bwaves",
		Desc:           "explicit CFD: wide multi-lane strided sweeps over large arrays",
		FootprintWords: 8 * 45_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Tag(0x40a000, trace.Strided(10*regionStride, 8, 45_000, 64, n))
		},
	},
	{
		Name:           "cactuBSSN",
		Desc:           "numerical relativity: 5-point stencil sweeps over a big 2D grid",
		FootprintWords: 1500 * 1500,
		New: func(seed, n uint64) trace.Reader {
			sweeps := int(n/(1500*1500*6)) + 1
			return trace.Tag(0x40b000, trace.Stencil2D(11*regionStride, 1500, 1500, sweeps))
		},
	},
	{
		Name:           "fotonik3d",
		Desc:           "FDTD electromagnetics: stencil over a wide shallow grid",
		FootprintWords: 5000 * 700,
		New: func(seed, n uint64) trace.Reader {
			sweeps := int(n/(5000*700*6)) + 1
			return trace.Tag(0x40c000, trace.Stencil2D(12*regionStride, 5000, 700, sweeps))
		},
	},
	{
		Name:           "nab",
		Desc:           "molecular dynamics: blocked dense linear algebra with random neighbor lookups",
		FootprintWords: 3*450*450 + 210_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x40d000, trace.Repeat(1<<30, func() trace.Reader { return trace.MatMulBlocked(13*regionStride, 450, 60) })),
					trace.Tag(0x40d100, trace.RandomUniform(seed+1, 13*regionStride+1<<31, 210_000, n*2/10)),
				},
				[]float64{8, 2})
		},
	},
	{
		Name:           "xz",
		Desc:           "compression: sliding dictionary window with a long input scan",
		FootprintWords: 6_500_000 + 3_300_000,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x40e000, trace.GaussianWorkingSet(seed+1, 14*regionStride, 6_500_000, 30_000, 1<<14, n*6/10)),
					trace.Tag(0x40e100, trace.Cyclic(14*regionStride+1<<31, 3_300_000, n*4/10)),
				},
				[]float64{6, 4})
		},
	},
	{
		Name:           "exchange2",
		Desc:           "puzzle solver: cache-resident recursion over tiny boards",
		FootprintWords: 1_900,
		New: func(seed, n uint64) trace.Reader {
			return trace.Mix(seed,
				[]trace.Reader{
					trace.Tag(0x40f000, trace.Cyclic(15*regionStride, 1_900, n/2)),
					trace.Tag(0x40f100, trace.ZipfAccess(seed+1, 15*regionStride, 1_900, 0.8, n/2)),
				},
				[]float64{5, 5})
		},
	},
}

// Suite returns all workloads in a stable order.
func Suite() []Workload {
	out := append([]Workload(nil), suite...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted workload names.
func Names() []string {
	s := Suite()
	names := make([]string, len(s))
	for i, w := range s {
		names[i] = w.Name
	}
	return names
}

// ByName looks up a workload.
func ByName(name string) (Workload, error) {
	for _, w := range suite {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
}

// Build constructs the access stream for a named workload, truncated to
// at most n accesses. Generators are sized to produce ~n (component
// shares round down, so a composed stream may run a few accesses short),
// and Limit caps any overshoot so runs stay comparable across workloads.
func Build(name string, seed, n uint64) (trace.Reader, error) {
	w, err := ByName(name)
	if err != nil {
		return nil, err
	}
	return trace.Limit(w.New(seed, n), n), nil
}
