// Package window turns a stream of cumulative profiling snapshots into
// time/access-windowed locality histograms: the delta between two
// consecutive snapshots is the reuse activity of the interval between
// them. A Collector keeps a bounded ring of recent windows alongside
// whatever lifetime aggregate the caller already maintains — it never
// touches the profiler or the merge path, so lifetime results stay
// bit-identical to an unwindowed run by construction.
//
// The windowing rests on the same composition property the merge path
// uses (Yuan et al.'s measurement theory): locality histograms are
// additive over disjoint access intervals, so the per-bucket difference
// of two cumulative histograms is the histogram of the interval
// between them. One caveat: the profiler normalizes each cumulative
// snapshot so total weight equals the access count, and the
// normalization factor drifts slightly as censored mass is
// redistributed — a bucket can therefore lose a sliver of weight
// between snapshots. Deltas clamp at zero; drift scoring compares
// normalized shapes, so the sliver is noise, not signal.
package window

import (
	"repro/internal/histogram"
)

// DefaultRing is how many recent windows a Collector retains when the
// caller does not say otherwise.
const DefaultRing = 16

// workingSetFraction is the reuse mass a window's working set must
// cover: the smallest reuse distance below which 90% of the window's
// observed finite reuses fall. The remaining tail is dominated by
// censored and cold mass, which would otherwise let a handful of
// one-off long reuses masquerade as working-set growth.
const workingSetFraction = 0.90

// Window is one closed observation interval: the locality activity
// between two consecutive cumulative snapshots.
type Window struct {
	// Index numbers windows from 0 in observation order.
	Index int
	// StartAccesses and EndAccesses bound the interval in accesses of
	// the profiled stream; the window covers (Start, End].
	StartAccesses uint64
	EndAccesses   uint64
	// Samples is how many PMU samples landed inside the window. Windows
	// with few samples carry little evidence; drift scoring skips them
	// (see DriftOptions.MinSamples).
	Samples uint64
	// ReuseDistance and ReuseTime hold the interval's activity: the
	// clamped per-bucket difference of the bounding cumulative
	// histograms.
	ReuseDistance *histogram.Histogram
	ReuseTime     *histogram.Histogram
	// WorkingSetBytes estimates the window's working set: the smallest
	// power-of-two block count covering workingSetFraction of the
	// window's finite reuse mass, times the block size.
	WorkingSetBytes uint64
	// Score holds the drift score against the previous window; nil for
	// the first window (nothing to compare against).
	Score *Score
}

// Collector folds cumulative snapshots into a ring of recent windows.
// It is not safe for concurrent use; callers observe from the goroutine
// driving the profile, exactly as they would call Snapshot.
type Collector struct {
	blockBytes uint64
	drift      DriftOptions
	ring       []*Window
	ringCap    int

	prevValid    bool
	prevAccesses uint64
	prevSamples  uint64
	prevRD       *histogram.Histogram
	prevRT       *histogram.Histogram

	produced int
	drifts   int
}

// NewCollector builds a collector. blockBytes scales working-set block
// counts to bytes (use Result.BlockBytes(), or 8 for word granularity);
// ring bounds how many windows are retained, 0 selecting DefaultRing.
func NewCollector(blockBytes uint64, ring int, drift DriftOptions) *Collector {
	if blockBytes == 0 {
		blockBytes = 8
	}
	if ring <= 0 {
		ring = DefaultRing
	}
	drift.fill()
	return &Collector{blockBytes: blockBytes, drift: drift, ringCap: ring}
}

// Observe closes a window at a cumulative snapshot: accesses and
// samples are the snapshot's running totals, rd and rt its cumulative
// histograms (which Observe clones; the caller keeps ownership). The
// first Observe windows from the start of the profile. Returns the
// closed window, which is also appended to the ring.
func (c *Collector) Observe(accesses, samples uint64, rd, rt *histogram.Histogram) *Window {
	w := &Window{
		Index:         c.produced,
		StartAccesses: c.prevAccesses,
		EndAccesses:   accesses,
		Samples:       monotoneDelta(samples, c.prevSamples),
	}
	if c.prevValid {
		w.ReuseDistance = subtract(rd, c.prevRD)
		w.ReuseTime = subtract(rt, c.prevRT)
	} else {
		w.ReuseDistance = rd.Clone()
		w.ReuseTime = rt.Clone()
	}
	w.WorkingSetBytes = WorkingSetBytes(w.ReuseDistance, c.blockBytes)
	if prev := c.Last(); prev != nil {
		s := c.drift.Score(prev, w)
		w.Score = &s
		if s.Drift {
			c.drifts++
		}
	}

	c.prevValid = true
	c.prevAccesses = accesses
	c.prevSamples = samples
	c.prevRD = rd.Clone()
	c.prevRT = rt.Clone()

	c.ring = append(c.ring, w)
	if len(c.ring) > c.ringCap {
		copy(c.ring, c.ring[1:])
		c.ring[len(c.ring)-1] = nil
		c.ring = c.ring[:len(c.ring)-1]
	}
	c.produced++
	return w
}

// Windows returns the retained ring, oldest first. The slice is a copy;
// the windows themselves are shared and must not be mutated.
func (c *Collector) Windows() []*Window {
	return append([]*Window(nil), c.ring...)
}

// Last returns the most recently closed window, or nil before the
// first Observe.
func (c *Collector) Last() *Window {
	if len(c.ring) == 0 {
		return nil
	}
	return c.ring[len(c.ring)-1]
}

// Produced reports how many windows have been closed in total,
// including ones the ring has since evicted.
func (c *Collector) Produced() int { return c.produced }

// Drifts reports how many windows scored as drift.
func (c *Collector) Drifts() int { return c.drifts }

// subtract returns the per-bucket difference cur − prev, clamped at
// zero (cumulative snapshots are renormalized between observations, so
// a bucket can shed a sliver of weight; see the package comment).
func subtract(cur, prev *histogram.Histogram) *histogram.Histogram {
	n := cur.NumBuckets()
	if pn := prev.NumBuckets(); pn > n {
		n = pn
	}
	buckets := make([]float64, n)
	for b := 0; b < n; b++ {
		if d := cur.Weight(b) - prev.Weight(b); d > 0 {
			buckets[b] = d
		}
	}
	cold := cur.Cold() - prev.Cold()
	if cold < 0 {
		cold = 0
	}
	return histogram.Assemble(buckets, cold, monotoneDelta(cur.Count(), prev.Count()))
}

// monotoneDelta is a − b clamped at zero for counters that should be
// monotone but are not worth crashing over if they ever are not.
func monotoneDelta(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// WorkingSetBlocks estimates a histogram's working set in blocks: the
// upper bound of the lowest bucket prefix holding workingSetFraction of
// the finite reuse mass. Returns 0 when the histogram has no finite
// mass (a window of pure cold misses has no reuse working set to
// speak of).
func WorkingSetBlocks(rd *histogram.Histogram) uint64 {
	finite := rd.TotalFinite()
	if finite <= 0 {
		return 0
	}
	target := workingSetFraction * finite
	acc := 0.0
	for b := 0; b < rd.NumBuckets(); b++ {
		acc += rd.Weight(b)
		if acc >= target {
			return histogram.BucketHigh(b) + 1
		}
	}
	return histogram.BucketHigh(rd.NumBuckets()-1) + 1
}

// WorkingSetBytes is WorkingSetBlocks scaled by the block size.
func WorkingSetBytes(rd *histogram.Histogram, blockBytes uint64) uint64 {
	return WorkingSetBlocks(rd) * blockBytes
}
