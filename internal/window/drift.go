package window

import (
	"math"

	"repro/internal/histogram"
)

// Drift scoring compares consecutive windows on two orthogonal locality
// signals and flags a phase change when either moves decisively:
//
//   - Distance: total-variation distance between the windows'
//     normalized reuse-distance histograms (1 − histogram.Accuracy).
//     Catches shape changes — a cyclic phase giving way to a random
//     scan reshapes the histogram even when the working set holds.
//   - WSShift: |log2| of the working-set ratio. Catches magnitude
//     changes — the MRC-relevant signal ("the working set grew past
//     L3") even when the histogram shape stays self-similar.
//
// Windows with too few samples are not scored: a near-empty window's
// histogram is a handful of spikes, and comparing spikes to spikes
// reads as maximal distance. Skipping them trades detection latency
// (one window) for a zero false-positive floor, which is the side the
// check.sh gate cares about.

// DriftOptions tunes the detector. The zero value selects the
// defaults, which the rdexper DRIFT experiment gates in CI: every
// injected phase change flagged, zero false positives on the
// stationary control.
type DriftOptions struct {
	// MinSamples is the evidence floor: windows with fewer samples on
	// either side are not scored. Default 64.
	MinSamples uint64
	// MaxDistance is the total-variation threshold in [0,1] above
	// which a shape change counts as drift. Default 0.40.
	MaxDistance float64
	// MaxWSShift is the |log2 working-set ratio| threshold above which
	// a magnitude change counts as drift — 1.0 means "the working set
	// doubled or halved". Default 1.5: the working-set estimate is a
	// quantile of a power-of-two-bucketed histogram, so under sampling
	// jitter it flips by exactly one bucket (|shift| 1.0) even on a
	// stationary workload; requiring more than a bucket of movement
	// keeps quantization noise below the threshold.
	MaxWSShift float64
}

func (o *DriftOptions) fill() {
	if o.MinSamples == 0 {
		o.MinSamples = 64
	}
	if o.MaxDistance == 0 {
		o.MaxDistance = 0.40
	}
	if o.MaxWSShift == 0 {
		o.MaxWSShift = 1.5
	}
}

// Score is the drift verdict for one window against its predecessor.
type Score struct {
	// Distance is the total-variation distance between the two
	// windows' normalized reuse-distance histograms, in [0,1].
	Distance float64 `json:"distance"`
	// WSShift is log2(cur working set / prev working set); positive
	// means growth. Zero when either window has no reuse working set.
	WSShift float64 `json:"ws_shift"`
	// Scored reports whether both windows met the evidence floor; an
	// unscored window never drifts.
	Scored bool `json:"scored"`
	// Drift is the verdict: a scored window whose Distance or WSShift
	// crossed its threshold.
	Drift bool `json:"drift"`
}

// Score compares cur against prev under the options' thresholds.
func (o DriftOptions) Score(prev, cur *Window) Score {
	o.fill()
	var s Score
	if prev == nil || cur == nil {
		return s
	}
	if prev.Samples < o.MinSamples || cur.Samples < o.MinSamples {
		return s
	}
	s.Scored = true
	s.Distance = distance(prev.ReuseDistance, cur.ReuseDistance)
	if prev.WorkingSetBytes > 0 && cur.WorkingSetBytes > 0 {
		s.WSShift = math.Log2(float64(cur.WorkingSetBytes) / float64(prev.WorkingSetBytes))
	}
	s.Drift = s.Distance >= o.MaxDistance || math.Abs(s.WSShift) >= o.MaxWSShift
	return s
}

// distance is the total-variation distance between two histograms'
// normalized shapes — the complement of the paper's accuracy metric.
// 0 means identical shapes, 1 disjoint support.
func distance(a, b *histogram.Histogram) float64 {
	return 1 - histogram.Accuracy(a, b)
}
