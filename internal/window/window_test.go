package window

import (
	"math"
	"testing"

	"repro/internal/histogram"
)

// cum builds a cumulative histogram from (value, weight) pairs.
func cum(count uint64, pairs ...float64) *histogram.Histogram {
	h := histogram.New()
	for i := 0; i+1 < len(pairs); i += 2 {
		h.Add(uint64(pairs[i]), pairs[i+1])
	}
	// Fake the observation count: Assemble round-trip.
	buckets := make([]float64, h.NumBuckets())
	for b := range buckets {
		buckets[b] = h.Weight(b)
	}
	return histogram.Assemble(buckets, h.Cold(), count)
}

func TestCollectorWindowsAreSnapshotDeltas(t *testing.T) {
	c := NewCollector(8, 4, DriftOptions{})

	// First snapshot: 10 units of weight at distance 4.
	h1 := cum(100, 4, 10)
	w1 := c.Observe(1000, 100, h1, h1.Clone())
	if w1.Index != 0 || w1.StartAccesses != 0 || w1.EndAccesses != 1000 {
		t.Fatalf("first window bounds: %+v", w1)
	}
	if got := w1.ReuseDistance.Total(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("first window total = %v, want 10", got)
	}

	// Second snapshot adds 6 units at distance 1024 and 2 cold.
	h2 := h1.Clone()
	h2.Add(1024, 6)
	buckets := make([]float64, h2.NumBuckets())
	for b := range buckets {
		buckets[b] = h2.Weight(b)
	}
	h2 = histogram.Assemble(buckets, 2, 250)
	w2 := c.Observe(2000, 250, h2, h2.Clone())
	if w2.StartAccesses != 1000 || w2.EndAccesses != 2000 {
		t.Fatalf("second window bounds: %+v", w2)
	}
	if got := w2.ReuseDistance.TotalFinite(); math.Abs(got-6) > 1e-9 {
		t.Errorf("second window finite mass = %v, want 6", got)
	}
	if got := w2.ReuseDistance.Cold(); math.Abs(got-2) > 1e-9 {
		t.Errorf("second window cold mass = %v, want 2", got)
	}
	if got := w2.Samples; got != 150 {
		t.Errorf("second window samples = %d, want 150", got)
	}
	// All the second window's finite mass sits at distance 1024.
	want := WorkingSetBytes(w2.ReuseDistance, 8)
	if want == 0 || w2.WorkingSetBytes != want || want <= 1024*8 {
		t.Errorf("second window working set = %d bytes (helper says %d)", w2.WorkingSetBytes, want)
	}
}

func TestCollectorClampsRenormalizationSlivers(t *testing.T) {
	c := NewCollector(8, 4, DriftOptions{})
	h1 := cum(100, 4, 10)
	c.Observe(1000, 100, h1, h1.Clone())
	// The next cumulative snapshot lost a sliver of weight in the
	// distance-4 bucket (renormalization), gained elsewhere.
	h2 := cum(140, 4, 9.5, 64, 5)
	w := c.Observe(2000, 140, h2, h2.Clone())
	for b := 0; b < w.ReuseDistance.NumBuckets(); b++ {
		if w.ReuseDistance.Weight(b) < 0 {
			t.Fatalf("bucket %d went negative: %v", b, w.ReuseDistance.Weight(b))
		}
	}
	if got := w.ReuseDistance.TotalFinite(); math.Abs(got-5) > 1e-9 {
		t.Errorf("window finite mass = %v, want 5 (sliver clamped)", got)
	}
}

func TestCollectorRingEviction(t *testing.T) {
	c := NewCollector(8, 3, DriftOptions{})
	for i := 1; i <= 5; i++ {
		h := cum(uint64(i*100), 4, float64(i*10))
		c.Observe(uint64(i*1000), uint64(i*100), h, h.Clone())
	}
	ws := c.Windows()
	if len(ws) != 3 {
		t.Fatalf("ring holds %d windows, want 3", len(ws))
	}
	if ws[0].Index != 2 || ws[2].Index != 4 {
		t.Errorf("ring indices = [%d..%d], want [2..4]", ws[0].Index, ws[2].Index)
	}
	if c.Produced() != 5 {
		t.Errorf("produced = %d, want 5", c.Produced())
	}
	if c.Last() != ws[2] {
		t.Error("Last is not the newest ring entry")
	}
}

func TestWorkingSetBlocks(t *testing.T) {
	h := histogram.New()
	h.Add(60, 90) // 90% of finite mass within distance 60
	h.Add(1<<20, 10)
	blocks := WorkingSetBlocks(h)
	if blocks < 61 || blocks > 128 {
		t.Errorf("working set = %d blocks, want in (60, 128]", blocks)
	}
	if WorkingSetBlocks(histogram.New()) != 0 {
		t.Error("empty histogram should have zero working set")
	}
	cold := histogram.Assemble(nil, 42, 42)
	if WorkingSetBlocks(cold) != 0 {
		t.Error("pure-cold histogram should have zero working set")
	}
}

func win(samples uint64, pairs ...float64) *Window {
	h := histogram.New()
	for i := 0; i+1 < len(pairs); i += 2 {
		h.Add(uint64(pairs[i]), pairs[i+1])
	}
	return &Window{
		Samples:         samples,
		ReuseDistance:   h,
		ReuseTime:       h.Clone(),
		WorkingSetBytes: WorkingSetBytes(h, 8),
	}
}

func TestDriftScore(t *testing.T) {
	var o DriftOptions

	same := o.Score(win(1000, 8, 50, 64, 50), win(1000, 8, 50, 64, 50))
	if !same.Scored || same.Drift || same.Distance > 1e-9 {
		t.Errorf("identical windows: %+v", same)
	}

	shape := o.Score(win(1000, 4, 100), win(1000, 1<<16, 100))
	if !shape.Drift || shape.Distance < 0.9 {
		t.Errorf("disjoint shapes should drift: %+v", shape)
	}
	if math.Abs(shape.WSShift) < 1 {
		t.Errorf("working-set shift should register: %+v", shape)
	}

	starved := o.Score(win(3, 4, 1), win(3, 1<<16, 1))
	if starved.Scored || starved.Drift {
		t.Errorf("under-sampled windows must not score: %+v", starved)
	}

	if s := o.Score(nil, win(1000, 4, 1)); s.Scored || s.Drift {
		t.Errorf("nil predecessor must not score: %+v", s)
	}
}

func TestCollectorCountsDrifts(t *testing.T) {
	c := NewCollector(8, 8, DriftOptions{})
	// Two stationary windows, then a phase change.
	h1 := cum(1000, 8, 100)
	c.Observe(1000, 1000, h1, h1.Clone())
	h2 := cum(2000, 8, 200)
	c.Observe(2000, 2000, h2, h2.Clone())
	h3 := cum(3000, 8, 200, 1<<18, 300)
	w := c.Observe(3000, 3000, h3, h3.Clone())
	if w.Score == nil || !w.Score.Drift {
		t.Fatalf("phase change not flagged: %+v", w.Score)
	}
	if c.Drifts() != 1 {
		t.Errorf("drifts = %d, want 1", c.Drifts())
	}
}
