// Package cache provides (a) a set-associative LRU cache simulator and
// (b) a miss-ratio predictor driven by reuse-distance histograms. The
// pair backs the paper's "usefulness" experiments: a reuse-distance
// histogram — machine-independent — predicts the miss ratio of any LRU
// cache size, and the simulator provides the reference those predictions
// are checked against.
//
// The simulator maintains true LRU order per set with a hash map plus an
// intrusive doubly-linked list, so accesses are O(1) regardless of
// associativity — fully associative multi-megabyte caches simulate at
// the same speed as direct-mapped ones.
package cache

import (
	"fmt"

	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Config describes a cache to simulate.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes uint64
	// LineBytes is the block size (power of two).
	LineBytes uint64
	// Ways is the associativity; 0 means fully associative.
	Ways int
}

// Lines returns the capacity in lines.
func (c Config) Lines() uint64 { return c.SizeBytes / c.LineBytes }

// ways returns the effective associativity.
func (c Config) ways() uint64 {
	if c.Ways == 0 {
		return c.Lines()
	}
	return uint64(c.Ways)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: LineBytes must be a power of two, got %d", c.LineBytes)
	}
	if c.SizeBytes == 0 || c.SizeBytes%c.LineBytes != 0 {
		return fmt.Errorf("cache: SizeBytes %d not a multiple of LineBytes %d", c.SizeBytes, c.LineBytes)
	}
	lines := c.Lines()
	ways := c.ways()
	if ways > lines || lines%ways != 0 {
		return fmt.Errorf("cache: %d ways does not divide %d lines", ways, lines)
	}
	return nil
}

// node is one resident line in a set's LRU list.
type node struct {
	line       mem.Addr
	prev, next int32 // indices into Cache.nodes; -1 terminates
}

const nilIdx = int32(-1)

// lruSet is the LRU state of one cache set.
type lruSet struct {
	head, tail int32 // MRU and LRU node indices
	size       int
}

// Cache is a set-associative LRU cache simulator with O(1) accesses.
type Cache struct {
	cfg      Config
	resident map[mem.Addr]int32 // line -> node index
	nodes    []node
	free     []int32
	sets     []lruSet
	numSets  uint64
	shift    uint
	ways     int

	accesses uint64
	misses   uint64
}

// New builds a simulator for the given configuration.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ways := int(cfg.ways())
	numSets := cfg.Lines() / cfg.ways()
	shift := uint(0)
	for uint64(1)<<shift < cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:      cfg,
		resident: make(map[mem.Addr]int32),
		sets:     make([]lruSet, numSets),
		numSets:  numSets,
		shift:    shift,
		ways:     ways,
	}
	for i := range c.sets {
		c.sets[i] = lruSet{head: nilIdx, tail: nilIdx}
	}
	return c, nil
}

func (c *Cache) alloc(line mem.Addr) int32 {
	if n := len(c.free); n > 0 {
		idx := c.free[n-1]
		c.free = c.free[:n-1]
		c.nodes[idx] = node{line: line, prev: nilIdx, next: nilIdx}
		return idx
	}
	c.nodes = append(c.nodes, node{line: line, prev: nilIdx, next: nilIdx})
	return int32(len(c.nodes) - 1)
}

// unlink removes node idx from set s without freeing it.
func (c *Cache) unlink(s *lruSet, idx int32) {
	n := &c.nodes[idx]
	if n.prev != nilIdx {
		c.nodes[n.prev].next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nilIdx {
		c.nodes[n.next].prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nilIdx, nilIdx
	s.size--
}

// pushFront makes node idx the MRU of set s.
func (c *Cache) pushFront(s *lruSet, idx int32) {
	n := &c.nodes[idx]
	n.prev, n.next = nilIdx, s.head
	if s.head != nilIdx {
		c.nodes[s.head].prev = idx
	}
	s.head = idx
	if s.tail == nilIdx {
		s.tail = idx
	}
	s.size++
}

// Access simulates one access and reports whether it hit.
func (c *Cache) Access(a mem.Access) bool {
	c.accesses++
	line := a.Addr >> c.shift
	s := &c.sets[uint64(line)%c.numSets]
	if idx, ok := c.resident[line]; ok {
		// Hit: move to MRU.
		c.unlink(s, idx)
		c.pushFront(s, idx)
		return true
	}
	c.misses++
	if s.size >= c.ways {
		// Evict the set's LRU line.
		victim := s.tail
		c.unlink(s, victim)
		delete(c.resident, c.nodes[victim].line)
		c.free = append(c.free, victim)
	}
	idx := c.alloc(line)
	c.pushFront(s, idx)
	c.resident[line] = idx
	return false
}

// Accesses returns the number of simulated accesses.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Misses returns the number of misses.
func (c *Cache) Misses() uint64 { return c.misses }

// MissRatio returns misses/accesses.
func (c *Cache) MissRatio() float64 {
	if c.accesses == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.accesses)
}

// Resident returns the number of lines currently cached.
func (c *Cache) Resident() int { return len(c.resident) }

// Simulate drains a trace through a cache and returns the miss ratio.
func Simulate(r trace.Reader, cfg Config) (float64, error) {
	c, err := New(cfg)
	if err != nil {
		return 0, err
	}
	err = trace.ForEach(r, func(a mem.Access) bool {
		c.Access(a)
		return true
	})
	if err != nil {
		return 0, err
	}
	return c.MissRatio(), nil
}

// PredictMissRatio predicts the miss ratio of a fully associative LRU
// cache with `lines` lines from a reuse-distance histogram measured at
// line granularity: an access misses iff its reuse distance is at least
// the cache capacity (or it is cold). This is the classical
// stack-distance identity, exact for fully associative LRU.
func PredictMissRatio(rd *histogram.Histogram, lines uint64) float64 {
	if lines == 0 {
		return 1
	}
	return rd.FractionAbove(lines)
}

// MissRatioCurve evaluates PredictMissRatio at each capacity (in lines).
func MissRatioCurve(rd *histogram.Histogram, lineCounts []uint64) []float64 {
	out := make([]float64, len(lineCounts))
	for i, n := range lineCounts {
		out[i] = PredictMissRatio(rd, n)
	}
	return out
}
