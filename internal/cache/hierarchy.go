package cache

import (
	"fmt"

	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Hierarchy simulates a multi-level cache (L1 → L2 → … → memory):
// accesses filter level by level, each level seeing only the misses of
// the one above — the reference for hierarchy-wide predictions from one
// reuse-distance histogram.
type Hierarchy struct {
	levels []*Cache
	names  []string
}

// LevelSpec names one level of a hierarchy.
type LevelSpec struct {
	Name   string
	Config Config
}

// TypicalHierarchy returns a contemporary three-level configuration:
// 32KiB/8-way L1, 1MiB/16-way L2, 32MiB fully associative LLC, 64-byte
// lines throughout.
func TypicalHierarchy() []LevelSpec {
	return []LevelSpec{
		{Name: "L1", Config: Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8}},
		{Name: "L2", Config: Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16}},
		{Name: "LLC", Config: Config{SizeBytes: 32 << 20, LineBytes: 64, Ways: 0}},
	}
}

// NewHierarchy builds a hierarchy from the given level specs (ordered
// from the innermost level outward).
func NewHierarchy(specs []LevelSpec) (*Hierarchy, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cache: hierarchy with no levels")
	}
	h := &Hierarchy{}
	for _, s := range specs {
		c, err := New(s.Config)
		if err != nil {
			return nil, fmt.Errorf("cache: level %s: %w", s.Name, err)
		}
		h.levels = append(h.levels, c)
		h.names = append(h.names, s.Name)
	}
	return h, nil
}

// Access filters one access through the hierarchy and returns the index
// of the level that hit (len(levels) means memory).
func (h *Hierarchy) Access(a mem.Access) int {
	for i, c := range h.levels {
		if c.Access(a) {
			return i
		}
	}
	return len(h.levels)
}

// MissRatios returns each level's local miss ratio (misses at the level
// divided by accesses reaching it).
func (h *Hierarchy) MissRatios() []float64 {
	out := make([]float64, len(h.levels))
	for i, c := range h.levels {
		out[i] = c.MissRatio()
	}
	return out
}

// Names returns the level names.
func (h *Hierarchy) Names() []string { return append([]string(nil), h.names...) }

// SimulateHierarchy drains a trace through a hierarchy and returns each
// level's local miss ratio.
func SimulateHierarchy(r trace.Reader, specs []LevelSpec) ([]float64, error) {
	h, err := NewHierarchy(specs)
	if err != nil {
		return nil, err
	}
	err = trace.ForEach(r, func(a mem.Access) bool {
		h.Access(a)
		return true
	})
	if err != nil {
		return nil, err
	}
	return h.MissRatios(), nil
}

// PredictHierarchy predicts each level's local miss ratio from a
// reuse-distance histogram measured at the hierarchy's line granularity.
// The global miss ratio of level i (fraction of all accesses missing
// levels 0..i) is FractionAbove(capacity_i) by the stack-distance
// identity; the local ratio divides consecutive global ratios. Exact for
// fully associative inclusive LRU levels, an approximation for
// set-associative ones.
func PredictHierarchy(rd *histogram.Histogram, specs []LevelSpec) ([]float64, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cache: hierarchy with no levels")
	}
	out := make([]float64, len(specs))
	reach := 1.0 // fraction of accesses reaching the current level
	for i, s := range specs {
		if err := s.Config.Validate(); err != nil {
			return nil, err
		}
		global := PredictMissRatio(rd, s.Config.Lines())
		if reach > 0 {
			out[i] = global / reach
		}
		if out[i] > 1 {
			out[i] = 1
		}
		reach = global
	}
	return out, nil
}
