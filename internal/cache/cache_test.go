package cache

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/exact"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{SizeBytes: 1024, LineBytes: 64, Ways: 4},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 64, LineBytes: 64, Ways: 1},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("valid config rejected: %+v: %v", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 48, Ways: 1},
		{SizeBytes: 1000, LineBytes: 64, Ways: 1},
		{SizeBytes: 0, LineBytes: 64},
		{SizeBytes: 128, LineBytes: 64, Ways: 3},
		{SizeBytes: 64, LineBytes: 64, Ways: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestTinyLRUSequence(t *testing.T) {
	// Fully associative, 2 lines. Pattern (lines): A B A C B.
	c, err := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 0})
	if err != nil {
		t.Fatal(err)
	}
	addr := func(line uint64) mem.Access {
		return mem.Access{Addr: mem.Addr(line * 64), Size: 8, Kind: mem.Load}
	}
	results := []struct {
		line uint64
		hit  bool
	}{
		{0, false}, // A miss
		{1, false}, // B miss
		{0, true},  // A hit
		{2, false}, // C miss, evicts B (LRU)
		{1, false}, // B miss
	}
	for i, r := range results {
		if got := c.Access(addr(r.line)); got != r.hit {
			t.Errorf("access %d (line %d): hit=%v, want %v", i, r.line, got, r.hit)
		}
	}
	if c.Accesses() != 5 || c.Misses() != 4 {
		t.Errorf("accesses/misses = %d/%d, want 5/4", c.Accesses(), c.Misses())
	}
	if got := c.MissRatio(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("miss ratio = %v, want 0.8", got)
	}
}

func TestSetConflicts(t *testing.T) {
	// Direct-mapped, 2 sets: lines 0 and 2 collide in set 0.
	c, err := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := mem.Access{Addr: 0, Size: 8}
	b := mem.Access{Addr: 128, Size: 8}
	c.Access(a)
	c.Access(b) // evicts a in direct-mapped set 0
	if c.Access(a) {
		t.Error("direct-mapped conflict should have evicted line 0")
	}
	// Same pattern with 2 ways keeps both.
	c2, err := New(Config{SizeBytes: 128, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err)
	}
	c2.Access(a)
	c2.Access(b)
	if !c2.Access(a) {
		t.Error("2-way cache should have kept both lines")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// Cyclic over 8 lines in a fully associative 16-line cache: only
	// cold misses.
	cfg := Config{SizeBytes: 16 * 64, LineBytes: 64, Ways: 0}
	mr, err := Simulate(lineCyclic(8, 100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 8.0 / 800
	if math.Abs(mr-want) > 1e-12 {
		t.Errorf("miss ratio = %v, want %v (cold only)", mr, want)
	}
}

func TestThrashingLRU(t *testing.T) {
	// Cyclic over N+1 lines in an N-line LRU cache: everything misses.
	cfg := Config{SizeBytes: 8 * 64, LineBytes: 64, Ways: 0}
	mr, err := Simulate(lineCyclic(9, 50), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mr != 1 {
		t.Errorf("thrash miss ratio = %v, want 1", mr)
	}
}

// lineCyclic yields laps over n distinct lines, one access per line.
func lineCyclic(n, laps uint64) trace.Reader {
	return trace.Repeat(int(laps), func() trace.Reader {
		return trace.Sequential(0, n, 64)
	})
}

// TestInclusionProperty checks the LRU stack property: any access that
// hits in a smaller fully associative LRU cache also hits in a larger
// one.
func TestInclusionProperty(t *testing.T) {
	f := func(blocks []uint8) bool {
		if len(blocks) == 0 {
			return true
		}
		small, _ := New(Config{SizeBytes: 4 * 64, LineBytes: 64, Ways: 0})
		large, _ := New(Config{SizeBytes: 16 * 64, LineBytes: 64, Ways: 0})
		for _, b := range blocks {
			a := mem.Access{Addr: mem.Addr(b) * 64, Size: 8}
			hs := small.Access(a)
			hl := large.Access(a)
			if hs && !hl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPredictionMatchesSimulationFullyAssoc is the stack-distance
// identity: for fully associative LRU, the miss ratio equals the
// fraction of accesses with reuse distance >= capacity. Bucketed
// histograms blur bucket-straddling capacities, so test at power-of-two
// capacities where buckets align.
func TestPredictionMatchesSimulationFullyAssoc(t *testing.T) {
	mk := func() trace.Reader { return trace.ZipfAccess(5, 0, 4096*8, 1.0, 300000) }
	gt, err := exact.Measure(mk(), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	rd := gt.ReuseDistance()
	for _, lines := range []uint64{16, 64, 256, 1024} {
		sim, err := Simulate(mk(), Config{SizeBytes: lines * 64, LineBytes: 64, Ways: 0})
		if err != nil {
			t.Fatal(err)
		}
		pred := PredictMissRatio(rd, lines)
		if math.Abs(pred-sim) > 0.05 {
			t.Errorf("capacity %d lines: predicted %v vs simulated %v", lines, pred, sim)
		}
	}
}

func TestPredictMissRatioEdges(t *testing.T) {
	gt, err := exact.Measure(lineCyclic(16, 10), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	rd := gt.ReuseDistance()
	if got := PredictMissRatio(rd, 0); got != 1 {
		t.Errorf("capacity 0 = %v, want 1", got)
	}
	if got := PredictMissRatio(rd, 1<<40); got >= 0.2 {
		t.Errorf("huge capacity miss ratio = %v, want cold-only", got)
	}
}

func TestMissRatioCurveMonotone(t *testing.T) {
	gt, err := exact.Measure(trace.ZipfAccess(8, 0, 1<<15, 0.9, 200000), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []uint64{1, 4, 16, 64, 256, 1024, 4096}
	curve := MissRatioCurve(gt.ReuseDistance(), sizes)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-9 {
			t.Errorf("miss-ratio curve not monotone at %d: %v", i, curve)
		}
	}
}

func TestSimulateRejectsBadConfig(t *testing.T) {
	if _, err := Simulate(lineCyclic(4, 1), Config{SizeBytes: 100, LineBytes: 64}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestHierarchyFiltering(t *testing.T) {
	specs := []LevelSpec{
		{Name: "L1", Config: Config{SizeBytes: 4 * 64, LineBytes: 64, Ways: 0}},
		{Name: "L2", Config: Config{SizeBytes: 16 * 64, LineBytes: 64, Ways: 0}},
	}
	h, err := NewHierarchy(specs)
	if err != nil {
		t.Fatal(err)
	}
	// Working set of 8 lines: misses L1 (4 lines), fits L2 (16 lines).
	err = trace.ForEach(lineCyclic(8, 50), func(a mem.Access) bool {
		h.Access(a)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	mrs := h.MissRatios()
	if mrs[0] < 0.9 {
		t.Errorf("L1 miss ratio = %v, want ~1 (thrashing)", mrs[0])
	}
	if mrs[1] > 0.1 {
		t.Errorf("L2 miss ratio = %v, want ~0 (fits)", mrs[1])
	}
	if got := h.Names(); len(got) != 2 || got[0] != "L1" {
		t.Errorf("Names = %v", got)
	}
}

func TestHierarchyAccessLevelIndex(t *testing.T) {
	specs := TypicalHierarchy()
	h, err := NewHierarchy(specs)
	if err != nil {
		t.Fatal(err)
	}
	a := mem.Access{Addr: 0, Size: 8}
	if lvl := h.Access(a); lvl != len(specs) {
		t.Errorf("first access hit level %d, want memory (%d)", lvl, len(specs))
	}
	if lvl := h.Access(a); lvl != 0 {
		t.Errorf("second access hit level %d, want L1 (0)", lvl)
	}
}

func TestPredictHierarchyMatchesSimulation(t *testing.T) {
	// Fully associative inclusive levels: prediction from the exact
	// histogram must track simulation at every level.
	specs := []LevelSpec{
		{Name: "small", Config: Config{SizeBytes: 64 * 64, LineBytes: 64, Ways: 0}},
		{Name: "big", Config: Config{SizeBytes: 1024 * 64, LineBytes: 64, Ways: 0}},
	}
	mk := func() trace.Reader { return trace.ZipfAccess(3, 0, 1<<16, 1.0, 300000) }
	gt, err := exact.Measure(mk(), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredictHierarchy(gt.ReuseDistance(), specs)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateHierarchy(mk(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if math.Abs(pred[i]-sim[i]) > 0.08 {
			t.Errorf("level %s: predicted %v vs simulated %v", specs[i].Name, pred[i], sim[i])
		}
	}
}

func TestHierarchyErrors(t *testing.T) {
	if _, err := NewHierarchy(nil); err == nil {
		t.Error("empty hierarchy accepted")
	}
	bad := []LevelSpec{{Name: "x", Config: Config{SizeBytes: 100, LineBytes: 64}}}
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("invalid level accepted")
	}
	if _, err := PredictHierarchy(nil, nil); err == nil {
		t.Error("PredictHierarchy with no levels accepted")
	}
	if _, err := SimulateHierarchy(lineCyclic(2, 2), bad); err == nil {
		t.Error("SimulateHierarchy with invalid level accepted")
	}
}
