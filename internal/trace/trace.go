// Package trace defines the memory-access-stream abstraction that every
// profiler in this repository consumes, together with a library of
// synthetic stream generators and a compact binary record/replay format.
//
// A trace is read in batches through the Reader interface, mirroring
// io.Reader: generators produce accesses on the fly (no trace needs to be
// materialized to run a simulation), while recorded traces can be saved
// to disk and replayed bit-exactly.
package trace

import (
	"errors"
	"io"
	"sync"

	"repro/internal/mem"
)

// Reader is a stream of memory accesses. Read fills dst with up to
// len(dst) accesses and returns how many were written. It returns io.EOF
// (possibly alongside a final short batch) when the stream is exhausted.
type Reader interface {
	Read(dst []mem.Access) (int, error)
}

// DefaultBatchSize is the default batch used by helpers that drain a
// Reader and by the simulated core's batched execution engine. Large
// enough to amortize Read dispatch, small enough to stay cache-resident
// (4096 accesses × 16 bytes = 64 KiB).
const DefaultBatchSize = 4096

// batchSize is the default batch used by helpers that drain a Reader.
const batchSize = DefaultBatchSize

// ErrShortTrace is returned by readers that require a minimum length.
var ErrShortTrace = errors.New("trace: stream shorter than required")

// batchBufPool recycles DefaultBatchSize access buffers across the
// drain helpers and the execution engine. The pool stores fixed-size
// array pointers, so neither Get nor Put boxes a slice header — both
// directions are allocation-free.
var batchBufPool = sync.Pool{
	New: func() any { return new([DefaultBatchSize]mem.Access) },
}

// BatchBuf borrows a DefaultBatchSize access buffer from the package
// pool; return it with ReleaseBatchBuf once nothing references its
// contents. Profilers and drain helpers read streams through these so
// repeated runs reuse one 64 KiB buffer instead of allocating each.
func BatchBuf() []mem.Access {
	return batchBufPool.Get().(*[DefaultBatchSize]mem.Access)[:]
}

// ReleaseBatchBuf returns a BatchBuf buffer to the pool. Buffers of any
// other capacity are ignored, so callers may pass their own slices
// through code that releases unconditionally.
func ReleaseBatchBuf(buf []mem.Access) {
	if cap(buf) != DefaultBatchSize {
		return
	}
	batchBufPool.Put((*[DefaultBatchSize]mem.Access)(buf[:DefaultBatchSize]))
}

// ForEach drains r, invoking fn for every access in order. It stops early
// and returns nil if fn returns false, and propagates any non-EOF error.
func ForEach(r Reader, fn func(mem.Access) bool) error {
	buf := BatchBuf()
	defer ReleaseBatchBuf(buf)
	for {
		n, err := r.Read(buf)
		for i := 0; i < n; i++ {
			if !fn(buf[i]) {
				return nil
			}
		}
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// Count drains r and returns the total number of accesses.
func Count(r Reader) (uint64, error) {
	var n uint64
	err := ForEach(r, func(mem.Access) bool { n++; return true })
	return n, err
}

// Collect drains r into a slice. Intended for tests and small traces.
func Collect(r Reader) ([]mem.Access, error) {
	var out []mem.Access
	err := ForEach(r, func(a mem.Access) bool { out = append(out, a); return true })
	return out, err
}

// FromSlice returns a Reader over a fixed slice of accesses.
func FromSlice(accs []mem.Access) Reader {
	return &sliceReader{accs: accs}
}

type sliceReader struct {
	accs []mem.Access
	pos  int
}

func (s *sliceReader) Read(dst []mem.Access) (int, error) {
	if s.pos >= len(s.accs) {
		return 0, io.EOF
	}
	n := copy(dst, s.accs[s.pos:])
	s.pos += n
	if s.pos >= len(s.accs) {
		return n, io.EOF
	}
	return n, nil
}

// Concat returns a Reader that plays each input reader to exhaustion in
// order.
func Concat(rs ...Reader) Reader {
	return &concatReader{rs: rs}
}

type concatReader struct {
	rs []Reader
}

func (c *concatReader) Read(dst []mem.Access) (int, error) {
	for len(c.rs) > 0 {
		n, err := c.rs[0].Read(dst)
		if err == io.EOF {
			c.rs = c.rs[1:]
			if n > 0 {
				if len(c.rs) == 0 {
					return n, io.EOF
				}
				return n, nil
			}
			continue
		}
		return n, err
	}
	return 0, io.EOF
}

// Limit returns a Reader that yields at most n accesses from r.
func Limit(r Reader, n uint64) Reader {
	return &limitReader{r: r, left: n}
}

type limitReader struct {
	r    Reader
	left uint64
}

func (l *limitReader) Read(dst []mem.Access) (int, error) {
	if l.left == 0 {
		return 0, io.EOF
	}
	if uint64(len(dst)) > l.left {
		dst = dst[:l.left]
	}
	n, err := l.r.Read(dst)
	l.left -= uint64(n)
	if l.left == 0 {
		err = io.EOF
	}
	return n, err
}

// Repeat returns a Reader that replays the generator produced by mk
// `times` times in sequence. mk must return a fresh Reader on each call
// (generators are single-use).
func Repeat(times int, mk func() Reader) Reader {
	return &repeatReader{mk: mk, left: times}
}

type repeatReader struct {
	mk   func() Reader
	cur  Reader
	left int
}

func (r *repeatReader) Read(dst []mem.Access) (int, error) {
	for {
		if r.cur == nil {
			if r.left == 0 {
				return 0, io.EOF
			}
			r.left--
			r.cur = r.mk()
		}
		n, err := r.cur.Read(dst)
		if err == io.EOF {
			r.cur = nil
			if n > 0 {
				if r.left == 0 {
					return n, io.EOF
				}
				return n, nil
			}
			continue
		}
		return n, err
	}
}

// Func adapts a per-access generator function to a Reader. gen must
// return the next access and true, or false when the stream ends.
func Func(gen func() (mem.Access, bool)) Reader {
	return &funcReader{gen: gen}
}

type funcReader struct {
	gen  func() (mem.Access, bool)
	done bool
}

func (f *funcReader) Read(dst []mem.Access) (int, error) {
	if f.done {
		return 0, io.EOF
	}
	for i := range dst {
		a, ok := f.gen()
		if !ok {
			f.done = true
			return i, io.EOF
		}
		dst[i] = a
	}
	return len(dst), nil
}
