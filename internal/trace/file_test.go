package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/mem"
)

// recordedBytes returns a small recorded trace exercising multi-byte
// varint deltas (large address jumps) and both access kinds.
func recordedBytes(t *testing.T) []byte {
	t.Helper()
	accs := []mem.Access{
		{Addr: 0, PC: 0x400000, Size: 8, Kind: mem.Load},
		{Addr: 1 << 40, PC: 0x400004, Size: 4, Kind: mem.Store},
		{Addr: 8, PC: 0x400008, Size: 1, Kind: mem.Load},
		{Addr: 1 << 56, PC: 0x40000c, Size: 2, Kind: mem.Store},
		{Addr: 16, PC: 0x400010, Size: 8, Kind: mem.Load},
	}
	var buf bytes.Buffer
	n, err := Record(&buf, FromSlice(accs))
	if err != nil || n != uint64(len(accs)) {
		t.Fatalf("Record: n=%d err=%v", n, err)
	}
	return buf.Bytes()
}

// TestFileTruncationEveryBoundary is the regression test for silent
// short reads: replaying the trace truncated at EVERY byte offset must
// fail with a descriptive error — never succeed with fewer accesses, and
// never return a bare io.EOF.
func TestFileTruncationEveryBoundary(t *testing.T) {
	full := recordedBytes(t)

	// The complete stream replays cleanly.
	r, err := NewReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if accs, err := Collect(r); err != nil || len(accs) != 5 {
		t.Fatalf("full replay: %d accesses, err=%v", len(accs), err)
	}

	for cut := 0; cut < len(full); cut++ {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			// Truncated inside the magic header: must say so.
			if cut >= 4 {
				t.Errorf("cut=%d: NewReader failed on intact header: %v", cut, err)
			} else if !errors.Is(err, ErrTruncated) {
				t.Errorf("cut=%d: header error not ErrTruncated: %v", cut, err)
			}
			continue
		}
		if cut < 4 {
			t.Errorf("cut=%d: NewReader accepted a partial header", cut)
			continue
		}
		_, err = Collect(r)
		if err == nil {
			t.Errorf("cut=%d: truncated trace replayed without error", cut)
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut=%d: error does not wrap ErrTruncated: %v", cut, err)
		}
	}
}

func TestFileTrailerCountMismatch(t *testing.T) {
	full := recordedBytes(t)
	// The trailer is sentinel + uvarint(5); rewrite the count.
	if full[len(full)-2] != 0xFF || full[len(full)-1] != 5 {
		t.Fatalf("unexpected trailer bytes % x", full[len(full)-2:])
	}
	bad := append(append([]byte(nil), full[:len(full)-1]...), 7)
	r, err := NewReader(bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Collect(r)
	if err == nil || errors.Is(err, ErrTruncated) {
		t.Fatalf("count mismatch: want corruption error, got %v", err)
	}
}

func TestFileTrailingGarbage(t *testing.T) {
	full := recordedBytes(t)
	r, err := NewReader(bytes.NewReader(append(append([]byte(nil), full...), 0x00, 0x01)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(r); err == nil {
		t.Error("trailing bytes after the trailer replayed without error")
	}
}

func TestFileFlushWithoutCloseIsTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(mem.Access{Addr: 64, Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(r); !errors.Is(err, ErrTruncated) {
		t.Fatalf("unclosed stream: want ErrTruncated, got %v", err)
	}
}

func TestFileCloseIdempotentAndSealing(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(mem.Access{Addr: 8, Size: 8}); err == nil {
		t.Error("Write after Close succeeded")
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := Collect(r)
	if err != nil || len(accs) != 0 {
		t.Fatalf("empty closed stream: %d accesses, err=%v", len(accs), err)
	}
}

// TestFileEOFAfterTrailer verifies the reader keeps returning io.EOF
// once the trailer has been consumed.
func TestFileEOFAfterTrailer(t *testing.T) {
	r, err := NewReader(bytes.NewReader(recordedBytes(t)))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]mem.Access, 64)
	total := 0
	for {
		n, err := r.Read(buf)
		total += n
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if total != 5 {
		t.Fatalf("decoded %d accesses, want 5", total)
	}
	if n, err := r.Read(buf); n != 0 || err != io.EOF {
		t.Fatalf("post-EOF Read = %d, %v; want 0, io.EOF", n, err)
	}
}

// TestFileLargeCountTrailer exercises a multi-byte count varint in the
// trailer.
func TestFileLargeCountTrailer(t *testing.T) {
	const n = 300 // count varint needs 2 bytes
	var buf bytes.Buffer
	if _, err := Record(&buf, Sequential(0, n, 8)); err != nil {
		t.Fatal(err)
	}
	// Sanity: trailer count parses back to n.
	b := buf.Bytes()
	idx := bytes.LastIndexByte(b, 0xFF)
	if got, _ := binary.Uvarint(b[idx+1:]); got != n {
		t.Fatalf("trailer count = %d, want %d", got, n)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if cnt, err := Count(r); err != nil || cnt != n {
		t.Fatalf("replay: %d accesses, err=%v", cnt, err)
	}
}
