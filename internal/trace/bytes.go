package trace

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// BytesReader decodes a complete in-memory RDT3 stream (see file.go for
// the format) directly from a byte slice. It is the allocation-free
// counterpart of NewReader for payloads that are already materialized —
// wire frame payloads, recorded traces slurped into memory: no bufio
// layer, no per-byte interface dispatch, and Reset reuses the reader
// across payloads. Error behaviour mirrors the streaming reader:
// truncation anywhere (wrapping ErrTruncated) and corruption (bad
// record, count mismatch, trailing data) are reported descriptively,
// never as a silent short read.
type BytesReader struct {
	data   []byte
	pos    int
	prev   mem.Addr
	prevPC mem.Addr
	n      uint64 // records decoded so far
	done   bool   // trailer consumed and verified
}

// NewBytesReader validates the header of data and returns a reader that
// replays it. For a reusable reader, declare a BytesReader and Reset it.
func NewBytesReader(data []byte) (*BytesReader, error) {
	b := new(BytesReader)
	if err := b.Reset(data); err != nil {
		return nil, err
	}
	return b, nil
}

// Reset points the reader at a new in-memory stream, validating its
// header and clearing all decode state. The zero BytesReader may be
// Reset directly.
func (b *BytesReader) Reset(data []byte) error {
	if len(data) < len(fileMagic) {
		return fmt.Errorf("trace: reading header: %w", ErrTruncated)
	}
	if [4]byte(data[:4]) != fileMagic {
		return fmt.Errorf("trace: bad magic %q, want %q", data[:4], fileMagic)
	}
	b.data = data
	b.pos = len(fileMagic)
	b.prev, b.prevPC = 0, 0
	b.n = 0
	b.done = false
	return nil
}

// Read fills dst with up to len(dst) decoded accesses, mirroring
// fileReader.Read's contract exactly.
func (b *BytesReader) Read(dst []mem.Access) (int, error) {
	if b.done {
		return 0, io.EOF
	}
	for i := range dst {
		if b.pos >= len(b.data) {
			return i, fmt.Errorf("trace: stream ends after %d records with no end-of-stream trailer: %w", b.n, ErrTruncated)
		}
		hdr := b.data[b.pos]
		b.pos++
		if hdr == endSentinel {
			if err := b.finishTrailer(); err != nil {
				return i, err
			}
			return i, io.EOF
		}
		delta, err := b.varint()
		if err != nil {
			return i, err
		}
		pcDelta, err := b.varint()
		if err != nil {
			return i, err
		}
		addr := mem.Addr(int64(b.prev) + delta)
		pc := mem.Addr(int64(b.prevPC) + pcDelta)
		b.prev = addr
		b.prevPC = pc
		dst[i] = mem.Access{
			Addr: addr,
			PC:   pc,
			Size: hdr >> 1 & 0x0f,
			Kind: mem.Kind(hdr & 1),
		}
		b.n++
	}
	return len(dst), nil
}

// varint decodes one signed varint of the record at index b.n,
// classifying failures the way fileReader.recordErr does: running out
// of bytes is truncation, an overlong encoding is corruption.
func (b *BytesReader) varint() (int64, error) {
	v, n := binary.Varint(b.data[b.pos:])
	if n > 0 {
		b.pos += n
		return v, nil
	}
	if n == 0 {
		return 0, fmt.Errorf("trace: record %d cut off mid-stream: %w", b.n, ErrTruncated)
	}
	return 0, fmt.Errorf("trace: corrupt record %d: varint overflows 64 bits", b.n)
}

// finishTrailer consumes and verifies the end-of-stream trailer after
// its sentinel byte has been read.
func (b *BytesReader) finishTrailer() error {
	want, n := binary.Uvarint(b.data[b.pos:])
	if n == 0 {
		return fmt.Errorf("trace: stream ends inside the end-of-stream trailer: %w", ErrTruncated)
	}
	if n < 0 {
		return fmt.Errorf("trace: reading end-of-stream trailer: uvarint overflows 64 bits")
	}
	b.pos += n
	if want != b.n {
		return fmt.Errorf("trace: corrupt stream: trailer records %d accesses, decoded %d", want, b.n)
	}
	if rest := len(b.data) - b.pos; rest > 0 {
		return fmt.Errorf("trace: %d trailing bytes after end-of-stream trailer", rest)
	}
	b.done = true
	return nil
}
