package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/testutil"
)

// TestBytesReaderMatchesFileReader: the in-memory decoder and the
// streaming decoder are two implementations of the same format; on any
// valid stream they must produce identical accesses.
func TestBytesReaderMatchesFileReader(t *testing.T) {
	full := recordedBytes(t)
	want, err := Collect(mustFileReader(t, full))
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewBytesReader(full)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(br)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("BytesReader decoded\n%v\nfileReader decoded\n%v", got, want)
	}
}

func mustFileReader(t *testing.T, data []byte) Reader {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestBytesReaderTruncationEveryBoundary mirrors the fileReader
// regression test: truncation at EVERY byte offset must fail wrapping
// ErrTruncated, and at every offset the two decoders must agree on
// whether the stream is acceptable.
func TestBytesReaderTruncationEveryBoundary(t *testing.T) {
	full := recordedBytes(t)
	for cut := 0; cut < len(full); cut++ {
		br, err := NewBytesReader(full[:cut])
		if err != nil {
			if cut >= 4 {
				t.Errorf("cut=%d: Reset failed on intact header: %v", cut, err)
			} else if !errors.Is(err, ErrTruncated) {
				t.Errorf("cut=%d: header error not ErrTruncated: %v", cut, err)
			}
			continue
		}
		if cut < 4 {
			t.Errorf("cut=%d: accepted a partial header", cut)
			continue
		}
		_, err = Collect(br)
		if err == nil {
			t.Errorf("cut=%d: truncated stream decoded without error", cut)
			continue
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut=%d: error does not wrap ErrTruncated: %v", cut, err)
		}
	}
}

// TestBytesReaderRejectsTrailerDamage: trailer count mismatches and
// trailing bytes are corruption, not EOF.
func TestBytesReaderRejectsTrailerDamage(t *testing.T) {
	full := recordedBytes(t)
	wrongCount := append([]byte(nil), full...)
	wrongCount[len(wrongCount)-1]++ // trailer count uvarint is 1 byte here
	br, err := NewBytesReader(wrongCount)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(br); err == nil {
		t.Error("trailer count mismatch decoded without error")
	}

	trailing := append(append([]byte(nil), full...), 0x00)
	br, err = NewBytesReader(trailing)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(br); err == nil {
		t.Error("trailing bytes after trailer decoded without error")
	}
}

// TestBytesReaderReset: one reader replays two different streams
// back-to-back with full state isolation.
func TestBytesReaderReset(t *testing.T) {
	mk := func(accs []mem.Access) []byte {
		var buf bytes.Buffer
		if _, err := Record(&buf, FromSlice(accs)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := []mem.Access{{Addr: 1 << 40, PC: 0x400000, Size: 8, Kind: mem.Store}}
	b := []mem.Access{{Addr: 8, PC: 0x500000, Size: 4, Kind: mem.Load}}

	var br BytesReader
	for i, tc := range [][]mem.Access{a, b, a} {
		if err := br.Reset(mk(tc)); err != nil {
			t.Fatal(err)
		}
		got, err := Collect(&br)
		if err != nil {
			t.Fatalf("replay %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, tc) {
			t.Fatalf("replay %d: got %v, want %v (delta state leaked across Reset?)", i, got, tc)
		}
	}
}

// TestWriterResetRoundTrip: one Writer encodes two streams via Reset,
// and both must decode to their own accesses (no state bleed).
func TestWriterResetRoundTrip(t *testing.T) {
	streams := [][]mem.Access{
		{{Addr: 0x1000, PC: 0x400000, Size: 8, Kind: mem.Load}, {Addr: 1 << 50, PC: 0x400004, Size: 2, Kind: mem.Store}},
		{{Addr: 64, PC: 0x700000, Size: 1, Kind: mem.Store}},
	}
	var w Writer
	for i, accs := range streams {
		var buf bytes.Buffer
		if err := w.Reset(&buf); err != nil {
			t.Fatal(err)
		}
		for _, a := range accs {
			if err := w.Write(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := Collect(mustFileReader(t, buf.Bytes()))
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, accs) {
			t.Fatalf("stream %d round-tripped to %v, want %v", i, got, accs)
		}
	}
}

// TestBatchBufRoundTrip: the pool hands out full-capacity buffers and
// ignores foreign slices on release.
func TestBatchBufRoundTrip(t *testing.T) {
	buf := BatchBuf()
	if len(buf) != DefaultBatchSize || cap(buf) != DefaultBatchSize {
		t.Fatalf("BatchBuf: len=%d cap=%d, want %d", len(buf), cap(buf), DefaultBatchSize)
	}
	ReleaseBatchBuf(buf)
	ReleaseBatchBuf(nil)                        // no-op
	ReleaseBatchBuf(make([]mem.Access, 7))      // foreign capacity: ignored
	ReleaseBatchBuf(buf[:100])                  // short view of a pooled buffer still returns it
	ReleaseBatchBuf(make([]mem.Access, 0, 100)) // foreign capacity: ignored
}

// TestBytesReaderDecodeAllocFree: steady-state in-memory decoding — the
// server's per-batch hot path — performs zero heap allocations.
func TestBytesReaderDecodeAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	full := recordedBytes(t)
	var br BytesReader
	dst := make([]mem.Access, 16)
	decode := func() {
		if err := br.Reset(full); err != nil {
			t.Fatal(err)
		}
		for {
			_, err := br.Read(dst)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	decode() // warm up
	if allocs := testing.AllocsPerRun(200, decode); allocs > 0 {
		t.Errorf("BytesReader decode allocates %.2f times per stream, want 0", allocs)
	}
}

// TestWriterEncodeAllocFree: a Reset-reused Writer encodes a stream with
// zero steady-state heap allocations (the varint scratch must not
// escape).
func TestWriterEncodeAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	accs := []mem.Access{
		{Addr: 0x1000, PC: 0x400000, Size: 8, Kind: mem.Load},
		{Addr: 1 << 44, PC: 0x400010, Size: 4, Kind: mem.Store},
	}
	var w Writer
	encode := func() {
		if err := w.Reset(io.Discard); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 256; i++ {
			for _, a := range accs {
				if err := w.Write(a); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	encode() // warm up
	if allocs := testing.AllocsPerRun(100, encode); allocs > 0 {
		t.Errorf("Writer encode allocates %.2f times per stream, want 0", allocs)
	}
}
