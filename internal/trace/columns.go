package trace

import (
	"encoding/binary"
	"fmt"

	"repro/internal/mem"
)

// Columnar access batches.
//
// A Columns value holds one batch of accesses split by field — the
// layout behind the wire protocol's v3 compressed batch frames and the
// engine's vectorized execute path. Splitting the stream into vectors
// exposes the structure delta encoding exploits: address streams are
// strided or clustered, PC streams cycle through a handful of code
// sites, and the kind/size metadata is near-constant, so each column
// compresses far better than the row-wise RDT3 record stream where the
// three interleave.
//
// Column encodings (shared by the wire layer and recorded traces):
//
//   - Addrs and PCs: either per-value delta against the previous value
//     (starting from 0), zig-zag mapped and varint encoded — the same
//     delta discipline as RDT3 — or zero-run delta-of-delta, where a
//     constant stride makes every second-order delta zero and a whole
//     run of accesses collapses to one run-length integer. The encoder
//     produces both and keeps the smaller, so irregular streams never
//     pay for the second-order model;
//   - Meta: one byte per access packing kind and size exactly like an
//     RDT3 record header (bit 0 kind, bits 1-4 size), either raw or
//     run-length encoded as (value, run length) pairs — real workloads
//     hold these constant for thousands of accesses.
//
// All Append*/Decode* helpers are allocation-free once dst has grown to
// its steady size, which is what lets the ingest pipeline stay at zero
// allocations per batch.

// Columns is one batch of accesses in columnar (struct-of-arrays) form.
// The three slices always have equal length.
type Columns struct {
	Addrs []mem.Addr
	PCs   []mem.Addr
	// Meta packs each access's kind and size into the RDT3 record
	// header byte: bit 0 kind (0 load, 1 store), bits 1-4 size.
	Meta []byte
}

// PackMeta packs an access's kind and size into a meta byte (the RDT3
// record-header packing).
func PackMeta(a mem.Access) byte {
	return byte(a.Kind&1) | byte(a.Size&0x0f)<<1
}

// MetaKind extracts the access kind from a meta byte.
func MetaKind(b byte) mem.Kind { return mem.Kind(b & 1) }

// MetaSize extracts the access size from a meta byte.
func MetaSize(b byte) uint8 { return b >> 1 & 0x0f }

// Len returns the number of accesses held.
func (c *Columns) Len() int { return len(c.Addrs) }

// Reset empties the columns, retaining capacity for reuse.
func (c *Columns) Reset() {
	c.Addrs = c.Addrs[:0]
	c.PCs = c.PCs[:0]
	c.Meta = c.Meta[:0]
}

// Append adds one access.
func (c *Columns) Append(a mem.Access) {
	c.Addrs = append(c.Addrs, a.Addr)
	c.PCs = append(c.PCs, a.PC)
	c.Meta = append(c.Meta, PackMeta(a))
}

// Grow ensures capacity for n more accesses, so the appends or column
// decodes that follow reallocate at most once per column instead of
// doubling their way up — the difference between ~3 and ~40 allocations
// when cold scratch meets its first full batch.
func (c *Columns) Grow(n int) {
	if need := len(c.Addrs) + n; cap(c.Addrs) < need {
		addrs := make([]mem.Addr, len(c.Addrs), need)
		copy(addrs, c.Addrs)
		c.Addrs = addrs
	}
	if need := len(c.PCs) + n; cap(c.PCs) < need {
		pcs := make([]mem.Addr, len(c.PCs), need)
		copy(pcs, c.PCs)
		c.PCs = pcs
	}
	if need := len(c.Meta) + n; cap(c.Meta) < need {
		meta := make([]byte, len(c.Meta), need)
		copy(meta, c.Meta)
		c.Meta = meta
	}
}

// AppendBatch adds a recorded batch of accesses — the columnar builder
// for streams that are already materialized row-wise.
func (c *Columns) AppendBatch(accs []mem.Access) {
	c.Grow(len(accs))
	for _, a := range accs {
		c.Append(a)
	}
}

// Access reconstructs the i-th access. It is a plain load of the three
// columns — no allocation — so event-delivery paths can materialize
// exactly the accesses they observe.
func (c *Columns) Access(i int) mem.Access {
	m := c.Meta[i]
	return mem.Access{
		Addr: c.Addrs[i],
		PC:   c.PCs[i],
		Size: MetaSize(m),
		Kind: MetaKind(m),
	}
}

// AppendTo materializes every access onto dst and returns the extended
// slice.
func (c *Columns) AppendTo(dst []mem.Access) []mem.Access {
	for i := range c.Addrs {
		dst = append(dst, c.Access(i))
	}
	return dst
}

// AppendRDT3 decodes a complete in-memory RDT3 stream directly into the
// columns — the columnar builder for recorded traces and v2 wire
// payloads. The RDT3 record header byte is the meta byte, so decoding
// is a straight delta accumulation with no intermediate mem.Access
// values. Error behaviour matches BytesReader: truncation wraps
// ErrTruncated, corruption is descriptive.
func (c *Columns) AppendRDT3(data []byte) error {
	if len(data) < len(fileMagic) {
		return fmt.Errorf("trace: reading header: %w", ErrTruncated)
	}
	if [4]byte(data[:4]) != fileMagic {
		return fmt.Errorf("trace: bad magic %q, want %q", data[:4], fileMagic)
	}
	pos := len(fileMagic)
	var prev, prevPC mem.Addr
	var n uint64
	for {
		if pos >= len(data) {
			return fmt.Errorf("trace: stream ends after %d records with no end-of-stream trailer: %w", n, ErrTruncated)
		}
		hdr := data[pos]
		pos++
		if hdr == endSentinel {
			want, vn := binary.Uvarint(data[pos:])
			if vn == 0 {
				return fmt.Errorf("trace: stream ends inside the end-of-stream trailer: %w", ErrTruncated)
			}
			if vn < 0 {
				return fmt.Errorf("trace: reading end-of-stream trailer: uvarint overflows 64 bits")
			}
			pos += vn
			if want != n {
				return fmt.Errorf("trace: corrupt stream: trailer records %d accesses, decoded %d", want, n)
			}
			if rest := len(data) - pos; rest > 0 {
				return fmt.Errorf("trace: %d trailing bytes after end-of-stream trailer", rest)
			}
			return nil
		}
		delta, vn := binary.Varint(data[pos:])
		if vn <= 0 {
			return rdt3VarintErr(vn, n)
		}
		pos += vn
		pcDelta, vn := binary.Varint(data[pos:])
		if vn <= 0 {
			return rdt3VarintErr(vn, n)
		}
		pos += vn
		prev = mem.Addr(int64(prev) + delta)
		prevPC = mem.Addr(int64(prevPC) + pcDelta)
		c.Addrs = append(c.Addrs, prev)
		c.PCs = append(c.PCs, prevPC)
		c.Meta = append(c.Meta, hdr)
		n++
	}
}

func rdt3VarintErr(n int, rec uint64) error {
	if n == 0 {
		return fmt.Errorf("trace: record %d cut off mid-stream: %w", rec, ErrTruncated)
	}
	return fmt.Errorf("trace: corrupt record %d: varint overflows 64 bits", rec)
}

// zigzag maps a signed delta onto an unsigned varint-friendly value
// (small magnitudes of either sign encode short).
func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// AppendDeltaColumn appends the delta + zig-zag varint encoding of vals
// to dst and returns the extended slice. The first value is encoded as
// a delta against 0.
func AppendDeltaColumn(dst []byte, vals []mem.Addr) []byte {
	var scratch [binary.MaxVarintLen64]byte
	var prev mem.Addr
	for _, v := range vals {
		n := binary.PutUvarint(scratch[:], zigzag(int64(v)-int64(prev)))
		dst = append(dst, scratch[:n]...)
		prev = v
	}
	return dst
}

// DecodeDeltaColumn decodes exactly count delta + zig-zag varint values
// from data, appending them to dst. Every byte of data must be
// consumed; short or over-long columns are corruption.
func DecodeDeltaColumn(dst []mem.Addr, data []byte, count int) ([]mem.Addr, error) {
	pos := 0
	var prev mem.Addr
	for i := 0; i < count; i++ {
		u, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return dst, deltaVarintErr(n, i)
		}
		pos += n
		prev = mem.Addr(int64(prev) + unzigzag(u))
		dst = append(dst, prev)
	}
	if pos != len(data) {
		return dst, fmt.Errorf("trace: delta column has %d trailing bytes after %d values", len(data)-pos, count)
	}
	return dst, nil
}

func deltaVarintErr(n, i int) error {
	if n == 0 {
		return fmt.Errorf("trace: delta column cut off at value %d: %w", i, ErrTruncated)
	}
	return fmt.Errorf("trace: delta column value %d: varint overflows 64 bits", i)
}

// AppendDoDColumn appends the zero-run delta-of-delta encoding of vals
// to dst: the column is a sequence of (zeros, dod) pairs, where zeros
// is a uvarint run length of values whose second-order delta is zero
// (the value continues the previous stride) and dod is the zig-zag
// varint of the next non-zero second-order delta. A trailing all-zero
// run is a bare final uvarint. Constant-stride streams — sequential
// sweeps, strided lane traversals — collapse to a handful of bytes
// regardless of length.
func AppendDoDColumn(dst []byte, vals []mem.Addr) []byte {
	dst, _ = AppendDoDColumnMax(dst, vals, -1)
	return dst
}

// AppendDoDColumnMax is AppendDoDColumn with an early abort: once the
// encoding would exceed limit bytes it gives up, truncates dst back to
// its input length and reports false. An encoder choosing between
// candidate encodings passes the size of the one it already holds, so
// streams where delta-of-delta loses (irregular address jumps) pay for
// only the losing prefix instead of the whole column. A negative limit
// never aborts.
func AppendDoDColumnMax(dst []byte, vals []mem.Addr, limit int) ([]byte, bool) {
	var scratch [binary.MaxVarintLen64]byte
	var prev, prevDelta int64
	var zeros uint64
	start := len(dst)
	for _, v := range vals {
		d := int64(v) - prev
		prev = int64(v)
		if d == prevDelta {
			zeros++
			continue
		}
		n := binary.PutUvarint(scratch[:], zeros)
		dst = append(dst, scratch[:n]...)
		n = binary.PutUvarint(scratch[:], zigzag(d-prevDelta))
		dst = append(dst, scratch[:n]...)
		zeros = 0
		prevDelta = d
		if limit >= 0 && len(dst)-start > limit {
			return dst[:start], false
		}
	}
	if zeros > 0 {
		n := binary.PutUvarint(scratch[:], zeros)
		dst = append(dst, scratch[:n]...)
	}
	if limit >= 0 && len(dst)-start > limit {
		return dst[:start], false
	}
	return dst, true
}

// DecodeDoDColumn decodes exactly count values of a zero-run
// delta-of-delta column from data, appending them to dst. Every byte
// must be consumed; runs past count and truncation are corruption.
func DecodeDoDColumn(dst []mem.Addr, data []byte, count int) ([]mem.Addr, error) {
	pos := 0
	var prev, prevDelta int64
	decoded := 0
	for decoded < count {
		zeros, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return dst, dodVarintErr(n, decoded)
		}
		pos += n
		if zeros > uint64(count-decoded) {
			return dst, fmt.Errorf("trace: delta-of-delta column runs past %d values", count)
		}
		for k := uint64(0); k < zeros; k++ {
			prev += prevDelta
			dst = append(dst, mem.Addr(prev))
		}
		decoded += int(zeros)
		if decoded == count {
			break
		}
		dod, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return dst, dodVarintErr(n, decoded)
		}
		pos += n
		prevDelta += unzigzag(dod)
		prev += prevDelta
		dst = append(dst, mem.Addr(prev))
		decoded++
	}
	if pos != len(data) {
		return dst, fmt.Errorf("trace: delta-of-delta column has %d trailing bytes after %d values", len(data)-pos, count)
	}
	return dst, nil
}

func dodVarintErr(n, i int) error {
	if n == 0 {
		return fmt.Errorf("trace: delta-of-delta column cut off at value %d: %w", i, ErrTruncated)
	}
	return fmt.Errorf("trace: delta-of-delta column value %d: varint overflows 64 bits", i)
}

// AppendRLEColumn appends the run-length encoding of vals — (value,
// run-length uvarint) pairs — to dst and returns the extended slice.
func AppendRLEColumn(dst []byte, vals []byte) []byte {
	var scratch [binary.MaxVarintLen64]byte
	for i := 0; i < len(vals); {
		v := vals[i]
		j := i + 1
		for j < len(vals) && vals[j] == v {
			j++
		}
		dst = append(dst, v)
		n := binary.PutUvarint(scratch[:], uint64(j-i))
		dst = append(dst, scratch[:n]...)
		i = j
	}
	return dst
}

// DecodeRLEColumn decodes a run-length encoded column of exactly count
// bytes from data, appending them to dst. Zero-length runs, a total
// other than count, and trailing bytes are corruption.
func DecodeRLEColumn(dst []byte, data []byte, count int) ([]byte, error) {
	pos := 0
	total := 0
	for total < count {
		if pos >= len(data) {
			return dst, fmt.Errorf("trace: RLE column ends after %d of %d values: %w", total, count, ErrTruncated)
		}
		v := data[pos]
		pos++
		run, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			if n == 0 {
				return dst, fmt.Errorf("trace: RLE column cut off inside a run length: %w", ErrTruncated)
			}
			return dst, fmt.Errorf("trace: RLE column run length overflows 64 bits")
		}
		pos += n
		if run == 0 {
			return dst, fmt.Errorf("trace: RLE column contains a zero-length run")
		}
		if run > uint64(count-total) {
			return dst, fmt.Errorf("trace: RLE column runs past %d values", count)
		}
		for k := uint64(0); k < run; k++ {
			dst = append(dst, v)
		}
		total += int(run)
	}
	if pos != len(data) {
		return dst, fmt.Errorf("trace: RLE column has %d trailing bytes after %d values", len(data)-pos, count)
	}
	return dst, nil
}
