package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestFromSliceRoundTrip(t *testing.T) {
	in := []mem.Access{
		{Addr: 1, Size: 8, Kind: mem.Load},
		{Addr: 2, Size: 4, Kind: mem.Store},
		{Addr: 3, Size: 1, Kind: mem.Load},
	}
	out, err := Collect(FromSlice(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d accesses, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("access %d: got %v, want %v", i, out[i], in[i])
		}
	}
}

func TestFromSliceSmallBatches(t *testing.T) {
	in := make([]mem.Access, 10)
	for i := range in {
		in[i] = mem.Access{Addr: mem.Addr(i), Size: 8}
	}
	r := FromSlice(in)
	buf := make([]mem.Access, 3)
	var got []mem.Access
	for {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 10 {
		t.Fatalf("got %d accesses, want 10", len(got))
	}
}

func TestCount(t *testing.T) {
	n, err := Count(Sequential(0, 12345, 8))
	if err != nil || n != 12345 {
		t.Fatalf("Count = %d, %v; want 12345", n, err)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	seen := 0
	err := ForEach(Sequential(0, 1000, 8), func(mem.Access) bool {
		seen++
		return seen < 10
	})
	if err != nil || seen != 10 {
		t.Fatalf("early stop: seen=%d err=%v", seen, err)
	}
}

func TestConcat(t *testing.T) {
	r := Concat(Sequential(0, 5, 8), Sequential(1000, 5, 8))
	accs, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 10 {
		t.Fatalf("concat length = %d, want 10", len(accs))
	}
	if accs[5].Addr != 1000 {
		t.Errorf("second stream starts at %v, want 1000", accs[5].Addr)
	}
}

func TestLimit(t *testing.T) {
	n, err := Count(Limit(Sequential(0, 1000, 8), 17))
	if err != nil || n != 17 {
		t.Fatalf("Limit: n=%d err=%v", n, err)
	}
	// Limit longer than the stream.
	n, err = Count(Limit(Sequential(0, 5, 8), 100))
	if err != nil || n != 5 {
		t.Fatalf("Limit over-long: n=%d err=%v", n, err)
	}
}

func TestRepeat(t *testing.T) {
	r := Repeat(3, func() Reader { return Sequential(0, 4, 8) })
	accs, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 12 {
		t.Fatalf("repeat length = %d, want 12", len(accs))
	}
	if accs[4].Addr != 0 {
		t.Errorf("second lap should restart at 0, got %v", accs[4].Addr)
	}
}

func TestSequentialAddresses(t *testing.T) {
	accs, _ := Collect(Sequential(100, 4, 16))
	want := []mem.Addr{100, 116, 132, 148}
	for i, a := range accs {
		if a.Addr != want[i] {
			t.Errorf("access %d addr = %v, want %v", i, a.Addr, want[i])
		}
	}
}

func TestCyclicPattern(t *testing.T) {
	accs, _ := Collect(Cyclic(0, 3, 7))
	wantAddrs := []mem.Addr{0, 8, 16, 0, 8, 16, 0}
	for i, a := range accs {
		if a.Addr != wantAddrs[i] {
			t.Errorf("access %d addr = %v, want %v", i, a.Addr, wantAddrs[i])
		}
	}
}

func TestRandomUniformStaysInRegion(t *testing.T) {
	err := ForEach(RandomUniform(1, 1<<20, 64, 10000), func(a mem.Access) bool {
		if a.Addr < 1<<20 || a.Addr >= 1<<20+64*8 {
			t.Fatalf("address %v out of region", a.Addr)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPointerChaseVisitsAllNodes(t *testing.T) {
	const nodes = 64
	accs, _ := Collect(PointerChase(3, 0, nodes, nodes))
	seen := make(map[mem.Addr]bool)
	for _, a := range accs {
		seen[a.Addr] = true
	}
	if len(seen) != nodes {
		t.Errorf("pointer chase visited %d distinct nodes in one lap, want %d (single cycle)", len(seen), nodes)
	}
}

func TestPointerChaseIsCyclic(t *testing.T) {
	const nodes = 16
	accs, _ := Collect(PointerChase(5, 0, nodes, nodes*3))
	for i := nodes; i < len(accs); i++ {
		if accs[i] != accs[i-nodes] {
			t.Fatalf("chase not periodic at %d", i)
		}
	}
}

func TestZipfAccessSkew(t *testing.T) {
	counts := make(map[mem.Addr]int)
	err := ForEach(ZipfAccess(1, 0, 1024, 1.2, 50000), func(a mem.Access) bool {
		counts[a.Addr]++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 50000/100 {
		t.Errorf("Zipf max block count %d too flat", max)
	}
}

func TestStencil2DBounds(t *testing.T) {
	const nx, ny = 16, 8
	base := mem.Addr(1 << 30)
	n := 0
	err := ForEach(Stencil2D(base, nx, ny, 2), func(a mem.Access) bool {
		n++
		if a.Addr < base || a.Addr >= base+mem.Addr(nx*ny*8) {
			t.Fatalf("stencil access %v out of grid", a.Addr)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPerSweep := (nx - 2) * (ny - 2) * 6
	if n != 2*wantPerSweep {
		t.Errorf("stencil access count = %d, want %d", n, 2*wantPerSweep)
	}
}

func TestMatMulBlockedCount(t *testing.T) {
	const n = 8
	accs, err := Collect(MatMulBlocked(0, n, 4))
	if err != nil {
		t.Fatal(err)
	}
	// 4 accesses (A, B, C load, C store) per innermost iteration, n^3 of them.
	if len(accs) != 4*n*n*n {
		t.Errorf("matmul access count = %d, want %d", len(accs), 4*n*n*n)
	}
}

func TestMatMulBlockDegenerate(t *testing.T) {
	// bs <= 0 or > n should degenerate to the full matrix.
	a1, _ := Collect(MatMulBlocked(0, 4, 0))
	a2, _ := Collect(MatMulBlocked(0, 4, 4))
	if len(a1) != len(a2) {
		t.Errorf("degenerate block sizes disagree: %d vs %d", len(a1), len(a2))
	}
}

func TestMixProportions(t *testing.T) {
	r := Mix(9,
		[]Reader{Sequential(0, 100000, 8), Sequential(1<<40, 100000, 8)},
		[]float64{3, 1})
	var lo, hi int
	err := ForEach(Limit(r, 40000), func(a mem.Access) bool {
		if a.Addr < 1<<40 {
			lo++
		} else {
			hi++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(lo) / float64(lo+hi)
	if ratio < 0.70 || ratio > 0.80 {
		t.Errorf("mix ratio = %v, want ~0.75", ratio)
	}
}

func TestMixDrainsAllSources(t *testing.T) {
	r := Mix(2,
		[]Reader{Sequential(0, 100, 8), Sequential(1<<40, 5000, 8)},
		[]float64{1, 1})
	n, err := Count(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5100 {
		t.Errorf("mix drained %d accesses, want 5100", n)
	}
}

func TestGaussianWorkingSetInRegion(t *testing.T) {
	const blocks = 1024
	err := ForEach(GaussianWorkingSet(4, 0, blocks, 32, 100, 10000), func(a mem.Access) bool {
		if a.Addr >= blocks*8 {
			t.Fatalf("gaussian access %v out of region", a.Addr)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(addrs []uint32, kinds []bool) bool {
		var in []mem.Access
		for i, a := range addrs {
			k := mem.Load
			if i < len(kinds) && kinds[i] {
				k = mem.Store
			}
			in = append(in, mem.Access{Addr: mem.Addr(a), PC: mem.Addr(a>>3) ^ 0x400000, Size: 8, Kind: k})
		}
		var buf bytes.Buffer
		n, err := Record(&buf, FromSlice(in))
		if err != nil || n != uint64(len(in)) {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		out, err := Collect(r)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileRejectsBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE...."))); err == nil {
		t.Error("NewReader accepted bad magic")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("NewReader accepted empty input")
	}
}

func TestFileTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(&buf, Sequential(1<<60, 10, 4096)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Collect(r); err == nil {
		t.Error("truncated trace decoded without error")
	}
}

func TestFileCompactForSequential(t *testing.T) {
	var buf bytes.Buffer
	const n = 10000
	if _, err := Record(&buf, Sequential(0, n, 8)); err != nil {
		t.Fatal(err)
	}
	if perAccess := float64(buf.Len()) / n; perAccess > 4 {
		t.Errorf("sequential trace costs %.1f bytes/access, want <= 4", perAccess)
	}
}

func TestTagRebasesPCs(t *testing.T) {
	r := Tag(0x400000, Stencil2D(0, 8, 8, 1))
	err := ForEach(r, func(a mem.Access) bool {
		if a.PC < 0x400000 || a.PC > 0x400005 {
			t.Fatalf("tagged PC = %#x, want 0x400000..0x400005", uint64(a.PC))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Single-site generators get a constant PC.
	r = Tag(0x500000, Sequential(0, 10, 8))
	err = ForEach(r, func(a mem.Access) bool {
		if a.PC != 0x500000 {
			t.Fatalf("tagged PC = %#x, want 0x500000", uint64(a.PC))
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMatMulSitePCs(t *testing.T) {
	seen := map[mem.Addr]bool{}
	if err := ForEach(MatMulBlocked(0, 4, 2), func(a mem.Access) bool {
		seen[a.PC] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for pc := mem.Addr(0); pc < 4; pc++ {
		if !seen[pc] {
			t.Errorf("matmul site PC %d never emitted", pc)
		}
	}
}
