package trace

import (
	"repro/internal/mem"
	"repro/internal/stats"
)

// Default access width used by generators (a 64-bit word).
const wordSize = 8

// Tag rebases the program counters of a stream: every access's PC
// becomes pcBase + its generator-local site PC. Generators that model a
// single code site emit PC 0, so Tag stamps them with a constant;
// multi-site kernels (Stencil2D, MatMulBlocked) emit small site indices
// that Tag relocates to distinct fake code addresses.
func Tag(pcBase mem.Addr, r Reader) Reader {
	return &tagReader{r: r, base: pcBase}
}

type tagReader struct {
	r    Reader
	base mem.Addr
}

func (t *tagReader) Read(dst []mem.Access) (int, error) {
	n, err := t.r.Read(dst)
	for i := 0; i < n; i++ {
		dst[i].PC += t.base
	}
	return n, err
}

// Sequential streams linearly through a region: count accesses starting
// at base, advancing by stride bytes each access. It models streaming
// kernels (array sweeps, memcpy, lbm-style lattice updates).
func Sequential(base mem.Addr, count uint64, stride uint64) Reader {
	i := uint64(0)
	return Func(func() (mem.Access, bool) {
		if i >= count {
			return mem.Access{}, false
		}
		a := mem.Access{Addr: base + mem.Addr(i*stride), Size: wordSize, Kind: mem.Load}
		i++
		return a, true
	})
}

// Cyclic loops over a working set of `blocks` 8-byte words starting at
// base, in order, for `count` total accesses. Every access after the
// first lap has reuse distance exactly blocks-1 (at word granularity),
// which makes it the canonical analytic test pattern.
func Cyclic(base mem.Addr, blocks uint64, count uint64) Reader {
	i := uint64(0)
	return Func(func() (mem.Access, bool) {
		if i >= count {
			return mem.Access{}, false
		}
		a := mem.Access{Addr: base + mem.Addr(i%blocks*wordSize), Size: wordSize, Kind: mem.Load}
		i++
		return a, true
	})
}

// RandomUniform draws `count` accesses uniformly from a region of
// `blocks` words starting at base.
func RandomUniform(seed uint64, base mem.Addr, blocks uint64, count uint64) Reader {
	rng := stats.NewRNG(seed)
	i := uint64(0)
	return Func(func() (mem.Access, bool) {
		if i >= count {
			return mem.Access{}, false
		}
		i++
		w := rng.Uint64n(blocks)
		return mem.Access{Addr: base + mem.Addr(w*wordSize), Size: wordSize, Kind: mem.Load}, true
	})
}

// ZipfAccess draws `count` accesses from `blocks` words with a Zipfian
// popularity distribution of exponent s, shuffled so hot words are
// scattered across the region. It models hash tables and branch-y integer
// codes (deepsjeng/leela-style transposition tables).
func ZipfAccess(seed uint64, base mem.Addr, blocks int, s float64, count uint64) Reader {
	rng := stats.NewRNG(seed)
	z := stats.NewZipf(rng, s, blocks)
	perm := make([]int, blocks)
	rng.Perm(perm)
	i := uint64(0)
	return Func(func() (mem.Access, bool) {
		if i >= count {
			return mem.Access{}, false
		}
		i++
		w := perm[z.Next()]
		return mem.Access{Addr: base + mem.Addr(uint64(w)*wordSize), Size: wordSize, Kind: mem.Load}, true
	})
}

// PointerChase builds a random single-cycle permutation over `nodes`
// words and then chases it for `count` accesses. Spatially random,
// temporally fully cyclic: every access after the first lap has reuse
// distance nodes-1. Models mcf/omnetpp-style linked structures.
func PointerChase(seed uint64, base mem.Addr, nodes int, count uint64) Reader {
	rng := stats.NewRNG(seed)
	// Sattolo's algorithm: a uniformly random cyclic permutation.
	next := make([]int32, nodes)
	for i := range next {
		next[i] = int32(i)
	}
	for i := nodes - 1; i > 0; i-- {
		j := rng.Intn(i)
		next[i], next[j] = next[j], next[i]
	}
	cur := int32(0)
	i := uint64(0)
	return Func(func() (mem.Access, bool) {
		if i >= count {
			return mem.Access{}, false
		}
		i++
		a := mem.Access{Addr: base + mem.Addr(uint64(cur)*wordSize), Size: wordSize, Kind: mem.Load}
		cur = next[cur]
		return a, true
	})
}

// Strided sweeps a region repeatedly with a large stride, touching
// `lanes` interleaved streams — the access pattern of column-major
// traversals and multi-array vector kernels (bwaves-style).
func Strided(base mem.Addr, lanes uint64, laneLen uint64, stride uint64, count uint64) Reader {
	i := uint64(0)
	return Func(func() (mem.Access, bool) {
		if i >= count {
			return mem.Access{}, false
		}
		k := i % (lanes * laneLen)
		lane := k % lanes
		pos := k / lanes
		i++
		addr := base + mem.Addr(lane*laneLen*stride+pos*stride)
		return mem.Access{Addr: addr, Size: wordSize, Kind: mem.Load}, true
	})
}

// Stencil2D sweeps an nx × ny grid of float64 row-major, reading the
// 5-point neighborhood and writing the center, for `sweeps` full passes.
// Models structured-grid PDE kernels (cactuBSSN/fotonik3d/roms-style).
func Stencil2D(base mem.Addr, nx, ny int, sweeps int) Reader {
	x, y, s, phase := 1, 1, 0, 0
	at := func(i, j int) mem.Addr { return base + mem.Addr((j*nx+i)*wordSize) }
	return Func(func() (mem.Access, bool) {
		for {
			if s >= sweeps {
				return mem.Access{}, false
			}
			if y >= ny-1 {
				s++
				x, y, phase = 1, 1, 0
				continue
			}
			var a mem.Access
			switch phase {
			case 0:
				a = mem.Access{Addr: at(x, y), Size: wordSize, Kind: mem.Load}
			case 1:
				a = mem.Access{Addr: at(x-1, y), Size: wordSize, Kind: mem.Load}
			case 2:
				a = mem.Access{Addr: at(x+1, y), Size: wordSize, Kind: mem.Load}
			case 3:
				a = mem.Access{Addr: at(x, y-1), Size: wordSize, Kind: mem.Load}
			case 4:
				a = mem.Access{Addr: at(x, y+1), Size: wordSize, Kind: mem.Load}
			case 5:
				a = mem.Access{Addr: at(x, y), Size: wordSize, Kind: mem.Store}
			}
			a.PC = mem.Addr(phase) // per-site PC; relocate with Tag
			phase++
			if phase == 6 {
				phase = 0
				x++
				if x >= nx-1 {
					x = 1
					y++
				}
			}
			return a, true
		}
	})
}

// MatMulBlocked emits the address stream of a blocked n×n float64 matrix
// multiply C += A·B with block size bs (bs == n degenerates to the naive
// triple loop). The three matrices are laid out contiguously from base.
func MatMulBlocked(base mem.Addr, n, bs int) Reader {
	if bs <= 0 || bs > n {
		bs = n
	}
	matBytes := n * n * wordSize
	aBase := base
	bBase := base + mem.Addr(matBytes)
	cBase := base + mem.Addr(2*matBytes)
	at := func(b mem.Addr, i, j int) mem.Addr { return b + mem.Addr((i*n+j)*wordSize) }

	// State machine over the 6-deep blocked loop nest.
	ii, jj, kk := 0, 0, 0
	i, j, k := 0, 0, 0
	phase := 0
	done := false
	return Func(func() (mem.Access, bool) {
		if done {
			return mem.Access{}, false
		}
		var a mem.Access
		switch phase {
		case 0:
			a = mem.Access{Addr: at(aBase, i, k), Size: wordSize, Kind: mem.Load}
		case 1:
			a = mem.Access{Addr: at(bBase, k, j), Size: wordSize, Kind: mem.Load}
		case 2:
			a = mem.Access{Addr: at(cBase, i, j), Size: wordSize, Kind: mem.Load}
		case 3:
			a = mem.Access{Addr: at(cBase, i, j), Size: wordSize, Kind: mem.Store}
		}
		a.PC = mem.Addr(phase) // per-site PC; relocate with Tag
		phase++
		if phase == 4 {
			phase = 0
			// Advance the innermost loop of the blocked nest:
			// for ii,jj,kk blocks; for i in ii-block, j in jj-block, k in kk-block.
			k++
			if k >= min(kk+bs, n) {
				k = kk
				j++
				if j >= min(jj+bs, n) {
					j = jj
					i++
					if i >= min(ii+bs, n) {
						i = ii
						kk += bs
						if kk >= n {
							kk = 0
							jj += bs
							if jj >= n {
								jj = 0
								ii += bs
								if ii >= n {
									done = true
								}
							}
						}
						i, j, k = ii, jj, kk
					}
				}
			}
		}
		return a, true
	})
}

// GaussianWorkingSet draws accesses from a normal distribution of block
// indices centered on a slowly drifting hot spot — a soft working set
// that moves through memory, as in adaptive-mesh or simulation codes.
func GaussianWorkingSet(seed uint64, base mem.Addr, blocks uint64, sigma float64, driftEvery uint64, count uint64) Reader {
	rng := stats.NewRNG(seed)
	center := float64(blocks) / 2
	i := uint64(0)
	return Func(func() (mem.Access, bool) {
		if i >= count {
			return mem.Access{}, false
		}
		if driftEvery > 0 && i%driftEvery == 0 && i > 0 {
			center += sigma / 2
			if center >= float64(blocks) {
				center -= float64(blocks)
			}
		}
		i++
		v := center + rng.NormFloat64()*sigma
		w := int64(v)
		// Wrap into range.
		m := int64(blocks)
		w = ((w % m) + m) % m
		return mem.Access{Addr: base + mem.Addr(uint64(w)*wordSize), Size: wordSize, Kind: mem.Load}, true
	})
}

// Mix interleaves several readers, choosing the source of each access at
// random with the given weights. It ends when all sources are exhausted.
func Mix(seed uint64, readers []Reader, weights []float64) Reader {
	if len(readers) != len(weights) {
		panic("trace: Mix readers/weights length mismatch")
	}
	rng := stats.NewRNG(seed)
	bufs := make([][]mem.Access, len(readers))
	fill := make([]int, len(readers)) // valid entries in bufs[i]
	pos := make([]int, len(readers))
	dead := make([]bool, len(readers))
	total := 0.0
	for _, w := range weights {
		total += w
	}
	pull := func(i int) (mem.Access, bool) {
		if dead[i] {
			return mem.Access{}, false
		}
		if pos[i] >= fill[i] {
			if bufs[i] == nil {
				bufs[i] = make([]mem.Access, 256)
			}
			n, err := readers[i].Read(bufs[i])
			fill[i], pos[i] = n, 0
			if n == 0 {
				dead[i] = err == nil || true
				// A reader returning (0, nil) forever would livelock the
				// mixer; treat it as exhausted either way.
				return mem.Access{}, false
			}
			_ = err
		}
		a := bufs[i][pos[i]]
		pos[i]++
		return a, true
	}
	return Func(func() (mem.Access, bool) {
		for {
			alive := false
			for i := range dead {
				if !dead[i] {
					alive = true
					break
				}
			}
			if !alive {
				return mem.Access{}, false
			}
			u := rng.Float64() * total
			acc := 0.0
			pick := len(readers) - 1
			for i, w := range weights {
				acc += w
				if u < acc {
					pick = i
					break
				}
			}
			if a, ok := pull(pick); ok {
				return a, true
			}
			// Picked an exhausted source; redistribute its weight.
			total -= weights[pick]
			weights[pick] = 0
			if total <= 0 {
				// Drain any remaining live sources round-robin.
				for i := range dead {
					if a, ok := pull(i); ok {
						return a, true
					}
				}
				return mem.Access{}, false
			}
		}
	})
}
