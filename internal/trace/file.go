package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Binary trace format ("RDT2"):
//
//	magic   [4]byte  "RDT2"
//	records *        one per access:
//	    header byte: bit0 = kind (0 load, 1 store), bits1-4 = size
//	    varint       address delta against previous access's address
//	    varint       PC delta against previous access's PC
//
// Delta+varint encoding keeps locality-heavy traces compact (sequential
// single-site streams cost ~3 bytes/access).

var fileMagic = [4]byte{'R', 'D', 'T', '2'}

// Writer encodes accesses to an underlying io.Writer. Call Flush before
// closing the destination.
type Writer struct {
	w      *bufio.Writer
	prev   mem.Addr
	prevPC mem.Addr
	n      uint64
}

// NewWriter writes the file header and returns a trace Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one access to the trace.
func (w *Writer) Write(a mem.Access) error {
	hdr := byte(a.Kind&1) | byte(a.Size&0x0f)<<1
	if err := w.w.WriteByte(hdr); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], int64(a.Addr)-int64(w.prev))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	n = binary.PutVarint(buf[:], int64(a.PC)-int64(w.prevPC))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	w.prev = a.Addr
	w.prevPC = a.PC
	w.n++
	return nil
}

// Count returns the number of accesses written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered output to the destination.
func (w *Writer) Flush() error { return w.w.Flush() }

// Record drains r, writing every access to w, and returns the count.
func Record(w io.Writer, r Reader) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	err = ForEach(r, func(a mem.Access) bool {
		if werr := tw.Write(a); werr != nil {
			err = werr
			return false
		}
		return true
	})
	if err != nil {
		return tw.Count(), err
	}
	return tw.Count(), tw.Flush()
}

// fileReader decodes the binary format and implements Reader.
type fileReader struct {
	r      *bufio.Reader
	prev   mem.Addr
	prevPC mem.Addr
}

// NewReader validates the header of a recorded trace and returns a Reader
// that replays it.
func NewReader(r io.Reader) (Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q, want %q", magic, fileMagic)
	}
	return &fileReader{r: br}, nil
}

func (f *fileReader) Read(dst []mem.Access) (int, error) {
	for i := range dst {
		hdr, err := f.r.ReadByte()
		if err == io.EOF {
			return i, io.EOF
		}
		if err != nil {
			return i, err
		}
		delta, err := binary.ReadVarint(f.r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return i, fmt.Errorf("trace: corrupt record: %w", err)
		}
		pcDelta, err := binary.ReadVarint(f.r)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return i, fmt.Errorf("trace: corrupt record: %w", err)
		}
		addr := mem.Addr(int64(f.prev) + delta)
		pc := mem.Addr(int64(f.prevPC) + pcDelta)
		f.prev = addr
		f.prevPC = pc
		dst[i] = mem.Access{
			Addr: addr,
			PC:   pc,
			Size: hdr >> 1 & 0x0f,
			Kind: mem.Kind(hdr & 1),
		}
	}
	return len(dst), nil
}
