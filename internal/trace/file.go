package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Binary trace format ("RDT3"):
//
//	magic   [4]byte  "RDT3"
//	records *        one per access:
//	    header byte: bit0 = kind (0 load, 1 store), bits1-4 = size
//	    varint       address delta against previous access's address
//	    varint       PC delta against previous access's PC
//	trailer
//	    0xFF         end-of-stream sentinel (invalid as a record header:
//	                 no access has size 15 with bits 5-7 set)
//	    uvarint      total record count, cross-checked on replay
//
// Delta+varint encoding keeps locality-heavy traces compact (sequential
// single-site streams cost ~3 bytes/access). The trailer makes the
// stream self-delimiting: a replayer can tell a complete trace from one
// truncated at any byte offset — including exactly at a record boundary,
// which the RDT2 predecessor silently accepted as a short trace.

var fileMagic = [4]byte{'R', 'D', 'T', '3'}

// endSentinel marks the end of the record stream. It can never begin a
// record: sizes are 1, 2, 4 or 8, so a header byte never has all of
// bits 1-7 set.
const endSentinel = 0xFF

// ErrTruncated is wrapped by replay errors caused by a trace that ends
// before its end-of-stream trailer (a partial download, a crashed
// recorder, a cut-off frame).
var ErrTruncated = fmt.Errorf("trace: truncated stream")

// Writer encodes accesses to an underlying io.Writer. Call Close (or
// Flush, for a partial stream) before closing the destination.
type Writer struct {
	w      *bufio.Writer
	prev   mem.Addr
	prevPC mem.Addr
	n      uint64
	closed bool
}

// NewWriter writes the file header and returns a trace Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one access to the trace.
func (w *Writer) Write(a mem.Access) error {
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	hdr := byte(a.Kind&1) | byte(a.Size&0x0f)<<1
	if err := w.w.WriteByte(hdr); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], int64(a.Addr)-int64(w.prev))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	n = binary.PutVarint(buf[:], int64(a.PC)-int64(w.prevPC))
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	w.prev = a.Addr
	w.prevPC = a.PC
	w.n++
	return nil
}

// Count returns the number of accesses written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered output to the destination without writing the
// end-of-stream trailer. A stream that is never Closed replays with
// ErrTruncated.
func (w *Writer) Flush() error { return w.w.Flush() }

// Close writes the end-of-stream trailer (sentinel + record count) and
// flushes. The Writer accepts no further accesses.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.WriteByte(endSentinel); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], w.n)
	if _, err := w.w.Write(buf[:n]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Record drains r, writing every access (and the closing trailer) to w,
// and returns the count.
func Record(w io.Writer, r Reader) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	err = ForEach(r, func(a mem.Access) bool {
		if werr := tw.Write(a); werr != nil {
			err = werr
			return false
		}
		return true
	})
	if err != nil {
		return tw.Count(), err
	}
	return tw.Count(), tw.Close()
}

// fileReader decodes the binary format and implements Reader.
type fileReader struct {
	r      *bufio.Reader
	prev   mem.Addr
	prevPC mem.Addr
	n      uint64 // records decoded so far
	done   bool   // trailer consumed and verified
}

// NewReader validates the header of a recorded trace and returns a Reader
// that replays it. Replay fails with a descriptive error — never a silent
// short read — when the stream is truncated (at any byte offset,
// ErrTruncated) or corrupt (bad record, count mismatch, trailing data).
func NewReader(r io.Reader) (Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: reading header: %w", ErrTruncated)
		}
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q, want %q", magic, fileMagic)
	}
	return &fileReader{r: br}, nil
}

func (f *fileReader) Read(dst []mem.Access) (int, error) {
	if f.done {
		return 0, io.EOF
	}
	for i := range dst {
		hdr, err := f.r.ReadByte()
		if err == io.EOF {
			return i, fmt.Errorf("trace: stream ends after %d records with no end-of-stream trailer: %w", f.n, ErrTruncated)
		}
		if err != nil {
			return i, err
		}
		if hdr == endSentinel {
			if err := f.finishTrailer(); err != nil {
				return i, err
			}
			return i, io.EOF
		}
		delta, err := binary.ReadVarint(f.r)
		if err != nil {
			return i, f.recordErr(err)
		}
		pcDelta, err := binary.ReadVarint(f.r)
		if err != nil {
			return i, f.recordErr(err)
		}
		addr := mem.Addr(int64(f.prev) + delta)
		pc := mem.Addr(int64(f.prevPC) + pcDelta)
		f.prev = addr
		f.prevPC = pc
		dst[i] = mem.Access{
			Addr: addr,
			PC:   pc,
			Size: hdr >> 1 & 0x0f,
			Kind: mem.Kind(hdr & 1),
		}
		f.n++
	}
	return len(dst), nil
}

// recordErr describes a decode failure inside record f.n. Mid-record EOF
// is truncation; anything else is corruption.
func (f *fileReader) recordErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("trace: record %d cut off mid-stream: %w", f.n, ErrTruncated)
	}
	return fmt.Errorf("trace: corrupt record %d: %w", f.n, err)
}

// finishTrailer consumes and verifies the end-of-stream trailer after its
// sentinel byte has been read.
func (f *fileReader) finishTrailer() error {
	want, err := binary.ReadUvarint(f.r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("trace: stream ends inside the end-of-stream trailer: %w", ErrTruncated)
		}
		return fmt.Errorf("trace: reading end-of-stream trailer: %w", err)
	}
	if want != f.n {
		return fmt.Errorf("trace: corrupt stream: trailer records %d accesses, decoded %d", want, f.n)
	}
	if _, err := f.r.ReadByte(); err != io.EOF {
		return fmt.Errorf("trace: %d trailing bytes after end-of-stream trailer", 1+f.r.Buffered())
	}
	f.done = true
	return nil
}
