package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/mem"
)

// Binary trace format ("RDT3"):
//
//	magic   [4]byte  "RDT3"
//	records *        one per access:
//	    header byte: bit0 = kind (0 load, 1 store), bits1-4 = size
//	    varint       address delta against previous access's address
//	    varint       PC delta against previous access's PC
//	trailer
//	    0xFF         end-of-stream sentinel (invalid as a record header:
//	                 no access has size 15 with bits 5-7 set)
//	    uvarint      total record count, cross-checked on replay
//
// Delta+varint encoding keeps locality-heavy traces compact (sequential
// single-site streams cost ~3 bytes/access). The trailer makes the
// stream self-delimiting: a replayer can tell a complete trace from one
// truncated at any byte offset — including exactly at a record boundary,
// which the RDT2 predecessor silently accepted as a short trace.

var fileMagic = [4]byte{'R', 'D', 'T', '3'}

// endSentinel marks the end of the record stream. It can never begin a
// record: sizes are 1, 2, 4 or 8, so a header byte never has all of
// bits 1-7 set.
const endSentinel = 0xFF

// ErrTruncated is wrapped by replay errors caused by a trace that ends
// before its end-of-stream trailer (a partial download, a crashed
// recorder, a cut-off frame).
var ErrTruncated = fmt.Errorf("trace: truncated stream")

// Writer encodes accesses to an underlying io.Writer. Call Close (or
// Flush, for a partial stream) before closing the destination. A Writer
// is reusable: Reset rebinds it to a new destination and starts a fresh
// stream without allocating, which is what keeps a per-batch encode
// path (one RDT3 stream per wire frame) allocation-free.
type Writer struct {
	w      *bufio.Writer
	prev   mem.Addr
	prevPC mem.Addr
	n      uint64
	closed bool
	// scratch is the varint encode buffer. As a field it stays off the
	// per-Write allocation path; as a local it escapes through the
	// bufio.Writer interface call and costs one heap allocation per
	// access (measured: the dominant allocation of the whole wire
	// encode path).
	scratch [binary.MaxVarintLen64]byte
}

// NewWriter writes the file header and returns a trace Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	tw := new(Writer)
	if err := tw.Reset(w); err != nil {
		return nil, err
	}
	return tw, nil
}

// Reset rebinds the Writer to dst and starts a new stream: the file
// header is written immediately and the delta/count state cleared. The
// zero Writer may be Reset directly. The buffered writer is reused, so
// steady-state re-encoding allocates nothing.
func (w *Writer) Reset(dst io.Writer) error {
	if w.w == nil {
		w.w = bufio.NewWriter(dst)
	} else {
		w.w.Reset(dst)
	}
	w.prev, w.prevPC, w.n, w.closed = 0, 0, 0, false
	if _, err := w.w.Write(fileMagic[:]); err != nil {
		return fmt.Errorf("trace: writing header: %w", err)
	}
	return nil
}

// Write appends one access to the trace.
func (w *Writer) Write(a mem.Access) error {
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	hdr := byte(a.Kind&1) | byte(a.Size&0x0f)<<1
	if err := w.w.WriteByte(hdr); err != nil {
		return err
	}
	n := binary.PutVarint(w.scratch[:], int64(a.Addr)-int64(w.prev))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	n = binary.PutVarint(w.scratch[:], int64(a.PC)-int64(w.prevPC))
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	w.prev = a.Addr
	w.prevPC = a.PC
	w.n++
	return nil
}

// Count returns the number of accesses written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered output to the destination without writing the
// end-of-stream trailer. A stream that is never Closed replays with
// ErrTruncated.
func (w *Writer) Flush() error { return w.w.Flush() }

// Close writes the end-of-stream trailer (sentinel + record count) and
// flushes. The Writer accepts no further accesses.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.w.WriteByte(endSentinel); err != nil {
		return err
	}
	n := binary.PutUvarint(w.scratch[:], w.n)
	if _, err := w.w.Write(w.scratch[:n]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Record drains r, writing every access (and the closing trailer) to w,
// and returns the count.
func Record(w io.Writer, r Reader) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	err = ForEach(r, func(a mem.Access) bool {
		if werr := tw.Write(a); werr != nil {
			err = werr
			return false
		}
		return true
	})
	if err != nil {
		return tw.Count(), err
	}
	return tw.Count(), tw.Close()
}

// fileReader decodes the binary format and implements Reader.
type fileReader struct {
	r      *bufio.Reader
	prev   mem.Addr
	prevPC mem.Addr
	n      uint64 // records decoded so far
	done   bool   // trailer consumed and verified
}

// NewReader validates the header of a recorded trace and returns a Reader
// that replays it. Replay fails with a descriptive error — never a silent
// short read — when the stream is truncated (at any byte offset,
// ErrTruncated) or corrupt (bad record, count mismatch, trailing data).
func NewReader(r io.Reader) (Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("trace: reading header: %w", ErrTruncated)
		}
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q, want %q", magic, fileMagic)
	}
	return &fileReader{r: br}, nil
}

func (f *fileReader) Read(dst []mem.Access) (int, error) {
	if f.done {
		return 0, io.EOF
	}
	for i := range dst {
		hdr, err := f.r.ReadByte()
		if err == io.EOF {
			return i, fmt.Errorf("trace: stream ends after %d records with no end-of-stream trailer: %w", f.n, ErrTruncated)
		}
		if err != nil {
			return i, err
		}
		if hdr == endSentinel {
			if err := f.finishTrailer(); err != nil {
				return i, err
			}
			return i, io.EOF
		}
		delta, err := binary.ReadVarint(f.r)
		if err != nil {
			return i, f.recordErr(err)
		}
		pcDelta, err := binary.ReadVarint(f.r)
		if err != nil {
			return i, f.recordErr(err)
		}
		addr := mem.Addr(int64(f.prev) + delta)
		pc := mem.Addr(int64(f.prevPC) + pcDelta)
		f.prev = addr
		f.prevPC = pc
		dst[i] = mem.Access{
			Addr: addr,
			PC:   pc,
			Size: hdr >> 1 & 0x0f,
			Kind: mem.Kind(hdr & 1),
		}
		f.n++
	}
	return len(dst), nil
}

// recordErr describes a decode failure inside record f.n. Mid-record EOF
// is truncation; anything else is corruption.
func (f *fileReader) recordErr(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("trace: record %d cut off mid-stream: %w", f.n, ErrTruncated)
	}
	return fmt.Errorf("trace: corrupt record %d: %w", f.n, err)
}

// finishTrailer consumes and verifies the end-of-stream trailer after its
// sentinel byte has been read.
func (f *fileReader) finishTrailer() error {
	want, err := binary.ReadUvarint(f.r)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("trace: stream ends inside the end-of-stream trailer: %w", ErrTruncated)
		}
		return fmt.Errorf("trace: reading end-of-stream trailer: %w", err)
	}
	if want != f.n {
		return fmt.Errorf("trace: corrupt stream: trailer records %d accesses, decoded %d", want, f.n)
	}
	if _, err := f.r.ReadByte(); err != io.EOF {
		return fmt.Errorf("trace: %d trailing bytes after end-of-stream trailer", 1+f.r.Buffered())
	}
	f.done = true
	return nil
}
