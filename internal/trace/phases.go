package trace

import (
	"repro/internal/mem"
	"repro/internal/stats"
)

// MarkovPhases models programs that move between behavioural phases
// (the execution structure the paper's long-running characterization
// targets): a Markov chain over phases, each phase owning a generator
// factory, with geometrically distributed dwell times.
//
// Each visit to a phase constructs a fresh stream from its factory and
// plays `dwell` accesses of it (or to exhaustion); transitions then
// follow the transition matrix. The composite stream ends after `count`
// total accesses.
type MarkovPhase struct {
	// Name labels the phase (diagnostics).
	Name string
	// New builds the phase's access stream; called once per visit.
	New func() Reader
	// Dwell is the mean number of accesses spent per visit.
	Dwell uint64
}

// MarkovPhases builds the composite stream. transitions[i][j] is the
// probability of moving to phase j when phase i's dwell expires; rows
// must be non-empty and non-negative (they are normalized internally).
func MarkovPhases(seed uint64, phases []MarkovPhase, transitions [][]float64, count uint64) Reader {
	if len(phases) == 0 {
		panic("trace: MarkovPhases with no phases")
	}
	if len(transitions) != len(phases) {
		panic("trace: MarkovPhases transition matrix size mismatch")
	}
	rng := stats.NewRNG(seed)
	cur := 0
	var reader Reader
	var left uint64
	emitted := uint64(0)
	buf := make([]mem.Access, 1)

	nextPhase := func() {
		row := transitions[cur]
		total := 0.0
		for _, p := range row {
			total += p
		}
		if total <= 0 {
			// Absorbing row: stay put.
			return
		}
		u := rng.Float64() * total
		acc := 0.0
		for j, p := range row {
			acc += p
			if u < acc {
				cur = j
				return
			}
		}
		cur = len(row) - 1
	}

	enter := func() {
		reader = phases[cur].New()
		// Geometric-ish dwell: uniform in [dwell/2, 3*dwell/2).
		d := phases[cur].Dwell
		if d == 0 {
			d = 1
		}
		left = d/2 + rng.Uint64n(d) + 1
	}
	enter()

	return Func(func() (mem.Access, bool) {
		for {
			if emitted >= count {
				return mem.Access{}, false
			}
			if left == 0 {
				nextPhase()
				enter()
			}
			n, err := reader.Read(buf)
			if n == 1 {
				left--
				emitted++
				return buf[0], true
			}
			if err != nil {
				// Phase stream exhausted: move on immediately.
				nextPhase()
				enter()
				continue
			}
		}
	})
}

// SpatialCluster draws accesses with spatial locality: a uniformly
// random "object" base is chosen every `burst` accesses, and accesses
// within a burst walk sequentially through the object — the pattern of
// field-wise structure access that makes cache lines effective. Objects
// are objSize words; the heap holds `objects` of them.
func SpatialCluster(seed uint64, base mem.Addr, objects, objSize, burst, count uint64) Reader {
	if objSize == 0 || burst == 0 || objects == 0 {
		panic("trace: SpatialCluster with zero size")
	}
	rng := stats.NewRNG(seed)
	var cur mem.Addr
	inBurst := uint64(0)
	i := uint64(0)
	return Func(func() (mem.Access, bool) {
		if i >= count {
			return mem.Access{}, false
		}
		if inBurst == 0 {
			obj := rng.Uint64n(objects)
			cur = base + mem.Addr(obj*objSize*wordSize)
			inBurst = burst
		}
		off := (burst - inBurst) % objSize
		inBurst--
		i++
		return mem.Access{Addr: cur + mem.Addr(off*wordSize), Size: wordSize, Kind: mem.Load}, true
	})
}
