package trace

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mem"
	"repro/internal/stats"
)

// randomAccesses draws a mixed batch: strided runs, random jumps, the
// full size/kind alphabet, and extreme addresses that stress the
// zig-zag delta encoding.
func randomAccesses(seed uint64, n int) []mem.Access {
	rng := stats.NewRNG(seed)
	sizes := []uint8{1, 2, 4, 8}
	accs := make([]mem.Access, n)
	addr := mem.Addr(rng.Uint64n(1 << 40))
	pc := mem.Addr(0x400000)
	for i := range accs {
		switch rng.Uint64n(8) {
		case 0: // random jump, occasionally to an extreme
			if rng.Uint64n(16) == 0 {
				addr = mem.Addr(rng.Uint64())
			} else {
				addr = mem.Addr(rng.Uint64n(1 << 44))
			}
			pc = 0x400000 + mem.Addr(rng.Uint64n(1<<12))*4
		case 1:
			addr -= 64
		default: // strided run
			addr += 64
		}
		accs[i] = mem.Access{
			Addr: addr,
			PC:   pc,
			Size: sizes[rng.Uint64n(4)],
			Kind: mem.Kind(rng.Uint64n(2)),
		}
	}
	return accs
}

// TestColumnsRoundTrip: batch -> columns -> column encodings -> decode
// must reproduce the accesses bit-exactly, for batches of many shapes.
func TestColumnsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 4096} {
		accs := randomAccesses(uint64(n)+1, n)
		var c Columns
		c.AppendBatch(accs)
		if c.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, c.Len())
		}

		for _, enc := range []string{"delta", "dod"} {
			var addrCol, pcCol []byte
			if enc == "delta" {
				addrCol = AppendDeltaColumn(nil, c.Addrs)
				pcCol = AppendDeltaColumn(nil, c.PCs)
			} else {
				addrCol = AppendDoDColumn(nil, c.Addrs)
				pcCol = AppendDoDColumn(nil, c.PCs)
			}
			metaCol := AppendRLEColumn(nil, c.Meta)

			decode := func(col []byte) ([]mem.Addr, error) {
				if enc == "delta" {
					return DecodeDeltaColumn(nil, col, n)
				}
				return DecodeDoDColumn(nil, col, n)
			}
			addrs, err := decode(addrCol)
			if err != nil {
				t.Fatalf("n=%d %s: addr column: %v", n, enc, err)
			}
			pcs, err := decode(pcCol)
			if err != nil {
				t.Fatalf("n=%d %s: pc column: %v", n, enc, err)
			}
			meta, err := DecodeRLEColumn(nil, metaCol, n)
			if err != nil {
				t.Fatalf("n=%d %s: meta column: %v", n, enc, err)
			}
			back := Columns{Addrs: addrs, PCs: pcs, Meta: meta}
			got := back.AppendTo(nil)
			if len(got) != n {
				t.Fatalf("n=%d %s: decoded %d accesses", n, enc, len(got))
			}
			for i := range got {
				if got[i] != accs[i] {
					t.Fatalf("n=%d %s: access %d changed: %v -> %v", n, enc, i, accs[i], got[i])
				}
			}
		}
	}
}

// TestColumnsZigzagExtremes: deltas at the int64 boundaries must
// survive the zig-zag mapping.
func TestColumnsZigzagExtremes(t *testing.T) {
	vals := []mem.Addr{0, math.MaxUint64, 0, 1 << 63, 42, math.MaxInt64, 0}
	col := AppendDeltaColumn(nil, vals)
	got, err := DecodeDeltaColumn(nil, col, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("delta value %d: %#x -> %#x", i, uint64(vals[i]), uint64(got[i]))
		}
	}
	dod := AppendDoDColumn(nil, vals)
	got, err = DecodeDoDColumn(nil, dod, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("dod value %d: %#x -> %#x", i, uint64(vals[i]), uint64(got[i]))
		}
	}
}

// TestAppendRDT3MatchesReader: the direct RDT3->columns builder must
// agree with BytesReader record for record, and classify truncation at
// every byte offset the same way.
func TestAppendRDT3MatchesReader(t *testing.T) {
	accs := randomAccesses(3, 777)
	var buf bytes.Buffer
	if _, err := Record(&buf, FromSlice(accs)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	var c Columns
	if err := c.AppendRDT3(data); err != nil {
		t.Fatal(err)
	}
	got := c.AppendTo(nil)
	if len(got) != len(accs) {
		t.Fatalf("decoded %d of %d accesses", len(got), len(accs))
	}
	for i := range got {
		if got[i] != accs[i] {
			t.Fatalf("access %d changed: %v -> %v", i, accs[i], got[i])
		}
	}

	// Truncation anywhere must fail (and never panic); the streaming
	// reader is the classification oracle.
	for cut := 0; cut < len(data); cut++ {
		var tc Columns
		if err := tc.AppendRDT3(data[:cut]); err == nil {
			t.Fatalf("truncation at byte %d accepted", cut)
		}
	}
}

// TestDecodeColumnCorruption: malformed columns fail descriptively.
func TestDecodeColumnCorruption(t *testing.T) {
	vals := []mem.Addr{1, 2, 3}
	col := AppendDeltaColumn(nil, vals)
	if _, err := DecodeDeltaColumn(nil, col[:len(col)-1], len(vals)); err == nil {
		t.Error("truncated delta column accepted")
	}
	if _, err := DecodeDeltaColumn(nil, append(append([]byte(nil), col...), 0), len(vals)); err == nil {
		t.Error("delta column with trailing byte accepted")
	}
	if _, err := DecodeDeltaColumn(nil, bytes.Repeat([]byte{0x80}, 11), 1); err == nil {
		t.Error("overlong varint accepted")
	}

	dod := AppendDoDColumn(nil, []mem.Addr{1, 2, 100, 3})
	if _, err := DecodeDoDColumn(nil, dod[:len(dod)-1], 4); err == nil {
		t.Error("truncated dod column accepted")
	}
	if _, err := DecodeDoDColumn(nil, append(append([]byte(nil), dod...), 0), 4); err == nil {
		t.Error("dod column with trailing byte accepted")
	}
	if _, err := DecodeDoDColumn(nil, []byte{9}, 3); err == nil {
		t.Error("dod zero-run past count accepted")
	}

	meta := AppendRLEColumn(nil, []byte{5, 5, 5, 7})
	if _, err := DecodeRLEColumn(nil, meta, 3); err == nil {
		t.Error("RLE column running past count accepted")
	}
	if _, err := DecodeRLEColumn(nil, meta[:1], 4); err == nil {
		t.Error("RLE column cut inside a run accepted")
	}
	if _, err := DecodeRLEColumn(nil, []byte{5, 0}, 0); err == nil {
		t.Error("zero-length run with trailing bytes accepted")
	}
}

// TestColumnCompression pins the point of the layout: strided and
// sequential streams must collapse under the delta-of-delta encoding,
// far below RDT3's several bytes per access.
func TestColumnCompression(t *testing.T) {
	for _, tc := range []struct {
		name   string
		r      Reader
		budget float64 // bytes/access, all three columns
	}{
		{"sequential", Sequential(0, 1<<14, 64), 0.1},
		{"strided", Strided(0, 8, 1<<10, 64, 1<<14), 1.5},
	} {
		accs, err := Collect(tc.r)
		if err != nil {
			t.Fatal(err)
		}
		var c Columns
		c.AppendBatch(accs)
		pick := func(vals []mem.Addr) int {
			d := len(AppendDeltaColumn(nil, vals))
			dd := len(AppendDoDColumn(nil, vals))
			return min(d, dd)
		}
		total := pick(c.Addrs) + pick(c.PCs) + len(AppendRLEColumn(nil, c.Meta))
		perAccess := float64(total) / float64(len(accs))
		t.Logf("%s: %.3f bytes/access columnar", tc.name, perAccess)
		if perAccess > tc.budget {
			t.Errorf("%s stream encodes at %.3f bytes/access, want <= %.2f", tc.name, perAccess, tc.budget)
		}
	}
}
