package trace

import (
	"testing"

	"repro/internal/mem"
)

func TestMarkovPhasesLength(t *testing.T) {
	phases := []MarkovPhase{
		{Name: "a", New: func() Reader { return Sequential(0, 1<<30, 8) }, Dwell: 100},
		{Name: "b", New: func() Reader { return Cyclic(1<<40, 64, 1<<30) }, Dwell: 100},
	}
	trans := [][]float64{{0, 1}, {1, 0}}
	n, err := Count(MarkovPhases(1, phases, trans, 10000))
	if err != nil || n != 10000 {
		t.Fatalf("count = %d, err = %v", n, err)
	}
}

func TestMarkovPhasesAlternates(t *testing.T) {
	// Deterministic two-phase alternation: accesses must come from both
	// regions in interleaved runs.
	phases := []MarkovPhase{
		{Name: "lo", New: func() Reader { return Cyclic(0, 8, 1<<30) }, Dwell: 50},
		{Name: "hi", New: func() Reader { return Cyclic(1<<40, 8, 1<<30) }, Dwell: 50},
	}
	trans := [][]float64{{0, 1}, {1, 0}}
	var loSeen, hiSeen, switches int
	last := -1
	err := ForEach(MarkovPhases(2, phases, trans, 20000), func(a mem.Access) bool {
		region := 0
		if a.Addr >= 1<<40 {
			region = 1
		}
		if region == 0 {
			loSeen++
		} else {
			hiSeen++
		}
		if last >= 0 && region != last {
			switches++
		}
		last = region
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if loSeen == 0 || hiSeen == 0 {
		t.Fatalf("phases not both visited: lo=%d hi=%d", loSeen, hiSeen)
	}
	if switches < 100 {
		t.Errorf("only %d phase switches over 20000 accesses with dwell 50", switches)
	}
}

func TestMarkovPhasesExhaustedPhaseAdvances(t *testing.T) {
	// A phase whose stream runs dry before its dwell expires must hand
	// over rather than livelock.
	phases := []MarkovPhase{
		{Name: "short", New: func() Reader { return Sequential(0, 5, 8) }, Dwell: 1000},
		{Name: "long", New: func() Reader { return Cyclic(1<<40, 8, 1<<30) }, Dwell: 1000},
	}
	trans := [][]float64{{0, 1}, {0, 1}} // short -> long -> long...
	n, err := Count(MarkovPhases(3, phases, trans, 5000))
	if err != nil || n != 5000 {
		t.Fatalf("count = %d, err = %v", n, err)
	}
}

func TestMarkovPhasesAbsorbingRow(t *testing.T) {
	phases := []MarkovPhase{
		{Name: "only", New: func() Reader { return Cyclic(0, 4, 1<<30) }, Dwell: 10},
	}
	trans := [][]float64{{0}} // absorbing
	n, err := Count(MarkovPhases(4, phases, trans, 1000))
	if err != nil || n != 1000 {
		t.Fatalf("count = %d, err = %v", n, err)
	}
}

func TestMarkovPhasesPanics(t *testing.T) {
	assertPanics := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	assertPanics("no phases", func() { MarkovPhases(1, nil, nil, 10) })
	assertPanics("matrix mismatch", func() {
		MarkovPhases(1, []MarkovPhase{{New: func() Reader { return Sequential(0, 1, 8) }, Dwell: 1}}, nil, 10)
	})
}

func TestSpatialClusterShape(t *testing.T) {
	const objects, objSize, burst, n = 100, 8, 16, 10000
	var lineLocal, total int
	var prev mem.Addr
	err := ForEach(SpatialCluster(5, 0, objects, objSize, burst, n), func(a mem.Access) bool {
		if a.Addr >= objects*objSize*8 {
			t.Fatalf("access %v outside heap", a.Addr)
		}
		if total > 0 {
			// Consecutive accesses inside a burst stay within one object
			// (64 bytes here): count how often.
			if a.Addr/64 == prev/64 {
				lineLocal++
			}
		}
		prev = a.Addr
		total++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(lineLocal) / float64(total); frac < 0.7 {
		t.Errorf("spatial locality fraction = %v, want >= 0.7", frac)
	}
}

func TestSpatialClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero sizes did not panic")
		}
	}()
	SpatialCluster(1, 0, 0, 8, 8, 10)
}
