// Exact-oracle tests for the phased generators: what the drift
// detector consumes is per-phase locality, so the phases must actually
// produce distinguishable reuse-distance histograms — and reproducible
// ones, since experiments and CI gates rely on seeded determinism.
// External test package: the oracle imports trace.
package trace_test

import (
	"testing"

	"repro/internal/exact"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// measure runs the exhaustive oracle over a stream.
func measure(t *testing.T, r trace.Reader) *exact.Profiler {
	t.Helper()
	p, err := exact.Measure(r, mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMarkovPhasesDistinguishableHistograms: a two-phase workload whose
// phases differ in working set must yield (a) per-phase histograms that
// are far apart, and (b) a composite histogram distinct from either
// pure phase — the composite carries both phases' reuse mass.
func TestMarkovPhasesDistinguishableHistograms(t *testing.T) {
	const n = 200_000
	small := func() trace.Reader { return trace.Cyclic(0, 16, 1<<30) }
	large := func() trace.Reader { return trace.Cyclic(1<<40, 4096, 1<<30) }

	pure := func(f func() trace.Reader) *histogram.Histogram {
		return measure(t, trace.Limit(f(), n)).ReuseDistance()
	}
	smallH := pure(small)
	largeH := pure(large)
	if acc := histogram.Accuracy(smallH, largeH); acc > 0.2 {
		t.Fatalf("pure phases overlap: accuracy %.3f, want <= 0.2", acc)
	}

	phases := []trace.MarkovPhase{
		{Name: "small", New: small, Dwell: 20_000},
		{Name: "large", New: large, Dwell: 20_000},
	}
	trans := [][]float64{{0, 1}, {1, 0}}
	mixedH := measure(t, trace.MarkovPhases(7, phases, trans, n)).ReuseDistance()

	// The mix sits between the pure phases: closer to each than they
	// are to each other, but identical to neither.
	smallAcc := histogram.Accuracy(mixedH, smallH)
	largeAcc := histogram.Accuracy(mixedH, largeH)
	pureAcc := histogram.Accuracy(smallH, largeH)
	if smallAcc <= pureAcc || largeAcc <= pureAcc {
		t.Errorf("mixed histogram not between phases: vs small %.3f, vs large %.3f, small vs large %.3f",
			smallAcc, largeAcc, pureAcc)
	}
	if smallAcc > 0.9 || largeAcc > 0.9 {
		t.Errorf("mixed histogram collapsed onto one phase: vs small %.3f, vs large %.3f", smallAcc, largeAcc)
	}
}

// TestMarkovPhasesSeededDeterminism: the same seed replays the same
// composite stream (histograms bit-equal via Accuracy == 1), different
// seeds reorder the phase schedule.
func TestMarkovPhasesSeededDeterminism(t *testing.T) {
	build := func(seed uint64) trace.Reader {
		phases := []trace.MarkovPhase{
			{Name: "a", New: func() trace.Reader { return trace.ZipfAccess(9, 0, 1<<10, 1.0, 1<<30) }, Dwell: 5_000},
			{Name: "b", New: func() trace.Reader { return trace.RandomUniform(9, 1<<40, 1<<12, 1<<30) }, Dwell: 5_000},
		}
		trans := [][]float64{{0.2, 0.8}, {0.8, 0.2}}
		return trace.MarkovPhases(seed, phases, trans, 60_000)
	}
	a1, err := trace.Collect(build(11))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := trace.Collect(build(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed diverges at access %d: %v vs %v", i, a1[i], a2[i])
		}
	}
	b, err := trace.Collect(build(12))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range min(len(a1), len(b)) {
		if a1[i] == b[i] {
			same++
		}
	}
	if same == len(a1) {
		t.Error("different seeds produced an identical stream")
	}
}

// TestSpatialClusterTighterThanRandom: the clustered generator's whole
// point is spatial locality — at line granularity its reuse distances
// must be far shorter than a uniform scan over the same footprint.
func TestSpatialClusterTighterThanRandom(t *testing.T) {
	const n = 100_000
	const objects, objSize = 1 << 10, 8
	clustered, err := exact.Measure(trace.SpatialCluster(3, 0, objects, objSize, 16, n), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	random, err := exact.Measure(trace.RandomUniform(3, 0, objects*objSize, n), mem.LineGranularity)
	if err != nil {
		t.Fatal(err)
	}
	cm, rm := clustered.ReuseDistance().Mean(), random.ReuseDistance().Mean()
	if cm*4 > rm {
		t.Errorf("clustered mean line reuse distance %.1f not well under random %.1f", cm, rm)
	}
}
