package cpumodel

import (
	"math"
	"testing"
)

func TestNativeAndTotalCycles(t *testing.T) {
	a := NewAccount(Costs{AccessCycles: 4, SampleCycles: 100, TrapCycles: 200, ArmCycles: 50, InstrumentCycles: 10})
	a.Accesses = 1000
	a.Samples = 2
	a.Traps = 3
	a.Arms = 4
	a.Instrumented = 5
	if got := a.NativeCycles(); got != 4000 {
		t.Errorf("NativeCycles = %d, want 4000", got)
	}
	want := uint64(4000 + 200 + 600 + 200 + 50)
	if got := a.TotalCycles(); got != want {
		t.Errorf("TotalCycles = %d, want %d", got, want)
	}
}

func TestOverheadAndSlowdown(t *testing.T) {
	a := NewAccount(Costs{AccessCycles: 1, SampleCycles: 100})
	a.Accesses = 1000
	a.Samples = 10
	if got := a.Slowdown(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Slowdown = %v, want 2", got)
	}
	if got := a.Overhead(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Overhead = %v, want 1", got)
	}
}

func TestZeroAccessesEdgeCases(t *testing.T) {
	a := NewAccount(Default())
	if a.Overhead() != 0 {
		t.Errorf("empty Overhead = %v", a.Overhead())
	}
	if a.Slowdown() != 1 {
		t.Errorf("empty Slowdown = %v", a.Slowdown())
	}
}

func TestScaledLeavesAccessCost(t *testing.T) {
	c := Default().Scaled(2)
	d := Default()
	if c.AccessCycles != d.AccessCycles {
		t.Errorf("Scaled changed AccessCycles: %d", c.AccessCycles)
	}
	if c.SampleCycles != 2*d.SampleCycles || c.TrapCycles != 2*d.TrapCycles ||
		c.ArmCycles != 2*d.ArmCycles || c.InstrumentCycles != 2*d.InstrumentCycles {
		t.Errorf("Scaled(2) = %+v", c)
	}
}

func TestScaledFractional(t *testing.T) {
	c := Costs{SampleCycles: 10}.Scaled(0.25)
	if c.SampleCycles != 3 { // 2.5 rounds to 3 with +0.5
		t.Errorf("Scaled(0.25) sample cycles = %d, want 3", c.SampleCycles)
	}
}

func TestDefaultOrdersOfMagnitude(t *testing.T) {
	// The calibration must keep interrupts ~1000x an access and
	// instrumentation ~10-100x, or overhead experiments lose meaning.
	d := Default()
	if d.SampleCycles < 100*d.AccessCycles {
		t.Error("sample cost implausibly low")
	}
	if d.TrapCycles < 100*d.AccessCycles {
		t.Error("trap cost implausibly low")
	}
	if d.InstrumentCycles < 10*d.AccessCycles || d.InstrumentCycles > d.SampleCycles {
		t.Error("instrumentation cost out of calibrated band")
	}
}
