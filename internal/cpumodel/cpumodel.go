// Package cpumodel defines the cycle-cost model used to report time and
// memory overheads. The paper's overhead numbers are ratios of profiled
// to native execution time (and of profiler state to application
// footprint); those ratios are reproduced here by charging calibrated
// cycle costs for the events each tool induces — PMU overflow interrupts,
// debug-exception (watchpoint) traps, watchpoint arming syscalls, and,
// for the exhaustive baseline, a per-access instrumentation callback.
//
// The default constants are calibrated to a contemporary ~2.5 GHz server
// core profiled from user space on Linux:
//
//   - a memory access in a healthy pipeline retires in a few cycles;
//   - a PMU interrupt plus signal delivery to user space costs on the
//     order of a microsecond (~5000 cycles);
//   - a watchpoint trap (debug exception → SIGTRAP → handler → resume)
//     costs about the same, plus the ptrace/perf ioctl to re-arm
//     (~1500 cycles);
//   - binary-instrumentation shadowing of one access (Pin-style analysis
//     routine plus order-statistics-tree update) costs ~150 cycles.
//
// The A3 experiment sweeps these constants ¼×–4× to show the headline
// shape is robust to the calibration.
package cpumodel

// Costs is the cycle-cost table for one simulated run.
type Costs struct {
	// AccessCycles is the base cost of one memory access in the
	// uninstrumented program.
	AccessCycles uint64
	// SampleCycles is the cost of one PMU overflow interrupt delivered to
	// the profiler (interrupt + signal + handler + sysret).
	SampleCycles uint64
	// TrapCycles is the cost of one watchpoint debug exception delivered
	// to the profiler.
	TrapCycles uint64
	// ArmCycles is the cost of (re)programming one debug register from
	// user space.
	ArmCycles uint64
	// InstrumentCycles is the per-access cost of exhaustive
	// instrumentation (the ground-truth baseline's analysis routine).
	InstrumentCycles uint64
}

// Default returns the calibrated cost table described in the package
// comment.
func Default() Costs {
	return Costs{
		AccessCycles:     4,
		SampleCycles:     5000,
		TrapCycles:       5000,
		ArmCycles:        1500,
		InstrumentCycles: 150,
	}
}

// Scaled returns a copy of c with every profiling cost (everything except
// AccessCycles) multiplied by f. Used by the cost-sensitivity ablation.
func (c Costs) Scaled(f float64) Costs {
	mul := func(v uint64) uint64 {
		return uint64(float64(v)*f + 0.5)
	}
	return Costs{
		AccessCycles:     c.AccessCycles,
		SampleCycles:     mul(c.SampleCycles),
		TrapCycles:       mul(c.TrapCycles),
		ArmCycles:        mul(c.ArmCycles),
		InstrumentCycles: mul(c.InstrumentCycles),
	}
}

// Account accumulates the cycle cost of one run.
type Account struct {
	Costs Costs

	Accesses     uint64
	Samples      uint64
	Traps        uint64
	Arms         uint64
	Instrumented uint64
}

// NewAccount returns an account charging the given cost table.
func NewAccount(c Costs) *Account { return &Account{Costs: c} }

// NativeCycles is the modelled runtime of the program with no profiler.
func (a *Account) NativeCycles() uint64 {
	return a.Accesses * a.Costs.AccessCycles
}

// TotalCycles is the modelled runtime including profiling costs.
func (a *Account) TotalCycles() uint64 {
	return a.NativeCycles() +
		a.Samples*a.Costs.SampleCycles +
		a.Traps*a.Costs.TrapCycles +
		a.Arms*a.Costs.ArmCycles +
		a.Instruments()*a.Costs.InstrumentCycles
}

// Instruments returns the number of instrumented accesses charged.
func (a *Account) Instruments() uint64 { return a.Instrumented }

// Overhead returns the fractional time overhead: total/native − 1.
func (a *Account) Overhead() float64 {
	n := a.NativeCycles()
	if n == 0 {
		return 0
	}
	return float64(a.TotalCycles())/float64(n) - 1
}

// Slowdown returns total/native (1.0 = no overhead).
func (a *Account) Slowdown() float64 {
	n := a.NativeCycles()
	if n == 0 {
		return 1
	}
	return float64(a.TotalCycles()) / float64(n)
}
