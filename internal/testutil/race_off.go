//go:build !race

// Package testutil carries small helpers shared by tests, chiefly the
// race-detector flag: allocation-budget assertions are meaningless under
// -race (the instrumentation inhibits inlining and stack allocation),
// so those tests skip themselves when RaceEnabled is true.
package testutil

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
