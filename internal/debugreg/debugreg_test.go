package debugreg

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func load(addr uint64, size uint8) mem.Access {
	return mem.Access{Addr: mem.Addr(addr), Size: size, Kind: mem.Load}
}

func store(addr uint64, size uint8) mem.Access {
	return mem.Access{Addr: mem.Addr(addr), Size: size, Kind: mem.Store}
}

func TestArmAndTrap(t *testing.T) {
	var traps []Trap
	f := NewFile(4, func(tr Trap) { traps = append(traps, tr) })
	if err := f.Arm(0, 0x1000, 8, WatchReadWrite, 42); err != nil {
		t.Fatal(err)
	}
	f.Check(load(0x2000, 8)) // miss
	f.Check(load(0x1000, 8)) // hit
	if len(traps) != 1 {
		t.Fatalf("traps = %d, want 1", len(traps))
	}
	if traps[0].Slot != 0 || traps[0].WP.Tag != 42 {
		t.Errorf("trap = %+v", traps[0])
	}
	if f.Traps() != 1 {
		t.Errorf("Traps() = %d", f.Traps())
	}
}

func TestTrapRemainsArmedUntilDisarm(t *testing.T) {
	n := 0
	f := NewFile(1, func(Trap) { n++ })
	if err := f.Arm(0, 0x10, 8, WatchReadWrite, 0); err != nil {
		t.Fatal(err)
	}
	f.Check(load(0x10, 8))
	f.Check(load(0x10, 8))
	if n != 2 {
		t.Errorf("armed watchpoint trapped %d times, want 2 (stays armed)", n)
	}
	f.Disarm(0)
	f.Check(load(0x10, 8))
	if n != 2 {
		t.Errorf("disarmed watchpoint trapped")
	}
}

func TestNaturalAlignment(t *testing.T) {
	f := NewFile(1, nil)
	// Arming an unaligned address must align down, like DR7 LEN fields.
	if err := f.Arm(0, 0x1003, 8, WatchReadWrite, 0); err != nil {
		t.Fatal(err)
	}
	wp := f.Slot(0)
	if wp.Addr != 0x1000 {
		t.Errorf("watchpoint base = %#x, want 0x1000", uint64(wp.Addr))
	}
}

func TestWidthSemantics(t *testing.T) {
	hits := 0
	f := NewFile(1, func(Trap) { hits++ })
	if err := f.Arm(0, 0x100, 4, WatchReadWrite, 0); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		acc  mem.Access
		want bool
	}{
		{load(0x100, 1), true},
		{load(0x103, 1), true},
		{load(0x104, 1), false},
		{load(0xFF, 1), false},
		{load(0xFE, 4), true}, // straddles into the watched range
		{load(0x102, 8), true},
	}
	for _, c := range cases {
		before := hits
		f.Check(c.acc)
		if got := hits > before; got != c.want {
			t.Errorf("access %v trap = %v, want %v", c.acc, got, c.want)
		}
	}
}

func TestWatchWriteKind(t *testing.T) {
	hits := 0
	f := NewFile(1, func(Trap) { hits++ })
	if err := f.Arm(0, 0x40, 8, WatchWrite, 0); err != nil {
		t.Fatal(err)
	}
	f.Check(load(0x40, 8))
	if hits != 0 {
		t.Error("write watchpoint trapped on load")
	}
	f.Check(store(0x40, 8))
	if hits != 1 {
		t.Error("write watchpoint missed store")
	}
}

func TestInvalidArmArguments(t *testing.T) {
	f := NewFile(2, nil)
	if err := f.Arm(-1, 0, 8, WatchReadWrite, 0); err == nil {
		t.Error("negative slot accepted")
	}
	if err := f.Arm(2, 0, 8, WatchReadWrite, 0); err == nil {
		t.Error("out-of-range slot accepted")
	}
	for _, w := range []uint8{0, 3, 5, 16} {
		if err := f.Arm(0, 0, w, WatchReadWrite, 0); err == nil {
			t.Errorf("invalid width %d accepted", w)
		}
	}
}

func TestFreeSlotAndCounts(t *testing.T) {
	f := NewFile(3, nil)
	if got := f.FreeSlot(); got != 0 {
		t.Errorf("FreeSlot on empty = %d", got)
	}
	for i := 0; i < 3; i++ {
		if err := f.Arm(i, uint64ToAddr(i)*8, 8, WatchReadWrite, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.FreeSlot(); got != -1 {
		t.Errorf("FreeSlot on full = %d", got)
	}
	if got := f.ArmedCount(); got != 3 {
		t.Errorf("ArmedCount = %d", got)
	}
	f.Disarm(1)
	if got := f.FreeSlot(); got != 1 {
		t.Errorf("FreeSlot after disarm = %d", got)
	}
	slots := f.ArmedSlots(nil)
	if len(slots) != 2 || slots[0] != 0 || slots[1] != 2 {
		t.Errorf("ArmedSlots = %v", slots)
	}
	f.DisarmAll()
	if f.ArmedCount() != 0 {
		t.Error("DisarmAll left slots armed")
	}
}

func uint64ToAddr(i int) mem.Addr { return mem.Addr(i) }

func TestOverlappingWatchpointsBothTrap(t *testing.T) {
	n := 0
	f := NewFile(2, func(Trap) { n++ })
	if err := f.Arm(0, 0x100, 8, WatchReadWrite, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Arm(1, 0x100, 4, WatchReadWrite, 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Check(load(0x100, 4)); got != 2 {
		t.Errorf("Check returned %d traps, want 2", got)
	}
	if n != 2 {
		t.Errorf("handler invoked %d times, want 2", n)
	}
}

func TestArmOverwrites(t *testing.T) {
	f := NewFile(1, nil)
	if err := f.Arm(0, 0x100, 8, WatchReadWrite, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Arm(0, 0x200, 8, WatchReadWrite, 2); err != nil {
		t.Fatal(err)
	}
	if got := f.Check(load(0x100, 8)); got != 0 {
		t.Error("old watchpoint survived overwrite")
	}
	if got := f.Check(load(0x200, 8)); got != 1 {
		t.Error("new watchpoint not armed")
	}
	if f.Arms() != 2 {
		t.Errorf("Arms = %d, want 2", f.Arms())
	}
}

// Property: a watchpoint traps exactly when the access range overlaps the
// aligned watch range and the kind matches.
func TestTrapIffOverlapProperty(t *testing.T) {
	f := func(watchAddr, accAddr uint32, widthSel, sizeSel uint8, isStore, watchWriteOnly bool) bool {
		widths := []uint8{1, 2, 4, 8}
		width := widths[widthSel%4]
		size := widths[sizeSel%4]
		kind := WatchReadWrite
		if watchWriteOnly {
			kind = WatchWrite
		}
		hit := false
		file := NewFile(1, func(Trap) { hit = true })
		if err := file.Arm(0, mem.Addr(watchAddr), width, kind, 0); err != nil {
			return false
		}
		acc := mem.Access{Addr: mem.Addr(accAddr), Size: size, Kind: mem.Load}
		if isStore {
			acc.Kind = mem.Store
		}
		file.Check(acc)

		base := mem.Addr(watchAddr) &^ mem.Addr(width-1)
		overlaps := acc.Addr < base+mem.Addr(width) && base < acc.Addr+mem.Addr(acc.Size)
		kindOK := !watchWriteOnly || isStore
		return hit == (overlaps && kindOK)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewFilePanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFile(0) did not panic")
		}
	}()
	NewFile(0, nil)
}
