// Package debugreg simulates the hardware debug registers (x86 DR0–DR3
// and their DR7 control bits) that RDX uses as address watchpoints.
//
// The simulation models the properties RDX's design depends on:
//
//   - scarcity: commodity x86 exposes exactly 4 data watchpoints; the
//     count is configurable to reproduce the paper's sensitivity study;
//   - width/alignment: each watchpoint covers a naturally aligned 1-, 2-,
//     4- or 8-byte range and traps on any access overlapping it;
//   - trap delivery: a matching access raises a synchronous debug
//     exception, delivered to a registered handler before execution
//     continues (the role SIGTRAP plays for a user-space profiler);
//   - kind filtering: watch stores only, or loads and stores (x86 has no
//     load-only mode; we model the RW=3 "read/write" and RW=1 "write"
//     encodings).
package debugreg

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// WatchKind mirrors the DR7 RW encodings that matter for data
// watchpoints.
type WatchKind uint8

const (
	// WatchReadWrite traps on loads and stores (DR7 RW=3).
	WatchReadWrite WatchKind = iota
	// WatchWrite traps on stores only (DR7 RW=1).
	WatchWrite
)

func (k WatchKind) matches(a mem.Access) bool {
	if k == WatchWrite {
		return a.Kind == mem.Store
	}
	return true
}

// MaxWidth is the widest range one watchpoint can cover, as on x86.
const MaxWidth = 8

// Watchpoint describes one armed debug register.
type Watchpoint struct {
	Addr  mem.Addr // base address, naturally aligned to Width
	Width uint8    // 1, 2, 4 or 8 bytes
	Kind  WatchKind
	// Tag is opaque client data carried with the watchpoint (RDX stores
	// the counter value captured when the watchpoint was armed).
	Tag uint64
}

// Covers reports whether access a overlaps the watched range and matches
// the watch kind — i.e. whether this watchpoint would trap on a. The
// simulated core uses it to pre-screen accesses against armed slots
// before paying for full trap delivery.
func (w Watchpoint) Covers(a mem.Access) bool {
	if !w.Kind.matches(a) {
		return false
	}
	return a.Addr < w.Addr+mem.Addr(w.Width) && w.Addr < a.Addr+mem.Addr(a.Size)
}

// Trap is delivered to the handler when an access hits a watchpoint.
type Trap struct {
	Slot   int
	WP     Watchpoint
	Access mem.Access
}

// TrapHandler receives debug exceptions. It runs synchronously at the
// faulting access; the watchpoint remains armed unless the handler
// disarms it (matching how a SIGTRAP handler must reset DR7 itself).
type TrapHandler func(Trap)

// File is a set of hardware debug registers. It maintains an armed-slot
// count and (for files of up to 64 slots) a bitmask so the hot-path
// Check is O(armed): free when nothing is armed, and touching only armed
// slots otherwise.
type File struct {
	slots      []Watchpoint
	armed      []bool
	armedCount int
	armedMask  uint64 // bit i set iff slot i armed; valid when len(slots) <= 64
	handler    TrapHandler
	traps      uint64
	arms       uint64
}

// NewFile returns a debug-register file with n slots (n=4 matches x86).
func NewFile(n int, handler TrapHandler) *File {
	if n <= 0 {
		panic("debugreg: NewFile with n <= 0")
	}
	return &File{
		slots:   make([]Watchpoint, n),
		armed:   make([]bool, n),
		handler: handler,
	}
}

// NumSlots returns the number of debug registers.
func (f *File) NumSlots() int { return len(f.slots) }

// validWidth reports whether w is a legal watchpoint width.
func validWidth(w uint8) bool {
	return w == 1 || w == 2 || w == 4 || w == 8
}

// Arm programs slot with a watchpoint on the naturally aligned
// width-byte range containing addr. It returns an error for an invalid
// slot or width. Arming an already armed slot overwrites it, as writing
// DRx does on hardware.
func (f *File) Arm(slot int, addr mem.Addr, width uint8, kind WatchKind, tag uint64) error {
	if slot < 0 || slot >= len(f.slots) {
		return fmt.Errorf("debugreg: slot %d out of range [0,%d)", slot, len(f.slots))
	}
	if !validWidth(width) {
		return fmt.Errorf("debugreg: invalid watch width %d (want 1, 2, 4 or 8)", width)
	}
	base := addr &^ mem.Addr(width-1) // natural alignment, as DR7 LEN requires
	f.slots[slot] = Watchpoint{Addr: base, Width: width, Kind: kind, Tag: tag}
	if !f.armed[slot] {
		f.armed[slot] = true
		f.armedCount++
		f.armedMask |= 1 << uint(slot)
	}
	f.arms++
	return nil
}

// Disarm clears slot. Disarming an unarmed slot is a no-op.
func (f *File) Disarm(slot int) {
	if slot >= 0 && slot < len(f.slots) && f.armed[slot] {
		f.armed[slot] = false
		f.armedCount--
		f.armedMask &^= 1 << uint(slot)
	}
}

// DisarmAll clears every slot.
func (f *File) DisarmAll() {
	for i := range f.armed {
		f.armed[i] = false
	}
	f.armedCount = 0
	f.armedMask = 0
}

// IsArmed reports whether slot holds an active watchpoint.
func (f *File) IsArmed(slot int) bool {
	return slot >= 0 && slot < len(f.slots) && f.armed[slot]
}

// Slot returns the watchpoint in slot (meaningful only if armed).
func (f *File) Slot(slot int) Watchpoint { return f.slots[slot] }

// FreeSlot returns the index of an unarmed slot, or -1 if all are armed.
func (f *File) FreeSlot() int {
	for i, a := range f.armed {
		if !a {
			return i
		}
	}
	return -1
}

// ArmedCount returns how many slots are currently armed. It is O(1).
func (f *File) ArmedCount() int { return f.armedCount }

// AnyArmed reports whether at least one slot is armed. It is O(1).
func (f *File) AnyArmed() bool { return f.armedCount > 0 }

// ArmedMask returns the armed-slot bitmask (bit i set iff slot i is
// armed). Only meaningful for files of at most 64 slots.
func (f *File) ArmedMask() uint64 { return f.armedMask }

// ArmedSlots appends the indices of armed slots to dst and returns it.
func (f *File) ArmedSlots(dst []int) []int {
	for i, a := range f.armed {
		if a {
			dst = append(dst, i)
		}
	}
	return dst
}

// Check tests an access against every armed watchpoint, delivering a
// trap for each hit (multiple watchpoints on overlapping ranges each
// trap, matching DR6 reporting multiple set bits, in ascending slot
// order). It returns the number of traps delivered. The check is
// O(armed): it returns immediately when nothing is armed and otherwise
// visits only armed slots via the armed mask.
func (f *File) Check(a mem.Access) int {
	if f.armedCount == 0 {
		return 0
	}
	n := 0
	if len(f.slots) <= 64 {
		// Iterate the armed mask in ascending slot order. Trap handlers
		// may disarm slots mid-check, so each visited slot re-checks its
		// live armed bit — a slot disarmed by an earlier trap of the same
		// access must not trap, exactly as the full slot scan behaves.
		for m := f.armedMask; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			if f.armedMask&(1<<uint(i)) != 0 && f.slots[i].Covers(a) {
				n++
				f.traps++
				if f.handler != nil {
					f.handler(Trap{Slot: i, WP: f.slots[i], Access: a})
				}
			}
		}
		return n
	}
	for i := range f.slots {
		if f.armed[i] && f.slots[i].Covers(a) {
			n++
			f.traps++
			if f.handler != nil {
				f.handler(Trap{Slot: i, WP: f.slots[i], Access: a})
			}
		}
	}
	return n
}

// FileState is the complete mutable state of a debug-register file,
// exported for lossless checkpoint/restore of a profiling session.
type FileState struct {
	Slots []Watchpoint
	Armed []bool
	Traps uint64
	Arms  uint64
}

// State captures the file's mutable state (a deep copy).
func (f *File) State() FileState {
	return FileState{
		Slots: append([]Watchpoint(nil), f.slots...),
		Armed: append([]bool(nil), f.armed...),
		Traps: f.traps,
		Arms:  f.arms,
	}
}

// SetState overwrites the file's state with a previously captured one.
// The slot count must match the file's and every armed watchpoint must
// be valid; the derived armed count and mask are rebuilt.
func (f *File) SetState(s FileState) error {
	if len(s.Slots) != len(f.slots) || len(s.Armed) != len(f.armed) {
		return fmt.Errorf("debugreg: state has %d slots, file has %d", len(s.Slots), len(f.slots))
	}
	for i, armed := range s.Armed {
		if armed && !validWidth(s.Slots[i].Width) {
			return fmt.Errorf("debugreg: state slot %d armed with invalid width %d", i, s.Slots[i].Width)
		}
	}
	copy(f.slots, s.Slots)
	f.armedCount = 0
	f.armedMask = 0
	for i, armed := range s.Armed {
		f.armed[i] = armed
		if armed {
			f.armedCount++
			f.armedMask |= 1 << uint(i)
		}
	}
	f.traps = s.Traps
	f.arms = s.Arms
	return nil
}

// Traps returns the total number of traps delivered.
func (f *File) Traps() uint64 { return f.traps }

// Arms returns the total number of Arm calls.
func (f *File) Arms() uint64 { return f.arms }
