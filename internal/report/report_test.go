package report

import (
	"strings"
	"testing"
)

func TestTableText(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("beta", 42)
	var sb strings.Builder
	if err := tb.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== Demo ==", "name", "value", "alpha", "1.5000", "beta", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x", 2)
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "a,b\nx,2\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestFloatFormatting(t *testing.T) {
	tests := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{12345, "12345"},
		{12.345, "12.35"},
		{0.0512, "0.0512"},
	}
	for _, tt := range tests {
		if got := formatFloat(tt.v); got != tt.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tt.v, got, tt.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.0512); got != "5.12%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestBytes(t *testing.T) {
	tests := []struct {
		v    uint64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 << 20, "3.00MiB"},
		{5 << 30, "5.00GiB"},
	}
	for _, tt := range tests {
		if got := Bytes(tt.v); got != tt.want {
			t.Errorf("Bytes(%d) = %q, want %q", tt.v, got, tt.want)
		}
	}
}
