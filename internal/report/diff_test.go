package report

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/wire"
)

// fakeReport wraps a hand-built reuse-distance histogram in a report:
// (distance, weight) pairs, word granularity, a sample count large
// enough that every noise band sits at its floor.
func fakeReport(pairs ...float64) *Report {
	h := histogram.New()
	for i := 0; i+1 < len(pairs); i += 2 {
		h.Add(uint64(pairs[i]), pairs[i+1])
	}
	res := &wire.Result{
		Config:        core.DefaultConfig(),
		Samples:       1 << 20,
		ReuseDistance: h,
		ReuseTime:     h.Clone(),
	}
	return New("test", "", res)
}

func TestDiffSelfIsUnchanged(t *testing.T) {
	a := fakeReport(16, 50, 4096, 30, 1<<23, 20)
	d, err := DiffReports(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != DiffUnchanged {
		t.Fatalf("self-diff classified %q: %+v", d.Class, d.Metrics)
	}
	for _, m := range d.Metrics {
		if m.Significance != SigNone {
			t.Errorf("self-diff metric %s significant: %+v", m.Name, m)
		}
	}
}

func TestDiffImprovedAndRegressed(t *testing.T) {
	// Baseline streams through memory (reuses beyond LLC); the fix
	// tiles it down into L1.
	before := fakeReport(1<<24, 100)
	after := fakeReport(16, 100)

	d, err := DiffReports(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != DiffImproved {
		t.Fatalf("tiling fix classified %q, want improved: %s", d.Class, d.Summary)
	}

	d, err = DiffReports(after, before)
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != DiffRegressed {
		t.Fatalf("reverse diff classified %q, want regressed: %s", d.Class, d.Summary)
	}
}

func TestDiffShiftedOnMixedDirections(t *testing.T) {
	// Half the reuses hit L1, half miss even the LLC...
	a := fakeReport(16, 50, 1<<24, 50)
	// ...versus everything landing in L2: L1 gets worse, LLC better.
	b := fakeReport(1<<15, 100)
	d, err := DiffReports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != DiffShifted {
		t.Fatalf("mixed-direction diff classified %q, want shifted: %s", d.Class, d.Summary)
	}
}

func TestDiffSubNoiseDeltaIsUnchanged(t *testing.T) {
	a := fakeReport(16, 1000)
	// A 0.5%-of-mass sliver moves within the L1-resident range: below
	// every floor.
	b := fakeReport(16, 995, 64, 5)
	d, err := DiffReports(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d.Class != DiffUnchanged {
		t.Fatalf("sub-noise diff classified %q: %s", d.Class, d.Summary)
	}
}

func TestDiffRefusesProfileLessAndMismatchedReports(t *testing.T) {
	ok := fakeReport(16, 10)
	if _, err := DiffReports(&Report{Schema: SchemaVersion}, ok); err == nil {
		t.Error("diff accepted a profile-less baseline")
	}
	other := fakeReport(16, 10)
	other.Config.Granularity = ok.Config.Granularity + 3
	if _, err := DiffReports(ok, other); err == nil {
		t.Error("diff accepted mismatched granularities")
	}
}

func TestDecodeSchemaVersions(t *testing.T) {
	fresh, err := json.Marshal(fakeReport(16, 10))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Decode(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if r.Schema != SchemaVersion {
		t.Errorf("fresh report decoded with schema %q", r.Schema)
	}

	// Legacy: the pre-versioning `rdx -json` shape, no schema key.
	legacy := []byte(`{"source":"mcf","accesses":1024,"samples":4,"config":{}}`)
	r, err = Decode(legacy)
	if err != nil {
		t.Fatalf("legacy report refused: %v", err)
	}
	if r.Schema != LegacySchema {
		t.Errorf("legacy report decoded with schema %q", r.Schema)
	}
	if r.Result == nil || r.Accesses != 1024 {
		t.Errorf("legacy fields not decoded: %+v", r.Result)
	}

	// A future major version must be refused, not misread.
	future := []byte(`{"schema":"rdx.report/v9"}`)
	if _, err := Decode(future); err == nil || !strings.Contains(err.Error(), "unsupported schema") {
		t.Errorf("future schema accepted: %v", err)
	}
}
