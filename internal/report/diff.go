package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/cache"
	"repro/internal/histogram"
	"repro/internal/mrc"
	"repro/internal/window"
)

// Report diffing classifies two profiles of "the same" workload —
// before/after an optimization, two builds, two machines — without a
// human eyeballing histograms. The verdict space is deliberately
// small:
//
//   - unchanged: nothing moved beyond its noise band.
//   - improved:  at least one cache-facing metric got significantly
//     better and none got significantly worse.
//   - regressed: the mirror image.
//   - shifted:   the locality changed character — metrics moved in
//     both directions, or the histogram shape / working set moved
//     while the cache-facing metrics held.
//
// Significance follows the bench-gate noise-band rule from the
// throughput trajectory (BENCH_engine.json): a delta is judged against
// three times the measurement's own spread, floored per metric. Here
// the spread is the sampling error scale 1/√samples — the profile is
// a sampled estimate, and two runs of the same workload differ by
// about that much for free — and the floors keep the gate quiet on
// shared boxes exactly as benchGateFloorTolerance does.

// Diff classes.
const (
	DiffUnchanged = "unchanged"
	DiffImproved  = "improved"
	DiffRegressed = "regressed"
	DiffShifted   = "shifted"
)

// Significance levels, per metric: below the noise band, within three
// bands, beyond.
const (
	SigNone = "none"
	SigLow  = "low"
	SigHigh = "high"
)

// Metric directions: whether a significant move of this metric argues
// improvement, regression, or only that the profile changed character.
const (
	dirBetter  = "better"
	dirWorse   = "worse"
	dirNeutral = "neutral"
)

// Per-metric noise-band floors (see the package comment above).
const (
	floorMissRatio = 0.01 // absolute miss-ratio points
	floorWS        = 1.0  // |log2| ratio: working sets quantize to powers of two
	floorCold      = 0.02 // absolute fraction
	floorShape     = 0.10 // total-variation distance
)

// Metric is one compared quantity of a report pair.
type Metric struct {
	Name string `json:"name"`
	// A and B are the metric's value in each report, in the metric's
	// own unit.
	A float64 `json:"a"`
	B float64 `json:"b"`
	// Delta is the judged difference: absolute (B−A) for ratio-like
	// metrics, relative for scale metrics, |log2 ratio| for the
	// working set — Unit says which.
	Delta float64 `json:"delta"`
	Unit  string  `json:"unit"`
	// Band is the noise band Delta was judged against.
	Band float64 `json:"band"`
	// Significance is none, low or high.
	Significance string `json:"significance"`
	// Direction is better, worse or neutral; neutral metrics can only
	// argue "shifted", never improvement or regression.
	Direction string `json:"direction"`
}

// Diff is the classified comparison of two reports.
type Diff struct {
	Schema  string   `json:"schema"`
	Class   string   `json:"class"`
	Metrics []Metric `json:"metrics"`
	Summary string   `json:"summary"`
}

// DiffReports compares report b against baseline a. Both must carry a
// profile (the embedded wire result); analyses like MRC or what-if are
// recomputed from the histograms, not required in the files.
func DiffReports(a, b *Report) (*Diff, error) {
	if a == nil || a.Result == nil || a.ReuseDistance == nil {
		return nil, fmt.Errorf("report: baseline report carries no profile")
	}
	if b == nil || b.Result == nil || b.ReuseDistance == nil {
		return nil, fmt.Errorf("report: compared report carries no profile")
	}
	if ga, gb := a.Config.Granularity, b.Config.Granularity; ga != gb {
		return nil, fmt.Errorf("report: granularity mismatch: baseline measured at %v, compared at %v", ga, gb)
	}

	// Sampling-error scale of the less-sampled profile; every band is
	// max(3×spread-derived term, per-metric floor).
	n := min(a.Samples, b.Samples)
	spread := 1.0
	if n > 0 {
		spread = 1 / math.Sqrt(float64(n))
	}

	blockBytes := a.Config.Granularity.BlockSize()
	d := &Diff{Schema: SchemaVersion}

	// Cache-facing metrics: predicted miss ratio at each level of the
	// typical hierarchy. These decide improved/regressed.
	for _, lvl := range cache.TypicalHierarchy() {
		ma, erra := mrc.PredictCache(a.ReuseDistance, lvl.Config, blockBytes)
		mb, errb := mrc.PredictCache(b.ReuseDistance, lvl.Config, blockBytes)
		if erra != nil || errb != nil {
			continue
		}
		d.add(Metric{
			Name: "miss-ratio@" + lvl.Name, A: ma, B: mb,
			Delta: mb - ma, Unit: "absolute",
			Band: band(3*spread, floorMissRatio), Direction: dirBetter,
		})
	}

	// Scale metric: the working set, on a log2 scale (it quantizes to
	// histogram buckets, so sub-octave deltas are quantization noise).
	// Lower is better: it measures how much cache the workload needs.
	// The 90%-mass definition (see window.WorkingSetBlocks) keeps it
	// robust to tail slivers, unlike a mean reuse distance, which a
	// 0.5% tail perturbation can swing by orders of magnitude.
	wsa := window.WorkingSetBytes(a.ReuseDistance, blockBytes)
	wsb := window.WorkingSetBytes(b.ReuseDistance, blockBytes)
	d.add(Metric{
		Name: "working-set-bytes", A: float64(wsa), B: float64(wsb),
		Delta: log2Delta(wsa, wsb), Unit: "log2-ratio",
		Band: floorWS, Direction: dirBetter,
	})

	// Character metrics: cold fraction and histogram shape distance.
	// Neutral — they can only argue that the profile shifted.
	d.add(Metric{
		Name: "cold-fraction", A: coldFraction(a.ReuseDistance), B: coldFraction(b.ReuseDistance),
		Delta: coldFraction(b.ReuseDistance) - coldFraction(a.ReuseDistance), Unit: "absolute",
		Band: band(3*spread, floorCold), Direction: dirNeutral,
	})
	shape := 1 - histogram.Accuracy(b.ReuseDistance, a.ReuseDistance)
	d.add(Metric{
		Name: "histogram-distance", A: 0, B: shape,
		Delta: shape, Unit: "absolute",
		Band: band(3*spread, floorShape), Direction: dirNeutral,
	})

	d.classify()
	return d, nil
}

// add grades a metric's significance and records it.
func (d *Diff) add(m Metric) {
	switch abs := math.Abs(m.Delta); {
	case abs < m.Band:
		m.Significance = SigNone
	case abs < 3*m.Band:
		m.Significance = SigLow
	default:
		m.Significance = SigHigh
	}
	d.Metrics = append(d.Metrics, m)
}

// classify derives the verdict from the graded metrics.
func (d *Diff) classify() {
	var better, worse, moved []string
	for _, m := range d.Metrics {
		if m.Significance == SigNone {
			continue
		}
		switch {
		case m.Direction == dirNeutral:
			moved = append(moved, m.Name)
		case m.Delta < 0:
			better = append(better, m.Name)
		default:
			worse = append(worse, m.Name)
		}
	}
	switch {
	case len(better) > 0 && len(worse) > 0:
		d.Class = DiffShifted
		d.Summary = fmt.Sprintf("locality shifted: %s improved while %s regressed",
			strings.Join(better, ", "), strings.Join(worse, ", "))
	case len(better) > 0:
		d.Class = DiffImproved
		d.Summary = "improved: " + strings.Join(better, ", ")
	case len(worse) > 0:
		d.Class = DiffRegressed
		d.Summary = "regressed: " + strings.Join(worse, ", ")
	case len(moved) > 0:
		d.Class = DiffShifted
		d.Summary = "locality shifted without clear cache impact: " + strings.Join(moved, ", ")
	default:
		d.Class = DiffUnchanged
		d.Summary = "no metric moved beyond its noise band"
	}
}

func log2Delta(a, b uint64) float64 {
	if a == 0 || b == 0 {
		if a == b {
			return 0
		}
		return math.Inf(1)
	}
	return math.Log2(float64(b) / float64(a))
}

func coldFraction(h *histogram.Histogram) float64 {
	t := h.Total()
	if t <= 0 {
		return 0
	}
	return h.Cold() / t
}

func band(derived, floor float64) float64 {
	return math.Max(derived, floor)
}
