// Package report renders experiment output as aligned text tables and
// CSV, so every table and figure of the evaluation prints in a uniform,
// diff-friendly format from both the CLI harness and the benchmarks.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	rule := make([]string, len(t.headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV renders the table as CSV (no quoting needed for our cells).
func (t *Table) WriteCSV(w io.Writer) error {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.headers, ","))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		sb.WriteString(strings.Join(row, ","))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Percent formats a ratio as a percentage string ("5.2%").
func Percent(v float64) string {
	return fmt.Sprintf("%.2f%%", v*100)
}

// Bytes formats a byte count with binary units.
func Bytes(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}
