package report

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/histogram"
	"repro/internal/mrc"
	"repro/internal/wire"
)

// SchemaVersion tags every machine-readable rdx report. The envelope
// below is the one serialized surface shared by `rdx -json`, the
// daemon's /whatif endpoint and `rdx diff`; before it, each emitted an
// ad-hoc JSON blob that consumers could only version by guessing.
//
// Compatibility contract: within one major version ("v1"), fields are
// only ever added, so any v1 reader can read any v1 report. A reader
// handed a report from a different major version must refuse rather
// than misinterpret — Decode enforces this. Reports written before
// versioning existed (no "schema" key) decode as LegacySchema: the v1
// envelope is a strict superset of the old `rdx -json` shape, so they
// remain readable.
const SchemaVersion = "rdx.report/v1"

// LegacySchema is the version Decode assigns to pre-versioning reports
// (JSON without a "schema" key).
const LegacySchema = "rdx.report/v0"

// Report is the versioned envelope for one profiling run. The wire
// result embeds inline (not nested), keeping the serialized shape
// backward compatible with the schema-less `rdx -json` output.
type Report struct {
	// Schema is the envelope version, SchemaVersion for new reports.
	Schema string `json:"schema"`
	// Source is the workload name or trace path that was profiled.
	Source string `json:"source,omitempty"`
	// Remote is the rdxd address, or "" for an in-process run.
	Remote string `json:"remote,omitempty"`
	// Result is the profile itself, fields inlined.
	*wire.Result
	// MRC and WhatIf are the optional cache analyses.
	MRC    *mrc.Curve  `json:"mrc,omitempty"`
	WhatIf *mrc.Report `json:"whatif,omitempty"`
	// Accuracy, GroundTruth and DistinctBlocks are the optional
	// exact-oracle validation extras.
	Accuracy       *float64             `json:"accuracy,omitempty"`
	GroundTruth    *histogram.Histogram `json:"ground_truth,omitempty"`
	DistinctBlocks uint64               `json:"distinct_blocks,omitempty"`
}

// New wraps a profile result in a current-version envelope.
func New(source, remote string, res *wire.Result) *Report {
	return &Report{Schema: SchemaVersion, Source: source, Remote: remote, Result: res}
}

// Decode parses a serialized report, accepting any rdx.report/v1
// report and, for continuity, legacy schema-less output (assigned
// LegacySchema). Reports from an unknown major version are refused.
func Decode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: decoding: %w", err)
	}
	switch {
	case r.Schema == "":
		r.Schema = LegacySchema
	case r.Schema == SchemaVersion || r.Schema == LegacySchema:
	case strings.HasPrefix(r.Schema, "rdx.report/"):
		return nil, fmt.Errorf("report: unsupported schema %q (this build reads %s)", r.Schema, SchemaVersion)
	default:
		return nil, fmt.Errorf("report: %q is not an rdx report (schema %q)", data[:min(len(data), 32)], r.Schema)
	}
	return &r, nil
}

// Load reads and decodes a report file.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}
