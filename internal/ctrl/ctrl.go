// Package ctrl is the control plane over a fleet of rdxd backends: a
// coordinator that owns session→backend placement policy above the
// pool's mechanics. The pool decides where each new stream goes (least
// loaded wins) and fails over when a backend dies; the coordinator
// decides which backends are in the set at all — admitting new ones
// mid-run, draining hot ones live (migrate every session off, then
// retire), rebalancing when load skews — and enforces per-tenant
// session quotas on the way in.
//
// The division of labor keeps both sides simple: the coordinator only
// ever talks to backend admin endpoints (/drain, /migrate, /metrics)
// and to the pool's membership methods (AddBackend, MarkDraining). It
// never touches a session. Migration itself — checkpoint handover, the
// client redirect, ack preservation — is the server's and the wire
// client's business; see the server package's migration protocol.
// Because profiling is deterministic in (stream, config), nothing the
// coordinator does can change results, only where they are computed.
package ctrl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/trace"
)

// Options tunes a Coordinator. The zero value uses defaults.
type Options struct {
	// DrainPoll is the cadence at which a drain re-orders migrations
	// and re-checks the draining backend's session count (default
	// 200ms).
	DrainPoll time.Duration
	// ProbeTimeout bounds each admin HTTP call (default 2s).
	ProbeTimeout time.Duration
	// MaxSessionsPerTenant caps concurrent sessions per tenant across
	// the whole fleet (default 0 = unlimited). Acquisitions beyond the
	// cap fail fast rather than queue.
	MaxSessionsPerTenant int
	// RebalanceThreshold is the minimum load gap (hottest minus
	// coldest, by the /metrics load gauge) before Rebalance orders
	// migrations (default 4).
	RebalanceThreshold int64
	// HTTPClient overrides the admin transport (default: a client with
	// ProbeTimeout).
	HTTPClient *http.Client
	// Logf receives coordinator diagnostics (default: silent).
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.DrainPoll <= 0 {
		o.DrainPoll = 200 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.RebalanceThreshold <= 0 {
		o.RebalanceThreshold = 4
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// MemberState is a backend's lifecycle state in the coordinator's view.
type MemberState int

const (
	// Active members receive new sessions.
	Active MemberState = iota
	// Draining members are being emptied; no new sessions.
	Draining
	// Retired members have drained to zero sessions and left the fleet.
	Retired
)

func (s MemberState) String() string {
	switch s {
	case Active:
		return "active"
	case Draining:
		return "draining"
	case Retired:
		return "retired"
	default:
		return fmt.Sprintf("MemberState(%d)", int(s))
	}
}

// Member is one backend plus its lifecycle state.
type Member struct {
	Backend pool.Backend
	State   MemberState
}

// Coordinator owns backend membership and placement policy for one
// pool. Safe for concurrent use.
type Coordinator struct {
	opts  Options
	pool  *pool.Pool
	httpc *http.Client

	mu      sync.Mutex
	members []*Member
	tenants map[string]int // live sessions per tenant
}

// New builds a coordinator over a pool and the backends the pool was
// created with (states start Active).
func New(p *Pool, backends []pool.Backend, opts Options) *Coordinator {
	opts.fill()
	c := &Coordinator{
		opts:    opts,
		pool:    p,
		tenants: make(map[string]int),
	}
	c.httpc = opts.HTTPClient
	if c.httpc == nil {
		c.httpc = &http.Client{Timeout: opts.ProbeTimeout}
	}
	for _, b := range backends {
		c.members = append(c.members, &Member{Backend: b, State: Active})
	}
	return c
}

// Pool is re-exported so callers constructing a coordinator need not
// import both packages for the one type.
type Pool = pool.Pool

// Status snapshots the fleet membership.
func (c *Coordinator) Status() []Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Member, len(c.members))
	for i, m := range c.members {
		out[i] = *m
	}
	return out
}

// Admit adds a backend to the fleet mid-run: the pool can route new
// sessions (and failovers) to it immediately, and drains can use it as
// a migration destination. Admitting a known address reactivates it.
func (c *Coordinator) Admit(b pool.Backend) {
	c.mu.Lock()
	for _, m := range c.members {
		if m.Backend.Addr == b.Addr {
			m.State = Active
			c.mu.Unlock()
			c.pool.AddBackend(b)
			return
		}
	}
	c.members = append(c.members, &Member{Backend: b, State: Active})
	c.mu.Unlock()
	c.pool.AddBackend(b)
	c.opts.Logf("ctrl: admitted backend %s", b.Addr)
}

// activeTargets returns every Active member except the one at addr, as
// "addr=admin" migration target specs.
func (c *Coordinator) activeTargets(except string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ts []string
	for _, m := range c.members {
		if m.State != Active || m.Backend.Addr == except {
			continue
		}
		ts = append(ts, targetSpec(m.Backend))
	}
	return ts
}

func targetSpec(b pool.Backend) string {
	if b.Admin != "" {
		return b.Addr + "=" + b.Admin
	}
	return b.Addr
}

// Drain empties a backend live and retires it: new sessions stop
// routing there at once, every live session is migrated to the
// remaining Active members via checkpoint handover, and the call
// returns when the backend reports zero live sessions (or ctx
// expires). The drain order is re-issued every DrainPoll — sessions
// whose handoff failed transiently, and sessions that reconnected
// between polls, get re-ordered until the backend is empty. If the
// backend dies mid-drain, Drain returns its error; the sessions it
// still held recover through the normal failover path (resume
// elsewhere via pool re-dispatch), so nothing is lost either way.
func (c *Coordinator) Drain(ctx context.Context, addr string) error {
	m := c.findMember(addr)
	if m == nil {
		return fmt.Errorf("ctrl: no member %s", addr)
	}
	if m.Backend.Admin == "" {
		return fmt.Errorf("ctrl: member %s has no admin address to drain through", addr)
	}
	c.setState(addr, Draining)
	c.pool.MarkDraining(addr)

	targets := c.activeTargets(addr)
	if len(targets) == 0 {
		return fmt.Errorf("ctrl: no active member to migrate %s's sessions to", addr)
	}
	t := time.NewTicker(c.opts.DrainPoll)
	defer t.Stop()
	for {
		if err := c.postDrain(ctx, m.Backend.Admin, targets); err != nil {
			return fmt.Errorf("ctrl: draining %s: %w", addr, err)
		}
		n, err := c.sessionsActive(ctx, m.Backend.Admin)
		if err != nil {
			return fmt.Errorf("ctrl: draining %s: %w", addr, err)
		}
		if n == 0 {
			c.setState(addr, Retired)
			c.opts.Logf("ctrl: backend %s drained and retired", addr)
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("ctrl: draining %s: %d sessions still live: %w", addr, n, ctx.Err())
		case <-t.C:
		}
	}
}

// Rebalance measures the fleet's load spread and, when the gap between
// the hottest and coldest Active member exceeds RebalanceThreshold,
// orders the hottest to migrate half the gap to the coldest. One call
// makes one correction; a caller wanting continuous balance invokes it
// periodically. Returns the number of migrations ordered (0 = balanced
// or not enough members).
func (c *Coordinator) Rebalance(ctx context.Context) (int, error) {
	type loaded struct {
		m    *Member
		load int64
	}
	var fleet []loaded
	// Snapshot the Active members under the lock — State is mutated by
	// concurrent Admit/Drain. A member that starts draining after the
	// snapshot is at worst probed or ordered to migrate once more; both
	// are idempotent on the admin side.
	c.mu.Lock()
	var members []*Member
	for _, m := range c.members {
		if m.State == Active && m.Backend.Admin != "" {
			members = append(members, m)
		}
	}
	c.mu.Unlock()
	for _, m := range members {
		load, err := c.fetchLoad(ctx, m.Backend.Admin)
		if err != nil {
			c.opts.Logf("ctrl: rebalance: skipping %s: %v", m.Backend.Addr, err)
			continue
		}
		fleet = append(fleet, loaded{m, load})
	}
	if len(fleet) < 2 {
		return 0, nil
	}
	sort.Slice(fleet, func(i, j int) bool { return fleet[i].load < fleet[j].load })
	coldest, hottest := fleet[0], fleet[len(fleet)-1]
	gap := hottest.load - coldest.load
	if gap < c.opts.RebalanceThreshold {
		return 0, nil
	}
	count := int(gap / 2)
	if count < 1 {
		count = 1
	}
	ordered, err := c.postMigrate(ctx, hottest.m.Backend.Admin, []string{targetSpec(coldest.m.Backend)}, count)
	if err != nil {
		return 0, fmt.Errorf("ctrl: rebalancing %s: %w", hottest.m.Backend.Addr, err)
	}
	if ordered > 0 {
		c.opts.Logf("ctrl: ordered %d migrations %s -> %s (load gap %d)",
			ordered, hottest.m.Backend.Addr, coldest.m.Backend.Addr, gap)
	}
	return ordered, nil
}

// AcquireSessions reserves n session slots for a tenant, failing fast
// when the tenant's quota would be exceeded (no quota = always
// granted). Pair with ReleaseSessions.
func (c *Coordinator) AcquireSessions(tenant string, n int) error {
	if c.opts.MaxSessionsPerTenant <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tenants[tenant]+n > c.opts.MaxSessionsPerTenant {
		return fmt.Errorf("ctrl: tenant %q over session quota: %d live + %d requested > %d",
			tenant, c.tenants[tenant], n, c.opts.MaxSessionsPerTenant)
	}
	c.tenants[tenant] += n
	return nil
}

// ReleaseSessions returns a tenant's session slots.
func (c *Coordinator) ReleaseSessions(tenant string, n int) {
	if c.opts.MaxSessionsPerTenant <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tenants[tenant] -= n; c.tenants[tenant] <= 0 {
		delete(c.tenants, tenant)
	}
}

// TenantSessions reports a tenant's live session count.
func (c *Coordinator) TenantSessions(tenant string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tenants[tenant]
}

// ProfileThreads is the pool's ProfileThreads behind the tenant quota:
// one session slot per stream for the duration of the run.
func (c *Coordinator) ProfileThreads(ctx context.Context, tenant string, streams []trace.Reader, cfg core.Config) (*core.MultiResult, error) {
	if err := c.AcquireSessions(tenant, len(streams)); err != nil {
		return nil, err
	}
	defer c.ReleaseSessions(tenant, len(streams))
	return c.pool.ProfileThreads(ctx, streams, cfg)
}

func (c *Coordinator) findMember(addr string) *Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.Backend.Addr == addr || (m.Backend.Admin != "" && m.Backend.Admin == addr) {
			return m
		}
	}
	return nil
}

func (c *Coordinator) setState(addr string, st MemberState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		if m.Backend.Addr == addr || (m.Backend.Admin != "" && m.Backend.Admin == addr) {
			m.State = st
			return
		}
	}
}

// postDrain POSTs /drain on a backend's admin address.
func (c *Coordinator) postDrain(ctx context.Context, admin string, targets []string) error {
	_, err := postJSON[drainReply](ctx, c.httpc, admin, "/drain", map[string]any{"to": targets})
	return err
}

// postMigrate POSTs /migrate and returns the number of migrations the
// backend ordered.
func (c *Coordinator) postMigrate(ctx context.Context, admin string, targets []string, count int) (int, error) {
	rep, err := postJSON[migrateReply](ctx, c.httpc, admin, "/migrate", map[string]any{"to": targets, "count": count})
	if err != nil {
		return 0, err
	}
	return rep.Ordered, nil
}

type drainReply struct {
	Draining bool `json:"draining"`
	Sessions int  `json:"sessions"`
	Ordered  int  `json:"ordered"`
}

type migrateReply struct {
	Ordered int `json:"ordered"`
}

// sessionsActive reads a backend's live session count from /metrics.
func (c *Coordinator) sessionsActive(ctx context.Context, admin string) (int64, error) {
	m, err := c.fetchMetrics(ctx, admin)
	if err != nil {
		return 0, err
	}
	return m.SessionsActive, nil
}

// fetchLoad reads a backend's routing load gauge from /metrics.
func (c *Coordinator) fetchLoad(ctx context.Context, admin string) (int64, error) {
	m, err := c.fetchMetrics(ctx, admin)
	if err != nil {
		return 0, err
	}
	return m.Load, nil
}

// adminMetrics is the subset of the rdxd /metrics payload the
// coordinator routes on.
type adminMetrics struct {
	Load           int64 `json:"load"`
	SessionsActive int64 `json:"sessions_active"`
}

func (c *Coordinator) fetchMetrics(ctx context.Context, admin string) (*adminMetrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+admin+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("GET %s/metrics: %s", admin, resp.Status)
	}
	var m adminMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// postJSON POSTs a JSON body to an admin endpoint and decodes the
// JSON reply.
func postJSON[T any](ctx context.Context, httpc *http.Client, admin, path string, body any) (*T, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+admin+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	reply, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("POST %s%s: %s: %s", admin, path, resp.Status, bytes.TrimSpace(reply))
	}
	var out T
	if err := json.Unmarshal(reply, &out); err != nil {
		return nil, fmt.Errorf("POST %s%s: decoding reply: %w", admin, path, err)
	}
	return &out, nil
}

// DrainBackend is the standalone drain verb for cmd/rdx: order admin's
// backend to drain to the targets and wait until it reports zero live
// sessions. Used without a coordinator or pool — pure admin RPCs.
func DrainBackend(ctx context.Context, admin string, targets []string, poll time.Duration) error {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	httpc := &http.Client{Timeout: 5 * time.Second}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		if _, err := postJSON[drainReply](ctx, httpc, admin, "/drain", map[string]any{"to": targets}); err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+admin+"/metrics", nil)
		if err != nil {
			return err
		}
		resp, err := httpc.Do(req)
		if err != nil {
			return err
		}
		var m adminMetrics
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if m.SessionsActive == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("drain %s: %d sessions still live: %w", admin, m.SessionsActive, ctx.Err())
		case <-t.C:
		}
	}
}
