package ctrl_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/ctrl"
	"repro/internal/faultnet"
	"repro/internal/mem"
	"repro/internal/pool"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

func quietLogf(string, ...any) {}

func testConfig(period uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = period
	return cfg
}

// fastRetry keeps within-backend retries snappy so failures are given
// up on (and failed over from) in test time.
func fastRetry(seed uint64) wire.RetryPolicy {
	return wire.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		OpTimeout:   10 * time.Second,
		SyncEvery:   8,
		Seed:        seed,
	}
}

// startBackend spins up one rdxd with an admin listener.
func startBackend(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.Logf = quietLogf
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Close() })
	return s
}

func backendsOf(srvs ...*server.Server) []pool.Backend {
	bs := make([]pool.Backend, len(srvs))
	for i, s := range srvs {
		bs[i] = pool.Backend{Addr: s.Addr(), Admin: s.AdminAddr()}
	}
	return bs
}

// collectStreams materializes n deterministic, distinct access streams
// twice: one set for the fleet, one for the local ground truth.
func collectStreams(t *testing.T, n int, perStream uint64) (a, b []trace.Reader) {
	t.Helper()
	for i := 0; i < n; i++ {
		accs, err := trace.Collect(trace.ZipfAccess(uint64(1000+i), mem.Addr(uint64(i)<<32), 4096, 1.0, perStream))
		if err != nil {
			t.Fatal(err)
		}
		a = append(a, trace.FromSlice(accs))
		b = append(b, trace.FromSlice(accs))
	}
	return a, b
}

// wireJSON fingerprints one thread result bit-exactly (StateBytes
// zeroed: it reports allocated capacity, not profile content).
func wireJSON(t *testing.T, r *core.Result) string {
	t.Helper()
	w := wire.FromCore(r, true)
	w.StateBytes = 0
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sameMulti asserts two MultiResults are bit-identical.
func sameMulti(t *testing.T, got, want *core.MultiResult) {
	t.Helper()
	if len(got.Threads) != len(want.Threads) {
		t.Fatalf("thread counts differ: %d vs %d", len(got.Threads), len(want.Threads))
	}
	for i := range want.Threads {
		if g, w := wireJSON(t, got.Threads[i]), wireJSON(t, want.Threads[i]); g != w {
			t.Errorf("thread %d differs:\n got %s\nwant %s", i, g, w)
		}
	}
	type merged struct {
		RD, RT, Attr     string
		Acc, Samp, Pairs uint64
	}
	fp := func(m *core.MultiResult) merged {
		rd, _ := json.Marshal(m.ReuseDistance.Snapshot())
		rt, _ := json.Marshal(m.ReuseTime.Snapshot())
		at, _ := json.Marshal(m.Attribution)
		return merged{string(rd), string(rt), string(at), m.Accesses, m.Samples, m.ReusePairs}
	}
	if g, w := fp(got), fp(want); g != w {
		t.Errorf("merged views differ:\n got %+v\nwant %+v", g, w)
	}
}

// TestTenantQuota: acquisitions past the per-tenant cap fail fast and
// releases free the slots; tenants are isolated from each other.
func TestTenantQuota(t *testing.T) {
	c := ctrl.New(nil, nil, ctrl.Options{MaxSessionsPerTenant: 4, Logf: quietLogf})
	if err := c.AcquireSessions("a", 3); err != nil {
		t.Fatal(err)
	}
	if err := c.AcquireSessions("a", 2); err == nil {
		t.Fatal("acquiring past the quota succeeded")
	} else if !strings.Contains(err.Error(), "quota") {
		t.Fatalf("quota error does not say so: %v", err)
	}
	if err := c.AcquireSessions("b", 4); err != nil {
		t.Fatalf("tenant b blocked by tenant a's sessions: %v", err)
	}
	c.ReleaseSessions("a", 2)
	if err := c.AcquireSessions("a", 3); err != nil {
		t.Fatalf("released slots not reusable: %v", err)
	}
	if n := c.TenantSessions("a"); n != 4 {
		t.Fatalf("tenant a at %d sessions, want 4", n)
	}
	c.ReleaseSessions("a", 4)
	c.ReleaseSessions("b", 4)
	if n := c.TenantSessions("b"); n != 0 {
		t.Fatalf("tenant b at %d sessions after release, want 0", n)
	}
}

// TestQuotaGatesProfileThreads: a run wider than the tenant's quota is
// refused before any stream is dispatched.
func TestQuotaGatesProfileThreads(t *testing.T) {
	s := startBackend(t, server.Config{})
	p, err := pool.New(backendsOf(s), pool.Options{Retry: fastRetry(1), Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := ctrl.New(p, backendsOf(s), ctrl.Options{MaxSessionsPerTenant: 2, Logf: quietLogf})

	streams, _ := collectStreams(t, 3, 1000)
	if _, err := c.ProfileThreads(context.Background(), "small", streams, testConfig(256)); err == nil {
		t.Fatal("3-stream run passed a 2-session quota")
	}
	ok, _ := collectStreams(t, 2, 1000)
	if _, err := c.ProfileThreads(context.Background(), "small", ok, testConfig(256)); err != nil {
		t.Fatalf("within-quota run failed: %v", err)
	}
	if n := c.TenantSessions("small"); n != 0 {
		t.Fatalf("quota not released after the run: %d live", n)
	}
}

// TestDrainEmptyBackendRetires: draining a backend with no sessions
// retires it immediately and takes it out of dispatch.
func TestDrainEmptyBackendRetires(t *testing.T) {
	s1 := startBackend(t, server.Config{})
	s2 := startBackend(t, server.Config{})
	p, err := pool.New(backendsOf(s1, s2), pool.Options{Retry: fastRetry(1), Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := ctrl.New(p, backendsOf(s1, s2), ctrl.Options{DrainPoll: 20 * time.Millisecond, Logf: quietLogf})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Drain(ctx, s1.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, m := range c.Status() {
		want := ctrl.Active
		if m.Backend.Addr == s1.Addr() {
			want = ctrl.Retired
		}
		if m.State != want {
			t.Errorf("member %s in state %s, want %s", m.Backend.Addr, m.State, want)
		}
	}
	// The retired backend must be out of the dispatch set at once, and
	// a run must complete on the survivor alone.
	if p.Healthy() != 1 {
		t.Errorf("pool still dispatches to %d backends, want 1", p.Healthy())
	}
	streams, local := collectStreams(t, 4, 5000)
	cfg := testConfig(256)
	want, err := core.ProfileThreads(local, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.ProfileThreads(context.Background(), streams, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sameMulti(t, got, want)
	if st := p.Stats(); st.PerBackend[0] != 0 {
		t.Errorf("drained backend still received sessions: %+v", st)
	}
}

// TestControlPlaneE2EChaos is the PR's acceptance test: 64 streams over
// a 3-backend fleet with a randomized control schedule — a replacement
// backend admitted mid-run, a hot backend drained live (checkpoint
// handover under a fault-injecting transport), rebalance orders along
// the way, and one migration *destination* killed outright mid-drain.
// The MultiResult must be bit-identical to local ProfileThreads, and
// the drained backend must finish with zero live sessions.
func TestControlPlaneE2EChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("control-plane chaos E2E is not short")
	}
	cfg := testConfig(512)
	const streams, perStream = 64, 24_000
	remote, local := collectStreams(t, streams, perStream)
	want, err := core.ProfileThreads(local, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}

	// Handoffs travel through their own faulty transport: migrations
	// must survive chaos on the backend-to-backend path too.
	handoffFaults := faultnet.NewDialer(faultnet.Options{
		Seed:          1234,
		CorruptProb:   0.02,
		PartialWrites: true,
	}, nil)
	mk := func() *server.Server {
		return startBackend(t, server.Config{
			CheckpointEvery: 4,
			StepDelay:       200 * time.Microsecond, // slow the engine so the schedule lands mid-run
			RetryAfterHint:  5 * time.Millisecond,
			HandoffTimeout:  2 * time.Second,
			HandoffDial:     handoffFaults.DialContext,
		})
	}
	s1, s2, s3 := mk(), mk(), mk()
	doomed := s2 // a migration destination, killed mid-drain

	clientFaults := faultnet.NewDialer(faultnet.Options{
		Seed:          99,
		DropAfterMin:  150_000,
		DropAfterMax:  400_000,
		CorruptProb:   0.01,
		PartialWrites: true,
	}, nil)
	p, err := pool.New(backendsOf(s1, s2, s3), pool.Options{
		MaxInFlight: 8,
		HealthEvery: 50 * time.Millisecond,
		DownAfter:   1, // a killed backend must leave the set fast
		Retry:       fastRetry(7),
		BatchSize:   2048,
		Dial:        clientFaults.DialContext,
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	coord := ctrl.New(p, backendsOf(s1, s2, s3), ctrl.Options{
		DrainPoll:            50 * time.Millisecond,
		MaxSessionsPerTenant: streams, // exactly enough: the quota path is exercised, not slack
		Logf:                 quietLogf,
	})

	type outcome struct {
		res *core.MultiResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := coord.ProfileThreads(context.Background(), "chaos", remote, cfg)
		done <- outcome{res, err}
	}()

	// The control schedule, raced against the run. Waits are jittered
	// from a seeded source so the schedule is randomized but repeatable.
	rng := rand.New(rand.NewSource(4242))
	jitter := func(base time.Duration) {
		time.Sleep(base + time.Duration(rng.Int63n(int64(base))))
	}
	ctlErr := make(chan error, 1)
	go func() {
		// Wait for the fleet to be demonstrably mid-run.
		deadline := time.Now().Add(20 * time.Second)
		for s1.MetricsSnapshot().AccessesTotal == 0 || s2.MetricsSnapshot().AccessesTotal == 0 {
			if time.Now().After(deadline) {
				ctlErr <- context.DeadlineExceeded
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		// Admit the replacement backend, then start draining s1 into the
		// rest of the fleet (s2, s3, s4).
		s4 := mk()
		coord.Admit(pool.Backend{Addr: s4.Addr(), Admin: s4.AdminAddr()})
		jitter(10 * time.Millisecond)

		drainDone := make(chan error, 1)
		go func() {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			drainDone <- coord.Drain(ctx, s1.Addr())
		}()
		// Mid-drain, kill one of the migration destinations outright:
		// sessions handed to it must recover through failover, and the
		// drain must still complete onto the survivors.
		jitter(20 * time.Millisecond)
		doomed.Close()
		// Rebalance orders race the drain and the kill.
		for i := 0; i < 3; i++ {
			jitter(30 * time.Millisecond)
			coord.Rebalance(context.Background())
		}
		ctlErr <- <-drainDone
	}()

	out := <-done
	if err := <-ctlErr; err != nil {
		t.Fatalf("control schedule failed: %v (pool stats %+v)", err, p.Stats())
	}
	if out.err != nil {
		t.Fatalf("profile under chaos failed: %v (pool stats %+v)", out.err, p.Stats())
	}
	sameMulti(t, out.res, want)

	// The drained backend exits empty, and its member record says so.
	if n := s1.MetricsSnapshot().SessionsActive; n != 0 {
		t.Errorf("drained backend still holds %d live sessions", n)
	}
	for _, m := range coord.Status() {
		if m.Backend.Addr == s1.Addr() && m.State != ctrl.Retired {
			t.Errorf("drained member in state %s, want retired", m.State)
		}
	}
	if n := coord.TenantSessions("chaos"); n != 0 {
		t.Errorf("tenant quota not drained after the run: %d live", n)
	}
	m1 := s1.MetricsSnapshot()
	t.Logf("drained backend: handoffs_out=%d handoff_failures=%d moved_resumes=%d; pool stats %+v",
		m1.HandoffsOut, m1.HandoffFailures, m1.MovedResumes, p.Stats())
}
