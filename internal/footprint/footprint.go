// Package footprint implements the locality theory RDX uses to convert
// measured reuse *times* into reuse *distances*.
//
// A watchpoint gives RDX the reuse time T of a sampled block — the
// number of accesses executed between use and reuse — but the metric of
// interest is the reuse distance: the number of *distinct* blocks touched
// in that window. The bridge is the average footprint function fp(w),
// the expected number of distinct blocks touched in a window of w
// consecutive accesses (Xiang et al.'s footprint theory): the expected
// reuse distance of a reuse with time T is fp(T) computed over the
// window between the two accesses.
//
// fp itself is estimated from the same reuse-time samples, using the
// window-counting identity
//
//	fp(w) ≈ E over accesses t of min(gap_t, w)
//
// where gap_t is the backward reuse time of access t (∞ for a first
// touch): an access is the first occurrence of its block in exactly
// min(gap_t, w) of the w-windows that contain it, so averaging over
// window positions and over accesses coincide for stationary streams
// (trace-boundary effects are negligible for w ≪ n). With uniform
// access sampling the expectation is estimated directly from the
// sampled reuse times.
package footprint

import (
	"math"
	"sort"

	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Estimator evaluates the average footprint function fp(w) from a set of
// sampled backward reuse times. It is built once from the samples and
// evaluated in O(log s).
type Estimator struct {
	times  []uint64  // sorted finite sampled reuse times
	prefix []float64 // prefix[i] = weighted sum of times[:i]
	cold   float64   // weight of cold samples (gap = ∞)
	weight float64   // weight each sample represents (sampling period)
	n      float64   // total accesses in the run

	// weights/wprefix support the weighted (histogram-derived)
	// construction; when nil every sample has weight 1.
	weights []float64
	wprefix []float64
}

// NewEstimator builds a footprint estimator.
//
//	times:  the finite sampled reuse times (one per reuse pair observed);
//	cold:   how many samples were never reused (infinite gap);
//	weight: the number of accesses each sample represents (the sampling
//	        period; use 1 for exhaustive measurement);
//	n:      the total number of accesses in the run.
func NewEstimator(times []uint64, cold uint64, weight float64, n uint64) *Estimator {
	sorted := append([]uint64(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	prefix := make([]float64, len(sorted)+1)
	for i, t := range sorted {
		prefix[i+1] = prefix[i] + float64(t)
	}
	return &Estimator{
		times:  sorted,
		prefix: prefix,
		cold:   float64(cold),
		weight: weight,
		n:      float64(n),
	}
}

// NewWeightedEstimator builds an estimator from per-sample weights, for
// callers whose samples are not equally representative (e.g. RDX's
// survival-corrected observations). times[i] carries weights[i]; cold is
// the total weight of never-reused samples; n is the run length in
// accesses.
func NewWeightedEstimator(times []uint64, weights []float64, cold float64, n uint64) *Estimator {
	if len(times) != len(weights) {
		panic("footprint: times/weights length mismatch")
	}
	idx := make([]int, len(times))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return times[idx[i]] < times[idx[j]] })
	e := &Estimator{weight: 1, n: float64(n), cold: cold}
	e.times = make([]uint64, len(times))
	e.prefix = make([]float64, len(times)+1)
	e.weights = make([]float64, len(times))
	e.wprefix = make([]float64, len(times)+1)
	for i, k := range idx {
		e.times[i] = times[k]
		e.weights[i] = weights[k]
		e.prefix[i+1] = e.prefix[i] + float64(times[k])*weights[k]
		e.wprefix[i+1] = e.wprefix[i] + weights[k]
	}
	return e
}

// NewEstimatorFromHistogram builds an estimator from a reuse-time
// histogram (using each bucket's geometric midpoint), for callers that
// retained only the histogram. hist weights must already incorporate the
// sampling period; pass weight 1.
func NewEstimatorFromHistogram(hist *histogram.Histogram, n uint64) *Estimator {
	var times []uint64
	var prefixWeights []float64
	for b := 0; b < hist.NumBuckets(); b++ {
		w := hist.Weight(b)
		if w <= 0 {
			continue
		}
		mid := uint64(math.Round(math.Sqrt(float64(histogram.BucketLow(b)) * (float64(histogram.BucketHigh(b)) + 1))))
		if b == 0 {
			mid = 0
		}
		times = append(times, mid)
		prefixWeights = append(prefixWeights, w)
	}
	// Weighted variant: expand via parallel weights array.
	e := &Estimator{weight: 1, n: float64(n), cold: hist.Cold()}
	idx := make([]int, len(times))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return times[idx[i]] < times[idx[j]] })
	e.times = make([]uint64, len(times))
	e.prefix = make([]float64, len(times)+1)
	e.weights = make([]float64, len(times))
	e.wprefix = make([]float64, len(times)+1)
	for i, k := range idx {
		e.times[i] = times[k]
		e.weights[i] = prefixWeights[k]
		e.prefix[i+1] = e.prefix[i] + float64(times[k])*prefixWeights[k]
		e.wprefix[i+1] = e.wprefix[i] + prefixWeights[k]
	}
	return e
}

func (e *Estimator) countAndSumBelow(w uint64) (count, sum float64) {
	i := sort.Search(len(e.times), func(k int) bool { return e.times[k] > w })
	if e.weights == nil {
		return float64(i), e.prefix[i]
	}
	return e.wprefix[i], e.prefix[i]
}

func (e *Estimator) totalSamples() float64 {
	if e.weights == nil {
		return float64(len(e.times)) + e.cold
	}
	return e.wprefix[len(e.times)] + e.cold
}

// Footprint estimates fp(w), the expected number of distinct blocks in a
// window of w consecutive accesses.
func (e *Estimator) Footprint(w uint64) float64 {
	if w == 0 {
		return 0
	}
	total := e.totalSamples()
	if total == 0 {
		return 0
	}
	// fp(w) = E[min(gap, w)] over accesses; cold samples contribute w.
	//
	// This per-access expectation equals the average window footprint for
	// stationary access processes: an access is the first occurrence of
	// its block in exactly min(gap, w) of the windows containing it. For
	// i.i.d. uniform accesses over M blocks (geometric gaps) it
	// reproduces the classical M·(1−(1−1/M)^w) exactly, and for a cyclic
	// sweep of K blocks it gives min(w, K) exactly.
	cntBelow, sumBelow := e.countAndSumBelow(w)
	above := total - cntBelow
	fp := (sumBelow + above*float64(w)) / total
	if fp < 1 {
		// Any non-empty window holds at least one block.
		fp = 1
	}
	return fp
}

// TailFraction returns the fraction of sample weight at reuse times
// strictly greater than w, counting cold (never reused) samples as
// greater than every w. Because fp is piecewise linear with slope
// TailFraction(w) at window length w (each sample with gap > w
// contributes a full extra distinct block when the window grows by one
// access), this is the derivative of the average footprint function —
// the quantity the higher-order theory of locality equates with the
// miss ratio of the cache size c = fp(w).
func (e *Estimator) TailFraction(w uint64) float64 {
	total := e.totalSamples()
	if total == 0 {
		return 0
	}
	cntBelow, _ := e.countAndSumBelow(w)
	return (total - cntBelow) / total
}

// InverseFootprint returns the smallest window length w with fp(w) >= c,
// or (0, false) when no window reaches c (the program's footprint
// saturates below c). It is the size-to-window bridge of the footprint
// theory: the window whose expected distinct-block count fills a cache
// of c blocks.
func (e *Estimator) InverseFootprint(c float64) (uint64, bool) {
	if c <= 1 {
		return 1, true
	}
	// fp is non-decreasing; exponential search for an upper bracket, then
	// binary search. fp is bounded by max finite time + cold mass share,
	// so cap the search to avoid spinning on unreachable targets.
	lo, hi := uint64(1), uint64(2)
	const maxW = uint64(1) << 62
	for e.Footprint(hi) < c {
		if hi >= maxW {
			return 0, false
		}
		lo = hi
		hi *= 2
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if e.Footprint(mid) >= c {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// Distance converts a reuse time T into an expected reuse distance: the
// distinct blocks in the (T−1)-access window strictly between use and
// reuse. A reuse time of 1 (back-to-back accesses) has distance 0.
func (e *Estimator) Distance(t uint64) uint64 {
	if t <= 1 {
		return 0
	}
	fp := e.Footprint(t - 1)
	if fp < 0 {
		return 0
	}
	return uint64(math.Round(fp))
}

// ExactAverageFootprint computes the true average footprint fp(w) of a
// trace by sliding a w-access window across it (O(n) time, O(footprint)
// space), for validating the estimator. The trace must have at least w
// accesses.
func ExactAverageFootprint(accs []mem.Access, g mem.Granularity, w int) (float64, error) {
	n := len(accs)
	if w <= 0 || w > n {
		return 0, trace.ErrShortTrace
	}
	counts := make(map[mem.Addr]int, 1024)
	distinct := 0
	var sum uint64
	for i, a := range accs {
		b := g.Block(a.Addr)
		if counts[b] == 0 {
			distinct++
		}
		counts[b]++
		if i >= w {
			old := g.Block(accs[i-w].Addr)
			counts[old]--
			if counts[old] == 0 {
				distinct--
				delete(counts, old)
			}
		}
		if i >= w-1 {
			sum += uint64(distinct)
		}
	}
	return float64(sum) / float64(n-w+1), nil
}
