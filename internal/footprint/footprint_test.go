package footprint

import (
	"math"
	"testing"

	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// backwardGaps computes per-access backward reuse times of a trace (the
// exhaustive version of what RDX samples), with cold accesses counted
// separately.
func backwardGaps(accs []mem.Access, g mem.Granularity) (times []uint64, cold uint64) {
	last := map[mem.Addr]int{}
	for i, a := range accs {
		b := g.Block(a.Addr)
		if prev, ok := last[b]; ok {
			times = append(times, uint64(i-prev))
		} else {
			cold++
		}
		last[b] = i
	}
	return times, cold
}

func collect(t *testing.T, r trace.Reader) []mem.Access {
	t.Helper()
	accs, err := trace.Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

func TestExactAverageFootprintCyclic(t *testing.T) {
	// Cyclic over K blocks: any window of w <= K accesses holds exactly
	// w distinct blocks.
	const k, n = 16, 1600
	accs := collect(t, trace.Cyclic(0, k, n))
	for _, w := range []int{1, 2, 8, 15, 16} {
		fp, err := ExactAverageFootprint(accs, mem.WordGranularity, w)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fp-float64(w)) > 1e-9 {
			t.Errorf("cyclic fp(%d) = %v, want %v", w, fp, w)
		}
	}
	// Windows longer than the working set saturate at K.
	fp, err := ExactAverageFootprint(accs, mem.WordGranularity, 10*k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fp-k) > 1e-9 {
		t.Errorf("cyclic fp(%d) = %v, want %v", 10*k, fp, k)
	}
}

func TestExactAverageFootprintErrors(t *testing.T) {
	accs := collect(t, trace.Cyclic(0, 4, 10))
	if _, err := ExactAverageFootprint(accs, mem.WordGranularity, 0); err == nil {
		t.Error("w=0 accepted")
	}
	if _, err := ExactAverageFootprint(accs, mem.WordGranularity, 11); err == nil {
		t.Error("w > n accepted")
	}
}

func TestEstimatorMatchesExactOnCyclic(t *testing.T) {
	const k, n = 64, 64000
	accs := collect(t, trace.Cyclic(0, k, n))
	times, cold := backwardGaps(accs, mem.WordGranularity)
	est := NewEstimator(times, cold, 1, uint64(len(accs)))
	for _, w := range []uint64{1, 4, 16, 63, 64, 256} {
		exact, err := ExactAverageFootprint(accs, mem.WordGranularity, int(w))
		if err != nil {
			t.Fatal(err)
		}
		got := est.Footprint(w)
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("fp(%d): estimator %v vs exact %v (rel err %.3f)", w, got, exact, rel)
		}
	}
}

func TestEstimatorMatchesExactOnRandom(t *testing.T) {
	const blocks, n = 256, 200000
	accs := collect(t, trace.RandomUniform(7, 0, blocks, n))
	times, cold := backwardGaps(accs, mem.WordGranularity)
	est := NewEstimator(times, cold, 1, uint64(len(accs)))
	for _, w := range []uint64{1, 10, 100, 1000, 4000} {
		exact, err := ExactAverageFootprint(accs, mem.WordGranularity, int(w))
		if err != nil {
			t.Fatal(err)
		}
		got := est.Footprint(w)
		if rel := math.Abs(got-exact) / exact; rel > 0.05 {
			t.Errorf("fp(%d): estimator %v vs exact %v (rel err %.3f)", w, got, exact, rel)
		}
	}
}

func TestEstimatorMatchesExactOnZipf(t *testing.T) {
	const blocks, n = 512, 200000
	accs := collect(t, trace.ZipfAccess(3, 0, blocks, 1.0, n))
	times, cold := backwardGaps(accs, mem.WordGranularity)
	est := NewEstimator(times, cold, 1, uint64(len(accs)))
	for _, w := range []uint64{10, 100, 1000} {
		exact, err := ExactAverageFootprint(accs, mem.WordGranularity, int(w))
		if err != nil {
			t.Fatal(err)
		}
		got := est.Footprint(w)
		if rel := math.Abs(got-exact) / exact; rel > 0.08 {
			t.Errorf("fp(%d): estimator %v vs exact %v (rel err %.3f)", w, got, exact, rel)
		}
	}
}

func TestFootprintMonotone(t *testing.T) {
	const blocks, n = 128, 50000
	accs := collect(t, trace.ZipfAccess(11, 0, blocks, 0.9, n))
	times, cold := backwardGaps(accs, mem.WordGranularity)
	est := NewEstimator(times, cold, 1, uint64(len(accs)))
	prev := 0.0
	for w := uint64(1); w <= 4096; w *= 2 {
		fp := est.Footprint(w)
		if fp+1e-9 < prev {
			t.Errorf("footprint not monotone: fp(%d)=%v < fp(%d)=%v", w, fp, w/2, prev)
		}
		prev = fp
	}
}

func TestFootprintEdgeCases(t *testing.T) {
	est := NewEstimator(nil, 0, 1, 0)
	if got := est.Footprint(10); got != 0 {
		t.Errorf("empty estimator fp = %v", got)
	}
	if got := est.Footprint(0); got != 0 {
		t.Errorf("fp(0) = %v", got)
	}
	// All-cold samples: fp(w) ≈ w (every access a new block).
	est = NewEstimator(nil, 100, 1, 10000)
	got := est.Footprint(50)
	if math.Abs(got-50) > 1 {
		t.Errorf("all-cold fp(50) = %v, want ~50", got)
	}
}

func TestDistanceConversion(t *testing.T) {
	// Cyclic over K: reuse time K should convert to distance ~K-1.
	const k, n = 32, 32000
	accs := collect(t, trace.Cyclic(0, k, n))
	times, cold := backwardGaps(accs, mem.WordGranularity)
	est := NewEstimator(times, cold, 1, uint64(len(accs)))
	if got := est.Distance(k); got < k-2 || got > k {
		t.Errorf("Distance(%d) = %d, want ~%d", k, got, k-1)
	}
	if got := est.Distance(0); got != 0 {
		t.Errorf("Distance(0) = %d", got)
	}
	if got := est.Distance(1); got != 0 {
		t.Errorf("Distance(1) = %d, want 0 (back-to-back reuse)", got)
	}
}

func TestEstimatorFromHistogramAgrees(t *testing.T) {
	const blocks, n = 256, 100000
	accs := collect(t, trace.RandomUniform(5, 0, blocks, n))
	times, cold := backwardGaps(accs, mem.WordGranularity)

	hist := histogram.New()
	for _, tm := range times {
		hist.Add(tm, 1)
	}
	for i := uint64(0); i < cold; i++ {
		hist.Add(histogram.Infinite, 1)
	}

	exactEst := NewEstimator(times, cold, 1, uint64(len(accs)))
	histEst := NewEstimatorFromHistogram(hist, uint64(len(accs)))
	for _, w := range []uint64{10, 100, 1000} {
		a, b := exactEst.Footprint(w), histEst.Footprint(w)
		if rel := math.Abs(a-b) / a; rel > 0.25 {
			t.Errorf("fp(%d): sample-based %v vs histogram-based %v (rel err %.3f)", w, a, b, rel)
		}
	}
}

func TestWeightedEstimatorMatchesUniformWeights(t *testing.T) {
	const blocks, n = 256, 100000
	accs := collect(t, trace.RandomUniform(9, 0, blocks, n))
	times, cold := backwardGaps(accs, mem.WordGranularity)
	uniform := NewEstimator(times, cold, 1, uint64(len(accs)))
	w := make([]float64, len(times))
	for i := range w {
		w[i] = 1
	}
	weighted := NewWeightedEstimator(times, w, float64(cold), uint64(len(accs)))
	for _, win := range []uint64{1, 10, 100, 1000} {
		a, b := uniform.Footprint(win), weighted.Footprint(win)
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("fp(%d): uniform %v vs weighted %v", win, a, b)
		}
	}
}

func TestWeightedEstimatorRespectsWeights(t *testing.T) {
	// Two gap populations; weighting one population up must pull the
	// footprint toward it.
	times := []uint64{10, 10, 10, 1000, 1000, 1000}
	flat := NewWeightedEstimator(times, []float64{1, 1, 1, 1, 1, 1}, 0, 100000)
	shortHeavy := NewWeightedEstimator(times, []float64{10, 10, 10, 1, 1, 1}, 0, 100000)
	// fp(500): flat = (3*10 + 3*500)/6 = 255; short-heavy = (30*10+3*500)/33 ≈ 54.5
	if f := flat.Footprint(500); math.Abs(f-255) > 1e-9 {
		t.Errorf("flat fp(500) = %v, want 255", f)
	}
	if f := shortHeavy.Footprint(500); math.Abs(f-1800.0/33.0) > 1e-9 {
		t.Errorf("short-heavy fp(500) = %v, want %v", f, 1800.0/33.0)
	}
}

func TestWeightedEstimatorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	NewWeightedEstimator([]uint64{1, 2}, []float64{1}, 0, 10)
}
