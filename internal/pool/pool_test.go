package pool_test

import (
	"context"
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/faultnet"
	"repro/internal/mem"
	"repro/internal/pool"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

func quietLogf(string, ...any) {}

func testConfig(period uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = period
	return cfg
}

// fastRetry keeps within-backend retries snappy so a dead backend is
// given up on (and failed over from) in test time.
func fastRetry(seed uint64) wire.RetryPolicy {
	return wire.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		OpTimeout:   10 * time.Second,
		SyncEvery:   8,
		Seed:        seed,
	}
}

// startBackend spins up one rdxd with an admin listener (so the pool's
// health probes and load refreshes run against the real endpoints).
func startBackend(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.AdminAddr = "127.0.0.1:0"
	cfg.Logf = quietLogf
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Close() })
	return s
}

func backendsOf(srvs ...*server.Server) []pool.Backend {
	bs := make([]pool.Backend, len(srvs))
	for i, s := range srvs {
		bs[i] = pool.Backend{Addr: s.Addr(), Admin: s.AdminAddr()}
	}
	return bs
}

// collectStreams materializes n deterministic, distinct access streams
// and returns two independent reader sets over the same accesses (the
// pool consumes one; the local ground truth the other).
func collectStreams(t *testing.T, n int, perStream uint64) (a, b []trace.Reader) {
	t.Helper()
	for i := 0; i < n; i++ {
		accs, err := trace.Collect(trace.ZipfAccess(uint64(1000+i), mem.Addr(uint64(i)<<32), 4096, 1.0, perStream))
		if err != nil {
			t.Fatal(err)
		}
		a = append(a, trace.FromSlice(accs))
		b = append(b, trace.FromSlice(accs))
	}
	return a, b
}

// wireJSON is the bit-identity fingerprint of one thread result: its
// wire form (the exact payload a backend ships), with StateBytes zeroed
// — that field reports allocated capacity, which depends on append
// growth history (batch size), not on the profile.
func wireJSON(t *testing.T, r *core.Result) string {
	t.Helper()
	w := wire.FromCore(r, true)
	w.StateBytes = 0
	b, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sameMulti asserts two MultiResults are bit-identical: every thread's
// wire fingerprint, the merged histograms and attribution, and the
// merged counters.
func sameMulti(t *testing.T, got, want *core.MultiResult) {
	t.Helper()
	if len(got.Threads) != len(want.Threads) {
		t.Fatalf("thread counts differ: %d vs %d", len(got.Threads), len(want.Threads))
	}
	for i := range want.Threads {
		if g, w := wireJSON(t, got.Threads[i]), wireJSON(t, want.Threads[i]); g != w {
			t.Errorf("thread %d differs:\n got %s\nwant %s", i, g, w)
		}
	}
	type merged struct {
		RD, RT, Attr     string
		Acc, Samp, Pairs uint64
	}
	fp := func(m *core.MultiResult) merged {
		rd, _ := json.Marshal(m.ReuseDistance.Snapshot())
		rt, _ := json.Marshal(m.ReuseTime.Snapshot())
		at, _ := json.Marshal(m.Attribution)
		return merged{string(rd), string(rt), string(at), m.Accesses, m.Samples, m.ReusePairs}
	}
	if g, w := fp(got), fp(want); g != w {
		t.Errorf("merged views differ:\n got %+v\nwant %+v", g, w)
	}
}

func TestParseBackends(t *testing.T) {
	bs, err := pool.ParseBackends("a:1, b:2=c:3 ,d:4")
	if err != nil {
		t.Fatal(err)
	}
	want := []pool.Backend{{Addr: "a:1"}, {Addr: "b:2", Admin: "c:3"}, {Addr: "d:4"}}
	if len(bs) != len(want) {
		t.Fatalf("got %d backends, want %d", len(bs), len(want))
	}
	for i := range want {
		if bs[i] != want[i] {
			t.Errorf("backend %d: got %+v want %+v", i, bs[i], want[i])
		}
	}
	if _, err := pool.ParseBackends(""); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := pool.ParseBackends("=admin"); err == nil {
		t.Error("empty address should fail")
	}
}

// TestPoolMatchesLocalCleanRun checks the composition theorem on the
// happy path: a fault-free pool of two backends produces a MultiResult
// bit-identical to local ProfileThreads.
func TestPoolMatchesLocalCleanRun(t *testing.T) {
	cfg := testConfig(256)
	remote, local := collectStreams(t, 8, 40_000)
	want, err := core.ProfileThreads(local, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}

	s1 := startBackend(t, server.Config{})
	s2 := startBackend(t, server.Config{})
	p, err := pool.New(backendsOf(s1, s2), pool.Options{
		Retry: fastRetry(1),
		Logf:  quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, err := p.ProfileThreads(context.Background(), remote, cfg)
	if err != nil {
		t.Fatalf("pool profile failed: %v (stats %+v)", err, p.Stats())
	}
	sameMulti(t, got, want)

	st := p.Stats()
	if st.Dispatched != 8 || st.Redispatched != 0 {
		t.Errorf("unexpected dispatch counts: %+v", st)
	}
	if st.PerBackend[0] == 0 || st.PerBackend[1] == 0 {
		t.Errorf("least-loaded routing left a backend idle: %+v", st)
	}
}

// TestPoolE2EFaultsAndBackendDeath is the acceptance test: 64 streams
// through a 3-backend pool, every connection subject to seeded drops,
// corruption and partial writes, and one backend killed outright
// mid-run. The MultiResult must still be bit-identical to local
// ProfileThreads — transient faults absorbed by checkpoint/resume
// within a backend, the kill absorbed by re-dispatching its streams.
func TestPoolE2EFaultsAndBackendDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-backend fault E2E is not short")
	}
	cfg := testConfig(512)
	const streams, perStream = 64, 24_000
	remote, local := collectStreams(t, streams, perStream)
	want, err := core.ProfileThreads(local, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}

	mk := func() *server.Server {
		return startBackend(t, server.Config{
			CheckpointEvery: 4,
			StepDelay:       200 * time.Microsecond, // slow the engine so the kill lands mid-run
			RetryAfterHint:  5 * time.Millisecond,
		})
	}
	s1, s2, s3 := mk(), mk(), mk()
	doomed := s2

	faults := faultnet.NewDialer(faultnet.Options{
		Seed:          99,
		DropAfterMin:  150_000,
		DropAfterMax:  400_000,
		CorruptProb:   0.01,
		PartialWrites: true,
	}, nil)
	p, err := pool.New(backendsOf(s1, s2, s3), pool.Options{
		MaxInFlight: 8,
		HealthEvery: 50 * time.Millisecond,
		Retry:       fastRetry(7),
		BatchSize:   2048,
		Dial:        faults.DialContext,
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Kill one backend once it is demonstrably mid-run: sessions open,
	// accesses flowing.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			m := doomed.MetricsSnapshot()
			if m.SessionsActive > 0 && m.AccessesTotal > 0 {
				doomed.Close()
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	got, err := p.ProfileThreads(context.Background(), remote, cfg)
	<-killed
	if err != nil {
		t.Fatalf("pool profile failed: %v (stats %+v)", err, p.Stats())
	}
	sameMulti(t, got, want)

	st := p.Stats()
	if st.Redispatched == 0 {
		t.Errorf("backend kill caused no re-dispatch: %+v", st)
	}
	if st.Dispatched < streams {
		t.Errorf("dispatched %d sessions for %d streams", st.Dispatched, streams)
	}
	if p.Healthy() > 2 {
		t.Errorf("killed backend still considered healthy: %d healthy of 3", p.Healthy())
	}
	t.Logf("pool stats: %+v (dialer made %d connections)", st, faults.Conns())
}

// TestPoolFailoverFromDeadBackend points one of two backends at a
// never-listening address: streams initially routed there must fail
// over and the result must still match the local run.
func TestPoolFailoverFromDeadBackend(t *testing.T) {
	cfg := testConfig(256)
	remote, local := collectStreams(t, 6, 20_000)
	want, err := core.ProfileThreads(local, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}

	live := startBackend(t, server.Config{})
	dead := startBackend(t, server.Config{})
	deadBackends := backendsOf(live, dead)
	dead.Close() // address allocated, then gone: dials are refused

	p, err := pool.New(deadBackends, pool.Options{
		Retry: fastRetry(3),
		Logf:  quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got, err := p.ProfileThreads(context.Background(), remote, cfg)
	if err != nil {
		t.Fatalf("pool profile failed: %v (stats %+v)", err, p.Stats())
	}
	sameMulti(t, got, want)
	st := p.Stats()
	if st.PerBackend[0] != 6 {
		t.Errorf("live backend should have completed every stream exactly once: %+v", st)
	}
	if st.Redispatched == 0 {
		t.Errorf("streams routed to the dead backend never failed over: %+v", st)
	}
}

// TestPoolNoHealthyBackend: with every backend dead and a short
// WaitHealthy, dispatch must give up with a descriptive error instead
// of hanging.
func TestPoolNoHealthyBackend(t *testing.T) {
	dead := startBackend(t, server.Config{})
	bs := backendsOf(dead)
	dead.Close()

	retry := fastRetry(5)
	retry.MaxAttempts = 2
	p, err := pool.New(bs, pool.Options{
		WaitHealthy: 200 * time.Millisecond,
		HealthEvery: 20 * time.Millisecond,
		Retry:       retry,
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	streams, _ := collectStreams(t, 1, 1_000)
	_, err = p.ProfileThreads(context.Background(), streams, testConfig(256))
	if err == nil {
		t.Fatal("profile against a dead pool should fail")
	}
	if !strings.Contains(err.Error(), "no healthy backend") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestPoolContextCancel cancels mid-profile and requires a prompt
// return with the context's error.
func TestPoolContextCancel(t *testing.T) {
	s := startBackend(t, server.Config{StepDelay: time.Millisecond})
	p, err := pool.New(backendsOf(s), pool.Options{Retry: fastRetry(9), Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	streams, _ := collectStreams(t, 4, 200_000)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Bool
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = p.ProfileThreads(ctx, streams, testConfig(256))
	done.Store(true)
	if err == nil {
		t.Fatal("cancelled profile should fail")
	}
	if ctx.Err() == nil || time.Since(start) > 10*time.Second {
		t.Errorf("cancellation not prompt: err=%v after %v", err, time.Since(start))
	}
}

// TestPoolProfileSingle routes the one-stream convenience call and
// checks it against a local profile under the unmodified config.
func TestPoolProfileSingle(t *testing.T) {
	cfg := testConfig(128)
	accs, err := trace.Collect(trace.ZipfAccess(42, 0, 2048, 1.0, 30_000))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := core.NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := prof.Run(trace.FromSlice(accs), cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}

	s := startBackend(t, server.Config{})
	p, err := pool.New(backendsOf(s), pool.Options{Retry: fastRetry(11), Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := p.Profile(context.Background(), trace.FromSlice(accs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := wireJSON(t, got), wireJSON(t, want); g != w {
		t.Errorf("single-stream pool profile differs:\n got %s\nwant %s", g, w)
	}
}
