package pool_test

import (
	"fmt"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pool"
)

// probeMode drives the fake admin endpoint's behavior.
const (
	modeOK int32 = iota
	modeFail
	modeAlternate // 200, 503, 200, 503, ... per request
)

// fakeAdmin is an admin endpoint whose /healthz behavior is switchable
// at runtime, for exercising the prober's hysteresis.
type fakeAdmin struct {
	addr string
	mode atomic.Int32
	hits atomic.Int64
}

func newFakeAdmin(t *testing.T) *fakeAdmin {
	t.Helper()
	f := &fakeAdmin{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f.addr = ln.Addr().String()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		n := f.hits.Add(1)
		switch f.mode.Load() {
		case modeFail:
			http.Error(w, "down", http.StatusServiceUnavailable)
		case modeAlternate:
			if n%2 == 0 {
				http.Error(w, "flap", http.StatusServiceUnavailable)
				return
			}
			fmt.Fprintln(w, "ok")
		default:
			fmt.Fprintln(w, "ok")
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"load":0}`)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return f
}

// waitHealthy polls the pool's healthy count until it reaches want.
func waitHealthy(t *testing.T, p *pool.Pool, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for p.Healthy() != want {
		if time.Now().After(deadline) {
			t.Fatalf("healthy count stuck at %d, want %d", p.Healthy(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestProberHysteresis: health transitions require consecutive
// same-direction probes, so a backend flapping healthy/unhealthy every
// probe round settles into one state instead of oscillating in and out
// of the dispatch set (which would double-dispatch streams onto it and
// churn sessions off it).
func TestProberHysteresis(t *testing.T) {
	admin := newFakeAdmin(t)
	p, err := pool.New([]pool.Backend{{Addr: "127.0.0.1:1", Admin: admin.addr}}, pool.Options{
		HealthEvery:  5 * time.Millisecond,
		ProbeTimeout: time.Second,
		DownAfter:    2,
		UpAfter:      2,
		Logf:         quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Phase 1: perfect alternation. Failures never run DownAfter deep,
	// so the backend must stay healthy through many flap cycles.
	admin.mode.Store(modeAlternate)
	start := admin.hits.Load()
	deadline := time.Now().Add(2 * time.Second)
	for admin.hits.Load()-start < 20 {
		if p.Healthy() != 1 {
			t.Fatal("flapping backend fell out of the dispatch set despite hysteresis")
		}
		if time.Now().After(deadline) {
			t.Fatal("prober stopped probing")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 2: hard down. Two consecutive failures must take it out.
	admin.mode.Store(modeFail)
	waitHealthy(t, p, 0, 2*time.Second)

	// Phase 3: flapping again. One success between failures never makes
	// UpAfter consecutive, so a down backend must stay out.
	admin.mode.Store(modeAlternate)
	start = admin.hits.Load()
	deadline = time.Now().Add(2 * time.Second)
	for admin.hits.Load()-start < 20 {
		if p.Healthy() != 0 {
			t.Fatal("flapping backend was readmitted despite hysteresis")
		}
		if time.Now().After(deadline) {
			t.Fatal("prober stopped probing")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Phase 4: steady recovery. Two consecutive successes readmit it.
	admin.mode.Store(modeOK)
	waitHealthy(t, p, 1, 2*time.Second)
}

// TestAddBackendIsIdempotent: admitting a backend twice keeps one
// entry; admitting a second address grows the set.
func TestAddBackendIsIdempotent(t *testing.T) {
	admin := newFakeAdmin(t)
	p, err := pool.New([]pool.Backend{{Addr: "127.0.0.1:1", Admin: admin.addr}}, pool.Options{
		HealthEvery: 5 * time.Millisecond,
		Logf:        quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if idx := p.AddBackend(pool.Backend{Addr: "127.0.0.1:1"}); idx != 0 {
		t.Fatalf("re-adding the seed backend created index %d, want 0", idx)
	}
	if idx := p.AddBackend(pool.Backend{Addr: "127.0.0.1:2", Admin: admin.addr}); idx != 1 {
		t.Fatalf("new backend got index %d, want 1", idx)
	}
	if n := len(p.Stats().PerBackend); n != 2 {
		t.Fatalf("stats report %d backends, want 2", n)
	}
}
