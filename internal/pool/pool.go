// Package pool implements client-side sharded profiling across a fleet
// of rdxd backends: the ProfileThreads workload — N access streams —
// fanned out over M daemons, with health-checked failover and an exact
// merge.
//
// # Why sharding composes exactly
//
// Locality histograms compose exactly across disjoint access streams
// (the measurement theory of locality): profiling stream i on backend A
// or backend B yields the same per-stream result, because the profiler
// is deterministic in (stream, config) and the per-stream config
// derives from the stream index alone (core.ThreadConfig). The pool
// therefore merges the shipped results with the very core.Merger that
// local ProfileThreads uses, and the MultiResult is bit-identical to a
// local run for any pool size, assignment, and fault schedule.
//
// # Dispatch
//
// Streams are assigned to backends by consistent least-loaded routing:
// among healthy backends with a free in-flight slot, the one with the
// fewest sessions dispatched by this pool wins; ties go to the lower
// server-reported /metrics load gauge, then to the lower backend index,
// so equal observations always produce the same choice. In-flight
// sessions per backend are bounded by Options.MaxInFlight; when every
// healthy backend is saturated the dispatching stream waits for a slot
// (or for a backend to recover).
//
// # Health and failover
//
// A prober goroutine checks each backend every Options.HealthEvery —
// GET /healthz on the backend's admin address when configured, a TCP
// dial of the profiling address otherwise — and refreshes the
// server-reported load gauge from /metrics. A backend whose session
// fails is marked down immediately (the prober brings it back when it
// recovers). Within one backend, transient faults are absorbed by
// wire.ReconnectingClient: reconnect with backoff, checkpoint/resume,
// idempotent replay. Only when that gives up — the backend died — does
// the pool fail over: the stream is re-dispatched from the start on
// another healthy backend, replaying the prefix it has recorded, and
// the freshly profiled result is bit-identical because profiling is
// deterministic. Re-dispatches per stream are bounded by
// Options.MaxRedispatch.
package pool

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Backend identifies one rdxd daemon: the wire-protocol profiling
// address, plus the optional admin (HTTP) address health probes and
// load refreshes use.
type Backend struct {
	// Addr is the profiling listener ("host:port").
	Addr string
	// Admin is the admin listener serving /healthz and /metrics; empty
	// means probe by TCP dial of Addr and route on local load only.
	Admin string
}

// ParseBackends parses a comma-separated backend list, each element
// "addr" or "addr=adminaddr" — the format cmd/rdx's -remote flag
// accepts.
func ParseBackends(spec string) ([]Backend, error) {
	var bs []Backend
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		addr, admin, _ := strings.Cut(part, "=")
		if addr == "" {
			return nil, fmt.Errorf("pool: empty backend address in %q", spec)
		}
		bs = append(bs, Backend{Addr: addr, Admin: admin})
	}
	if len(bs) == 0 {
		return nil, fmt.Errorf("pool: no backends in %q", spec)
	}
	return bs, nil
}

// Options tunes a Pool. The zero value means "use the defaults" for
// every field.
type Options struct {
	// MaxInFlight bounds concurrent sessions per backend (default 8).
	MaxInFlight int
	// HealthEvery is the probe cadence (default 500ms).
	HealthEvery time.Duration
	// ProbeTimeout bounds one health probe or load refresh (default 2s).
	ProbeTimeout time.Duration
	// DownAfter is the consecutive failed probes before a healthy
	// backend is marked down (default 2). Session errors still mark a
	// backend down immediately — a failed session is stronger evidence
	// than a missed probe.
	DownAfter int
	// UpAfter is the consecutive successful probes before a down
	// backend is readmitted (default 2). The hysteresis pair keeps a
	// flapping backend — one that answers every other probe — from
	// oscillating in and out of the dispatch set.
	UpAfter int
	// WaitHealthy bounds how long a dispatch waits for any backend to
	// become healthy with a free slot before giving up (default 15s).
	WaitHealthy time.Duration
	// MaxRedispatch bounds full re-dispatches per stream after a
	// backend dies mid-session (default 2×backends).
	MaxRedispatch int
	// BatchSize is the accesses per wire frame (default
	// trace.DefaultBatchSize).
	BatchSize int
	// MaxWireVersion caps the wire version offered to every backend
	// (0 = latest). Set to wire.WireV2 when fronting pre-columnar
	// daemons, though negotiation falls back per backend anyway.
	MaxWireVersion int
	// Retry is the per-session fault policy handed to
	// wire.ReconnectingClient (zero value = wire defaults). It governs
	// recovery *within* a backend; the pool governs failover *across*
	// backends.
	Retry wire.RetryPolicy
	// Dial overrides the transport to every backend (fault-injection
	// tests plug a faultnet dialer in here).
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Logf receives dispatch diagnostics (default: silent).
	Logf func(format string, args ...any)
}

func (o *Options) fill() {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 8
	}
	if o.HealthEvery <= 0 {
		o.HealthEvery = 500 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.DownAfter <= 0 {
		o.DownAfter = 2
	}
	if o.UpAfter <= 0 {
		o.UpAfter = 2
	}
	if o.WaitHealthy <= 0 {
		o.WaitHealthy = 15 * time.Second
	}
	if o.BatchSize <= 0 {
		o.BatchSize = trace.DefaultBatchSize
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Stats counts a pool's dispatch and failover events.
type Stats struct {
	// Dispatched is the number of sessions started (streams plus
	// re-dispatches).
	Dispatched uint64
	// Redispatched counts failovers: streams re-run on another backend
	// after one died.
	Redispatched uint64
	// ProbeFailures counts health probes that found a backend down.
	ProbeFailures uint64
	// PerBackend is the number of sessions each backend completed or
	// failed, by backend index.
	PerBackend []uint64
}

// backendState is one backend plus the pool's view of it.
type backendState struct {
	Backend
	idx      int
	healthy  atomic.Bool
	draining atomic.Bool  // excluded from dispatch until it probes healthy again
	reported atomic.Int64 // last /metrics load gauge (0 without admin)
	sessions atomic.Uint64
	inflight int // guarded by Pool.mu

	// Probe hysteresis: consecutive same-direction observations needed
	// before the healthy bit flips (prober goroutine plus markDown).
	okStreak   atomic.Int32
	failStreak atomic.Int32
}

// Pool is a sharded-profiling dispatcher over a set of rdxd backends.
// It is safe for concurrent use; Close releases the prober.
type Pool struct {
	opts     Options
	backends []*backendState
	httpc    *http.Client

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool

	stopProbe chan struct{}
	probeDone chan struct{}

	dispatched   atomic.Uint64
	redispatched atomic.Uint64
	probeFails   atomic.Uint64
}

// New builds a pool over the given backends and starts its health
// prober. Backends start out presumed healthy; the first probe round or
// session failure corrects the presumption.
func New(backends []Backend, opts Options) (*Pool, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("pool: no backends")
	}
	opts.fill()
	p := &Pool{
		opts:      opts,
		httpc:     &http.Client{Timeout: opts.ProbeTimeout},
		stopProbe: make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for i, b := range backends {
		bs := &backendState{Backend: b, idx: i}
		bs.healthy.Store(true)
		p.backends = append(p.backends, bs)
	}
	go p.probeLoop()
	return p, nil
}

// Close stops the prober and wakes every waiting dispatch with an
// error. In-flight sessions are not interrupted.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stopProbe)
	<-p.probeDone
	p.cond.Broadcast()
}

// Stats returns the dispatch counters accumulated so far.
func (p *Pool) Stats() Stats {
	s := Stats{
		Dispatched:    p.dispatched.Load(),
		Redispatched:  p.redispatched.Load(),
		ProbeFailures: p.probeFails.Load(),
	}
	for _, b := range p.snapshotBackends() {
		s.PerBackend = append(s.PerBackend, b.sessions.Load())
	}
	return s
}

// Healthy reports how many backends the pool currently considers
// dispatchable.
func (p *Pool) Healthy() int {
	n := 0
	for _, b := range p.snapshotBackends() {
		if b.healthy.Load() && !b.draining.Load() {
			n++
		}
	}
	return n
}

// snapshotBackends copies the backend list under the lock; the list is
// append-only (AddBackend), so the snapshot's entries stay valid.
func (p *Pool) snapshotBackends() []*backendState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*backendState(nil), p.backends...)
}

// AddBackend admits a backend to the pool at runtime — elastic scaling:
// a coordinator brings a daemon up, admits it here, and the next
// dispatch or failover can route to it. Adding an address the pool
// already has is a no-op. Returns the backend's index.
func (p *Pool) AddBackend(b Backend) int {
	p.mu.Lock()
	for _, ex := range p.backends {
		if ex.Addr == b.Addr {
			idx := ex.idx
			p.mu.Unlock()
			return idx
		}
	}
	bs := &backendState{Backend: b, idx: len(p.backends)}
	bs.healthy.Store(true)
	p.backends = append(p.backends, bs)
	idx := bs.idx
	p.mu.Unlock()
	p.opts.Logf("pool: backend %d (%s) admitted", idx, b.Addr)
	p.cond.Broadcast()
	return idx
}

// MarkDraining immediately excludes a backend from dispatch, bypassing
// probe hysteresis — a coordinator calls it the moment it orders a
// drain, so no new stream races onto a backend that is emptying out.
// The exclusion lifts when the backend's admin probe reports healthy
// again (a cancelled drain); backends probed by TCP dial alone stay
// out, since a dial cannot see drain state. Matches by profiling or
// admin address; reports whether a backend matched.
func (p *Pool) MarkDraining(addr string) bool {
	var target *backendState
	for _, b := range p.snapshotBackends() {
		if b.Addr == addr || (b.Admin != "" && b.Admin == addr) {
			target = b
			break
		}
	}
	if target == nil {
		return false
	}
	target.draining.Store(true)
	target.okStreak.Store(0)
	if target.healthy.Swap(false) {
		p.opts.Logf("pool: backend %d (%s) draining", target.idx, target.Addr)
	}
	p.cond.Broadcast()
	return true
}

// probeLoop refreshes backend health and load every HealthEvery, and
// broadcasts each round so waiting dispatches re-check state (and their
// contexts) at least that often. Health transitions are hysteretic:
// DownAfter consecutive failures take a backend out, UpAfter
// consecutive successes readmit it, so a flapping backend — answering
// every other probe — settles out of the dispatch set instead of
// oscillating through it.
func (p *Pool) probeLoop() {
	defer close(p.probeDone)
	t := time.NewTicker(p.opts.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stopProbe:
			return
		case <-t.C:
		}
		for _, b := range p.snapshotBackends() {
			if p.probe(b) {
				b.failStreak.Store(0)
				if b.Admin != "" {
					// The admin endpoint answered 200: whatever drain we
					// were told about is over.
					b.draining.Store(false)
				}
				if !b.healthy.Load() && int(b.okStreak.Add(1)) >= p.opts.UpAfter {
					b.okStreak.Store(0)
					b.healthy.Store(true)
					p.opts.Logf("pool: backend %d (%s) recovered", b.idx, b.Addr)
				}
			} else {
				p.probeFails.Add(1)
				b.okStreak.Store(0)
				if b.healthy.Load() && int(b.failStreak.Add(1)) >= p.opts.DownAfter {
					b.failStreak.Store(0)
					b.healthy.Store(false)
					p.opts.Logf("pool: backend %d (%s) down", b.idx, b.Addr)
				}
			}
		}
		p.cond.Broadcast()
	}
}

// probe checks one backend: GET /healthz on the admin address when
// configured (a 200 is healthy; a draining daemon answers 503 and stops
// receiving new streams), else a TCP dial of the profiling address. A
// healthy admin probe also refreshes the server-reported load gauge.
func (p *Pool) probe(b *backendState) bool {
	if b.Admin == "" {
		conn, err := net.DialTimeout("tcp", b.Addr, p.opts.ProbeTimeout)
		if err != nil {
			return false
		}
		conn.Close()
		return true
	}
	resp, err := p.httpc.Get("http://" + b.Admin + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	if load, err := p.fetchLoad(b); err == nil {
		b.reported.Store(load)
	}
	return true
}

// fetchLoad reads the backend's /metrics load gauge.
func (p *Pool) fetchLoad(b *backendState) (int64, error) {
	resp, err := p.httpc.Get("http://" + b.Admin + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var m struct {
		Load int64 `json:"load"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return 0, err
	}
	return m.Load, nil
}

// markDown records a backend failure observed by a session; the prober
// re-admits the backend once it answers probes again.
func (p *Pool) markDown(b *backendState, err error) {
	b.okStreak.Store(0) // recovery starts from scratch
	if b.healthy.Swap(false) {
		p.opts.Logf("pool: backend %d (%s) marked down: %v", b.idx, b.Addr, err)
	}
	p.cond.Broadcast()
}

// errNoBackend reports that no backend became dispatchable within
// WaitHealthy.
var errNoBackend = errors.New("pool: no healthy backend with a free slot")

// acquire blocks until a healthy backend with a free in-flight slot is
// available and claims the least-loaded one: fewest pool-local in-flight
// sessions, then lowest server-reported load, then lowest index — a
// consistent total order, so identical observations assign identically.
func (p *Pool) acquire(ctx context.Context) (*backendState, error) {
	deadline := time.Now().Add(p.opts.WaitHealthy)
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if p.closed {
			return nil, fmt.Errorf("pool: closed")
		}
		var best *backendState
		for _, b := range p.backends {
			if !b.healthy.Load() || b.draining.Load() || b.inflight >= p.opts.MaxInFlight {
				continue
			}
			if best == nil || lessLoaded(b, best) {
				best = b
			}
		}
		if best != nil {
			best.inflight++
			return best, nil
		}
		if time.Now().After(deadline) {
			return nil, errNoBackend
		}
		// Woken by release, markDown, Close, or the prober's periodic
		// broadcast — the latter bounds how stale a ctx/deadline check
		// can get.
		p.cond.Wait()
	}
}

func lessLoaded(a, b *backendState) bool {
	if a.inflight != b.inflight {
		return a.inflight < b.inflight
	}
	if ra, rb := a.reported.Load(), b.reported.Load(); ra != rb {
		return ra < rb
	}
	return a.idx < b.idx
}

// release returns a backend's in-flight slot.
func (p *Pool) release(b *backendState) {
	p.mu.Lock()
	b.inflight--
	p.mu.Unlock()
	p.cond.Broadcast()
}

// PickBackend claims a healthy, least-loaded backend for caller-driven
// work — a continuous-profiling watch session, say, that manages its
// own connection instead of going through ProfileThreads. It blocks
// like any dispatch until a backend with a free in-flight slot exists.
// The returned release function frees the slot; calling it more than
// once is safe.
func (p *Pool) PickBackend(ctx context.Context) (Backend, func(), error) {
	b, err := p.acquire(ctx)
	if err != nil {
		return Backend{}, nil, err
	}
	var once sync.Once
	return b.Backend, func() { once.Do(func() { p.release(b) }) }, nil
}

// permanentError marks a failure re-dispatching cannot cure (the
// stream's own reader failed); the dispatch loop stops retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// ProfileThreads profiles each stream as one thread of a multithreaded
// program, sharded across the pool's backends, and merges the shipped
// results exactly as local core.ProfileThreads does. The MultiResult is
// bit-identical to the local run for any pool size and fault schedule.
// Per-backend concurrency is bounded by MaxInFlight; streams beyond the
// pool's aggregate capacity wait for slots.
func (p *Pool) ProfileThreads(ctx context.Context, streams []trace.Reader, cfg core.Config) (*core.MultiResult, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("pool: ProfileThreads with no streams")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	results := make([]*wire.Result, len(streams))
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i := range streams {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = p.profileStream(ctx, i, streams[i], core.ThreadConfig(cfg, i))
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pool: stream %d: %w", i, err)
		}
	}
	g := core.NewMerger()
	for _, w := range results {
		g.Add(wire.ToCore(w))
	}
	return g.Result(), nil
}

// Profile profiles a single stream through the pool (stream index 0, so
// the config is used as-is) — rdx.Profile with pool placement and
// failover.
func (p *Pool) Profile(ctx context.Context, r trace.Reader, cfg core.Config) (*core.Result, error) {
	m, err := p.ProfileThreads(ctx, []trace.Reader{r}, cfg)
	if err != nil {
		return nil, err
	}
	return m.Threads[0], nil
}

// profileStream runs one stream to completion, failing over across
// backends until it succeeds or the re-dispatch budget is exhausted.
func (p *Pool) profileStream(ctx context.Context, idx int, r trace.Reader, tcfg core.Config) (*wire.Result, error) {
	maxRedispatch := p.opts.MaxRedispatch
	if maxRedispatch <= 0 {
		maxRedispatch = 2 * len(p.snapshotBackends())
	}
	// rec records every access already handed to a backend, so a stream
	// whose backend dies mid-session can be replayed from the start on
	// another one. It is released when the stream completes.
	var rec []mem.Access
	var lastErr error
	for dispatch := 0; ; dispatch++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if dispatch > maxRedispatch {
			return nil, fmt.Errorf("pool: giving up after %d dispatches: %w", dispatch, lastErr)
		}
		b, err := p.acquire(ctx)
		if err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last session error: %v)", err, lastErr)
			}
			return nil, err
		}
		p.dispatched.Add(1)
		if dispatch > 0 {
			p.redispatched.Add(1)
			p.opts.Logf("pool: stream %d re-dispatched to backend %d (%s)", idx, b.idx, b.Addr)
		}
		res, err := p.runOn(ctx, b, r, tcfg, &rec)
		b.sessions.Add(1)
		p.release(b)
		if err == nil {
			return res, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return nil, perm.err
		}
		lastErr = err
		p.markDown(b, err)
	}
}

// runOn streams one session against a single backend through a
// resilient client: the recorded prefix first (a re-dispatch), then the
// reader's remainder, recording as it goes.
func (p *Pool) runOn(ctx context.Context, b *backendState, r trace.Reader, tcfg core.Config, rec *[]mem.Access) (*wire.Result, error) {
	policy := p.opts.Retry
	if p.opts.Dial != nil {
		policy.Dial = p.opts.Dial
	}
	c := wire.NewReconnectingClient(b.Addr, tcfg, policy)
	c.SetMaxWireVersion(p.opts.MaxWireVersion)
	defer c.Close()

	batch := p.opts.BatchSize
	for off := 0; off < len(*rec); off += batch {
		end := min(off+batch, len(*rec))
		if err := c.SendBatch(ctx, (*rec)[off:end]); err != nil {
			return nil, err
		}
	}
	var buf []mem.Access
	if batch <= trace.DefaultBatchSize {
		buf = trace.BatchBuf()[:batch]
		defer trace.ReleaseBatchBuf(buf)
	} else {
		buf = make([]mem.Access, batch)
	}
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			*rec = append(*rec, buf[:n]...)
			if err := c.SendBatch(ctx, buf[:n]); err != nil {
				return nil, err
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			// The stream itself failed; no backend can fix that.
			return nil, &permanentError{fmt.Errorf("reading access stream: %w", rerr)}
		}
	}
	res, err := c.Finish(ctx)
	if err != nil {
		return nil, err
	}
	*rec = nil // completed: the replay record is no longer needed
	return res, nil
}
