package cpu

import (
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/debugreg"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/trace"
)

func TestRunCountsAccesses(t *testing.T) {
	m := New(cpumodel.Default())
	if err := m.Run(trace.Sequential(0, 1000, 8)); err != nil {
		t.Fatal(err)
	}
	if got := m.Account().Accesses; got != 1000 {
		t.Errorf("accesses = %d, want 1000", got)
	}
	if got := m.Account().NativeCycles(); got != 1000*cpumodel.Default().AccessCycles {
		t.Errorf("native cycles = %d", got)
	}
}

func TestInstrumentationSeesEveryAccess(t *testing.T) {
	var idxs []uint64
	m := New(cpumodel.Default(), WithInstrumentation(func(i uint64, a mem.Access) {
		idxs = append(idxs, i)
	}))
	if err := m.Run(trace.Sequential(0, 100, 8)); err != nil {
		t.Fatal(err)
	}
	if len(idxs) != 100 {
		t.Fatalf("instrumented %d accesses, want 100", len(idxs))
	}
	for i, v := range idxs {
		if v != uint64(i) {
			t.Fatalf("instrumentation index %d = %d", i, v)
		}
	}
	if got := m.Account().Instrumented; got != 100 {
		t.Errorf("charged %d instrumented accesses", got)
	}
}

func TestPMUDrivenByMachine(t *testing.T) {
	samples := 0
	p := pmu.New(pmu.Config{Event: pmu.AllAccesses, Period: 100}, func(pmu.Sample) { samples++ })
	m := New(cpumodel.Default(), WithPMU(p))
	if err := m.Run(trace.Sequential(0, 1000, 8)); err != nil {
		t.Fatal(err)
	}
	if samples != 10 {
		t.Errorf("samples = %d, want 10", samples)
	}
	if got := m.Account().Samples; got != 10 {
		t.Errorf("account samples = %d, want 10", got)
	}
}

func TestWatchpointTrapAccounting(t *testing.T) {
	traps := 0
	f := debugreg.NewFile(4, func(tr debugreg.Trap) { traps++ })
	if err := f.Arm(0, 0, 8, debugreg.WatchReadWrite, 0); err != nil {
		t.Fatal(err)
	}
	m := New(cpumodel.Default(), WithDebugRegisters(f))
	// Cyclic over 4 words touches word 0 on every lap.
	if err := m.Run(trace.Cyclic(0, 4, 40)); err != nil {
		t.Fatal(err)
	}
	if traps != 10 {
		t.Errorf("traps = %d, want 10", traps)
	}
	if got := m.Account().Traps; got != 10 {
		t.Errorf("account traps = %d, want 10", got)
	}
	if got := m.Account().Arms; got != 1 {
		t.Errorf("account arms = %d, want 1", got)
	}
}

func TestWatchpointCheckedBeforePMUTick(t *testing.T) {
	// A profiler arming a watchpoint inside a PMU handler must not see a
	// trap for the very access that was sampled.
	var f *debugreg.File
	trapped := false
	f = debugreg.NewFile(1, func(debugreg.Trap) { trapped = true })
	p := pmu.New(pmu.Config{Event: pmu.AllAccesses, Period: 5}, func(s pmu.Sample) {
		if !f.IsArmed(0) {
			if err := f.Arm(0, s.Access.Addr, 8, debugreg.WatchReadWrite, s.Count); err != nil {
				t.Fatal(err)
			}
			trapped = false
		}
	})
	m := New(cpumodel.Default(), WithPMU(p), WithDebugRegisters(f))
	// Every access hits the same word: the trap must come from the
	// access *after* the sampled one, never the sampled one itself.
	if err := m.Run(trace.Cyclic(0, 1, 20)); err != nil {
		t.Fatal(err)
	}
	if !trapped {
		t.Error("watchpoint never trapped on subsequent access")
	}
}

func TestOverheadGrowsWithProfiling(t *testing.T) {
	plain := New(cpumodel.Default())
	if err := plain.Run(trace.Sequential(0, 10000, 8)); err != nil {
		t.Fatal(err)
	}
	p := pmu.New(pmu.Config{Event: pmu.AllAccesses, Period: 10}, func(pmu.Sample) {})
	profiled := New(cpumodel.Default(), WithPMU(p))
	if err := profiled.Run(trace.Sequential(0, 10000, 8)); err != nil {
		t.Fatal(err)
	}
	if plain.Account().Overhead() != 0 {
		t.Errorf("plain run has overhead %v", plain.Account().Overhead())
	}
	if profiled.Account().Overhead() <= 0 {
		t.Error("profiled run has no overhead")
	}
}
