// Package cpu ties the simulated hardware together: a Machine executes a
// memory-access stream, driving the PMU (overflow sampling) and the debug
// registers (watchpoint traps) on every access, and charging the cycle
// cost model for the base access plus every profiling event it induces.
//
// Profilers never see the raw stream — exactly like a real
// no-instrumentation tool, they interact with the program only through
// PMU samples and watchpoint traps raised by the machine. The exhaustive
// ground-truth tool instead registers a per-access instrumentation
// callback, paying the corresponding modelled cost, which is precisely
// the asymmetry the paper's overhead comparison measures.
package cpu

import (
	"repro/internal/cpumodel"
	"repro/internal/debugreg"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/trace"
)

// Instrument is a per-access callback used by exhaustive
// (instrumentation-based) tools. Each invocation is charged
// Costs.InstrumentCycles.
type Instrument func(index uint64, a mem.Access)

// Machine is one simulated core executing one program (access stream).
type Machine struct {
	pmu     *pmu.PMU
	drs     *debugreg.File
	account *cpumodel.Account
	instr   Instrument

	accessIndex uint64 // index of the access currently executing
	running     bool
}

// Option configures a Machine.
type Option func(*Machine)

// WithPMU attaches a simulated PMU. The machine ticks it on every access.
func WithPMU(p *pmu.PMU) Option {
	return func(m *Machine) { m.pmu = p }
}

// WithDebugRegisters attaches a debug-register file. The machine checks
// every access against it and charges trap cost for each delivered trap.
func WithDebugRegisters(f *debugreg.File) Option {
	return func(m *Machine) { m.drs = f }
}

// WithInstrumentation attaches an exhaustive per-access callback (the
// ground-truth tool's analysis routine).
func WithInstrumentation(fn Instrument) Option {
	return func(m *Machine) { m.instr = fn }
}

// New builds a machine charging the given cost table.
func New(costs cpumodel.Costs, opts ...Option) *Machine {
	m := &Machine{account: cpumodel.NewAccount(costs)}
	for _, o := range opts {
		o(m)
	}
	return m
}

// PMU returns the attached PMU (nil if none).
func (m *Machine) PMU() *pmu.PMU { return m.pmu }

// DebugRegisters returns the attached debug-register file (nil if none).
func (m *Machine) DebugRegisters() *debugreg.File { return m.drs }

// Account returns the cycle account for this machine's run.
func (m *Machine) Account() *cpumodel.Account { return m.account }

// AccessIndex returns the global index of the access currently executing
// (valid inside PMU/trap/instrumentation callbacks), or of the last
// executed access after Run returns.
func (m *Machine) AccessIndex() uint64 { return m.accessIndex }

// Run executes the stream to exhaustion. It may be called once per
// machine.
func (m *Machine) Run(r trace.Reader) error {
	m.running = true
	defer func() { m.running = false }()
	var idx uint64
	err := trace.ForEach(r, func(a mem.Access) bool {
		m.accessIndex = idx
		m.account.Accesses++

		if m.instr != nil {
			m.account.Instrumented++
			m.instr(idx, a)
		}
		if m.drs != nil {
			if n := m.drs.Check(a); n > 0 {
				m.account.Traps += uint64(n)
			}
		}
		if m.pmu != nil {
			if m.pmu.Tick(a) {
				m.account.Samples++
			}
		}
		idx++
		return true
	})
	// Arm cost is charged from the debug-register file's own tally so
	// that profilers don't need to report it separately.
	if m.drs != nil {
		m.account.Arms = m.drs.Arms()
	}
	return err
}
