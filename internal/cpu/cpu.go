// Package cpu ties the simulated hardware together: a Machine executes a
// memory-access stream, driving the PMU (overflow sampling) and the debug
// registers (watchpoint traps), and charging the cycle cost model for the
// base access plus every profiling event it induces.
//
// Profilers never see the raw stream — exactly like a real
// no-instrumentation tool, they interact with the program only through
// PMU samples and watchpoint traps raised by the machine. The exhaustive
// ground-truth tool instead registers a per-access instrumentation
// callback, paying the corresponding modelled cost, which is precisely
// the asymmetry the paper's overhead comparison measures.
//
// # Batched execution engine
//
// Run reads the stream in []mem.Access batches and executes each batch
// in segments separated by profiling events, instead of dispatching a
// closure per access:
//
//   - with no watchpoint armed, the PMU's Headroom (qualifying events
//     until the next overflow) bounds a bulk Advance over the whole
//     event-free stretch — accesses between samples cost a counter add,
//     not a call;
//   - with watchpoints armed, each access is pre-screened against a
//     snapshot of the armed slots (O(armed) compares); PMU counting is
//     still bulk-advanced lazily and flushed immediately before any trap
//     or sample is delivered, so handlers observe exact counter values;
//   - after any delivered event the segment ends, because handlers may
//     arm or disarm watchpoints and the PMU re-draws its next period.
//
// The engine is bit-exact with the retained per-access reference loop
// (RunReference): same stream and configuration produce identical
// counters, samples, traps and handler-observed state. See DESIGN.md
// "Batched execution engine" for the invariants.
package cpu

import (
	"io"

	"repro/internal/cpumodel"
	"repro/internal/debugreg"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/trace"
)

// Instrument is a per-access callback used by exhaustive
// (instrumentation-based) tools. Each invocation is charged
// Costs.InstrumentCycles.
type Instrument func(index uint64, a mem.Access)

// Machine is one simulated core executing one program (access stream).
type Machine struct {
	pmu     *pmu.PMU
	drs     *debugreg.File
	account *cpumodel.Account
	instr   Instrument

	accessIndex uint64 // index of the access currently executing
	executed    uint64 // accesses executed so far (index of the next one)
	running     bool

	wpScratch   []debugreg.Watchpoint // armed-set snapshot, reused per segment
	slotScratch []int
}

// Option configures a Machine.
type Option func(*Machine)

// WithPMU attaches a simulated PMU. The machine ticks it on every access.
func WithPMU(p *pmu.PMU) Option {
	return func(m *Machine) { m.pmu = p }
}

// WithDebugRegisters attaches a debug-register file. The machine checks
// every access against it and charges trap cost for each delivered trap.
func WithDebugRegisters(f *debugreg.File) Option {
	return func(m *Machine) { m.drs = f }
}

// WithInstrumentation attaches an exhaustive per-access callback (the
// ground-truth tool's analysis routine).
func WithInstrumentation(fn Instrument) Option {
	return func(m *Machine) { m.instr = fn }
}

// New builds a machine charging the given cost table.
func New(costs cpumodel.Costs, opts ...Option) *Machine {
	m := &Machine{account: cpumodel.NewAccount(costs)}
	for _, o := range opts {
		o(m)
	}
	return m
}

// PMU returns the attached PMU (nil if none).
func (m *Machine) PMU() *pmu.PMU { return m.pmu }

// DebugRegisters returns the attached debug-register file (nil if none).
func (m *Machine) DebugRegisters() *debugreg.File { return m.drs }

// Account returns the cycle account for this machine's run.
func (m *Machine) Account() *cpumodel.Account { return m.account }

// AccessIndex returns the global index of the access currently executing
// (valid inside PMU/trap/instrumentation callbacks), or of the last
// executed access after Run returns. Between profiling events the
// batched engine does not maintain it per access — no callback can
// observe it there.
func (m *Machine) AccessIndex() uint64 { return m.accessIndex }

// Run executes the stream to exhaustion on the batched engine. It may be
// called once per machine.
func (m *Machine) Run(r trace.Reader) error {
	m.running = true
	defer func() { m.running = false }()
	// Borrowed, not allocated: repeated profiling runs (rdx.Profile in a
	// sweep, every experiment harness) share one pooled batch buffer.
	buf := trace.BatchBuf()
	defer trace.ReleaseBatchBuf(buf)
	for {
		n, err := r.Read(buf)
		if n > 0 {
			m.executeBatch(buf[:n])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
	}
	m.finish()
	return nil
}

// Execute runs one batch of accesses through the batched engine. It is
// the incremental form of Run for programs whose accesses arrive over
// time (e.g. streamed over a network session): call Execute for each
// batch in order, then Finish exactly once after the last. Results are
// bit-identical to a single Run over the concatenated batches —
// execution state (PMU headroom, pending bulk advances) carries across
// calls. Not safe for concurrent use; all calls must come from one
// goroutine.
func (m *Machine) Execute(batch []mem.Access) {
	if len(batch) == 0 {
		return
	}
	m.executeBatch(batch)
}

// Finish settles end-of-run accounting after the last Execute call.
// Run and RunReference call it internally; only incremental (Execute)
// drivers call it directly.
func (m *Machine) Finish() { m.finish() }

// MachineState is the machine's own mutable execution state, exported
// for lossless checkpoint/restore of an incremental (Execute-driven)
// run. The attached PMU and debug-register file carry their own state
// (pmu.State, debugreg.FileState) and are restored separately.
type MachineState struct {
	AccessIndex uint64
	Executed    uint64
	Account     cpumodel.Account
}

// State captures the machine's execution state. The machine must be
// quiescent (between Execute calls).
func (m *Machine) State() MachineState {
	return MachineState{
		AccessIndex: m.accessIndex,
		Executed:    m.executed,
		Account:     *m.account,
	}
}

// SetState overwrites the machine's execution state with a previously
// captured one. Subsequent Execute calls continue bit-identically to the
// captured run, provided the attached PMU and debug registers were
// restored to matching states.
func (m *Machine) SetState(s MachineState) {
	m.accessIndex = s.AccessIndex
	m.executed = s.Executed
	*m.account = s.Account
}

// RunReference executes the stream with the pre-batching per-access
// loop: one closure dispatch, one full watchpoint check and one PMU tick
// per access. It is retained as the executable specification of the
// engine's semantics — the differential tests assert that Run and
// RunReference produce identical results — and as the baseline the
// engine benchmarks compare against.
func (m *Machine) RunReference(r trace.Reader) error {
	m.running = true
	defer func() { m.running = false }()
	err := trace.ForEach(r, func(a mem.Access) bool {
		m.accessIndex = m.executed
		m.account.Accesses++

		if m.instr != nil {
			m.account.Instrumented++
			m.instr(m.executed, a)
		}
		if m.drs != nil {
			if n := m.drs.Check(a); n > 0 {
				m.account.Traps += uint64(n)
			}
		}
		if m.pmu != nil {
			if m.pmu.Tick(a) {
				m.account.Samples++
			}
		}
		m.executed++
		return true
	})
	m.finish()
	return err
}

// finish settles end-of-run accounting shared by both execution paths.
// Arm cost is charged from the debug-register file's own tally so that
// profilers don't need to report it separately.
func (m *Machine) finish() {
	if m.executed > 0 {
		m.accessIndex = m.executed - 1
	}
	if m.drs != nil {
		m.account.Arms = m.drs.Arms()
	}
}

// executeBatch runs one batch through the segmented fast path.
func (m *Machine) executeBatch(batch []mem.Access) {
	if m.instr != nil {
		m.runInstrumented(batch)
		return
	}
	n := len(batch)
	i := 0
	for i < n {
		if m.drs != nil && m.drs.AnyArmed() {
			i = m.runWatched(batch, i)
			continue
		}
		if m.pmu != nil {
			i = m.runSampling(batch, i)
			continue
		}
		// Free run: no profiling hardware can observe these accesses.
		m.account.Accesses += uint64(n - i)
		m.executed += uint64(n - i)
		i = n
	}
}

// runInstrumented executes batch accesses through the full per-access
// path: exhaustive tools observe every access, so there is nothing to
// skip (this is exactly the asymmetry the paper measures).
func (m *Machine) runInstrumented(batch []mem.Access) {
	for _, a := range batch {
		m.accessIndex = m.executed
		m.account.Accesses++
		m.account.Instrumented++
		m.instr(m.executed, a)
		if m.drs != nil {
			if n := m.drs.Check(a); n > 0 {
				m.account.Traps += uint64(n)
			}
		}
		if m.pmu != nil {
			if m.pmu.Tick(a) {
				m.account.Samples++
			}
		}
		m.executed++
	}
}

// runSampling advances through batch[i:] with no watchpoint armed: the
// only possible event is a PMU overflow, whose position is known in
// advance from the counter's headroom. Everything before it is a bulk
// counter advance; the delivering access runs through the precise Tick
// path. Returns the index after the last executed access.
func (m *Machine) runSampling(batch []mem.Access, i int) int {
	n := len(batch)
	h := m.pmu.Headroom()
	ev := m.pmu.Config().Event

	// Find j, the index of the access that overflows the counter (the
	// (h+1)-th qualifying access), or n if no overflow falls inside the
	// batch; qual counts qualifying accesses in batch[i:j].
	j := n
	var qual uint64
	if ev == pmu.AllAccesses {
		if h == pmu.NoOverflow || uint64(n-i) <= h {
			qual = uint64(n - i)
		} else {
			j = i + int(h)
			qual = h
		}
	} else {
		for k := i; k < n; k++ {
			if ev.Matches(batch[k]) {
				if qual == h {
					j = k
					break
				}
				qual++
			}
		}
	}

	m.pmu.Advance(uint64(j-i), qual)
	m.account.Accesses += uint64(j - i)
	m.executed += uint64(j - i)
	if j == n {
		return n
	}

	// batch[j] overflows: deliver precisely, then let the dispatcher
	// re-evaluate (the handler may have armed watchpoints).
	m.accessIndex = m.executed
	m.account.Accesses++
	if m.pmu.Tick(batch[j]) {
		m.account.Samples++
	}
	m.executed++
	return j + 1
}

// runWatched advances through batch[i:] with at least one watchpoint
// armed. Each access is pre-screened against a snapshot of the armed
// watchpoints — valid because the armed set only changes when an event
// fires, and the segment ends there. PMU counting is accumulated locally
// and flushed into the unit immediately before any event delivery, so
// trap and overflow handlers read exact counter values. Returns the
// index after the last executed access.
func (m *Machine) runWatched(batch []mem.Access, i int) int {
	n := len(batch)

	m.slotScratch = m.drs.ArmedSlots(m.slotScratch[:0])
	wps := m.wpScratch[:0]
	for _, s := range m.slotScratch {
		wps = append(wps, m.drs.Slot(s))
	}
	m.wpScratch = wps

	var (
		h          uint64
		ev         pmu.EventSelect
		all, qual  uint64 // pending bulk advance for already-executed accesses
		hasSampler = m.pmu != nil
	)
	if hasSampler {
		h = m.pmu.Headroom()
		ev = m.pmu.Config().Event
	}

	for ; i < n; i++ {
		a := batch[i]

		hit := false
		for k := range wps {
			if wps[k].Covers(a) {
				hit = true
				break
			}
		}
		matches := hasSampler && ev.Matches(a)
		overflow := matches && qual == h

		if !hit && !overflow {
			all++
			if matches {
				qual++
			}
			m.account.Accesses++
			m.executed++
			continue
		}

		// Event access: flush the pending bulk advance so handlers read
		// counter values covering every prior access, then run the
		// precise check-then-tick sequence.
		m.accessIndex = m.executed
		m.account.Accesses++
		if hasSampler {
			m.pmu.Advance(all, qual)
			all, qual = 0, 0
		}
		if hit {
			if t := m.drs.Check(a); t > 0 {
				m.account.Traps += uint64(t)
			}
		}
		if hasSampler {
			if m.pmu.Tick(a) {
				m.account.Samples++
			}
		}
		m.executed++
		return i + 1 // armed set / period changed: re-dispatch
	}

	if hasSampler {
		m.pmu.Advance(all, qual)
	}
	return n
}
