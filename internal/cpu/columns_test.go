package cpu

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestExecuteColumnsMatchesExecute is the columnar engine's differential
// gate: driving the machine with ExecuteColumns over irregular batch
// boundaries must reproduce the row-wise Execute run bit-exactly —
// identical event logs (indices, addresses, handler-observed counter
// values), cycle accounts, PMU counters and debug-register tallies.
func TestExecuteColumnsMatchesExecute(t *testing.T) {
	costs := cpumodel.Default()
	cfgs := []pmu.Config{
		{Event: pmu.AllAccesses, Period: 100, Randomize: true, Seed: 7},
		{Event: pmu.AllAccesses, Period: 64, Randomize: true, Skid: 5, Seed: 3},
		{Event: pmu.LoadsOnly, Period: 50, Randomize: true, Seed: 11},
		{Event: pmu.StoresOnly, Period: 30, Skid: 2, Seed: 5},
		{Event: pmu.AllAccesses, Period: 1, Seed: 9},
		{Event: pmu.AllAccesses, Period: 0, Seed: 1}, // counting mode
	}
	for ci, cfg := range cfgs {
		t.Run(fmt.Sprintf("cfg=%d", ci), func(t *testing.T) {
			accs := randomTrace(uint64(ci)*17+1, 30011, 96)

			row := newRDXLike(cfg, 4, costs)
			col := newRDXLike(cfg, 4, costs)
			rng := stats.NewRNG(5)
			var cols trace.Columns
			for pos := 0; pos < len(accs); {
				n := int(rng.Uint64n(700)) // 0 is a legal (no-op) batch
				if pos+n > len(accs) {
					n = len(accs) - pos
				}
				batch := accs[pos : pos+n]
				row.m.Execute(batch)
				cols.Reset()
				cols.AppendBatch(batch)
				col.m.ExecuteColumns(&cols)
				pos += n
			}
			row.m.Finish()
			col.m.Finish()

			if !reflect.DeepEqual(row.events, col.events) {
				t.Fatalf("event logs diverge:\nrow %d events\ncol %d events\nrow=%v\ncol=%v",
					len(row.events), len(col.events), head(row.events), head(col.events))
			}
			if !reflect.DeepEqual(row.m.Account(), col.m.Account()) {
				t.Fatalf("accounts diverge:\nrow=%+v\ncol=%+v", row.m.Account(), col.m.Account())
			}
			if row.p.Count() != col.p.Count() || row.p.AllCount() != col.p.AllCount() || row.p.Samples() != col.p.Samples() {
				t.Fatalf("PMU counters diverge")
			}
			if row.f.Traps() != col.f.Traps() || row.f.Arms() != col.f.Arms() {
				t.Fatalf("debugreg counters diverge")
			}
			if row.m.AccessIndex() != col.m.AccessIndex() {
				t.Fatalf("final AccessIndex: row=%d col=%d", row.m.AccessIndex(), col.m.AccessIndex())
			}
		})
	}
}

// TestExecuteColumnsInstrumented: the exhaustive path must observe every
// access, in order, with the right indices and reconstructed fields.
func TestExecuteColumnsInstrumented(t *testing.T) {
	accs := randomTrace(3, 9000, 96)
	var got []mem.Access
	var idxs []uint64
	m := New(cpumodel.Default(), WithInstrumentation(func(idx uint64, a mem.Access) {
		idxs = append(idxs, idx)
		got = append(got, a)
	}))
	var cols trace.Columns
	cols.AppendBatch(accs)
	m.ExecuteColumns(&cols)
	m.Finish()
	if len(got) != len(accs) {
		t.Fatalf("instrumented %d accesses, want %d", len(got), len(accs))
	}
	for i := range got {
		if idxs[i] != uint64(i) {
			t.Fatalf("instrumentation index %d = %d", i, idxs[i])
		}
		if got[i] != accs[i] {
			t.Fatalf("access %d reconstructed as %v, want %v", i, got[i], accs[i])
		}
	}
}

// TestExecuteColumnsBareMachine checks the columnar free-run fast path.
func TestExecuteColumnsBareMachine(t *testing.T) {
	const n = 10000
	m := New(cpumodel.Default())
	accs, err := trace.Collect(trace.Cyclic(0, 100, n))
	if err != nil {
		t.Fatal(err)
	}
	var cols trace.Columns
	cols.AppendBatch(accs)
	m.ExecuteColumns(&cols)
	m.Finish()
	if got := m.Account().Accesses; got != n {
		t.Fatalf("accesses = %d, want %d", got, n)
	}
	if got := m.AccessIndex(); got != n-1 {
		t.Fatalf("AccessIndex = %d, want %d", got, n-1)
	}
}
