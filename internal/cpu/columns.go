package cpu

import (
	"repro/internal/pmu"
	"repro/internal/trace"
)

// ExecuteColumns runs one batch held in columnar form through the
// batched engine — the vectorized form of Execute for streams that
// arrive as wire v3 column frames. Results are bit-identical to
// Execute over the materialized accesses (the differential tests pin
// this): the engine walks the same segmented dispatch, but event-free
// stretches never materialize a mem.Access at all — a free run is a
// counter add, and an AllAccesses sampling segment jumps straight from
// the PMU's headroom to the overflowing index. Accesses are
// reconstructed from the columns only where an event can observe them.
// Like Execute, call once per batch in order, then Finish; not safe for
// concurrent use.
func (m *Machine) ExecuteColumns(cols *trace.Columns) {
	n := cols.Len()
	if n == 0 {
		return
	}
	if m.instr != nil {
		m.runInstrumentedColumns(cols)
		return
	}
	i := 0
	for i < n {
		if m.drs != nil && m.drs.AnyArmed() {
			i = m.runWatchedColumns(cols, i)
			continue
		}
		if m.pmu != nil {
			i = m.runSamplingColumns(cols, i)
			continue
		}
		// Free run: no profiling hardware can observe these accesses.
		m.account.Accesses += uint64(n - i)
		m.executed += uint64(n - i)
		i = n
	}
}

// runInstrumentedColumns mirrors runInstrumented: exhaustive tools
// observe every access, so each one is materialized from the columns.
func (m *Machine) runInstrumentedColumns(cols *trace.Columns) {
	n := cols.Len()
	for i := 0; i < n; i++ {
		a := cols.Access(i)
		m.accessIndex = m.executed
		m.account.Accesses++
		m.account.Instrumented++
		m.instr(m.executed, a)
		if m.drs != nil {
			if t := m.drs.Check(a); t > 0 {
				m.account.Traps += uint64(t)
			}
		}
		if m.pmu != nil {
			if m.pmu.Tick(a) {
				m.account.Samples++
			}
		}
		m.executed++
	}
}

// runSamplingColumns mirrors runSampling over columns. For AllAccesses
// the overflow index comes straight from the headroom with no per-value
// work; filtered events scan the meta column's kind bits.
func (m *Machine) runSamplingColumns(cols *trace.Columns, i int) int {
	n := cols.Len()
	h := m.pmu.Headroom()
	ev := m.pmu.Config().Event

	j := n
	var qual uint64
	if ev == pmu.AllAccesses {
		if h == pmu.NoOverflow || uint64(n-i) <= h {
			qual = uint64(n - i)
		} else {
			j = i + int(h)
			qual = h
		}
	} else {
		for k := i; k < n; k++ {
			if ev.Matches(cols.Access(k)) {
				if qual == h {
					j = k
					break
				}
				qual++
			}
		}
	}

	m.pmu.Advance(uint64(j-i), qual)
	m.account.Accesses += uint64(j - i)
	m.executed += uint64(j - i)
	if j == n {
		return n
	}

	// cols[j] overflows: deliver precisely, then re-dispatch.
	m.accessIndex = m.executed
	m.account.Accesses++
	if m.pmu.Tick(cols.Access(j)) {
		m.account.Samples++
	}
	m.executed++
	return j + 1
}

// runWatchedColumns mirrors runWatched over columns: each access is
// materialized for the armed-slot pre-screen (Covers reads address,
// size and kind), PMU counting stays a local pending advance flushed
// before any event delivery.
func (m *Machine) runWatchedColumns(cols *trace.Columns, i int) int {
	n := cols.Len()

	m.slotScratch = m.drs.ArmedSlots(m.slotScratch[:0])
	wps := m.wpScratch[:0]
	for _, s := range m.slotScratch {
		wps = append(wps, m.drs.Slot(s))
	}
	m.wpScratch = wps

	var (
		h          uint64
		ev         pmu.EventSelect
		all, qual  uint64 // pending bulk advance for already-executed accesses
		hasSampler = m.pmu != nil
	)
	if hasSampler {
		h = m.pmu.Headroom()
		ev = m.pmu.Config().Event
	}

	for ; i < n; i++ {
		a := cols.Access(i)

		hit := false
		for k := range wps {
			if wps[k].Covers(a) {
				hit = true
				break
			}
		}
		matches := hasSampler && ev.Matches(a)
		overflow := matches && qual == h

		if !hit && !overflow {
			all++
			if matches {
				qual++
			}
			m.account.Accesses++
			m.executed++
			continue
		}

		m.accessIndex = m.executed
		m.account.Accesses++
		if hasSampler {
			m.pmu.Advance(all, qual)
			all, qual = 0, 0
		}
		if hit {
			if t := m.drs.Check(a); t > 0 {
				m.account.Traps += uint64(t)
			}
		}
		if hasSampler {
			if m.pmu.Tick(a) {
				m.account.Samples++
			}
		}
		m.executed++
		return i + 1 // armed set / period changed: re-dispatch
	}

	if hasSampler {
		m.pmu.Advance(all, qual)
	}
	return n
}
