package cpu

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/debugreg"
	"repro/internal/mem"
	"repro/internal/pmu"
	"repro/internal/stats"
	"repro/internal/trace"
)

// event is one handler-observed occurrence, logged with everything a
// profiler could read at delivery time. The differential tests require
// the batched engine to reproduce the reference loop's event log exactly.
type event struct {
	kind  string // "sample" | "trap"
	index uint64 // machine.AccessIndex() at delivery
	addr  mem.Addr
	count uint64 // PMU Count() observed inside the handler
	slot  int
}

// rdxLike wires a PMU and debug-register file the way the RDX profiler
// does — samples arm watchpoints, traps disarm them — so the machine's
// armed/unarmed segments alternate under test.
type rdxLike struct {
	m      *Machine
	p      *pmu.PMU
	f      *debugreg.File
	events []event
}

func newRDXLike(cfg pmu.Config, slots int, costs cpumodel.Costs) *rdxLike {
	r := &rdxLike{}
	r.f = debugreg.NewFile(slots, func(t debugreg.Trap) {
		r.events = append(r.events, event{
			kind:  "trap",
			index: r.m.AccessIndex(),
			addr:  t.Access.Addr,
			count: r.p.Count(),
			slot:  t.Slot,
		})
		r.f.Disarm(t.Slot)
	})
	r.p = pmu.New(cfg, func(s pmu.Sample) {
		r.events = append(r.events, event{
			kind:  "sample",
			index: r.m.AccessIndex(),
			addr:  s.Access.Addr,
			count: s.Count,
		})
		if slot := r.f.FreeSlot(); slot >= 0 {
			if err := r.f.Arm(slot, s.Access.Addr, 8, debugreg.WatchReadWrite, s.Count); err != nil {
				panic(err)
			}
		}
	})
	r.m = New(costs, WithPMU(r.p), WithDebugRegisters(r.f))
	return r
}

// randomTrace builds a mixed load/store trace over a small region so
// that watchpoints trap frequently.
func randomTrace(seed uint64, n int, region uint64) []mem.Access {
	rng := stats.NewRNG(seed)
	accs := make([]mem.Access, n)
	for i := range accs {
		kind := mem.Load
		if rng.Uint64n(3) == 0 {
			kind = mem.Store
		}
		accs[i] = mem.Access{
			Addr: mem.Addr(rng.Uint64n(region) * 4),
			PC:   mem.Addr(0x400000 + rng.Uint64n(64)*4),
			Size: 4,
			Kind: kind,
		}
	}
	return accs
}

func TestBatchedEngineMatchesReference(t *testing.T) {
	costs := cpumodel.Default()
	sizes := []int{0, 1, 17, trace.DefaultBatchSize - 1, trace.DefaultBatchSize, trace.DefaultBatchSize + 1, 3*trace.DefaultBatchSize + 5}
	cfgs := []pmu.Config{
		{Event: pmu.AllAccesses, Period: 100, Seed: 7},
		{Event: pmu.AllAccesses, Period: 100, Randomize: true, Seed: 7},
		{Event: pmu.AllAccesses, Period: 64, Randomize: true, Skid: 5, Seed: 3},
		{Event: pmu.LoadsOnly, Period: 50, Randomize: true, Seed: 11},
		{Event: pmu.StoresOnly, Period: 30, Skid: 2, Seed: 5},
		{Event: pmu.AllAccesses, Period: 1, Seed: 9},
		{Event: pmu.AllAccesses, Period: 0, Seed: 1}, // counting mode: no samples
	}
	for _, n := range sizes {
		for ci, cfg := range cfgs {
			name := fmt.Sprintf("n=%d/cfg=%d", n, ci)
			t.Run(name, func(t *testing.T) {
				accs := randomTrace(uint64(n)*31+uint64(ci), n, 96)

				fast := newRDXLike(cfg, 4, costs)
				if err := fast.m.Run(trace.FromSlice(accs)); err != nil {
					t.Fatal(err)
				}
				ref := newRDXLike(cfg, 4, costs)
				if err := ref.m.RunReference(trace.FromSlice(accs)); err != nil {
					t.Fatal(err)
				}

				if !reflect.DeepEqual(fast.events, ref.events) {
					t.Fatalf("event logs diverge:\nfast %d events\nref  %d events\nfast=%v\nref=%v",
						len(fast.events), len(ref.events), head(fast.events), head(ref.events))
				}
				if !reflect.DeepEqual(fast.m.Account(), ref.m.Account()) {
					t.Fatalf("accounts diverge:\nfast=%+v\nref =%+v", fast.m.Account(), ref.m.Account())
				}
				if fast.p.Count() != ref.p.Count() || fast.p.AllCount() != ref.p.AllCount() || fast.p.Samples() != ref.p.Samples() {
					t.Fatalf("PMU counters diverge: fast=(%d,%d,%d) ref=(%d,%d,%d)",
						fast.p.Count(), fast.p.AllCount(), fast.p.Samples(),
						ref.p.Count(), ref.p.AllCount(), ref.p.Samples())
				}
				if fast.f.Traps() != ref.f.Traps() || fast.f.Arms() != ref.f.Arms() {
					t.Fatalf("debugreg counters diverge")
				}
				if fast.m.AccessIndex() != ref.m.AccessIndex() {
					t.Fatalf("final AccessIndex: fast=%d ref=%d", fast.m.AccessIndex(), ref.m.AccessIndex())
				}
			})
		}
	}
}

// TestIncrementalExecuteMatchesRun drives the machine with Execute over
// irregular batch boundaries (including tiny and empty batches, the
// shapes a network session delivers) and requires results bit-identical
// to a single Run over the same stream.
func TestIncrementalExecuteMatchesRun(t *testing.T) {
	costs := cpumodel.Default()
	cfg := pmu.Config{Event: pmu.AllAccesses, Period: 64, Randomize: true, Seed: 13}
	accs := randomTrace(99, 30011, 96)

	whole := newRDXLike(cfg, 4, costs)
	if err := whole.m.Run(trace.FromSlice(accs)); err != nil {
		t.Fatal(err)
	}

	inc := newRDXLike(cfg, 4, costs)
	rng := stats.NewRNG(5)
	for pos := 0; pos < len(accs); {
		n := int(rng.Uint64n(700)) // 0 is a legal (no-op) batch
		if pos+n > len(accs) {
			n = len(accs) - pos
		}
		inc.m.Execute(accs[pos : pos+n])
		pos += n
	}
	inc.m.Finish()

	if !reflect.DeepEqual(whole.events, inc.events) {
		t.Fatalf("event logs diverge: whole %d events, incremental %d events",
			len(whole.events), len(inc.events))
	}
	if !reflect.DeepEqual(whole.m.Account(), inc.m.Account()) {
		t.Fatalf("accounts diverge:\nwhole=%+v\ninc  =%+v", whole.m.Account(), inc.m.Account())
	}
	if whole.p.Count() != inc.p.Count() || whole.p.Samples() != inc.p.Samples() {
		t.Fatalf("PMU counters diverge")
	}
	if whole.m.AccessIndex() != inc.m.AccessIndex() {
		t.Fatalf("final AccessIndex: whole=%d inc=%d", whole.m.AccessIndex(), inc.m.AccessIndex())
	}
}

func head(ev []event) []event {
	if len(ev) > 8 {
		return ev[:8]
	}
	return ev
}

// TestBatchedEngineManySlots exercises the >64-slot fallback path of the
// debug-register file under the batched engine.
func TestBatchedEngineManySlots(t *testing.T) {
	cfg := pmu.Config{Event: pmu.AllAccesses, Period: 20, Randomize: true, Seed: 2}
	accs := randomTrace(42, 20000, 64)
	fast := newRDXLike(cfg, 70, cpumodel.Default())
	if err := fast.m.Run(trace.FromSlice(accs)); err != nil {
		t.Fatal(err)
	}
	ref := newRDXLike(cfg, 70, cpumodel.Default())
	if err := ref.m.RunReference(trace.FromSlice(accs)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast.events, ref.events) {
		t.Fatalf("event logs diverge with 70 slots")
	}
	if !reflect.DeepEqual(fast.m.Account(), ref.m.Account()) {
		t.Fatalf("accounts diverge with 70 slots")
	}
}

// TestBatchedEngineBareMachine checks the event-free fast path: a
// machine with no PMU and no debug registers must still count accesses.
func TestBatchedEngineBareMachine(t *testing.T) {
	const n = 10000
	m := New(cpumodel.Default())
	if err := m.Run(trace.Cyclic(0, 100, n)); err != nil {
		t.Fatal(err)
	}
	if got := m.Account().Accesses; got != n {
		t.Fatalf("accesses = %d, want %d", got, n)
	}
	if got := m.AccessIndex(); got != n-1 {
		t.Fatalf("AccessIndex = %d, want %d", got, n-1)
	}
}

// TestBatchedEngineInstrumented checks that instrumentation still sees
// every access, in order, with the right indices.
func TestBatchedEngineInstrumented(t *testing.T) {
	const n = 9000
	var got []uint64
	m := New(cpumodel.Default(), WithInstrumentation(func(idx uint64, a mem.Access) {
		got = append(got, idx)
	}))
	if err := m.Run(trace.Sequential(0, n, 8)); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("instrumented %d accesses, want %d", len(got), n)
	}
	for i, idx := range got {
		if idx != uint64(i) {
			t.Fatalf("instrumentation index %d = %d", i, idx)
		}
	}
	if m.Account().Instrumented != n {
		t.Fatalf("Instrumented = %d", m.Account().Instrumented)
	}
}
