package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

func accessesFromBlocks(blocks []uint8) []mem.Access {
	accs := make([]mem.Access, len(blocks))
	for i, b := range blocks {
		accs[i] = mem.Access{Addr: mem.Addr(b) * 8, Size: 8, Kind: mem.Load}
	}
	return accs
}

func TestObserveSimpleSequence(t *testing.T) {
	// Blocks: A B A  → A cold, B cold, A distance 1 (B in between).
	p := New(mem.WordGranularity)
	for _, a := range accessesFromBlocks([]uint8{0, 1, 0}) {
		p.Observe(a)
	}
	rd := p.ReuseDistance()
	if got := rd.Cold(); got != 2 {
		t.Errorf("cold = %v, want 2", got)
	}
	if got := rd.Weight(1); got != 1 { // distance 1 lands in bucket 1
		t.Errorf("weight(distance 1) = %v, want 1", got)
	}
	rt := p.ReuseTime()
	if got := rt.Weight(2); got != 1 { // reuse time 2 in bucket [2,4)
		t.Errorf("weight(time 2) = %v, want 1", got)
	}
}

func TestObserveImmediateReuse(t *testing.T) {
	// A A → distance 0, time 1.
	p := New(mem.WordGranularity)
	for _, a := range accessesFromBlocks([]uint8{0, 0}) {
		p.Observe(a)
	}
	if got := p.ReuseDistance().Weight(0); got != 1 {
		t.Errorf("weight(distance 0) = %v, want 1", got)
	}
	if got := p.ReuseTime().Weight(1); got != 1 {
		t.Errorf("weight(time 1) = %v, want 1", got)
	}
}

func TestCyclicDistances(t *testing.T) {
	// Cyclic over K blocks: every post-warmup access has distance K-1.
	const k, laps = 8, 10
	p, err := Measure(trace.Cyclic(0, k, k*laps), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	rd := p.ReuseDistance()
	if got := rd.Cold(); got != k {
		t.Errorf("cold = %v, want %v", got, k)
	}
	// Distance k-1 = 7 lands in bucket [4,8); every non-cold access has it.
	if got := rd.Weight(3); got != k*(laps-1) {
		t.Errorf("weight(bucket of 7) = %v, want %v", got, k*(laps-1))
	}
	rt := p.ReuseTime()
	// Reuse time is exactly k = 8 → bucket [8,16).
	if got := rt.Weight(4); got != k*(laps-1) {
		t.Errorf("weight(bucket of time 8) = %v, want %v", got, k*(laps-1))
	}
}

func TestDistinctBlocks(t *testing.T) {
	p, err := Measure(trace.Cyclic(0, 100, 1000), mem.WordGranularity)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.DistinctBlocks(); got != 100 {
		t.Errorf("DistinctBlocks = %d, want 100", got)
	}
	if got := p.Accesses(); got != 1000 {
		t.Errorf("Accesses = %d, want 1000", got)
	}
}

func TestGranularityCoalescing(t *testing.T) {
	// Two addresses in the same 64B line are the same block at line
	// granularity but different blocks at word granularity.
	accs := []mem.Access{
		{Addr: 0, Size: 8}, {Addr: 8, Size: 8}, {Addr: 0, Size: 8},
	}
	word := New(mem.WordGranularity)
	line := New(mem.LineGranularity)
	for _, a := range accs {
		word.Observe(a)
		line.Observe(a)
	}
	if got := word.ReuseDistance().Cold(); got != 2 {
		t.Errorf("word cold = %v, want 2", got)
	}
	// At line granularity the second access is already a reuse.
	if got := line.ReuseDistance().Cold(); got != 1 {
		t.Errorf("line cold = %v, want 1", got)
	}
}

func TestStateBytesGrowsWithFootprint(t *testing.T) {
	small, _ := Measure(trace.Cyclic(0, 16, 1000), mem.WordGranularity)
	big, _ := Measure(trace.Cyclic(0, 4096, 10000), mem.WordGranularity)
	if small.StateBytes() >= big.StateBytes() {
		t.Errorf("state bytes did not grow with footprint: %d vs %d",
			small.StateBytes(), big.StateBytes())
	}
}

// TestAgainstNaive is the package's central property test: Olken's
// algorithm must agree exactly with the O(N·M) definition-following
// implementation on arbitrary traces.
func TestAgainstNaive(t *testing.T) {
	f := func(blocks []uint8) bool {
		accs := accessesFromBlocks(blocks)
		want := NaiveReuseDistances(accs, mem.WordGranularity)

		p := New(mem.WordGranularity)
		gotHist := histogram.New()
		for _, a := range accs {
			p.Observe(a)
		}
		for _, d := range want {
			gotHist.Add(d, 1)
		}
		return histogram.Accuracy(p.ReuseDistance(), gotHist) > 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestAgainstNaivePerAccess checks individual distances, not just the
// histogram, via a modified profiler run that records per-access values.
func TestAgainstNaivePerAccess(t *testing.T) {
	f := func(blocks []uint8) bool {
		accs := accessesFromBlocks(blocks)
		want := NaiveReuseDistances(accs, mem.WordGranularity)

		// Recompute with the treap directly, mirroring Observe.
		last := map[mem.Addr]uint64{}
		tree := newOrderTreap(1)
		for i, a := range accs {
			tm := uint64(i + 1)
			b := mem.WordGranularity.Block(a.Addr)
			var got uint64
			if prev, ok := last[b]; ok {
				got = tree.CountGreater(prev)
				tree.Delete(prev)
			} else {
				got = histogram.Infinite
			}
			if got != want[i] {
				return false
			}
			tree.Insert(tm)
			last[b] = tm
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTreapBasics(t *testing.T) {
	tr := newOrderTreap(7)
	for i := uint64(1); i <= 100; i++ {
		tr.Insert(i)
	}
	if tr.Len() != 100 {
		t.Fatalf("Len = %d, want 100", tr.Len())
	}
	if got := tr.CountGreater(50); got != 50 {
		t.Errorf("CountGreater(50) = %d, want 50", got)
	}
	if got := tr.CountGreater(0); got != 100 {
		t.Errorf("CountGreater(0) = %d, want 100", got)
	}
	if got := tr.CountGreater(100); got != 0 {
		t.Errorf("CountGreater(100) = %d, want 0", got)
	}
	if !tr.Delete(50) {
		t.Error("Delete(50) reported not found")
	}
	if tr.Delete(50) {
		t.Error("second Delete(50) reported found")
	}
	if got := tr.CountGreater(49); got != 50 {
		t.Errorf("CountGreater(49) after delete = %d, want 50", got)
	}
	if tr.Len() != 99 {
		t.Errorf("Len after delete = %d", tr.Len())
	}
}

func TestTreapFreeListReuse(t *testing.T) {
	tr := newOrderTreap(3)
	for i := uint64(1); i <= 1000; i++ {
		tr.Insert(i)
		if i > 10 {
			tr.Delete(i - 10)
		}
	}
	// Live set is bounded at ~10, so node storage should be too.
	if tr.Len() != 10 {
		t.Fatalf("Len = %d, want 10", tr.Len())
	}
	if cap(tr.nodes) > 64 {
		t.Errorf("treap did not reuse freed nodes: %d slots allocated", cap(tr.nodes))
	}
}

func TestNaiveKnownValues(t *testing.T) {
	// A B C B A → distances: inf, inf, inf, 1, 2
	accs := accessesFromBlocks([]uint8{0, 1, 2, 1, 0})
	got := NaiveReuseDistances(accs, mem.WordGranularity)
	want := []uint64{histogram.Infinite, histogram.Infinite, histogram.Infinite, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("naive[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
