package exact

import (
	"runtime"

	"repro/internal/mem"
	"repro/internal/trace"
)

// AutoOptions tunes MeasureAuto's sequential-vs-sharded choice on top
// of the ParallelOptions the sharded path runs under.
type AutoOptions struct {
	ParallelOptions
	// SizeHint, when > 0, is the expected stream length in accesses. A
	// stream shorter than two shards cannot overlap meaningfully, so the
	// sequential oracle is chosen regardless of core count.
	SizeHint uint64
	// IOBound marks the reader as acquisition-bound (its Read blocks on
	// I/O, a socket, or pacing): the sharded pipeline then overlaps
	// acquisition with measurement, which pays even on a single core.
	IOBound bool
	// Cores overrides the detected effective core count (tests and
	// experiments; <= 0 detects).
	Cores int
}

// EffectiveCores is the parallelism actually available to CPU-bound
// work: GOMAXPROCS caps the schedulable Ps, and the machine's CPU count
// caps what those Ps can run on — raising GOMAXPROCS above NumCPU buys
// nothing for compute.
func EffectiveCores() int {
	return min(runtime.GOMAXPROCS(0), runtime.NumCPU())
}

// MeasureAuto measures a stream exhaustively, choosing between the
// sequential Olken oracle and the sharded-parallel one: sequential when
// only one effective core is available (the sharded path's boundary
// merge is pure overhead there) or when the stream is too short to
// shard; parallel otherwise. Both paths produce bit-identical
// histograms, counters and attribution, so the choice is invisible in
// the result — it only moves the throughput.
func MeasureAuto(r trace.Reader, g mem.Granularity, opt AutoOptions) (*ParallelResult, error) {
	cores := opt.Cores
	if cores <= 0 {
		cores = EffectiveCores()
	}
	shardSize := opt.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	if !pickParallel(cores, opt.SizeHint, shardSize, opt.IOBound) {
		return measureSequentialResult(r, g, opt.Attribution)
	}
	return MeasureParallel(r, g, opt.ParallelOptions)
}

// pickParallel is MeasureAuto's decision, factored out so the policy is
// testable: shard only when the stream spans at least two shards, and
// only when more than one effective core can run them — unless
// acquisition is I/O-bound, where pipeline overlap pays regardless.
func pickParallel(cores int, sizeHint uint64, shardSize int, ioBound bool) bool {
	if sizeHint > 0 && sizeHint < 2*uint64(shardSize) {
		return false
	}
	return cores > 1 || ioBound
}

// measureSequentialResult runs the plain sequential oracle and presents
// it in the sharded result shape, so MeasureAuto has one return type.
func measureSequentialResult(r trace.Reader, g mem.Granularity, attrib bool) (*ParallelResult, error) {
	var opts []Option
	if attrib {
		opts = append(opts, WithAttribution())
	}
	p := New(g, opts...)
	if err := trace.ForEach(r, func(a mem.Access) bool { p.Observe(a); return true }); err != nil {
		return nil, err
	}
	return &ParallelResult{
		distHist: p.ReuseDistance(),
		timeHist: p.ReuseTime(),
		accesses: p.Accesses(),
		distinct: p.DistinctBlocks(),
		state:    p.StateBytes(),
		pairs:    p.Pairs(),
	}, nil
}
