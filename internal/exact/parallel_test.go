package exact

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestMeasureParallelMatchesSequential asserts the sharded oracle is
// exact: identical histograms, counters and attribution to the
// sequential Olken measurement, for every worker count and shard size —
// including shard sizes that force blocks to recur across many shards.
func TestMeasureParallelMatchesSequential(t *testing.T) {
	streams := map[string]func() trace.Reader{
		"zipf":    func() trace.Reader { return trace.ZipfAccess(3, 0, 500, 1.0, 60000) },
		"cyclic":  func() trace.Reader { return trace.Cyclic(0, 700, 60000) },
		"chase":   func() trace.Reader { return trace.PointerChase(9, 0, 300, 60000) },
		"uniform": func() trace.Reader { return trace.RandomUniform(4, 0, 2000, 60000) },
	}
	shardSizes := []int{1, 7, 100, 4096, 1 << 16, 1 << 20}
	workerCounts := []int{1, 3, 8}

	for name, mk := range streams {
		seq := New(mem.WordGranularity, WithAttribution())
		if err := trace.ForEach(mk(), func(a mem.Access) bool { seq.Observe(a); return true }); err != nil {
			t.Fatal(err)
		}
		for _, shard := range shardSizes {
			for _, workers := range workerCounts {
				t.Run(fmt.Sprintf("%s/shard=%d/workers=%d", name, shard, workers), func(t *testing.T) {
					par, err := MeasureParallel(mk(), mem.WordGranularity, ParallelOptions{
						Workers: workers, ShardSize: shard, Attribution: true,
					})
					if err != nil {
						t.Fatal(err)
					}
					if par.Accesses() != seq.Accesses() {
						t.Fatalf("accesses = %d, want %d", par.Accesses(), seq.Accesses())
					}
					if par.DistinctBlocks() != seq.DistinctBlocks() {
						t.Fatalf("distinct = %d, want %d", par.DistinctBlocks(), seq.DistinctBlocks())
					}
					if !reflect.DeepEqual(par.ReuseDistance(), seq.ReuseDistance()) {
						t.Fatalf("reuse-distance histograms differ:\npar %v\nseq %v",
							par.ReuseDistance(), seq.ReuseDistance())
					}
					if !reflect.DeepEqual(par.ReuseTime(), seq.ReuseTime()) {
						t.Fatalf("reuse-time histograms differ")
					}
					if !reflect.DeepEqual(par.Pairs(), seq.Pairs()) {
						t.Fatalf("attribution pairs differ: par %d pairs, seq %d pairs",
							len(par.Pairs()), len(seq.Pairs()))
					}
					if par.StateBytes() == 0 {
						t.Fatal("StateBytes = 0")
					}
				})
			}
		}
	}
}

// TestMeasureParallelRandomTraces property-tests the sharded oracle on
// random block streams against the sequential measurement, with shard
// sizes chosen to put shard boundaries everywhere.
func TestMeasureParallelRandomTraces(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 30; trial++ {
		n := int(1 + rng.Uint64n(3000))
		blocks := make([]uint8, n)
		for i := range blocks {
			blocks[i] = uint8(rng.Uint64n(1 + rng.Uint64n(40)))
		}
		accs := accessesFromBlocks(blocks)
		shard := int(1 + rng.Uint64n(uint64(n)))

		seq := New(mem.WordGranularity)
		for _, a := range accs {
			seq.Observe(a)
		}
		par, err := MeasureParallel(trace.FromSlice(accs), mem.WordGranularity, ParallelOptions{
			Workers: 4, ShardSize: shard,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par.ReuseDistance(), seq.ReuseDistance()) ||
			!reflect.DeepEqual(par.ReuseTime(), seq.ReuseTime()) {
			t.Fatalf("trial %d (n=%d shard=%d): parallel oracle diverges from sequential",
				trial, n, shard)
		}
	}
}

// TestMeasureParallelEmpty covers the zero-access stream.
func TestMeasureParallelEmpty(t *testing.T) {
	par, err := MeasureParallel(trace.FromSlice(nil), mem.WordGranularity, ParallelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if par.Accesses() != 0 || par.DistinctBlocks() != 0 {
		t.Fatalf("empty stream: accesses=%d distinct=%d", par.Accesses(), par.DistinctBlocks())
	}
}
