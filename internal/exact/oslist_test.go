package exact

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestOSListBasics(t *testing.T) {
	l := newOSList()
	for i := uint64(1); i <= 1000; i++ {
		l.InsertMax(i)
	}
	if l.Len() != 1000 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := l.CountGreater(500); got != 500 {
		t.Errorf("CountGreater(500) = %d, want 500", got)
	}
	if got := l.CountGreater(0); got != 1000 {
		t.Errorf("CountGreater(0) = %d, want 1000", got)
	}
	if got := l.CountGreater(1000); got != 0 {
		t.Errorf("CountGreater(1000) = %d, want 0", got)
	}
	if !l.Delete(500) {
		t.Error("Delete(500) not found")
	}
	if l.Delete(500) {
		t.Error("double Delete(500) found")
	}
	if got := l.CountGreater(499); got != 500 {
		t.Errorf("CountGreater(499) after delete = %d, want 500", got)
	}
	if l.Len() != 999 {
		t.Errorf("Len after delete = %d", l.Len())
	}
}

func TestOSListRebuildReclaimsMemory(t *testing.T) {
	l := newOSList()
	const n = 100000
	for i := uint64(1); i <= n; i++ {
		l.InsertMax(i)
		if i > 64 {
			l.Delete(i - 64)
		}
	}
	if l.Len() != 64 {
		t.Fatalf("Len = %d, want 64", l.Len())
	}
	// Live set is 64; storage must be far below the 100K inserts.
	if l.StateBytes() > 64*1024 {
		t.Errorf("StateBytes = %d after rebuilds, want small", l.StateBytes())
	}
}

// TestOSListMatchesTreap drives both implementations with the same
// random Olken-like workload and checks every query result agrees.
func TestOSListMatchesTreap(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		l := newOSList()
		tr := newOrderTreap(seed ^ 1)
		live := []uint64{}
		next := uint64(1)
		for op := 0; op < 2000; op++ {
			switch {
			case len(live) == 0 || rng.Float64() < 0.5:
				l.InsertMax(next)
				tr.Insert(next)
				live = append(live, next)
				next += 1 + rng.Uint64n(3)
			default:
				i := rng.Intn(len(live))
				k := live[i]
				live = append(live[:i], live[i+1:]...)
				if l.Delete(k) != tr.Delete(k) {
					return false
				}
			}
			q := rng.Uint64n(next + 2)
			if l.CountGreater(q) != tr.CountGreater(q) {
				return false
			}
			if uint64(l.Len()) != uint64(tr.Len()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkOSListOlkenPattern(b *testing.B) {
	l := newOSList()
	rng := stats.NewRNG(1)
	// Steady-state live set of ~1M keys, like a big-footprint workload.
	keys := make([]uint64, 0, 1<<20)
	next := uint64(1)
	for i := 0; i < 1<<20; i++ {
		l.InsertMax(next)
		keys = append(keys, next)
		next++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(keys))
		old := keys[j]
		l.CountGreater(old)
		l.Delete(old)
		l.InsertMax(next)
		keys[j] = next
		next++
	}
}

func BenchmarkTreapOlkenPattern(b *testing.B) {
	tr := newOrderTreap(1)
	rng := stats.NewRNG(1)
	keys := make([]uint64, 0, 1<<20)
	next := uint64(1)
	for i := 0; i < 1<<20; i++ {
		tr.Insert(next)
		keys = append(keys, next)
		next++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(keys))
		old := keys[j]
		tr.CountGreater(old)
		tr.Delete(old)
		tr.Insert(next)
		keys[j] = next
		next++
	}
}
