package exact

import (
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// TestMeasureAutoBitIdenticalEitherPath proves the auto-picker is
// invisible: whichever path it takes (forced via Cores), the result is
// bit-identical to the sequential oracle.
func TestMeasureAutoBitIdenticalEitherPath(t *testing.T) {
	const n = 60000
	mk := func() trace.Reader { return trace.ZipfAccess(3, 0, 500, 1.0, n) }

	seq := New(mem.WordGranularity, WithAttribution())
	if err := trace.ForEach(mk(), func(a mem.Access) bool { seq.Observe(a); return true }); err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 4} {
		got, err := MeasureAuto(mk(), mem.WordGranularity, AutoOptions{
			ParallelOptions: ParallelOptions{Workers: 4, ShardSize: 4096, Attribution: true},
			Cores:           cores,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Accesses() != seq.Accesses() || got.DistinctBlocks() != seq.DistinctBlocks() {
			t.Fatalf("cores=%d: counters diverge", cores)
		}
		if !reflect.DeepEqual(got.ReuseDistance(), seq.ReuseDistance()) ||
			!reflect.DeepEqual(got.ReuseTime(), seq.ReuseTime()) {
			t.Fatalf("cores=%d: histograms diverge from sequential", cores)
		}
		if !reflect.DeepEqual(got.Pairs(), seq.Pairs()) {
			t.Fatalf("cores=%d: attribution diverges from sequential", cores)
		}
		if got.StateBytes() == 0 {
			t.Fatalf("cores=%d: StateBytes = 0", cores)
		}
	}
}

// TestPickParallelPolicy pins the decision table: one effective core
// never shards CPU-bound work (the 1-core parallel regression is gone
// by construction), I/O-bound acquisition shards even on one core, and
// streams shorter than two shards never shard.
func TestPickParallelPolicy(t *testing.T) {
	const shard = 1 << 20
	cases := []struct {
		cores    int
		sizeHint uint64
		ioBound  bool
		want     bool
	}{
		{cores: 1, sizeHint: 0, ioBound: false, want: false},
		{cores: 1, sizeHint: 100 * shard, ioBound: false, want: false},
		{cores: 1, sizeHint: 100 * shard, ioBound: true, want: true},
		{cores: 4, sizeHint: 0, ioBound: false, want: true},
		{cores: 4, sizeHint: 100 * shard, ioBound: false, want: true},
		{cores: 4, sizeHint: shard, ioBound: false, want: false},
		{cores: 4, sizeHint: shard, ioBound: true, want: false},
		{cores: 4, sizeHint: 2 * shard, ioBound: false, want: true},
	}
	for _, c := range cases {
		if got := pickParallel(c.cores, c.sizeHint, shard, c.ioBound); got != c.want {
			t.Errorf("pickParallel(cores=%d, hint=%d, io=%v) = %v, want %v",
				c.cores, c.sizeHint, c.ioBound, got, c.want)
		}
	}
	if EffectiveCores() < 1 {
		t.Error("EffectiveCores < 1")
	}
}
