package exact

import "math/bits"

// osList is an order-statistics structure specialized for Olken's access
// pattern: keys (timestamps) are inserted in strictly increasing order
// and deleted in arbitrary order, and the only query is "how many live
// keys exceed k". Instead of a balanced tree of pointers, it keeps the
// keys in append-only blocks of contiguous memory with per-key liveness
// bitmaps and a Fenwick tree over per-block live counts:
//
//   - InsertMax appends to the last block: O(1) amortized;
//   - Delete finds the block by binary search (blocks cover disjoint,
//     increasing key ranges), clears one bitmap bit: O(log B);
//   - CountGreater sums a Fenwick suffix plus one in-block popcount
//     scan: O(log B + block/64).
//
// Tombstones are reclaimed by a global rebuild when they outnumber live
// keys, so memory stays O(live). Compared to the treap this trades
// pointer chasing for sequential popcounts, which is ~10x faster on
// large live sets; the treap remains as a reference implementation and
// the two are property-tested against each other.
type osList struct {
	blocks []osBlock
	fen    []uint64 // Fenwick tree over blocks' live counts (1-based)
	live   uint64
	dead   uint64
}

const osBlockKeys = 256 // keys per block; 4 bitmap words

type osBlock struct {
	keys  []uint64 // ascending; append-only until rebuild
	alive [osBlockKeys / 64]uint64
	n     uint32 // live keys
}

func newOSList() *osList {
	return &osList{}
}

// Len returns the number of live keys.
func (l *osList) Len() int { return int(l.live) }

// StateBytes approximates the heap bytes held by the structure.
func (l *osList) StateBytes() uint64 {
	var b uint64
	for i := range l.blocks {
		b += uint64(cap(l.blocks[i].keys))*8 + osBlockKeys/8 + 4
	}
	return b + uint64(cap(l.fen))*8
}

// fenwick helpers (1-based indexing over blocks).

func (l *osList) fenAdd(i int, delta int64) {
	for i++; i < len(l.fen); i += i & -i {
		l.fen[i] = uint64(int64(l.fen[i]) + delta)
	}
}

// fenSum returns the total live count of blocks[0:i].
func (l *osList) fenSum(i int) uint64 {
	var s uint64
	for ; i > 0; i -= i & -i {
		s += l.fen[i]
	}
	return s
}

// InsertMax appends a key strictly greater than every key ever inserted.
func (l *osList) InsertMax(key uint64) {
	nb := len(l.blocks)
	if nb == 0 || len(l.blocks[nb-1].keys) >= osBlockKeys {
		l.blocks = append(l.blocks, osBlock{keys: make([]uint64, 0, osBlockKeys)})
		nb++
		l.growFen()
	}
	b := &l.blocks[nb-1]
	i := len(b.keys)
	b.keys = append(b.keys, key)
	b.alive[i/64] |= 1 << (i % 64)
	b.n++
	l.live++
	l.fenAdd(nb-1, 1)
}

func (l *osList) growFen() {
	need := len(l.blocks) + 1
	if need <= len(l.fen) {
		return
	}
	// Rebuild the Fenwick array (rare: once per new block).
	fen := make([]uint64, need*2)
	for bi := range l.blocks {
		i := bi + 1
		for ; i < len(fen); i += i & -i {
			fen[i] += uint64(l.blocks[bi].n)
			break
		}
	}
	// Recompute properly from scratch: O(blocks log blocks) but only on
	// growth, amortized away by doubling.
	for i := range fen {
		fen[i] = 0
	}
	l.fen = fen
	for bi := range l.blocks {
		l.fenAdd(bi, int64(l.blocks[bi].n))
	}
}

// findBlock returns the index of the block whose key range contains key,
// or -1 if no block can contain it.
func (l *osList) findBlock(key uint64) int {
	lo, hi := 0, len(l.blocks)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		b := &l.blocks[mid]
		if len(b.keys) == 0 || b.keys[len(b.keys)-1] < key {
			lo = mid + 1
		} else if b.keys[0] > key {
			hi = mid - 1
		} else {
			return mid
		}
	}
	return -1
}

// Delete removes key if present and live, reporting whether it was.
func (l *osList) Delete(key uint64) bool {
	bi := l.findBlock(key)
	if bi < 0 {
		return false
	}
	b := &l.blocks[bi]
	// Binary search within the block.
	lo, hi := 0, len(b.keys)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case b.keys[mid] < key:
			lo = mid + 1
		case b.keys[mid] > key:
			hi = mid - 1
		default:
			mask := uint64(1) << (mid % 64)
			if b.alive[mid/64]&mask == 0 {
				return false
			}
			b.alive[mid/64] &^= mask
			b.n--
			l.live--
			l.dead++
			l.fenAdd(bi, -1)
			if l.dead > l.live+osBlockKeys {
				l.rebuild()
			}
			return true
		}
	}
	return false
}

// CountGreater returns the number of live keys strictly greater than key.
func (l *osList) CountGreater(key uint64) uint64 {
	if len(l.blocks) == 0 {
		return 0
	}
	bi := l.findBlock(key)
	if bi < 0 {
		// key is outside every block's range: either before the first
		// live range or after the last.
		last := &l.blocks[len(l.blocks)-1]
		if len(last.keys) > 0 && key >= last.keys[len(last.keys)-1] {
			return 0
		}
		// Before some block: count all blocks starting after key.
		lo, hi := 0, len(l.blocks)-1
		for lo < hi {
			mid := (lo + hi) / 2
			b := &l.blocks[mid]
			if len(b.keys) == 0 || b.keys[len(b.keys)-1] <= key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return l.live - l.fenSum(lo)
	}
	// Suffix beyond block bi, plus live keys > key within block bi.
	count := l.live - l.fenSum(bi+1)
	b := &l.blocks[bi]
	// First index with keys[idx] > key.
	lo, hi := 0, len(b.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if b.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Popcount the alive bits at positions >= lo.
	w := lo / 64
	if w < len(b.alive) {
		first := b.alive[w] >> (lo % 64)
		count += uint64(bits.OnesCount64(first))
		for w++; w < len(b.alive); w++ {
			count += uint64(bits.OnesCount64(b.alive[w]))
		}
	}
	return count
}

// CountGreaterAndDelete combines CountGreater(key) with Delete(key),
// sharing the block lookup — Olken performs exactly this pair on every
// reuse, and the lookup dominates the cost.
func (l *osList) CountGreaterAndDelete(key uint64) (uint64, bool) {
	bi := l.findBlock(key)
	if bi < 0 {
		return l.CountGreater(key), false
	}
	b := &l.blocks[bi]
	lo, hi := 0, len(b.keys)-1
	idx := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case b.keys[mid] < key:
			lo = mid + 1
		case b.keys[mid] > key:
			hi = mid - 1
		default:
			idx = mid
			lo = mid + 1
			hi = -2 // break
		}
	}
	// Count live keys strictly greater than key: suffix blocks plus the
	// in-block tail after idx (or after the insertion point).
	tail := idx
	if tail < 0 {
		tail = lo - 1
	}
	count := l.live - l.fenSum(bi+1)
	w := (tail + 1) / 64
	if w < len(b.alive) {
		first := b.alive[w] >> ((tail + 1) % 64)
		count += uint64(bits.OnesCount64(first))
		for w++; w < len(b.alive); w++ {
			count += uint64(bits.OnesCount64(b.alive[w]))
		}
	}
	if idx < 0 {
		return count, false
	}
	mask := uint64(1) << (idx % 64)
	if b.alive[idx/64]&mask == 0 {
		return count, false
	}
	b.alive[idx/64] &^= mask
	b.n--
	l.live--
	l.dead++
	l.fenAdd(bi, -1)
	if l.dead > l.live+osBlockKeys {
		l.rebuild()
	}
	return count, true
}

// rebuild compacts live keys into fresh full blocks, discarding
// tombstones. Amortized O(1) per delete.
func (l *osList) rebuild() {
	fresh := make([]osBlock, 0, int(l.live)/osBlockKeys+1)
	var cur *osBlock
	for bi := range l.blocks {
		b := &l.blocks[bi]
		for i, k := range b.keys {
			if b.alive[i/64]&(1<<(i%64)) == 0 {
				continue
			}
			if cur == nil || len(cur.keys) >= osBlockKeys {
				fresh = append(fresh, osBlock{keys: make([]uint64, 0, osBlockKeys)})
				cur = &fresh[len(fresh)-1]
			}
			j := len(cur.keys)
			cur.keys = append(cur.keys, k)
			cur.alive[j/64] |= 1 << (j % 64)
			cur.n++
		}
	}
	l.blocks = fresh
	l.dead = 0
	l.fen = nil
	l.growFen()
}
