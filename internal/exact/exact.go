// Package exact implements the exhaustive ground-truth reuse-distance
// measurement that RDX is evaluated against: Olken's algorithm, which
// observes every memory access (via instrumentation) and maintains a
// hash map of last-access times plus an order-statistics tree of live
// timestamps. It yields exact reuse-distance and reuse-time histograms at
// the configured granularity — at the classic cost of instrumenting every
// access and holding per-distinct-block state, which is precisely the
// overhead the paper's motivation (experiment T1) quantifies.
package exact

import (
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Profiler measures exact reuse distance and reuse time. Feed it every
// access through Observe (or attach it to a cpu.Machine as
// instrumentation) and read the histograms when done.
type Profiler struct {
	gran mem.Granularity
	last map[mem.Addr]lastUse // block -> previous access
	tree *osList

	time     uint64
	distHist *histogram.Histogram
	timeHist *histogram.Histogram

	pairs map[PairKey]*PairAgg // nil unless WithAttribution
}

// lastUse records a block's most recent access.
type lastUse struct {
	time uint64
	pc   mem.Addr
}

// PairKey identifies a use→reuse pair of code sites (the exhaustive
// analogue of the profiler's sampled attribution).
type PairKey struct {
	UsePC   mem.Addr
	ReusePC mem.Addr
}

// PairAgg aggregates the exact reuses carried by one code pair.
type PairAgg struct {
	Count   uint64
	DistSum float64
}

// MeanDistance returns the pair's mean reuse distance.
func (a *PairAgg) MeanDistance() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.DistSum / float64(a.Count)
}

// Option configures a Profiler.
type Option func(*Profiler)

// WithAttribution enables exact per-code-pair aggregation (used to
// validate RDX's sampled attribution).
func WithAttribution() Option {
	return func(p *Profiler) { p.pairs = make(map[PairKey]*PairAgg) }
}

// New returns a profiler measuring at granularity g.
func New(g mem.Granularity, opts ...Option) *Profiler {
	p := &Profiler{
		gran:     g,
		last:     make(map[mem.Addr]lastUse),
		tree:     newOSList(),
		distHist: histogram.New(),
		timeHist: histogram.New(),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Observe records one access. Timestamps are assigned in call order.
func (p *Profiler) Observe(a mem.Access) {
	p.time++
	t := p.time
	b := p.gran.Block(a.Addr)
	if prev, ok := p.last[b]; ok {
		// Reuse: distance = distinct blocks touched strictly between the
		// two accesses = live timestamps newer than prev.
		dist, _ := p.tree.CountGreaterAndDelete(prev.time)
		p.distHist.Add(dist, 1)
		p.timeHist.Add(t-prev.time, 1)
		if p.pairs != nil {
			key := PairKey{UsePC: prev.pc, ReusePC: a.PC}
			agg := p.pairs[key]
			if agg == nil {
				agg = &PairAgg{}
				p.pairs[key] = agg
			}
			agg.Count++
			agg.DistSum += float64(dist)
		}
	} else {
		p.distHist.Add(histogram.Infinite, 1)
		p.timeHist.Add(histogram.Infinite, 1)
	}
	p.tree.InsertMax(t)
	p.last[b] = lastUse{time: t, pc: a.PC}
}

// Pairs returns the exact per-code-pair aggregation (nil unless the
// profiler was built WithAttribution).
func (p *Profiler) Pairs() map[PairKey]*PairAgg { return p.pairs }

// Instrument adapts the profiler to the cpu.Machine instrumentation hook.
func (p *Profiler) Instrument(_ uint64, a mem.Access) { p.Observe(a) }

// ReuseDistance returns the exact reuse-distance histogram (cold accesses
// recorded as infinite).
func (p *Profiler) ReuseDistance() *histogram.Histogram { return p.distHist }

// ReuseTime returns the exact reuse-time histogram.
func (p *Profiler) ReuseTime() *histogram.Histogram { return p.timeHist }

// Accesses returns the number of observed accesses.
func (p *Profiler) Accesses() uint64 { return p.time }

// DistinctBlocks returns the number of distinct blocks seen (the
// program's footprint at the measurement granularity).
func (p *Profiler) DistinctBlocks() uint64 { return uint64(len(p.last)) }

// StateBytes approximates the profiler's heap state: the
// order-statistics tree plus the last-access hash map. This is the
// "memory bloat" the exhaustive approach pays per distinct block.
func (p *Profiler) StateBytes() uint64 {
	// Go map overhead per entry is roughly 2x the key+value payload once
	// bucket metadata is included; 56 bytes/entry is a conservative
	// model for a map[Addr]lastUse.
	const mapEntryBytes = 56
	return p.tree.StateBytes() + uint64(len(p.last))*mapEntryBytes
}

// Measure runs the profiler over an entire stream and returns it.
func Measure(r trace.Reader, g mem.Granularity) (*Profiler, error) {
	p := New(g)
	err := trace.ForEach(r, func(a mem.Access) bool {
		p.Observe(a)
		return true
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// NaiveReuseDistances computes reuse distances with the O(N·M)
// definition-following algorithm. It exists to property-test the treap
// implementation and is only usable on small traces.
func NaiveReuseDistances(accs []mem.Access, g mem.Granularity) []uint64 {
	out := make([]uint64, len(accs))
	blocks := make([]mem.Addr, len(accs))
	for i, a := range accs {
		blocks[i] = g.Block(a.Addr)
	}
	for i := range accs {
		// Find previous access to the same block.
		prev := -1
		for j := i - 1; j >= 0; j-- {
			if blocks[j] == blocks[i] {
				prev = j
				break
			}
		}
		if prev < 0 {
			out[i] = histogram.Infinite
			continue
		}
		seen := make(map[mem.Addr]struct{})
		for j := prev + 1; j < i; j++ {
			seen[blocks[j]] = struct{}{}
		}
		out[i] = uint64(len(seen))
	}
	return out
}
