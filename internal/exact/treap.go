package exact

import "repro/internal/stats"

// orderTreap is an order-statistics treap over uint64 keys (access
// timestamps). Olken's reuse-distance algorithm needs exactly three
// operations, all O(log m) for m live keys: insert a new (strictly
// larger) key, delete an arbitrary key, and count the keys greater than
// a given key.
//
// Nodes live in a flat slice with a free list, which keeps the structure
// compact, allocation-light, and makes its memory footprint directly
// measurable for the memory-overhead experiments.
type orderTreap struct {
	nodes []treapNode
	free  []int32
	root  int32
	rng   *stats.RNG
}

type treapNode struct {
	key         uint64
	pri         uint32
	left, right int32
	size        uint32
}

const nilNode = int32(-1)

func newOrderTreap(seed uint64) *orderTreap {
	return &orderTreap{root: nilNode, rng: stats.NewRNG(seed)}
}

// Len returns the number of live keys.
func (t *orderTreap) Len() int {
	return int(t.size(t.root))
}

// StateBytes approximates the heap bytes held by the treap.
func (t *orderTreap) StateBytes() uint64 {
	const nodeBytes = 8 + 4 + 4 + 4 + 4 // key, pri, left, right, size
	return uint64(cap(t.nodes))*nodeBytes + uint64(cap(t.free))*4
}

func (t *orderTreap) size(n int32) uint32 {
	if n == nilNode {
		return 0
	}
	return t.nodes[n].size
}

func (t *orderTreap) fix(n int32) {
	t.nodes[n].size = 1 + t.size(t.nodes[n].left) + t.size(t.nodes[n].right)
}

func (t *orderTreap) alloc(key uint64) int32 {
	var n int32
	if len(t.free) > 0 {
		n = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
	} else {
		t.nodes = append(t.nodes, treapNode{})
		n = int32(len(t.nodes) - 1)
	}
	t.nodes[n] = treapNode{key: key, pri: uint32(t.rng.Uint64()), left: nilNode, right: nilNode, size: 1}
	return n
}

// Insert adds key. Keys must be unique (timestamps are).
func (t *orderTreap) Insert(key uint64) {
	t.root = t.insert(t.root, key)
}

func (t *orderTreap) insert(n int32, key uint64) int32 {
	if n == nilNode {
		return t.alloc(key)
	}
	if key < t.nodes[n].key {
		t.nodes[n].left = t.insert(t.nodes[n].left, key)
		if t.nodes[t.nodes[n].left].pri > t.nodes[n].pri {
			n = t.rotateRight(n)
		}
	} else {
		t.nodes[n].right = t.insert(t.nodes[n].right, key)
		if t.nodes[t.nodes[n].right].pri > t.nodes[n].pri {
			n = t.rotateLeft(n)
		}
	}
	t.fix(n)
	return n
}

func (t *orderTreap) rotateRight(n int32) int32 {
	l := t.nodes[n].left
	t.nodes[n].left = t.nodes[l].right
	t.nodes[l].right = n
	t.fix(n)
	t.fix(l)
	return l
}

func (t *orderTreap) rotateLeft(n int32) int32 {
	r := t.nodes[n].right
	t.nodes[n].right = t.nodes[r].left
	t.nodes[r].left = n
	t.fix(n)
	t.fix(r)
	return r
}

// Delete removes key if present and reports whether it was found.
func (t *orderTreap) Delete(key uint64) bool {
	var found bool
	t.root, found = t.delete(t.root, key)
	return found
}

func (t *orderTreap) delete(n int32, key uint64) (int32, bool) {
	if n == nilNode {
		return nilNode, false
	}
	var found bool
	switch {
	case key < t.nodes[n].key:
		t.nodes[n].left, found = t.delete(t.nodes[n].left, key)
	case key > t.nodes[n].key:
		t.nodes[n].right, found = t.delete(t.nodes[n].right, key)
	default:
		// Rotate n down until it is a leaf, then free it.
		l, r := t.nodes[n].left, t.nodes[n].right
		switch {
		case l == nilNode && r == nilNode:
			t.free = append(t.free, n)
			return nilNode, true
		case l == nilNode || (r != nilNode && t.nodes[r].pri > t.nodes[l].pri):
			n = t.rotateLeft(n)
			t.nodes[n].left, found = t.delete(t.nodes[n].left, key)
		default:
			n = t.rotateRight(n)
			t.nodes[n].right, found = t.delete(t.nodes[n].right, key)
		}
	}
	t.fix(n)
	return n, found
}

// CountGreater returns the number of keys strictly greater than key.
func (t *orderTreap) CountGreater(key uint64) uint64 {
	var count uint64
	n := t.root
	for n != nilNode {
		if t.nodes[n].key > key {
			count += 1 + uint64(t.size(t.nodes[n].right))
			n = t.nodes[n].left
		} else {
			n = t.nodes[n].right
		}
	}
	return count
}
