package exact

import (
	"io"
	"runtime"
	"sync"

	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// This file parallelizes Olken's algorithm across contiguous trace
// shards without giving up exactness. The decomposition:
//
//   - A reuse whose use and reuse both fall in the same shard has every
//     intervening access inside that shard too (the shard is a
//     contiguous time window), so a per-shard Olken over only the
//     shard's own accesses measures it exactly. Workers do this in
//     parallel.
//   - A reuse that crosses a shard boundary is resolved by a sequential
//     merge. Each worker reports, per distinct block it touched, the
//     first and last access (time and PC) — its "boundary records", in
//     first-touch order. The merge keeps each known block's global
//     last-access time in an order-statistics tree. For a boundary
//     record of block b first touched at time t with global previous
//     access at p (< shard start), the distinct blocks accessed in
//     (p, t) split into (a) blocks touched earlier in this shard — all
//     of them count, and they are exactly the boundary records already
//     processed — and (b) blocks untouched in this shard before t,
//     which count iff their global last access exceeds p: a
//     CountGreater on the tree after evicting the already-processed
//     blocks' stale keys. The reuse distance is (a) + (b), bit-exact
//     with the sequential algorithm.
//
// Histogram and attribution merges only ever add unit-weight integer
// observations, so the result is identical (not just statistically
// equivalent) to Measure's, independent of worker count and shard size.

// DefaultShardSize is the default number of accesses per parallel
// shard: large enough that the O(shard log shard) local work dwarfs the
// O(distinct) merge work, small enough to bound in-flight memory
// (1M accesses × 16 B × ~workers in flight).
const DefaultShardSize = 1 << 20

// ParallelOptions tunes MeasureParallel.
type ParallelOptions struct {
	// Workers is the worker-pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// ShardSize is the number of accesses per shard; <= 0 selects
	// DefaultShardSize. The result does not depend on it.
	ShardSize int
	// Attribution enables exact per-code-pair aggregation.
	Attribution bool
}

// ParallelResult is the merged outcome of a sharded exact measurement.
// It exposes the same observers as the sequential Profiler and holds
// identical histograms.
type ParallelResult struct {
	distHist *histogram.Histogram
	timeHist *histogram.Histogram
	accesses uint64
	distinct uint64
	state    uint64
	pairs    map[PairKey]*PairAgg
}

// ReuseDistance returns the exact reuse-distance histogram.
func (r *ParallelResult) ReuseDistance() *histogram.Histogram { return r.distHist }

// ReuseTime returns the exact reuse-time histogram.
func (r *ParallelResult) ReuseTime() *histogram.Histogram { return r.timeHist }

// Accesses returns the number of observed accesses.
func (r *ParallelResult) Accesses() uint64 { return r.accesses }

// DistinctBlocks returns the number of distinct blocks seen.
func (r *ParallelResult) DistinctBlocks() uint64 { return r.distinct }

// StateBytes approximates the heap state a sequential measurement of the
// same trace would hold (merge tree of one key per distinct block plus
// the last-access map model the sequential Profiler uses).
func (r *ParallelResult) StateBytes() uint64 { return r.state }

// Pairs returns the exact per-code-pair aggregation (nil unless
// ParallelOptions.Attribution was set).
func (r *ParallelResult) Pairs() map[PairKey]*PairAgg { return r.pairs }

// blockBoundary is one distinct block's first and last access within a
// shard, in global timestamps (1-based, as the sequential clock assigns
// them).
type blockBoundary struct {
	block     mem.Addr
	firstTime uint64
	lastTime  uint64
	firstPC   mem.Addr
	lastPC    mem.Addr
}

// shardResult is one worker's output for one contiguous shard.
type shardResult struct {
	accesses uint64
	dist     *histogram.Histogram // intra-shard reuses only
	time     *histogram.Histogram
	pairs    map[PairKey]*PairAgg // intra-shard pairs (nil without attribution)
	blocks   []blockBoundary      // distinct blocks, in first-touch order
}

// measureShard runs local Olken over one shard. startTime is the global
// timestamp of the access before accs[0] (i.e. accs[k] executes at
// startTime+k+1), so boundary records carry globally comparable times.
func measureShard(accs []mem.Access, startTime uint64, g mem.Granularity, attrib bool) *shardResult {
	sr := &shardResult{
		accesses: uint64(len(accs)),
		dist:     histogram.New(),
		time:     histogram.New(),
	}
	if attrib {
		sr.pairs = make(map[PairKey]*PairAgg)
	}
	idx := make(map[mem.Addr]int32)
	tree := newOSList()
	for k := range accs {
		a := &accs[k]
		t := startTime + uint64(k) + 1
		b := g.Block(a.Addr)
		if bi, ok := idx[b]; ok {
			rec := &sr.blocks[bi]
			d, _ := tree.CountGreaterAndDelete(rec.lastTime)
			sr.dist.Add(d, 1)
			sr.time.Add(t-rec.lastTime, 1)
			if attrib {
				key := PairKey{UsePC: rec.lastPC, ReusePC: a.PC}
				agg := sr.pairs[key]
				if agg == nil {
					agg = &PairAgg{}
					sr.pairs[key] = agg
				}
				agg.Count++
				agg.DistSum += float64(d)
			}
			rec.lastTime, rec.lastPC = t, a.PC
		} else {
			// First touch within the shard: cold here, but possibly a
			// cross-shard reuse globally — the merge decides, so no
			// histogram entry yet.
			idx[b] = int32(len(sr.blocks))
			sr.blocks = append(sr.blocks, blockBoundary{
				block: b, firstTime: t, lastTime: t, firstPC: a.PC, lastPC: a.PC,
			})
		}
		tree.InsertMax(t)
	}
	return sr
}

// merger resolves cross-shard reuses and accumulates global results.
type merger struct {
	res  *ParallelResult
	last map[mem.Addr]lastUse
	tree *orderTreap // one key per known block: its global last-access time
}

func newMerger(attrib bool) *merger {
	m := &merger{
		res: &ParallelResult{
			distHist: histogram.New(),
			timeHist: histogram.New(),
		},
		last: make(map[mem.Addr]lastUse),
		tree: newOrderTreap(1),
	}
	if attrib {
		m.res.pairs = make(map[PairKey]*PairAgg)
	}
	return m
}

func (m *merger) addPair(key PairKey, dist uint64) {
	agg := m.res.pairs[key]
	if agg == nil {
		agg = &PairAgg{}
		m.res.pairs[key] = agg
	}
	agg.Count++
	agg.DistSum += float64(dist)
}

// merge folds one shard (shards must arrive in trace order).
func (m *merger) merge(sr *shardResult) {
	m.res.accesses += sr.accesses
	m.res.distHist.AddHistogram(sr.dist)
	m.res.timeHist.AddHistogram(sr.time)
	for key, agg := range sr.pairs {
		g := m.res.pairs[key]
		if g == nil {
			g = &PairAgg{}
			m.res.pairs[key] = g
		}
		g.Count += agg.Count
		g.DistSum += agg.DistSum
	}

	// Resolve each first touch, in first-touch order. `removed` counts
	// boundary records already processed: every one of them was accessed
	// in this shard before the current first touch, hence inside any
	// cross-shard reuse window ending here.
	removed := 0
	for i := range sr.blocks {
		rec := &sr.blocks[i]
		if prev, ok := m.last[rec.block]; ok {
			d := uint64(removed) + m.tree.CountGreater(prev.time)
			m.res.distHist.Add(d, 1)
			m.res.timeHist.Add(rec.firstTime-prev.time, 1)
			if m.res.pairs != nil {
				m.addPair(PairKey{UsePC: prev.pc, ReusePC: rec.firstPC}, d)
			}
			m.tree.Delete(prev.time)
		} else {
			m.res.distHist.Add(histogram.Infinite, 1)
			m.res.timeHist.Add(histogram.Infinite, 1)
		}
		removed++
	}
	// Publish the shard's last-access times as the new global keys.
	for i := range sr.blocks {
		rec := &sr.blocks[i]
		m.tree.Insert(rec.lastTime)
		m.last[rec.block] = lastUse{time: rec.lastTime, pc: rec.lastPC}
	}
}

func (m *merger) finish() *ParallelResult {
	const mapEntryBytes = 56 // as Profiler.StateBytes models map[Addr]lastUse
	m.res.distinct = uint64(len(m.last))
	m.res.state = m.tree.StateBytes() + uint64(len(m.last))*mapEntryBytes
	return m.res
}

// MeasureParallel measures a stream exhaustively like Measure, but
// fanned out over contiguous trace shards on a bounded worker pool with
// a sequential exact merge. The histograms, pair aggregation and
// counters are identical to the sequential measurement for any worker
// count and shard size.
func MeasureParallel(r trace.Reader, g mem.Granularity, opt ParallelOptions) (*ParallelResult, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardSize := opt.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}

	type job struct {
		accs  []mem.Access
		start uint64
		out   chan *shardResult
	}
	jobs := make(chan job, workers)
	// pending preserves shard order; its capacity (plus the jobs buffer)
	// bounds in-flight shard memory.
	pending := make(chan chan *shardResult, workers+1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				jb.out <- measureShard(jb.accs, jb.start, g, opt.Attribution)
			}
		}()
	}

	var readErr error
	go func() {
		defer close(pending)
		defer close(jobs)
		var start uint64
		for {
			accs := make([]mem.Access, shardSize)
			filled := 0
			done := false
			for filled < shardSize {
				n, err := r.Read(accs[filled:])
				filled += n
				if err == io.EOF {
					done = true
					break
				}
				if err != nil {
					readErr = err
					done = true
					break
				}
			}
			if filled > 0 {
				out := make(chan *shardResult, 1)
				pending <- out
				jobs <- job{accs: accs[:filled], start: start, out: out}
				start += uint64(filled)
			}
			if done {
				return
			}
		}
	}()

	m := newMerger(opt.Attribution)
	for out := range pending {
		m.merge(<-out)
	}
	wg.Wait()
	if readErr != nil {
		return nil, readErr
	}
	return m.finish(), nil
}
