package exact

import (
	"io"
	"runtime"
	"sync"

	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// This file parallelizes Olken's algorithm across contiguous trace
// shards without giving up exactness. The decomposition:
//
//   - A reuse whose use and reuse both fall in the same shard has every
//     intervening access inside that shard too (the shard is a
//     contiguous time window), so a per-shard Olken over only the
//     shard's own accesses measures it exactly. Workers do this in
//     parallel.
//   - A reuse that crosses a shard boundary is resolved when the two
//     windows containing its use and its reuse are combined. Each
//     worker reports, per distinct block it touched, the first and last
//     access (time and PC) — its "boundary records", in first-touch
//     order. Combining two adjacent windows A·B resolves every reuse
//     whose use is A's last access of a block and whose reuse is B's
//     first: for B's record of block b first touched at time t with A's
//     last access of b at p, the distinct blocks accessed in (p, t)
//     split into (a) blocks touched earlier in B — exactly the B
//     records already processed — and (b) blocks untouched in B before
//     t whose last access in A exceeds p: a CountGreater over A's
//     last-access times after evicting the already-processed blocks'
//     stale keys. The distance is (a) + (b); every intervening access
//     lies inside A·B, so the value is final and bit-exact with the
//     sequential algorithm no matter what surrounds the pair.
//
// The combine is an associative monoid over contiguous windows (a
// combined window's boundary records are again first/last records), so
// the shards reduce in a parallel pairwise tree instead of a
// single-threaded left fold; blocks still unresolved at the root are
// the trace's true cold misses. Histogram and attribution merges only
// ever add unit-weight integer observations, so the result is identical
// (not just statistically equivalent) to Measure's, independent of
// worker count, shard size, and reduction-tree shape.

// DefaultShardSize is the default number of accesses per parallel
// shard: large enough that the O(shard log shard) local work dwarfs the
// O(distinct) merge work, small enough to bound in-flight memory
// (1M accesses × 16 B × ~workers in flight).
const DefaultShardSize = 1 << 20

// ParallelOptions tunes MeasureParallel.
type ParallelOptions struct {
	// Workers is the worker-pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// ShardSize is the number of accesses per shard; <= 0 selects
	// DefaultShardSize. The result does not depend on it.
	ShardSize int
	// Attribution enables exact per-code-pair aggregation.
	Attribution bool
}

// ParallelResult is the merged outcome of a sharded exact measurement.
// It exposes the same observers as the sequential Profiler and holds
// identical histograms.
type ParallelResult struct {
	distHist *histogram.Histogram
	timeHist *histogram.Histogram
	accesses uint64
	distinct uint64
	state    uint64
	pairs    map[PairKey]*PairAgg
}

// ReuseDistance returns the exact reuse-distance histogram.
func (r *ParallelResult) ReuseDistance() *histogram.Histogram { return r.distHist }

// ReuseTime returns the exact reuse-time histogram.
func (r *ParallelResult) ReuseTime() *histogram.Histogram { return r.timeHist }

// Accesses returns the number of observed accesses.
func (r *ParallelResult) Accesses() uint64 { return r.accesses }

// DistinctBlocks returns the number of distinct blocks seen.
func (r *ParallelResult) DistinctBlocks() uint64 { return r.distinct }

// StateBytes approximates the heap state a sequential measurement of the
// same trace would hold (merge tree of one key per distinct block plus
// the last-access map model the sequential Profiler uses).
func (r *ParallelResult) StateBytes() uint64 { return r.state }

// Pairs returns the exact per-code-pair aggregation (nil unless
// ParallelOptions.Attribution was set).
func (r *ParallelResult) Pairs() map[PairKey]*PairAgg { return r.pairs }

// blockBoundary is one distinct block's first and last access within a
// shard, in global timestamps (1-based, as the sequential clock assigns
// them).
type blockBoundary struct {
	block     mem.Addr
	firstTime uint64
	lastTime  uint64
	firstPC   mem.Addr
	lastPC    mem.Addr
}

// shardResult is one worker's output for one contiguous shard.
type shardResult struct {
	accesses uint64
	dist     *histogram.Histogram // intra-shard reuses only
	time     *histogram.Histogram
	pairs    map[PairKey]*PairAgg // intra-shard pairs (nil without attribution)
	blocks   []blockBoundary      // distinct blocks, in first-touch order
}

// measureShard runs local Olken over one shard. startTime is the global
// timestamp of the access before accs[0] (i.e. accs[k] executes at
// startTime+k+1), so boundary records carry globally comparable times.
func measureShard(accs []mem.Access, startTime uint64, g mem.Granularity, attrib bool) *shardResult {
	sr := &shardResult{
		accesses: uint64(len(accs)),
		dist:     histogram.New(),
		time:     histogram.New(),
	}
	if attrib {
		sr.pairs = make(map[PairKey]*PairAgg)
	}
	idx := make(map[mem.Addr]int32)
	tree := newOSList()
	for k := range accs {
		a := &accs[k]
		t := startTime + uint64(k) + 1
		b := g.Block(a.Addr)
		if bi, ok := idx[b]; ok {
			rec := &sr.blocks[bi]
			d, _ := tree.CountGreaterAndDelete(rec.lastTime)
			sr.dist.Add(d, 1)
			sr.time.Add(t-rec.lastTime, 1)
			if attrib {
				key := PairKey{UsePC: rec.lastPC, ReusePC: a.PC}
				agg := sr.pairs[key]
				if agg == nil {
					agg = &PairAgg{}
					sr.pairs[key] = agg
				}
				agg.Count++
				agg.DistSum += float64(d)
			}
			rec.lastTime, rec.lastPC = t, a.PC
		} else {
			// First touch within the shard: cold here, but possibly a
			// cross-shard reuse globally — the merge decides, so no
			// histogram entry yet.
			idx[b] = int32(len(sr.blocks))
			sr.blocks = append(sr.blocks, blockBoundary{
				block: b, firstTime: t, lastTime: t, firstPC: a.PC, lastPC: a.PC,
			})
		}
		tree.InsertMax(t)
	}
	return sr
}

// addShardPair bumps one code pair's exact aggregation.
func addShardPair(pairs map[PairKey]*PairAgg, key PairKey, dist uint64) {
	agg := pairs[key]
	if agg == nil {
		agg = &PairAgg{}
		pairs[key] = agg
	}
	agg.Count++
	agg.DistSum += float64(dist)
}

// combineShards merges two adjacent contiguous windows A·B into one,
// resolving every reuse whose use is in A and reuse in B (see the
// package comment's decomposition). It is destructive: the merged
// window lives in a, and b must not be used afterwards. The operation
// is associative, which is what licenses the parallel reduction tree.
func combineShards(a, b *shardResult, attrib bool) *shardResult {
	a.accesses += b.accesses
	a.dist.AddHistogram(b.dist)
	a.time.AddHistogram(b.time)
	for key, agg := range b.pairs {
		g := a.pairs[key]
		if g == nil {
			g = &PairAgg{}
			a.pairs[key] = g
		}
		g.Count += agg.Count
		g.DistSum += agg.DistSum
	}

	// A's last-access times, one tree key per block; B's records evict
	// their block's stale key as they resolve against it.
	idx := make(map[mem.Addr]int32, len(a.blocks))
	tree := newOrderTreap(1)
	for i := range a.blocks {
		idx[a.blocks[i].block] = int32(i)
		tree.Insert(a.blocks[i].lastTime)
	}
	// Resolve B's first touches in first-touch order. `removed` counts
	// B records already processed: each was accessed in B before the
	// current first touch, hence inside any A→B reuse window ending
	// here.
	removed := 0
	for i := range b.blocks {
		rec := &b.blocks[i]
		if ai, ok := idx[rec.block]; ok {
			arec := &a.blocks[ai]
			d := uint64(removed) + tree.CountGreater(arec.lastTime)
			a.dist.Add(d, 1)
			a.time.Add(rec.firstTime-arec.lastTime, 1)
			if attrib {
				addShardPair(a.pairs, PairKey{UsePC: arec.lastPC, ReusePC: rec.firstPC}, d)
			}
			tree.Delete(arec.lastTime)
			// The block's window-wide last access is now B's.
			arec.lastTime, arec.lastPC = rec.lastTime, rec.lastPC
		} else {
			// First touch across A·B: stays a boundary record of the
			// combined window (firstTime/firstPC are B's, still correct).
			a.blocks = append(a.blocks, *rec)
		}
		removed++
	}
	return a
}

// reduceShards folds ordered shard results into one window via a
// parallel pairwise reduction tree, bounded by `workers` concurrent
// combines. Associativity makes the tree shape invisible in the result.
func reduceShards(shards []*shardResult, workers int, attrib bool) *shardResult {
	if len(shards) == 0 {
		sr := &shardResult{dist: histogram.New(), time: histogram.New()}
		if attrib {
			sr.pairs = make(map[PairKey]*PairAgg)
		}
		return sr
	}
	sem := make(chan struct{}, workers)
	var reduce func(lo, hi int) *shardResult
	reduce = func(lo, hi int) *shardResult {
		if hi-lo == 1 {
			return shards[lo]
		}
		mid := (lo + hi) / 2
		select {
		case sem <- struct{}{}:
			// A worker slot is free: reduce the left half concurrently.
			ch := make(chan *shardResult, 1)
			go func() {
				left := reduce(lo, mid)
				<-sem
				ch <- left
			}()
			right := reduce(mid, hi)
			return combineShards(<-ch, right, attrib)
		default:
			return combineShards(reduce(lo, mid), reduce(mid, hi), attrib)
		}
	}
	return reduce(0, len(shards))
}

// finishShards turns the reduction root into the external result: every
// block still unresolved at the root is a true cold miss of the whole
// trace.
func finishShards(root *shardResult) *ParallelResult {
	res := &ParallelResult{
		distHist: root.dist,
		timeHist: root.time,
		accesses: root.accesses,
		distinct: uint64(len(root.blocks)),
		pairs:    root.pairs,
	}
	for range root.blocks {
		res.distHist.Add(histogram.Infinite, 1)
		res.timeHist.Add(histogram.Infinite, 1)
	}
	// State model, as the sequential merge held it: one order-tree key
	// (24-byte treap node + 4-byte free-list slot) plus one last-use map
	// entry per distinct block.
	const mapEntryBytes = 56 // as Profiler.StateBytes models map[Addr]lastUse
	const treeKeyBytes = 28
	res.state = uint64(len(root.blocks)) * (mapEntryBytes + treeKeyBytes)
	return res
}

// MeasureParallel measures a stream exhaustively like Measure, but
// fanned out over contiguous trace shards on a bounded worker pool,
// with cross-shard reuses resolved by a parallel pairwise reduction
// over the shard results. The histograms, pair aggregation and counters
// are identical to the sequential measurement for any worker count and
// shard size. Boundary records for all shards are held until the
// reduction, so peak memory is O(sum of per-shard distinct blocks) —
// the price of a parallel (rather than streaming left-fold) merge.
func MeasureParallel(r trace.Reader, g mem.Granularity, opt ParallelOptions) (*ParallelResult, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	shardSize := opt.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}

	type job struct {
		accs  []mem.Access
		start uint64
		out   chan *shardResult
	}
	jobs := make(chan job, workers)
	// pending preserves shard order; its capacity (plus the jobs buffer)
	// bounds in-flight shard memory.
	pending := make(chan chan *shardResult, workers+1)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for jb := range jobs {
				jb.out <- measureShard(jb.accs, jb.start, g, opt.Attribution)
			}
		}()
	}

	var readErr error
	go func() {
		defer close(pending)
		defer close(jobs)
		var start uint64
		for {
			accs := make([]mem.Access, shardSize)
			filled := 0
			done := false
			for filled < shardSize {
				n, err := r.Read(accs[filled:])
				filled += n
				if err == io.EOF {
					done = true
					break
				}
				if err != nil {
					readErr = err
					done = true
					break
				}
			}
			if filled > 0 {
				out := make(chan *shardResult, 1)
				pending <- out
				jobs <- job{accs: accs[:filled], start: start, out: out}
				start += uint64(filled)
			}
			if done {
				return
			}
		}
	}()

	shards := make([]*shardResult, 0, workers+1)
	for out := range pending {
		shards = append(shards, <-out)
	}
	wg.Wait()
	if readErr != nil {
		return nil, readErr
	}
	return finishShards(reduceShards(shards, workers, opt.Attribution)), nil
}
