package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// T2Row is one workload's RDX accuracy (experiment T2).
type T2Row struct {
	Workload string
	Accuracy float64
	Samples  uint64
	Pairs    uint64
	Cold     uint64
}

// T2Result is experiment T2: RDX accuracy against ground truth across
// the full suite at the default configuration. The paper's claim is a
// typical accuracy above 90%.
type T2Result struct {
	Rows         []T2Row
	MeanAccuracy float64
	MinAccuracy  float64
	MinWorkload  string
}

// RunT2 profiles every workload under RDX and ground truth and compares
// the reuse-distance histograms.
func (o Options) RunT2() (*T2Result, error) {
	res := &T2Result{MinAccuracy: 1}
	var accs []float64
	for _, w := range workloads.Suite() {
		rdx, err := o.runRDX(w.Name, o.rdxConfig())
		if err != nil {
			return nil, err
		}
		gt, _, err := o.runExact(w.Name)
		if err != nil {
			return nil, err
		}
		acc := accuracyOf(rdx, gt)
		res.Rows = append(res.Rows, T2Row{
			Workload: w.Name,
			Accuracy: acc,
			Samples:  rdx.Samples,
			Pairs:    rdx.ReusePairs,
			Cold:     rdx.ColdSamples,
		})
		accs = append(accs, acc)
		if acc < res.MinAccuracy {
			res.MinAccuracy = acc
			res.MinWorkload = w.Name
		}
	}
	res.MeanAccuracy = stats.Mean(accs)

	tb := report.NewTable("T2: RDX reuse-distance accuracy vs ground truth",
		"workload", "accuracy", "samples", "reuse pairs", "cold")
	for _, r := range res.Rows {
		tb.AddRow(r.Workload, r.Accuracy, r.Samples, r.Pairs, r.Cold)
	}
	tb.AddRow("mean", res.MeanAccuracy, "", "", "")
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// F3Result is experiment F3: side-by-side RDX vs ground-truth histograms
// for the representative workloads (the paper's overlay figures).
type F3Result struct {
	Workloads  []string
	Accuracies []float64
}

// RunF3 renders paired histograms for the representative workloads.
func (o Options) RunF3() (*F3Result, error) {
	res := &F3Result{}
	for _, name := range representative {
		rdx, err := o.runRDX(name, o.rdxConfig())
		if err != nil {
			return nil, err
		}
		gt, _, err := o.runExact(name)
		if err != nil {
			return nil, err
		}
		acc := accuracyOf(rdx, gt)
		res.Workloads = append(res.Workloads, name)
		res.Accuracies = append(res.Accuracies, acc)
		fmt.Fprintf(o.out(), "== F3: %s (accuracy %.4f) ==\n--- ground truth ---\n%s--- RDX ---\n%s\n",
			name, acc, gt.ReuseDistance(), rdx.ReuseDistance)
	}
	return res, nil
}

// F6Point is one (period, accuracy, overhead) measurement.
type F6Point struct {
	Workload  string
	Period    uint64
	Accuracy  float64
	Overhead  float64
	Samples   uint64
	ReusePair uint64
}

// F6Result is experiment F6: accuracy and overhead as the sampling
// period sweeps from aggressive to featherlight. Accuracy should degrade
// gracefully as the period grows while overhead falls.
type F6Result struct {
	Points []F6Point
}

// F6Periods returns the sweep's sampling periods, scaled around the
// option's base period.
func (o Options) F6Periods() []uint64 {
	base := o.Period
	return []uint64{base / 8, base / 4, base / 2, base, base * 2, base * 4, base * 8}
}

// RunF6 sweeps the sampling period on the representative workloads.
func (o Options) RunF6() (*F6Result, error) {
	res := &F6Result{}
	tb := report.NewTable("F6: sampling-period sensitivity",
		"workload", "period", "accuracy", "time ovh %", "samples")
	for _, name := range representative {
		gt, _, err := o.runExact(name)
		if err != nil {
			return nil, err
		}
		for _, period := range o.F6Periods() {
			if period == 0 {
				continue
			}
			cfg := o.rdxConfig()
			cfg.SamplePeriod = period
			rdx, err := o.runRDX(name, cfg)
			if err != nil {
				return nil, err
			}
			pt := F6Point{
				Workload:  name,
				Period:    period,
				Accuracy:  accuracyOf(rdx, gt),
				Overhead:  rdx.TimeOverhead(),
				Samples:   rdx.Samples,
				ReusePair: rdx.ReusePairs,
			}
			res.Points = append(res.Points, pt)
			tb.AddRow(name, period, pt.Accuracy, 100*pt.Overhead, pt.Samples)
		}
	}
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// F7Point is one (watchpoints, accuracy) measurement.
type F7Point struct {
	Workload    string
	Watchpoints int
	Accuracy    float64
	Pairs       uint64
	Dropped     uint64
}

// F7Result is experiment F7: sensitivity to the number of hardware debug
// registers. More registers keep more concurrent samples alive, raising
// the number of completed reuse pairs at the same period; x86's 4 should
// sit near the knee.
type F7Result struct {
	Points []F7Point
}

// RunF7 sweeps the debug-register count on the representative workloads.
func (o Options) RunF7() (*F7Result, error) {
	res := &F7Result{}
	tb := report.NewTable("F7: debug-register-count sensitivity",
		"workload", "watchpoints", "accuracy", "reuse pairs", "dropped")
	for _, name := range representative {
		gt, _, err := o.runExact(name)
		if err != nil {
			return nil, err
		}
		for _, nwp := range []int{1, 2, 4, 8} {
			cfg := o.rdxConfig()
			cfg.NumWatchpoints = nwp
			rdx, err := o.runRDX(name, cfg)
			if err != nil {
				return nil, err
			}
			pt := F7Point{
				Workload:    name,
				Watchpoints: nwp,
				Accuracy:    accuracyOf(rdx, gt),
				Pairs:       rdx.ReusePairs,
				Dropped:     rdx.Dropped,
			}
			res.Points = append(res.Points, pt)
			tb.AddRow(name, nwp, pt.Accuracy, pt.Pairs, pt.Dropped)
		}
	}
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// meanAccuracyByConfig is a helper for ablations: mean accuracy over the
// representative workloads for a config mutation.
func (o Options) meanAccuracyByConfig(mutate func(*core.Config)) (float64, error) {
	var accs []float64
	for _, name := range representative {
		gt, _, err := o.runExact(name)
		if err != nil {
			return 0, err
		}
		cfg := o.rdxConfig()
		mutate(&cfg)
		rdx, err := o.runRDX(name, cfg)
		if err != nil {
			return 0, err
		}
		accs = append(accs, accuracyOf(rdx, gt))
	}
	return stats.Mean(accs), nil
}
