package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/window"
)

// driftWindowsPerPhase is how many observation windows each injected
// phase spans: long enough that the detector sees several stationary
// windows between boundaries, short enough that the experiment stays a
// smoke test.
const driftWindowsPerPhase = 4

// driftDetectLatency is how many windows after an injected boundary a
// drift flag still counts as detecting it. The slack is measurement
// physics, not detector tuning: a reuse is recorded when its watchpoint
// traps, so a new phase's locality shows up only as its reuses resolve
// — for a phase whose mean reuse time spans a window or two, the first
// post-boundary windows carry mostly the old phase's late trap arrivals.
const driftDetectLatency = 2

// DriftResult is the DRIFT experiment: phase-change detection on a
// workload with injected locality shifts, gated against a stationary
// control.
type DriftResult struct {
	// Windows is how many windows the phased run produced.
	Windows int
	// Boundaries are the window indices where a new phase begins.
	Boundaries []int
	// Flagged are the window indices the detector scored as drift.
	Flagged []int
	// Missed are injected boundaries no flag landed within
	// driftDetectLatency windows of; detection requires it empty.
	Missed []int
	// Spurious are flags not attributable to any boundary (false
	// positives inside a stationary phase); precision requires it empty.
	Spurious []int
	// ControlFlags is how many windows drifted on the stationary
	// control run; the zero-false-positive gate requires 0.
	ControlFlags int
}

// RunDrift drives the windowed profiler over a four-phase workload with
// three injected locality shifts — a cache-resident cyclic sweep, a
// random scan over a 64x larger footprint, the cyclic sweep again, and
// a Zipf-skewed phase — and checks the drift detector under its
// defaults: every boundary flagged within driftDetectLatency windows,
// no flags elsewhere, and zero flags on an equally long stationary
// Zipf control. This is the check.sh gate for the continuous-profiling
// path (Session.Watch, rdxd watch alerts), which runs the identical
// Collector.
func (o Options) RunDrift() (*DriftResult, error) {
	// Fixed internal operating point: each phase spans
	// driftWindowsPerPhase windows, and the sampling period is tied to
	// the window so every window averages ~1024 samples — well past the
	// detector's 64-sample evidence floor regardless of the caller's
	// -n/-period. Density matters for the zero-false-positive gate: at a
	// few hundred samples a stationary workload's per-window histograms
	// jitter enough to read as shape distance.
	// The phase floor keeps the density real even under Quick sizing:
	// at 256K accesses per phase the period bottoms out at 64 with the
	// full 1024 samples per window. Below that the working-set quantile
	// of a stochastic phase jitters across power-of-two bucket edges,
	// which the shift threshold reads as drift.
	phase := o.Accesses / 4
	if phase < 256<<10 {
		phase = 256 << 10
	}
	win := phase / driftWindowsPerPhase
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	cfg.SamplePeriod = max(64, win/1024)

	// Disjoint address bases per phase: a block shared across phases
	// can carry a watchpoint armed in one phase into the next, whose
	// huge cross-phase reuse distance would bleed into the new phase's
	// working set and blur the injected boundary.
	// Each stochastic footprint is kept well under the window (mean
	// reuse time a few percent of it) so a phase entered at a boundary
	// resolves its reuses inside the first post-boundary window — the
	// working-set jump lands in one step instead of creeping bucket by
	// bucket under watchpoint latency.
	phased := trace.Concat(
		trace.Cyclic(0, 16, phase),
		trace.RandomUniform(o.Seed+1, 1<<30, 1<<10, phase),
		trace.Cyclic(2<<30, 16, phase),
		trace.ZipfAccess(o.Seed+2, 3<<30, 1<<14, 1.0, phase),
	)
	// The control's footprint is chosen so its measured working-set
	// quantile sits inside a power-of-two bucket rather than on an
	// edge; a quantile on an edge flips buckets under sampling jitter,
	// which is working-set noise, not locality drift.
	control := trace.ZipfAccess(o.Seed+3, 0, 1<<14, 1.0, 4*phase)

	run := func(r trace.Reader) (*window.Collector, error) {
		p, err := core.NewProfiler(cfg)
		if err != nil {
			return nil, err
		}
		col := window.NewCollector(cfg.Granularity.BlockSize(), 4*driftWindowsPerPhase, window.DriftOptions{})
		_, err = p.RunWindowedContext(context.Background(), r, cpumodel.Default(), win, func(s *core.Result) {
			col.Observe(s.Accesses, s.Samples, s.ReuseDistance, s.ReuseTime)
		})
		if err != nil {
			return nil, err
		}
		return col, nil
	}

	col, err := run(phased)
	if err != nil {
		return nil, err
	}
	res := &DriftResult{
		Windows:    col.Produced(),
		Boundaries: []int{driftWindowsPerPhase, 2 * driftWindowsPerPhase, 3 * driftWindowsPerPhase},
	}
	for _, w := range col.Windows() {
		if w.Score != nil && w.Score.Drift {
			res.Flagged = append(res.Flagged, w.Index)
		}
	}
	detects := func(b int) bool {
		for _, f := range res.Flagged {
			if f >= b && f <= b+driftDetectLatency {
				return true
			}
		}
		return false
	}
	for _, b := range res.Boundaries {
		if !detects(b) {
			res.Missed = append(res.Missed, b)
		}
	}
	for _, f := range res.Flagged {
		near := false
		for _, b := range res.Boundaries {
			if f >= b && f <= b+driftDetectLatency {
				near = true
				break
			}
		}
		if !near {
			res.Spurious = append(res.Spurious, f)
		}
	}

	ctl, err := run(control)
	if err != nil {
		return nil, err
	}
	res.ControlFlags = ctl.Drifts()

	tb := report.NewTable("DRIFT: phase-change detection on injected locality shifts",
		"signal", "value", "gate")
	tb.AddRow("windows (phased run)", res.Windows, "")
	tb.AddRow("injected boundaries", fmt.Sprint(res.Boundaries), "")
	tb.AddRow("flagged windows", fmt.Sprint(res.Flagged), fmt.Sprintf("each boundary within +%d", driftDetectLatency))
	tb.AddRow("missed boundaries", fmt.Sprint(res.Missed), "must be []")
	tb.AddRow("spurious flags", fmt.Sprint(res.Spurious), "must be []")
	tb.AddRow("control flags (stationary)", res.ControlFlags, "must be 0")
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}

	if len(res.Missed) > 0 {
		return res, fmt.Errorf("experiments: DRIFT missed injected phase changes at windows %v (flagged %v)", res.Missed, res.Flagged)
	}
	if len(res.Spurious) > 0 {
		return res, fmt.Errorf("experiments: DRIFT flagged stationary windows %v (boundaries %v)", res.Spurious, res.Boundaries)
	}
	if res.ControlFlags > 0 {
		return res, fmt.Errorf("experiments: DRIFT flagged %d windows on the stationary control", res.ControlFlags)
	}
	return res, nil
}
