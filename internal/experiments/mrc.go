package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cache"
	"repro/internal/exact"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/mrc"
	"repro/internal/report"
)

// mrcWorkloads are the canonical differential pair: pointer-chasing
// (mcf) and streaming (lbm) stress opposite ends of the curve — a broad
// reuse spectrum vs an almost-pure cold stream.
var mrcWorkloads = []string{"mcf", "lbm"}

// mrcCapacities are the fully-associative differential sizes, in lines.
var mrcCapacities = []uint64{64, 256, 1024, 4096}

// mrcHierarchy is the scaled three-level configuration the hierarchy
// differential runs against; small enough that the canonical workloads
// exercise every level at experiment run lengths.
func mrcHierarchy() []cache.LevelSpec {
	return []cache.LevelSpec{
		{Name: "L1", Config: cache.Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4}},
		{Name: "L2", Config: cache.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8}},
		{Name: "L3", Config: cache.Config{SizeBytes: 512 << 10, LineBytes: 64, Ways: 0}},
	}
}

// MRCRow is one (workload, capacity) curve-vs-simulation measurement.
type MRCRow struct {
	Workload  string
	Lines     uint64
	Predicted float64
	Simulated float64
	AbsErr    float64
}

// MRCHierRow is one hierarchy level's predicted vs simulated global
// miss ratio.
type MRCHierRow struct {
	Workload  string
	Level     string
	Predicted float64
	Simulated float64
	AbsErr    float64
	// Skipped marks a level whose simulated arrival fraction is too
	// small for its ratio to be meaningful.
	Skipped bool
}

// MRCResult is experiment MRC: the miss-ratio-curve and hierarchy
// models differentially validated against cache simulation on the
// canonical workloads, plus curve-construction throughput. The gate is
// the committed tolerances exported by internal/mrc.
type MRCResult struct {
	Rows        []MRCRow
	HierRows    []MRCHierRow
	MaxCurveErr float64
	MaxHierErr  float64
	// CurvesPerSec is FromHistogram construction throughput on the
	// measured histograms.
	CurvesPerSec float64
}

// RunMRC measures exact line-granularity reuse distances for the
// canonical workloads, then holds the analytical models against real
// cache simulation: the fully-associative curve at each capacity
// (within mrc.TolFullyAssoc) and the three-level hierarchy's global
// miss ratios (within mrc.TolHierarchy). It fails — and with it the
// scripts/check.sh gate — if any differential exceeds its committed
// tolerance.
func (o Options) RunMRC() (*MRCResult, error) {
	res := &MRCResult{}
	var hists []*histogram.Histogram

	tb := report.NewTable("MRC: miss-ratio curve vs cache simulation",
		"workload", "lines", "predicted", "simulated", "abs err")
	for _, name := range mrcWorkloads {
		stream, err := o.buildWorkload(name)
		if err != nil {
			return nil, err
		}
		gt, err := exact.Measure(stream, mem.LineGranularity)
		if err != nil {
			return nil, err
		}
		rd := gt.ReuseDistance()
		hists = append(hists, rd)
		curve := mrc.FromHistogram(rd, 64, mrc.Sweep{})
		for _, lines := range mrcCapacities {
			stream, err := o.buildWorkload(name)
			if err != nil {
				return nil, err
			}
			sim, err := cache.Simulate(stream, cache.Config{
				SizeBytes: lines * 64, LineBytes: 64, Ways: 0,
			})
			if err != nil {
				return nil, err
			}
			row := MRCRow{
				Workload:  name,
				Lines:     lines,
				Predicted: curve.At(lines),
				Simulated: sim,
			}
			row.AbsErr = math.Abs(row.Predicted - row.Simulated)
			res.Rows = append(res.Rows, row)
			res.MaxCurveErr = math.Max(res.MaxCurveErr, row.AbsErr)
			tb.AddRow(row.Workload, row.Lines, row.Predicted, row.Simulated, row.AbsErr)
		}

		specs := mrcHierarchy()
		pred, err := mrc.PredictLevels(rd, specs, 64)
		if err != nil {
			return nil, err
		}
		stream, err = o.buildWorkload(name)
		if err != nil {
			return nil, err
		}
		simLocals, err := cache.SimulateHierarchy(stream, specs)
		if err != nil {
			return nil, err
		}
		// Compare global ratios; a level only a sliver of the stream
		// reaches has a noisy simulated local ratio, so it is reported
		// but not gated.
		simReach := 1.0
		for i, spec := range specs {
			simGlobal := simReach * simLocals[i]
			row := MRCHierRow{
				Workload:  name,
				Level:     spec.Name,
				Predicted: pred.Levels[i].Global,
				Simulated: simGlobal,
				Skipped:   simReach < 0.02,
			}
			row.AbsErr = math.Abs(row.Predicted - row.Simulated)
			res.HierRows = append(res.HierRows, row)
			if !row.Skipped {
				res.MaxHierErr = math.Max(res.MaxHierErr, row.AbsErr)
			}
			simReach = simGlobal
		}
	}
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}

	htb := report.NewTable("MRC: hierarchy global miss ratios vs simulation",
		"workload", "level", "predicted", "simulated", "abs err", "gated")
	for _, r := range res.HierRows {
		gated := "yes"
		if r.Skipped {
			gated = "no (arrival < 2%)"
		}
		htb.AddRow(r.Workload, r.Level, r.Predicted, r.Simulated, r.AbsErr, gated)
	}
	if err := htb.WriteText(o.out()); err != nil {
		return nil, err
	}

	res.CurvesPerSec = curveThroughput(hists)
	fmt.Fprintf(o.out(), "max curve err %.4f (tol %.2f), max hierarchy err %.4f (tol %.2f), %.0f curves/sec\n",
		res.MaxCurveErr, mrc.TolFullyAssoc, res.MaxHierErr, mrc.TolHierarchy, res.CurvesPerSec)

	if res.MaxCurveErr > mrc.TolFullyAssoc {
		return res, fmt.Errorf("experiments: MRC curve error %.4f exceeds tolerance %.2f",
			res.MaxCurveErr, mrc.TolFullyAssoc)
	}
	if res.MaxHierErr > mrc.TolHierarchy {
		return res, fmt.Errorf("experiments: MRC hierarchy error %.4f exceeds tolerance %.2f",
			res.MaxHierErr, mrc.TolHierarchy)
	}
	return res, nil
}

// curveThroughput measures FromHistogram constructions per second over
// the given histograms (round-robin), timed over at least 100ms.
func curveThroughput(hists []*histogram.Histogram) float64 {
	if len(hists) == 0 {
		return 0
	}
	sweep := mrc.Sweep{}
	start := time.Now()
	n := 0
	for time.Since(start) < 100*time.Millisecond {
		for range 16 {
			mrc.FromHistogram(hists[n%len(hists)], 64, sweep)
			n++
		}
	}
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(n) / el
}
