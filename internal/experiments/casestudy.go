package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
)

// C1Result is the attribution case study: the paper-style "actionable
// output" demonstration. A naive N×N matrix multiply reuses B[k][j]
// column-wise with a reuse distance of roughly the whole matrix; tiling
// the loops collapses that pair's distance by orders of magnitude. RDX
// must localize the problem to the B-load site pair and show the
// collapse — all from sampling, with no instrumentation.
type C1Result struct {
	// NaiveBMean and BlockedBMean are the mean reuse distances RDX
	// attributes to the B-load→B-load pair in each variant.
	NaiveBMean   float64
	BlockedBMean float64
	// Improvement is NaiveBMean / BlockedBMean.
	Improvement float64
	// NaiveWorstIsB reports whether the B-load pair tops the naive
	// variant's worst-locality ranking (the tool pointing at the right
	// line of code).
	NaiveWorstIsB bool
}

// matmulPCBase is the fake code address of the multiply kernel; site
// offsets follow trace.MatMulBlocked (0: A load, 1: B load, 2: C load,
// 3: C store).
const matmulPCBase = mem.Addr(0x770000)

// bLoadPair is the B-load→B-load use-reuse pair.
var bLoadPair = core.PairKey{UsePC: matmulPCBase + 1, ReusePC: matmulPCBase + 1}

// RunC1 profiles naive and blocked matrix multiplies and compares the
// attribution of the B-load site.
func (o Options) RunC1() (*C1Result, error) {
	const matN = 256 // 256x256 : 67M accesses full, enough per variant
	profile := func(bs int) (*core.Result, error) {
		cfg := o.rdxConfig()
		// The kernel is a fixed 4·N³ accesses; sample densely enough for
		// stable per-pair statistics regardless of the global options.
		cfg.SamplePeriod = 2 << 10
		p, err := core.NewProfiler(cfg)
		if err != nil {
			return nil, err
		}
		r := trace.Tag(matmulPCBase, trace.MatMulBlocked(0, matN, bs))
		return p.Run(r, cpumodel.Default())
	}

	naive, err := profile(matN) // bs == n: no tiling
	if err != nil {
		return nil, err
	}
	blocked, err := profile(32)
	if err != nil {
		return nil, err
	}

	res := &C1Result{}
	find := func(a core.Attribution) float64 {
		for _, p := range a {
			if p.Pair == bLoadPair {
				return p.MeanDistance
			}
		}
		return 0
	}
	res.NaiveBMean = find(naive.Attribution)
	res.BlockedBMean = find(blocked.Attribution)
	if res.BlockedBMean > 0 {
		res.Improvement = res.NaiveBMean / res.BlockedBMean
	}
	if len(naive.Attribution) > 0 {
		// Consider pairs carrying at least 2% of the heaviest pair's
		// weight, so one-off noise pairs don't top the ranking.
		minW := naive.Attribution[0].Weight / 50
		if worst := naive.Attribution.WorstLocality(1, minW); len(worst) == 1 {
			res.NaiveWorstIsB = worst[0].Pair == bLoadPair
		}
	}

	tb := report.NewTable("C1: attribution case study — tiling a matrix multiply",
		"variant", "B-load pair mean RD", "top pairs (use→reuse: meanRD)")
	describe := func(a core.Attribution) string {
		s := ""
		for _, p := range a.WorstLocality(3, a[0].Weight/50) {
			s += fmt.Sprintf("%x→%x:%.0f ", uint64(p.Pair.UsePC), uint64(p.Pair.ReusePC), p.MeanDistance)
		}
		return s
	}
	tb.AddRow("naive (no tiling)", res.NaiveBMean, describe(naive.Attribution))
	tb.AddRow("tiled 32x32", res.BlockedBMean, describe(blocked.Attribution))
	tb.AddRow("improvement", res.Improvement, "")
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}
