package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/trace"
)

// MulticoreResult is the MULTICORE experiment's record: the GOMAXPROCS
// trajectory of the auto-picked exact oracle and of the work-stealing
// server executor, merged as tagged rows into the committed
// BENCH_engine.json and BENCH_server.json (never touching the untagged
// single-setting rows those records were created with).
//
// Honesty note: this host may have fewer physical CPUs than the
// GOMAXPROCS values swept (NumCPU records how many). CPU-bound rows
// then legitimately show ~1.0x — raising GOMAXPROCS above the physical
// core count buys nothing, and the auto-picker's EffectiveCores clamp
// is exactly what keeps it from paying shard-merge overhead for no
// gain. The rows that do speed up are the Paced/Throttled ones, where
// the win is overlapping acquisition or per-batch service latency,
// which works on any core count; they are labelled so they can never
// be mistaken for CPU-parallel scaling.
type MulticoreResult struct {
	Timestamp string           `json:"timestamp"`
	NumCPU    int              `json:"num_cpu"`
	Engine    []EngineBenchRow `json:"engine"`
	Server    []ServerBenchRow `json:"server"`
}

// multicoreStepDelay is the per-batch service latency of the throttled
// server rows: large enough to dominate a single session's run (so
// overlap across sessions is measurable), small enough that a row
// finishes in about a second.
const multicoreStepDelay = 2 * time.Millisecond

// pacedReader throttles an underlying reader to a fixed access rate,
// modelling an on-demand acquisition source (a profiled process being
// sampled, a device read): each delivered chunk accrues sleep debt at
// the source's rate, paid whenever it reaches pacedSleepQuantum.
// Deliberately NOT an absolute-deadline pacer: an on-demand source
// does not produce while the consumer computes, which is exactly the
// serialization the sharded pipeline exists to break. The debt is
// reduced by the time actually slept, so sleep overshoot self-corrects
// instead of accumulating — without the quantum, a consumer reading in
// small chunks would pay per-sleep overshoot hundreds of times and
// look slower than the source rate it is being measured against.
type pacedReader struct {
	r           trace.Reader
	perAccessNs float64
	debtNs      float64
}

// pacedSleepQuantum batches pacing sleeps so per-sleep overshoot stays
// negligible against the total paced time for any consumer chunk size.
const pacedSleepQuantum = 10 * time.Millisecond

func (p *pacedReader) Read(out []mem.Access) (int, error) {
	n, err := p.r.Read(out)
	if n > 0 {
		p.debtNs += float64(n) * p.perAccessNs
		if p.debtNs >= float64(pacedSleepQuantum) {
			start := time.Now()
			time.Sleep(time.Duration(p.debtNs))
			p.debtNs -= float64(time.Since(start))
		}
	}
	return n, err
}

// RunMulticore sweeps GOMAXPROCS over the auto-picked exact oracle and
// the server executor, and merges the tagged rows into the committed
// benchmark records in o.BenchDir:
//
//   - exact-oracle-{sequential,auto}/gmp=N: CPU-bound measurement. The
//     auto row's SpeedupVsRef (vs the same-gmp sequential row) must sit
//     within noise of 1.0 whenever only one effective core exists —
//     the auto-picker chooses the sequential path by construction, so
//     the old 0.84x always-parallel regression cannot recur.
//   - exact-oracle-{sequential,auto}-paced/gmp=N (Paced): the reader is
//     paced at ~75% of the oracle's measured rate, so acquisition and
//     measurement cost about the same; the auto-picker sees IOBound
//     input, chooses the sharded pipeline, and overlaps the two for a
//     near-2x wall-clock win that works even on one core.
//   - server rows (GoMaxProcs/Workers, and Throttled variants): 1/4/16
//     sessions at constant total work on a 4-worker executor. The
//     throttled rows add a per-batch StepDelay; the executor overlaps
//     those delays across sessions, which is where 16-session scaling
//     comes from on any core count.
func (o Options) RunMulticore() (*MulticoreResult, error) {
	res := &MulticoreResult{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		NumCPU:    runtime.NumCPU(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	n := o.Accesses
	// All tagged oracle rows measure from a pre-collected slice: trace
	// generation is a constant cost shared by every variant and would
	// only dilute the sequential-vs-auto comparison. For the paced rows
	// it is load-bearing — an acquisition-bound reader must cost no CPU
	// of its own, or reader compute fights the measurement shards for
	// cores and the overlap being demonstrated disappears.
	//
	// The footprint is cache-resident (4096 blocks) rather than the
	// untagged rows' 64Ki: each shard ends with one boundary record per
	// distinct block it touched, so boundary-merge mass scales with
	// footprint, and the pipeline performs the cross-shard reduce after
	// the last shard arrives — unoverlapped with acquisition. At 64Ki
	// blocks that drain phase eats most of the pipeline's win; at 4096
	// it is negligible and the rows isolate the overlap itself.
	collected, err := trace.Collect(trace.ZipfAccess(o.Seed, 0, 1<<12, 1.0, n))
	if err != nil {
		return nil, err
	}
	paced := func(rate float64) trace.Reader {
		return &pacedReader{r: trace.FromSlice(collected), perAccessNs: 1e9 / rate}
	}
	// Shards sized so the pipeline's fill and drain (the first shard's
	// acquisition, the last shard's measurement) stay small against the
	// whole run.
	shardSize := max(1<<16, int(n/16))

	for _, gmp := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(gmp)
		seq, auto, err := timeRunPaired(
			fmt.Sprintf("exact-oracle-sequential/gmp=%d", gmp),
			fmt.Sprintf("exact-oracle-auto/gmp=%d", gmp),
			n, o.reps(),
			func() error {
				_, err := exact.Measure(trace.FromSlice(collected), mem.WordGranularity)
				return err
			},
			func() error {
				_, err := exact.MeasureAuto(trace.FromSlice(collected), mem.WordGranularity,
					exact.AutoOptions{SizeHint: n})
				return err
			})
		if err != nil {
			return nil, err
		}
		seq.GoMaxProcs, auto.GoMaxProcs = gmp, gmp
		if seq.AccessesSec > 0 {
			auto.SpeedupVsRef = auto.AccessesSec / seq.AccessesSec
		}
		res.Engine = append(res.Engine, seq, auto)

		if gmp != 4 {
			continue
		}
		// Paced pair: the source rate is calibrated from this gmp's own
		// measured sequential rate, slightly below it so the pipeline's
		// measurement keeps up with acquisition and the wall clock is
		// acquisition-bound by construction.
		rate := seq.AccessesSec * 0.75
		seqPaced, autoPaced, err := timeRunPaired(
			fmt.Sprintf("exact-oracle-sequential-paced/gmp=%d", gmp),
			fmt.Sprintf("exact-oracle-auto-paced/gmp=%d", gmp),
			n, o.reps(),
			func() error {
				_, err := exact.Measure(paced(rate), mem.WordGranularity)
				return err
			},
			func() error {
				_, err := exact.MeasureAuto(paced(rate), mem.WordGranularity, exact.AutoOptions{
					ParallelOptions: exact.ParallelOptions{ShardSize: shardSize},
					SizeHint:        n,
					IOBound:         true,
				})
				return err
			})
		if err != nil {
			return nil, err
		}
		seqPaced.GoMaxProcs, autoPaced.GoMaxProcs = gmp, gmp
		seqPaced.Paced, autoPaced.Paced = true, true
		if seqPaced.AccessesSec > 0 {
			autoPaced.SpeedupVsRef = autoPaced.AccessesSec / seqPaced.AccessesSec
		}
		res.Engine = append(res.Engine, seqPaced, autoPaced)
	}

	// Server rows at GOMAXPROCS=4 on a 4-worker executor, with and
	// without a per-batch service latency.
	runtime.GOMAXPROCS(4)
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed
	for _, throttled := range []bool{false, true} {
		scfg := server.Config{Workers: 4, Logf: func(string, ...any) {}}
		if throttled {
			scfg.StepDelay = multicoreStepDelay
		}
		s, err := server.New(scfg)
		if err != nil {
			return nil, err
		}
		s.Start()
		var group []ServerBenchRow
		for _, sessions := range []int{1, 4, 16} {
			row, err := o.measureServerRow(s.Addr(), sessions, cfg)
			if err != nil {
				s.Close()
				return nil, err
			}
			row.GoMaxProcs, row.Workers, row.Throttled = 4, 4, throttled
			if len(group) > 0 && group[0].AccessesSec > 0 {
				row.ScalingVs1 = row.AccessesSec / group[0].AccessesSec
			}
			group = append(group, row)
		}
		s.Close()
		res.Server = append(res.Server, group...)
	}
	runtime.GOMAXPROCS(prev)

	for _, r := range res.Engine {
		fmt.Fprintf(o.out(), "%-36s %12d accesses  %8.3fs  %14.0f accesses/sec  %s\n",
			r.Name, r.Accesses, r.Seconds, r.AccessesSec, speedupNote(r))
	}
	for _, r := range res.Server {
		label := fmt.Sprintf("server-%02d-sessions/gmp=%d", r.Sessions, r.GoMaxProcs)
		if r.Throttled {
			label += "+throttle"
		}
		note := ""
		if r.ScalingVs1 != 0 {
			note = fmt.Sprintf("(%.2fx vs 1 session)", r.ScalingVs1)
		}
		fmt.Fprintf(o.out(), "%-36s %12d accesses  %8.3fs  %14.0f accesses/sec  %s\n",
			label, r.Accesses, r.Seconds, r.AccessesSec, note)
	}

	if err := o.mergeMulticoreEngine(res.Engine); err != nil {
		return nil, err
	}
	if err := o.mergeMulticoreServer(res.Server); err != nil {
		return nil, err
	}
	return res, nil
}

// taggedEngineRow reports whether a row belongs to the multicore sweep
// (and so is RunMulticore's to replace). Both the field tag and the
// name suffix are checked so records written before the field existed
// still merge cleanly.
func taggedEngineRow(r EngineBenchRow) bool {
	return r.GoMaxProcs != 0 || strings.Contains(r.Name, "/gmp=")
}

// mergeMulticoreEngine replaces the tagged rows of the committed
// BENCH_engine.json with the fresh sweep, preserving the untagged
// single-setting rows (the 1-core baselines) untouched. A missing
// record gets created holding only the sweep.
func (o Options) mergeMulticoreEngine(rows []EngineBenchRow) error {
	path := filepath.Join(o.benchDir(), "BENCH_engine.json")
	res, err := ReadEngineBench(path)
	if os.IsNotExist(err) {
		res = &EngineBenchResult{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Accesses:   o.Accesses,
			Period:     o.Period,
		}
	} else if err != nil {
		return err
	}
	kept := res.Rows[:0]
	for _, r := range res.Rows {
		if !taggedEngineRow(r) {
			kept = append(kept, r)
		}
	}
	res.Rows = append(kept, rows...)
	if err := res.WriteJSON(path); err != nil {
		return err
	}
	fmt.Fprintf(o.out(), "merged %d multicore rows into %s\n", len(rows), path)
	return nil
}

// mergeMulticoreServer is mergeMulticoreEngine for BENCH_server.json:
// rows with a zero GoMaxProcs tag (the committed 1-core trajectory,
// including its baseline, pool and wire sections) are preserved.
func (o Options) mergeMulticoreServer(rows []ServerBenchRow) error {
	path := filepath.Join(o.benchDir(), "BENCH_server.json")
	res, err := ReadServerBench(path)
	if os.IsNotExist(err) {
		res = &ServerBenchResult{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			Workers:    runtime.GOMAXPROCS(0),
			Accesses:   o.Accesses,
			Period:     o.Period,
		}
	} else if err != nil {
		return err
	}
	kept := res.Rows[:0]
	for _, r := range res.Rows {
		if r.GoMaxProcs == 0 {
			kept = append(kept, r)
		}
	}
	res.Rows = append(kept, rows...)
	if err := res.WriteJSON(path); err != nil {
		return err
	}
	fmt.Fprintf(o.out(), "merged %d multicore rows into %s\n", len(rows), path)
	return nil
}
