package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/mem"
	"repro/internal/trace"
)

// benchGateRows are the rows RunBenchGate re-measures: the engine fast
// path and the sequential oracle — the two throughputs every other
// number in the trajectory is expressed against.
var benchGateRows = []string{"machine-run-batched", "exact-oracle-sequential"}

// benchGateFloorTolerance is the minimum relative slack the gate
// allows even when the committed row recorded a tight noise band:
// single-core CI boxes share their CPU with the rest of the system,
// and a gate that fires inside scheduler noise trains people to ignore
// it.
const benchGateFloorTolerance = 0.25

// gateMeasure builds the self-contained measurement closures for the
// gate rows at one operating point, shared by the gate check and the
// first-run baseline seed so both measure identical work.
func (o Options) gateMeasure(n uint64) map[string]func() error {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed
	return map[string]func() error{
		"machine-run-batched": func() error {
			p, err := core.NewProfiler(cfg)
			if err != nil {
				return err
			}
			_, err = p.Run(engineBenchStream(n), cpumodel.Default())
			return err
		},
		"exact-oracle-sequential": func() error {
			_, err := exact.Measure(trace.ZipfAccess(o.Seed, 0, 1<<16, 1.0, n), mem.WordGranularity)
			return err
		},
	}
}

// RunBenchGate is the scripts/check.sh throughput regression gate:
// re-measure the gate rows at the committed record's own operating
// point (accesses, period) and fail only when the fresh median falls
// below the committed throughput by more than the committed noise
// threshold — three times the row's recorded rep spread, floored at
// benchGateFloorTolerance. A drop inside that band is declared noise
// by construction, never a failure; the committed numbers themselves
// are only moved deliberately, via rdexper -bench-out.
//
// A missing, empty or row-less trajectory file is the first run, not a
// failure: the gate measures the rows once and commits them to path as
// the baseline, so a fresh checkout (or a wiped record) self-seeds
// instead of erroring.
func (o Options) RunBenchGate(path string) error {
	base, err := ReadEngineBench(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return o.seedBenchGate(path)
	case err != nil:
		// A present-but-empty file (a `touch`ed placeholder) also means
		// "no baseline yet"; any other parse failure is a real error.
		if data, rerr := os.ReadFile(path); rerr == nil && len(bytes.TrimSpace(data)) == 0 {
			return o.seedBenchGate(path)
		}
		return err
	case len(base.Rows) == 0:
		return o.seedBenchGate(path)
	}
	// Measure at the committed operating point so throughputs compare
	// apples-to-apples regardless of the caller's -n.
	o.Accesses = base.Accesses
	o.Period = base.Period
	n := o.Accesses
	measure := o.gateMeasure(n)

	for _, name := range benchGateRows {
		var committed *EngineBenchRow
		for i := range base.Rows {
			if base.Rows[i].Name == name {
				committed = &base.Rows[i]
				break
			}
		}
		if committed == nil || committed.AccessesSec <= 0 {
			return fmt.Errorf("%s holds no %q row to gate against", path, name)
		}
		row, err := timeRun(name, n, o.reps(), measure[name])
		if err != nil {
			return err
		}
		tol := math.Max(3*committed.Spread, benchGateFloorTolerance)
		floor := committed.AccessesSec * (1 - tol)
		fmt.Fprintf(o.out(), "%-26s %14.0f accesses/sec measured, %14.0f committed (floor %14.0f, spread %.1f%%)\n",
			name, row.AccessesSec, committed.AccessesSec, floor, 100*committed.Spread)
		if row.AccessesSec < floor {
			return fmt.Errorf("%s regressed: %.0f accesses/sec measured < %.0f floor (committed %.0f, tolerance %.0f%%) in %s",
				name, row.AccessesSec, floor, committed.AccessesSec, 100*tol, path)
		}
	}
	return nil
}

// seedBenchGate measures the gate rows at the caller's operating point
// and commits them to path as the initial trajectory record.
func (o Options) seedBenchGate(path string) error {
	n := o.Accesses
	res := &EngineBenchResult{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Accesses:   n,
		Period:     o.Period,
	}
	measure := o.gateMeasure(n)
	for _, name := range benchGateRows {
		row, err := timeRun(name, n, o.reps(), measure[name])
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, row)
		fmt.Fprintf(o.out(), "%-26s %14.0f accesses/sec (seeding baseline)\n", name, row.AccessesSec)
	}
	if err := res.WriteJSON(path); err != nil {
		return err
	}
	fmt.Fprintf(o.out(), "no committed record at %s: seeded it from this run; future gates compare against it\n", path)
	return nil
}
