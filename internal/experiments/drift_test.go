package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDriftGates: the DRIFT experiment is self-gating (it returns an
// error when a boundary is missed, a stationary window is flagged, or
// the control drifts), so the test only needs to run it and inspect the
// headline shape.
func TestDriftGates(t *testing.T) {
	res, err := Quick().RunDrift()
	if err != nil {
		t.Fatal(err)
	}
	if res.Windows != 4*driftWindowsPerPhase {
		t.Errorf("windows = %d, want %d", res.Windows, 4*driftWindowsPerPhase)
	}
	if len(res.Boundaries) != 3 || len(res.Missed) != 0 || len(res.Spurious) != 0 || res.ControlFlags != 0 {
		t.Errorf("gates: boundaries=%v missed=%v spurious=%v controlFlags=%d",
			res.Boundaries, res.Missed, res.Spurious, res.ControlFlags)
	}
	// Every boundary has at least one flag, so flags are not fewer than
	// boundaries.
	if len(res.Flagged) < len(res.Boundaries) {
		t.Errorf("flagged %v, want at least one per boundary %v", res.Flagged, res.Boundaries)
	}
}

// TestBenchGateSeedsBaseline: a missing, empty or row-less trajectory
// file is a first run — the gate must measure and commit a baseline
// instead of erroring, and the gate must then pass against what it just
// committed.
func TestBenchGateSeedsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("measures real throughput")
	}
	o := Quick()
	o.Out = nil
	// Quick-size reps finish in ~5ms each; medians of several keep the
	// seed-then-gate comparison inside the gate's 25% noise floor on a
	// shared CI box.
	o.Reps = 5

	for name, prep := range map[string]func(path string){
		"missing": func(string) {},
		"empty": func(path string) {
			if err := os.WriteFile(path, []byte("\n"), 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"zero-rows": func(path string) {
			r := &EngineBenchResult{Accesses: 1 << 18, Period: 1 << 10}
			if err := r.WriteJSON(path); err != nil {
				t.Fatal(err)
			}
		},
	} {
		path := filepath.Join(t.TempDir(), "gate.json")
		prep(path)
		if err := o.RunBenchGate(path); err != nil {
			t.Fatalf("%s file: first gate run should seed, got %v", name, err)
		}
		base, err := ReadEngineBench(path)
		if err != nil {
			t.Fatalf("%s file: reading seeded record: %v", name, err)
		}
		if len(base.Rows) != len(benchGateRows) {
			t.Fatalf("%s file: seeded %d rows, want %d", name, len(base.Rows), len(benchGateRows))
		}
		for _, row := range base.Rows {
			if row.AccessesSec <= 0 {
				t.Errorf("%s file: seeded row %q has no throughput", name, row.Name)
			}
		}
		// The second run gates against the fresh seed and must pass: the
		// same machine does not regress against itself beyond the noise
		// floor.
		if err := o.RunBenchGate(path); err != nil {
			t.Errorf("%s file: gate against own seed failed: %v", name, err)
		}
	}

	// Garbage that is neither empty nor a record stays an error.
	path := filepath.Join(t.TempDir(), "gate.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := o.RunBenchGate(path); err == nil {
		t.Error("gate seeded over an unparseable record instead of erroring")
	}
}
