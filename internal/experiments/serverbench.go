package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ServerBenchRow is one measured concurrency level of the rdxd
// streaming service over loopback TCP.
type ServerBenchRow struct {
	Sessions    int     `json:"sessions"`
	Accesses    uint64  `json:"accesses"` // total across all sessions
	Batches     uint64  `json:"batches"`  // total frames streamed
	Seconds     float64 `json:"seconds"`
	AccessesSec float64 `json:"accesses_per_sec"`
	// AllocsPerBatch is whole-process heap allocations per streamed
	// batch (client encode + framing + server decode + engine execute),
	// the allocation cost of moving one batch through the ingest
	// pipeline.
	AllocsPerBatch float64 `json:"allocs_per_batch"`
	// ScalingVs1 is this row's throughput over the single-session row.
	ScalingVs1 float64 `json:"scaling_vs_1,omitempty"`
	// VsBaseline is this row's throughput over the same row of the
	// attached baseline record (0 when no baseline row matches).
	VsBaseline float64 `json:"vs_baseline,omitempty"`
	// AllocReduction is the fractional drop in AllocsPerBatch against
	// the baseline row (0.8 = 80% fewer allocations per batch).
	AllocReduction float64 `json:"alloc_reduction,omitempty"`
	// GoMaxProcs and Workers tag rows from the multicore sweep
	// (MULTICORE); 0 marks default rows, whose record-level fields
	// apply. Rows only compare within the same tag tuple.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	Workers    int `json:"workers,omitempty"`
	// Throttled marks rows run with a per-batch StepDelay on the
	// server, modelling a fixed service latency per batch (downstream
	// I/O, checkpoint fsync): their ScalingVs1 demonstrates how the
	// executor overlaps that latency across sessions, NOT CPU-parallel
	// speedup, and must never be compared against unthrottled rows.
	Throttled bool `json:"throttled,omitempty"`
	// Reps, MinAccessesSec, MaxAccessesSec and Spread record
	// measurement variance when the row was repeated: Seconds,
	// AccessesSec and AllocsPerBatch come from the median-throughput
	// rep, Spread is (max-min)/median throughput.
	Reps           int     `json:"reps,omitempty"`
	MinAccessesSec float64 `json:"min_accesses_per_sec,omitempty"`
	MaxAccessesSec float64 `json:"max_accesses_per_sec,omitempty"`
	Spread         float64 `json:"spread,omitempty"`
}

// sameConfig reports whether two rows measure the same configuration —
// the baseline-matching key. Session count alone stopped being unique
// once the multicore sweep added GOMAXPROCS/worker/throttle variants.
func (r ServerBenchRow) sameConfig(b ServerBenchRow) bool {
	return r.Sessions == b.Sessions && r.GoMaxProcs == b.GoMaxProcs &&
		r.Workers == b.Workers && r.Throttled == b.Throttled
}

// ServerBenchResult is the machine-readable service performance record
// emitted as BENCH_server.json: end-to-end streaming throughput
// (encode, loopback TCP, decode, engine) at increasing session
// concurrency, with the worker pool as the scaling limit. Baseline,
// when present, carries the same rows measured at the commit before a
// performance change — the committed benchmark trajectory future PRs
// are held to.
type ServerBenchResult struct {
	Timestamp  string           `json:"timestamp"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Workers    int              `json:"workers"`
	Accesses   uint64           `json:"accesses"`
	Period     uint64           `json:"period"`
	Rows       []ServerBenchRow `json:"rows"`
	Baseline   []ServerBenchRow `json:"baseline,omitempty"`
	// Pool is the sharded multi-backend dispatcher's scaling record
	// (RunPoolBench): aggregate throughput at 1, 2 and 4 fixed-capacity
	// backends.
	Pool []PoolBenchRow `json:"pool,omitempty"`
	// Wire is the wire-bandwidth record (RunWireBench): bytes per
	// access and compression ratio for each workload shape under v2 row
	// framing and v3 columnar framing. The strided v3 row's
	// compression_ratio is the committed baseline scripts/check.sh
	// gates against.
	Wire []WireBenchRow `json:"wire,omitempty"`
}

// AttachBaseline records base's rows as the pre-change baseline and
// fills each current row's VsBaseline and AllocReduction from the
// baseline row with the same configuration (session count, GOMAXPROCS,
// workers, throttling).
func (r *ServerBenchResult) AttachBaseline(base *ServerBenchResult) {
	if base == nil {
		return
	}
	r.Baseline = base.Rows
	for i := range r.Rows {
		for _, b := range base.Rows {
			if !r.Rows[i].sameConfig(b) {
				continue
			}
			if b.AccessesSec > 0 {
				r.Rows[i].VsBaseline = r.Rows[i].AccessesSec / b.AccessesSec
			}
			if b.AllocsPerBatch > 0 {
				r.Rows[i].AllocReduction = 1 - r.Rows[i].AllocsPerBatch/b.AllocsPerBatch
			}
			break
		}
	}
}

// ReadServerBench loads a previously written BENCH_server.json record.
func ReadServerBench(path string) (*ServerBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ServerBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

// streamBatchSize is the per-frame batch size StreamSessions uses, and
// the divisor behind AllocsPerBatch.
const streamBatchSize = 8192

// StreamSessions drives `sessions` concurrent remote profiling runs of
// perSession accesses each against addr and returns the first error.
// Shared by RunServerBench and the root BenchmarkServerThroughput.
func StreamSessions(addr string, sessions int, perSession []mem.Access, cfg core.Config) error {
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			_, errs[i] = c.Profile(trace.FromSlice(perSession), cfg, wire.ProfileOptions{BatchSize: streamBatchSize})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// measureServerRow streams `sessions` concurrent runs (o.Accesses
// split evenly, so total work is constant across session counts)
// against addr, o.reps() times, and returns the median-throughput rep
// as a row with the variance band filled in.
func (o Options) measureServerRow(addr string, sessions int, cfg core.Config) (ServerBenchRow, error) {
	n := o.Accesses / uint64(sessions)
	accs, err := trace.Collect(trace.ZipfAccess(o.Seed, 0, 1<<14, 1.0, n))
	if err != nil {
		return ServerBenchRow{}, err
	}
	total := n * uint64(sessions)
	batchesPerSession := (n + streamBatchSize - 1) / streamBatchSize
	batches := batchesPerSession * uint64(sessions)

	type rep struct {
		seconds float64
		allocs  float64
	}
	reps := make([]rep, 0, o.reps())
	for i := 0; i < o.reps(); i++ {
		// Mallocs delta around the run gives allocations per batch for
		// the whole pipeline; a GC first keeps dead warm-up garbage from
		// inflating the count.
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		if err := StreamSessions(addr, sessions, accs, cfg); err != nil {
			return ServerBenchRow{}, fmt.Errorf("server bench (%d sessions): %w", sessions, err)
		}
		el := time.Since(start).Seconds()
		runtime.ReadMemStats(&m1)
		r := rep{seconds: el}
		if batches > 0 {
			r.allocs = float64(m1.Mallocs-m0.Mallocs) / float64(batches)
		}
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].seconds < reps[j].seconds })
	med := reps[len(reps)/2]

	row := ServerBenchRow{
		Sessions: sessions, Accesses: total, Batches: batches,
		Seconds: med.seconds, AllocsPerBatch: med.allocs,
	}
	if med.seconds > 0 {
		row.AccessesSec = float64(total) / med.seconds
	}
	if len(reps) > 1 {
		row.Reps = len(reps)
		row.MinAccessesSec = float64(total) / reps[len(reps)-1].seconds
		row.MaxAccessesSec = float64(total) / reps[0].seconds
		if row.AccessesSec > 0 {
			row.Spread = (row.MaxAccessesSec - row.MinAccessesSec) / row.AccessesSec
		}
	}
	return row, nil
}

// RunServerBench measures rdxd streaming throughput over loopback at 1,
// 4 and 16 concurrent sessions. Total work is held constant across
// rows (o.Accesses accesses split evenly), so ScalingVs1 isolates how
// well the worker pool overlaps sessions.
func (o Options) RunServerBench() (*ServerBenchResult, error) {
	workers := runtime.GOMAXPROCS(0)
	res := &ServerBenchResult{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: workers,
		Workers:    workers,
		Accesses:   o.Accesses,
		Period:     o.Period,
	}
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed

	s, err := server.New(server.Config{
		Workers: workers,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	s.Start()
	defer s.Close()

	for _, sessions := range []int{1, 4, 16} {
		row, err := o.measureServerRow(s.Addr(), sessions, cfg)
		if err != nil {
			return nil, err
		}
		if len(res.Rows) > 0 && res.Rows[0].AccessesSec > 0 {
			row.ScalingVs1 = row.AccessesSec / res.Rows[0].AccessesSec
		}
		res.Rows = append(res.Rows, row)
	}

	for _, r := range res.Rows {
		note := ""
		if r.ScalingVs1 != 0 {
			note = fmt.Sprintf("(%.2fx vs 1 session)", r.ScalingVs1)
		}
		fmt.Fprintf(o.out(), "server-%02d-sessions         %12d accesses  %8.3fs  %14.0f accesses/sec  %8.1f allocs/batch  %s\n",
			r.Sessions, r.Accesses, r.Seconds, r.AccessesSec, r.AllocsPerBatch, note)
	}
	return res, nil
}

// WriteJSON writes the benchmark record to path.
func (r *ServerBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
