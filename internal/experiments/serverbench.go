package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ServerBenchRow is one measured concurrency level of the rdxd
// streaming service over loopback TCP.
type ServerBenchRow struct {
	Sessions    int     `json:"sessions"`
	Accesses    uint64  `json:"accesses"` // total across all sessions
	Seconds     float64 `json:"seconds"`
	AccessesSec float64 `json:"accesses_per_sec"`
	// ScalingVs1 is this row's throughput over the single-session row.
	ScalingVs1 float64 `json:"scaling_vs_1,omitempty"`
}

// ServerBenchResult is the machine-readable service performance record
// emitted as BENCH_server.json: end-to-end streaming throughput
// (encode, loopback TCP, decode, engine) at increasing session
// concurrency, with the worker pool as the scaling limit.
type ServerBenchResult struct {
	Timestamp  string           `json:"timestamp"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Workers    int              `json:"workers"`
	Accesses   uint64           `json:"accesses"`
	Period     uint64           `json:"period"`
	Rows       []ServerBenchRow `json:"rows"`
}

// StreamSessions drives `sessions` concurrent remote profiling runs of
// perSession accesses each against addr and returns the first error.
// Shared by RunServerBench and the root BenchmarkServerThroughput.
func StreamSessions(addr string, sessions int, perSession []mem.Access, cfg core.Config) error {
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := wire.Dial(addr)
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			_, errs[i] = c.Profile(trace.FromSlice(perSession), cfg, wire.ProfileOptions{BatchSize: 8192})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunServerBench measures rdxd streaming throughput over loopback at 1,
// 4 and 16 concurrent sessions. Total work is held constant across
// rows (o.Accesses accesses split evenly), so ScalingVs1 isolates how
// well the worker pool overlaps sessions.
func (o Options) RunServerBench() (*ServerBenchResult, error) {
	workers := runtime.GOMAXPROCS(0)
	res := &ServerBenchResult{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: workers,
		Workers:    workers,
		Accesses:   o.Accesses,
		Period:     o.Period,
	}
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed

	s, err := server.New(server.Config{
		Workers: workers,
		Logf:    func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	s.Start()
	defer s.Close()

	for _, sessions := range []int{1, 4, 16} {
		n := o.Accesses / uint64(sessions)
		accs, err := trace.Collect(trace.ZipfAccess(o.Seed, 0, 1<<14, 1.0, n))
		if err != nil {
			return nil, err
		}
		total := n * uint64(sessions)
		start := time.Now()
		if err := StreamSessions(s.Addr(), sessions, accs, cfg); err != nil {
			return nil, fmt.Errorf("server bench (%d sessions): %w", sessions, err)
		}
		el := time.Since(start).Seconds()
		row := ServerBenchRow{Sessions: sessions, Accesses: total, Seconds: el}
		if el > 0 {
			row.AccessesSec = float64(total) / el
		}
		if len(res.Rows) > 0 && res.Rows[0].AccessesSec > 0 {
			row.ScalingVs1 = row.AccessesSec / res.Rows[0].AccessesSec
		}
		res.Rows = append(res.Rows, row)
	}

	for _, r := range res.Rows {
		note := ""
		if r.ScalingVs1 != 0 {
			note = fmt.Sprintf("(%.2fx vs 1 session)", r.ScalingVs1)
		}
		fmt.Fprintf(o.out(), "server-%02d-sessions         %12d accesses  %8.3fs  %14.0f accesses/sec  %s\n",
			r.Sessions, r.Accesses, r.Seconds, r.AccessesSec, note)
	}
	return res, nil
}

// WriteJSON writes the benchmark record to path.
func (r *ServerBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
