package experiments

import (
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// F4Row is one workload's RDX time overhead.
type F4Row struct {
	Workload    string
	OverheadPct float64
	Samples     uint64
	Traps       uint64
}

// F4Result is experiment F4: RDX's modelled time overhead across the
// suite at the default period. The paper reports ~5% typical overhead.
type F4Result struct {
	Rows        []F4Row
	GeoSlowdown float64 // geometric-mean slowdown (1.05 = 5% overhead)
	MeanPct     float64
	MaxPct      float64
	MaxWorkload string
}

// RunF4 measures RDX time overhead on every workload.
func (o Options) RunF4() (*F4Result, error) {
	res := &F4Result{}
	var slowdowns, pcts []float64
	for _, w := range workloads.Suite() {
		rdx, err := o.runRDX(w.Name, o.rdxConfig())
		if err != nil {
			return nil, err
		}
		row := F4Row{
			Workload:    w.Name,
			OverheadPct: 100 * rdx.TimeOverhead(),
			Samples:     rdx.Samples,
			Traps:       rdx.Traps,
		}
		res.Rows = append(res.Rows, row)
		slowdowns = append(slowdowns, 1+rdx.TimeOverhead())
		pcts = append(pcts, row.OverheadPct)
		if row.OverheadPct > res.MaxPct {
			res.MaxPct = row.OverheadPct
			res.MaxWorkload = w.Name
		}
	}
	res.GeoSlowdown = stats.GeoMean(slowdowns)
	res.MeanPct = stats.Mean(pcts)

	tb := report.NewTable("F4: RDX time overhead",
		"workload", "overhead %", "samples", "traps")
	for _, r := range res.Rows {
		tb.AddRow(r.Workload, r.OverheadPct, r.Samples, r.Traps)
	}
	tb.AddRow("mean", res.MeanPct, "", "")
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// F5Row is one workload's RDX memory overhead.
type F5Row struct {
	Workload    string
	AppMB       float64
	RDXMB       float64
	OverheadPct float64
}

// F5Result is experiment F5: RDX's memory overhead relative to the
// application footprint. The paper reports ~7% typical overhead —
// dominated by fixed runtime state (perf buffers), not per-sample data,
// so small-footprint programs see larger percentages.
type F5Result struct {
	Rows    []F5Row
	MeanPct float64
}

// RunF5 measures RDX memory overhead on every workload.
func (o Options) RunF5() (*F5Result, error) {
	res := &F5Result{}
	var pcts []float64
	for _, w := range workloads.Suite() {
		rdx, err := o.runRDX(w.Name, o.rdxConfig())
		if err != nil {
			return nil, err
		}
		appBytes := appFootprintBytes(w.Name)
		row := F5Row{
			Workload:    w.Name,
			AppMB:       float64(appBytes) / (1 << 20),
			RDXMB:       float64(rdx.StateBytes) / (1 << 20),
			OverheadPct: 100 * rdx.MemOverhead(appBytes),
		}
		res.Rows = append(res.Rows, row)
		pcts = append(pcts, row.OverheadPct)
	}
	res.MeanPct = stats.Mean(pcts)

	tb := report.NewTable("F5: RDX memory overhead",
		"workload", "app MiB", "RDX MiB", "overhead %")
	for _, r := range res.Rows {
		tb.AddRow(r.Workload, r.AppMB, r.RDXMB, r.OverheadPct)
	}
	tb.AddRow("mean", "", "", res.MeanPct)
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// A3Point is one cost-multiplier measurement.
type A3Point struct {
	Multiplier  float64
	RDXPct      float64 // RDX mean overhead under scaled costs
	ExactGeo    float64 // exhaustive geomean slowdown under scaled costs
	StillLight  bool    // RDX stays under 4x the base overhead
	StillHeavy  bool    // exhaustive stays >= 10x slowdown
	ShapeIntact bool    // RDX light && exhaustive heavy
}

// A3Result is ablation A3: robustness of the overhead story to the cycle
// calibration. The headline — RDX featherlight, exhaustive heavyweight —
// must survive scaling every profiling cost from ¼× to 4×.
type A3Result struct {
	Points []A3Point
}

// RunA3 sweeps the profiling-cost calibration.
func (o Options) RunA3() (*A3Result, error) {
	res := &A3Result{}
	tb := report.NewTable("A3: cost-calibration sensitivity",
		"cost x", "RDX mean ovh %", "exact geo slowdown", "shape intact")
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		costs := cpumodel.Default().Scaled(mult)
		var rdxPcts, exSlow []float64
		for _, name := range representative {
			r, err := o.buildWorkload(name)
			if err != nil {
				return nil, err
			}
			p, err := core.NewProfiler(o.rdxConfig())
			if err != nil {
				return nil, err
			}
			rr, err := p.Run(r, costs)
			if err != nil {
				return nil, err
			}
			rdxPcts = append(rdxPcts, 100*rr.TimeOverhead())

			// Recompute the exhaustive account under the scaled costs.
			_, account, err := o.runExact(name)
			if err != nil {
				return nil, err
			}
			account.Costs = costs
			exSlow = append(exSlow, account.Slowdown())
		}
		pt := A3Point{
			Multiplier: mult,
			RDXPct:     stats.Mean(rdxPcts),
			ExactGeo:   stats.GeoMean(exSlow),
		}
		pt.StillLight = pt.RDXPct < 25
		pt.StillHeavy = pt.ExactGeo >= 5
		pt.ShapeIntact = pt.StillLight && pt.StillHeavy
		res.Points = append(res.Points, pt)
		tb.AddRow(mult, pt.RDXPct, pt.ExactGeo, pt.ShapeIntact)
	}
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}
