package experiments

import (
	"strings"
	"testing"
)

// The experiment tests run at Quick() size and assert the paper's
// qualitative shape claims, not absolute numbers (see DESIGN.md).

func TestT1ExhaustiveIsHeavyweight(t *testing.T) {
	res, err := Quick().RunT1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 10 {
		t.Fatalf("T1 covered %d workloads", len(res.Rows))
	}
	if res.GeoSlowdown < 10 {
		t.Errorf("exhaustive geomean slowdown = %v, want >= 10x (orders of magnitude)", res.GeoSlowdown)
	}
	for _, r := range res.Rows {
		if r.Slowdown < 5 {
			t.Errorf("%s: exhaustive slowdown only %v", r.Workload, r.Slowdown)
		}
	}
}

func TestT2AccuracyQuickRegime(t *testing.T) {
	// At Quick's scaled-down regime (512K accesses, 1K period) samples
	// are scarce, so the bar is below the paper's >90% headline — the
	// Defaults regime run recorded in EXPERIMENTS.md carries that claim.
	// This regression test guards against accuracy collapsing.
	res, err := Quick().RunT2()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy < 0.72 {
		t.Errorf("mean accuracy = %v, want >= 0.72 at quick regime; worst %s at %v",
			res.MeanAccuracy, res.MinWorkload, res.MinAccuracy)
	}
	if res.MinAccuracy < 0.45 {
		t.Errorf("worst-case accuracy %v on %s, want >= 0.45", res.MinAccuracy, res.MinWorkload)
	}
}

func TestT2AccuracyAccurateRegime(t *testing.T) {
	// The Accurate regime (4M accesses, 8K period — the Defaults sample
	// count, scaled) must approach the paper's >90% claim.
	if testing.Short() {
		t.Skip("accurate-regime T2 takes ~1 minute")
	}
	res, err := Accurate().RunT2()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAccuracy < 0.85 {
		t.Errorf("mean accuracy = %v, want >= 0.85; worst %s at %v",
			res.MeanAccuracy, res.MinWorkload, res.MinAccuracy)
	}
	// deepsjeng (a flat Zipf over 3M words whose ground truth spans ~22
	// buckets) is the binding case: resolving it needs more reuse pairs
	// than ~500 samples yield. It reaches ~0.8 at the Defaults regime.
	if res.MinAccuracy < 0.65 {
		t.Errorf("worst-case accuracy %v on %s, want >= 0.65", res.MinAccuracy, res.MinWorkload)
	}
}

func TestF3RunsOnRepresentatives(t *testing.T) {
	var sb strings.Builder
	o := Quick()
	o.Out = &sb
	res, err := o.RunF3()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workloads) != len(representative) {
		t.Errorf("F3 covered %v", res.Workloads)
	}
	if !strings.Contains(sb.String(), "ground truth") {
		t.Error("F3 output missing histogram overlay")
	}
}

func TestF4OverheadFeatherlight(t *testing.T) {
	// At the paper's featherlight 64K period, modelled overhead must be
	// single-digit percent (the paper reports ~5%).
	o := Quick()
	o.Accesses = 2 << 20
	o.Period = 64 << 10
	res, err := o.RunF4()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPct <= 0 {
		t.Error("no overhead measured")
	}
	if res.MeanPct > 10 {
		t.Errorf("RDX mean overhead %v%% at featherlight period, want single digits", res.MeanPct)
	}
}

func TestF5MemoryOverheadSingleDigits(t *testing.T) {
	res, err := Quick().RunF5()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPct <= 0 || res.MeanPct > 30 {
		t.Errorf("mean memory overhead = %v%%, want small single digits", res.MeanPct)
	}
}

func TestF6PeriodTradeoff(t *testing.T) {
	res, err := Quick().RunF6()
	if err != nil {
		t.Fatal(err)
	}
	// Aggregate overhead must fall monotonically with period.
	byPeriod := map[uint64][]float64{}
	for _, pt := range res.Points {
		byPeriod[pt.Period] = append(byPeriod[pt.Period], pt.Overhead)
	}
	periods := Quick().F6Periods()
	for i := 1; i < len(periods); i++ {
		prev := mean(byPeriod[periods[i-1]])
		cur := mean(byPeriod[periods[i]])
		if cur > prev {
			t.Errorf("overhead rose with period: %v @%d vs %v @%d", prev, periods[i-1], cur, periods[i])
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestF7MoreRegistersMorePairs(t *testing.T) {
	res, err := Quick().RunF7()
	if err != nil {
		t.Fatal(err)
	}
	pairs := map[int]uint64{}
	for _, pt := range res.Points {
		pairs[pt.Watchpoints] += pt.Pairs
	}
	if pairs[4] <= pairs[1] {
		t.Errorf("4 watchpoints completed %d pairs vs %d with 1; want more", pairs[4], pairs[1])
	}
}

func TestT8CharacterizationShape(t *testing.T) {
	res, err := Quick().RunT8()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]T8Row{}
	for _, r := range res.Rows {
		rows[r.Workload] = r
	}
	// exchange2 is cache-resident: almost nothing beyond L2.
	if r := rows["exchange2"]; r.BeyondL2 > 5 {
		t.Errorf("exchange2 beyond-L2 = %v%%, want ~0", r.BeyondL2)
	}
	// lbm streams a 32MiB lattice: most accesses reach past L2.
	if r := rows["lbm"]; r.BeyondL2 < 50 {
		t.Errorf("lbm beyond-L2 = %v%%, want most accesses", r.BeyondL2)
	}
	// Streaming must look worse than cache-resident at every level.
	if rows["lbm"].BeyondL1 <= rows["exchange2"].BeyondL1 {
		t.Error("characterization does not separate streaming from cache-resident")
	}
}

func TestF9PredictionsTrackSimulation(t *testing.T) {
	res, err := Quick().RunF9()
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAbsError > 0.10 {
		t.Errorf("mean |predicted − simulated| = %v, want <= 0.10", res.MeanAbsError)
	}
}

func TestA1ProbabilisticCompetitive(t *testing.T) {
	res, err := Quick().RunA1()
	if err != nil {
		t.Fatal(err)
	}
	byPol := map[string]float64{}
	for _, r := range res.Rows {
		byPol[r.Policy.String()] = r.MeanAccuracy
	}
	if len(byPol) != 5 {
		t.Fatalf("A1 covered %d policies, want 5", len(byPol))
	}
	// The default must beat always-replace (whose censoring destroys
	// long reuses) and not trail any policy by a wide margin.
	if byPol["probabilistic"] < byPol["always"] {
		t.Errorf("probabilistic (%v) should beat always-replace (%v)",
			byPol["probabilistic"], byPol["always"])
	}
	for pol, acc := range byPol {
		if byPol["probabilistic"] < acc-0.08 {
			t.Errorf("probabilistic (%v) trails %s (%v) by more than 0.08",
				byPol["probabilistic"], pol, acc)
		}
	}
}

func TestA2ConversionWins(t *testing.T) {
	res, err := Quick().RunA2()
	if err != nil {
		t.Fatal(err)
	}
	if res.ConversionWin <= 0 {
		t.Errorf("footprint conversion (%v) did not beat raw times (%v)", res.ConvertedMean, res.RawMean)
	}
}

func TestA3ShapeRobustToCalibration(t *testing.T) {
	// A3's "featherlight vs heavyweight" shape claim is about the
	// paper's operating point, so run it at the featherlight period.
	o := Quick()
	o.Accesses = 2 << 20
	o.Period = 64 << 10
	res, err := o.RunA3()
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range res.Points {
		if !pt.ShapeIntact {
			t.Errorf("cost multiplier %v breaks the headline shape: RDX %v%%, exact %vx",
				pt.Multiplier, pt.RDXPct, pt.ExactGeo)
		}
	}
}

func TestA4GranularityApproximation(t *testing.T) {
	res, err := Quick().RunA4()
	if err != nil {
		t.Fatal(err)
	}
	byPattern := map[string]float64{}
	for _, r := range res.Rows {
		byPattern[r.Pattern] = r.Accuracy
	}
	if acc := byPattern["line-stride (1 word/line)"]; acc < 0.85 {
		t.Errorf("line-stride accuracy = %v, want high (approximation exact here)", acc)
	}
	if acc := byPattern["word-stride (8 words/line)"]; acc > 0.5 {
		t.Errorf("word-stride accuracy = %v; the documented blind spot disappeared?", acc)
	}
}

func TestA5RedistributionWins(t *testing.T) {
	res, err := Quick().RunA5()
	if err != nil {
		t.Fatal(err)
	}
	if res.Win <= 0 {
		t.Errorf("redistribution on (%v) did not beat off (%v)", res.OnMean, res.OffMean)
	}
}

func TestC1AttributionCaseStudy(t *testing.T) {
	res, err := Quick().RunC1()
	if err != nil {
		t.Fatal(err)
	}
	if !res.NaiveWorstIsB {
		t.Error("naive matmul's worst-locality pair is not the B load")
	}
	if res.Improvement < 5 {
		t.Errorf("tiling improved the B-load pair's distance only %vx, want >= 5x", res.Improvement)
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("t2", Quick()); err != nil {
		t.Errorf("case-insensitive dispatch failed: %v", err)
	}
	if _, err := Run("nope", Quick()); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(IDs()) != 18 {
		t.Errorf("registry has %d experiments, want 18", len(IDs()))
	}
}
