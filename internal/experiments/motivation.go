package experiments

import (
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// T1Row is one workload's exhaustive-measurement cost (experiment T1).
type T1Row struct {
	Workload       string
	Slowdown       float64 // exhaustive runtime / native runtime
	NativeMB       float64 // application footprint
	ProfilerMB     float64 // Olken-tree + hash state
	MemOverheadPct float64 // profiler state / application footprint
}

// T1Result is experiment T1: the motivation table showing that
// exhaustive (instrumentation-based) reuse-distance measurement is
// orders of magnitude more expensive than native execution.
type T1Result struct {
	Rows         []T1Row
	GeoSlowdown  float64
	MeanMemPct   float64
	WorstMemPct  float64
	WorstMemName string
}

// RunT1 measures the exhaustive baseline's time and memory overhead on
// the full suite.
func (o Options) RunT1() (*T1Result, error) {
	res := &T1Result{}
	var slowdowns, memPcts []float64
	for _, w := range workloads.Suite() {
		gt, account, err := o.runExact(w.Name)
		if err != nil {
			return nil, err
		}
		appBytes := appFootprintBytes(w.Name)
		row := T1Row{
			Workload:       w.Name,
			Slowdown:       account.Slowdown(),
			NativeMB:       float64(appBytes) / (1 << 20),
			ProfilerMB:     float64(gt.StateBytes()) / (1 << 20),
			MemOverheadPct: 100 * float64(gt.StateBytes()) / float64(appBytes),
		}
		res.Rows = append(res.Rows, row)
		slowdowns = append(slowdowns, row.Slowdown)
		memPcts = append(memPcts, row.MemOverheadPct)
		if row.MemOverheadPct > res.WorstMemPct {
			res.WorstMemPct = row.MemOverheadPct
			res.WorstMemName = w.Name
		}
	}
	res.GeoSlowdown = stats.GeoMean(slowdowns)
	res.MeanMemPct = stats.Mean(memPcts)

	tb := report.NewTable("T1: exhaustive (Olken) measurement cost",
		"workload", "slowdown", "app MiB", "profiler MiB", "mem ovh %")
	for _, r := range res.Rows {
		tb.AddRow(r.Workload, r.Slowdown, r.NativeMB, r.ProfilerMB, r.MemOverheadPct)
	}
	tb.AddRow("geomean/mean", res.GeoSlowdown, "", "", res.MeanMemPct)
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}
