package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// WireBenchRow is one measured (workload, wire version) cell of the
// wire-bandwidth benchmark: the same access stream is profiled over
// loopback under v2 row framing and v3 columnar framing, and the
// server's batch-byte accounting gives the exact wire cost per access.
type WireBenchRow struct {
	Workload    string  `json:"workload"`
	WireVersion int     `json:"wire_version"`
	Accesses    uint64  `json:"accesses"`
	AccessesSec float64 `json:"accesses_per_sec"`
	// BytesPerAccess is batch payload bytes on the wire divided by
	// accesses streamed; CompressionRatio relates it to the 18-byte raw
	// access record.
	BytesPerAccess   float64 `json:"bytes_per_access"`
	CompressionRatio float64 `json:"compression_ratio"`
	// VsV2 is the bandwidth reduction against the v2 row of the same
	// workload (v2 bytes/access over this row's bytes/access; only set
	// on v3 rows).
	VsV2 float64 `json:"vs_v2,omitempty"`
}

// wireBenchWorkloads are the access shapes the columnar encoding is
// measured on: strided (lane-interleaved scans, the delta-of-delta
// best case), clustered (Zipf reuse, the paper's skewed-locality
// shape) and sequential (a pure unit-stride scan).
func wireBenchWorkloads(seed, n uint64) []struct {
	name string
	r    func() trace.Reader
} {
	return []struct {
		name string
		r    func() trace.Reader
	}{
		{"sequential", func() trace.Reader { return trace.Sequential(0, n, 64) }},
		{"strided", func() trace.Reader { return trace.Strided(0, 8, 1<<10, 64, n) }},
		{"clustered", func() trace.Reader { return trace.ZipfAccess(seed, 0, 1<<14, 1.0, n) }},
	}
}

// RunWireBench measures wire bytes per access for each workload under
// both framings. Each cell gets a fresh single-purpose server so the
// byte accounting in /metrics covers exactly one stream.
func (o Options) RunWireBench() ([]WireBenchRow, error) {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed

	var rows []WireBenchRow
	for _, w := range wireBenchWorkloads(o.Seed, o.Accesses) {
		accs, err := trace.Collect(w.r())
		if err != nil {
			return nil, err
		}
		var v2Bytes float64
		for _, ver := range []int{wire.WireV2, wire.WireV3} {
			s, err := server.New(server.Config{
				MaxWireVersion: ver,
				Logf:           func(string, ...any) {},
			})
			if err != nil {
				return nil, err
			}
			s.Start()
			start := time.Now()
			if err := StreamSessions(s.Addr(), 1, accs, cfg); err != nil {
				s.Close()
				return nil, fmt.Errorf("wire bench (%s, v%d): %w", w.name, ver, err)
			}
			el := time.Since(start).Seconds()
			m := s.MetricsSnapshot()
			s.Close()

			row := WireBenchRow{
				Workload:         w.name,
				WireVersion:      ver,
				Accesses:         m.AccessesTotal,
				BytesPerAccess:   m.BytesPerAccess,
				CompressionRatio: m.CompressionRatio,
			}
			if el > 0 {
				row.AccessesSec = float64(m.AccessesTotal) / el
			}
			switch ver {
			case wire.WireV2:
				v2Bytes = m.BytesPerAccess
			case wire.WireV3:
				if m.BytesPerAccess > 0 {
					row.VsV2 = v2Bytes / m.BytesPerAccess
				}
			}
			rows = append(rows, row)
		}
	}

	for _, r := range rows {
		note := ""
		if r.VsV2 != 0 {
			note = fmt.Sprintf("(%.2fx less bandwidth than v2)", r.VsV2)
		}
		fmt.Fprintf(o.out(), "wire-v%d-%-12s  %12d accesses  %6.2f bytes/access  %6.2fx compression  %14.0f accesses/sec  %s\n",
			r.WireVersion, r.Workload, r.Accesses, r.BytesPerAccess, r.CompressionRatio, r.AccessesSec, note)
	}
	return rows, nil
}

// StridedCompressionRatio measures just the strided v3 cell and
// returns its compression ratio — the number the scripts/check.sh
// regression gate holds against the committed BENCH_server.json
// baseline. The encoding is deterministic for a fixed workload and
// batch size, so the ratio is a stable gate, unlike throughput.
func (o Options) StridedCompressionRatio() (float64, error) {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed
	accs, err := trace.Collect(trace.Strided(0, 8, 1<<10, 64, o.Accesses))
	if err != nil {
		return 0, err
	}
	s, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		return 0, err
	}
	s.Start()
	defer s.Close()
	if err := StreamSessions(s.Addr(), 1, accs, cfg); err != nil {
		return 0, fmt.Errorf("strided compression check: %w", err)
	}
	m := s.MetricsSnapshot()
	if m.CompressionRatio <= 0 {
		return 0, fmt.Errorf("strided compression check accounted no batch bytes")
	}
	return m.CompressionRatio, nil
}
