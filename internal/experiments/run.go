package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Experiment describes one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (any, error)
}

// registry maps experiment IDs (as used in DESIGN.md) to their runners.
var registry = []Experiment{
	{"T1", "exhaustive measurement cost (motivation)", func(o Options) (any, error) { return o.RunT1() }},
	{"T2", "RDX accuracy vs ground truth", func(o Options) (any, error) { return o.RunT2() }},
	{"F3", "histogram overlays (representative workloads)", func(o Options) (any, error) { return o.RunF3() }},
	{"F4", "RDX time overhead", func(o Options) (any, error) { return o.RunF4() }},
	{"F5", "RDX memory overhead", func(o Options) (any, error) { return o.RunF5() }},
	{"F6", "sampling-period sensitivity", func(o Options) (any, error) { return o.RunF6() }},
	{"F7", "debug-register-count sensitivity", func(o Options) (any, error) { return o.RunF7() }},
	{"T8", "SPEC-style memory characterization", func(o Options) (any, error) { return o.RunT8() }},
	{"F9", "miss-ratio prediction vs simulation", func(o Options) (any, error) { return o.RunF9() }},
	{"A1", "ablation: watchpoint replacement policy", func(o Options) (any, error) { return o.RunA1() }},
	{"A2", "ablation: footprint conversion", func(o Options) (any, error) { return o.RunA2() }},
	{"A3", "ablation: cost-calibration sensitivity", func(o Options) (any, error) { return o.RunA3() }},
	{"A4", "ablation: same-word approximation at line granularity", func(o Options) (any, error) { return o.RunA4() }},
	{"A5", "ablation: censored-observation redistribution", func(o Options) (any, error) { return o.RunA5() }},
	{"C1", "case study: use→reuse attribution of a matmul tiling fix", func(o Options) (any, error) { return o.RunC1() }},
	{"MRC", "miss-ratio curves and what-if models vs cache simulation", func(o Options) (any, error) { return o.RunMRC() }},
	{"MULTICORE", "GOMAXPROCS trajectory: auto-picked oracle and server executor", func(o Options) (any, error) { return o.RunMulticore() }},
	{"DRIFT", "phase-change detection on injected locality shifts", func(o Options) (any, error) { return o.RunDrift() }},
}

// IDs returns all experiment IDs in registry order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Lookup finds an experiment by (case-insensitive) ID.
func Lookup(id string) (Experiment, error) {
	for _, e := range registry {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	sorted := append([]string(nil), IDs()...)
	sort.Strings(sorted)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, sorted)
}

// Run executes one experiment by ID.
func Run(id string, o Options) (any, error) {
	e, err := Lookup(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o)
}

// RunAll executes every experiment in order, returning results keyed by
// ID. It stops at the first failure.
func RunAll(o Options) (map[string]any, error) {
	out := make(map[string]any, len(registry))
	for _, e := range registry {
		fmt.Fprintf(o.out(), "\n########## %s — %s ##########\n", e.ID, e.Title)
		res, err := e.Run(o)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		out[e.ID] = res
	}
	return out, nil
}
