package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestMulticoreMergePreservesUntaggedRows is the merge contract: the
// MULTICORE sweep owns only the gmp-tagged rows of the committed bench
// records; the untagged single-setting rows (the 1-core baselines) and
// the record's baseline/pool/wire sections survive a re-run untouched.
func TestMulticoreMergePreservesUntaggedRows(t *testing.T) {
	dir := t.TempDir()
	engine := &EngineBenchResult{
		Timestamp: "2026-01-01T00:00:00Z", GoMaxProcs: 1, Accesses: 1000, Period: 100,
		Rows: []EngineBenchRow{
			{Name: "machine-run-batched", Accesses: 1000, AccessesSec: 5e7},
			{Name: "exact-oracle-auto/gmp=2", Accesses: 1000, AccessesSec: 1e6, GoMaxProcs: 2}, // stale sweep row
		},
		Baseline: []EngineBenchRow{{Name: "machine-run-batched", AccessesSec: 4e7}},
	}
	if err := engine.WriteJSON(filepath.Join(dir, "BENCH_engine.json")); err != nil {
		t.Fatal(err)
	}
	srv := &ServerBenchResult{
		Timestamp: "2026-01-01T00:00:00Z", GoMaxProcs: 1, Workers: 1, Accesses: 1000, Period: 100,
		Rows: []ServerBenchRow{
			{Sessions: 1, AccessesSec: 1e7},
			{Sessions: 16, AccessesSec: 1e7, GoMaxProcs: 4, Workers: 4}, // stale sweep row
		},
		Wire: []WireBenchRow{{Workload: "strided", WireVersion: 3, CompressionRatio: 9.9}},
	}
	if err := srv.WriteJSON(filepath.Join(dir, "BENCH_server.json")); err != nil {
		t.Fatal(err)
	}

	o := Quick()
	o.BenchDir = dir
	fresh := []EngineBenchRow{{Name: "exact-oracle-auto/gmp=4", GoMaxProcs: 4, AccessesSec: 2e6}}
	if err := o.mergeMulticoreEngine(fresh); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEngineBench(filepath.Join(dir, "BENCH_engine.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 2 || got.Rows[0].Name != "machine-run-batched" || got.Rows[1].Name != "exact-oracle-auto/gmp=4" {
		t.Errorf("engine merge rows = %+v, want untagged row kept, stale sweep replaced", got.Rows)
	}
	if got.Rows[0].AccessesSec != 5e7 || len(got.Baseline) != 1 || got.Timestamp != "2026-01-01T00:00:00Z" {
		t.Errorf("engine merge disturbed the committed record: %+v", got)
	}

	freshSrv := []ServerBenchRow{{Sessions: 4, GoMaxProcs: 4, Workers: 4, Throttled: true, AccessesSec: 3e7}}
	if err := o.mergeMulticoreServer(freshSrv); err != nil {
		t.Fatal(err)
	}
	gotSrv, err := ReadServerBench(filepath.Join(dir, "BENCH_server.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSrv.Rows) != 2 || gotSrv.Rows[0].GoMaxProcs != 0 || !gotSrv.Rows[1].Throttled {
		t.Errorf("server merge rows = %+v, want untagged row kept, stale sweep replaced", gotSrv.Rows)
	}
	if len(gotSrv.Wire) != 1 || gotSrv.Wire[0].CompressionRatio != 9.9 {
		t.Errorf("server merge disturbed the wire section: %+v", gotSrv.Wire)
	}
}

// TestServerBaselineMatchesConfigTuple: with sweep rows in the record,
// AttachBaseline must pair rows by the full configuration tuple — a
// throttled 16-session row must never take the plain 16-session row as
// its baseline.
func TestServerBaselineMatchesConfigTuple(t *testing.T) {
	cur := &ServerBenchResult{Rows: []ServerBenchRow{
		{Sessions: 16, AccessesSec: 2e7, AllocsPerBatch: 4},
		{Sessions: 16, GoMaxProcs: 4, Workers: 4, Throttled: true, AccessesSec: 1e7},
	}}
	base := &ServerBenchResult{Rows: []ServerBenchRow{
		{Sessions: 16, AccessesSec: 1e7, AllocsPerBatch: 8},
		{Sessions: 16, GoMaxProcs: 4, Workers: 4, Throttled: true, AccessesSec: 2e7},
	}}
	cur.AttachBaseline(base)
	if cur.Rows[0].VsBaseline != 2 || cur.Rows[0].AllocReduction != 0.5 {
		t.Errorf("untagged row baseline = %+v, want 2x vs its untagged counterpart", cur.Rows[0])
	}
	if cur.Rows[1].VsBaseline != 0.5 {
		t.Errorf("throttled row baseline = %+v, want 0.5x vs its throttled counterpart", cur.Rows[1])
	}
}

// TestBenchGateNoiseThreshold: the gate must pass against a committed
// record whose throughput is far above anything this machine can do
// ONLY by failing — and pass when the committed row is far below. The
// real check.sh invocation runs against the committed record.
func TestBenchGateNoiseThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("measures real throughput")
	}
	dir := t.TempDir()
	write := func(sec float64, spread float64) string {
		r := &EngineBenchResult{
			Accesses: 1 << 18, Period: 1 << 10,
			Rows: []EngineBenchRow{
				{Name: "machine-run-batched", Accesses: 1 << 18, AccessesSec: sec, Spread: spread},
				{Name: "exact-oracle-sequential", Accesses: 1 << 18, AccessesSec: sec, Spread: spread},
			},
		}
		path := filepath.Join(dir, "gate.json")
		if err := r.WriteJSON(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	o := Quick()
	o.Out = nil
	// Committed throughput of 1 access/sec: any real measurement clears
	// the floor.
	if err := o.RunBenchGate(write(1, 0)); err != nil {
		t.Errorf("gate failed against a trivially low committed row: %v", err)
	}
	// Committed throughput beyond any machine: the measured median sits
	// under the floor even with the 25% noise floor, so the gate fires.
	if err := o.RunBenchGate(write(1e15, 0)); err == nil {
		t.Error("gate passed against an unreachable committed row")
	}
	os.Remove(filepath.Join(dir, "gate.json"))
}
