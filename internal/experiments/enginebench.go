package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/mem"
	"repro/internal/mrc"
	"repro/internal/trace"
)

// EngineBenchRow is one measured configuration of the simulation engine.
type EngineBenchRow struct {
	Name        string  `json:"name"`
	Accesses    uint64  `json:"accesses"`
	Seconds     float64 `json:"seconds"`
	AccessesSec float64 `json:"accesses_per_sec"`
	// SpeedupVsRef is this row's throughput over its reference row
	// (0 when the row has no reference counterpart).
	SpeedupVsRef float64 `json:"speedup_vs_ref,omitempty"`
	// VsBaseline is this row's throughput over the same-named row of
	// the attached baseline record (0 when no baseline row matches).
	VsBaseline float64 `json:"vs_baseline,omitempty"`
}

// EngineBenchResult is the machine-readable engine performance record
// emitted as BENCH_engine.json for the perf trajectory: batched vs
// reference execution, and parallel vs sequential exact oracle.
// Baseline, when present, carries the same rows measured at the commit
// before a performance change.
type EngineBenchResult struct {
	Timestamp  string           `json:"timestamp"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Accesses   uint64           `json:"accesses"`
	Period     uint64           `json:"period"`
	Rows       []EngineBenchRow `json:"rows"`
	Baseline   []EngineBenchRow `json:"baseline,omitempty"`
}

// AttachBaseline records base's rows as the pre-change baseline and
// fills each current row's VsBaseline from the baseline row with the
// same name.
func (r *EngineBenchResult) AttachBaseline(base *EngineBenchResult) {
	if base == nil {
		return
	}
	r.Baseline = base.Rows
	for i := range r.Rows {
		for _, b := range base.Rows {
			if b.Name == r.Rows[i].Name {
				if b.AccessesSec > 0 {
					r.Rows[i].VsBaseline = r.Rows[i].AccessesSec / b.AccessesSec
				}
				break
			}
		}
	}
}

// ReadEngineBench loads a previously written BENCH_engine.json record.
func ReadEngineBench(path string) (*EngineBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r EngineBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

// engineBenchStream is the default synthetic workload for engine
// throughput: a cyclic sweep over a small working set, so watchpoints
// resolve quickly and the engine spends most of its time in the
// skip-ahead path — the regime the featherlight design targets.
func engineBenchStream(n uint64) trace.Reader {
	return trace.Cyclic(0, 1<<10, n)
}

func timeRun(name string, n uint64, f func() error) (EngineBenchRow, error) {
	start := time.Now()
	if err := f(); err != nil {
		return EngineBenchRow{}, fmt.Errorf("%s: %w", name, err)
	}
	el := time.Since(start).Seconds()
	row := EngineBenchRow{Name: name, Accesses: n, Seconds: el}
	if el > 0 {
		row.AccessesSec = float64(n) / el
	}
	return row, nil
}

// RunEngineBench measures the simulation engine's throughput: the
// batched Machine.Run fast path vs the retained per-access reference
// loop (both under a default-config RDX profiler), and the sharded
// parallel exact oracle vs sequential Olken.
func (o Options) RunEngineBench() (*EngineBenchResult, error) {
	n := o.Accesses
	res := &EngineBenchResult{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Accesses:   n,
		Period:     o.Period,
	}
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed

	runProfiled := func(name string, ref bool) (EngineBenchRow, error) {
		p, err := core.NewProfiler(cfg)
		if err != nil {
			return EngineBenchRow{}, err
		}
		return timeRun(name, n, func() error {
			if ref {
				_, err := p.RunReference(engineBenchStream(n), cpumodel.Default())
				return err
			}
			_, err := p.Run(engineBenchStream(n), cpumodel.Default())
			return err
		})
	}

	fast, err := runProfiled("machine-run-batched", false)
	if err != nil {
		return nil, err
	}
	ref, err := runProfiled("machine-run-reference", true)
	if err != nil {
		return nil, err
	}
	if ref.AccessesSec > 0 {
		fast.SpeedupVsRef = fast.AccessesSec / ref.AccessesSec
	}

	// The exact oracle works per distinct block; a Zipf stream gives it
	// a realistic skewed footprint.
	oracleStream := func() trace.Reader { return trace.ZipfAccess(o.Seed, 0, 1<<16, 1.0, n) }
	seq, err := timeRun("exact-oracle-sequential", n, func() error {
		_, err := exact.Measure(oracleStream(), mem.WordGranularity)
		return err
	})
	if err != nil {
		return nil, err
	}
	par, err := timeRun("exact-oracle-parallel", n, func() error {
		_, err := exact.MeasureParallel(oracleStream(), mem.WordGranularity, exact.ParallelOptions{})
		return err
	})
	if err != nil {
		return nil, err
	}
	if seq.AccessesSec > 0 {
		par.SpeedupVsRef = par.AccessesSec / seq.AccessesSec
	}

	// Curve-construction throughput: how fast the analysis layer turns a
	// measured reuse-distance histogram into a full miss-ratio curve.
	// The row's unit is curve constructions, not accesses.
	mrcRow, err := o.runMRCBench()
	if err != nil {
		return nil, err
	}

	res.Rows = []EngineBenchRow{fast, ref, seq, par, mrcRow}
	for _, r := range res.Rows {
		fmt.Fprintf(o.out(), "%-26s %12d accesses  %8.3fs  %14.0f accesses/sec  %s\n",
			r.Name, r.Accesses, r.Seconds, r.AccessesSec, speedupNote(r))
	}
	return res, nil
}

// runMRCBench times miss-ratio-curve construction from a profiled
// reuse-distance histogram. Counted in curves built, not accesses: the
// histogram is log-bucketed, so construction cost is independent of the
// profile's length — this row guards the analysis layer's constant.
func (o Options) runMRCBench() (EngineBenchRow, error) {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed
	p, err := core.NewProfiler(cfg)
	if err != nil {
		return EngineBenchRow{}, err
	}
	n := min(o.Accesses, 4<<20)
	res, err := p.Run(trace.ZipfAccess(o.Seed, 0, 1<<16, 1.0, n), cpumodel.Default())
	if err != nil {
		return EngineBenchRow{}, err
	}
	const curves = 5000
	sweep := mrc.Sweep{}
	return timeRun("mrc-curve-construction", curves, func() error {
		for range curves {
			mrc.FromHistogram(res.ReuseDistance, res.Config.Granularity.BlockSize(), sweep)
		}
		return nil
	})
}

func speedupNote(r EngineBenchRow) string {
	if r.SpeedupVsRef == 0 {
		return ""
	}
	return fmt.Sprintf("(%.2fx)", r.SpeedupVsRef)
}

// WriteJSON writes the benchmark record to path.
func (r *EngineBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
