package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/mem"
	"repro/internal/mrc"
	"repro/internal/trace"
)

// EngineBenchRow is one measured configuration of the simulation engine.
type EngineBenchRow struct {
	Name        string  `json:"name"`
	Accesses    uint64  `json:"accesses"`
	Seconds     float64 `json:"seconds"`
	AccessesSec float64 `json:"accesses_per_sec"`
	// SpeedupVsRef is this row's throughput over its reference row
	// (0 when the row has no reference counterpart).
	SpeedupVsRef float64 `json:"speedup_vs_ref,omitempty"`
	// VsBaseline is this row's throughput over the same-named row of
	// the attached baseline record (0 when no baseline row matches).
	VsBaseline float64 `json:"vs_baseline,omitempty"`
	// GoMaxProcs tags rows from the multicore sweep (MULTICORE) with
	// the GOMAXPROCS they ran under; 0 marks the default single-setting
	// rows, whose record-level GoMaxProcs applies. Tagged row names
	// carry a matching "/gmp=N" suffix so name-based comparisons stay
	// apples-to-apples.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	// Paced marks rows whose trace reader was deliberately slowed to
	// the oracle's own measurement rate, modelling acquisition-bound
	// input (a socket, a slow disk): these rows demonstrate pipeline
	// overlap of acquisition with measurement, NOT CPU-parallel
	// speedup, and must never be compared against unpaced rows.
	Paced bool `json:"paced,omitempty"`
	// Reps, MinAccessesSec, MaxAccessesSec and Spread record
	// measurement variance when the row was repeated: Seconds and
	// AccessesSec are the median rep, Spread is (max-min)/median
	// throughput — the row's own noise band, which regression gates
	// must stay outside of before declaring a change real.
	Reps           int     `json:"reps,omitempty"`
	MinAccessesSec float64 `json:"min_accesses_per_sec,omitempty"`
	MaxAccessesSec float64 `json:"max_accesses_per_sec,omitempty"`
	Spread         float64 `json:"spread,omitempty"`
}

// EngineBenchResult is the machine-readable engine performance record
// emitted as BENCH_engine.json for the perf trajectory: batched vs
// reference execution, and parallel vs sequential exact oracle.
// Baseline, when present, carries the same rows measured at the commit
// before a performance change.
type EngineBenchResult struct {
	Timestamp  string           `json:"timestamp"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Accesses   uint64           `json:"accesses"`
	Period     uint64           `json:"period"`
	Rows       []EngineBenchRow `json:"rows"`
	Baseline   []EngineBenchRow `json:"baseline,omitempty"`
}

// AttachBaseline records base's rows as the pre-change baseline and
// fills each current row's VsBaseline from the baseline row with the
// same name.
func (r *EngineBenchResult) AttachBaseline(base *EngineBenchResult) {
	if base == nil {
		return
	}
	r.Baseline = base.Rows
	for i := range r.Rows {
		for _, b := range base.Rows {
			if b.Name == r.Rows[i].Name {
				if b.AccessesSec > 0 {
					r.Rows[i].VsBaseline = r.Rows[i].AccessesSec / b.AccessesSec
				}
				break
			}
		}
	}
}

// ReadEngineBench loads a previously written BENCH_engine.json record.
func ReadEngineBench(path string) (*EngineBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r EngineBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &r, nil
}

// engineBenchStream is the default synthetic workload for engine
// throughput: a cyclic sweep over a small working set, so watchpoints
// resolve quickly and the engine spends most of its time in the
// skip-ahead path — the regime the featherlight design targets.
func engineBenchStream(n uint64) trace.Reader {
	return trace.Cyclic(0, 1<<10, n)
}

// rowFromSecs builds a row from per-rep wall times: the median rep is
// the headline number, min/max/spread record the observed noise band.
func rowFromSecs(name string, n uint64, secs []float64) EngineBenchRow {
	sorted := append([]float64(nil), secs...)
	sort.Float64s(sorted)
	med := sorted[len(sorted)/2]
	row := EngineBenchRow{Name: name, Accesses: n, Seconds: med}
	if med > 0 {
		row.AccessesSec = float64(n) / med
	}
	if len(sorted) > 1 {
		row.Reps = len(sorted)
		row.MinAccessesSec = float64(n) / sorted[len(sorted)-1]
		row.MaxAccessesSec = float64(n) / sorted[0]
		if row.AccessesSec > 0 {
			row.Spread = (row.MaxAccessesSec - row.MinAccessesSec) / row.AccessesSec
		}
	}
	return row
}

// timeRun measures f reps times and returns the median as the row,
// with min/max/spread recording the observed noise band. f must be
// self-contained (build its own state each call) so every rep measures
// the same work.
func timeRun(name string, n uint64, reps int, f func() error) (EngineBenchRow, error) {
	if reps < 1 {
		reps = 1
	}
	secs := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return EngineBenchRow{}, fmt.Errorf("%s: %w", name, err)
		}
		secs = append(secs, time.Since(start).Seconds())
	}
	return rowFromSecs(name, n, secs), nil
}

// timeRunPaired measures two variants with their reps interleaved
// (a, b, a, b, ...) instead of back to back. On a shared machine the
// available CPU drifts over seconds; interleaving exposes both
// variants to the same drift, so their ratio — which is what paired
// rows exist to report — reflects the code, not when each happened to
// run.
func timeRunPaired(nameA, nameB string, n uint64, reps int, fa, fb func() error) (EngineBenchRow, EngineBenchRow, error) {
	if reps < 1 {
		reps = 1
	}
	var none EngineBenchRow
	secsA := make([]float64, 0, reps)
	secsB := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := fa(); err != nil {
			return none, none, fmt.Errorf("%s: %w", nameA, err)
		}
		secsA = append(secsA, time.Since(start).Seconds())
		start = time.Now()
		if err := fb(); err != nil {
			return none, none, fmt.Errorf("%s: %w", nameB, err)
		}
		secsB = append(secsB, time.Since(start).Seconds())
	}
	return rowFromSecs(nameA, n, secsA), rowFromSecs(nameB, n, secsB), nil
}

// RunEngineBench measures the simulation engine's throughput: the
// batched Machine.Run fast path vs the retained per-access reference
// loop (both under a default-config RDX profiler), and the sharded
// parallel exact oracle vs sequential Olken.
func (o Options) RunEngineBench() (*EngineBenchResult, error) {
	n := o.Accesses
	res := &EngineBenchResult{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Accesses:   n,
		Period:     o.Period,
	}
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed

	runProfiled := func(name string, ref bool) (EngineBenchRow, error) {
		// A fresh profiler per rep: the profiler is single-run state, and
		// its construction cost is noise against n accesses.
		return timeRun(name, n, o.reps(), func() error {
			p, err := core.NewProfiler(cfg)
			if err != nil {
				return err
			}
			if ref {
				_, err := p.RunReference(engineBenchStream(n), cpumodel.Default())
				return err
			}
			_, err = p.Run(engineBenchStream(n), cpumodel.Default())
			return err
		})
	}

	fast, err := runProfiled("machine-run-batched", false)
	if err != nil {
		return nil, err
	}
	ref, err := runProfiled("machine-run-reference", true)
	if err != nil {
		return nil, err
	}
	if ref.AccessesSec > 0 {
		fast.SpeedupVsRef = fast.AccessesSec / ref.AccessesSec
	}

	// The exact oracle works per distinct block; a Zipf stream gives it
	// a realistic skewed footprint.
	oracleStream := func() trace.Reader { return trace.ZipfAccess(o.Seed, 0, 1<<16, 1.0, n) }
	seq, err := timeRun("exact-oracle-sequential", n, o.reps(), func() error {
		_, err := exact.Measure(oracleStream(), mem.WordGranularity)
		return err
	})
	if err != nil {
		return nil, err
	}
	par, err := timeRun("exact-oracle-parallel", n, o.reps(), func() error {
		_, err := exact.MeasureParallel(oracleStream(), mem.WordGranularity, exact.ParallelOptions{})
		return err
	})
	if err != nil {
		return nil, err
	}
	if seq.AccessesSec > 0 {
		par.SpeedupVsRef = par.AccessesSec / seq.AccessesSec
	}

	// Curve-construction throughput: how fast the analysis layer turns a
	// measured reuse-distance histogram into a full miss-ratio curve.
	// The row's unit is curve constructions, not accesses.
	mrcRow, err := o.runMRCBench()
	if err != nil {
		return nil, err
	}

	res.Rows = []EngineBenchRow{fast, ref, seq, par, mrcRow}
	for _, r := range res.Rows {
		fmt.Fprintf(o.out(), "%-26s %12d accesses  %8.3fs  %14.0f accesses/sec  %s\n",
			r.Name, r.Accesses, r.Seconds, r.AccessesSec, speedupNote(r))
	}
	return res, nil
}

// runMRCBench times miss-ratio-curve construction from a profiled
// reuse-distance histogram. Counted in curves built, not accesses: the
// histogram is log-bucketed, so construction cost is independent of the
// profile's length — this row guards the analysis layer's constant.
func (o Options) runMRCBench() (EngineBenchRow, error) {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed
	p, err := core.NewProfiler(cfg)
	if err != nil {
		return EngineBenchRow{}, err
	}
	n := min(o.Accesses, 4<<20)
	res, err := p.Run(trace.ZipfAccess(o.Seed, 0, 1<<16, 1.0, n), cpumodel.Default())
	if err != nil {
		return EngineBenchRow{}, err
	}
	const curves = 5000
	sweep := mrc.Sweep{}
	return timeRun("mrc-curve-construction", curves, o.reps(), func() error {
		for range curves {
			mrc.FromHistogram(res.ReuseDistance, res.Config.Granularity.BlockSize(), sweep)
		}
		return nil
	})
}

func speedupNote(r EngineBenchRow) string {
	if r.SpeedupVsRef == 0 {
		return ""
	}
	return fmt.Sprintf("(%.2fx)", r.SpeedupVsRef)
}

// WriteJSON writes the benchmark record to path.
func (r *EngineBenchResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
