package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// PoolBenchRow is one measured pool size of the sharded multi-backend
// dispatcher.
type PoolBenchRow struct {
	Backends    int     `json:"backends"`
	Streams     int     `json:"streams"`
	Accesses    uint64  `json:"accesses"` // total across all streams
	Seconds     float64 `json:"seconds"`
	AccessesSec float64 `json:"accesses_per_sec"`
	// ScalingVs1 is this row's aggregate throughput over the
	// single-backend row — the capacity-aggregation factor the
	// dispatcher achieves.
	ScalingVs1 float64 `json:"scaling_vs_1,omitempty"`
}

// poolBenchStepDelay throttles each benchmark backend to a fixed batch
// service rate. The benchmark host is a single machine (often a single
// core), so spawning four in-process daemons cannot add CPU capacity;
// what the pool bench must isolate is the dispatcher's ability to
// aggregate independent backend capacity. Pinning every backend to one
// worker with a per-batch delay models a fleet of fixed-capacity boxes:
// each backend serves batches at a known rate, and the measured scaling
// is the dispatcher's — routing, health probing and slot accounting —
// not the host scheduler's. The delay is set well above the host's
// per-batch CPU cost (encode + decode + execute, ~1ms at the bench
// batch size) so backend capacity, not the shared host CPU, is the
// bottleneck being aggregated.
const poolBenchStepDelay = 5 * time.Millisecond

// StartThrottledBackends starts n fixed-capacity rdxd backends (one
// worker, poolBenchStepDelay per batch, admin listener on) and returns
// them with their pool addresses. Callers own Close on each server.
func StartThrottledBackends(n int) ([]*server.Server, []pool.Backend, error) {
	var srvs []*server.Server
	var bs []pool.Backend
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{
			Workers:   1,
			StepDelay: poolBenchStepDelay,
			AdminAddr: "127.0.0.1:0",
			Logf:      func(string, ...any) {},
		})
		if err != nil {
			for _, prev := range srvs {
				prev.Close()
			}
			return nil, nil, err
		}
		s.Start()
		srvs = append(srvs, s)
		bs = append(bs, pool.Backend{Addr: s.Addr(), Admin: s.AdminAddr()})
	}
	return srvs, bs, nil
}

// PoolStreamOnce pushes the given streams through a pool over the
// backends and returns the merged result. Shared by RunPoolBench and
// the root BenchmarkPoolThroughput.
func PoolStreamOnce(backends []pool.Backend, streams []trace.Reader, cfg core.Config) (*core.MultiResult, error) {
	p, err := pool.New(backends, pool.Options{
		MaxInFlight: 8,
		BatchSize:   streamBatchSize,
		Retry:       wire.RetryPolicy{MaxAttempts: 3},
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()
	return p.ProfileThreads(context.Background(), streams, cfg)
}

// RunPoolBench measures the sharded dispatcher's aggregate throughput
// over fleets of 1, 2 and 4 fixed-capacity backends, with the same
// total work (streams and accesses) at every size. A well-behaved
// dispatcher approaches linear capacity aggregation; the acceptance
// floor is 2x at 4 backends.
func (o Options) RunPoolBench() ([]PoolBenchRow, error) {
	const streams = 32
	perStream := o.Accesses / streams
	if perStream == 0 {
		perStream = 1 << 16
	}
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = o.Period
	cfg.Seed = o.Seed

	// One shared access slice: every stream profiles the same recorded
	// accesses (distinct per-thread seeds keep the profiles distinct),
	// so generation cost stays out of the measurement.
	accs, err := trace.Collect(trace.ZipfAccess(o.Seed, 0, 1<<14, 1.0, perStream))
	if err != nil {
		return nil, err
	}

	var rows []PoolBenchRow
	for _, nBackends := range []int{1, 2, 4} {
		srvs, backends, err := StartThrottledBackends(nBackends)
		if err != nil {
			return nil, err
		}
		rs := make([]trace.Reader, streams)
		for i := range rs {
			rs[i] = trace.FromSlice(accs)
		}
		start := time.Now()
		m, err := PoolStreamOnce(backends, rs, cfg)
		el := time.Since(start).Seconds()
		for _, s := range srvs {
			s.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("pool bench (%d backends): %w", nBackends, err)
		}
		row := PoolBenchRow{
			Backends: nBackends,
			Streams:  streams,
			Accesses: m.Accesses,
			Seconds:  el,
		}
		if el > 0 {
			row.AccessesSec = float64(m.Accesses) / el
		}
		if len(rows) > 0 && rows[0].AccessesSec > 0 {
			row.ScalingVs1 = row.AccessesSec / rows[0].AccessesSec
		}
		rows = append(rows, row)
	}

	for _, r := range rows {
		note := ""
		if r.ScalingVs1 != 0 {
			note = fmt.Sprintf("(%.2fx vs 1 backend)", r.ScalingVs1)
		}
		fmt.Fprintf(o.out(), "pool-%02d-backends          %12d accesses  %8.3fs  %14.0f accesses/sec  %d streams  %s\n",
			r.Backends, r.Accesses, r.Seconds, r.AccessesSec, r.Streams, note)
	}
	return rows, nil
}
