package experiments

import (
	"math"

	"repro/internal/cache"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Cache capacities used for characterization, expressed in 8-byte words
// to match the measurement granularity: a 32KiB L1, 1MiB L2 and 32MiB
// LLC hold 4K, 128K and 4M words respectively.
const (
	l1Words  = 4 << 10
	l2Words  = 128 << 10
	llcWords = 4 << 20
)

// T8Row characterizes one benchmark: the paper's SPEC CPU2017
// memory-performance table, derived entirely from RDX histograms.
type T8Row struct {
	Workload  string
	MedianRD  float64 // median reuse distance (words; +Inf if cold-dominated)
	ColdPct   float64 // fraction of accesses that are first touches
	BeyondL1  float64 // fraction of accesses with RD >= L1 capacity
	BeyondL2  float64
	BeyondLLC float64
}

// T8Result is experiment T8: the headline application — characterizing
// the memory behaviour of the (SPEC-CPU2017-style) suite with a
// featherlight tool.
type T8Result struct {
	Rows []T8Row
}

// RunT8 characterizes every workload from its RDX histogram alone (no
// ground truth needed — this is the production use case).
func (o Options) RunT8() (*T8Result, error) {
	res := &T8Result{}
	tb := report.NewTable("T8: SPEC-CPU2017-style memory characterization (via RDX)",
		"workload", "median RD", "cold %", ">L1 %", ">L2 %", ">LLC %")
	for _, w := range workloads.Suite() {
		rdx, err := o.runRDX(w.Name, o.rdxConfig())
		if err != nil {
			return nil, err
		}
		rd := rdx.ReuseDistance
		row := T8Row{
			Workload:  w.Name,
			MedianRD:  rd.Percentile(0.5),
			ColdPct:   100 * rd.Cold() / rd.Total(),
			BeyondL1:  100 * rd.FractionAbove(l1Words),
			BeyondL2:  100 * rd.FractionAbove(l2Words),
			BeyondLLC: 100 * rd.FractionAbove(llcWords),
		}
		res.Rows = append(res.Rows, row)
		if math.IsInf(row.MedianRD, 1) {
			tb.AddRow(row.Workload, "inf", row.ColdPct, row.BeyondL1, row.BeyondL2, row.BeyondLLC)
		} else {
			tb.AddRow(row.Workload, row.MedianRD, row.ColdPct, row.BeyondL1, row.BeyondL2, row.BeyondLLC)
		}
	}
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// F9Point compares a predicted and simulated miss ratio.
type F9Point struct {
	Workload  string
	Lines     uint64
	Predicted float64 // from the RDX reuse-distance histogram
	Simulated float64 // from the LRU cache simulator
	AbsError  float64
}

// F9Result is experiment F9: miss ratios predicted from RDX histograms
// versus a simulated fully associative LRU cache, across capacities.
type F9Result struct {
	Points       []F9Point
	MeanAbsError float64
}

// RunF9 predicts and simulates miss ratios for the representative
// workloads. Both sides run at word granularity (the RDX measurement
// granularity): caches of N words versus RD >= N.
func (o Options) RunF9() (*F9Result, error) {
	res := &F9Result{}
	tb := report.NewTable("F9: miss-ratio prediction from RDX vs LRU simulation",
		"workload", "capacity (words)", "predicted", "simulated", "abs err")
	var errSum float64
	var errN int
	for _, name := range representative {
		rdx, err := o.runRDX(name, o.rdxConfig())
		if err != nil {
			return nil, err
		}
		for _, wordsCap := range []uint64{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
			r, err := o.buildWorkload(name)
			if err != nil {
				return nil, err
			}
			sim, err := cache.Simulate(r, cache.Config{
				SizeBytes: wordsCap * 8,
				LineBytes: 8, // word-grain "cache" to match measurement granularity
				Ways:      0,
			})
			if err != nil {
				return nil, err
			}
			pred := cache.PredictMissRatio(rdx.ReuseDistance, wordsCap)
			pt := F9Point{
				Workload:  name,
				Lines:     wordsCap,
				Predicted: pred,
				Simulated: sim,
				AbsError:  math.Abs(pred - sim),
			}
			res.Points = append(res.Points, pt)
			errSum += pt.AbsError
			errN++
			tb.AddRow(name, wordsCap, pt.Predicted, pt.Simulated, pt.AbsError)
		}
	}
	if errN > 0 {
		res.MeanAbsError = errSum / float64(errN)
	}
	tb.AddRow("mean abs err", "", "", "", res.MeanAbsError)
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}
