package experiments

import (
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/trace"
)

// A1Row is one replacement policy's mean accuracy.
type A1Row struct {
	Policy       core.ReplacementPolicy
	MeanAccuracy float64
}

// A1Result is ablation A1: the watchpoint replacement policy.
// Probabilistic replacement (the default) balances arming throughput
// against long-reuse survival; reservoir arms only logarithmically many
// samples; always-replace censors everything pending longer than a few
// periods; never-replace completes everything it arms but stalls arming
// behind long-pending watchpoints.
type A1Result struct {
	Rows []A1Row
}

// RunA1 compares replacement policies over the representative workloads.
func (o Options) RunA1() (*A1Result, error) {
	res := &A1Result{}
	tb := report.NewTable("A1: watchpoint replacement policy", "policy", "mean accuracy")
	for _, pol := range []core.ReplacementPolicy{core.ReplaceProbabilistic, core.ReplaceHybrid, core.ReplaceReservoir, core.ReplaceAlways, core.ReplaceNever} {
		pol := pol
		acc, err := o.meanAccuracyByConfig(func(c *core.Config) { c.Replacement = pol })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, A1Row{Policy: pol, MeanAccuracy: acc})
		tb.AddRow(pol.String(), acc)
	}
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// A2Result is ablation A2: reporting raw reuse times as if they were
// distances versus applying the footprint conversion. On workloads whose
// footprint grows sublinearly in window length (any workload with reuse,
// i.e. all of them except pure streams), raw times overestimate
// distances and the conversion must win.
type A2Result struct {
	ConvertedMean float64
	RawMean       float64
	ConversionWin float64 // converted − raw accuracy
}

// RunA2 compares converted and raw reporting.
func (o Options) RunA2() (*A2Result, error) {
	conv, err := o.meanAccuracyByConfig(func(c *core.Config) { c.ConvertDistances = true })
	if err != nil {
		return nil, err
	}
	raw, err := o.meanAccuracyByConfig(func(c *core.Config) { c.ConvertDistances = false })
	if err != nil {
		return nil, err
	}
	res := &A2Result{ConvertedMean: conv, RawMean: raw, ConversionWin: conv - raw}
	tb := report.NewTable("A2: footprint conversion vs raw reuse times", "mode", "mean accuracy")
	tb.AddRow("footprint-converted", conv)
	tb.AddRow("raw reuse time", raw)
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// A4Row is one granularity-approximation measurement.
type A4Row struct {
	Pattern  string
	Accuracy float64
}

// A4Result is ablation A4: the same-word approximation at cache-line
// granularity. Hardware watchpoints cover at most 8 bytes, so RDX
// watches the sampled word and reports its reuse as the line's. This is
// exact when each line is touched at one word (line-stride sweeps) and
// blind to intra-line reuse when lines are swept word by word.
type A4Result struct {
	Rows []A4Row
}

// RunA4 quantifies the approximation on both extremes and a mixed case.
func (o Options) RunA4() (*A4Result, error) {
	n := o.Accesses
	patterns := []struct {
		name string
		mk   func() trace.Reader
	}{
		{"line-stride (1 word/line)", func() trace.Reader {
			return trace.Limit(trace.Repeat(1<<30, func() trace.Reader {
				return trace.Sequential(0, 4096, 64)
			}), n)
		}},
		{"word-stride (8 words/line)", func() trace.Reader {
			return trace.Cyclic(0, 32<<10, n)
		}},
		{"random words", func() trace.Reader {
			return trace.RandomUniform(o.Seed, 0, 64<<10, n)
		}},
	}
	res := &A4Result{}
	tb := report.NewTable("A4: same-word approximation at line granularity",
		"pattern", "accuracy vs line ground truth")
	for _, p := range patterns {
		cfg := o.rdxConfig()
		cfg.Granularity = mem.LineGranularity
		prof, err := core.NewProfiler(cfg)
		if err != nil {
			return nil, err
		}
		rdx, err := prof.Run(p.mk(), cpumodel.Default())
		if err != nil {
			return nil, err
		}
		gt, err := exact.Measure(p.mk(), mem.LineGranularity)
		if err != nil {
			return nil, err
		}
		row := A4Row{Pattern: p.name, Accuracy: histogram.Accuracy(rdx.ReuseDistance, gt.ReuseDistance())}
		res.Rows = append(res.Rows, row)
		tb.AddRow(row.Pattern, row.Accuracy)
	}
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}

// A5Result is ablation A5: censored-observation redistribution
// (Kaplan-Meier-style) on versus off. Replacement evicts watchpoints
// before long reuses complete; without redistribution that mass simply
// vanishes and the histogram skews short.
type A5Result struct {
	OnMean  float64
	OffMean float64
	Win     float64 // on − off accuracy
}

// RunA5 compares bias correction on/off over the representative
// workloads.
func (o Options) RunA5() (*A5Result, error) {
	on, err := o.meanAccuracyByConfig(func(c *core.Config) { c.BiasCorrection = true })
	if err != nil {
		return nil, err
	}
	off, err := o.meanAccuracyByConfig(func(c *core.Config) { c.BiasCorrection = false })
	if err != nil {
		return nil, err
	}
	res := &A5Result{OnMean: on, OffMean: off, Win: on - off}
	tb := report.NewTable("A5: censored-observation redistribution", "mode", "mean accuracy")
	tb.AddRow("redistribution on", on)
	tb.AddRow("redistribution off", off)
	if err := tb.WriteText(o.out()); err != nil {
		return nil, err
	}
	return res, nil
}
