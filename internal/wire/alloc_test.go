package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/testutil"
	"repro/internal/trace"
)

// benchAccesses is a representative batch for the allocation tests:
// mixed strides and kinds, large enough that a per-access leak shows up
// as hundreds of allocations, not a rounding error.
func benchAccesses(n int) []mem.Access {
	accs := make([]mem.Access, n)
	for i := range accs {
		accs[i] = mem.Access{
			Addr: mem.Addr(i) * 64 << (i % 3),
			PC:   0x400000 + mem.Addr(i%13)*4,
			Size: 8,
			Kind: mem.Kind(i % 2),
		}
	}
	return accs
}

func encodedBatchFrame(t testing.TB, seq uint64, accs []mem.Access) []byte {
	t.Helper()
	var payload bytes.Buffer
	if err := EncodeBatch(&payload, seq, accs); err != nil {
		t.Fatal(err)
	}
	var frame bytes.Buffer
	if err := WriteFrame(&frame, FrameBatch, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	return frame.Bytes()
}

// TestPooledFrameMatchesPlain: both frame-read paths must hand back the
// same type and payload bytes.
func TestPooledFrameMatchesPlain(t *testing.T) {
	frame := encodedBatchFrame(t, 7, benchAccesses(100))

	tPlain, plain, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	tPooled, pooled, err := ReadFramePooled(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer PutPayload(pooled)
	if tPlain != tPooled || !bytes.Equal(plain, pooled) {
		t.Fatalf("pooled read (%s, %d bytes) differs from plain read (%s, %d bytes)",
			tPooled, len(pooled), tPlain, len(plain))
	}
}

// TestPayloadPoolClasses: buffers come back with exactly the requested
// length, releases of foreign or oversized buffers are safe no-ops, and
// the gets counter advances.
func TestPayloadPoolClasses(t *testing.T) {
	gets0, _ := PoolStats()
	for _, n := range []int{0, 1, 4 << 10, 4<<10 + 1, 64 << 10, 1 << 20, 4 << 20, 4<<20 + 1} {
		buf := GetPayload(n)
		if len(buf) != n {
			t.Fatalf("GetPayload(%d) returned %d bytes", n, len(buf))
		}
		PutPayload(buf)
	}
	PutPayload(nil)              // no-op
	PutPayload(make([]byte, 99)) // foreign capacity: ignored
	gets1, _ := PoolStats()
	if gets1 <= gets0 {
		t.Errorf("PoolStats gets did not advance: %d -> %d", gets0, gets1)
	}
}

// TestDecodeBatchIntoReusesScratch: decoding into a warm scratch buffer
// returns the same backing array and identical accesses to DecodeBatch.
func TestDecodeBatchIntoReusesScratch(t *testing.T) {
	accs := benchAccesses(500)
	var payload bytes.Buffer
	if err := EncodeBatch(&payload, 3, accs); err != nil {
		t.Fatal(err)
	}
	want, seq, err := DecodeBatch(nil, payload.Bytes())
	if err != nil || seq != 3 {
		t.Fatalf("DecodeBatch: seq=%d err=%v", seq, err)
	}
	scratch := make([]mem.Access, 0, len(accs)+10)
	got, seq, err := DecodeBatchInto(scratch, payload.Bytes())
	if err != nil || seq != 3 {
		t.Fatalf("DecodeBatchInto: seq=%d err=%v", seq, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("DecodeBatchInto result differs from DecodeBatch")
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("DecodeBatchInto abandoned a large-enough scratch buffer")
	}
}

// TestReadFramePooledAllocFree: the steady-state frame read — pooled
// payload, single ReadFull — performs zero heap allocations.
func TestReadFramePooledAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	frame := encodedBatchFrame(t, 1, benchAccesses(trace.DefaultBatchSize))
	r := bytes.NewReader(frame)
	read := func() {
		r.Seek(0, io.SeekStart)
		_, payload, err := ReadFramePooled(r)
		if err != nil {
			t.Fatal(err)
		}
		PutPayload(payload)
	}
	read() // warm the pool
	if allocs := testing.AllocsPerRun(500, read); allocs > 0 {
		t.Errorf("ReadFramePooled allocates %.2f times per frame, want 0", allocs)
	}
}

// TestDecodeBatchIntoAllocFree: decoding a full batch into a warm
// scratch buffer performs zero heap allocations.
func TestDecodeBatchIntoAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	accs := benchAccesses(trace.DefaultBatchSize)
	var payload bytes.Buffer
	if err := EncodeBatch(&payload, 1, accs); err != nil {
		t.Fatal(err)
	}
	scratch := make([]mem.Access, 0, trace.DefaultBatchSize)
	decode := func() {
		out, _, err := DecodeBatchInto(scratch[:0], payload.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(accs) {
			t.Fatalf("decoded %d accesses, want %d", len(out), len(accs))
		}
	}
	decode()
	if allocs := testing.AllocsPerRun(200, decode); allocs > 0 {
		t.Errorf("DecodeBatchInto allocates %.2f times per batch, want 0", allocs)
	}
}

// TestClientEncodeBatchAllocFree: the client's batch encode path — the
// reusable sliceWriter plus Reset-reused trace.Writer — performs zero
// steady-state heap allocations.
func TestClientEncodeBatchAllocFree(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	accs := benchAccesses(trace.DefaultBatchSize)
	c := &Client{}
	encode := func() {
		if _, err := c.encodeBatch(42, accs); err != nil {
			t.Fatal(err)
		}
	}
	encode() // warm: grows the scratch buffer once
	if allocs := testing.AllocsPerRun(200, encode); allocs > 0 {
		t.Errorf("encodeBatch allocates %.2f times per batch, want 0", allocs)
	}
}

// TestReadFrameDirectReadNoChunkCopies: the non-pooled path must still
// read payloads of every size correctly after the chunked-append loop
// was replaced with direct reads into the destination.
func TestReadFrameDirectReadNoChunkCopies(t *testing.T) {
	for _, size := range []int{0, 1, readChunk - 1, readChunk, readChunk + 1, 3 * readChunk} {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i * 31)
		}
		var frame bytes.Buffer
		if err := WriteFrame(&frame, FrameBatch, payload); err != nil {
			t.Fatal(err)
		}
		_, got, err := ReadFrame(iotest(frame.Bytes()))
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("size=%d: payload corrupted by direct read", size)
		}
	}
}

// iotest wraps a byte slice in a reader that returns at most 64KiB per
// Read, so multi-chunk payloads genuinely take several reads.
func iotest(data []byte) io.Reader {
	return &slowReader{data: data}
}

type slowReader struct{ data []byte }

func (s *slowReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	n := len(p)
	if n > 64<<10 {
		n = 64 << 10
	}
	if n > len(s.data) {
		n = len(s.data)
	}
	copy(p, s.data[:n])
	s.data = s.data[n:]
	return n, nil
}
