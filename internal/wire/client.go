package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/trace"
)

// ErrRemote wraps error messages reported by the daemon, so callers can
// distinguish a server-side rejection from a transport failure.
var ErrRemote = errors.New("wire: remote error")

// DefaultDialTimeout bounds connection establishment when the caller's
// context carries no deadline of its own.
const DefaultDialTimeout = 10 * time.Second

// Client is one profiling session against an rdxd daemon. It is not safe
// for concurrent use; a caller wanting parallel sessions opens one
// Client per session (the daemon multiplexes).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// sw accumulates the encoded batch payload and enc is the reusable
	// RDT3 encoder writing into it; together they make a steady-state
	// SendBatch allocation-free (the payload buffer and the encoder's
	// internals are reused across batches).
	sw  sliceWriter
	enc trace.Writer
	// cols is the columnar scratch for v3 batch encoding, reused across
	// batches (drawn from the column pool on first use, returned at
	// Close).
	cols    *trace.Columns
	maxWire int // highest wire version to offer (0 = latest)
	// mu guards wire. The negotiated version is written by open — which
	// a ReconnectingClient re-runs during reconnect renegotiation (a v3
	// session can come back v2 when policy caps differ) — and read on
	// the replay re-encode path and by WireVersion; without the lock a
	// Snapshot observer racing a renegotiation could see a torn read.
	mu     sync.Mutex
	wire   int // negotiated wire version (valid once opened)
	opened bool
	// onPush receives subscribed snapshot pushes that arrive interleaved
	// ahead of a pending reply (see expect); set via OnPush.
	onPush func(*Push)
	done    bool
	closed  bool // Close ran; the pooled buffers are gone
	reply   OpenReply
	nextSeq uint64 // sequence number of the next batch (first batch is 1)
}

// Dial connects to an rdxd daemon with the default timeout.
func Dial(addr string) (*Client, error) {
	return DialContext(context.Background(), addr)
}

// DialContext connects to an rdxd daemon, honoring ctx for cancellation
// and deadline. When ctx has no deadline, DefaultDialTimeout applies —
// a dial can never hang forever.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	d := net.Dialer{Timeout: DefaultDialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// Client-side buffer pools: sessions churn (one Client per session by
// design), but the 64 KiB read and 256 KiB write buffers and the
// encoded-batch scratch recirculate across them — the client-side twin
// of the server's connection pools, and the difference between a
// session costing two large allocations or none.
var (
	clientReaderPool  = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 64<<10) }}
	clientWriterPool  = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 256<<10) }}
	clientScratchPool sync.Pool // stores *[]byte: encoded-batch payload scratch
)

// NewClient wraps an established connection (loopback pipes in tests,
// TCP in production).
func NewClient(conn net.Conn) *Client {
	br := clientReaderPool.Get().(*bufio.Reader)
	br.Reset(conn)
	bw := clientWriterPool.Get().(*bufio.Writer)
	bw.Reset(conn)
	c := &Client{conn: conn, br: br, bw: bw}
	if bp, _ := clientScratchPool.Get().(*[]byte); bp != nil {
		c.sw.buf = (*bp)[:0]
	}
	return c
}

// Open starts the session with the given profiler configuration and
// returns the server's session geometry. If the server sheds the open
// (at capacity or draining), the error is a *RetryAfterError.
func (c *Client) Open(cfg core.Config) (OpenReply, error) {
	return c.open(OpenRequest{Config: cfg})
}

// Resume reopens an interrupted session identified by token: the server
// restores it from its checkpoint and reports, via OpenReply.ResumeSeq,
// the last batch sequence number already executed. The caller replays
// batches after it (SetNextSeq positions the outgoing counter).
func (c *Client) Resume(cfg core.Config, token string, lastAcked uint64) (OpenReply, error) {
	return c.open(OpenRequest{Config: cfg, ResumeToken: token, LastAcked: lastAcked})
}

// SetMaxWireVersion caps the wire version the client offers at open
// (default: the latest, WireV3). Must be called before Open/Resume.
// Values outside [WireV2, WireV3] reset to the default.
func (c *Client) SetMaxWireVersion(v int) {
	if v < WireV2 || v > WireV3 {
		v = 0
	}
	c.maxWire = v
}

// WireVersion reports the wire version negotiated at open (0 before).
func (c *Client) WireVersion() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wire
}

func (c *Client) offerWire() int {
	if c.maxWire == 0 {
		return WireV3
	}
	return c.maxWire
}

func (c *Client) open(req OpenRequest) (OpenReply, error) {
	if c.opened {
		return OpenReply{}, fmt.Errorf("wire: session already open")
	}
	req.Wire = c.offerWire()
	if err := c.send(FrameOpen, marshalJSON(req)); err != nil {
		return OpenReply{}, err
	}
	payload, err := c.expect(FrameOpenOK)
	if err != nil {
		return OpenReply{}, err
	}
	err = json.Unmarshal(payload, &c.reply)
	PutPayload(payload)
	if err != nil {
		return OpenReply{}, fmt.Errorf("wire: decoding open reply: %w", err)
	}
	wire := c.reply.Wire
	if wire == 0 {
		wire = WireV2 // pre-negotiation server: original framing
	}
	if wire < WireV2 || wire > c.offerWire() {
		return OpenReply{}, fmt.Errorf("wire: server chose version %d, client offered up to %d", c.reply.Wire, c.offerWire())
	}
	c.mu.Lock()
	c.wire = wire
	c.mu.Unlock()
	c.opened = true
	c.nextSeq = c.reply.ResumeSeq + 1
	return c.reply, nil
}

// NextSeq returns the sequence number the next SendBatch will use.
func (c *Client) NextSeq() uint64 { return c.nextSeq }

// SetNextSeq positions the outgoing batch sequence counter, used when
// replaying an unacknowledged tail after a resume.
func (c *Client) SetNextSeq(seq uint64) { c.nextSeq = seq }

// SendBatch streams one batch of accesses to the session. It blocks when
// the daemon applies backpressure (its bounded session queue is full and
// the transport buffers have filled) — the client slows to the daemon's
// pace instead of growing a queue.
func (c *Client) SendBatch(accs []mem.Access) error {
	if err := c.ensureStreaming(); err != nil {
		return err
	}
	if len(accs) == 0 {
		return nil
	}
	ft := FrameBatch
	var payload []byte
	var err error
	if c.WireVersion() >= WireV3 {
		ft = FrameBatchV3
		payload, err = c.encodeColumns(c.nextSeq, accs)
	} else {
		payload, err = c.encodeBatch(c.nextSeq, accs)
	}
	if err != nil {
		return err
	}
	if err := c.send(ft, payload); err != nil {
		return err
	}
	c.nextSeq++
	return nil
}

// Sync asks the server to durably checkpoint the session and returns
// the acknowledged batch sequence number: every batch up to it has been
// executed and captured in a checkpoint, so a replay buffer can be
// trimmed to the batches after it.
func (c *Client) Sync() (uint64, error) {
	if err := c.ensureStreaming(); err != nil {
		return 0, err
	}
	if err := c.send(FrameSync, nil); err != nil {
		return 0, err
	}
	payload, err := c.expect(FrameAck)
	if err != nil {
		return 0, err
	}
	if len(payload) != 8 {
		PutPayload(payload)
		return 0, fmt.Errorf("wire: ack payload of %d bytes, want 8", len(payload))
	}
	seq := binary.BigEndian.Uint64(payload)
	PutPayload(payload)
	return seq, nil
}

// Snapshot requests a live intermediate result: the profile the session
// would report if the stream ended now. The session keeps running.
func (c *Client) Snapshot() (*Result, error) {
	if err := c.ensureStreaming(); err != nil {
		return nil, err
	}
	if err := c.send(FrameSnapshot, nil); err != nil {
		return nil, err
	}
	return c.readResult(FrameSnapshotResult)
}

// Finish ends the stream and returns the session's final result.
func (c *Client) Finish() (*Result, error) {
	if err := c.ensureStreaming(); err != nil {
		return nil, err
	}
	c.done = true
	if err := c.send(FrameFinish, nil); err != nil {
		return nil, err
	}
	return c.readResult(FrameResult)
}

// Close releases the connection and returns the client's pooled
// buffers. Closing without Finish abandons the session; the daemon
// frees its state. The client is unusable afterwards.
func (c *Client) Close() error {
	err := c.conn.Close()
	if c.closed {
		return err
	}
	c.closed = true
	c.br.Reset(nil)
	clientReaderPool.Put(c.br)
	c.br = nil
	c.bw.Reset(nil)
	clientWriterPool.Put(c.bw)
	c.bw = nil
	if cap(c.sw.buf) > 0 {
		bp := new([]byte)
		*bp = c.sw.buf[:0]
		clientScratchPool.Put(bp)
		c.sw.buf = nil
	}
	if c.cols != nil {
		PutColumns(c.cols)
		c.cols = nil
	}
	return err
}

// ProfileOptions tunes Client.Profile.
type ProfileOptions struct {
	// BatchSize is the number of accesses per frame (default
	// trace.DefaultBatchSize).
	BatchSize int
	// SnapshotEvery requests a live snapshot every that many batches
	// (0 = never) and passes it to OnSnapshot.
	//
	// Deprecated: this is the poll-style observation surface. New code
	// subscribes with Watch/ReadPush (or rdx.Session.Watch), which
	// streams the same snapshots server-initiated. The polling path is
	// kept bit-identical: a poll after batch N and a push covering
	// batch N return the same result, which the differential tests
	// hold.
	SnapshotEvery int
	OnSnapshot    func(*Result)
	// MaxWireVersion caps the wire version offered at open (0 = latest).
	// Set to WireV2 to force the uncompressed RDT3 batch framing.
	MaxWireVersion int
}

// Profile streams r through a fresh session end to end: Open, batched
// SendBatch to exhaustion, Finish. It is the remote analogue of
// rdx.Profile and returns the bit-identical result.
func (c *Client) Profile(r trace.Reader, cfg core.Config, opts ProfileOptions) (*Result, error) {
	batch := opts.BatchSize
	if batch <= 0 {
		batch = trace.DefaultBatchSize
	}
	if opts.MaxWireVersion != 0 {
		c.SetMaxWireVersion(opts.MaxWireVersion)
	}
	if _, err := c.Open(cfg); err != nil {
		return nil, err
	}
	var buf []mem.Access
	if batch <= trace.DefaultBatchSize {
		buf = trace.BatchBuf()[:batch]
		defer trace.ReleaseBatchBuf(buf)
	} else {
		buf = make([]mem.Access, batch)
	}
	sent := 0
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if err := c.SendBatch(buf[:n]); err != nil {
				return nil, err
			}
			sent++
			if opts.SnapshotEvery > 0 && sent%opts.SnapshotEvery == 0 {
				snap, err := c.Snapshot()
				if err != nil {
					return nil, err
				}
				if opts.OnSnapshot != nil {
					opts.OnSnapshot(snap)
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, fmt.Errorf("wire: reading access stream: %w", rerr)
		}
	}
	return c.Finish()
}

func (c *Client) ensureStreaming() error {
	if !c.opened {
		return fmt.Errorf("wire: session not open")
	}
	if c.done {
		return fmt.Errorf("wire: session already finished")
	}
	return nil
}

// encodeBatch encodes the batch payload (sequence number + RDT3) into
// the client's reusable scratch buffer. The returned slice is valid
// until the next encodeBatch call.
func (c *Client) encodeBatch(seq uint64, accs []mem.Access) ([]byte, error) {
	c.sw.buf = c.sw.buf[:0]
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], seq)
	c.sw.Write(hdr[:])
	if err := c.enc.Reset(&c.sw); err != nil {
		return nil, err
	}
	for _, a := range accs {
		if err := c.enc.Write(a); err != nil {
			return nil, err
		}
	}
	if err := c.enc.Close(); err != nil {
		return nil, err
	}
	return c.sw.buf, nil
}

// encodeColumns encodes the v3 columnar batch payload into the client's
// reusable scratch. The returned slice is valid until the next encode.
func (c *Client) encodeColumns(seq uint64, accs []mem.Access) ([]byte, error) {
	if c.cols == nil {
		c.cols = GetColumns()
	}
	c.cols.Reset()
	c.cols.AppendBatch(accs)
	var err error
	c.sw.buf, err = EncodeColumns(c.sw.buf, seq, c.cols)
	return c.sw.buf, err
}

// send writes one frame and flushes, so server-side backpressure
// propagates to the caller as a blocking write.
func (c *Client) send(t FrameType, payload []byte) error {
	if c.closed {
		return fmt.Errorf("wire: client is closed")
	}
	if err := WriteFrame(c.bw, t, payload); err != nil {
		return err
	}
	return c.bw.Flush()
}

// expect reads server frames until the wanted one arrives, converting
// FrameError into an ErrRemote-wrapped error and FrameRetryAfter into
// a *RetryAfterError. Subscribed snapshot pushes may interleave ahead
// of any pending reply (the one sanctioned departure from strict
// request-order framing); expect hands each to the OnPush callback and
// keeps reading. The payload comes from the pooled buffers: on success
// it belongs to the caller, who must release it with PutPayload once
// decoded; on error expect releases it itself.
func (c *Client) expect(want FrameType) ([]byte, error) {
	if c.closed {
		return nil, fmt.Errorf("wire: client is closed")
	}
	t, payload, err := ReadFramePooled(c.br)
	if err == io.EOF {
		return nil, fmt.Errorf("wire: server closed the connection before replying")
	}
	if err != nil {
		return nil, err
	}
	if t == FrameSnapshotPush && want != FrameSnapshotPush {
		p, err := decodePush(payload)
		PutPayload(payload)
		if err != nil {
			return nil, err
		}
		if c.onPush != nil {
			c.onPush(p)
		}
		return c.expect(want)
	}
	if t == FrameError {
		err := fmt.Errorf("%w: %s", ErrRemote, payload)
		PutPayload(payload)
		return nil, err
	}
	if t == FrameRetryAfter {
		var ra RetryAfter
		err := json.Unmarshal(payload, &ra)
		PutPayload(payload)
		if err != nil {
			return nil, fmt.Errorf("wire: decoding retry-after: %w", err)
		}
		return nil, &RetryAfterError{
			After:  time.Duration(ra.AfterMillis) * time.Millisecond,
			Reason: ra.Reason,
		}
	}
	if t == FrameMoved {
		var mv Moved
		err := json.Unmarshal(payload, &mv)
		PutPayload(payload)
		if err != nil {
			return nil, fmt.Errorf("wire: decoding moved redirect: %w", err)
		}
		if mv.Addr == "" {
			return nil, fmt.Errorf("wire: moved redirect without an address")
		}
		return nil, &MovedError{Addr: mv.Addr, Admin: mv.Admin, Seq: mv.Seq}
	}
	if t != want {
		err := fmt.Errorf("wire: server sent %s frame, want %s", t, want)
		PutPayload(payload)
		return nil, err
	}
	return payload, nil
}

func (c *Client) readResult(want FrameType) (*Result, error) {
	payload, err := c.expect(want)
	if err != nil {
		return nil, err
	}
	var res Result
	err = json.Unmarshal(payload, &res)
	PutPayload(payload)
	if err != nil {
		return nil, fmt.Errorf("wire: decoding result: %w", err)
	}
	return &res, nil
}

// sliceWriter is an io.Writer appending to a reusable byte slice
// (bytes.Buffer without the read-side state, so the slice can be handed
// to WriteFrame directly).
type sliceWriter struct{ buf []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.buf = append(s.buf, p...)
	return len(p), nil
}
