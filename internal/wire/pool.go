package wire

import (
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// Frame payload buffer pool. Payloads are short-lived — read, decoded,
// discarded — which is exactly the lifetime sync.Pool serves; pooling
// them removes the per-frame allocation from the ingest hot path.
// Buffers come in four size classes so a 40-byte control frame does not
// pin a megabyte, and the pools store fixed-size array pointers rather
// than slices, so neither Get nor Put boxes a slice header: both
// directions are allocation-free.
//
// maxPooledPayload doubles as the single-read bound: ReadFramePooled
// allocates a frame's claimed size up front only within it, so a lying
// length prefix costs at most 4 MiB before the stream's bytes have to
// actually arrive (legitimate batch frames are a few hundred KiB).

const (
	payloadClass0 = 4 << 10
	payloadClass1 = 64 << 10
	payloadClass2 = 1 << 20
	payloadClass3 = 4 << 20

	// maxPooledPayload is the largest payload served from the pool.
	maxPooledPayload = payloadClass3
)

var (
	payloadPool0 = sync.Pool{New: func() any { poolMisses.Add(1); return new([payloadClass0]byte) }}
	payloadPool1 = sync.Pool{New: func() any { poolMisses.Add(1); return new([payloadClass1]byte) }}
	payloadPool2 = sync.Pool{New: func() any { poolMisses.Add(1); return new([payloadClass2]byte) }}
	payloadPool3 = sync.Pool{New: func() any { poolMisses.Add(1); return new([payloadClass3]byte) }}

	poolGets   atomic.Uint64 // pooled payloads handed out
	poolMisses atomic.Uint64 // gets that had to allocate a fresh buffer
)

// GetPayload returns a length-n payload buffer. Buffers up to
// maxPooledPayload come from the size-classed pool and must be returned
// with PutPayload once nothing references their contents; larger
// requests fall back to a plain allocation that PutPayload ignores.
func GetPayload(n int) []byte {
	poolGets.Add(1)
	switch {
	case n <= payloadClass0:
		return payloadPool0.Get().(*[payloadClass0]byte)[:n]
	case n <= payloadClass1:
		return payloadPool1.Get().(*[payloadClass1]byte)[:n]
	case n <= payloadClass2:
		return payloadPool2.Get().(*[payloadClass2]byte)[:n]
	case n <= payloadClass3:
		return payloadPool3.Get().(*[payloadClass3]byte)[:n]
	default:
		poolMisses.Add(1)
		return make([]byte, n)
	}
}

// PutPayload returns a GetPayload buffer to its size class. Buffers
// whose capacity matches no class — including every payload the
// non-pooled ReadFrame allocates — are left to the garbage collector,
// so releasing unconditionally is always safe. Nil is a no-op.
func PutPayload(buf []byte) {
	switch cap(buf) {
	case payloadClass0:
		payloadPool0.Put((*[payloadClass0]byte)(buf[:payloadClass0]))
	case payloadClass1:
		payloadPool1.Put((*[payloadClass1]byte)(buf[:payloadClass1]))
	case payloadClass2:
		payloadPool2.Put((*[payloadClass2]byte)(buf[:payloadClass2]))
	case payloadClass3:
		payloadPool3.Put((*[payloadClass3]byte)(buf[:payloadClass3]))
	}
}

// PoolStats reports how many payload buffers have been handed out and
// how many of those had to allocate (a pool miss). The hit rate
// 1 - misses/gets is exported by rdxd's /metrics as pool_hit_rate.
func PoolStats() (gets, misses uint64) {
	return poolGets.Load(), poolMisses.Load()
}

// Columnar scratch pool. A v3 session decodes every batch into one
// Columns value; pooling them lets sessions come and go without paying
// the three column allocations per session, the per-session analogue of
// the payload pool. Get counts feed the same hit-rate metric.
var columnsPool = sync.Pool{New: func() any { poolMisses.Add(1); return new(trace.Columns) }}

// GetColumns returns an empty Columns scratch whose columns retain the
// capacity they grew to in earlier use. Return it with PutColumns.
func GetColumns() *trace.Columns {
	poolGets.Add(1)
	c := columnsPool.Get().(*trace.Columns)
	c.Reset()
	return c
}

// PutColumns returns a Columns scratch to the pool once nothing
// references its columns. Nil is a no-op.
func PutColumns(c *trace.Columns) {
	if c != nil {
		columnsPool.Put(c)
	}
}
