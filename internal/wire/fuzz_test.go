package wire

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/mem"
)

// FuzzReadFrame throws arbitrary bytes at the frame decoder: whatever
// the input — truncated headers, lying length prefixes, checksum
// garbage — it must either decode a frame or return an error, never
// panic, and never allocate more memory than the input can justify.
func FuzzReadFrame(f *testing.F) {
	var seed bytes.Buffer
	WriteFrame(&seed, FrameOpen, []byte(`{"config":{}}`))
	f.Add(seed.Bytes())
	seed.Reset()
	WriteFrame(&seed, FrameSnapshot, nil)
	f.Add(seed.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x02})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		t.Helper()
		ft, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded frame must re-encode to a stream the
		// decoder accepts again (the payload survived the checksum).
		var buf bytes.Buffer
		if werr := WriteFrame(&buf, ft, payload); werr != nil {
			t.Fatalf("decoded frame fails to re-encode: %v", werr)
		}
		ft2, payload2, rerr := ReadFrame(&buf)
		if rerr != nil || ft2 != ft || !bytes.Equal(payload2, payload) {
			t.Fatalf("frame does not round-trip: %v", rerr)
		}
	})
}

// FuzzDecodeBatch throws arbitrary bytes at the batch payload decoder:
// malformed sequence prefixes, corrupt RDT3 records, truncated streams
// and bogus trailers must all return errors, never panic or loop.
func FuzzDecodeBatch(f *testing.F) {
	var buf bytes.Buffer
	EncodeBatch(&buf, 1, []mem.Access{
		{Addr: 0x1000, PC: 0x400000, Size: 8, Kind: mem.Load},
		{Addr: 0x1040, PC: 0x400010, Size: 4, Kind: mem.Store},
	})
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:12])
	f.Add([]byte("RDT3"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		t.Helper()
		accs, seq, err := DecodeBatch(nil, data)
		if err != nil {
			return
		}
		// A payload that decodes must round-trip bit-exactly.
		var re bytes.Buffer
		if eerr := EncodeBatch(&re, seq, accs); eerr != nil {
			t.Fatalf("decoded batch fails to re-encode: %v", eerr)
		}
		back, seq2, derr := DecodeBatch(nil, re.Bytes())
		if derr != nil || seq2 != seq || len(back) != len(accs) {
			t.Fatalf("batch does not round-trip: %v", derr)
		}
		for i := range back {
			if back[i] != accs[i] {
				t.Fatalf("access %d changed across round-trip", i)
			}
		}
	})
}

// FuzzReadFrame's EOF contract: an empty stream is io.EOF, anything
// else mid-frame is a descriptive error. Kept as a plain test next to
// the fuzz targets so the contract is pinned even in -short runs.
func TestReadFrameEOFContract(t *testing.T) {
	if _, _, err := ReadFrame(bytes.NewReader(nil)); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}
}
