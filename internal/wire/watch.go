package wire

import (
	"encoding/json"
	"fmt"
)

// WatchRequest is the FrameWatch payload: subscribe the session to
// pushed snapshots.
type WatchRequest struct {
	// EveryBatches is the push cadence: a FrameSnapshotPush after every
	// that many executed batches. 0 cancels the subscription.
	EveryBatches int `json:"every_batches"`
}

// Push is the FrameSnapshotPush payload: one server-initiated live
// snapshot.
type Push struct {
	// Seq is the sequence number of the batch whose execution closed
	// this snapshot — the push covers everything up to and including
	// it. Pushes within a session carry strictly increasing sequence
	// numbers; a client that reconnects mid-stream uses them to drop
	// replayed duplicates.
	Seq uint64 `json:"seq"`
	// Result is the snapshot itself, exactly what a FrameSnapshot poll
	// issued at the same boundary would have returned.
	Result *Result `json:"result"`
}

// Watch subscribes the session to pushed snapshots every everyBatches
// executed batches (0 cancels). The subscription lives on this
// connection: pushes arrive whenever the client reads — interleaved
// ahead of pending replies, where expect delivers them to the OnPush
// callback — or explicitly via ReadPush.
func (c *Client) Watch(everyBatches int) error {
	if err := c.ensureStreaming(); err != nil {
		return err
	}
	if everyBatches < 0 {
		return fmt.Errorf("wire: negative watch cadence %d", everyBatches)
	}
	if err := c.send(FrameWatch, marshalJSON(WatchRequest{EveryBatches: everyBatches})); err != nil {
		return err
	}
	payload, err := c.expect(FrameWatchOK)
	if err != nil {
		return err
	}
	PutPayload(payload)
	return nil
}

// OnPush registers the callback expect hands pushed snapshots to when
// they arrive ahead of a pending reply. The callback runs on the
// goroutine driving the client — the same one that would have seen the
// reply — so it needs no locking of its own.
func (c *Client) OnPush(fn func(*Push)) { c.onPush = fn }

// ReadPush blocks until the next FrameSnapshotPush arrives and returns
// it. Used by drivers that pace themselves on the push stream (one
// boundary in flight at a time) instead of draining pushes as a side
// effect of other reads.
func (c *Client) ReadPush() (*Push, error) {
	if err := c.ensureStreaming(); err != nil {
		return nil, err
	}
	payload, err := c.expect(FrameSnapshotPush)
	if err != nil {
		return nil, err
	}
	p, err := decodePush(payload)
	PutPayload(payload)
	return p, err
}

func decodePush(payload []byte) (*Push, error) {
	var p Push
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("wire: decoding snapshot push: %w", err)
	}
	if p.Result == nil {
		return nil, fmt.Errorf("wire: snapshot push %d without a result", p.Seq)
	}
	return &p, nil
}
