package wire_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// TestBackoffHonorsCancelPromptly: a context canceled during the
// reconnect backoff sleep must abort the wait immediately — a caller
// tearing down a session cannot be held hostage by a long jittered
// delay.
func TestBackoffHonorsCancelPromptly(t *testing.T) {
	// An address that refuses connections: bind, then close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rc := wire.NewReconnectingClient(addr, core.DefaultConfig(), wire.RetryPolicy{
		MaxAttempts: 10,
		BaseDelay:   30 * time.Second, // without cancellation the test would sit here
		MaxDelay:    30 * time.Second,
		DialTimeout: time.Second,
		Seed:        1,
	})
	defer rc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = rc.Open(ctx)
	waited := time.Since(start)
	if err == nil {
		t.Fatal("open against a dead address succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if waited > 2*time.Second {
		t.Fatalf("cancel during backoff took %v to return, want prompt", waited)
	}
}
