package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/mem"
	"repro/internal/trace"
)

// Wire protocol versions negotiated at FrameOpen. A client advertises
// the highest version it speaks in OpenRequest.Wire; the server answers
// with the version the session will use in OpenReply.Wire (the minimum
// of the two sides' maxima). Version 2 is the original RDT3 batch
// framing (FrameBatch); version 3 adds compressed columnar batches
// (FrameBatchV3). Absent fields decode as 0 and mean version 2, so the
// negotiation is transparently backward compatible.
const (
	WireV2 = 2
	WireV3 = 3
)

// Column encoding tags carried in a v3 column section header. Address
// and PC columns use delta or delta-of-delta; the meta column uses raw
// or run-length. The encoder produces both candidates and keeps the
// smaller, so irregular streams never regress past plain delta.
const (
	colEncDelta = 0x00 // per-value delta, zig-zag varint
	colEncDoD   = 0x01 // zero-run delta-of-delta
	colEncRaw   = 0x00 // meta bytes verbatim
	colEncRLE   = 0x01 // (value, run-length uvarint) pairs
)

// colSectionHdr is a column section's fixed prefix: encoding tag byte,
// 4-byte big-endian data length, 4-byte big-endian crc32 (IEEE, over
// tag + data).
const colSectionHdr = 9

// columnsHdrBytes is the v3 payload's fixed prefix: 8-byte sequence
// number + 4-byte access count, both big-endian.
const columnsHdrBytes = batchSeqBytes + 4

// MaxColumnBatch bounds the access count a v3 payload may declare. The
// zero-run encodings let a few bytes describe millions of values, so —
// unlike v2, where every access costs stream bytes — the count must be
// bounded independently of the payload size to stop a corrupt or
// hostile header from ballooning column scratch.
const MaxColumnBatch = 1 << 22

// colCRC is the checksum carried in a column section header: IEEE crc32
// over the tag byte followed by the column data (reusing the frame
// layer's precomputed one-byte prefix states).
func colCRC(tag byte, data []byte) uint32 {
	return crc32.Update(typeCRCs[tag], crc32.IEEETable, data)
}

// EncodeColumns resets dst and appends a v3 batch payload: the sequence
// number and access count, then the address, PC and meta column
// sections. Each section carries its own encoding tag, length and
// crc32, so a decoder localizes corruption to a column. Address and PC
// sections are encoded both ways (delta and delta-of-delta) and the
// smaller wins; the meta section picks raw or RLE the same way.
// Steady-state encoding into a reused dst allocates nothing.
func EncodeColumns(dst []byte, seq uint64, cols *trace.Columns) ([]byte, error) {
	if cols.Len() > MaxColumnBatch {
		return dst, fmt.Errorf("wire: columnar batch of %d accesses exceeds limit %d", cols.Len(), MaxColumnBatch)
	}
	dst = dst[:0]
	// Reserve the worst case up front — header, three section headers,
	// both candidate address encodings held at once (≤ ~21 bytes per
	// value each while the winner is picked) plus the meta column — so a
	// cold encode buffer pays one allocation instead of append-doubling
	// its way up on every new connection.
	if worst := columnsHdrBytes + 3*colSectionHdr + cols.Len()*(2*2*21+2); cap(dst) < worst {
		dst = make([]byte, 0, worst)
	}
	var hdr [columnsHdrBytes]byte
	binary.BigEndian.PutUint64(hdr[:batchSeqBytes], seq)
	binary.BigEndian.PutUint32(hdr[batchSeqBytes:], uint32(cols.Len()))
	dst = append(dst, hdr[:]...)
	dst = appendAddrSection(dst, cols.Addrs)
	dst = appendAddrSection(dst, cols.PCs)
	dst = appendMetaSection(dst, cols.Meta)
	return dst, nil
}

// appendAddrSection appends one address-valued column section, encoding
// the values both as plain deltas and as zero-run delta-of-deltas into
// dst's tail and keeping whichever came out smaller (the loser is
// sliced off, or the winner slid over it — an overlapping copy, which
// Go's copy handles).
func appendAddrSection(dst []byte, vals []mem.Addr) []byte {
	off := len(dst)
	var hdr [colSectionHdr]byte
	dst = append(dst, hdr[:]...)
	body := off + colSectionHdr
	dst = trace.AppendDeltaColumn(dst, vals)
	deltaLen := len(dst) - body
	tag := byte(colEncDelta)
	// Try the delta-of-delta candidate in the tail, giving up as soon as
	// it outgrows the delta encoding already in hand — irregular streams
	// pay only for the losing prefix.
	if dod, ok := trace.AppendDoDColumnMax(dst, vals, deltaLen-1); ok {
		dodLen := len(dod) - body - deltaLen
		tag = colEncDoD
		copy(dod[body:], dod[body+deltaLen:])
		dst = dod[:body+dodLen]
	} else {
		dst = dod // truncated back to the delta encoding, capacity kept
	}
	return finishSection(dst, off, tag)
}

// appendMetaSection appends the meta column section, run-length encoded
// unless the raw bytes are no larger.
func appendMetaSection(dst []byte, meta []byte) []byte {
	off := len(dst)
	var hdr [colSectionHdr]byte
	dst = append(dst, hdr[:]...)
	body := off + colSectionHdr
	dst = trace.AppendRLEColumn(dst, meta)
	tag := byte(colEncRLE)
	if len(dst)-body >= len(meta) {
		tag = colEncRaw
		dst = append(dst[:body], meta...)
	}
	return finishSection(dst, off, tag)
}

// finishSection backfills the section header reserved at off: tag,
// data length, crc over tag + data.
func finishSection(dst []byte, off int, tag byte) []byte {
	data := dst[off+colSectionHdr:]
	dst[off] = tag
	binary.BigEndian.PutUint32(dst[off+1:], uint32(len(data)))
	binary.BigEndian.PutUint32(dst[off+5:], colCRC(tag, data))
	return dst
}

// DecodeColumnsInto decodes a v3 batch payload, appending the accesses
// to cols (callers reuse one Columns value, Reset between batches) and
// returning the batch's sequence number. Each column's crc32 is
// verified before its data is interpreted, and every structural
// violation — truncated sections, unknown encoding tags, columns that
// decode to the wrong count, trailing bytes — is a descriptive error.
// Decoding into columns that have grown to the session's steady batch
// size allocates nothing.
func DecodeColumnsInto(cols *trace.Columns, payload []byte) (uint64, error) {
	if len(payload) < columnsHdrBytes {
		return 0, fmt.Errorf("wire: columnar payload of %d bytes lacks its %d-byte header", len(payload), columnsHdrBytes)
	}
	seq := binary.BigEndian.Uint64(payload)
	count := binary.BigEndian.Uint32(payload[batchSeqBytes:])
	if count > MaxColumnBatch {
		return seq, fmt.Errorf("wire: columnar batch declares %d accesses, limit %d", count, MaxColumnBatch)
	}
	// Build the whole batch's scratch up front: the count is declared, so
	// cold columns pay one allocation each instead of append-doubling.
	// The MaxColumnBatch bound above keeps a hostile count from turning
	// this into a huge speculative allocation.
	cols.Grow(int(count) - cols.Len())
	rest := payload[columnsHdrBytes:]
	var err error
	if cols.Addrs, rest, err = decodeAddrSection(cols.Addrs, rest, int(count), "address"); err != nil {
		return seq, err
	}
	if cols.PCs, rest, err = decodeAddrSection(cols.PCs, rest, int(count), "pc"); err != nil {
		return seq, err
	}
	if cols.Meta, rest, err = decodeMetaSection(cols.Meta, rest, int(count)); err != nil {
		return seq, err
	}
	if len(rest) > 0 {
		return seq, fmt.Errorf("wire: %d trailing bytes after columnar batch", len(rest))
	}
	return seq, nil
}

// splitSection parses one column section header off data, verifies the
// crc, and returns the tag, the column bytes and the remainder.
func splitSection(data []byte, name string) (byte, []byte, []byte, error) {
	if len(data) < colSectionHdr {
		return 0, nil, nil, fmt.Errorf("wire: %s column cut off inside its section header", name)
	}
	tag := data[0]
	n := binary.BigEndian.Uint32(data[1:])
	want := binary.BigEndian.Uint32(data[5:])
	if uint64(n) > uint64(len(data)-colSectionHdr) {
		return 0, nil, nil, fmt.Errorf("wire: %s column of %d bytes overruns its frame", name, n)
	}
	col := data[colSectionHdr : colSectionHdr+int(n)]
	if got := colCRC(tag, col); got != want {
		return 0, nil, nil, fmt.Errorf("wire: %s column checksum mismatch (corrupt stream)", name)
	}
	return tag, col, data[colSectionHdr+int(n):], nil
}

func decodeAddrSection(dst []mem.Addr, data []byte, count int, name string) ([]mem.Addr, []byte, error) {
	tag, col, rest, err := splitSection(data, name)
	if err != nil {
		return dst, data, err
	}
	switch tag {
	case colEncDelta:
		dst, err = trace.DecodeDeltaColumn(dst, col, count)
	case colEncDoD:
		dst, err = trace.DecodeDoDColumn(dst, col, count)
	default:
		return dst, data, fmt.Errorf("wire: %s column has unknown encoding %#x", name, tag)
	}
	if err != nil {
		return dst, data, fmt.Errorf("wire: %s column: %w", name, err)
	}
	return dst, rest, nil
}

func decodeMetaSection(dst []byte, data []byte, count int) ([]byte, []byte, error) {
	tag, col, rest, err := splitSection(data, "meta")
	if err != nil {
		return dst, data, err
	}
	switch tag {
	case colEncRaw:
		if len(col) != count {
			return dst, data, fmt.Errorf("wire: raw meta column of %d bytes, want %d", len(col), count)
		}
		dst = append(dst, col...)
	case colEncRLE:
		dst, err = trace.DecodeRLEColumn(dst, col, count)
		if err != nil {
			return dst, data, fmt.Errorf("wire: meta column: %w", err)
		}
	default:
		return dst, data, fmt.Errorf("wire: meta column has unknown encoding %#x", tag)
	}
	return dst, rest, nil
}
