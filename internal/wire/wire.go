// Package wire defines the streaming protocol between rdx clients and
// the rdxd profiling daemon: a length-prefixed frame layer, the JSON
// control/result messages carried in frames, and the access-batch
// payload encoding (which reuses the internal/trace binary record
// format, so a recorded trace streams to the daemon byte-compatibly).
//
// # Framing
//
// Every frame is
//
//	length [4]byte  big-endian; covers type + checksum + payload
//	type   byte     FrameType
//	crc    [4]byte  big-endian IEEE crc32 over type + payload
//	payload         length-5 bytes
//
// The checksum makes in-flight corruption a detectable transport error
// everywhere at once — batch sequence numbers, acks, JSON results and
// the open handshake — instead of silently altering profile data. A
// frame that fails its checksum is indistinguishable from a cut
// connection: the client reconnects and resumes, the server checkpoints
// the session as disconnected.
//
// Frames never interleave within one direction of a connection. The
// client speaks first (FrameOpen); the server replies to each
// result-bearing request (FrameSnapshot, FrameFinish, FrameSync,
// FrameWatch) in request order, so the client can match replies
// without ids. FrameError may replace any reply and is terminal for
// the session; FrameRetryAfter may replace the open reply and asks the
// client to come back later.
//
// One frame type relaxes the request-reply shape: after a FrameWatch
// subscription, the server emits FrameSnapshotPush frames on its own
// initiative, at batch-cadence boundaries. A push may therefore arrive
// where the client awaits a pending reply; pushes carry their own
// sequence numbers and the client skips past them (delivering each to
// the watch callback) until the awaited reply arrives. Replies
// themselves still never reorder.
//
// # Batch payloads
//
// A FrameBatch payload is an 8-byte big-endian sequence number followed
// by a complete RDT3 stream (magic, delta-encoded records,
// end-of-stream trailer — see internal/trace). Sequence numbers start
// at 1 and increase by 1 per batch within a session; a resumed session
// replays its unacknowledged tail and the server discards batches whose
// sequence number it has already executed, making replay idempotent.
// Delta state resets at each frame boundary, so frames are
// independently decodable and a frame cut off by a dying connection is
// detected by the trace layer's truncation check, not executed
// half-way.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/footprint"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// FrameType identifies a frame's meaning and payload encoding.
type FrameType uint8

const (
	// FrameOpen (client→server) opens a session; payload OpenRequest.
	FrameOpen FrameType = 0x01
	// FrameBatch (client→server) carries one access batch; payload RDT3.
	FrameBatch FrameType = 0x02
	// FrameSnapshot (client→server) requests a live intermediate result;
	// empty payload.
	FrameSnapshot FrameType = 0x03
	// FrameFinish (client→server) ends the stream and requests the final
	// result; empty payload.
	FrameFinish FrameType = 0x04
	// FrameSync (client→server) asks the server to durably checkpoint
	// the session and acknowledge the last executed batch sequence
	// number; empty payload. The reply is FrameAck.
	FrameSync FrameType = 0x05
	// FrameBatchV3 (client→server) carries one access batch in the v3
	// columnar encoding (see EncodeColumns); only valid on sessions that
	// negotiated wire version 3 at open.
	FrameBatchV3 FrameType = 0x06
	// FrameHandoff (backend→backend) transfers one retained session
	// state — a live checkpoint or a finished session's final result —
	// during live migration. It is sent as a connection's first frame
	// in place of FrameOpen; the receiver installs the state durably
	// and answers FrameHandoffOK. Payload: see EncodeHandoff.
	FrameHandoff FrameType = 0x07
	// FrameWatch (client→server) subscribes the session to pushed
	// snapshots: the server emits a FrameSnapshotPush after every
	// WatchRequest.EveryBatches executed batches; payload WatchRequest
	// (JSON). The reply is FrameWatchOK. A second FrameWatch replaces
	// the cadence; EveryBatches 0 cancels the subscription. The
	// subscription is connection state, not session state: a resumed
	// session re-subscribes.
	FrameWatch FrameType = 0x08

	// FrameOpenOK (server→client) acknowledges FrameOpen; payload
	// OpenReply.
	FrameOpenOK FrameType = 0x10
	// FrameResult (server→client) carries the final Result (JSON).
	FrameResult FrameType = 0x11
	// FrameSnapshotResult (server→client) carries an intermediate Result
	// (JSON).
	FrameSnapshotResult FrameType = 0x12
	// FrameError (server→client) carries a UTF-8 error message and ends
	// the session.
	FrameError FrameType = 0x13
	// FrameAck (server→client) answers FrameSync; payload is the 8-byte
	// big-endian sequence number of the last batch covered by a durable
	// checkpoint. The client may discard its replay buffer up to it.
	FrameAck FrameType = 0x14
	// FrameRetryAfter (server→client) replaces the open reply when the
	// server is at capacity or draining; payload RetryAfter (JSON). The
	// session was not admitted and the client should back off.
	FrameRetryAfter FrameType = 0x15
	// FrameMoved (server→client) replaces any reply when the session has
	// been migrated to another backend; payload Moved (JSON). The client
	// should reconnect to the named backend and resume by token there.
	FrameMoved FrameType = 0x16
	// FrameHandoffOK (server→backend) acknowledges FrameHandoff: the
	// transferred session state is installed durably and a client
	// resuming by token will find it; empty payload.
	FrameHandoffOK FrameType = 0x17
	// FrameWatchOK (server→client) acknowledges FrameWatch: the
	// subscription (or cancellation) is in effect for every batch the
	// session executes after it; empty payload.
	FrameWatchOK FrameType = 0x18
	// FrameSnapshotPush (server→client) is a server-initiated live
	// snapshot, emitted at the cadence a FrameWatch subscription
	// requested; payload Push (JSON). Unlike every other server frame
	// it is not a reply and may precede one — see the framing notes in
	// the package comment.
	FrameSnapshotPush FrameType = 0x19
)

// String names the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameOpen:
		return "open"
	case FrameBatch:
		return "batch"
	case FrameSnapshot:
		return "snapshot"
	case FrameFinish:
		return "finish"
	case FrameSync:
		return "sync"
	case FrameBatchV3:
		return "batch-v3"
	case FrameHandoff:
		return "handoff"
	case FrameOpenOK:
		return "open-ok"
	case FrameResult:
		return "result"
	case FrameSnapshotResult:
		return "snapshot-result"
	case FrameError:
		return "error"
	case FrameAck:
		return "ack"
	case FrameRetryAfter:
		return "retry-after"
	case FrameMoved:
		return "moved"
	case FrameHandoffOK:
		return "handoff-ok"
	case FrameWatch:
		return "watch"
	case FrameWatchOK:
		return "watch-ok"
	case FrameSnapshotPush:
		return "snapshot-push"
	default:
		return fmt.Sprintf("FrameType(%#x)", uint8(t))
	}
}

// MaxFramePayload bounds a frame payload. It exists to stop a corrupt or
// hostile length prefix from allocating unbounded memory; legitimate
// batch frames are a few hundred KiB.
const MaxFramePayload = 64 << 20

// frameOverhead is the frame body's fixed prefix: type byte + crc32.
const frameOverhead = 5

// frameCRC computes the checksum carried in a frame: IEEE crc32 over
// the type byte followed by the payload.
// typeCRCs[b] is the crc32 state after hashing the single byte b — the
// type-byte prefix of every frame checksum. Precomputing it keeps
// frameCRC to one crc32.Update call over the payload: a per-call byte
// buffer would escape through Update and cost a heap allocation per
// frame.
var typeCRCs = func() (t [256]uint32) {
	var b [1]byte
	for i := range t {
		b[0] = byte(i)
		t[i] = crc32.Update(0, crc32.IEEETable, b[:])
	}
	return
}()

func frameCRC(t FrameType, payload []byte) uint32 {
	return crc32.Update(typeCRCs[byte(t)], crc32.IEEETable, payload)
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("wire: %s frame payload %d bytes exceeds limit %d", t, len(payload), MaxFramePayload)
	}
	hp := hdrPool.Get().(*[9]byte)
	defer hdrPool.Put(hp)
	hdr := hp[:]
	binary.BigEndian.PutUint32(hdr[:4], uint32(frameOverhead+len(payload)))
	hdr[4] = byte(t)
	binary.BigEndian.PutUint32(hdr[5:], frameCRC(t, payload))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readChunk bounds the up-front allocation while reading a
// length-prefixed body beyond the pooled size classes: memory grows
// with the bytes actually received, so a lying length prefix cannot
// allocate MaxFramePayload up front.
const readChunk = 1 << 20

// ReadFrame reads one frame from r, verifying its checksum. io.EOF is
// returned untouched when the stream ends cleanly between frames; a
// stream cut inside a frame, an impossible length, or a checksum
// mismatch (in-flight corruption) returns a descriptive error. The
// payload is freshly allocated; hot paths that can release it promptly
// should prefer ReadFramePooled.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	return readFrame(r, false)
}

// ReadFramePooled is ReadFrame drawing the payload from the frame
// buffer pool: steady-state frame reads allocate nothing. The caller
// must release the payload with PutPayload once nothing references its
// contents — typically immediately after decoding it.
func ReadFramePooled(r io.Reader) (FrameType, []byte, error) {
	return readFrame(r, true)
}

// hdrPool recycles frame-prefix scratch buffers. A local [9]byte array
// in readFrame escapes through the io.ReadFull interface call and costs
// one heap allocation per frame; pool Get/Put on an array pointer is
// allocation-free in both directions.
var hdrPool = sync.Pool{New: func() any { return new([9]byte) }}

func readFrame(r io.Reader, pooled bool) (FrameType, []byte, error) {
	hp := hdrPool.Get().(*[9]byte)
	defer hdrPool.Put(hp)
	hdr := hp[:]
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: stream cut inside frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: zero-length frame")
	}
	if n < frameOverhead {
		return 0, nil, fmt.Errorf("wire: %d-byte frame shorter than its %d-byte fixed prefix", n, frameOverhead)
	}
	if n > MaxFramePayload+frameOverhead {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFramePayload+frameOverhead)
	}
	if _, err := io.ReadFull(r, hdr[4:]); err != nil {
		return 0, nil, fmt.Errorf("wire: stream cut inside frame prefix: %w", err)
	}
	t := FrameType(hdr[4])
	want := binary.BigEndian.Uint32(hdr[5:])

	size := int(n) - frameOverhead
	var payload []byte
	if pooled && size <= maxPooledPayload {
		// Pool classes top out at maxPooledPayload, so the up-front
		// allocation a lying prefix can force stays bounded even here.
		payload = GetPayload(size)
		if _, err := io.ReadFull(r, payload); err != nil {
			PutPayload(payload)
			return 0, nil, fmt.Errorf("wire: stream cut inside %d-byte frame: %w", n, err)
		}
	} else {
		// Single destination slice, grown chunk by chunk as the bytes
		// actually arrive and filled in place — no per-chunk scratch
		// buffer.
		payload = make([]byte, 0, min(size, readChunk))
		for len(payload) < size {
			take := min(size-len(payload), readChunk)
			off := len(payload)
			payload = grow(payload, take)[:off+take]
			if _, err := io.ReadFull(r, payload[off:]); err != nil {
				return 0, nil, fmt.Errorf("wire: stream cut inside %d-byte frame: %w", n, err)
			}
		}
	}
	if got := frameCRC(t, payload); got != want {
		if pooled {
			PutPayload(payload)
		}
		return 0, nil, fmt.Errorf("wire: %s frame checksum mismatch (corrupt stream)", t)
	}
	return t, payload, nil
}

// grow extends buf's capacity by at least n bytes without zero-filling
// scratch chunks (append-style amortized doubling).
func grow(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf
	}
	next := make([]byte, len(buf), max(2*cap(buf), len(buf)+n))
	copy(next, buf)
	return next
}

// OpenRequest is the payload of FrameOpen: the profiler configuration
// the session should run. The config round-trips exactly (integer and
// boolean fields, and a float encoded with Go's shortest-exact rule), so
// a remote profile is bit-identical to a local one with the same config.
//
// A reconnecting client resuming an interrupted session sets
// ResumeToken to the token from its original open reply and LastAcked
// to the highest batch sequence number the server has acknowledged; the
// server restores the session from its checkpoint and the client
// replays its unacknowledged tail.
type OpenRequest struct {
	Config      core.Config `json:"config"`
	ResumeToken string      `json:"resume_token,omitempty"`
	LastAcked   uint64      `json:"last_acked,omitempty"`
	// Wire is the highest wire version the client speaks (0 means the
	// original version 2). The server answers with the version the
	// session will use in OpenReply.Wire.
	Wire int `json:"wire,omitempty"`
}

// OpenReply is the payload of FrameOpenOK: the session id, the server's
// flow-control geometry (which a client can use to size its batches),
// and the session's fault-tolerance coordinates.
type OpenReply struct {
	SessionID  uint64 `json:"session_id"`
	QueueDepth int    `json:"queue_depth"`
	MaxBatch   int    `json:"max_batch"`
	// Token identifies this session for a later resume. It doubles as a
	// bearer credential, so clients should not log it.
	Token string `json:"token,omitempty"`
	// ResumeSeq is the sequence number of the last batch the restored
	// session has already executed (0 on a fresh open). The client must
	// replay batches after it and discard batches up to it.
	ResumeSeq uint64 `json:"resume_seq,omitempty"`
	// Done reports that the session already finished and its final
	// result is retained: the client should skip straight to Finish.
	// It covers the race where the final result frame is lost in flight
	// after the server completed the session.
	Done bool `json:"done,omitempty"`
	// CheckpointEvery is the server's periodic checkpoint interval in
	// batches (0 = only on disconnect), a hint for client sync cadence.
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Wire is the wire version this session will use: the minimum of the
	// client's and server's maxima (0 means the original version 2).
	// Negotiation is per connection, so a session resumed against a
	// different server may continue at a different version.
	Wire int `json:"wire,omitempty"`
}

// RetryAfter is the payload of FrameRetryAfter: the server refused to
// admit the session and suggests when to try again.
type RetryAfter struct {
	AfterMillis int64  `json:"after_ms"`
	Reason      string `json:"reason"`
}

// RetryAfterError is the error ReconnectingClient and Client surface
// when the server sheds an open with FrameRetryAfter.
type RetryAfterError struct {
	After  time.Duration
	Reason string
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("wire: server busy (%s), retry after %v", e.Reason, e.After)
}

// Result is the serializable profile exchanged between daemon and
// client: everything a Result-consuming report or dashboard needs —
// counters, modelled overhead, both histograms and the code-pair
// attribution. (The in-memory footprint estimator is rebuildable from
// ReuseTime via footprint.NewEstimatorFromHistogram and is not shipped.)
type Result struct {
	Config        core.Config          `json:"config"`
	Accesses      uint64               `json:"accesses"`
	Samples       uint64               `json:"samples"`
	ArmedSamples  uint64               `json:"armed_samples"`
	Traps         uint64               `json:"traps"`
	ReusePairs    uint64               `json:"reuse_pairs"`
	ColdSamples   uint64               `json:"cold_samples"`
	Dropped       uint64               `json:"dropped"`
	Evicted       uint64               `json:"evicted"`
	Duplicates    uint64               `json:"duplicates"`
	StateBytes    uint64               `json:"state_bytes"`
	TimeOverhead  float64              `json:"time_overhead"`
	ReuseTime     *histogram.Histogram `json:"reuse_time"`
	ReuseDistance *histogram.Histogram `json:"reuse_distance"`
	Attribution   core.Attribution     `json:"attribution,omitempty"`
	// Account is the full cycle account behind TimeOverhead (integer
	// counters, so it round-trips exactly). Shipping it makes ToCore a
	// true inverse of FromCore: a result converted to wire form and back
	// is interchangeable with the original, overhead model included.
	Account *cpumodel.Account `json:"account,omitempty"`
	// Final distinguishes the end-of-session result from a live
	// snapshot.
	Final bool `json:"final"`
}

// FromCore converts a core profiling result to its wire form.
func FromCore(res *core.Result, final bool) *Result {
	return &Result{
		Config:        res.Config,
		Accesses:      res.Accesses,
		Samples:       res.Samples,
		ArmedSamples:  res.ArmedSamples,
		Traps:         res.Traps,
		ReusePairs:    res.ReusePairs,
		ColdSamples:   res.ColdSamples,
		Dropped:       res.Dropped,
		Evicted:       res.Evicted,
		Duplicates:    res.Duplicates,
		StateBytes:    res.StateBytes,
		TimeOverhead:  res.TimeOverhead(),
		ReuseTime:     res.ReuseTime,
		ReuseDistance: res.ReuseDistance,
		Attribution:   res.Attribution,
		Account:       res.Account,
		Final:         final,
	}
}

// ToCore converts a wire result back to the in-memory core form — the
// inverse of FromCore, making local and remote profiles fully
// interchangeable. Every field that crosses the wire round-trips
// bit-identically (histogram weights and attribution floats use Go's
// shortest-exact JSON encoding; the cycle account is integers). The one
// reconstruction is Result.Footprint, which is never shipped: it is
// rebuilt from the reuse-time histogram at bucket resolution
// (footprint.NewEstimatorFromHistogram), which preserves fp(w)
// evaluation closely but is not the sample-level original. Nothing a
// Merger consumes depends on it.
func ToCore(res *Result) *core.Result {
	r := &core.Result{
		Config:        res.Config,
		ReuseTime:     res.ReuseTime,
		ReuseDistance: res.ReuseDistance,
		Attribution:   res.Attribution,
		Account:       res.Account,
		Accesses:      res.Accesses,
		Samples:       res.Samples,
		ArmedSamples:  res.ArmedSamples,
		Traps:         res.Traps,
		ReusePairs:    res.ReusePairs,
		ColdSamples:   res.ColdSamples,
		Dropped:       res.Dropped,
		Evicted:       res.Evicted,
		Duplicates:    res.Duplicates,
		StateBytes:    res.StateBytes,
	}
	if res.ReuseTime != nil {
		r.Footprint = footprint.NewEstimatorFromHistogram(res.ReuseTime, res.Accesses)
	}
	return r
}

// batchSeqBytes is the sequence-number prefix of a FrameBatch payload.
const batchSeqBytes = 8

// EncodeBatch resets buf and writes a batch payload into it: the 8-byte
// big-endian sequence number followed by the RDT3 encoding of accs.
func EncodeBatch(buf *bytes.Buffer, seq uint64, accs []mem.Access) error {
	buf.Reset()
	var hdr [batchSeqBytes]byte
	binary.BigEndian.PutUint64(hdr[:], seq)
	buf.Write(hdr[:])
	w, err := trace.NewWriter(buf)
	if err != nil {
		return err
	}
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			return err
		}
	}
	return w.Close()
}

// DecodeBatch decodes a batch payload, appending the accesses into dst
// (which may be nil) and returning the extended slice plus the batch's
// sequence number. Truncated or corrupt payloads fail with descriptive
// errors. It is DecodeBatchInto without a reuse contract; callers that
// decode batch after batch should hold one scratch slice and pass it
// back in each time.
func DecodeBatch(dst []mem.Access, payload []byte) ([]mem.Access, uint64, error) {
	return DecodeBatchInto(dst, payload)
}

// DecodeBatchInto decodes a batch payload, appending the accesses to
// dst and returning the extended slice plus the batch's sequence
// number. Decoding works directly over the payload bytes into dst's
// spare capacity: once dst has grown to the session's steady batch
// size (pass the returned slice re-sliced to [:0] for the next batch),
// a decode performs zero allocations.
func DecodeBatchInto(dst []mem.Access, payload []byte) ([]mem.Access, uint64, error) {
	if len(payload) < batchSeqBytes {
		return dst, 0, fmt.Errorf("wire: batch payload of %d bytes lacks its sequence number", len(payload))
	}
	seq := binary.BigEndian.Uint64(payload)
	var br trace.BytesReader
	if err := br.Reset(payload[batchSeqBytes:]); err != nil {
		return dst, seq, err
	}
	for {
		if len(dst) == cap(dst) {
			// Full. Decode one record into a stack slot first: a stream
			// that is in fact finished must not trigger a growth — the
			// exact-fit case is the steady state of a reused scratch.
			var one [1]mem.Access
			n, err := br.Read(one[:])
			if n == 0 {
				if err == io.EOF {
					return dst, seq, nil
				}
				if err != nil {
					return dst, seq, err
				}
			}
			grown := make([]mem.Access, len(dst), max(2*cap(dst), len(dst)+trace.DefaultBatchSize))
			copy(grown, dst)
			dst = append(grown, one[:n]...)
			if err == io.EOF {
				return dst, seq, nil
			}
			if err != nil {
				return dst, seq, err
			}
			continue
		}
		n, err := br.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, seq, nil
		}
		if err != nil {
			return dst, seq, err
		}
	}
}

// marshalJSON marshals v, panicking on programmer error (all wire
// messages are marshalable by construction).
func marshalJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("wire: marshaling %T: %v", v, err))
	}
	return data
}
