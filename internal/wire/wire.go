// Package wire defines the streaming protocol between rdx clients and
// the rdxd profiling daemon: a length-prefixed frame layer, the JSON
// control/result messages carried in frames, and the access-batch
// payload encoding (which reuses the internal/trace binary record
// format, so a recorded trace streams to the daemon byte-compatibly).
//
// # Framing
//
// Every frame is
//
//	length [4]byte  big-endian; covers type + payload
//	type   byte     FrameType
//	payload         length-1 bytes
//
// Frames never interleave within one direction of a connection. The
// client speaks first (FrameOpen); the server replies to each
// result-bearing request (FrameSnapshot, FrameFinish) in request order,
// so the client can match replies without ids. FrameError may replace
// any reply and is terminal for the session.
//
// # Batch payloads
//
// A FrameBatch payload is a complete RDT3 stream (magic, delta-encoded
// records, end-of-stream trailer — see internal/trace). Delta state
// resets at each frame boundary, so frames are independently decodable
// and a frame cut off by a dying connection is detected by the trace
// layer's truncation check, not executed half-way.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

// FrameType identifies a frame's meaning and payload encoding.
type FrameType uint8

const (
	// FrameOpen (client→server) opens a session; payload OpenRequest.
	FrameOpen FrameType = 0x01
	// FrameBatch (client→server) carries one access batch; payload RDT3.
	FrameBatch FrameType = 0x02
	// FrameSnapshot (client→server) requests a live intermediate result;
	// empty payload.
	FrameSnapshot FrameType = 0x03
	// FrameFinish (client→server) ends the stream and requests the final
	// result; empty payload.
	FrameFinish FrameType = 0x04

	// FrameOpenOK (server→client) acknowledges FrameOpen; payload
	// OpenReply.
	FrameOpenOK FrameType = 0x10
	// FrameResult (server→client) carries the final Result (JSON).
	FrameResult FrameType = 0x11
	// FrameSnapshotResult (server→client) carries an intermediate Result
	// (JSON).
	FrameSnapshotResult FrameType = 0x12
	// FrameError (server→client) carries a UTF-8 error message and ends
	// the session.
	FrameError FrameType = 0x13
)

// String names the frame type for diagnostics.
func (t FrameType) String() string {
	switch t {
	case FrameOpen:
		return "open"
	case FrameBatch:
		return "batch"
	case FrameSnapshot:
		return "snapshot"
	case FrameFinish:
		return "finish"
	case FrameOpenOK:
		return "open-ok"
	case FrameResult:
		return "result"
	case FrameSnapshotResult:
		return "snapshot-result"
	case FrameError:
		return "error"
	default:
		return fmt.Sprintf("FrameType(%#x)", uint8(t))
	}
}

// MaxFramePayload bounds a frame payload. It exists to stop a corrupt or
// hostile length prefix from allocating unbounded memory; legitimate
// batch frames are a few hundred KiB.
const MaxFramePayload = 64 << 20

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("wire: %s frame payload %d bytes exceeds limit %d", t, len(payload), MaxFramePayload)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one frame from r. io.EOF is returned untouched when
// the stream ends cleanly between frames; a stream cut inside a frame
// returns a descriptive error.
func ReadFrame(r io.Reader) (FrameType, []byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("wire: stream cut inside frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: zero-length frame")
	}
	if n > MaxFramePayload+1 {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, MaxFramePayload+1)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("wire: stream cut inside %d-byte frame: %w", n, err)
	}
	return FrameType(body[0]), body[1:], nil
}

// OpenRequest is the payload of FrameOpen: the profiler configuration
// the session should run. The config round-trips exactly (integer and
// boolean fields, and a float encoded with Go's shortest-exact rule), so
// a remote profile is bit-identical to a local one with the same config.
type OpenRequest struct {
	Config core.Config `json:"config"`
}

// OpenReply is the payload of FrameOpenOK: the session id and the
// server's flow-control geometry, which a client can use to size its
// batches.
type OpenReply struct {
	SessionID  uint64 `json:"session_id"`
	QueueDepth int    `json:"queue_depth"`
	MaxBatch   int    `json:"max_batch"`
}

// Result is the serializable profile exchanged between daemon and
// client: everything a Result-consuming report or dashboard needs —
// counters, modelled overhead, both histograms and the code-pair
// attribution. (The in-memory footprint estimator is rebuildable from
// ReuseTime via footprint.NewEstimatorFromHistogram and is not shipped.)
type Result struct {
	Config        core.Config          `json:"config"`
	Accesses      uint64               `json:"accesses"`
	Samples       uint64               `json:"samples"`
	ArmedSamples  uint64               `json:"armed_samples"`
	Traps         uint64               `json:"traps"`
	ReusePairs    uint64               `json:"reuse_pairs"`
	ColdSamples   uint64               `json:"cold_samples"`
	Dropped       uint64               `json:"dropped"`
	Evicted       uint64               `json:"evicted"`
	Duplicates    uint64               `json:"duplicates"`
	StateBytes    uint64               `json:"state_bytes"`
	TimeOverhead  float64              `json:"time_overhead"`
	ReuseTime     *histogram.Histogram `json:"reuse_time"`
	ReuseDistance *histogram.Histogram `json:"reuse_distance"`
	Attribution   core.Attribution     `json:"attribution,omitempty"`
	// Final distinguishes the end-of-session result from a live
	// snapshot.
	Final bool `json:"final"`
}

// FromCore converts a core profiling result to its wire form.
func FromCore(res *core.Result, final bool) *Result {
	return &Result{
		Config:        res.Config,
		Accesses:      res.Accesses,
		Samples:       res.Samples,
		ArmedSamples:  res.ArmedSamples,
		Traps:         res.Traps,
		ReusePairs:    res.ReusePairs,
		ColdSamples:   res.ColdSamples,
		Dropped:       res.Dropped,
		Evicted:       res.Evicted,
		Duplicates:    res.Duplicates,
		StateBytes:    res.StateBytes,
		TimeOverhead:  res.TimeOverhead(),
		ReuseTime:     res.ReuseTime,
		ReuseDistance: res.ReuseDistance,
		Attribution:   res.Attribution,
		Final:         final,
	}
}

// EncodeBatch appends the RDT3 encoding of accs to buf (reset first).
func EncodeBatch(buf *bytes.Buffer, accs []mem.Access) error {
	buf.Reset()
	w, err := trace.NewWriter(buf)
	if err != nil {
		return err
	}
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			return err
		}
	}
	return w.Close()
}

// DecodeBatch decodes an RDT3 batch payload, appending into dst (which
// may be nil) and returning the extended slice. Truncated or corrupt
// payloads fail with the trace layer's descriptive errors.
func DecodeBatch(dst []mem.Access, payload []byte) ([]mem.Access, error) {
	r, err := trace.NewReader(bytes.NewReader(payload))
	if err != nil {
		return dst, err
	}
	buf := make([]mem.Access, trace.DefaultBatchSize)
	for {
		n, err := r.Read(buf)
		dst = append(dst, buf[:n]...)
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// marshalJSON marshals v, panicking on programmer error (all wire
// messages are marshalable by construction).
func marshalJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("wire: marshaling %T: %v", v, err))
	}
	return data
}
