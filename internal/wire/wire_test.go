package wire

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []struct {
		t       FrameType
		payload []byte
	}{
		{FrameOpen, []byte(`{"config":{}}`)},
		{FrameBatch, bytes.Repeat([]byte{0xAB}, 100000)},
		{FrameSnapshot, nil},
		{FrameFinish, []byte{}},
		{FrameError, []byte("session limit reached")},
	}
	for _, f := range frames {
		if err := WriteFrame(&buf, f.t, f.payload); err != nil {
			t.Fatal(err)
		}
	}
	for i, f := range frames {
		ft, payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if ft != f.t {
			t.Fatalf("frame %d: type %s, want %s", i, ft, f.t)
		}
		if !bytes.Equal(payload, f.payload) && len(f.payload) > 0 {
			t.Fatalf("frame %d: payload mismatch (%d vs %d bytes)", i, len(payload), len(f.payload))
		}
	}
	if _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream: err=%v, want io.EOF", err)
	}
}

func TestFrameTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, FrameBatch, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		_, _, err := ReadFrame(bytes.NewReader(full[:cut]))
		if err == nil || err == io.EOF {
			t.Errorf("cut=%d: truncated frame read as %v", cut, err)
		}
	}
}

// TestFrameDetectsCorruption: flipping any single byte of an encoded
// frame must surface as an error (checksum mismatch, bad length or a
// detectable downstream failure) — never as a silently altered payload.
func TestFrameDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("reuse-distance payload 0123456789")
	if err := WriteFrame(&buf, FrameBatch, payload); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		for _, flip := range []byte{0x01, 0x80} {
			bad := append([]byte(nil), full...)
			bad[i] ^= flip
			ft, got, err := ReadFrame(bytes.NewReader(bad))
			if err != nil {
				continue // detected: good
			}
			if ft == FrameBatch && bytes.Equal(got, payload) {
				t.Fatalf("byte %d flipped by %#x decoded unchanged", i, flip)
			}
			t.Fatalf("byte %d flipped by %#x decoded without error as %s frame", i, flip, ft)
		}
	}
}

func TestFrameRejectsOversizedAndZero(t *testing.T) {
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, byte(FrameBatch)}
	if _, _, err := ReadFrame(bytes.NewReader(huge)); err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("oversized frame: %v", err)
	}
	zero := []byte{0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(zero)); err == nil {
		t.Error("zero-length frame accepted")
	}
	if err := WriteFrame(io.Discard, FrameBatch, make([]byte, MaxFramePayload+1)); err == nil {
		t.Error("oversized write accepted")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	accs := []mem.Access{
		{Addr: 0, PC: 0x400000, Size: 8, Kind: mem.Load},
		{Addr: 1 << 44, PC: 0x400010, Size: 4, Kind: mem.Store},
		{Addr: 64, PC: 0x400020, Size: 1, Kind: mem.Load},
	}
	var buf bytes.Buffer
	if err := EncodeBatch(&buf, 42, accs); err != nil {
		t.Fatal(err)
	}
	out, seq, err := DecodeBatch(nil, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Fatalf("sequence number round-tripped to %d, want 42", seq)
	}
	if !reflect.DeepEqual(out, accs) {
		t.Fatalf("batch roundtrip mismatch:\n got %v\nwant %v", out, accs)
	}

	// A cut-off payload must be rejected, not half-executed.
	for cut := 0; cut < buf.Len(); cut++ {
		if _, _, err := DecodeBatch(nil, buf.Bytes()[:cut]); err == nil {
			t.Errorf("cut=%d: truncated batch decoded without error", cut)
		}
	}
}

// TestBatchDeltaStateResetsPerFrame: two frames encoded independently
// decode independently — frame 2 does not need frame 1's delta state.
func TestBatchDeltaStateResetsPerFrame(t *testing.T) {
	a := []mem.Access{{Addr: 1 << 40, PC: 0x400000, Size: 8}}
	b := []mem.Access{{Addr: 8, PC: 0x400004, Size: 8}}
	var f1, f2 bytes.Buffer
	if err := EncodeBatch(&f1, 1, a); err != nil {
		t.Fatal(err)
	}
	if err := EncodeBatch(&f2, 2, b); err != nil {
		t.Fatal(err)
	}
	out, _, err := DecodeBatch(nil, f2.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != b[0] {
		t.Fatalf("frame 2 decoded to %v, want %v", out[0], b[0])
	}
}

// TestResultJSONBitExact: a profiled result survives the JSON trip with
// every float64 bit intact (Go's shortest-exact encoding), which the
// daemon's bit-identical-to-local guarantee rests on.
func TestResultJSONBitExact(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = 200
	p, err := core.NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(trace.ZipfAccess(5, 0, 4096, 1.0, 300000), cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	w := FromCore(res, true)
	if w.ReusePairs == 0 || w.ReuseDistance.Total() == 0 {
		t.Fatal("test profile is empty")
	}

	data, err := json.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(back.ReuseDistance.Snapshot(), w.ReuseDistance.Snapshot()) {
		t.Error("reuse-distance histogram changed across JSON")
	}
	if !reflect.DeepEqual(back.ReuseTime.Snapshot(), w.ReuseTime.Snapshot()) {
		t.Error("reuse-time histogram changed across JSON")
	}
	if !reflect.DeepEqual(back.Attribution, w.Attribution) {
		t.Error("attribution changed across JSON")
	}
	if back.Config != w.Config {
		t.Errorf("config changed across JSON: %+v vs %+v", back.Config, w.Config)
	}
	if math.Float64bits(back.TimeOverhead) != math.Float64bits(w.TimeOverhead) {
		t.Errorf("overhead changed across JSON: %v vs %v", back.TimeOverhead, w.TimeOverhead)
	}
	if back.Accesses != w.Accesses || back.StateBytes != w.StateBytes || !back.Final {
		t.Error("counters changed across JSON")
	}
}

// TestHistogramJSONPreservesWeightBits checks the histogram layer (used
// by Result) against adversarial float values.
func TestHistogramJSONPreservesWeightBits(t *testing.T) {
	h := histogram.New()
	h.Add(1, 0.1)                      // classic non-representable decimal
	h.Add(1000, 1e-300)                // subnormal-adjacent
	h.Add(1<<40, 12345.678901234567)   // many significant digits
	h.Add(histogram.Infinite, 1.0/3.0) // repeating binary fraction
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back histogram.Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Snapshot(), h.Snapshot()) {
		t.Fatalf("histogram JSON not bit-exact:\n got %+v\nwant %+v", back.Snapshot(), h.Snapshot())
	}
}

// TestToCoreInverseOfFromCore is the round-trip property test behind
// the pool's merge: core→wire→core→wire must be byte-identical JSON for
// every replacement policy, so a result shipped back from a backend is
// interchangeable with the local original. Footprint is the documented
// exception (rebuilt at histogram resolution, never shipped) and is
// checked for presence and approximate agreement instead.
func TestToCoreInverseOfFromCore(t *testing.T) {
	policies := []core.ReplacementPolicy{
		core.ReplaceProbabilistic, core.ReplaceReservoir,
		core.ReplaceAlways, core.ReplaceNever, core.ReplaceHybrid,
	}
	for _, pol := range policies {
		cfg := core.DefaultConfig()
		cfg.SamplePeriod = 300
		cfg.Replacement = pol
		p, err := core.NewProfiler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(trace.ZipfAccess(9, 0, 4096, 1.0, 200000), cpumodel.Default())
		if err != nil {
			t.Fatal(err)
		}
		w := FromCore(res, true)
		if w.Account == nil {
			t.Fatalf("%v: FromCore did not ship the cycle account", pol)
		}
		back := ToCore(w)
		w2 := FromCore(back, true)
		j1, err := json.Marshal(w)
		if err != nil {
			t.Fatal(err)
		}
		j2, err := json.Marshal(w2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j1, j2) {
			t.Errorf("%v: wire form not preserved across ToCore:\n %s\nvs %s", pol, j1, j2)
		}
		if math.Float64bits(back.TimeOverhead()) != math.Float64bits(res.TimeOverhead()) {
			t.Errorf("%v: overhead model did not round-trip: %v vs %v", pol, back.TimeOverhead(), res.TimeOverhead())
		}
		if res.Footprint != nil {
			if back.Footprint == nil {
				t.Fatalf("%v: footprint not rebuilt", pol)
			}
			// Histogram-resolution rebuild: same order of magnitude at a
			// mid-range window, not bit-identity.
			orig, rebuilt := res.Footprint.Footprint(1000), back.Footprint.Footprint(1000)
			if orig > 0 && (rebuilt < orig/4 || rebuilt > orig*4) {
				t.Errorf("%v: rebuilt footprint diverges: fp(1000) = %v vs %v", pol, rebuilt, orig)
			}
		}
	}
}

// TestToCoreMergesLikeLocal checks the property the pool relies on:
// merging wire-round-tripped results is bit-identical to merging the
// originals.
func TestToCoreMergesLikeLocal(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = 300
	var local, shipped []*core.Result
	for i := 0; i < 3; i++ {
		p, err := core.NewProfiler(core.ThreadConfig(cfg, i))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(trace.ZipfAccess(uint64(30+i), mem.Addr(uint64(i)<<40), 2048, 1.0, 80000), cpumodel.Default())
		if err != nil {
			t.Fatal(err)
		}
		local = append(local, res)
		shipped = append(shipped, ToCore(FromCore(res, true)))
	}
	want := core.MergeResults(local)
	got := core.MergeResults(shipped)
	if !reflect.DeepEqual(got.ReuseDistance.Snapshot(), want.ReuseDistance.Snapshot()) {
		t.Error("merged reuse-distance differs after wire round-trip")
	}
	if !reflect.DeepEqual(got.Attribution, want.Attribution) {
		t.Error("merged attribution differs after wire round-trip")
	}
	if got.Accesses != want.Accesses || got.Samples != want.Samples || got.ReusePairs != want.ReusePairs {
		t.Error("merged counters differ after wire round-trip")
	}
}
