package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"
)

// Live session migration: checkpoint handover between backends.
//
// A backend draining (or rebalancing) pushes each session's retained
// state to a destination backend with a FrameHandoff — sent as a
// connection's first frame, in place of FrameOpen — and waits for
// FrameHandoffOK, which promises the state is installed as durably as
// the destination stores checkpoints. Only then does the source tell
// the session's client where it went (FrameMoved, or a moved answer to
// a later resume attempt), so a client can never be redirected to a
// backend that does not hold its session.
//
// The handoff payload is binary (checkpoint blobs are large and already
// framed/CRC'd by the transport):
//
//	kind  u8       HandoffLive or HandoffFinal
//	seq   u64      last batch sequence number the state covers
//	tlen  u8       token length in bytes
//	token tlen     session token (the client's resume credential)
//	body  rest     checkpoint blob (live) or final-result JSON (final)

// Handoff state kinds.
const (
	// HandoffLive transfers a resumable mid-stream checkpoint.
	HandoffLive byte = 0
	// HandoffFinal transfers a finished session's retained final result.
	HandoffFinal byte = 1
)

// Moved is the payload of FrameMoved: the session now lives on the
// named backend; the client should resume by token there. Seq is the
// batch sequence number the handed-over state covers — everything up to
// it is executed and durable at the new backend, so the client may trim
// its replay buffer to the batches after it (ack preservation: no batch
// below Seq is ever replayed, let alone executed twice).
type Moved struct {
	Addr  string `json:"addr"`
	Admin string `json:"admin,omitempty"`
	Seq   uint64 `json:"seq"`
}

// MovedError is the error Client surfaces when the server answers with
// FrameMoved: not a fault but a redirect. ReconnectingClient follows it
// transparently; direct Client users re-dial Addr and Resume there.
type MovedError struct {
	Addr  string
	Admin string
	Seq   uint64
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("wire: session moved to %s (state through batch %d)", e.Addr, e.Seq)
}

// handoffFixed is the handoff payload's fixed prefix: kind + seq + tlen.
const handoffFixed = 1 + 8 + 1

// EncodeHandoff appends the handoff payload for one session state to
// dst (which may be nil) and returns the extended slice.
func EncodeHandoff(dst []byte, kind byte, seq uint64, token string, body []byte) ([]byte, error) {
	if kind != HandoffLive && kind != HandoffFinal {
		return dst, fmt.Errorf("wire: unknown handoff kind %d", kind)
	}
	if len(token) == 0 || len(token) > 255 {
		return dst, fmt.Errorf("wire: handoff token length %d outside [1,255]", len(token))
	}
	var hdr [handoffFixed]byte
	hdr[0] = kind
	binary.BigEndian.PutUint64(hdr[1:], seq)
	hdr[9] = byte(len(token))
	dst = append(dst, hdr[:]...)
	dst = append(dst, token...)
	return append(dst, body...), nil
}

// DecodeHandoff splits a handoff payload into its parts. The returned
// body aliases payload; callers installing it past the payload's
// lifetime (pooled frame buffers) must copy it first.
func DecodeHandoff(payload []byte) (kind byte, seq uint64, token string, body []byte, err error) {
	if len(payload) < handoffFixed {
		return 0, 0, "", nil, fmt.Errorf("wire: handoff payload of %d bytes shorter than its %d-byte prefix", len(payload), handoffFixed)
	}
	kind = payload[0]
	if kind != HandoffLive && kind != HandoffFinal {
		return 0, 0, "", nil, fmt.Errorf("wire: unknown handoff kind %d", kind)
	}
	seq = binary.BigEndian.Uint64(payload[1:])
	tlen := int(payload[9])
	if tlen == 0 || len(payload) < handoffFixed+tlen {
		return 0, 0, "", nil, fmt.Errorf("wire: handoff token length %d exceeds payload", tlen)
	}
	token = string(payload[handoffFixed : handoffFixed+tlen])
	return kind, seq, token, payload[handoffFixed+tlen:], nil
}

// PushHandoff dials addr, transfers one session state, and waits for
// the destination's acknowledgment. dial may be nil (plain TCP);
// timeout bounds the whole exchange — a destination that accepted the
// connection but stalls cannot pin the migrating runner. A FrameError
// reply (destination draining, malformed state) comes back as an error;
// the caller keeps the session running locally and may try another
// destination.
func PushHandoff(ctx context.Context, dial func(ctx context.Context, addr string) (net.Conn, error), addr string, kind byte, seq uint64, token string, body []byte, timeout time.Duration) error {
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	dctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	conn, err := dial(dctx, addr)
	if err != nil {
		return fmt.Errorf("wire: handoff dial %s: %w", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	payload, err := EncodeHandoff(nil, kind, seq, token, body)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(conn, 64<<10)
	if err := WriteFrame(bw, FrameHandoff, payload); err != nil {
		return fmt.Errorf("wire: handoff to %s: %w", addr, err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("wire: handoff to %s: %w", addr, err)
	}
	t, reply, err := ReadFrame(bufio.NewReader(conn))
	if err != nil {
		return fmt.Errorf("wire: handoff to %s: reading reply: %w", addr, err)
	}
	switch t {
	case FrameHandoffOK:
		return nil
	case FrameError:
		return fmt.Errorf("wire: handoff to %s: %w: %s", addr, ErrRemote, reply)
	default:
		return fmt.Errorf("wire: handoff to %s: unexpected %s reply", addr, t)
	}
}
