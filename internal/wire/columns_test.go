package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// wireTestAccesses draws a batch mixing strided runs, random jumps and
// the full size/kind alphabet — the shapes the column encodings must
// round-trip and the corruption checks must survive.
func wireTestAccesses(seed uint64, n int) []mem.Access {
	rng := stats.NewRNG(seed)
	sizes := []uint8{1, 2, 4, 8}
	accs := make([]mem.Access, n)
	addr := mem.Addr(rng.Uint64n(1 << 40))
	for i := range accs {
		if rng.Uint64n(8) == 0 {
			addr = mem.Addr(rng.Uint64())
		} else {
			addr += 64
		}
		accs[i] = mem.Access{
			Addr: addr,
			PC:   0x400000 + mem.Addr(rng.Uint64n(1<<10))*4,
			Size: sizes[rng.Uint64n(4)],
			Kind: mem.Kind(rng.Uint64n(2)),
		}
	}
	return accs
}

// TestEncodeColumnsRoundTrip: encode → decode must reproduce the batch
// and sequence number bit-exactly, for many batch shapes, and decoding
// must be byte-identical to the v2 RDT3 decode of the same accesses.
func TestEncodeColumnsRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100, 4096, 10000} {
		accs := wireTestAccesses(uint64(n)+3, n)
		var cols trace.Columns
		cols.AppendBatch(accs)
		payload, err := EncodeColumns(nil, uint64(n)*7+1, &cols)
		if err != nil {
			t.Fatalf("n=%d: encode: %v", n, err)
		}

		var back trace.Columns
		seq, err := DecodeColumnsInto(&back, payload)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if seq != uint64(n)*7+1 {
			t.Fatalf("n=%d: seq = %d", n, seq)
		}
		got := back.AppendTo(nil)
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d accesses", n, len(got))
		}
		for i := range got {
			if got[i] != accs[i] {
				t.Fatalf("n=%d: access %d changed: %v -> %v", n, i, accs[i], got[i])
			}
		}

		// Cross-check against the v2 framing: same accesses, same result.
		var v2 bytes.Buffer
		if err := EncodeBatch(&v2, 1, accs); err != nil {
			t.Fatal(err)
		}
		v2accs, _, err := DecodeBatch(nil, v2.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if len(v2accs) != len(got) {
			t.Fatalf("n=%d: v2 decoded %d, v3 decoded %d", n, len(v2accs), len(got))
		}
		for i := range got {
			if got[i] != v2accs[i] {
				t.Fatalf("n=%d: framings disagree at access %d", n, i)
			}
		}
	}
}

// TestEncodeColumnsReuse: steady-state encode and decode into reused
// scratch must not corrupt earlier results and must stay exact.
func TestEncodeColumnsReuse(t *testing.T) {
	var cols, back trace.Columns
	var payload []byte
	for round := 0; round < 5; round++ {
		accs := wireTestAccesses(uint64(round)+77, 3000)
		cols.Reset()
		cols.AppendBatch(accs)
		var err error
		payload, err = EncodeColumns(payload, uint64(round), &cols)
		if err != nil {
			t.Fatal(err)
		}
		back.Reset()
		seq, err := DecodeColumnsInto(&back, payload)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if seq != uint64(round) {
			t.Fatalf("round %d: seq %d", round, seq)
		}
		for i, a := range back.AppendTo(nil) {
			if a != accs[i] {
				t.Fatalf("round %d: access %d changed", round, i)
			}
		}
	}
}

// TestDecodeColumnsCorruption: every flipped byte must be caught by a
// column checksum (or a structural check) — never decode to different
// accesses, never panic.
func TestDecodeColumnsCorruption(t *testing.T) {
	accs := wireTestAccesses(5, 512)
	var cols trace.Columns
	cols.AppendBatch(accs)
	payload, err := EncodeColumns(nil, 9, &cols)
	if err != nil {
		t.Fatal(err)
	}

	// Flipping any byte after the seq prefix must fail decode: count and
	// section headers are covered by structural checks and the column
	// CRCs cover tag + data. (Seq bytes are protected by the outer frame
	// CRC in transit, not by the payload itself.)
	for off := batchSeqBytes; off < len(payload); off++ {
		mut := append([]byte(nil), payload...)
		mut[off] ^= 0x40
		var back trace.Columns
		if _, err := DecodeColumnsInto(&back, mut); err == nil {
			t.Fatalf("flipped byte %d accepted", off)
		}
	}
	// Truncation anywhere must fail.
	for cut := 0; cut < len(payload); cut++ {
		var back trace.Columns
		if _, err := DecodeColumnsInto(&back, payload[:cut]); err == nil {
			t.Fatalf("truncation at byte %d accepted", cut)
		}
	}
	// Trailing garbage must fail.
	var back trace.Columns
	if _, err := DecodeColumnsInto(&back, append(append([]byte(nil), payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestDecodeColumnsCountBound: a header declaring an absurd count must
// be refused before any column scratch is grown.
func TestDecodeColumnsCountBound(t *testing.T) {
	var payload [columnsHdrBytes]byte
	binary.BigEndian.PutUint32(payload[batchSeqBytes:], MaxColumnBatch+1)
	var back trace.Columns
	if _, err := DecodeColumnsInto(&back, payload[:]); err == nil {
		t.Fatal("oversized count accepted")
	}
}

// TestColumnsPoolRecirculates: Get/Put must hand back reusable scratch.
func TestColumnsPoolRecirculates(t *testing.T) {
	c := GetColumns()
	c.AppendBatch(wireTestAccesses(1, 100))
	PutColumns(c)
	c2 := GetColumns()
	defer PutColumns(c2)
	if c2.Len() != 0 {
		t.Fatalf("pooled columns not reset: len %d", c2.Len())
	}
	PutColumns(nil) // no-op
}

// FuzzDecodeColumns throws arbitrary bytes at the v3 batch decoder:
// malformed headers, lying section lengths, corrupt column data and
// truncation must all return errors, never panic; a payload that
// decodes must round-trip bit-exactly through the encoder.
func FuzzDecodeColumns(f *testing.F) {
	var cols trace.Columns
	cols.AppendBatch(wireTestAccesses(2, 64))
	seed, err := EncodeColumns(nil, 3, &cols)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:columnsHdrBytes])
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		t.Helper()
		var c trace.Columns
		seq, err := DecodeColumnsInto(&c, data)
		if err != nil {
			return
		}
		re, err := EncodeColumns(nil, seq, &c)
		if err != nil {
			t.Fatalf("decoded batch fails to re-encode: %v", err)
		}
		var c2 trace.Columns
		seq2, err := DecodeColumnsInto(&c2, re)
		if err != nil || seq2 != seq || c2.Len() != c.Len() {
			t.Fatalf("batch does not round-trip: %v", err)
		}
		for i := 0; i < c.Len(); i++ {
			if c.Access(i) != c2.Access(i) {
				t.Fatalf("access %d changed across round-trip", i)
			}
		}
	})
}
