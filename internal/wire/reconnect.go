package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RetryPolicy tunes a ReconnectingClient's fault handling. The zero
// value means "use the defaults" for every field.
type RetryPolicy struct {
	// MaxAttempts is the number of consecutive failed attempts (dial,
	// open/resume or RPC) after which an operation gives up (default 8).
	// The counter resets on every success, so a long session survives
	// any number of isolated faults.
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 50ms); each further
	// consecutive failure doubles it up to MaxDelay (default 2s), with
	// ±50% deterministic jitter from Seed.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// DialTimeout bounds each connection attempt (default
	// DefaultDialTimeout).
	DialTimeout time.Duration
	// OpTimeout is the per-RPC I/O deadline (default 30s): no send or
	// reply wait can hang longer, even without a context deadline.
	OpTimeout time.Duration
	// SyncEvery requests a durable server checkpoint (and replay-buffer
	// trim) every that many batches (default 32; negative disables).
	SyncEvery int
	// Seed makes the backoff jitter deterministic.
	Seed uint64
	// Dial overrides the transport (fault-injection tests plug their
	// wrapped dialer in here). Default: DialContext on addr.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
}

func (p *RetryPolicy) fill() {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = DefaultDialTimeout
	}
	if p.OpTimeout <= 0 {
		p.OpTimeout = 30 * time.Second
	}
	if p.SyncEvery == 0 {
		p.SyncEvery = 32
	}
}

// ReconnectStats counts a ReconnectingClient's fault-tolerance events.
type ReconnectStats struct {
	// Reconnects is the number of connections established after the
	// first (each one followed a fault).
	Reconnects uint64
	// ReplayedBatches counts batches re-sent from the replay buffer
	// during resumes.
	ReplayedBatches uint64
	// Syncs counts successful durable-checkpoint acknowledgments.
	Syncs uint64
	// AckedSeq is the highest batch sequence number the server has
	// durably acknowledged.
	AckedSeq uint64
	// Moves counts migration redirects followed: the session was handed
	// to another backend and this client resumed it there.
	Moves uint64
	// Pushes counts subscribed snapshot pushes delivered (replayed
	// duplicates dropped by sequence number are not counted).
	Pushes uint64
}

// pendingBatch is one unacknowledged batch held for replay.
type pendingBatch struct {
	seq  uint64
	accs []mem.Access
}

// ReconnectingClient is a fault-tolerant session against an rdxd
// daemon: it wraps Client with automatic reconnection, exponential
// backoff with jitter, idempotent replay of unacknowledged batches via
// the checkpoint/resume handshake, and an I/O deadline on every RPC.
// Like Client it is not safe for concurrent use.
type ReconnectingClient struct {
	addr   string
	cfg    core.Config
	policy RetryPolicy
	rng    *stats.RNG

	c     *Client
	conn  net.Conn
	reply OpenReply

	maxWire   int // highest wire version to offer on each connection
	token     string
	lastAcked uint64
	nextSeq   uint64 // session-level sequence of the next new batch
	pending   []pendingBatch
	free      [][]mem.Access // acked replay buffers awaiting reuse
	sinceSync int
	connected bool // a connection has succeeded at least once
	finished  bool
	moves     int // moved redirects followed since the last successful op

	// Watch subscription state. The subscription itself is connection
	// state (each reconnect re-subscribes in ensure); the sequence
	// bookkeeping is session state, so replayed pushes dedup across
	// connections.
	watchEvery  int
	onPush      func(*Push)
	lastPushSeq uint64
	lastPush    *Push

	stats ReconnectStats
}

// NewReconnectingClient prepares a resilient session against addr with
// the given profiler configuration. No connection is made until the
// first operation.
func NewReconnectingClient(addr string, cfg core.Config, policy RetryPolicy) *ReconnectingClient {
	policy.fill()
	return &ReconnectingClient{
		addr:    addr,
		cfg:     cfg,
		policy:  policy,
		rng:     stats.NewRNG(policy.Seed ^ 0x5e551077),
		nextSeq: 1,
	}
}

// Stats returns the fault-tolerance counters accumulated so far.
func (r *ReconnectingClient) Stats() ReconnectStats { return r.stats }

// SetMaxWireVersion caps the wire version offered on every connection
// this session establishes (default: the latest, WireV3). Negotiation
// is per connection: a session that reconnects to a different server
// may continue at a different version — replayed batches are re-encoded
// at send time, so the replay buffer is version-agnostic.
func (r *ReconnectingClient) SetMaxWireVersion(v int) { r.maxWire = v }

// WireVersion reports the wire version negotiated on the most recent
// connection (0 before the first).
func (r *ReconnectingClient) WireVersion() int {
	if r.c != nil {
		return r.c.WireVersion()
	}
	return r.reply.Wire
}

// Open establishes the session eagerly and returns the server's reply.
// It is optional: every operation connects on demand.
func (r *ReconnectingClient) Open(ctx context.Context) (OpenReply, error) {
	err := r.withRetry(ctx, func(*Client) error { return nil })
	return r.reply, err
}

// SendBatch streams one batch, buffering it for replay until the server
// acknowledges a covering checkpoint. The accesses are copied, so the
// caller may reuse its slice. Every RetryPolicy.SyncEvery batches a
// durable checkpoint is requested and the replay buffer trimmed.
func (r *ReconnectingClient) SendBatch(ctx context.Context, accs []mem.Access) error {
	if r.finished {
		return fmt.Errorf("wire: session already finished")
	}
	if len(accs) == 0 {
		return nil
	}
	// Copy into a recycled replay buffer when one is free (acked batches
	// return theirs via noteAcked), so a steady-state stream stops
	// allocating once the replay window's worth of buffers exists.
	var cp []mem.Access
	if n := len(r.free); n > 0 {
		cp = append(r.free[n-1][:0], accs...)
		r.free[n-1] = nil
		r.free = r.free[:n-1]
	} else {
		cp = append([]mem.Access(nil), accs...)
	}
	seq := r.nextSeq
	r.nextSeq++
	r.pending = append(r.pending, pendingBatch{seq: seq, accs: cp})

	err := r.withRetry(ctx, func(c *Client) error {
		if c.NextSeq() > seq {
			return nil // already delivered by resume replay
		}
		if c.NextSeq() < seq {
			return fmt.Errorf("wire: sequence gap: connection at %d, batch %d", c.NextSeq(), seq)
		}
		return c.SendBatch(cp)
	})
	if err != nil {
		return err
	}
	r.sinceSync++
	if r.policy.SyncEvery > 0 && r.sinceSync >= r.policy.SyncEvery {
		if _, err := r.Sync(ctx); err != nil {
			return err
		}
	}
	return nil
}

// Sync requests a durable server checkpoint, trims the replay buffer to
// the batches after the acknowledged sequence number, and returns it.
func (r *ReconnectingClient) Sync(ctx context.Context) (uint64, error) {
	var acked uint64
	err := r.withRetry(ctx, func(c *Client) error {
		a, err := c.Sync()
		if err != nil {
			return err
		}
		acked = a
		return nil
	})
	if err != nil {
		return 0, err
	}
	r.noteAcked(acked)
	r.stats.Syncs++
	r.sinceSync = 0
	return acked, nil
}

// Snapshot requests a live intermediate result.
func (r *ReconnectingClient) Snapshot(ctx context.Context) (*Result, error) {
	var res *Result
	err := r.withRetry(ctx, func(c *Client) error {
		s, err := c.Snapshot()
		if err != nil {
			return err
		}
		res = s
		return nil
	})
	return res, err
}

// Finish ends the stream and returns the final result. If the final
// result frame is lost in flight, the retry resumes the session — the
// server retains a finished session's result for exactly this replay —
// and fetches it again.
func (r *ReconnectingClient) Finish(ctx context.Context) (*Result, error) {
	var res *Result
	err := r.withRetry(ctx, func(c *Client) error {
		f, err := c.Finish()
		if err != nil {
			return err
		}
		res = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.finished = true
	r.pending = nil
	return res, nil
}

// Close releases the current connection, if any.
func (r *ReconnectingClient) Close() error {
	r.dropConn()
	return nil
}

// Profile streams tr through the resilient session end to end and
// returns the final result: the fault-tolerant analogue of
// Client.Profile.
func (r *ReconnectingClient) Profile(ctx context.Context, tr trace.Reader, opts ProfileOptions) (*Result, error) {
	batch := opts.BatchSize
	if batch <= 0 {
		batch = trace.DefaultBatchSize
	}
	if opts.MaxWireVersion != 0 {
		r.SetMaxWireVersion(opts.MaxWireVersion)
	}
	var buf []mem.Access
	if batch <= trace.DefaultBatchSize {
		buf = trace.BatchBuf()[:batch]
		defer trace.ReleaseBatchBuf(buf)
	} else {
		buf = make([]mem.Access, batch)
	}
	sent := 0
	for {
		n, rerr := tr.Read(buf)
		if n > 0 {
			if err := r.SendBatch(ctx, buf[:n]); err != nil {
				return nil, err
			}
			sent++
			if opts.SnapshotEvery > 0 && sent%opts.SnapshotEvery == 0 {
				snap, err := r.Snapshot(ctx)
				if err != nil {
					return nil, err
				}
				if opts.OnSnapshot != nil {
					opts.OnSnapshot(snap)
				}
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return nil, fmt.Errorf("wire: reading access stream: %w", rerr)
		}
	}
	return r.Finish(ctx)
}

// Watch subscribes the session to pushed snapshots every everyBatches
// executed batches (0 cancels). onPush, when non-nil, receives each
// push as it drains off the connection — on the goroutine driving the
// client, like every other callback. The subscription survives
// reconnects: ensure re-subscribes each fresh connection, and pushes
// re-emitted by idempotent replay are dropped by sequence number, so
// the callback sees every boundary exactly once, in order.
func (r *ReconnectingClient) Watch(ctx context.Context, everyBatches int, onPush func(*Push)) error {
	if r.finished {
		return fmt.Errorf("wire: session already finished")
	}
	if everyBatches < 0 {
		return fmt.Errorf("wire: negative watch cadence %d", everyBatches)
	}
	r.watchEvery = everyBatches
	r.onPush = onPush
	return r.withRetry(ctx, func(c *Client) error {
		c.OnPush(r.notePush)
		return c.Watch(everyBatches)
	})
}

// WatchSnapshot returns the subscribed snapshot covering batch seq —
// normally the push the server emitted when it executed that batch.
// The caller must be paced: batch seq sent, nothing beyond it. That
// pacing is what makes the boundary fault-proof. If the push is lost
// with its connection, the resumed session either re-executes the
// boundary batch from replay (the push fires again, bit-identical
// because profiling is deterministic) or already sits exactly at seq
// (the replay was discarded as idempotent), in which case a plain
// snapshot poll returns the state the push carried.
func (r *ReconnectingClient) WatchSnapshot(ctx context.Context, seq uint64) (*Result, error) {
	if r.watchEvery <= 0 {
		return nil, fmt.Errorf("wire: WatchSnapshot without a watch subscription")
	}
	if r.nextSeq <= seq {
		return nil, fmt.Errorf("wire: WatchSnapshot(%d) before batch %d was sent", seq, seq)
	}
	if r.lastPushSeq > seq {
		return nil, fmt.Errorf("wire: watch boundary %d already superseded by push %d", seq, r.lastPushSeq)
	}
	var res *Result
	err := r.withRetry(ctx, func(c *Client) error {
		for {
			// The boundary may already have drained as a side effect of
			// another read (an auto-sync ack, a replay) via notePush.
			if p := r.lastPush; p != nil && p.Seq == seq {
				res = p.Result
				return nil
			}
			// If this connection resumed at or past the boundary, its
			// replay discarded the boundary batch and no push for it
			// will ever arrive here; the session sits exactly at seq
			// (the caller sent nothing beyond it), so a poll recovers
			// the identical snapshot.
			if r.reply.ResumeSeq >= seq {
				s, err := c.Snapshot()
				if err != nil {
					return err
				}
				res = s
				return nil
			}
			p, err := c.ReadPush()
			if err != nil {
				return err
			}
			r.notePush(p)
			if p.Seq > seq {
				return fmt.Errorf("wire: watch pushed boundary %d past awaited %d", p.Seq, seq)
			}
		}
	})
	return res, err
}

// resubscribe re-arms the watch subscription on a fresh connection,
// dropping the connection on failure (the caller's retry loop handles
// it like any other open-time fault).
func (r *ReconnectingClient) resubscribe(ctx context.Context, c *Client) error {
	if r.watchEvery <= 0 {
		return nil
	}
	c.OnPush(r.notePush)
	r.armDeadline(ctx)
	if err := c.Watch(r.watchEvery); err != nil {
		r.dropConn()
		return r.checkCtx(ctx, err)
	}
	return nil
}

// notePush records one drained push, dropping replayed duplicates by
// sequence number, and forwards fresh ones to the Watch callback.
func (r *ReconnectingClient) notePush(p *Push) {
	if p.Seq <= r.lastPushSeq {
		return
	}
	r.lastPushSeq = p.Seq
	r.lastPush = p
	r.stats.Pushes++
	if r.onPush != nil {
		r.onPush(p)
	}
}

// maxConsecutiveMoves bounds moved redirects followed without an
// intervening successful operation: legitimate migration chains are
// short, and under injected corruption a mangled moved frame must not
// bounce the client around forever.
const maxConsecutiveMoves = 16

// withRetry runs op against a live connection, transparently
// redialing, resuming and replaying after any failure, until op
// succeeds, ctx is done, or MaxAttempts consecutive attempts failed.
// Every kind of failure is retried — under injected corruption even a
// server-reported error can be a mangled frame, so no error is treated
// as conclusively fatal; MaxAttempts bounds the damage. A moved
// redirect (live migration) is not a failure: the client follows it to
// the new backend immediately, without backoff and without spending an
// attempt, bounded by maxConsecutiveMoves.
func (r *ReconnectingClient) withRetry(ctx context.Context, op func(*Client) error) error {
	var lastErr error
	for failures := 0; ; failures++ {
		if failures >= r.policy.MaxAttempts {
			return fmt.Errorf("wire: giving up after %d attempts: %w", failures, lastErr)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if failures > 0 {
			if err := r.backoff(ctx, failures, lastErr); err != nil {
				return err
			}
		}
		c, err := r.ensure(ctx)
		if err != nil {
			if r.followMove(err) {
				failures = -1 // a redirect, not a fault: restart the budget
			}
			lastErr = err
			continue
		}
		r.armDeadline(ctx)
		err = r.checkCtx(ctx, op(c))
		r.disarmDeadline()
		if err == nil {
			r.moves = 0
			return nil
		}
		lastErr = err
		r.dropConn()
		if r.followMove(err) {
			failures = -1
		}
	}
}

// followMove redirects the session to the backend named by a moved
// error, if err is one and the redirect budget allows. The token stays;
// the next ensure resumes it on the new backend from the handed-over
// state.
func (r *ReconnectingClient) followMove(err error) bool {
	var mv *MovedError
	if !errors.As(err, &mv) {
		return false
	}
	if r.moves++; r.moves > maxConsecutiveMoves {
		return false
	}
	r.addr = mv.Addr
	r.stats.Moves++
	r.dropConn()
	return true
}

// ensure returns a live, opened (or resumed) connection, establishing
// one if needed and replaying the unacknowledged batch tail.
func (r *ReconnectingClient) ensure(ctx context.Context) (*Client, error) {
	if r.c != nil {
		return r.c, nil
	}
	dial := r.policy.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			d := net.Dialer{Timeout: r.policy.DialTimeout}
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, r.policy.DialTimeout)
	conn, err := dial(dctx, r.addr)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("wire: dialing %s: %w", r.addr, err)
	}
	c := NewClient(conn)
	c.SetMaxWireVersion(r.maxWire)
	r.c, r.conn = c, conn
	r.armDeadline(ctx)
	defer r.disarmDeadline()

	if r.token == "" {
		reply, err := c.Open(r.cfg)
		if err != nil {
			r.dropConn()
			return nil, r.checkCtx(ctx, err)
		}
		r.reply = reply
		r.token = reply.Token
		r.connected = true
		if err := r.resubscribe(ctx, c); err != nil {
			return nil, err
		}
		return c, nil
	}

	if r.connected {
		r.stats.Reconnects++
	}
	reply, err := c.Resume(r.cfg, r.token, r.lastAcked)
	if err != nil {
		r.dropConn()
		return nil, r.checkCtx(ctx, err)
	}
	r.reply = reply
	r.connected = true
	r.noteAcked(reply.ResumeSeq)
	if reply.Done {
		// The session finished server-side; nothing to replay, the
		// retried Finish will fetch the retained result.
		return c, nil
	}
	// Re-subscribe before replaying: a replayed batch that re-crosses a
	// watch boundary must push again, or a snapshot lost with the old
	// connection would be gone for good.
	if err := r.resubscribe(ctx, c); err != nil {
		return nil, err
	}
	for _, p := range r.pending {
		if c.NextSeq() != p.seq {
			r.dropConn()
			return nil, fmt.Errorf("wire: resume replay gap: connection at %d, buffered batch %d", c.NextSeq(), p.seq)
		}
		r.armDeadline(ctx) // a fresh window per replayed batch
		if err := c.SendBatch(p.accs); err != nil {
			r.dropConn()
			return nil, r.checkCtx(ctx, err)
		}
		r.stats.ReplayedBatches++
	}
	return c, nil
}

// noteAcked records a durable acknowledgment: batches up to seq are
// captured in a server checkpoint and leave the replay buffer.
func (r *ReconnectingClient) noteAcked(seq uint64) {
	if seq <= r.lastAcked {
		return
	}
	r.lastAcked = seq
	r.stats.AckedSeq = seq
	keep := r.pending[:0]
	for _, p := range r.pending {
		if p.seq > seq {
			keep = append(keep, p)
		} else if cap(p.accs) > 0 {
			r.free = append(r.free, p.accs)
		}
	}
	r.pending = keep
}

// backoff sleeps the exponential, jittered delay for the given failure
// count, honoring a server-provided retry-after hint and ctx.
func (r *ReconnectingClient) backoff(ctx context.Context, failures int, lastErr error) error {
	d := r.policy.BaseDelay << (failures - 1)
	if d <= 0 || d > r.policy.MaxDelay {
		d = r.policy.MaxDelay
	}
	// ±50% jitter, deterministic from the policy seed.
	d = d/2 + time.Duration(r.rng.Uint64n(uint64(d)+1))
	var ra *RetryAfterError
	if errors.As(lastErr, &ra) && ra.After > d {
		d = ra.After
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// armDeadline bounds the next RPC's I/O: OpTimeout from now, or the
// context deadline if that is sooner.
func (r *ReconnectingClient) armDeadline(ctx context.Context) {
	d := time.Now().Add(r.policy.OpTimeout)
	if cd, ok := ctx.Deadline(); ok && cd.Before(d) {
		d = cd
	}
	r.conn.SetDeadline(d)
}

func (r *ReconnectingClient) disarmDeadline() {
	if r.conn != nil {
		r.conn.SetDeadline(time.Time{})
	}
}

// checkCtx prefers the context's cancellation/deadline error over the
// I/O error it caused, so callers see context.DeadlineExceeded rather
// than a timeout dressed as a transport fault.
func (r *ReconnectingClient) checkCtx(ctx context.Context, err error) error {
	if err != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// dropConn closes and forgets the current connection.
func (r *ReconnectingClient) dropConn() {
	if r.c != nil {
		r.c.Close()
		r.c, r.conn = nil, nil
	}
}
