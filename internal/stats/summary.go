package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (they would otherwise poison the mean,
// and overhead ratios are always positive in practice). Returns 0 for an
// empty or all-non-positive slice.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the q-th percentile (q in [0,100]) of xs using
// linear interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 100 {
		return s[len(s)-1]
	}
	pos := q / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Reservoir maintains a uniform random sample of up to k items observed
// from a stream of unknown length (Vitter's algorithm R). It underpins
// the watchpoint replacement policy that keeps RDX's armed addresses a
// uniform sample of all PMU-sampled addresses.
type Reservoir[T any] struct {
	rng   *RNG
	items []T
	seen  uint64
	k     int
}

// NewReservoir returns a reservoir that retains at most k items.
func NewReservoir[T any](rng *RNG, k int) *Reservoir[T] {
	if k <= 0 {
		panic("stats: NewReservoir with k <= 0")
	}
	return &Reservoir[T]{rng: rng, items: make([]T, 0, k), k: k}
}

// Offer presents one stream item. It returns the index the item was
// stored at and true if the item was admitted, or -1 and false if it was
// rejected. When the reservoir is full, admission evicts the item at the
// returned index.
func (r *Reservoir[T]) Offer(item T) (int, bool) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return len(r.items) - 1, true
	}
	j := r.rng.Uint64n(r.seen)
	if j < uint64(r.k) {
		r.items[j] = item
		return int(j), true
	}
	return -1, false
}

// Items returns the current sample. The slice aliases internal storage.
func (r *Reservoir[T]) Items() []T { return r.items }

// Seen returns how many items have been offered.
func (r *Reservoir[T]) Seen() uint64 { return r.seen }
