// Package stats supplies the small statistical utilities the rest of the
// system leans on: a fast deterministic random-number generator suitable
// for hot simulation loops, summary statistics (means, geometric means,
// percentiles), and reservoir sampling.
package stats

import "math"

// RNG is a splitmix64 pseudo-random generator. It is deterministic for a
// given seed, allocation-free, and fast enough to sit inside the
// per-access simulation loop. The zero value is a valid generator seeded
// with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Seed resets the generator state.
func (r *RNG) Seed(seed uint64) { r.state = seed }

// State returns the generator's internal state. Together with Seed it
// makes the RNG checkpointable: Seed(State()) on a fresh generator
// reproduces the exact future random sequence, which the profiler's
// lossless checkpoint/restore path depends on.
func (r *RNG) State() uint64 { return r.state }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64n returns a uniformly distributed value in [0, n). n must be > 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("stats: Uint64n with n == 0")
	}
	// Rejection sampling to avoid modulo bias; the loop almost never
	// iterates for the small n used in simulations.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniformly distributed int in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, via the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm fills dst with a uniformly random permutation of [0, len(dst)).
func (r *RNG) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Zipf draws values in [0, n) with a Zipfian (power-law) distribution of
// exponent s > 1 is not required; s may be any value > 0, s != 1 handled
// via the standard rejection-inversion-free CDF table for small n and a
// harmonic approximation otherwise.
type Zipf struct {
	rng *RNG
	cdf []float64 // cumulative probabilities, len == n for table mode
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s (larger s
// skews harder toward small values). It precomputes an n-entry CDF table,
// so n should be at most a few million.
func NewZipf(rng *RNG, s float64, n int) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next draws the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
