package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	if NewRNG(42).Uint64() == c.Uint64() {
		t.Error("different seeds produced identical first draw")
	}
}

func TestRNGUint64nRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Uint64n(7); v >= 7 {
			t.Fatalf("Uint64n(7) = %d", v)
		}
	}
}

func TestRNGUint64nUniformity(t *testing.T) {
	r := NewRNG(7)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d: count %d deviates >5%% from %v", b, c, want)
		}
	}
}

func TestRNGPanics(t *testing.T) {
	r := NewRNG(0)
	assertPanics(t, "Uint64n(0)", func() { r.Uint64n(0) })
	assertPanics(t, "Intn(0)", func() { r.Intn(0) })
	assertPanics(t, "Intn(-1)", func() { r.Intn(-1) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := make([]int, 100)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(9)
	z := NewZipf(r, 1.0, 1000)
	const n = 100000
	counts := make([]int, 1000)
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should dominate rank 99 by roughly 100x under s=1.
	if counts[0] < counts[99]*20 {
		t.Errorf("Zipf not skewed: rank0=%d rank99=%d", counts[0], counts[99])
	}
}

func TestZipfRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		z := NewZipf(r, 0.8, 37)
		for i := 0; i < 100; i++ {
			if v := z.Next(); v < 0 || v >= 37 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean of non-positives = %v, want 0", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{0, 4}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean(0,4) = %v, want 4", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev constant = %v", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("StdDev(1,3) = %v, want 1", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {200, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.q); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestReservoirFillsThenSamples(t *testing.T) {
	r := NewReservoir[int](NewRNG(1), 4)
	for i := 0; i < 4; i++ {
		if idx, ok := r.Offer(i); !ok || idx != i {
			t.Fatalf("Offer(%d) during fill = (%d, %v)", i, idx, ok)
		}
	}
	if len(r.Items()) != 4 {
		t.Fatalf("reservoir size = %d, want 4", len(r.Items()))
	}
	for i := 4; i < 1000; i++ {
		if idx, ok := r.Offer(i); ok && (idx < 0 || idx >= 4) {
			t.Fatalf("admitted at bad index %d", idx)
		}
	}
	if r.Seen() != 1000 {
		t.Errorf("Seen = %d, want 1000", r.Seen())
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of N items should end up retained with probability k/N.
	const k, n, trials = 5, 100, 20000
	counts := make([]int, n)
	rng := NewRNG(77)
	for trial := 0; trial < trials; trial++ {
		r := NewReservoir[int](rng, k)
		for i := 0; i < n; i++ {
			r.Offer(i)
		}
		for _, v := range r.Items() {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.15 {
			t.Errorf("item %d retained %d times, want ~%v (±15%%)", i, c, want)
		}
	}
}
