package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
)

// drain consumes one end of a pipe so writes on the other end never
// block, returning what arrived once the writer closes.
func drain(conn net.Conn) <-chan []byte {
	out := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, conn)
		out <- buf.Bytes()
	}()
	return out
}

// writeUntilDrop pushes fixed-size writes through a wrapped pipe until
// the injected drop fires, returning the total bytes accepted.
func writeUntilDrop(t *testing.T, opts Options, connIndex uint64) int {
	t.Helper()
	a, b := net.Pipe()
	defer b.Close()
	got := drain(b)
	w := Wrap(a, opts, connIndex)
	total := 0
	chunk := make([]byte, 64)
	for i := 0; i < 10000; i++ {
		n, err := w.Write(chunk)
		total += n
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("write %d: %v, want ErrInjected", i, err)
			}
			<-got
			return total
		}
	}
	t.Fatal("drop never fired")
	return 0
}

func TestDropAfterBudgetIsDeterministic(t *testing.T) {
	opts := Options{Seed: 42, DropAfterMin: 1000, DropAfterMax: 3000}
	first := writeUntilDrop(t, opts, 1)
	if first < opts.DropAfterMin || first > opts.DropAfterMax {
		t.Errorf("dropped after %d bytes, want within [%d, %d]",
			first, opts.DropAfterMin, opts.DropAfterMax)
	}
	if again := writeUntilDrop(t, opts, 1); again != first {
		t.Errorf("same seed and index dropped after %d then %d bytes", first, again)
	}
	if other := writeUntilDrop(t, opts, 2); other == first {
		// Not impossible, but with a 2000-byte window it means the
		// per-connection derivation collapsed.
		t.Errorf("connection 2 dropped at the same byte (%d) as connection 1", other)
	}
}

func TestDroppedConnKillsPeer(t *testing.T) {
	a, b := net.Pipe()
	got := drain(b)
	w := Wrap(a, Options{Seed: 1, DropProb: 1}, 1)
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write: %v, want ErrInjected", err)
	}
	// The peer's read side must see the cut (drain returns on EOF).
	if data := <-got; len(data) != 0 {
		t.Errorf("peer received %d bytes across a dropped connection", len(data))
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Errorf("write after kill: %v, want ErrInjected", err)
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	got := drain(b)
	w := Wrap(a, Options{Seed: 9, CorruptProb: 1}, 1)
	msg := bytes.Repeat([]byte{0x00}, 256)
	if _, err := w.Write(msg); err != nil {
		t.Fatal(err)
	}
	a.Close()
	data := <-got
	if len(data) != len(msg) {
		t.Fatalf("received %d bytes, want %d", len(data), len(msg))
	}
	flipped := 0
	for _, x := range data {
		for ; x != 0; x &= x - 1 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Errorf("%d bits flipped, want exactly 1", flipped)
	}
	for i := range msg {
		if msg[i] != 0 {
			t.Fatal("caller's buffer was modified")
		}
	}
}

func TestPartialWritesPreserveBytes(t *testing.T) {
	a, b := net.Pipe()
	got := drain(b)
	w := Wrap(a, Options{Seed: 3, PartialWrites: true}, 1)
	want := []byte("featherlight reuse-distance measurement, in pieces")
	if _, err := w.Write(want); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if data := <-got; !bytes.Equal(data, want) {
		t.Errorf("received %q, want %q", data, want)
	}
}

func TestZeroOptionsAreTransparent(t *testing.T) {
	a, b := net.Pipe()
	got := drain(b)
	w := Wrap(a, Options{}, 1)
	want := bytes.Repeat([]byte("abc"), 1000)
	for i := 0; i < len(want); i += 100 {
		if _, err := w.Write(want[i : i+100]); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	if data := <-got; !bytes.Equal(data, want) {
		t.Error("transparent wrap altered the stream")
	}
}
