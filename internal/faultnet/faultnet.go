// Package faultnet wraps net.Conn, net.Listener and dial functions
// with deterministic, seeded fault injection: connection drops after a
// configurable byte budget, per-write drop probability, single-bit
// payload corruption, partial writes, and latency spikes.
//
// It exists for the fault-tolerance tests: the same Options.Seed
// produces the same fault schedule on every run, so a test that
// survives injected chaos is reproducible, and a test that fails can
// be replayed. Each wrapped connection derives its own RNG from the
// seed and a per-connection index, so connection N always sees the
// same faults regardless of timing.
//
// Faults are injected on the write side only: a dropped connection is
// closed underneath (both directions die, as with a real network cut),
// and corruption mangles bytes in flight exactly as a faulty path
// would — the receiver's frame checksum, not this package, is what
// must catch it.
package faultnet

import (
	"context"
	"errors"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// ErrInjected is the error returned by a write hitting an injected
// connection drop. Tests distinguish it from genuine transport errors
// with errors.Is.
var ErrInjected = errors.New("faultnet: injected connection drop")

// Options configures the fault schedule. The zero value injects
// nothing and wraps transparently.
type Options struct {
	// Seed makes the schedule deterministic. Connections derive their
	// RNG from Seed and their index, so reordering in time does not
	// change which faults a given connection sees.
	Seed uint64
	// DropAfterMin/Max, when Max > 0, kill each connection after a
	// random number of written bytes drawn from [Min, Max].
	DropAfterMin int
	DropAfterMax int
	// DropProb, per write call, kills the connection outright.
	DropProb float64
	// CorruptProb, per write call, flips one random bit of the written
	// bytes (the caller's buffer is not modified).
	CorruptProb float64
	// PartialWrites splits each write into two parts at a random
	// boundary, exercising receivers against short reads and frames
	// split across segments.
	PartialWrites bool
	// MaxLatency, when set, delays each write by a random duration in
	// [0, MaxLatency).
	MaxLatency time.Duration
}

// mix derives a per-connection RNG seed (splitmix-style finalizer).
func mix(seed, idx uint64) uint64 {
	z := seed + idx*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Wrap returns conn with the fault schedule applied. connIndex selects
// the connection's deterministic fault stream.
func Wrap(conn net.Conn, opts Options, connIndex uint64) net.Conn {
	f := &faultConn{Conn: conn, opts: opts, rng: stats.NewRNG(mix(opts.Seed, connIndex))}
	if opts.DropAfterMax > 0 {
		span := opts.DropAfterMax - opts.DropAfterMin
		f.dropAt = opts.DropAfterMin
		if span > 0 {
			f.dropAt += int(f.rng.Uint64n(uint64(span) + 1))
		}
	} else {
		f.dropAt = -1
	}
	return f
}

// faultConn is a net.Conn whose writes follow the fault schedule. Like
// the wire client that drives it, it is used from one goroutine at a
// time.
type faultConn struct {
	net.Conn
	opts    Options
	rng     *stats.RNG
	dropAt  int // written-bytes budget; -1 = no byte-budget drop
	written int
	killed  bool
}

// kill closes the underlying connection so the peer sees the drop too,
// like a real network cut.
func (f *faultConn) kill() {
	f.killed = true
	f.Conn.Close()
}

func (f *faultConn) Write(p []byte) (int, error) {
	if f.killed {
		return 0, ErrInjected
	}
	if f.opts.MaxLatency > 0 {
		time.Sleep(time.Duration(f.rng.Uint64n(uint64(f.opts.MaxLatency))))
	}
	if f.opts.DropProb > 0 && f.rng.Float64() < f.opts.DropProb {
		f.kill()
		return 0, ErrInjected
	}
	if f.opts.CorruptProb > 0 && len(p) > 0 && f.rng.Float64() < f.opts.CorruptProb {
		bad := append([]byte(nil), p...)
		bit := f.rng.Uint64n(uint64(len(bad)) * 8)
		bad[bit/8] ^= 1 << (bit % 8)
		p = bad
	}
	if f.dropAt >= 0 && f.written+len(p) > f.dropAt {
		// Deliver the prefix up to the budget — a torn frame — then cut.
		keep := f.dropAt - f.written
		n := 0
		if keep > 0 {
			n, _ = f.Conn.Write(p[:keep])
			f.written += n
		}
		f.kill()
		return n, ErrInjected
	}
	if f.opts.PartialWrites && len(p) > 1 {
		cut := 1 + int(f.rng.Uint64n(uint64(len(p)-1)))
		n, err := f.Conn.Write(p[:cut])
		f.written += n
		if err != nil {
			return n, err
		}
		m, err := f.Conn.Write(p[cut:])
		f.written += m
		return n + m, err
	}
	n, err := f.Conn.Write(p)
	f.written += n
	return n, err
}

// Dialer wraps a dial function so every established connection carries
// the fault schedule, with consecutive connection indices.
type Dialer struct {
	opts Options
	dial func(ctx context.Context, addr string) (net.Conn, error)
	next atomic.Uint64
}

// NewDialer builds a fault-injecting dialer. A nil dial uses net.Dialer
// over TCP.
func NewDialer(opts Options, dial func(ctx context.Context, addr string) (net.Conn, error)) *Dialer {
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return &Dialer{opts: opts, dial: dial}
}

// DialContext dials and wraps the connection with the next fault
// stream.
func (d *Dialer) DialContext(ctx context.Context, addr string) (net.Conn, error) {
	conn, err := d.dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	return Wrap(conn, d.opts, d.next.Add(1)), nil
}

// Conns reports how many connections the dialer has established.
func (d *Dialer) Conns() uint64 { return d.next.Load() }

// Listener wraps an accept loop so every inbound connection carries
// the fault schedule (server-side injection).
type Listener struct {
	net.Listener
	opts Options
	next atomic.Uint64
}

// WrapListener builds a fault-injecting listener.
func WrapListener(ln net.Listener, opts Options) *Listener {
	return &Listener{Listener: ln, opts: opts}
}

// Accept accepts and wraps the connection with the next fault stream.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return Wrap(conn, l.opts, l.next.Add(1)), nil
}
