// Package histogram implements the weighted, logarithmically bucketed
// histograms in which reuse distances and reuse times are reported, along
// with the accuracy metric used to compare a sampled histogram against
// ground truth.
//
// Reuse distances span many orders of magnitude, so following the paper
// (and every reuse-distance tool in practice) values are binned in
// power-of-two buckets: bucket b holds values v with 2^(b-1) <= v < 2^b,
// bucket 0 holds the value 0. A separate bucket holds "cold" accesses —
// first touches with no previous access, whose reuse distance is infinite.
package histogram

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Infinite is the sentinel value recorded for cold (never before
// accessed) locations.
const Infinite = math.MaxUint64

// bucketOf maps a value to its power-of-two bucket index.
func bucketOf(v uint64) int {
	return bits.Len64(v)
}

// BucketLow returns the smallest value that falls in bucket b.
func BucketLow(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1 << (b - 1)
}

// BucketHigh returns the largest value that falls in bucket b.
func BucketHigh(b int) uint64 {
	if b <= 0 {
		return 0
	}
	return 1<<b - 1
}

// BucketLabel renders a human-readable range for bucket b ("0", "1",
// "[2,4)", "[64K,128K)", ...).
func BucketLabel(b int) string {
	switch b {
	case 0:
		return "0"
	case 1:
		return "1"
	default:
		return fmt.Sprintf("[%s,%s)", siValue(uint64(1)<<(b-1)), siValue(uint64(1)<<b))
	}
}

func siValue(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%dG", v>>30)
	case v >= 1<<20:
		return fmt.Sprintf("%dM", v>>20)
	case v >= 1<<10:
		return fmt.Sprintf("%dK", v>>10)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Histogram is a weighted log2 histogram. The zero value is ready to use.
// Weights are float64 so that sampled histograms can scale each
// observation by its sampling period.
type Histogram struct {
	buckets []float64
	cold    float64 // weight of Infinite observations
	count   uint64  // number of Add calls (unweighted)
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// Assemble builds a histogram directly from its components: per-bucket
// weights (bucket b of the slice is bucket b of the histogram), the
// cold weight, and the raw observation count. It exists for mergers
// that accumulate bucket weights out of band (e.g. in extended
// precision) and need to materialize the result; the slice is owned by
// the histogram afterwards.
func Assemble(buckets []float64, cold float64, count uint64) *Histogram {
	return &Histogram{buckets: buckets, cold: cold, count: count}
}

// Add records value v with weight w. Infinite records a cold access.
func (h *Histogram) Add(v uint64, w float64) {
	h.count++
	if v == Infinite {
		h.cold += w
		return
	}
	b := bucketOf(v)
	for len(h.buckets) <= b {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[b] += w
}

// AddHistogram merges other into h bucket-wise.
func (h *Histogram) AddHistogram(other *Histogram) {
	for len(h.buckets) < len(other.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for i, w := range other.buckets {
		h.buckets[i] += w
	}
	h.cold += other.cold
	h.count += other.count
}

// Weight returns the weight in bucket b (0 if b is out of range).
func (h *Histogram) Weight(b int) float64 {
	if b < 0 || b >= len(h.buckets) {
		return 0
	}
	return h.buckets[b]
}

// Cold returns the weight of cold (infinite-distance) observations.
func (h *Histogram) Cold() float64 { return h.cold }

// Count returns the number of raw observations added.
func (h *Histogram) Count() uint64 { return h.count }

// NumBuckets returns the number of finite buckets tracked.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Total returns the total weight including cold observations.
func (h *Histogram) Total() float64 {
	t := h.cold
	for _, w := range h.buckets {
		t += w
	}
	return t
}

// TotalFinite returns the total weight excluding cold observations.
func (h *Histogram) TotalFinite() float64 { return h.Total() - h.cold }

// Scale multiplies every weight (including cold) by f.
func (h *Histogram) Scale(f float64) {
	for i := range h.buckets {
		h.buckets[i] *= f
	}
	h.cold *= f
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	return &Histogram{
		buckets: append([]float64(nil), h.buckets...),
		cold:    h.cold,
		count:   h.count,
	}
}

// Fraction returns the fraction of total weight in bucket b.
func (h *Histogram) Fraction(b int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return h.Weight(b) / t
}

// Mean returns the weighted mean of finite observations, using each
// bucket's geometric midpoint as its representative value.
func (h *Histogram) Mean() float64 {
	tf := h.TotalFinite()
	if tf == 0 {
		return 0
	}
	sum := 0.0
	for b, w := range h.buckets {
		sum += w * bucketMid(b)
	}
	return sum / tf
}

// bucketMid is the representative (geometric mid) value of bucket b.
func bucketMid(b int) float64 {
	if b == 0 {
		return 0
	}
	lo, hi := float64(BucketLow(b)), float64(BucketHigh(b))+1
	return math.Sqrt(lo * hi)
}

// Percentile returns the smallest bucket-representative value v such that
// at least q (in [0,1]) of the total weight lies in buckets <= v. Cold
// weight counts as above every finite value; if the percentile falls in
// the cold mass, +Inf is returned.
func (h *Histogram) Percentile(q float64) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	target := q * t
	acc := 0.0
	for b, w := range h.buckets {
		acc += w
		if acc >= target {
			return bucketMid(b)
		}
	}
	return math.Inf(1)
}

// FractionAbove returns the fraction of total weight at values >= v,
// counting cold observations (infinite distance) as above every v.
func (h *Histogram) FractionAbove(v uint64) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	b := bucketOf(v)
	sum := h.cold
	for i := b; i < len(h.buckets); i++ {
		// The bucket containing v straddles the threshold; attribute a
		// proportional share assuming a uniform intra-bucket spread.
		w := h.buckets[i]
		if i == b && b > 0 {
			lo, hi := BucketLow(i), BucketHigh(i)
			if v > lo {
				span := float64(hi-lo) + 1
				w *= float64(hi-v+1) / span
			}
		}
		sum += w
	}
	return sum / t
}

// Accuracy computes the paper-style accuracy of h against a reference
// histogram: both are normalized to probability distributions over
// (finite buckets + cold), and accuracy = 1 - ½ Σ |p_b - q_b|, i.e. one
// minus the total-variation distance. Identical shapes score 1.0,
// disjoint shapes 0.0.
func Accuracy(h, ref *Histogram) float64 {
	th, tr := h.Total(), ref.Total()
	if th == 0 || tr == 0 {
		if th == tr {
			return 1
		}
		return 0
	}
	n := len(h.buckets)
	if len(ref.buckets) > n {
		n = len(ref.buckets)
	}
	d := math.Abs(h.cold/th - ref.cold/tr)
	for b := 0; b < n; b++ {
		d += math.Abs(h.Weight(b)/th - ref.Weight(b)/tr)
	}
	return 1 - d/2
}

// String renders the histogram as an aligned text table with bars, one
// row per non-empty bucket plus the cold row.
func (h *Histogram) String() string {
	t := h.Total()
	var sb strings.Builder
	if t == 0 {
		sb.WriteString("(empty histogram)\n")
		return sb.String()
	}
	maxFrac := 0.0
	for b := range h.buckets {
		if f := h.buckets[b] / t; f > maxFrac {
			maxFrac = f
		}
	}
	if f := h.cold / t; f > maxFrac {
		maxFrac = f
	}
	row := func(label string, w float64) {
		f := w / t
		barLen := 0
		if maxFrac > 0 {
			barLen = int(f / maxFrac * 40)
		}
		fmt.Fprintf(&sb, "%14s %8.4f%% %s\n", label, f*100, strings.Repeat("#", barLen))
	}
	for b, w := range h.buckets {
		if w > 0 {
			row(BucketLabel(b), w)
		}
	}
	if h.cold > 0 {
		row("cold(inf)", h.cold)
	}
	return sb.String()
}
