package histogram

import (
	"encoding/json"
	"fmt"
)

// Snapshot is the serializable form of a Histogram, used to save
// profiles to disk and exchange them between tools. Buckets are stored
// sparsely (index/weight pairs) since reuse histograms are mostly empty.
type Snapshot struct {
	// Buckets maps bucket index to weight; only non-zero entries appear.
	Buckets map[int]float64 `json:"buckets"`
	// Cold is the weight of infinite-distance observations.
	Cold float64 `json:"cold,omitempty"`
	// Count is the number of raw observations recorded.
	Count uint64 `json:"count"`
}

// Snapshot extracts the serializable form.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{Buckets: make(map[int]float64), Cold: h.cold, Count: h.count}
	for b, w := range h.buckets {
		if w != 0 {
			s.Buckets[b] = w
		}
	}
	return s
}

// FromSnapshot reconstructs a Histogram.
func FromSnapshot(s Snapshot) (*Histogram, error) {
	h := New()
	for b, w := range s.Buckets {
		if b < 0 {
			return nil, fmt.Errorf("histogram: negative bucket index %d", b)
		}
		if w < 0 {
			return nil, fmt.Errorf("histogram: negative weight %v in bucket %d", w, b)
		}
		for len(h.buckets) <= b {
			h.buckets = append(h.buckets, 0)
		}
		h.buckets[b] = w
	}
	if s.Cold < 0 {
		return nil, fmt.Errorf("histogram: negative cold weight %v", s.Cold)
	}
	h.cold = s.Cold
	h.count = s.Count
	return h, nil
}

// MarshalJSON implements json.Marshaler via Snapshot.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(h.Snapshot())
}

// UnmarshalJSON implements json.Unmarshaler via Snapshot.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	restored, err := FromSnapshot(s)
	if err != nil {
		return err
	}
	*h = *restored
	return nil
}
