package histogram

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBucketBoundaries(t *testing.T) {
	tests := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
	}
	for _, tt := range tests {
		if got := bucketOf(tt.v); got != tt.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tt.v, got, tt.bucket)
		}
	}
}

func TestBucketLowHighRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := bucketOf(v)
		return BucketLow(b) <= v && v <= BucketHigh(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketLabel(t *testing.T) {
	tests := []struct {
		b    int
		want string
	}{
		{0, "0"}, {1, "1"}, {2, "[2,4)"}, {11, "[1K,2K)"}, {21, "[1M,2M)"},
	}
	for _, tt := range tests {
		if got := BucketLabel(tt.b); got != tt.want {
			t.Errorf("BucketLabel(%d) = %q, want %q", tt.b, got, tt.want)
		}
	}
}

func TestAddAndTotals(t *testing.T) {
	h := New()
	h.Add(0, 1)
	h.Add(5, 2)
	h.Add(Infinite, 3)
	if got := h.Total(); got != 6 {
		t.Errorf("Total = %v, want 6", got)
	}
	if got := h.TotalFinite(); got != 3 {
		t.Errorf("TotalFinite = %v, want 3", got)
	}
	if got := h.Cold(); got != 3 {
		t.Errorf("Cold = %v, want 3", got)
	}
	if got := h.Count(); got != 3 {
		t.Errorf("Count = %v, want 3", got)
	}
	if got := h.Weight(3); got != 2 {
		t.Errorf("Weight(bucket of 5) = %v, want 2", got)
	}
	if got := h.Weight(99); got != 0 {
		t.Errorf("Weight(out of range) = %v", got)
	}
}

func TestAddHistogramConservesWeight(t *testing.T) {
	f := func(vals []uint16, weights []uint8) bool {
		a, b := New(), New()
		for i, v := range vals {
			w := 1.0
			if i < len(weights) {
				w = float64(weights[i]%10) + 0.5
			}
			if i%2 == 0 {
				a.Add(uint64(v), w)
			} else {
				b.Add(uint64(v), w)
			}
		}
		want := a.Total() + b.Total()
		a.AddHistogram(b)
		return math.Abs(a.Total()-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScale(t *testing.T) {
	h := New()
	h.Add(10, 2)
	h.Add(Infinite, 1)
	h.Scale(3)
	if got := h.Total(); got != 9 {
		t.Errorf("Total after scale = %v, want 9", got)
	}
	if got := h.Cold(); got != 3 {
		t.Errorf("Cold after scale = %v, want 3", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	h := New()
	h.Add(4, 1)
	c := h.Clone()
	c.Add(4, 5)
	if h.Total() != 1 {
		t.Errorf("Clone aliased storage: original total = %v", h.Total())
	}
}

func TestMean(t *testing.T) {
	h := New()
	if h.Mean() != 0 {
		t.Errorf("empty Mean = %v", h.Mean())
	}
	h.Add(1, 1) // bucket 1, mid sqrt(1*2)
	m := h.Mean()
	if math.Abs(m-math.Sqrt(2)) > 1e-9 {
		t.Errorf("Mean = %v, want sqrt(2)", m)
	}
}

func TestPercentileAndCold(t *testing.T) {
	h := New()
	h.Add(1, 50)
	h.Add(Infinite, 50)
	if v := h.Percentile(0.25); math.IsInf(v, 1) {
		t.Errorf("25th percentile should be finite, got +Inf")
	}
	if v := h.Percentile(0.9); !math.IsInf(v, 1) {
		t.Errorf("90th percentile should be +Inf (cold mass), got %v", v)
	}
}

func TestFractionAbove(t *testing.T) {
	h := New()
	h.Add(1, 25)        // below 100
	h.Add(1000, 50)     // above 100
	h.Add(Infinite, 25) // always above
	got := h.FractionAbove(100)
	if math.Abs(got-0.75) > 1e-9 {
		t.Errorf("FractionAbove(100) = %v, want 0.75", got)
	}
	if got := h.FractionAbove(1 << 30); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("FractionAbove(huge) = %v, want 0.25 (cold only)", got)
	}
}

func TestFractionAboveEmpty(t *testing.T) {
	if got := New().FractionAbove(10); got != 0 {
		t.Errorf("empty FractionAbove = %v", got)
	}
}

func TestAccuracyIdentical(t *testing.T) {
	h := New()
	h.Add(3, 1)
	h.Add(100, 2)
	h.Add(Infinite, 1)
	if got := Accuracy(h, h.Clone()); math.Abs(got-1) > 1e-12 {
		t.Errorf("self accuracy = %v, want 1", got)
	}
}

func TestAccuracyDisjoint(t *testing.T) {
	a, b := New(), New()
	a.Add(1, 1)
	b.Add(1<<20, 1)
	if got := Accuracy(a, b); math.Abs(got) > 1e-12 {
		t.Errorf("disjoint accuracy = %v, want 0", got)
	}
}

func TestAccuracyScaleInvariant(t *testing.T) {
	a := New()
	a.Add(5, 1)
	a.Add(50, 3)
	b := a.Clone()
	b.Scale(1000)
	if got := Accuracy(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("scale-invariant accuracy = %v, want 1", got)
	}
}

func TestAccuracyEmptyCases(t *testing.T) {
	a, b := New(), New()
	if got := Accuracy(a, b); got != 1 {
		t.Errorf("both empty = %v, want 1", got)
	}
	b.Add(1, 1)
	if got := Accuracy(a, b); got != 0 {
		t.Errorf("one empty = %v, want 0", got)
	}
}

func TestAccuracyBoundsProperty(t *testing.T) {
	f := func(av, bv []uint16) bool {
		a, b := New(), New()
		for _, v := range av {
			a.Add(uint64(v), 1)
		}
		for _, v := range bv {
			b.Add(uint64(v), 1)
		}
		acc := Accuracy(a, b)
		if acc < -1e-9 || acc > 1+1e-9 {
			return false
		}
		// Symmetry.
		return math.Abs(acc-Accuracy(b, a)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	h := New()
	if !strings.Contains(h.String(), "empty") {
		t.Errorf("empty histogram render: %q", h.String())
	}
	h.Add(2, 1)
	h.Add(Infinite, 1)
	s := h.String()
	if !strings.Contains(s, "[2,4)") || !strings.Contains(s, "cold(inf)") {
		t.Errorf("rendered histogram missing rows:\n%s", s)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	h := New()
	h.Add(0, 1)
	h.Add(5, 2.5)
	h.Add(1000, 3)
	h.Add(Infinite, 4)
	restored, err := FromSnapshot(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(h, restored); acc != 1 {
		t.Errorf("snapshot round trip accuracy = %v", acc)
	}
	if restored.Total() != h.Total() || restored.Count() != h.Count() {
		t.Errorf("totals differ: %v/%d vs %v/%d", restored.Total(), restored.Count(), h.Total(), h.Count())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	h := New()
	h.Add(42, 7)
	h.Add(Infinite, 1)
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(h, &back); acc != 1 {
		t.Errorf("JSON round trip accuracy = %v", acc)
	}
}

func TestFromSnapshotRejectsInvalid(t *testing.T) {
	if _, err := FromSnapshot(Snapshot{Buckets: map[int]float64{-1: 1}}); err == nil {
		t.Error("negative bucket accepted")
	}
	if _, err := FromSnapshot(Snapshot{Buckets: map[int]float64{1: -2}}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := FromSnapshot(Snapshot{Cold: -1}); err == nil {
		t.Error("negative cold accepted")
	}
}
