package server_test

import (
	"testing"

	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// BenchmarkSessionChurn measures the per-session fixed cost — dial,
// JSON handshake, stream one short trace, result decode, teardown —
// that drives the allocs/batch creep in BENCH_server.json when total
// work is split across more sessions. Run with -benchmem; the allocs/op
// figure here is the `fixed` term in the decomposition documented on
// TestAllocCreepRatio16v1.
func BenchmarkSessionChurn(b *testing.B) {
	s, err := server.New(server.Config{Logf: func(string, ...any) {}})
	if err != nil {
		b.Fatal(err)
	}
	s.Start()
	defer s.Close()
	accs, err := trace.Collect(trace.ZipfAccess(1, 0, 1<<12, 1.0, 8192))
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := wire.Dial(s.Addr())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Profile(trace.FromSlice(accs), cfg, wire.ProfileOptions{BatchSize: 8192}); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}
