package server_test

// Tests for the subscribe-to-snapshots watch surface: the pushed
// snapshot stream must be byte-identical to what the deprecated poll
// cadence (ProfileOptions.SnapshotEvery) observed at the same batch
// boundaries, subscriptions must cancel cleanly, the continuous
// profiler's drift and working-set alerts must surface on /metrics,
// and the negotiated wire version must be readable concurrently with
// (re)negotiation under -race.

import (
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestWatchPushMatchesDeprecatedPoll drives the same stream twice: once
// through the deprecated poll cadence, once under a watch subscription
// paced on ReadPush at the same boundaries. Every pushed snapshot must
// be byte-identical to the polled one — the compatibility contract that
// lets -snapshot-every callers migrate to Watch without a result change.
func TestWatchPushMatchesDeprecatedPoll(t *testing.T) {
	cfg := testConfig(400)
	accs, err := trace.Collect(trace.ZipfAccess(41, 0, 4096, 1.0, 120000))
	if err != nil {
		t.Fatal(err)
	}
	const batch, every = 2048, 8
	s := start(t, server.Config{})

	var polled []string
	fin1, err := dial(t, s).Profile(trace.FromSlice(accs), cfg, wire.ProfileOptions{
		BatchSize:     batch,
		SnapshotEvery: every,
		OnSnapshot: func(r *wire.Result) {
			b, err := json.Marshal(r)
			if err != nil {
				t.Error(err)
			}
			polled = append(polled, string(b))
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	c := dial(t, s)
	if _, err := c.Open(cfg); err != nil {
		t.Fatal(err)
	}
	if err := c.Watch(every); err != nil {
		t.Fatal(err)
	}
	var pushed []string
	var sent uint64
	buf := make([]mem.Access, batch)
	r := trace.FromSlice(accs)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			if err := c.SendBatch(buf[:n]); err != nil {
				t.Fatal(err)
			}
			sent++
			if sent%every == 0 {
				p, err := c.ReadPush()
				if err != nil {
					t.Fatal(err)
				}
				if p.Seq != sent {
					t.Fatalf("push covers batch %d, want %d", p.Seq, sent)
				}
				b, err := json.Marshal(p.Result)
				if err != nil {
					t.Fatal(err)
				}
				pushed = append(pushed, string(b))
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
	}
	fin2, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}

	if len(pushed) == 0 || len(pushed) != len(polled) {
		t.Fatalf("got %d pushes vs %d polls", len(pushed), len(polled))
	}
	for i := range pushed {
		if pushed[i] != polled[i] {
			t.Errorf("boundary %d: pushed snapshot differs from polled snapshot", (i+1)*every)
		}
	}
	sameWireProfile(t, "watched final vs polled final", fin2, fin1)
}

// TestWatchCancelStopsPushes re-sends FrameWatch with cadence 0 and
// asserts no further boundary produces a push.
func TestWatchCancelStopsPushes(t *testing.T) {
	cfg := testConfig(300)
	s := start(t, server.Config{})
	c := dial(t, s)
	if _, err := c.Open(cfg); err != nil {
		t.Fatal(err)
	}
	var stray int
	c.OnPush(func(*wire.Push) { stray++ })
	if err := c.Watch(2); err != nil {
		t.Fatal(err)
	}

	accs, err := trace.Collect(trace.ZipfAccess(5, 0, 1024, 1.0, 8*1024))
	if err != nil {
		t.Fatal(err)
	}
	sendBatch := func(i int) {
		t.Helper()
		if err := c.SendBatch(accs[i*1024 : (i+1)*1024]); err != nil {
			t.Fatal(err)
		}
	}
	sendBatch(0)
	sendBatch(1)
	p, err := c.ReadPush()
	if err != nil {
		t.Fatal(err)
	}
	if p.Seq != 2 {
		t.Fatalf("push covers batch %d, want 2", p.Seq)
	}
	if err := c.Watch(0); err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 8; i++ {
		sendBatch(i)
	}
	// The snapshot reply would drain any stray push into OnPush first.
	if _, err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if stray != 0 {
		t.Errorf("%d pushes arrived after the subscription was cancelled", stray)
	}
}

// TestWatchMetricsAndWorkingSetAlert runs a watched session through a
// phase change (tiny cyclic working set, then a large random one) and
// asserts the continuous profiler surfaces it on /metrics: push and
// subscription counters, a drift event at the phase boundary, and a
// working-set alert once windows outgrow the configured threshold.
func TestWatchMetricsAndWorkingSetAlert(t *testing.T) {
	cfg := testConfig(64) // dense sampling so every window clears MinSamples
	const (
		batch = 2048
		every = 8 // window = 16384 accesses = 256 samples
		phase = 128 * 1024
	)
	accs, err := trace.Collect(trace.Concat(
		trace.Cyclic(0, 64, phase),
		trace.RandomUniform(17, 0, 1<<15, phase),
	))
	if err != nil {
		t.Fatal(err)
	}

	// Threshold far above the cyclic phase's 512-byte working set and far
	// below the random phase's: the alert must fire exactly once, on the
	// first large window.
	s := start(t, server.Config{AlertWorkingSetBytes: 4096})
	c := dial(t, s)
	if _, err := c.Open(cfg); err != nil {
		t.Fatal(err)
	}
	if err := c.Watch(every); err != nil {
		t.Fatal(err)
	}
	var sent uint64
	for off := 0; off < len(accs); off += batch {
		end := off + batch
		if end > len(accs) {
			end = len(accs)
		}
		if err := c.SendBatch(accs[off:end]); err != nil {
			t.Fatal(err)
		}
		sent++
		if sent%every == 0 {
			if _, err := c.ReadPush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Snapshot the metrics while the session is live: the alert listing
	// only covers open sessions.
	m := s.MetricsSnapshot()
	if m.WatchSubscriptions < 1 {
		t.Errorf("watch_subscriptions = %d, want >= 1", m.WatchSubscriptions)
	}
	if want := uint64(2 * phase / (batch * every)); m.SnapshotPushes != want {
		t.Errorf("snapshot_pushes = %d, want %d", m.SnapshotPushes, want)
	}
	if m.DriftEvents < 1 {
		t.Error("no drift event recorded across the phase change")
	}
	if m.WSAlertsTotal != 1 {
		t.Errorf("ws_alerts_total = %d, want exactly 1 (one rising edge)", m.WSAlertsTotal)
	}
	if len(m.Alerts) != 1 || !strings.Contains(m.Alerts[0], "past L3") {
		t.Errorf("alert listing = %q, want one 'past L3' line", m.Alerts)
	}

	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
}

// TestWireVersionConcurrentWithNegotiation reads Client.WireVersion from
// another goroutine while Open negotiates the version — the torn-read
// pair the client's internal lock exists for (a ReconnectingClient
// renegotiates on every reconnect, and observers poll WireVersion
// concurrently). Meaningful under -race.
func TestWireVersionConcurrentWithNegotiation(t *testing.T) {
	cfg := testConfig(400)
	s := start(t, server.Config{})
	for i := 0; i < 16; i++ {
		c := dial(t, s)
		if i%2 == 1 {
			// Alternate the offered cap so the negotiated value actually
			// changes between sessions, like a v3->v2 renegotiation would.
			c.SetMaxWireVersion(wire.WireV2)
		}
		done := make(chan int)
		go func() {
			last := 0
			for j := 0; j < 4096; j++ {
				last = c.WireVersion()
			}
			done <- last
		}()
		if _, err := c.Open(cfg); err != nil {
			t.Fatal(err)
		}
		if v := <-done; v != 0 && v != wire.WireV2 && v != wire.WireV3 {
			t.Fatalf("torn wire version read: %d", v)
		}
		if err := c.SendBatch(accsN(t, 4096, uint64(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Finish(); err != nil {
			t.Fatal(err)
		}
	}
}

// accsN collects n Zipf accesses for seed-varied quick sessions.
func accsN(t *testing.T, n int, seed uint64) []mem.Access {
	t.Helper()
	accs, err := trace.Collect(trace.ZipfAccess(seed+1, 0, 1024, 1.0, uint64(n)))
	if err != nil {
		t.Fatal(err)
	}
	return accs
}
