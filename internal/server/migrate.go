package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/wire"
)

// Live session migration: the control-plane half of rdxd.
//
// A migration moves one session's complete state — the profiler
// checkpoint (or a finished session's retained result) — from this
// backend to another, so the pool can drain a hot backend live, admit
// new backends mid-run, and rebalance under skew. The handover is
// strictly ordered for the client's ack safety:
//
//  1. The runner reaches a batch boundary and takes a durable local
//     checkpoint (the anchor: nothing is riskier than before).
//  2. The checkpoint is pushed to the destination (wire.PushHandoff)
//     and the destination acknowledges only after its own durable
//     install.
//  3. Only then is the token tombstoned and the client redirected
//     (FrameMoved in-band; or as the answer to a later resume attempt).
//
// The handed-over state covers batch sequence numbers up to the
// migration checkpoint; the client trims its replay buffer to that
// sequence on resume, exactly as after any reconnect, so no batch is
// executed twice and none is lost: batches beyond the checkpoint are
// still in the client's replay buffer because they were never
// acknowledged. If every destination refuses the handoff, the session
// simply keeps running here — migration is an optimization, never a
// correctness risk.

// MigrateTarget names a destination backend for live migration: the
// wire-protocol address plus the optional admin address advertised to
// redirected clients (a pool uses it for health probes).
type MigrateTarget struct {
	Addr  string `json:"addr"`
	Admin string `json:"admin,omitempty"`
}

// ParseMigrateTargets parses destination specs, each "addr" or
// "addr=adminaddr" — the same element format pool backend lists use.
func ParseMigrateTargets(specs []string) ([]MigrateTarget, error) {
	var ts []MigrateTarget
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		addr, admin, _ := strings.Cut(spec, "=")
		if addr == "" {
			return nil, fmt.Errorf("server: empty migration target in %q", spec)
		}
		ts = append(ts, MigrateTarget{Addr: addr, Admin: admin})
	}
	return ts, nil
}

// maxMovedTombstones bounds the token→destination redirect map; beyond
// it the oldest tombstones are forgotten (their clients fall back to
// the pool's full re-dispatch path, which is correct, just slower).
const maxMovedTombstones = 4096

// recordMoved tombstones a migrated token. The first writer wins: if a
// concurrent handoff already recorded a destination, that one is
// returned, so every answer for a token names the same backend.
func (s *Server) recordMoved(token string, mv wire.Moved) wire.Moved {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.moved[token]; ok {
		return old
	}
	s.moved[token] = mv
	s.movedOrder = append(s.movedOrder, token)
	for len(s.moved) > maxMovedTombstones && len(s.movedOrder) > 0 {
		delete(s.moved, s.movedOrder[0])
		s.movedOrder = s.movedOrder[1:]
	}
	return mv
}

// lookupMoved reports where a migrated token's session now lives.
func (s *Server) lookupMoved(token string) (wire.Moved, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mv, ok := s.moved[token]
	return mv, ok
}

// movedSessionError carries a migration redirect out of the resume
// path; handleConn answers it with FrameMoved instead of FrameError.
type movedSessionError struct{ to wire.Moved }

func (e *movedSessionError) Error() string {
	return fmt.Sprintf("session moved to %s", e.to.Addr)
}

// Drain puts the server into drain mode and orders every live session
// to migrate to one of the targets: new opens are shed, /healthz
// reports 503, live runners hand their sessions off at the next batch
// boundary, and resume attempts for retained (disconnected) sessions
// are answered with an on-demand handoff plus redirect. It returns the
// number of sessions ordered to move. Draining is idempotent; calling
// it again re-orders sessions whose earlier handoff failed. With no
// targets the server just stops admitting work, like the SIGTERM path.
func (s *Server) Drain(targets []MigrateTarget) int {
	s.mu.Lock()
	s.draining = true
	if len(targets) > 0 {
		s.drainTo = append([]MigrateTarget(nil), targets...)
	}
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if len(targets) == 0 {
		return 0
	}
	ordered := 0
	for i, sess := range sessions {
		if s.orderMigration(sess, rotateTargets(targets, i)) {
			ordered++
		}
	}
	return ordered
}

// OrderMigrations asks up to count live sessions to migrate to the
// targets (rebalancing), without entering drain mode. It returns the
// number of sessions ordered.
func (s *Server) OrderMigrations(targets []MigrateTarget, count int) int {
	if len(targets) == 0 || count <= 0 {
		return 0
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	ordered := 0
	for i, sess := range sessions {
		if ordered >= count {
			break
		}
		if s.orderMigration(sess, rotateTargets(targets, i)) {
			ordered++
		}
	}
	return ordered
}

// rotateTargets spreads migrations round-robin: session i tries the
// targets starting at offset i.
func rotateTargets(targets []MigrateTarget, i int) []MigrateTarget {
	if len(targets) <= 1 {
		return targets
	}
	off := i % len(targets)
	out := make([]MigrateTarget, 0, len(targets))
	out = append(out, targets[off:]...)
	return append(out, targets[:off]...)
}

// orderMigration delivers one migration order to a session
// (non-blocking: an order already pending is not duplicated) and wakes
// the executor so an idle session acts on it immediately.
func (s *Server) orderMigration(sess *session, targets []MigrateTarget) bool {
	select {
	case sess.migrate <- migrateOrder{targets: targets}:
		s.metrics.migrationsOrdered.Add(1)
		s.exec.notify(sess)
		return true
	default:
		return false
	}
}

// migrateSession executes a migration order on the worker that owns
// the session's current step (the machine is quiescent at a batch
// boundary): durable local checkpoint, handoff to the first willing
// target, tombstone, client redirect. It reports whether the session
// was handed off — true means the session is terminal here; false means
// every target refused and the session keeps running.
func (s *Server) migrateSession(sess *session, bw *bufio.Writer, ord migrateOrder) bool {
	if sess.completed {
		return false
	}
	// Anchor locally first: after this the migration can fail at any
	// point with nothing lost.
	if err := s.checkpointSession(sess); err != nil {
		s.cfg.Logf("rdxd: session %d: migration checkpoint: %v", sess.id, err)
		return false
	}
	blob := sess.prof.Checkpoint()
	for _, tgt := range ord.targets {
		err := wire.PushHandoff(context.Background(), s.cfg.HandoffDial, tgt.Addr,
			wire.HandoffLive, sess.lastApplied, sess.token, blob, s.cfg.HandoffTimeout)
		if err != nil {
			s.metrics.handoffFailures.Add(1)
			s.cfg.Logf("rdxd: session %d: handoff to %s: %v", sess.id, tgt.Addr, err)
			continue
		}
		mv := s.recordMoved(sess.token, wire.Moved{Addr: tgt.Addr, Admin: tgt.Admin, Seq: sess.lastApplied})
		s.metrics.handoffsOut.Add(1)
		s.ckpts.drop(sess.token)
		sess.migrated = true
		// Best-effort in-band redirect; if the write is lost the client
		// reconnects here and the tombstone answers the resume.
		s.armWrite(sess.conn)
		writeJSONFrame(bw, wire.FrameMoved, mv)
		sess.conn.Close() // unblocks the reader; the connection is done
		s.cfg.Logf("rdxd: session %d migrated to %s (state through batch %d)", sess.id, tgt.Addr, sess.lastApplied)
		return true
	}
	return false
}

// handoffRetained pushes a retained (disconnected or finished) session
// state to one of the drain targets, on demand, when its client shows
// up to resume during a drain. Returns the redirect to answer with.
func (s *Server) handoffRetained(token string, ent *ckptEntry, targets []MigrateTarget) (wire.Moved, bool) {
	kind, body := wire.HandoffLive, ent.blob
	if ent.final != nil {
		kind, body = wire.HandoffFinal, ent.final
	}
	for _, tgt := range targets {
		err := wire.PushHandoff(context.Background(), s.cfg.HandoffDial, tgt.Addr,
			kind, ent.seq, token, body, s.cfg.HandoffTimeout)
		if err != nil {
			s.metrics.handoffFailures.Add(1)
			s.cfg.Logf("rdxd: resume handoff to %s: %v", tgt.Addr, err)
			continue
		}
		mv := s.recordMoved(token, wire.Moved{Addr: tgt.Addr, Admin: tgt.Admin, Seq: ent.seq})
		s.metrics.handoffsOut.Add(1)
		s.ckpts.drop(token)
		return mv, true
	}
	return wire.Moved{}, false
}

// handleHandoff is the receiving half of a migration: it installs the
// transferred session state durably and acknowledges. It owns payload
// (a pooled frame buffer) and releases it.
func (s *Server) handleHandoff(conn net.Conn, bw *bufio.Writer, payload []byte) {
	reject := func(err error) {
		s.armWrite(conn)
		wire.WriteFrame(bw, wire.FrameError, []byte(err.Error()))
		bw.Flush()
	}
	kind, seq, token, body, err := wire.DecodeHandoff(payload)
	if err != nil {
		wire.PutPayload(payload)
		reject(err)
		return
	}
	if !validToken(token) {
		wire.PutPayload(payload)
		reject(fmt.Errorf("malformed handoff token"))
		return
	}
	// The body outlives the pooled frame buffer: copy it out.
	state := append([]byte(nil), body...)
	wire.PutPayload(payload)

	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		reject(fmt.Errorf("server draining"))
		return
	}
	// A live checkpoint must decode before we promise to serve resumes
	// from it; refusing now keeps the session running at the source.
	if kind == wire.HandoffLive {
		if _, _, err := core.RestoreProfiler(state); err != nil {
			reject(fmt.Errorf("handoff checkpoint does not decode: %v", err))
			return
		}
	}
	req := ckptReq{token: token, seq: seq, done: make(chan error, 1)}
	if kind == wire.HandoffFinal {
		req.final = state
	} else {
		req.blob = state
	}
	s.ckptq <- req
	if err := <-req.done; err != nil {
		reject(fmt.Errorf("installing handoff: %v", err))
		return
	}
	// The session lives here now: a stale tombstone from an earlier
	// migration epoch must not bounce its client away again.
	s.mu.Lock()
	delete(s.moved, token)
	s.mu.Unlock()
	s.metrics.handoffsIn.Add(1)
	s.armWrite(conn)
	wire.WriteFrame(bw, wire.FrameHandoffOK, nil)
	bw.Flush()
}

// maxControlBody bounds /drain and /migrate request bodies; target
// lists are tiny, so anything larger is a client bug or abuse.
const maxControlBody = 64 << 10

// drainRequest is the POST /drain body.
type drainRequest struct {
	// To lists migration destinations, each "addr" or "addr=adminaddr".
	// Empty drains without migrating (sessions run to completion).
	To []string `json:"to"`
}

// drainReply is the POST /drain response.
type drainReply struct {
	Draining bool `json:"draining"`
	Sessions int  `json:"sessions"`
	Ordered  int  `json:"ordered"`
}

// handleDrain is POST /drain: enter drain mode and migrate every live
// session to the given destinations. Idempotent: a coordinator polls
// /metrics and re-POSTs until sessions_active reaches zero.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	targets, ok := decodeControl(w, r, func(req *drainRequest) []string { return req.To })
	if !ok {
		return
	}
	ordered := s.Drain(targets)
	s.mu.Lock()
	n := len(s.sessions)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write(mustJSON(drainReply{Draining: true, Sessions: n, Ordered: ordered}))
}

// migrateRequest is the POST /migrate body.
type migrateRequest struct {
	To    []string `json:"to"`
	Count int      `json:"count"`
}

// migrateReply is the POST /migrate response.
type migrateReply struct {
	Ordered int `json:"ordered"`
}

// handleMigrate is POST /migrate: order up to count live sessions to
// move to the destinations (load rebalancing) without draining.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	var count int
	targets, ok := decodeControl(w, r, func(req *migrateRequest) []string {
		count = req.Count
		return req.To
	})
	if !ok {
		return
	}
	if len(targets) == 0 {
		http.Error(w, "migrate requires at least one destination", http.StatusBadRequest)
		return
	}
	if count <= 0 {
		count = 1
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(mustJSON(migrateReply{Ordered: s.OrderMigrations(targets, count)}))
}

// decodeControl shares the control handlers' method/size/shape
// validation: POST, bounded body, strict JSON, parsed target list.
func decodeControl[T any](w http.ResponseWriter, r *http.Request, to func(*T) []string) ([]MigrateTarget, bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return nil, false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxControlBody))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return nil, false
	}
	var req T
	if len(body) > 0 {
		if err := unmarshalStrict(body, &req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return nil, false
		}
	}
	targets, err := ParseMigrateTargets(to(&req))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return targets, true
}
