package server_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestExecutorChaosGOMAXPROCS4 is the work-stealing executor's
// acceptance test: several sessions multiplexed onto a 4-worker
// executor with GOMAXPROCS forced to 4 so workers genuinely interleave,
// every connection routed through faultnet (seeded drops and partial
// writes forcing reconnect/resume mid-stream), and the source backend
// drained mid-run so live sessions are handed off to a second backend
// by checkpoint handover. Whatever worker a session lands on, however
// often it is stolen, re-queued, resumed, or migrated, each session's
// final profile must be bit-identical to its local ground truth — the
// ownership invariant (a session is stepped by at most one worker at a
// time) makes the execution order per session identical to the
// sequential one. scripts/check.sh runs this test under -race.
func TestExecutorChaosGOMAXPROCS4(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const (
		sessions  = 6
		accesses  = 100_000
		batchSize = 1024
	)
	cfg := testConfig(400)

	traces := make([][]mem.Access, sessions)
	wants := make([]*wire.Result, sessions)
	for i := range traces {
		accs, err := trace.Collect(trace.ZipfAccess(uint64(31+i), 0, 8192, 1.0, accesses))
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = accs
		wants[i] = localProfile(t, accs, cfg)
	}

	src := start(t, server.Config{
		AdminAddr:       "127.0.0.1:0",
		Workers:         4,
		CheckpointEvery: 4,
		StepDelay:       200 * time.Microsecond, // slow the run so the drain lands mid-stream
		RetryAfterHint:  5 * time.Millisecond,
	})
	dst := start(t, server.Config{
		AdminAddr:       "127.0.0.1:0",
		Workers:         4,
		CheckpointEvery: 4,
	})

	faults := faultnet.NewDialer(faultnet.Options{
		Seed:          41,
		DropAfterMin:  60_000,
		DropAfterMax:  180_000,
		PartialWrites: true,
	}, nil)

	type outcome struct {
		res   *wire.Result
		err   error
		stats wire.ReconnectStats
	}
	outcomes := make([]outcome, sessions)
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			policy := testPolicy(uint64(100 + i))
			policy.Dial = faults.DialContext
			rc := wire.NewReconnectingClient(src.Addr(), cfg, policy)
			defer rc.Close()
			res, err := rc.Profile(context.Background(), trace.FromSlice(traces[i]),
				wire.ProfileOptions{BatchSize: batchSize})
			outcomes[i] = outcome{res, err, rc.Stats()}
		}(i)
	}

	// Let the executor build up real cross-worker load, then pull the
	// rug: drain the source so every live session migrates.
	waitFor(t, "progress on source", 20*time.Second, func() bool {
		return src.MetricsSnapshot().AccessesTotal > uint64(sessions*accesses/10)
	})
	src.Drain([]server.MigrateTarget{{Addr: dst.Addr(), Admin: dst.AdminAddr()}})
	wg.Wait()

	var reconnects, moves uint64
	for i, out := range outcomes {
		if out.err != nil {
			t.Fatalf("session %d failed: %v (stats %+v)", i, out.err, out.stats)
		}
		sameWireProfile(t, fmt.Sprintf("chaos session %d vs local", i), out.res, wants[i])
		reconnects += out.stats.Reconnects
		moves += out.stats.Moves
	}
	if reconnects == 0 {
		t.Errorf("no session ever reconnected despite injected drops (%d connections dialed)", faults.Conns())
	}
	if moves == 0 {
		t.Error("no session followed the drain redirect")
	}
	sm, dm := src.MetricsSnapshot(), dst.MetricsSnapshot()
	if sm.ExecutorSteps == 0 || dm.ExecutorSteps == 0 {
		t.Errorf("executor steps: src=%d dst=%d, want both > 0", sm.ExecutorSteps, dm.ExecutorSteps)
	}
	t.Logf("src: steps=%d steals=%d handoffs-out=%d; dst: steps=%d steals=%d handoffs-in=%d; reconnects=%d moves=%d",
		sm.ExecutorSteps, sm.ExecutorSteals, sm.HandoffsOut,
		dm.ExecutorSteps, dm.ExecutorSteals, dm.HandoffsIn, reconnects, moves)
}
