package server_test

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// TestAdminStalledBodyCutOff: a client that sends headers promising a
// body and then stalls must be cut off by the admin listener's read
// deadline instead of pinning a handler goroutine forever.
func TestAdminStalledBodyCutOff(t *testing.T) {
	s := start(t, server.Config{
		AdminAddr:    "127.0.0.1:0",
		AdminTimeout: 150 * time.Millisecond,
	})
	conn, err := net.Dial("tcp", s.AdminAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Promise a body, never deliver it.
	fmt.Fprintf(conn, "POST /drain HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: 1000\r\n\r\n{")
	start := time.Now()
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	_, err = io.ReadAll(conn)
	if waited := time.Since(start); err != nil || waited > 3*time.Second {
		t.Fatalf("stalled admin request not cut off: err=%v after %v", err, waited)
	}
}

// TestAdminOversizedBodyRejected: control endpoints cap their request
// bodies; a body past the cap is a 4xx, not an unbounded read.
func TestAdminOversizedBodyRejected(t *testing.T) {
	s := start(t, server.Config{AdminAddr: "127.0.0.1:0"})
	huge := bytes.Repeat([]byte("x"), 128<<10) // past the 64 KiB control cap
	resp, err := http.Post("http://"+s.AdminAddr()+"/drain", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode >= 500 {
		t.Fatalf("oversized /drain body: got %s, want a 4xx rejection", resp.Status)
	}
}

// TestAdminControlEndpointValidation: wrong method, malformed JSON,
// unknown fields, and bad target specs are all crisp 4xx answers.
func TestAdminControlEndpointValidation(t *testing.T) {
	s := start(t, server.Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + s.AdminAddr()

	if resp, err := http.Get(base + "/drain"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /drain: got %s, want 405", resp.Status)
		}
	}
	for _, body := range []string{"{not json", `{"unknown_field":1}`, `{"to":["="]}`} {
		resp, err := http.Post(base+"/migrate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST /migrate %q: got %s, want 400", body, resp.Status)
		}
	}
	// /migrate without a destination is meaningless.
	resp, err := http.Post(base+"/migrate", "application/json", strings.NewReader(`{"count":3}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("POST /migrate without targets: got %s, want 400", resp.Status)
	}
}

// TestAdminDrainEndpoint: POST /drain flips the daemon into drain mode
// (healthz 503) and reports the drain state in its reply.
func TestAdminDrainEndpoint(t *testing.T) {
	s := start(t, server.Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + s.AdminAddr()

	resp, err := http.Post(base+"/drain", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	reply, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /drain: %s: %s", resp.Status, reply)
	}
	if !bytes.Contains(reply, []byte(`"draining":true`)) {
		t.Errorf("drain reply does not report draining: %s", reply)
	}
	hz, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hz.Body)
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: got %s, want 503", hz.Status)
	}
}
