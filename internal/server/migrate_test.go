package server_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLiveMigrationBitIdentical is the tentpole's core promise: drain a
// backend mid-run, the session is handed to another backend via
// checkpoint handover, the client follows the redirect transparently,
// and the final result is bit-identical to the local ground truth —
// with the drained backend left holding zero live sessions.
func TestLiveMigrationBitIdentical(t *testing.T) {
	cfg := testConfig(400)
	accs, err := trace.Collect(trace.ZipfAccess(21, 0, 8192, 1.0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	src := start(t, server.Config{
		AdminAddr:       "127.0.0.1:0",
		CheckpointEvery: 4,
		StepDelay:       time.Millisecond, // slow the run so the drain lands mid-stream
		RetryAfterHint:  5 * time.Millisecond,
	})
	dst := start(t, server.Config{
		AdminAddr:       "127.0.0.1:0",
		CheckpointEvery: 4,
	})

	rc := wire.NewReconnectingClient(src.Addr(), cfg, testPolicy(3))
	defer rc.Close()
	type outcome struct {
		res *wire.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := rc.Profile(context.Background(), trace.FromSlice(accs), wire.ProfileOptions{BatchSize: 1024})
		done <- outcome{res, err}
	}()

	// Let the session make real progress on the source, then drain it.
	waitFor(t, "session progress on source", 10*time.Second, func() bool {
		return src.MetricsSnapshot().AccessesTotal > 20000
	})
	src.Drain([]server.MigrateTarget{{Addr: dst.Addr(), Admin: dst.AdminAddr()}})

	out := <-done
	if out.err != nil {
		t.Fatalf("profile across migration failed: %v (stats %+v)", out.err, rc.Stats())
	}
	sameWireProfile(t, "migrated remote vs local", out.res, want)

	if st := rc.Stats(); st.Moves == 0 {
		t.Errorf("client followed no redirect: %+v", st)
	}
	sm := src.MetricsSnapshot()
	if sm.HandoffsOut == 0 {
		t.Errorf("source recorded no outbound handoffs: %+v", sm)
	}
	waitFor(t, "source to empty", 5*time.Second, func() bool {
		return src.MetricsSnapshot().SessionsActive == 0
	})
	dm := dst.MetricsSnapshot()
	if dm.HandoffsIn == 0 {
		t.Errorf("destination recorded no inbound handoffs: %+v", dm)
	}
	if dm.AccessesTotal == 0 {
		t.Error("destination executed nothing after the handoff")
	}
	// Ack safety: nothing executed twice across the two backends.
	if total := sm.AccessesTotal + dm.AccessesTotal; total != uint64(len(accs)) {
		t.Errorf("accesses executed across backends = %d, want exactly %d (no double execution)", total, len(accs))
	}
}

// TestDrainRedirectsRetainedResume covers the no-live-runner path: a
// session disconnected before the drain has only a retained checkpoint.
// Its resume attempt during the drain triggers an on-demand handoff and
// a redirect; the client completes the run on the destination and the
// merged execution is still exact.
func TestDrainRedirectsRetainedResume(t *testing.T) {
	cfg := testConfig(400)
	accs, err := trace.Collect(trace.ZipfAccess(23, 0, 4096, 1.0, 60000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	src := start(t, server.Config{AdminAddr: "127.0.0.1:0", CheckpointEvery: 2})
	dst := start(t, server.Config{AdminAddr: "127.0.0.1:0", CheckpointEvery: 2})

	// First leg: stream half the batches to the source, sync (durable
	// checkpoint), drop the connection.
	const batch = 1000
	c1 := dial(t, src)
	reply, err := c1.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	token := reply.Token
	half := len(accs) / 2
	for off := 0; off < half; off += batch {
		if err := c1.SendBatch(accs[off:min(off+batch, half)]); err != nil {
			t.Fatal(err)
		}
	}
	synced, err := c1.Sync()
	if err != nil {
		t.Fatal(err)
	}
	c1.Close()
	waitFor(t, "source session teardown", 5*time.Second, func() bool {
		return src.MetricsSnapshot().SessionsActive == 0
	})

	// Drain with the session disconnected: nothing live to migrate, so
	// the handoff happens on demand when the client comes back.
	src.Drain([]server.MigrateTarget{{Addr: dst.Addr(), Admin: dst.AdminAddr()}})

	c2 := dial(t, src)
	_, err = c2.Resume(cfg, token, synced)
	var mv *wire.MovedError
	if !errors.As(err, &mv) {
		t.Fatalf("resume on draining source: got %v, want a moved redirect", err)
	}
	if mv.Addr != dst.Addr() {
		t.Fatalf("redirected to %s, want %s", mv.Addr, dst.Addr())
	}
	if mv.Seq != synced {
		t.Fatalf("redirect covers batch %d, want the synced %d", mv.Seq, synced)
	}

	// A second resume on the source must hit the tombstone and answer
	// identically — the redirect is stable.
	c3 := dial(t, src)
	_, err = c3.Resume(cfg, token, synced)
	var mv2 *wire.MovedError
	if !errors.As(err, &mv2) || mv2.Addr != mv.Addr {
		t.Fatalf("second resume: got %v, want the same redirect to %s", err, mv.Addr)
	}

	// Second leg: resume on the destination from the handed-over
	// checkpoint and finish the stream there.
	c4 := dial(t, dst)
	r2, err := c4.Resume(cfg, token, synced)
	if err != nil {
		t.Fatalf("resume on destination: %v", err)
	}
	if r2.ResumeSeq != synced {
		t.Fatalf("destination resumes from batch %d, want %d", r2.ResumeSeq, synced)
	}
	c4.SetNextSeq(r2.ResumeSeq + 1)
	for off := half; off < len(accs); off += batch {
		if err := c4.SendBatch(accs[off:min(off+batch, len(accs))]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c4.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sameWireProfile(t, "handed-over resume vs local", got, want)
}

// TestMigrationRefusedKeepsSessionLocal: when every handoff destination
// refuses (here: the destination is itself draining), the session must
// keep running on the source and complete normally — migration is an
// optimization, never a correctness risk.
func TestMigrationRefusedKeepsSessionLocal(t *testing.T) {
	cfg := testConfig(400)
	accs, err := trace.Collect(trace.ZipfAccess(29, 0, 4096, 1.0, 80000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	src := start(t, server.Config{
		AdminAddr:       "127.0.0.1:0",
		CheckpointEvery: 4,
		StepDelay:       500 * time.Microsecond,
		HandoffTimeout:  time.Second,
	})
	dst := start(t, server.Config{AdminAddr: "127.0.0.1:0"})
	dst.Drain(nil) // destination refuses handoffs from now on

	rc := wire.NewReconnectingClient(src.Addr(), cfg, testPolicy(5))
	defer rc.Close()
	type outcome struct {
		res *wire.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := rc.Profile(context.Background(), trace.FromSlice(accs), wire.ProfileOptions{BatchSize: 1024})
		done <- outcome{res, err}
	}()
	waitFor(t, "session progress on source", 10*time.Second, func() bool {
		return src.MetricsSnapshot().AccessesTotal > 10000
	})
	src.OrderMigrations([]server.MigrateTarget{{Addr: dst.Addr(), Admin: dst.AdminAddr()}}, 1)

	out := <-done
	if out.err != nil {
		t.Fatalf("profile failed after refused migration: %v", out.err)
	}
	sameWireProfile(t, "refused migration vs local", out.res, want)
	sm := src.MetricsSnapshot()
	if sm.HandoffsOut != 0 {
		t.Errorf("source handed off despite a draining destination: %+v", sm)
	}
	if sm.MigrationsOrdered == 0 {
		t.Errorf("no migration was ever ordered: %+v", sm)
	}
	if sm.HandoffFailures == 0 {
		t.Errorf("the refused handoff was not counted: %+v", sm)
	}
}
