package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/mrc"
	"repro/internal/report"
	"repro/internal/wire"
)

// POST /whatif answers cache what-if questions from retained session
// state — a live session's latest durable checkpoint or a finished
// session's final result — without re-profiling. The profile's
// reuse-distance histogram already contains everything the analytical
// cache models need, so the answer costs one checkpoint decode plus
// curve arithmetic, never a replay of the access stream.

// whatIfLevel is one cache level in the request's optional base
// hierarchy, with explicit wire names (internal/cache carries none).
type whatIfLevel struct {
	Name      string `json:"name"`
	SizeBytes uint64 `json:"size_bytes"`
	LineBytes uint64 `json:"line_bytes"`
	Ways      int    `json:"ways"` // 0 = fully associative
}

// whatIfRequest is the POST /whatif body. Token is the session token
// from the open reply; Spec is the what-if specification
// ("l2.size=2x,l1.ways=4"). Hierarchy optionally replaces the default
// base (TypicalHierarchy); Sweep optionally shapes the returned curve.
type whatIfRequest struct {
	Token     string        `json:"token"`
	Spec      string        `json:"spec"`
	Hierarchy []whatIfLevel `json:"hierarchy,omitempty"`
	Sweep     mrc.Sweep     `json:"sweep,omitempty"`
}

// whatIfResponse wraps the report with the provenance of the answer:
// which batch sequence the profile state covers and whether it came
// from a finished session's final result.
type whatIfResponse struct {
	// Schema versions the response envelope, shared with `rdx -json`
	// reports and `rdx diff` (see internal/report).
	Schema   string      `json:"schema"`
	Token    string      `json:"token"`
	Seq      uint64      `json:"seq"`
	Final    bool        `json:"final"`
	Accesses uint64      `json:"accesses"`
	Report   *mrc.Report `json:"report"`
}

// retryAfterSeconds renders the configured shed backoff as a
// Retry-After header value (whole seconds, minimum 1).
func (s *Server) retryAfterSeconds() string {
	secs := int(math.Ceil(s.cfg.RetryAfterHint.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	s.metrics.whatifRequests.Add(1)

	// Same drain semantics as /healthz: a draining daemon answers 503 so
	// load balancers stop routing analysis queries here, with the shed
	// backoff clients already honor on the ingest path.
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	var req whatIfRequest
	if err := unmarshalStrict(body, &req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Spec == "" {
		http.Error(w, "missing what-if spec", http.StatusBadRequest)
		return
	}

	res, seq, final, err := s.resultForToken(req.Token)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}

	base := cache.TypicalHierarchy()
	if len(req.Hierarchy) > 0 {
		base = make([]cache.LevelSpec, len(req.Hierarchy))
		for i, l := range req.Hierarchy {
			base[i] = cache.LevelSpec{Name: l.Name, Config: cache.Config{
				SizeBytes: l.SizeBytes, LineBytes: l.LineBytes, Ways: l.Ways,
			}}
		}
	}
	rep, err := res.WhatIf(base, req.Spec, req.Sweep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(mustJSON(whatIfResponse{
		Schema:   report.SchemaVersion,
		Token:    req.Token,
		Seq:      seq,
		Final:    final,
		Accesses: res.Accesses,
		Report:   rep,
	}))
}

// resultForToken reconstructs a profile Result from the retained state
// for token: a finished session's final result verbatim, or a live
// session's checkpoint decoded and snapshotted in this goroutine —
// the runner, if still executing batches, is never touched.
func (s *Server) resultForToken(token string) (*core.Result, uint64, bool, error) {
	ent, err := s.ckpts.load(token)
	if err != nil {
		return nil, 0, false, err
	}
	if ent.final != nil {
		var wres wire.Result
		if err := json.Unmarshal(ent.final, &wres); err != nil {
			return nil, 0, false, fmt.Errorf("decoding retained result: %v", err)
		}
		return wire.ToCore(&wres), ent.seq, true, nil
	}
	prof, _, err := core.RestoreProfiler(ent.blob)
	if err != nil {
		return nil, 0, false, fmt.Errorf("decoding checkpoint: %v", err)
	}
	return prof.Snapshot(), ent.seq, false, nil
}
