package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	rdx "repro"
	"repro/internal/server"
	"repro/internal/trace"
)

// whatIfResult mirrors the POST /whatif response body.
type whatIfResult struct {
	Token    string            `json:"token"`
	Seq      uint64            `json:"seq"`
	Final    bool              `json:"final"`
	Accesses uint64            `json:"accesses"`
	Report   *rdx.WhatIfReport `json:"report"`
}

func postWhatIf(t *testing.T, base string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/whatif", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, data
}

// TestWhatIfEndpoint is the server-side what-if acceptance test: a
// profiling session streams batches to rdxd, and POST /whatif answers
// cache questions from the retained state — the live checkpoint before
// Finish, the final result after — without re-executing any accesses.
func TestWhatIfEndpoint(t *testing.T) {
	s := start(t, server.Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + s.AdminAddr()
	cfg := testConfig(400)

	accs, err := trace.Collect(trace.ZipfAccess(9, 0, 1<<14, 1.0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, s)
	reply, err := c.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(accs); err != nil {
		t.Fatal(err)
	}
	// Sync acks only after the checkpoint is durable in the store, so
	// the live session is queryable from here on.
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	executed := s.MetricsSnapshot().AccessesTotal
	resp, body := postWhatIf(t, base, `{"token":"`+reply.Token+`","spec":"l2.size=2x"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live what-if: %d %s", resp.StatusCode, body)
	}
	var live whatIfResult
	if err := json.Unmarshal(body, &live); err != nil {
		t.Fatal(err)
	}
	if live.Final {
		t.Error("live session answered as final")
	}
	if live.Seq != 1 {
		t.Errorf("answer covers seq %d, want 1", live.Seq)
	}
	if live.Accesses != uint64(len(accs)) {
		t.Errorf("snapshot covers %d accesses, want %d", live.Accesses, len(accs))
	}
	rep := live.Report
	if rep == nil || len(rep.Base.Levels) != 3 || len(rep.Modified.Levels) != 3 {
		t.Fatalf("report shape: %+v", rep)
	}
	wantL2 := 2 * rdx.TypicalHierarchy()[1].Config.SizeBytes
	if rep.Modified.Levels[1].SizeBytes != wantL2 {
		t.Errorf("modified L2 size = %d, want %d", rep.Modified.Levels[1].SizeBytes, wantL2)
	}
	if len(rep.Curve.Points) == 0 {
		t.Error("report missing miss-ratio curve")
	}
	for _, l := range rep.Base.Levels {
		if l.Global < 0 || l.Global > 1 || l.Local < 0 || l.Local > 1 {
			t.Errorf("level %s ratios out of range: %+v", l.Name, l)
		}
	}
	// The defining property: the answer came from retained state, not
	// from replaying the stream through the profiler.
	if after := s.MetricsSnapshot().AccessesTotal; after != executed {
		t.Errorf("what-if re-executed accesses: %d -> %d", executed, after)
	}

	// After Finish the same token answers from the retained final
	// result, bit-identical to a local profile's prediction.
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	resp, body = postWhatIf(t, base, `{"token":"`+reply.Token+`","spec":"l2.size=2x"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final what-if: %d %s", resp.StatusCode, body)
	}
	var final whatIfResult
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatal(err)
	}
	if !final.Final {
		t.Error("finished session not answered as final")
	}
	res, err := rdx.Profile(trace.FromSlice(accs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.PredictHierarchy(rdx.TypicalHierarchy())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.Report.Base, want) {
		t.Errorf("final base prediction differs from local profile:\n got %+v\nwant %+v", final.Report.Base, want)
	}

	// A caller-supplied base hierarchy replaces the default.
	resp, body = postWhatIf(t, base, `{"token":"`+reply.Token+`","spec":"l2.ways=full","hierarchy":[`+
		`{"name":"l1","size_bytes":8192,"line_bytes":64,"ways":2},`+
		`{"name":"l2","size_bytes":65536,"line_bytes":64,"ways":8}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("custom-base what-if: %d %s", resp.StatusCode, body)
	}
	var custom whatIfResult
	if err := json.Unmarshal(body, &custom); err != nil {
		t.Fatal(err)
	}
	if n := len(custom.Report.Base.Levels); n != 2 {
		t.Fatalf("custom base has %d levels, want 2", n)
	}
	if w := custom.Report.Modified.Levels[1].Ways; w != 0 {
		t.Errorf("l2.ways=full left ways = %d", w)
	}

	if m := s.MetricsSnapshot(); m.WhatIfRequests != 3 {
		t.Errorf("whatif_requests = %d, want 3", m.WhatIfRequests)
	}
}

// TestWhatIfRejections: malformed requests get descriptive 4xx answers,
// and every attempt is counted.
func TestWhatIfRejections(t *testing.T) {
	s := start(t, server.Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + s.AdminAddr()

	c := dial(t, s)
	reply, err := c.Open(testConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	accs, err := trace.Collect(trace.Cyclic(0, 256, 50000))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(accs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, body string
		status     int
	}{
		{"malformed spec", `{"token":"` + reply.Token + `","spec":"l2.banks=9"}`, http.StatusBadRequest},
		{"missing spec", `{"token":"` + reply.Token + `"}`, http.StatusBadRequest},
		{"invalid ways", `{"token":"` + reply.Token + `","spec":"l1.ways=-3"}`, http.StatusBadRequest},
		{"bad json", `{"token"`, http.StatusBadRequest},
		{"unknown field", `{"token":"` + reply.Token + `","spec":"l2.size=2x","resample":true}`, http.StatusBadRequest},
		{"unknown token", `{"token":"0123456789abcdef0123456789abcdef","spec":"l2.size=2x"}`, http.StatusNotFound},
		{"malformed token", `{"token":"nope","spec":"l2.size=2x"}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, body := postWhatIf(t, base, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
	}

	resp, err := http.Get(base + "/whatif")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /whatif: %d, want 405", resp.StatusCode)
	}

	if m := s.MetricsSnapshot(); m.WhatIfRequests != uint64(len(cases)) {
		t.Errorf("whatif_requests = %d, want %d", m.WhatIfRequests, len(cases))
	}
}

// TestWhatIfDraining: a draining daemon sheds analysis queries with the
// same 503 + Retry-After contract the ingest path uses.
func TestWhatIfDraining(t *testing.T) {
	s := start(t, server.Config{
		AdminAddr:      "127.0.0.1:0",
		RetryAfterHint: 2 * time.Second,
	})
	base := "http://" + s.AdminAddr()
	c := dial(t, s)
	if _, err := c.Open(testConfig(500)); err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !s.MetricsSnapshot().Draining {
		if time.Now().After(deadline) {
			t.Fatal("drain never became visible")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(base+"/whatif", "application/json",
		bytes.NewReader([]byte(`{"token":"0123456789abcdef0123456789abcdef","spec":"l2.size=2x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining what-if: %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("drain did not complete cleanly: %v", err)
	}
}
