// Package server implements rdxd, the streaming remote-profiling
// service: it accepts wire-protocol sessions over TCP, feeds each
// session's access batches through the batched cpu.Machine engine, and
// answers live snapshot requests from core.Profiler.Snapshot.
//
// # Concurrency model
//
// Each connection owns a reader goroutine that decodes frames into a
// bounded per-session queue. Decode/execute work is drained by a fixed
// work-stealing executor (see executor.go): Config.Workers workers
// (default GOMAXPROCS), each with a deque of runnable sessions, stealing
// from siblings when their own deque runs dry. A session is owned by at
// most one worker at a time, so its batches execute in queue order and
// its reply frames never interleave (single-writer per connection) —
// results are bit-identical to the old runner-per-session model, but N
// sessions cost N reader goroutines plus a constant worker set instead
// of 2N goroutines, and execution parallelism tracks GOMAXPROCS exactly.
// Backpressure is emergent: a full session queue blocks the reader, the
// kernel's TCP window fills, and the client's SendBatch blocks —
// per-session server memory stays bounded by QueueDepth×MaxBatch
// regardless of how fast the client produces.
//
// # Drain semantics
//
// Shutdown stops accepting connections and waits for in-flight
// sessions to Finish naturally. Sessions still open when the context
// expires are force-closed. The admin /healthz endpoint reports 503
// from the moment draining starts, so load balancers stop routing new
// sessions before the listener closes.
//
// # Fault tolerance
//
// Every session is identified by a random token handed out at open.
// The server checkpoints the session's full profiler state (lossless,
// via core.Profiler.Checkpoint) at open, every CheckpointEvery
// batches, on an explicit client sync, and when the connection drops
// mid-session. Checkpoints live in an in-memory LRU and, when
// CheckpointDir is set, on disk — surviving a daemon restart. A client
// reconnecting with its token resumes exactly where the last
// checkpoint left off: the open reply carries the last executed batch
// sequence number, the client replays its unacknowledged tail, and
// the runner discards any batch it already executed — replay is
// idempotent. A finished session's final result is retained the same
// way, so a result frame lost in flight can be fetched again. When the
// server is at MaxSessions or draining, opens are shed with an
// explicit retry-after reply instead of a hard error.
package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/window"
	"repro/internal/wire"
)

// Config configures an rdxd server. The zero value is usable for
// tests: it listens on an ephemeral loopback port with defaults.
type Config struct {
	// Addr is the profiling listener address (default "127.0.0.1:0").
	Addr string
	// AdminAddr, when non-empty, serves /healthz and /metrics on a
	// separate HTTP listener.
	AdminAddr string
	// Workers sizes the executor's fixed worker set — the bound on
	// concurrent engine execution across all sessions (default
	// runtime.GOMAXPROCS(0), matching the parallelism the Go scheduler
	// can actually deliver).
	Workers int
	// QueueDepth is the per-session bounded batch queue (default 8).
	// Together with MaxBatch it caps per-session buffered memory.
	QueueDepth int
	// MaxBatch is the largest accepted batch, in accesses (default
	// 1<<20). Larger batches are a protocol error.
	MaxBatch int
	// MaxWireVersion caps the wire version negotiated with clients
	// (default wire.WireV3, the latest). Set to wire.WireV2 to emulate a
	// pre-columnar server: v3 clients transparently fall back to RDT3
	// batch framing.
	MaxWireVersion int
	// MaxSessions bounds concurrent sessions (default 64); further
	// opens are refused with a wire error.
	MaxSessions int
	// Costs is the CPU cost model sessions run under (default
	// cpumodel.Default()).
	Costs *cpumodel.Costs
	// StepDelay, when set, sleeps after executing each batch while
	// still holding the worker slot. Test hook: it makes the engine
	// slow so backpressure is observable.
	StepDelay time.Duration
	// Logf receives server diagnostics (default log.Printf; use a
	// no-op in tests).
	Logf func(format string, args ...any)

	// CheckpointEvery checkpoints each session every that many batches
	// (default 64; negative disables periodic checkpoints). Sessions
	// are also checkpointed at open, on client sync, and on disconnect.
	CheckpointEvery int
	// CheckpointDir, when non-empty, spills checkpoints to disk so
	// sessions survive a daemon restart. The directory is created if
	// missing.
	CheckpointDir string
	// MaxCheckpoints bounds retained in-memory checkpoints (default
	// 128); the least recently used are evicted first.
	MaxCheckpoints int
	// MaxDiskCheckpoints bounds spilled checkpoint files (default
	// 1024); the oldest are swept first.
	MaxDiskCheckpoints int
	// ReadTimeout bounds the wait for each inbound frame (default 5m;
	// negative disables). An idle connection past it is dropped — and
	// checkpointed, so the client can resume.
	ReadTimeout time.Duration
	// WriteTimeout bounds each outbound reply write (default 1m;
	// negative disables).
	WriteTimeout time.Duration
	// RetryAfterHint is the backoff suggested to shed clients (default
	// 500ms).
	RetryAfterHint time.Duration
	// EnablePprof registers net/http/pprof handlers under /debug/pprof/
	// on the admin listener (no effect without AdminAddr), so the ingest
	// path can be profiled in place.
	EnablePprof bool

	// AdminTimeout bounds each admin API request end to end: handlers
	// run under http.TimeoutHandler and the listener enforces a request
	// read deadline, so a stalled or slow-drip admin client can never
	// pin a handler goroutine (default 10s; negative disables). pprof
	// endpoints are exempt — profile and trace captures legitimately
	// run long.
	AdminTimeout time.Duration
	// HandoffTimeout bounds one live-migration handoff RPC to a
	// destination backend, dial included (default 10s).
	HandoffTimeout time.Duration
	// HandoffDial overrides the transport used for outbound migration
	// handoffs (nil = plain TCP). Test hook: chaos tests inject a
	// faultnet dialer here.
	HandoffDial func(ctx context.Context, addr string) (net.Conn, error)

	// AlertWorkingSetBytes is the working-set threshold the continuous
	// profiler alerts at: a watched session whose latest window needs
	// more than this many bytes raises a "working set grew past L3"
	// alert on /metrics (default 32 MiB, the typical LLC capacity;
	// negative disables).
	AlertWorkingSetBytes int64
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1 << 20
	}
	if c.MaxWireVersion < wire.WireV2 || c.MaxWireVersion > wire.WireV3 {
		c.MaxWireVersion = wire.WireV3
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.Costs == nil {
		d := cpumodel.Default()
		c.Costs = &d
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 64
	}
	if c.MaxCheckpoints <= 0 {
		c.MaxCheckpoints = 128
	}
	if c.MaxDiskCheckpoints <= 0 {
		c.MaxDiskCheckpoints = 1024
	}
	if c.ReadTimeout == 0 {
		c.ReadTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = time.Minute
	}
	if c.RetryAfterHint <= 0 {
		c.RetryAfterHint = 500 * time.Millisecond
	}
	if c.AdminTimeout == 0 {
		c.AdminTimeout = 10 * time.Second
	}
	if c.HandoffTimeout <= 0 {
		c.HandoffTimeout = 10 * time.Second
	}
	if c.AlertWorkingSetBytes == 0 {
		c.AlertWorkingSetBytes = 32 << 20 // the TypicalHierarchy LLC
	}
}

// Server is an rdxd instance.
type Server struct {
	cfg     Config
	ln      net.Listener
	adminLn net.Listener
	admin   *http.Server
	exec    *executor // work-stealing session executor

	mu       sync.Mutex
	sessions map[uint64]*session
	tokens   map[string]struct{} // tokens with a live session attached
	nextID   uint64
	draining bool
	closed   bool
	// moved tombstones migrated tokens so a resume attempt is answered
	// with a redirect to the session's new home; movedOrder bounds the
	// map (oldest forgotten first). drainTo holds the destinations for
	// on-demand handoffs of retained sessions while draining.
	moved      map[string]wire.Moved
	movedOrder []string
	drainTo    []MigrateTarget

	wg       sync.WaitGroup // accept loop + one per connection
	metrics  metrics
	ckpts    *ckptStore
	stopRate chan struct{}
	// ringsPool recirculates session free-ring channel pairs (see
	// handleConn); per-server because their capacity is QueueDepth+2.
	ringsPool sync.Pool

	// ckptq feeds the serial checkpoint writer goroutine: blob capture
	// stays on each session's runner (it needs the machine quiescent),
	// but the LRU insert and the durable disk write happen here, off the
	// execute critical path. The writer preserves FIFO order, so when a
	// waited request returns, every earlier save is durable too — the
	// ack-after-durable promise survives the move.
	ckptq    chan ckptReq
	ckptDone chan struct{}
}

// ckptReq is one state-retention request for the checkpoint writer:
// either a live checkpoint blob or a finished session's final result.
// A non-nil done makes the requester wait for durability (session open,
// client sync, disconnect, finish); nil marks a periodic fire-and-forget
// save whose failure is only logged.
type ckptReq struct {
	token string
	seq   uint64
	blob  []byte // live checkpoint; nil for final results
	final []byte // final-result JSON; nil for live checkpoints
	done  chan error
}

// New creates a server and binds its listeners; connections are not
// accepted until Start.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o700); err != nil {
			return nil, fmt.Errorf("server: checkpoint dir: %w", err)
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listening on %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		sessions: make(map[uint64]*session),
		tokens:   make(map[string]struct{}),
		moved:    make(map[string]wire.Moved),
		ckpts:    newCkptStore(cfg.CheckpointDir, cfg.MaxCheckpoints, cfg.MaxDiskCheckpoints, cfg.Logf),
		stopRate: make(chan struct{}),
		ckptq:    make(chan ckptReq, 16),
		ckptDone: make(chan struct{}),
	}
	s.exec = newExecutor(s, cfg.Workers)
	if cfg.AdminAddr != "" {
		adminLn, err := net.Listen("tcp", cfg.AdminAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("server: admin listener on %s: %w", cfg.AdminAddr, err)
		}
		s.adminLn = adminLn
		mux := http.NewServeMux()
		// Every API handler runs under a timeout so a stalled client or a
		// wedged handler cannot pin its goroutine; pprof stays unwrapped
		// (profile/trace captures run as long as they were asked to).
		api := func(h http.HandlerFunc) http.Handler {
			if cfg.AdminTimeout > 0 {
				return http.TimeoutHandler(h, cfg.AdminTimeout, "admin request timed out\n")
			}
			return h
		}
		mux.Handle("/healthz", api(s.handleHealthz))
		mux.Handle("/metrics", api(s.handleMetrics))
		mux.Handle("/whatif", api(s.handleWhatIf))
		mux.Handle("/drain", api(s.handleDrain))
		mux.Handle("/migrate", api(s.handleMigrate))
		if cfg.EnablePprof {
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		s.admin = &http.Server{Handler: mux}
		if cfg.AdminTimeout > 0 {
			// http.TimeoutHandler cannot interrupt a handler blocked
			// reading a slow request body; the server-level read deadline
			// can. No WriteTimeout: pprof profile/trace responses stream
			// for longer than any fixed bound.
			s.admin.ReadHeaderTimeout = cfg.AdminTimeout
			s.admin.ReadTimeout = 2 * cfg.AdminTimeout
		}
	}
	// The writer starts with the server object, not with Start: sessions
	// cannot exist before Start, but finishClose waits on ckptDone and
	// must not hang for a server that was never started.
	go s.ckptWriter()
	return s, nil
}

// ckptWriter serially applies checkpoint requests: LRU insert plus, when
// a spill directory is configured, the durable disk write. Serial FIFO
// processing is the ordering guarantee the rest of the server leans on.
func (s *Server) ckptWriter() {
	defer close(s.ckptDone)
	for req := range s.ckptq {
		var err error
		if req.final != nil {
			err = s.ckpts.saveFinal(req.token, req.seq, req.final)
		} else {
			err = s.ckpts.save(req.token, req.seq, req.blob)
		}
		if err == nil {
			s.metrics.checkpointsTotal.Add(1)
			s.metrics.checkpointBytes.Add(uint64(len(req.blob) + len(req.final)))
		}
		if req.done != nil {
			req.done <- err
		} else if err != nil {
			s.cfg.Logf("rdxd: periodic checkpoint (batch %d): %v", req.seq, err)
		}
	}
}

// Addr is the profiling listener's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr is the admin listener's bound address, or "" if disabled.
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Start launches the accept loop (and admin server, if configured) in
// the background and returns immediately.
func (s *Server) Start() {
	s.exec.start()
	s.wg.Add(1)
	go s.acceptLoop()
	go s.metrics.rateLoop(s.stopRate)
	if s.admin != nil {
		go func() {
			if err := s.admin.Serve(s.adminLn); err != nil && err != http.ErrServerClosed {
				s.cfg.Logf("rdxd: admin server: %v", err)
			}
		}()
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains the server: it stops accepting connections, waits
// for in-flight sessions to finish, and force-closes any still open
// when ctx expires. It is the SIGTERM path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Sessions that did not finish in time lose their connection;
		// their state is freed on the way out.
		s.mu.Lock()
		n := len(s.sessions)
		for _, sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		err = fmt.Errorf("server: drain deadline passed with %d sessions open", n)
		<-done
	}
	s.finishClose()
	return err
}

// Close force-closes everything without draining.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
	s.finishClose()
	return nil
}

func (s *Server) finishClose() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return
	}
	// s.wg has drained, so every session is done and the executor's
	// deques are empty; its workers (which enqueue checkpoints) must stop
	// before the checkpoint queue can close.
	s.exec.close()
	// Every remaining enqueuer ran inside s.wg, so the queue can close;
	// waiting for the writer makes Shutdown/Close imply "all requested
	// checkpoints are durable".
	close(s.ckptq)
	<-s.ckptDone
	close(s.stopRate)
	if s.admin != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.admin.Shutdown(ctx)
	}
}

// register admits a new session, or explains why it can't. shed
// reports whether the rejection is transient (capacity, draining) and
// should be answered with a retry-after rather than a hard error.
func (s *Server) register(sess *session) (id uint64, shed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, true, fmt.Errorf("server draining")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return 0, true, fmt.Errorf("session limit reached (%d)", s.cfg.MaxSessions)
	}
	if _, busy := s.tokens[sess.token]; busy {
		// The original connection may not have noticed its death yet; a
		// moment later the token frees up, so this too is retryable.
		return 0, true, fmt.Errorf("session token already active")
	}
	s.nextID++
	s.sessions[s.nextID] = sess
	s.tokens[sess.token] = struct{}{}
	s.metrics.sessionsTotal.Add(1)
	s.metrics.sessionsActive.Add(1)
	return s.nextID, false, nil
}

func (s *Server) unregister(id uint64) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	delete(s.sessions, id)
	if ok {
		delete(s.tokens, sess.token)
	}
	s.mu.Unlock()
	if ok {
		s.metrics.sessionsActive.Add(-1)
	}
}

// sessionRings is a recirculating free-ring channel pair, pooled across
// one server's sessions (Server.ringsPool).
type sessionRings struct {
	bufs chan []mem.Access
	cols chan *trace.Columns
}

// Connection-buffer pools: sessions come and go, but their bufio
// buffers (256 KiB read + 64 KiB write) recirculate — without this,
// every session costs two large allocations that show up as per-session
// allocation creep at pool scale.
var (
	connReaderPool = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, 256<<10) }}
	connWriterPool = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, 64<<10) }}
)

// handleConn owns one connection: the open (or resume) handshake
// inline, then the reader/runner goroutine pair, then the disconnect
// checkpoint if the session did not finish.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	br := connReaderPool.Get().(*bufio.Reader)
	br.Reset(conn)
	defer connReaderPool.Put(br)
	bw := connWriterPool.Get().(*bufio.Writer)
	bw.Reset(conn)
	defer connWriterPool.Put(bw)
	reject := func(err error) {
		s.armWrite(conn)
		wire.WriteFrame(bw, wire.FrameError, []byte(err.Error()))
		bw.Flush()
	}
	shed := func(err error) {
		s.metrics.shedRequests.Add(1)
		s.armWrite(conn)
		writeJSONFrame(bw, wire.FrameRetryAfter, wire.RetryAfter{
			AfterMillis: s.cfg.RetryAfterHint.Milliseconds(),
			Reason:      err.Error(),
		})
	}

	s.armRead(conn)
	t, payload, err := wire.ReadFramePooled(br)
	if err != nil {
		return // client vanished before speaking
	}
	s.metrics.bytesIn.Add(uint64(5 + len(payload)))
	if t == wire.FrameHandoff {
		// A peer backend is migrating a session here; handleHandoff owns
		// the payload buffer.
		s.handleHandoff(conn, bw, payload)
		return
	}
	if t != wire.FrameOpen {
		wire.PutPayload(payload)
		reject(fmt.Errorf("expected open frame, got %s", t))
		return
	}
	var req wire.OpenRequest
	err = unmarshalStrict(payload, &req)
	wire.PutPayload(payload)
	if err != nil {
		reject(fmt.Errorf("bad open request: %v", err))
		return
	}

	// Negotiate the wire version: the minimum of what the client offered
	// (absent field = the original v2) and what this server allows.
	wireVer := req.Wire
	if wireVer < wire.WireV2 {
		wireVer = wire.WireV2
	}
	if wireVer > s.cfg.MaxWireVersion {
		wireVer = s.cfg.MaxWireVersion
	}

	var sess *session
	if req.ResumeToken != "" {
		sess, err = s.resumeSession(conn, req)
		if err != nil {
			var moved *movedSessionError
			if errors.As(err, &moved) {
				// Not a failure: the session migrated. Redirect the
				// client; it resumes by token at the new backend.
				s.metrics.movedResumes.Add(1)
				s.armWrite(conn)
				writeJSONFrame(bw, wire.FrameMoved, moved.to)
				return
			}
			s.metrics.resumeFailures.Add(1)
			reject(fmt.Errorf("resume: %v", err))
			return
		}
	} else {
		prof, err := core.NewProfiler(req.Config)
		if err != nil {
			reject(err)
			return
		}
		sess = &session{
			conn:    conn,
			prof:    prof,
			machine: prof.NewMachine(*s.cfg.Costs),
			token:   newSessionToken(),
		}
	}
	sess.wire = wireVer
	sess.migrate = make(chan migrateOrder, 1)
	id, retryable, err := s.register(sess)
	if err != nil {
		if retryable {
			shed(err)
		} else {
			reject(err)
		}
		return
	}
	sess.id = id
	defer s.unregister(id)
	if req.ResumeToken != "" {
		s.metrics.resumedSessions.Add(1)
	} else if err := s.checkpointSession(sess); err != nil {
		// The open checkpoint anchors the token durably: once the
		// client holds it, a resume must find something. Refuse the
		// session rather than hand out a token that can dangle.
		reject(fmt.Errorf("initial checkpoint: %v", err))
		return
	}

	s.armWrite(conn)
	if err := writeJSONFrame(bw, wire.FrameOpenOK, wire.OpenReply{
		SessionID:       id,
		QueueDepth:      s.cfg.QueueDepth,
		MaxBatch:        s.cfg.MaxBatch,
		Token:           sess.token,
		ResumeSeq:       sess.lastApplied,
		Done:            sess.completed,
		CheckpointEvery: s.cfg.CheckpointEvery,
		Wire:            sess.wire,
	}); err != nil {
		return
	}

	sess.queue = make(chan item, s.cfg.QueueDepth)
	// freeBufs recirculates decoded-batch buffers from the executor back
	// to the reader: sized one past the queue so a buffer is always
	// returnable without blocking, and the session's steady state runs
	// on a fixed set of buffers — zero allocations per batch. freeCols
	// is its v3 analogue for columnar scratch. Both seed from (and drain
	// back to) process-wide pools, so the buffers outlive the session
	// and back-to-back sessions stop allocating them afresh. The channel
	// pair recirculates across this server's sessions too — contents and
	// all, since the rings are never closed and every buffer in them is
	// re-sliced before use (ringsPool is per-server, so the capacities
	// always match this server's queue depth).
	if r, _ := s.ringsPool.Get().(*sessionRings); r != nil {
		sess.freeBufs, sess.freeCols = r.bufs, r.cols
	} else {
		sess.freeBufs = make(chan []mem.Access, s.cfg.QueueDepth+2)
		sess.freeCols = make(chan *trace.Columns, s.cfg.QueueDepth+2)
	}
	sess.bw = bw
	sess.done = make(chan struct{})
	// Admit the session to the executor before the reader starts; the
	// unconditional kick picks up any migration order that raced the
	// handshake (notify was a no-op until admitted flipped).
	sess.admitted.Store(true)
	s.exec.notify(sess)
	go s.readLoop(sess, br)
	// The executor closes done after the session's terminal step
	// (finish, protocol error, disconnect, or migration handoff).
	<-sess.done
	// The reader exits once it notices (its blocked enqueue aborts on
	// done, or its next read fails); drain whatever it had queued,
	// keeping the pipeline-depth gauge honest.
	for it := range sess.queue {
		if it.kind == itemBatch {
			s.metrics.pipelineDepth.Add(-1)
			if it.cols != nil {
				wire.PutColumns(it.cols)
			} else {
				putBatchBuf(it.batch)
			}
		}
	}
	// Hand the session's recirculating scratch — the ring channels with
	// whatever buffers they hold — to the next session on this server.
	s.ringsPool.Put(&sessionRings{bufs: sess.freeBufs, cols: sess.freeCols})
	if sess.failed {
		// The worker wrote the error frame, armed the linger deadline,
		// and moved on; this connection goroutine absorbs the linger so
		// our close cannot become a TCP reset that discards the frame
		// before the client reads it.
		io.Copy(io.Discard, conn)
	}
	// The reader and runner are both done with the profiler now; a
	// disconnect checkpoint lets the client resume mid-stream. (It runs
	// before the deferred unregister frees the token, so a racing
	// resume cannot observe the stale pre-disconnect checkpoint.) A
	// migrated session's state lives on its new backend — checkpointing
	// it here would resurrect a stale copy behind the tombstone.
	if !sess.completed && !sess.migrated {
		if err := s.checkpointSession(sess); err != nil {
			s.cfg.Logf("rdxd: session %d: disconnect checkpoint: %v", sess.id, err)
		}
	}
}

// resumeSession rebuilds a session from its retained checkpoint. For a
// finished session it carries the retained final result instead of a
// live profiler; the runner serves it to a retried Finish.
func (s *Server) resumeSession(conn net.Conn, req wire.OpenRequest) (*session, error) {
	// Tombstone first: a migrated session's client must be redirected
	// even while this server drains (register would shed it otherwise,
	// and it would retry here forever).
	if mv, ok := s.lookupMoved(req.ResumeToken); ok {
		return nil, &movedSessionError{to: mv}
	}
	ent, err := s.ckpts.load(req.ResumeToken)
	if err != nil {
		return nil, err
	}
	// Draining with migration targets: this retained session has no
	// live runner to hand it off, so push its state on demand, right
	// now, and redirect the client along with it. Only safe while the
	// token has no live session attached — a concurrent runner would
	// fork the state. If every target refuses, fall through: register
	// sheds the resume with a retry-after, as before.
	s.mu.Lock()
	_, busy := s.tokens[req.ResumeToken]
	draining, targets := s.draining, s.drainTo
	s.mu.Unlock()
	if draining && len(targets) > 0 && !busy {
		if mv, ok := s.handoffRetained(req.ResumeToken, ent, targets); ok {
			return nil, &movedSessionError{to: mv}
		}
	}
	if ent.seq < req.LastAcked {
		return nil, fmt.Errorf("checkpoint covers batch %d but client holds ack %d", ent.seq, req.LastAcked)
	}
	sess := &session{
		conn:        conn,
		token:       req.ResumeToken,
		lastApplied: ent.seq,
	}
	if ent.final != nil {
		sess.completed = true
		sess.finalResult = append([]byte(nil), ent.final...)
		return sess, nil
	}
	prof, machine, err := core.RestoreProfiler(ent.blob)
	if err != nil {
		return nil, fmt.Errorf("corrupt checkpoint: %v", err)
	}
	if prof.Config() != req.Config {
		return nil, fmt.Errorf("config does not match the checkpointed session")
	}
	if machine == nil {
		machine = prof.NewMachine(*s.cfg.Costs)
	}
	sess.prof, sess.machine = prof, machine
	sess.accesses.Store(machine.Account().Accesses)
	sess.stateBytes.Store(prof.StateBytes())
	return sess, nil
}

// checkpointSession captures the session's full profiler state and
// waits for the checkpoint writer to make it durable. Capture must only
// run while the session's machine is quiescent (from the worker
// stepping the session, or after its terminal step); the writer does
// the rest.
func (s *Server) checkpointSession(sess *session) error {
	done := make(chan error, 1)
	s.enqueueCheckpoint(sess, done)
	return <-done
}

// checkpointSessionAsync is checkpointSession without the durability
// wait: capture happens now (state at this batch boundary), but the
// store insert and disk write overlap with subsequent execution. Used
// for periodic checkpoints, where a lost save only widens the replay
// window of a later resume.
func (s *Server) checkpointSessionAsync(sess *session) {
	s.enqueueCheckpoint(sess, nil)
}

func (s *Server) enqueueCheckpoint(sess *session, done chan error) {
	// Capture into a recycled blob when the store has one; the blob's
	// ownership passes to the writer and then the store.
	blob := sess.prof.CheckpointInto(s.ckpts.blobBuf())
	sess.sinceCkpt = 0
	s.ckptq <- ckptReq{token: sess.token, seq: sess.lastApplied, blob: blob, done: done}
}

// saveFinalDurable routes a finished session's result through the
// checkpoint writer (keeping it ordered after the session's earlier
// saves) and waits for durability.
func (s *Server) saveFinalDurable(token string, seq uint64, result []byte) error {
	done := make(chan error, 1)
	s.ckptq <- ckptReq{token: token, seq: seq, final: result, done: done}
	return <-done
}

// armRead arms the per-frame read deadline on conn.
func (s *Server) armRead(conn net.Conn) {
	if s.cfg.ReadTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	}
}

// armWrite arms the per-frame write deadline on conn.
func (s *Server) armWrite(conn net.Conn) {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
}

// item is one unit of session work, produced by the reader and
// consumed by the runner. A batch carries either a row-wise slice (v2)
// or columnar scratch (v3), never both.
type item struct {
	kind  itemKind
	batch []mem.Access   // itemBatch, v2 framing
	cols  *trace.Columns // itemBatch, v3 framing
	seq   uint64         // itemBatch: the batch's sequence number
	every int            // itemWatch: the push cadence (0 cancels)
	err   error          // itemFail: the protocol error to report
}

// batchBufPool recirculates decoded-batch buffers across sessions: a
// session's freeBufs ring seeds from here and drains back at teardown,
// so buffer capacity (grown to the stream's batch size) survives
// session churn instead of being reallocated per session. Within a
// session the buffers travel the freeBufs ring and never touch the
// pool, so the header box allocated on put is a per-session cost, not a
// per-batch one.
var batchBufPool sync.Pool // stores *[]mem.Access

// getBatchBuf returns an empty batch buffer with whatever capacity it
// grew to in an earlier session, or nil when the pool is empty (the
// decode below grows it).
func getBatchBuf() []mem.Access {
	if bp, _ := batchBufPool.Get().(*[]mem.Access); bp != nil {
		return (*bp)[:0]
	}
	return nil
}

// putBatchBuf returns a batch buffer to the pool.
func putBatchBuf(buf []mem.Access) {
	if cap(buf) == 0 {
		return
	}
	bp := new([]mem.Access)
	*bp = buf[:0]
	batchBufPool.Put(bp)
}

// readLoop decodes frames into the session queue. It is the only
// sender on queue and closes it when the session's inbound side ends —
// after Finish, on protocol error (itemFail carries it), or when the
// connection dies (sess.dead is set so the executor discards
// leftovers). Every enqueue — and the close — notifies the executor, so
// an idle session is rescheduled the moment work exists. Each frame
// gets a fresh read deadline; a client silent for longer loses the
// connection and resumes from the disconnect checkpoint.
//
// The loop is allocation-free at steady state: frame payloads come from
// the wire package's pooled buffers and go back the moment decoding
// ends, and decode targets are recirculated batch buffers the executor
// returns through freeBufs after execution.
func (s *Server) readLoop(sess *session, br *bufio.Reader) {
	queue, freeBufs, freeCols := sess.queue, sess.freeBufs, sess.freeCols
	defer func() {
		close(queue)
		s.exec.notify(sess)
	}()
	enqueue := func(it item) bool {
		select {
		case queue <- it:
			s.exec.notify(sess)
			return true
		case <-sess.done:
			return false
		}
	}
	for {
		s.armRead(sess.conn)
		t, payload, err := wire.ReadFramePooled(br)
		if err != nil {
			// io.EOF without Finish, a mid-frame cut, or a frame that
			// failed its checksum: the stream is unusable. Nothing to
			// reply to; the client reconnects and resumes.
			sess.dead.Store(true)
			return
		}
		s.metrics.bytesIn.Add(uint64(5 + len(payload)))
		switch t {
		case wire.FrameBatch:
			var scratch []mem.Access
			select {
			case scratch = <-freeBufs:
			default: // ring empty: seed from the cross-session pool
				scratch = getBatchBuf()
			}
			s.metrics.batchBytes.Add(uint64(len(payload)))
			batch, seq, err := wire.DecodeBatchInto(scratch[:0], payload)
			wire.PutPayload(payload)
			if err != nil {
				enqueue(item{kind: itemFail, err: fmt.Errorf("corrupt batch: %w", err)})
				return
			}
			if len(batch) > s.cfg.MaxBatch {
				enqueue(item{kind: itemFail, err: fmt.Errorf("batch of %d accesses exceeds max %d", len(batch), s.cfg.MaxBatch)})
				return
			}
			s.metrics.noteQueueDepth(len(queue) + 1)
			s.metrics.pipelineDepth.Add(1)
			if !enqueue(item{kind: itemBatch, batch: batch, seq: seq}) {
				s.metrics.pipelineDepth.Add(-1)
				return
			}
		case wire.FrameBatchV3:
			if sess.wire < wire.WireV3 {
				wire.PutPayload(payload)
				enqueue(item{kind: itemFail, err: fmt.Errorf("batch-v3 frame on a wire v%d session", sess.wire)})
				return
			}
			var cols *trace.Columns
			select {
			case cols = <-freeCols:
			default: // ring empty: seed from the cross-session pool
				cols = wire.GetColumns()
			}
			cols.Reset()
			s.metrics.batchBytes.Add(uint64(len(payload)))
			seq, err := wire.DecodeColumnsInto(cols, payload)
			wire.PutPayload(payload)
			if err != nil {
				wire.PutColumns(cols)
				enqueue(item{kind: itemFail, err: fmt.Errorf("corrupt batch: %w", err)})
				return
			}
			if cols.Len() > s.cfg.MaxBatch {
				wire.PutColumns(cols)
				enqueue(item{kind: itemFail, err: fmt.Errorf("batch of %d accesses exceeds max %d", cols.Len(), s.cfg.MaxBatch)})
				return
			}
			s.metrics.noteQueueDepth(len(queue) + 1)
			s.metrics.pipelineDepth.Add(1)
			if !enqueue(item{kind: itemBatch, cols: cols, seq: seq}) {
				s.metrics.pipelineDepth.Add(-1)
				wire.PutColumns(cols)
				return
			}
		case wire.FrameSync:
			wire.PutPayload(payload)
			if !enqueue(item{kind: itemSync}) {
				return
			}
		case wire.FrameSnapshot:
			wire.PutPayload(payload)
			if !enqueue(item{kind: itemSnapshot}) {
				return
			}
		case wire.FrameWatch:
			var req wire.WatchRequest
			err := unmarshalStrict(payload, &req)
			wire.PutPayload(payload)
			if err != nil {
				enqueue(item{kind: itemFail, err: fmt.Errorf("corrupt watch request: %w", err)})
				return
			}
			if req.EveryBatches < 0 {
				enqueue(item{kind: itemFail, err: fmt.Errorf("negative watch cadence %d", req.EveryBatches)})
				return
			}
			if !enqueue(item{kind: itemWatch, every: req.EveryBatches}) {
				return
			}
		case wire.FrameFinish:
			wire.PutPayload(payload)
			enqueue(item{kind: itemFinish})
			return
		default:
			wire.PutPayload(payload)
			enqueue(item{kind: itemFail, err: fmt.Errorf("unexpected %s frame", t)})
			return
		}
	}
}

// errorLinger bounds how long a failed session keeps reading after the
// error frame went out, so our close doesn't become a TCP reset that
// discards the frame before the client reads it.
const errorLinger = 2 * time.Second

// stepStatus is a sessionStep verdict, telling the executor what to do
// with the session next.
type stepStatus int

const (
	stepYield stepStatus = iota // queue empty at poll time; reschedule on the next notify
	stepMore                    // quantum exhausted with work still pending
	stepDone                    // terminal: finished, failed, disconnected, or migrated
)

// stepQuantum bounds the queue items one scheduling step may process
// before the session rotates back through the runnable set, so one
// firehose session cannot pin an executor worker while siblings wait.
const stepQuantum = 16

// sessionStep runs one scheduling quantum of a session on the executor
// worker that owns it for the duration of the call: migration orders
// first (they land at batch boundaries, which is exactly between
// items), then up to stepQuantum queue items. Replayed duplicates are
// discarded by sequence number, snapshots and syncs answered inline,
// and the final result emitted on Finish. The owning worker is the only
// writer on sess.bw, and every reply write runs under the configured
// write deadline.
func (s *Server) sessionStep(sess *session) stepStatus {
	for i := 0; i < stepQuantum; i++ {
		select {
		case ord := <-sess.migrate:
			// A handed-off session is terminal here; one that every
			// target refused keeps running.
			if s.migrateSession(sess, sess.bw, ord) {
				return stepDone
			}
		default:
		}
		select {
		case it, ok := <-sess.queue:
			if !ok {
				// Queue closed without Finish: the connection dropped or
				// the client abandoned the session. handleConn takes the
				// disconnect checkpoint once done is signaled.
				if n := sess.accesses.Load(); n > 0 {
					s.cfg.Logf("rdxd: session %d disconnected after %d accesses", sess.id, n)
				}
				return stepDone
			}
			if s.processItem(sess, it) {
				return stepDone
			}
		default:
			return stepYield
		}
	}
	return stepMore
}

// processItem executes one queue item; true means the session reached
// a terminal state and must not be stepped again.
func (s *Server) processItem(sess *session, it item) (done bool) {
	bw := sess.bw
	fail := func(err error) {
		s.armWrite(sess.conn)
		wire.WriteFrame(bw, wire.FrameError, []byte(err.Error()))
		bw.Flush()
		// Arm the linger window now but don't sit in it: the worker
		// moves on, and handleConn absorbs the linger (sess.failed)
		// before closing the connection.
		sess.conn.SetReadDeadline(time.Now().Add(errorLinger))
		sess.failed = true
	}
	// recycle returns a consumed batch's scratch (row buffer or columns)
	// to the reader's ring. The rings are sized so this never blocks; a
	// buffer they can't take (the reader drew extras while a ring was
	// empty) goes back to the cross-session pool.
	recycle := func(it item) {
		if it.cols != nil {
			select {
			case sess.freeCols <- it.cols:
			default:
				wire.PutColumns(it.cols)
			}
			return
		}
		select {
		case sess.freeBufs <- it.batch:
		default:
			putBatchBuf(it.batch)
		}
	}
	if it.kind == itemBatch {
		s.metrics.pipelineDepth.Add(-1)
	}
	if sess.dead.Load() && it.kind == itemBatch {
		// The client is gone; executing its leftovers would be
		// work nobody reads.
		s.metrics.droppedBatches.Add(1)
		recycle(it)
		return false
	}
	switch it.kind {
	case itemBatch:
		if it.seq <= sess.lastApplied {
			// Already executed before a reconnect; the resume
			// replay is discarded, so re-delivery is idempotent.
			s.metrics.replayedBatches.Add(1)
			recycle(it)
			return false
		}
		if it.seq != sess.lastApplied+1 {
			fail(fmt.Errorf("batch sequence gap: got %d, want %d", it.seq, sess.lastApplied+1))
			return true
		}
		if sess.completed {
			fail(fmt.Errorf("session already finished"))
			return true
		}
		var n int
		if it.cols != nil {
			n = it.cols.Len()
			sess.machine.ExecuteColumns(it.cols)
		} else {
			n = len(it.batch)
			sess.machine.Execute(it.batch)
		}
		if s.cfg.StepDelay > 0 {
			// The sleep deliberately holds the worker: StepDelay models a
			// slow engine, and a slot-holding slow engine is what the
			// backpressure and throttled-scaling tests need.
			time.Sleep(s.cfg.StepDelay)
		}
		recycle(it)
		sess.lastApplied = it.seq
		sess.sinceCkpt++
		sess.accesses.Store(sess.machine.Account().Accesses)
		sess.stateBytes.Store(sess.prof.StateBytes())
		s.metrics.batchesTotal.Add(1)
		s.metrics.accessesTotal.Add(uint64(n))
		if sess.watchEvery > 0 && sess.lastApplied%uint64(sess.watchEvery) == 0 {
			// A watch boundary: push the snapshot before anything else
			// can happen to the session, so the push stream is exactly
			// the poll stream a client snapshotting at every boundary
			// would have seen.
			if s.pushSnapshot(sess) {
				return true
			}
		}
		if s.cfg.CheckpointEvery > 0 && sess.sinceCkpt >= s.cfg.CheckpointEvery {
			// Capture now, persist concurrently: execution of the
			// next batch overlaps the checkpoint's disk write.
			s.checkpointSessionAsync(sess)
		}
	case itemSync:
		// A sync acknowledgment promises durability: the checkpoint
		// must land before the ack goes out, or the session fails.
		if !sess.completed {
			if err := s.checkpointSession(sess); err != nil {
				fail(fmt.Errorf("checkpoint failed: %v", err))
				return true
			}
		}
		var ack [8]byte
		binary.BigEndian.PutUint64(ack[:], sess.lastApplied)
		s.armWrite(sess.conn)
		if err := wire.WriteFrame(bw, wire.FrameAck, ack[:]); err != nil {
			return true
		}
		if err := bw.Flush(); err != nil {
			return true
		}
	case itemWatch:
		if sess.completed {
			fail(fmt.Errorf("session already finished"))
			return true
		}
		sess.watchEvery = it.every
		if it.every > 0 {
			s.metrics.watchSubscriptions.Add(1)
			if sess.winCol == nil {
				// The collector survives cadence changes and reconnect
				// re-subscriptions: windows keep their indices and the
				// drift history stays continuous.
				sess.winCol = window.NewCollector(
					sess.prof.Config().Granularity.BlockSize(), 0, window.DriftOptions{})
			}
		}
		s.armWrite(sess.conn)
		if err := wire.WriteFrame(bw, wire.FrameWatchOK, nil); err != nil {
			return true
		}
		if err := bw.Flush(); err != nil {
			return true
		}
	case itemSnapshot:
		if sess.completed {
			fail(fmt.Errorf("session already finished"))
			return true
		}
		snap := sess.prof.Snapshot()
		s.metrics.snapshotsTotal.Add(1)
		s.armWrite(sess.conn)
		if err := writeJSONFrame(bw, wire.FrameSnapshotResult, wire.FromCore(snap, false)); err != nil {
			return true
		}
	case itemFinish:
		if sess.completed {
			// A resumed finished session: serve the retained result
			// again; the original reply was lost in flight.
			s.armWrite(sess.conn)
			wire.WriteFrame(bw, wire.FrameResult, sess.finalResult)
			bw.Flush()
			return true
		}
		sess.machine.Finish()
		res := sess.prof.Result()
		payload := mustJSON(wire.FromCore(res, true))
		sess.completed = true
		sess.finalResult = payload
		// Retain the result before replying: if the reply is lost,
		// a resume fetches it again instead of losing the run.
		if err := s.saveFinalDurable(sess.token, sess.lastApplied, payload); err != nil {
			s.cfg.Logf("rdxd: session %d: retaining final result: %v", sess.id, err)
		}
		s.armWrite(sess.conn)
		wire.WriteFrame(bw, wire.FrameResult, payload)
		bw.Flush()
		return true
	case itemFail:
		fail(it.err)
		return true
	}
	return false
}

// pushSnapshot emits one boundary snapshot to a watched session's
// client and folds it into the server-side window accounting: the
// drift counter, the per-session working-set gauge, and the
// "working set grew past L3" alert. True means the write failed and
// the session is done, matching the snapshot reply path — the client
// reconnects, resumes, and re-subscribes.
func (s *Server) pushSnapshot(sess *session) (done bool) {
	snap := sess.prof.Snapshot()
	if sess.winCol != nil {
		w := sess.winCol.Observe(snap.Accesses, snap.Samples, snap.ReuseDistance, snap.ReuseTime)
		sess.windowWS.Store(w.WorkingSetBytes)
		if w.Score != nil && w.Score.Drift {
			s.metrics.driftEvents.Add(1)
		}
		if s.cfg.AlertWorkingSetBytes > 0 && w.WorkingSetBytes > uint64(s.cfg.AlertWorkingSetBytes) {
			if !sess.wsAlert.Swap(true) { // rising edge: count and log once per excursion
				s.metrics.wsAlerts.Add(1)
				s.cfg.Logf("rdxd: session %d: working set %d bytes grew past the %d-byte (L3) threshold",
					sess.id, w.WorkingSetBytes, s.cfg.AlertWorkingSetBytes)
			}
		} else {
			sess.wsAlert.Store(false)
		}
	}
	s.metrics.snapshotPushes.Add(1)
	s.armWrite(sess.conn)
	return writeJSONFrame(sess.bw, wire.FrameSnapshotPush,
		wire.Push{Seq: sess.lastApplied, Result: wire.FromCore(snap, false)}) != nil
}

func writeJSONFrame(bw *bufio.Writer, t wire.FrameType, v any) error {
	if err := wire.WriteFrame(bw, t, mustJSON(v)); err != nil {
		return err
	}
	return bw.Flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(mustJSON(s.MetricsSnapshot()))
}
