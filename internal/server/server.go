// Package server implements rdxd, the streaming remote-profiling
// service: it accepts wire-protocol sessions over TCP, feeds each
// session's access batches through the batched cpu.Machine engine, and
// answers live snapshot requests from core.Profiler.Snapshot.
//
// # Concurrency model
//
// Each connection owns two goroutines: a reader that decodes frames
// into a bounded per-session queue, and a runner that drains the queue,
// executes batches, and writes every reply frame (single-writer, so
// replies never interleave). Engine execution across all sessions is
// bounded by a semaphore of Config.Workers slots; sessions beyond that
// wait their turn. Backpressure is emergent: a full session queue
// blocks the reader, the kernel's TCP window fills, and the client's
// SendBatch blocks — per-session server memory stays bounded by
// QueueDepth×MaxBatch regardless of how fast the client produces.
//
// # Drain semantics
//
// Shutdown stops accepting connections and waits for in-flight
// sessions to Finish naturally. Sessions still open when the context
// expires are force-closed. The admin /healthz endpoint reports 503
// from the moment draining starts, so load balancers stop routing new
// sessions before the listener closes.
package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/mem"
	"repro/internal/wire"
)

// Config configures an rdxd server. The zero value is usable for
// tests: it listens on an ephemeral loopback port with defaults.
type Config struct {
	// Addr is the profiling listener address (default "127.0.0.1:0").
	Addr string
	// AdminAddr, when non-empty, serves /healthz and /metrics on a
	// separate HTTP listener.
	AdminAddr string
	// Workers bounds concurrent engine execution across all sessions
	// (default GOMAXPROCS via runtime behavior of 0 → numCPU is not
	// assumed; 0 means 4).
	Workers int
	// QueueDepth is the per-session bounded batch queue (default 8).
	// Together with MaxBatch it caps per-session buffered memory.
	QueueDepth int
	// MaxBatch is the largest accepted batch, in accesses (default
	// 1<<20). Larger batches are a protocol error.
	MaxBatch int
	// MaxSessions bounds concurrent sessions (default 64); further
	// opens are refused with a wire error.
	MaxSessions int
	// Costs is the CPU cost model sessions run under (default
	// cpumodel.Default()).
	Costs *cpumodel.Costs
	// StepDelay, when set, sleeps after executing each batch while
	// still holding the worker slot. Test hook: it makes the engine
	// slow so backpressure is observable.
	StepDelay time.Duration
	// Logf receives server diagnostics (default log.Printf; use a
	// no-op in tests).
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 1 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.Costs == nil {
		d := cpumodel.Default()
		c.Costs = &d
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// Server is an rdxd instance.
type Server struct {
	cfg     Config
	ln      net.Listener
	adminLn net.Listener
	admin   *http.Server
	sem     chan struct{} // worker slots

	mu       sync.Mutex
	sessions map[uint64]*session
	nextID   uint64
	draining bool
	closed   bool

	wg       sync.WaitGroup // accept loop + one per connection
	metrics  metrics
	stopRate chan struct{}
}

// New creates a server and binds its listeners; connections are not
// accepted until Start.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: listening on %s: %w", cfg.Addr, err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		sem:      make(chan struct{}, cfg.Workers),
		sessions: make(map[uint64]*session),
		stopRate: make(chan struct{}),
	}
	if cfg.AdminAddr != "" {
		adminLn, err := net.Listen("tcp", cfg.AdminAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("server: admin listener on %s: %w", cfg.AdminAddr, err)
		}
		s.adminLn = adminLn
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/metrics", s.handleMetrics)
		s.admin = &http.Server{Handler: mux}
	}
	return s, nil
}

// Addr is the profiling listener's bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// AdminAddr is the admin listener's bound address, or "" if disabled.
func (s *Server) AdminAddr() string {
	if s.adminLn == nil {
		return ""
	}
	return s.adminLn.Addr().String()
}

// Start launches the accept loop (and admin server, if configured) in
// the background and returns immediately.
func (s *Server) Start() {
	s.wg.Add(1)
	go s.acceptLoop()
	go s.metrics.rateLoop(s.stopRate)
	if s.admin != nil {
		go func() {
			if err := s.admin.Serve(s.adminLn); err != nil && err != http.ErrServerClosed {
				s.cfg.Logf("rdxd: admin server: %v", err)
			}
		}()
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: shutting down
		}
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// Shutdown drains the server: it stops accepting connections, waits
// for in-flight sessions to finish, and force-closes any still open
// when ctx expires. It is the SIGTERM path.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Sessions that did not finish in time lose their connection;
		// their state is freed on the way out.
		s.mu.Lock()
		n := len(s.sessions)
		for _, sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		err = fmt.Errorf("server: drain deadline passed with %d sessions open", n)
		<-done
	}
	s.finishClose()
	return err
}

// Close force-closes everything without draining.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	s.wg.Wait()
	s.finishClose()
	return nil
}

func (s *Server) finishClose() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		return
	}
	close(s.stopRate)
	if s.admin != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.admin.Shutdown(ctx)
	}
}

// register admits a new session, or explains why it can't.
func (s *Server) register(sess *session) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, fmt.Errorf("server draining")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return 0, fmt.Errorf("session limit reached (%d)", s.cfg.MaxSessions)
	}
	s.nextID++
	s.sessions[s.nextID] = sess
	s.metrics.sessionsTotal.Add(1)
	s.metrics.sessionsActive.Add(1)
	return s.nextID, nil
}

func (s *Server) unregister(id uint64) {
	s.mu.Lock()
	_, ok := s.sessions[id]
	delete(s.sessions, id)
	s.mu.Unlock()
	if ok {
		s.metrics.sessionsActive.Add(-1)
	}
}

// handleConn owns one connection: the open handshake inline, then the
// reader/runner goroutine pair.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()

	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 64<<10)
	reject := func(err error) {
		wire.WriteFrame(bw, wire.FrameError, []byte(err.Error()))
		bw.Flush()
	}

	t, payload, err := wire.ReadFrame(br)
	if err != nil {
		return // client vanished before speaking
	}
	s.metrics.bytesIn.Add(uint64(5 + len(payload)))
	if t != wire.FrameOpen {
		reject(fmt.Errorf("expected open frame, got %s", t))
		return
	}
	var req wire.OpenRequest
	if err := unmarshalStrict(payload, &req); err != nil {
		reject(fmt.Errorf("bad open request: %v", err))
		return
	}
	prof, err := core.NewProfiler(req.Config)
	if err != nil {
		reject(err)
		return
	}

	sess := &session{
		conn:    conn,
		prof:    prof,
		machine: prof.NewMachine(*s.cfg.Costs),
	}
	id, err := s.register(sess)
	if err != nil {
		reject(err)
		return
	}
	sess.id = id
	defer s.unregister(id)

	if err := writeJSONFrame(bw, wire.FrameOpenOK, wire.OpenReply{
		SessionID:  id,
		QueueDepth: s.cfg.QueueDepth,
		MaxBatch:   s.cfg.MaxBatch,
	}); err != nil {
		return
	}

	queue := make(chan item, s.cfg.QueueDepth)
	runnerDone := make(chan struct{})
	go s.readLoop(sess, br, queue, runnerDone)
	s.runLoop(sess, bw, queue)
	// Unblock a reader stuck enqueueing if the runner bailed early
	// (reply write failed); otherwise it would hold its batch forever.
	close(runnerDone)
}

// item is one unit of session work, produced by the reader and
// consumed by the runner.
type item struct {
	kind  itemKind
	batch []mem.Access
	err   error // itemFail: the protocol error to report
}

// readLoop decodes frames into the session queue. It is the only
// sender on queue and closes it when the session's inbound side ends —
// after Finish, on protocol error (itemFail carries it), or when the
// connection dies (sess.dead is set so the runner discards leftovers).
func (s *Server) readLoop(sess *session, br *bufio.Reader, queue chan<- item, runnerDone <-chan struct{}) {
	defer close(queue)
	enqueue := func(it item) bool {
		select {
		case queue <- it:
			return true
		case <-runnerDone:
			return false
		}
	}
	for {
		t, payload, err := wire.ReadFrame(br)
		if err != nil {
			// io.EOF without Finish, or a mid-frame cut: the client is
			// gone. Nothing to reply to.
			sess.dead.Store(true)
			return
		}
		s.metrics.bytesIn.Add(uint64(5 + len(payload)))
		switch t {
		case wire.FrameBatch:
			batch, err := wire.DecodeBatch(nil, payload)
			if err != nil {
				enqueue(item{kind: itemFail, err: fmt.Errorf("corrupt batch: %w", err)})
				return
			}
			if len(batch) > s.cfg.MaxBatch {
				enqueue(item{kind: itemFail, err: fmt.Errorf("batch of %d accesses exceeds max %d", len(batch), s.cfg.MaxBatch)})
				return
			}
			s.metrics.noteQueueDepth(len(queue) + 1)
			if !enqueue(item{kind: itemBatch, batch: batch}) {
				return
			}
		case wire.FrameSnapshot:
			if !enqueue(item{kind: itemSnapshot}) {
				return
			}
		case wire.FrameFinish:
			enqueue(item{kind: itemFinish})
			return
		default:
			enqueue(item{kind: itemFail, err: fmt.Errorf("unexpected %s frame", t)})
			return
		}
	}
}

// runLoop drains the session queue: executes batches under the worker
// semaphore, answers snapshots, and emits the final result. It is the
// only writer on bw after the open handshake.
func (s *Server) runLoop(sess *session, bw *bufio.Writer, queue <-chan item) {
	for it := range queue {
		if sess.dead.Load() && it.kind == itemBatch {
			// The client is gone; executing its leftovers would be
			// work nobody reads.
			s.metrics.droppedBatches.Add(1)
			continue
		}
		switch it.kind {
		case itemBatch:
			s.sem <- struct{}{}
			sess.machine.Execute(it.batch)
			if s.cfg.StepDelay > 0 {
				time.Sleep(s.cfg.StepDelay)
			}
			<-s.sem
			sess.accesses.Store(sess.machine.Account().Accesses)
			sess.stateBytes.Store(sess.prof.StateBytes())
			s.metrics.batchesTotal.Add(1)
			s.metrics.accessesTotal.Add(uint64(len(it.batch)))
		case itemSnapshot:
			s.sem <- struct{}{}
			snap := sess.prof.Snapshot()
			<-s.sem
			s.metrics.snapshotsTotal.Add(1)
			if err := writeJSONFrame(bw, wire.FrameSnapshotResult, wire.FromCore(snap, false)); err != nil {
				return
			}
		case itemFinish:
			s.sem <- struct{}{}
			sess.machine.Finish()
			res := sess.prof.Result()
			<-s.sem
			writeJSONFrame(bw, wire.FrameResult, wire.FromCore(res, true))
			return
		case itemFail:
			wire.WriteFrame(bw, wire.FrameError, []byte(it.err.Error()))
			bw.Flush()
			// Linger reading until the peer closes (bounded), so our
			// close doesn't become a TCP reset that discards the error
			// frame before the client reads it.
			sess.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			io.Copy(io.Discard, sess.conn)
			return
		}
	}
	// Queue closed without Finish: abandoned session. Its profiler and
	// machine go out of scope here, freeing the per-session state.
	if n := sess.accesses.Load(); n > 0 {
		s.cfg.Logf("rdxd: session %d abandoned after %d accesses", sess.id, n)
	}
}

func writeJSONFrame(bw *bufio.Writer, t wire.FrameType, v any) error {
	if err := wire.WriteFrame(bw, t, mustJSON(v)); err != nil {
		return err
	}
	return bw.Flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	io.WriteString(w, "ok\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(mustJSON(s.MetricsSnapshot()))
}
