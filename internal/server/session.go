package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/window"
)

// session is one remote profiling run: a dedicated Profiler+Machine
// pair plus the counters the admin endpoint reports. Execution state is
// touched only by the executor worker currently stepping the session
// (at most one at a time — see executor.go); the atomics exist so
// /metrics can observe a live session without pausing it.
type session struct {
	id      uint64
	conn    net.Conn
	prof    *core.Profiler
	machine *cpu.Machine
	wire    int // negotiated wire version for this connection

	// Executor plumbing, created by handleConn after the handshake.
	// queue carries decoded work from the reader; freeBufs/freeCols
	// recirculate batch scratch back to it; bw is the session's reply
	// writer (single-writer: only the owning worker touches it after the
	// open reply); done closes when the session's last step returns.
	queue    chan item
	freeBufs chan []mem.Access
	freeCols chan *trace.Columns
	bw       *bufio.Writer
	done     chan struct{}

	// sched is the executor's per-session scheduling state (sessIdle …
	// sessDone); admitted flips once the plumbing above exists, gating
	// notify so a migration order racing the handshake cannot schedule a
	// half-built session.
	sched    atomic.Int32
	admitted atomic.Bool

	// Fault-tolerance state, owned by the stepping worker.
	token       string // resume token handed to the client at open
	lastApplied uint64 // highest batch sequence number executed
	sinceCkpt   int    // batches executed since the last checkpoint
	completed   bool   // Finish ran; finalResult holds the reply
	finalResult []byte // retained final-result JSON (completed sessions)
	failed      bool   // an error frame went out; handleConn lingers before close

	// migrate delivers migration orders to the session (capacity 1; a
	// duplicate order while one is pending is dropped). The owning
	// worker acts on it at the next batch boundary — or at the step a
	// notify triggers when the session is idle.
	migrate  chan migrateOrder
	migrated bool // session handed off; skip the disconnect checkpoint

	dead       atomic.Bool   // reader saw the connection die
	accesses   atomic.Uint64 // executed so far
	stateBytes atomic.Uint64 // profiler state after the last batch

	// Continuous-profiling state, owned by the stepping worker except
	// for the atomics /metrics reads. watchEvery > 0 subscribes the
	// session: a FrameSnapshotPush goes out every watchEvery executed
	// batches, and each pushed snapshot is also folded into winCol, the
	// server-side window collector behind the drift counter and the
	// working-set alert. The subscription survives reconnects only
	// because resuming clients re-send FrameWatch (it is connection
	// state on the client, session state here once set).
	watchEvery int
	winCol     *window.Collector
	windowWS   atomic.Uint64 // latest window's working-set bytes
	wsAlert    atomic.Bool   // working set exceeded Config.AlertWorkingSetBytes
}

// migrateOrder asks a session's runner to hand the session to one of
// the targets, tried in order.
type migrateOrder struct {
	targets []MigrateTarget
}

type itemKind int

const (
	itemBatch itemKind = iota
	itemSnapshot
	itemSync
	itemFinish
	itemFail
	itemWatch
)

// mustJSON marshals a value the server constructed itself; failure is a
// programmer error.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: marshaling %T: %v", v, err))
	}
	return data
}

// unmarshalStrict decodes JSON, rejecting unknown fields so client and
// server protocol versions can't silently disagree.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
