package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cpu"
)

// session is one remote profiling run: a dedicated Profiler+Machine
// pair plus the counters the admin endpoint reports. Execution state is
// touched only by the session's runner goroutine; the atomics exist so
// /metrics can observe a live session without pausing it.
type session struct {
	id      uint64
	conn    net.Conn
	prof    *core.Profiler
	machine *cpu.Machine
	wire    int // negotiated wire version for this connection

	// Fault-tolerance state, owned by the runner goroutine.
	token       string // resume token handed to the client at open
	lastApplied uint64 // highest batch sequence number executed
	sinceCkpt   int    // batches executed since the last checkpoint
	completed   bool   // Finish ran; finalResult holds the reply
	finalResult []byte // retained final-result JSON (completed sessions)

	// migrate delivers migration orders to the runner (capacity 1; a
	// duplicate order while one is pending is dropped). The runner acts
	// on it at the next batch boundary — or immediately when idle.
	migrate  chan migrateOrder
	migrated bool // runner handed the session off; skip the disconnect checkpoint

	dead       atomic.Bool   // reader saw the connection die
	accesses   atomic.Uint64 // executed so far
	stateBytes atomic.Uint64 // profiler state after the last batch
}

// migrateOrder asks a session's runner to hand the session to one of
// the targets, tried in order.
type migrateOrder struct {
	targets []MigrateTarget
}

type itemKind int

const (
	itemBatch itemKind = iota
	itemSnapshot
	itemSync
	itemFinish
	itemFail
)

// mustJSON marshals a value the server constructed itself; failure is a
// programmer error.
func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: marshaling %T: %v", v, err))
	}
	return data
}

// unmarshalStrict decodes JSON, rejecting unknown fields so client and
// server protocol versions can't silently disagree.
func unmarshalStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
