package server_test

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestWireVersionMatrix runs the same profile across every pairing of
// client and server wire-version ceilings. Whatever framing the
// handshake lands on, the result must be bit-identical to the local
// profile, and the negotiated version must be the minimum of the two
// ceilings (old peers are emulated by capping MaxWireVersion, since the
// v2 code path is exactly what an old binary would run).
func TestWireVersionMatrix(t *testing.T) {
	cfg := testConfig(300)
	accs, err := trace.Collect(trace.ZipfAccess(21, 0, 8192, 1.0, 150000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	cases := []struct {
		name                 string
		serverMax, clientMax int
		negotiated           int
	}{
		{"v3-client-to-v2-server", wire.WireV2, 0, wire.WireV2},
		{"v2-client-to-v3-server", 0, wire.WireV2, wire.WireV2},
		{"v3-client-to-v3-server", 0, 0, wire.WireV3},
		{"v2-client-to-v2-server", wire.WireV2, wire.WireV2, wire.WireV2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := start(t, server.Config{MaxWireVersion: tc.serverMax})
			c := dial(t, s)
			if tc.clientMax != 0 {
				c.SetMaxWireVersion(tc.clientMax)
			}
			got, err := c.Profile(trace.FromSlice(accs), cfg, wire.ProfileOptions{BatchSize: 2048})
			if err != nil {
				t.Fatal(err)
			}
			if v := c.WireVersion(); v != tc.negotiated {
				t.Errorf("negotiated wire v%d, want v%d", v, tc.negotiated)
			}
			sameWireProfile(t, tc.name+" remote vs local", got, want)

			// Whichever framing ran, the server must have accounted its
			// payload bytes; under v3 the strided-and-clustered Zipf stream
			// must actually compress.
			m := s.MetricsSnapshot()
			if m.BytesPerAccess <= 0 {
				t.Errorf("bytes_per_access not accounted: %+v", m)
			}
			if tc.negotiated >= wire.WireV3 && m.CompressionRatio < 2 {
				t.Errorf("v3 compression ratio %.2f, want >= 2", m.CompressionRatio)
			}
		})
	}
}

// TestReconnectAcrossWireVersions is the cross-version chaos test: two
// daemons share a checkpoint directory but disagree on the maximum wire
// version (one speaks only v2, one prefers v3), and every connection
// goes through a fault injector that drops and corrupts mid-stream. The
// dial hook alternates between the daemons, so each reconnect
// renegotiates framing and each resumed session keeps streaming in
// whatever version the new peer allows. The profile must come out
// bit-identical to the local run regardless.
func TestReconnectAcrossWireVersions(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(400)
	accs, err := trace.Collect(trace.ZipfAccess(17, 0, 8192, 1.0, 250000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	mk := func(maxWire int) *server.Server {
		return start(t, server.Config{
			CheckpointDir:   dir,
			CheckpointEvery: 4,
			MaxWireVersion:  maxWire,
			RetryAfterHint:  5 * time.Millisecond,
		})
	}
	sV2 := mk(wire.WireV2)
	sV3 := mk(wire.WireV3)
	addrs := []string{sV2.Addr(), sV3.Addr()}

	faults := faultnet.NewDialer(faultnet.Options{
		Seed:          41,
		DropAfterMin:  60_000,
		DropAfterMax:  150_000,
		CorruptProb:   0.01,
		PartialWrites: true,
	}, nil)
	var conns atomic.Int64
	policy := testPolicy(9)
	policy.Dial = func(ctx context.Context, _ string) (net.Conn, error) {
		n := conns.Add(1)
		return faults.DialContext(ctx, addrs[int(n)%len(addrs)])
	}

	rc := wire.NewReconnectingClient(sV2.Addr(), cfg, policy)
	defer rc.Close()
	got, err := rc.Profile(context.Background(), trace.FromSlice(accs), wire.ProfileOptions{BatchSize: 2048})
	if err != nil {
		t.Fatalf("cross-version profile failed: %v (stats %+v)", err, rc.Stats())
	}
	sameWireProfile(t, "cross-version remote vs local", got, want)

	if st := rc.Stats(); st.Reconnects == 0 {
		t.Errorf("no reconnects despite injected drops (dialer made %d connections)", faults.Conns())
	}
	// Both daemons must have carried part of the stream: the session
	// really did cross wire versions mid-run, not just failed over
	// between same-version peers.
	m2, m3 := sV2.MetricsSnapshot(), sV3.MetricsSnapshot()
	if m2.BatchesTotal == 0 || m3.BatchesTotal == 0 {
		t.Errorf("stream did not cross versions: v2 server saw %d batches, v3 server saw %d",
			m2.BatchesTotal, m3.BatchesTotal)
	}
}
