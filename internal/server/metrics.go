package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// metrics holds the server-wide counters behind /metrics. Everything is
// an atomic so the hot paths (reader, runner) never take a lock for
// accounting.
type metrics struct {
	sessionsActive atomic.Int64
	sessionsTotal  atomic.Uint64
	accessesTotal  atomic.Uint64
	batchesTotal   atomic.Uint64
	droppedBatches atomic.Uint64
	snapshotsTotal atomic.Uint64
	bytesIn        atomic.Uint64
	batchBytes     atomic.Uint64 // batch-frame payload bytes (both framings)
	peakQueueDepth atomic.Int64
	pipelineDepth  atomic.Int64 // batches decoded but not yet executed

	// Fault-tolerance counters.
	resumedSessions  atomic.Uint64 // sessions reopened from a checkpoint
	resumeFailures   atomic.Uint64 // resume handshakes rejected
	replayedBatches  atomic.Uint64 // replayed duplicates discarded by seq
	shedRequests     atomic.Uint64 // opens answered with retry-after
	checkpointsTotal atomic.Uint64 // checkpoints taken
	checkpointBytes  atomic.Uint64 // cumulative checkpoint blob bytes
	whatifRequests   atomic.Uint64 // POST /whatif analysis queries

	// Executor counters: scheduling quanta run and how many of them a
	// worker took from a sibling's deque instead of its own.
	executorSteps  atomic.Uint64
	executorSteals atomic.Uint64

	// Control-plane counters.
	migrationsOrdered atomic.Uint64 // migration orders delivered to sessions
	handoffsOut       atomic.Uint64 // sessions handed off to another backend
	handoffsIn        atomic.Uint64 // sessions installed from another backend
	handoffFailures   atomic.Uint64 // handoff pushes a destination refused
	movedResumes      atomic.Uint64 // resume attempts answered with a redirect

	// Continuous-profiling counters.
	watchSubscriptions atomic.Uint64 // FrameWatch subscriptions accepted
	snapshotPushes     atomic.Uint64 // FrameSnapshotPush frames emitted
	driftEvents        atomic.Uint64 // windows the drift detector flagged
	wsAlerts           atomic.Uint64 // working-set-past-L3 alert onsets

	rateMu       sync.Mutex
	accessRate   float64 // accesses/sec over the last sample window
	lastAccesses uint64
	lastSample   time.Time
}

// noteQueueDepth records a high-water mark of a session queue at
// enqueue time.
func (m *metrics) noteQueueDepth(depth int) {
	for {
		cur := m.peakQueueDepth.Load()
		if int64(depth) <= cur || m.peakQueueDepth.CompareAndSwap(cur, int64(depth)) {
			return
		}
	}
}

// rateLoop samples accessesTotal once per second to derive
// accesses/sec, until stop closes.
func (m *metrics) rateLoop(stop <-chan struct{}) {
	m.rateMu.Lock()
	m.lastSample = time.Now()
	m.rateMu.Unlock()
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			total := m.accessesTotal.Load()
			m.rateMu.Lock()
			if dt := now.Sub(m.lastSample).Seconds(); dt > 0 {
				m.accessRate = float64(total-m.lastAccesses) / dt
			}
			m.lastAccesses = total
			m.lastSample = now
			m.rateMu.Unlock()
		}
	}
}

// SessionMetrics is the live state of one session as seen by /metrics.
type SessionMetrics struct {
	ID         uint64 `json:"id"`
	Accesses   uint64 `json:"accesses"`
	StateBytes uint64 `json:"state_bytes"`
	// WindowWSBytes is the working set of the session's latest closed
	// observation window (0 for unwatched sessions); WSAlert is true
	// while it sits above Config.AlertWorkingSetBytes.
	WindowWSBytes uint64 `json:"window_ws_bytes,omitempty"`
	WSAlert       bool   `json:"ws_alert,omitempty"`
}

// Metrics is the /metrics payload.
type Metrics struct {
	// Load is the routing gauge a pool dispatcher keys least-loaded
	// assignment on: active sessions plus batches decoded but not yet
	// executed — admitted work this backend has not finished. Unlike
	// sessions_active alone it rises while a session's queue backs up,
	// so a backend drowning in one heavy session stops looking idle.
	Load           int64   `json:"load"`
	SessionsActive int64   `json:"sessions_active"`
	SessionsTotal  uint64  `json:"sessions_total"`
	AccessesTotal  uint64  `json:"accesses_total"`
	AccessesPerSec float64 `json:"accesses_per_sec"`
	BatchesTotal   uint64  `json:"batches_total"`
	DroppedBatches uint64  `json:"dropped_batches"`
	SnapshotsTotal uint64  `json:"snapshots_total"`
	BytesIn        uint64  `json:"bytes_in"`
	// BatchBytes is the cumulative batch-frame payload bytes received
	// (both wire framings); BytesPerAccess = BatchBytes/AccessesTotal is
	// the measured wire cost of one access, and CompressionRatio relates
	// it to the 18-byte in-memory access record — the bandwidth
	// multiplier the columnar v3 encoding buys. Both are 0 until the
	// first batch arrives.
	BatchBytes       uint64  `json:"batch_bytes"`
	BytesPerAccess   float64 `json:"bytes_per_access"`
	CompressionRatio float64 `json:"compression_ratio"`
	PeakQueueDepth   int64   `json:"peak_queue_depth"`
	// PipelineQueueDepth is the live count of batches sitting between
	// the decode and execute stages across all sessions.
	PipelineQueueDepth int64 `json:"pipeline_queue_depth"`
	// PoolHitRate is the fraction of frame-payload buffer requests
	// served by the wire package's pool since process start (1.0 = no
	// ingest allocation; 0 until the first frame arrives).
	PoolHitRate float64          `json:"pool_hit_rate"`
	Draining    bool             `json:"draining"`
	Sessions    []SessionMetrics `json:"sessions"`

	ResumedSessions  uint64 `json:"resumed_sessions"`
	ResumeFailures   uint64 `json:"resume_failures"`
	ReplayedBatches  uint64 `json:"replayed_batches"`
	ShedRequests     uint64 `json:"shed_requests"`
	CheckpointsTotal uint64 `json:"checkpoints_total"`
	CheckpointBytes  uint64 `json:"checkpoint_bytes"`
	WhatIfRequests   uint64 `json:"whatif_requests"`

	// Executor gauges: the fixed worker count, total scheduling quanta
	// executed, and how many quanta were stolen from a sibling's deque —
	// steals > 0 under load is the work-stealing path proving out.
	ExecutorWorkers int    `json:"executor_workers"`
	ExecutorSteps   uint64 `json:"executor_steps"`
	ExecutorSteals  uint64 `json:"executor_steals"`

	// Control-plane counters: live migration traffic in and out.
	MigrationsOrdered uint64 `json:"migrations_ordered"`
	HandoffsOut       uint64 `json:"handoffs_out"`
	HandoffsIn        uint64 `json:"handoffs_in"`
	HandoffFailures   uint64 `json:"handoff_failures"`
	MovedResumes      uint64 `json:"moved_resumes"`

	// Continuous-profiling counters, and the currently-firing alerts —
	// one human-readable line per watched session whose latest window's
	// working set exceeds the configured (L3-sized) threshold.
	WatchSubscriptions uint64   `json:"watch_subscriptions"`
	SnapshotPushes     uint64   `json:"snapshot_pushes"`
	DriftEvents        uint64   `json:"drift_events"`
	WSAlertsTotal      uint64   `json:"ws_alerts_total"`
	Alerts             []string `json:"alerts,omitempty"`
}

// MetricsSnapshot assembles the current metrics, including the
// per-session gauges.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	sessions := make([]SessionMetrics, 0, len(s.sessions))
	var alerts []string
	for id, sess := range s.sessions {
		sm := SessionMetrics{
			ID:            id,
			Accesses:      sess.accesses.Load(),
			StateBytes:    sess.stateBytes.Load(),
			WindowWSBytes: sess.windowWS.Load(),
			WSAlert:       sess.wsAlert.Load(),
		}
		if sm.WSAlert {
			alerts = append(alerts, fmt.Sprintf(
				"session %d: working set %d bytes grew past L3 (%d bytes)",
				id, sm.WindowWSBytes, s.cfg.AlertWorkingSetBytes))
		}
		sessions = append(sessions, sm)
	}
	draining := s.draining
	s.mu.Unlock()
	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })
	sort.Strings(alerts)

	m := &s.metrics
	m.rateMu.Lock()
	rate := m.accessRate
	m.rateMu.Unlock()
	var hitRate float64
	if gets, misses := wire.PoolStats(); gets > 0 {
		hitRate = 1 - float64(misses)/float64(gets)
	}
	// rawAccessBytes is one access record's in-memory wire-free cost
	// (8-byte address + 8-byte PC + size + kind), the baseline the
	// compression ratio is measured against.
	const rawAccessBytes = 18
	var bytesPerAccess, compression float64
	if acc := m.accessesTotal.Load(); acc > 0 {
		bytesPerAccess = float64(m.batchBytes.Load()) / float64(acc)
		if bytesPerAccess > 0 {
			compression = rawAccessBytes / bytesPerAccess
		}
	}
	return Metrics{
		Load:               m.sessionsActive.Load() + m.pipelineDepth.Load(),
		SessionsActive:     m.sessionsActive.Load(),
		SessionsTotal:      m.sessionsTotal.Load(),
		AccessesTotal:      m.accessesTotal.Load(),
		AccessesPerSec:     rate,
		BatchesTotal:       m.batchesTotal.Load(),
		DroppedBatches:     m.droppedBatches.Load(),
		SnapshotsTotal:     m.snapshotsTotal.Load(),
		BytesIn:            m.bytesIn.Load(),
		BatchBytes:         m.batchBytes.Load(),
		BytesPerAccess:     bytesPerAccess,
		CompressionRatio:   compression,
		PeakQueueDepth:     m.peakQueueDepth.Load(),
		PipelineQueueDepth: m.pipelineDepth.Load(),
		PoolHitRate:        hitRate,
		Draining:           draining,
		Sessions:           sessions,

		ResumedSessions:  m.resumedSessions.Load(),
		ResumeFailures:   m.resumeFailures.Load(),
		ReplayedBatches:  m.replayedBatches.Load(),
		ShedRequests:     m.shedRequests.Load(),
		CheckpointsTotal: m.checkpointsTotal.Load(),
		CheckpointBytes:  m.checkpointBytes.Load(),
		WhatIfRequests:   m.whatifRequests.Load(),

		ExecutorWorkers: s.cfg.Workers,
		ExecutorSteps:   m.executorSteps.Load(),
		ExecutorSteals:  m.executorSteals.Load(),

		MigrationsOrdered: m.migrationsOrdered.Load(),
		HandoffsOut:       m.handoffsOut.Load(),
		HandoffsIn:        m.handoffsIn.Load(),
		HandoffFailures:   m.handoffFailures.Load(),
		MovedResumes:      m.movedResumes.Load(),

		WatchSubscriptions: m.watchSubscriptions.Load(),
		SnapshotPushes:     m.snapshotPushes.Load(),
		DriftEvents:        m.driftEvents.Load(),
		WSAlertsTotal:      m.wsAlerts.Load(),
		Alerts:             alerts,
	}
}
