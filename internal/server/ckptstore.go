package server

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ckptEntry is one retained session state: either a live checkpoint
// (blob, resumable mid-stream) or a finished session's final result
// (final, replayed if the result frame was lost in flight).
type ckptEntry struct {
	seq   uint64 // last batch sequence number covered
	blob  []byte // core.Profiler checkpoint; nil for finished sessions
	final []byte // retained final-result JSON; nil for live sessions
	stamp uint64 // LRU clock at last touch
}

// ckptStore retains session checkpoints for resume: an in-memory map
// with LRU eviction, optionally spilled to a directory so checkpoints
// survive a daemon restart. Disk entries carry a checksum envelope, so
// a torn write or bit rot surfaces as a descriptive resume error.
//
// Disk format ("RDXS", version 1, big-endian):
//
//	magic  [4]byte "RDXS"
//	version u8
//	kind    u8   0 = live checkpoint, 1 = final result
//	seq     u64
//	crc     u32  IEEE crc32 of the body
//	len     u32  body length
//	body    len bytes
type ckptStore struct {
	mu      sync.Mutex
	mem     map[string]*ckptEntry
	free    [][]byte // retired live-checkpoint blobs awaiting reuse
	clock   uint64
	maxMem  int
	dir     string // "" = memory only
	maxDisk int
	saves   int // save counter driving the periodic disk sweep
	logf    func(format string, args ...any)
}

// maxFreeBlobs bounds the retired-blob recycling list; beyond it,
// replaced checkpoint blobs go to the garbage collector.
const maxFreeBlobs = 32

var ckptDiskMagic = [4]byte{'R', 'D', 'X', 'S'}

const (
	ckptDiskVersion  = 1
	ckptKindLive     = 0
	ckptKindFinal    = 1
	ckptDiskOverhead = 4 + 1 + 1 + 8 + 4 + 4
	// ckptSweepEvery triggers the disk-retention sweep every that many
	// saves.
	ckptSweepEvery = 64
)

func newCkptStore(dir string, maxMem, maxDisk int, logf func(string, ...any)) *ckptStore {
	return &ckptStore{
		mem:     make(map[string]*ckptEntry),
		maxMem:  maxMem,
		dir:     dir,
		maxDisk: maxDisk,
		logf:    logf,
	}
}

// newSessionToken draws a fresh 128-bit session token (32 hex chars).
func newSessionToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: reading random token: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// validToken reports whether tok has the exact shape newSessionToken
// produces. Tokens become file names in the spill directory, so
// anything else — path separators, dots, wrong length — is rejected
// before it touches the filesystem.
func validToken(tok string) bool {
	if len(tok) != 32 {
		return false
	}
	for i := 0; i < len(tok); i++ {
		c := tok[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// save retains a live checkpoint for token, spilling it to the
// checkpoint directory when one is configured. Acknowledgments to the
// client are sent only after save returns nil, so an acked batch is as
// durable as the store gets.
func (cs *ckptStore) save(token string, seq uint64, blob []byte) error {
	cs.put(token, &ckptEntry{seq: seq, blob: blob})
	if cs.dir != "" {
		return cs.writeDisk(token, ckptKindLive, seq, blob)
	}
	return nil
}

// saveFinal replaces token's checkpoint with the finished session's
// result, retained so a lost result frame can be served again on
// resume.
func (cs *ckptStore) saveFinal(token string, seq uint64, result []byte) error {
	cs.put(token, &ckptEntry{seq: seq, final: result})
	if cs.dir != "" {
		return cs.writeDisk(token, ckptKindFinal, seq, result)
	}
	return nil
}

func (cs *ckptStore) put(token string, ent *ckptEntry) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.clock++
	ent.stamp = cs.clock
	if old, ok := cs.mem[token]; ok {
		cs.recycleLocked(old)
	}
	cs.mem[token] = ent
	for len(cs.mem) > cs.maxMem {
		victim, oldest := "", uint64(0)
		for t, e := range cs.mem {
			if victim == "" || e.stamp < oldest {
				victim, oldest = t, e.stamp
			}
		}
		cs.recycleLocked(cs.mem[victim])
		delete(cs.mem, victim)
	}
}

// recycleLocked retires a replaced or evicted entry's live blob into
// the reuse list. Safe because live blobs have exactly one owner — the
// store — once saved: load hands out copies, never the stored slice.
// Final-result payloads are excluded; they alias the session's retained
// finalResult.
func (cs *ckptStore) recycleLocked(ent *ckptEntry) {
	if ent == nil || ent.blob == nil || len(cs.free) >= maxFreeBlobs {
		return
	}
	cs.free = append(cs.free, ent.blob)
	ent.blob = nil
}

// blobBuf returns a retired blob buffer for the next CheckpointInto, or
// nil when none is free (the encoder then allocates).
func (cs *ckptStore) blobBuf() []byte {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if n := len(cs.free); n > 0 {
		buf := cs.free[n-1]
		cs.free[n-1] = nil
		cs.free = cs.free[:n-1]
		return buf
	}
	return nil
}

// load fetches token's entry, from memory or (after an eviction or a
// daemon restart) from the spill directory. The returned entry's blob
// is the caller's copy: the stored one may be recycled by a later save
// while the caller is still decoding.
func (cs *ckptStore) load(token string) (*ckptEntry, error) {
	if !validToken(token) {
		return nil, fmt.Errorf("malformed resume token")
	}
	cs.mu.Lock()
	ent, ok := cs.mem[token]
	var cp *ckptEntry
	if ok {
		cs.clock++
		ent.stamp = cs.clock
		cp = &ckptEntry{seq: ent.seq, final: ent.final, stamp: ent.stamp}
		if ent.blob != nil {
			cp.blob = append([]byte(nil), ent.blob...)
		}
	}
	cs.mu.Unlock()
	if ok {
		return cp, nil
	}
	if cs.dir == "" {
		return nil, fmt.Errorf("unknown or expired resume token")
	}
	ent, err := cs.readDisk(token)
	if err != nil {
		return nil, err
	}
	// Re-home in memory with its own copy of the blob, so the entry the
	// caller decodes stays untouched by future saves.
	home := &ckptEntry{seq: ent.seq, final: ent.final}
	if ent.blob != nil {
		home.blob = append([]byte(nil), ent.blob...)
	}
	cs.put(token, home)
	return ent, nil
}

// drop forgets token everywhere.
func (cs *ckptStore) drop(token string) {
	cs.mu.Lock()
	delete(cs.mem, token)
	cs.mu.Unlock()
	if cs.dir != "" {
		os.Remove(cs.path(token))
	}
}

func (cs *ckptStore) path(token string) string {
	return filepath.Join(cs.dir, token+".rdxs")
}

// writeDisk spills one entry atomically: full write to a temp file,
// fsync-free rename into place (the checksum envelope catches torn
// writes on the read side).
func (cs *ckptStore) writeDisk(token string, kind uint8, seq uint64, body []byte) error {
	buf := make([]byte, ckptDiskOverhead, ckptDiskOverhead+len(body))
	copy(buf, ckptDiskMagic[:])
	buf[4] = ckptDiskVersion
	buf[5] = kind
	binary.BigEndian.PutUint64(buf[6:], seq)
	binary.BigEndian.PutUint32(buf[14:], crc32.ChecksumIEEE(body))
	binary.BigEndian.PutUint32(buf[18:], uint32(len(body)))
	buf = append(buf, body...)

	tmp := cs.path(token) + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o600); err != nil {
		return fmt.Errorf("server: spilling checkpoint: %w", err)
	}
	if err := os.Rename(tmp, cs.path(token)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: spilling checkpoint: %w", err)
	}
	cs.mu.Lock()
	cs.saves++
	sweep := cs.saves%ckptSweepEvery == 0
	cs.mu.Unlock()
	if sweep {
		cs.sweepDisk()
	}
	return nil
}

func (cs *ckptStore) readDisk(token string) (*ckptEntry, error) {
	data, err := os.ReadFile(cs.path(token))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("unknown or expired resume token")
		}
		return nil, fmt.Errorf("reading checkpoint: %v", err)
	}
	if len(data) < ckptDiskOverhead || [4]byte(data[:4]) != ckptDiskMagic {
		return nil, fmt.Errorf("corrupt checkpoint: bad envelope")
	}
	if data[4] != ckptDiskVersion {
		return nil, fmt.Errorf("corrupt checkpoint: unsupported version %d", data[4])
	}
	kind := data[5]
	seq := binary.BigEndian.Uint64(data[6:])
	wantCRC := binary.BigEndian.Uint32(data[14:])
	n := binary.BigEndian.Uint32(data[18:])
	body := data[ckptDiskOverhead:]
	if uint32(len(body)) != n {
		return nil, fmt.Errorf("corrupt checkpoint: %d body bytes, envelope declares %d", len(body), n)
	}
	if crc32.ChecksumIEEE(body) != wantCRC {
		return nil, fmt.Errorf("corrupt checkpoint: checksum mismatch")
	}
	ent := &ckptEntry{seq: seq}
	switch kind {
	case ckptKindLive:
		ent.blob = body
	case ckptKindFinal:
		ent.final = body
	default:
		return nil, fmt.Errorf("corrupt checkpoint: unknown kind %d", kind)
	}
	return ent, nil
}

// sweepDisk keeps the spill directory bounded: when it holds more than
// maxDisk entries, the oldest (by modification time) are removed.
func (cs *ckptStore) sweepDisk() {
	entries, err := os.ReadDir(cs.dir)
	if err != nil {
		return
	}
	type aged struct {
		name string
		mod  int64
	}
	var files []aged
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".rdxs" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{name: e.Name(), mod: info.ModTime().UnixNano()})
	}
	if len(files) <= cs.maxDisk {
		return
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mod < files[j].mod })
	for _, f := range files[:len(files)-cs.maxDisk] {
		os.Remove(filepath.Join(cs.dir, f.name))
		cs.logf("rdxd: swept old checkpoint %s", f.name)
	}
}
