package server_test

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

// testPolicy is a retry policy tuned for test time: fast backoff, many
// attempts, frequent syncs so the replay buffer is exercised.
func testPolicy(seed uint64) wire.RetryPolicy {
	return wire.RetryPolicy{
		MaxAttempts: 40,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    50 * time.Millisecond,
		OpTimeout:   10 * time.Second,
		SyncEvery:   8,
		Seed:        seed,
	}
}

// TestResilientProfileUnderFaults is the fault-injection acceptance
// test: seeded connection drops, partial writes and bit corruption on
// every connection, and the final result must still be bit-identical
// to the local rdx.Profile ground truth.
func TestResilientProfileUnderFaults(t *testing.T) {
	cfg := testConfig(400)
	accs, err := trace.Collect(trace.ZipfAccess(17, 0, 8192, 1.0, 250000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	s := start(t, server.Config{
		CheckpointEvery: 4,
		RetryAfterHint:  5 * time.Millisecond,
	})
	faults := faultnet.NewDialer(faultnet.Options{
		Seed:          99,
		DropAfterMin:  80_000,
		DropAfterMax:  200_000,
		CorruptProb:   0.02,
		PartialWrites: true,
	}, nil)
	policy := testPolicy(7)
	policy.Dial = faults.DialContext

	rc := wire.NewReconnectingClient(s.Addr(), cfg, policy)
	defer rc.Close()
	got, err := rc.Profile(context.Background(), trace.FromSlice(accs), wire.ProfileOptions{BatchSize: 2048})
	if err != nil {
		t.Fatalf("resilient profile failed: %v (stats %+v)", err, rc.Stats())
	}
	sameWireProfile(t, "faulted remote vs local", got, want)

	st := rc.Stats()
	if st.Reconnects == 0 {
		t.Errorf("no reconnects despite injected drops (dialer made %d connections)", faults.Conns())
	}
	if st.AckedSeq == 0 {
		t.Error("no durable acknowledgment ever arrived")
	}
	m := s.MetricsSnapshot()
	if m.ResumedSessions == 0 {
		t.Errorf("server resumed no sessions: %+v", m)
	}
	if m.CheckpointsTotal == 0 || m.CheckpointBytes == 0 {
		t.Errorf("no checkpoints recorded: total=%d bytes=%d", m.CheckpointsTotal, m.CheckpointBytes)
	}
}

// TestResilientSurvivesDaemonRestart kills the entire server process
// state mid-stream (Close, then a fresh Server on the same address and
// checkpoint directory) and requires the client to resume from the
// spilled checkpoint and finish with a bit-identical result.
func TestResilientSurvivesDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(400)
	accs, err := trace.Collect(trace.ZipfAccess(5, 0, 4096, 1.0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	// Reserve a concrete port so the restarted server can take over the
	// client's address.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	mkServer := func(delay time.Duration) *server.Server {
		var srv *server.Server
		deadline := time.Now().Add(10 * time.Second)
		for {
			srv, err = server.New(server.Config{
				Addr:            addr,
				CheckpointDir:   dir,
				CheckpointEvery: 2,
				StepDelay:       delay,
				Logf:            quietLogf,
			})
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("rebinding %s: %v", addr, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		srv.Start()
		return srv
	}

	// First incarnation: deliberately slow so the kill lands mid-stream.
	s1 := mkServer(2 * time.Millisecond)

	rc := wire.NewReconnectingClient(addr, cfg, testPolicy(3))
	defer rc.Close()
	type outcome struct {
		res *wire.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := rc.Profile(context.Background(), trace.FromSlice(accs), wire.ProfileOptions{BatchSize: 1024})
		done <- outcome{res, err}
	}()

	// Wait for real progress, then kill the daemon outright.
	deadline := time.Now().Add(15 * time.Second)
	for s1.MetricsSnapshot().BatchesTotal < 10 {
		if time.Now().After(deadline) {
			t.Fatal("first server never made progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s1.Close()

	// Second incarnation on the same address and checkpoint directory.
	s2 := mkServer(0)
	defer s2.Close()

	out := <-done
	if out.err != nil {
		t.Fatalf("profile across restart failed: %v (stats %+v)", out.err, rc.Stats())
	}
	sameWireProfile(t, "restarted remote vs local", out.res, want)
	if rc.Stats().Reconnects == 0 {
		t.Error("client never reconnected despite the restart")
	}
	if m := s2.MetricsSnapshot(); m.ResumedSessions == 0 {
		t.Errorf("restarted server resumed no sessions: %+v", m)
	}
}

// TestResumeRejectsUnknownAndMalformedTokens: a resume for a token the
// server has never seen (or one that is not even token-shaped) is a
// prompt, descriptive error — not a hang, not a fresh session.
func TestResumeRejectsUnknownAndMalformedTokens(t *testing.T) {
	s := start(t, server.Config{CheckpointDir: t.TempDir()})

	c := dial(t, s)
	_, err := c.Resume(testConfig(500), strings.Repeat("ab", 16), 0)
	if err == nil || !strings.Contains(err.Error(), "unknown or expired") {
		t.Errorf("unknown token: err=%v, want unknown-token rejection", err)
	}

	c2 := dial(t, s)
	_, err = c2.Resume(testConfig(500), "../../etc/passwd", 0)
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Errorf("malformed token: err=%v, want malformed-token rejection", err)
	}
}

// TestResumeRejectsCorruptCheckpoint flips bytes in a spilled
// checkpoint file and requires the resume (after a restart, so the
// disk copy is authoritative) to fail with a checksum error instead of
// restoring garbage.
func TestResumeRejectsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(500)
	accs, err := trace.Collect(trace.Cyclic(0, 512, 50000))
	if err != nil {
		t.Fatal(err)
	}

	s1 := start(t, server.Config{CheckpointDir: dir, CheckpointEvery: 2})
	c := dial(t, s1)
	reply, err := c.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Token == "" {
		t.Fatal("open reply carries no resume token")
	}
	if err := c.SendBatch(accs); err != nil {
		t.Fatal(err)
	}
	if acked, err := c.Sync(); err != nil || acked != 1 {
		t.Fatalf("sync: acked=%d err=%v, want 1, nil", acked, err)
	}
	c.Close()
	s1.Close()

	path := filepath.Join(dir, reply.Token+".rdxs")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("spilled checkpoint missing: %v", err)
	}
	blob[len(blob)/2] ^= 0xFF
	if err := os.WriteFile(path, blob, 0o600); err != nil {
		t.Fatal(err)
	}

	s2 := start(t, server.Config{CheckpointDir: dir})
	c2 := dial(t, s2)
	_, err = c2.Resume(cfg, reply.Token, 1)
	if err == nil || !strings.Contains(err.Error(), "corrupt checkpoint") {
		t.Errorf("corrupt checkpoint resume: err=%v, want corruption rejection", err)
	}
	if m := s2.MetricsSnapshot(); m.ResumeFailures == 0 {
		t.Errorf("resume failure not counted: %+v", m)
	}
}

// TestResumeRejectsConfigMismatch: resuming a checkpoint under a
// different profiler configuration must be refused — silently adopting
// either config would produce a result matching neither run.
func TestResumeRejectsConfigMismatch(t *testing.T) {
	s := start(t, server.Config{CheckpointEvery: 1})
	cfg := testConfig(500)
	c := dial(t, s)
	reply, err := c.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Wait for the disconnect checkpoint to land (session unregisters
	// after checkpointing).
	deadline := time.Now().Add(5 * time.Second)
	for s.MetricsSnapshot().SessionsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never freed")
		}
		time.Sleep(time.Millisecond)
	}

	other := testConfig(999)
	c2 := dial(t, s)
	if _, err := c2.Resume(other, reply.Token, 0); err == nil || !strings.Contains(err.Error(), "config") {
		t.Errorf("config-mismatch resume: err=%v, want config rejection", err)
	}
}

// TestShutdownRacesResume: a resume arriving while the server drains is
// shed with an explicit retry-after, and Shutdown still completes.
func TestShutdownRacesResume(t *testing.T) {
	s := start(t, server.Config{CheckpointEvery: 1, StepDelay: time.Millisecond})
	cfg := testConfig(500)

	// A checkpointed, disconnected session to resume later.
	c := dial(t, s)
	reply, err := c.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.MetricsSnapshot().SessionsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never freed")
		}
		time.Sleep(time.Millisecond)
	}

	// An in-flight session keeps the drain pending while we probe, and
	// a second connection is established BEFORE the drain starts — its
	// resume request lands after, racing the shutdown.
	holder := dial(t, s)
	if _, err := holder.Open(cfg); err != nil {
		t.Fatal(err)
	}
	racer := dial(t, s)
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	for !s.MetricsSnapshot().Draining {
		if time.Now().After(deadline.Add(5 * time.Second)) {
			t.Fatal("drain never became visible")
		}
		time.Sleep(time.Millisecond)
	}

	_, rerr := racer.Resume(cfg, reply.Token, 0)
	var ra *wire.RetryAfterError
	if !errors.As(rerr, &ra) {
		t.Errorf("resume during drain: err=%v, want *RetryAfterError", rerr)
	} else if !strings.Contains(ra.Reason, "draining") {
		t.Errorf("shed reason %q, want draining", ra.Reason)
	}
	if m := s.MetricsSnapshot(); m.ShedRequests == 0 {
		t.Errorf("shed requests not counted: %+v", m)
	}

	if _, err := holder.Finish(); err != nil {
		t.Fatalf("in-flight finish during drain: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Errorf("shutdown did not complete cleanly: %v", err)
	}
}

// TestSessionLimitShedsWithRetryAfter: capacity rejections carry an
// explicit retry hint so well-behaved clients back off instead of
// hammering.
func TestSessionLimitShedsWithRetryAfter(t *testing.T) {
	s := start(t, server.Config{MaxSessions: 1, RetryAfterHint: 40 * time.Millisecond})
	cfg := testConfig(500)
	c1 := dial(t, s)
	if _, err := c1.Open(cfg); err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, s)
	_, err := c2.Open(cfg)
	var ra *wire.RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("over-capacity open: err=%v, want *RetryAfterError", err)
	}
	if ra.After != 40*time.Millisecond {
		t.Errorf("retry hint %v, want 40ms", ra.After)
	}
	if !strings.Contains(ra.Reason, "session limit") {
		t.Errorf("shed reason %q, want session limit", ra.Reason)
	}
	if m := s.MetricsSnapshot(); m.ShedRequests != 1 {
		t.Errorf("shed requests = %d, want 1", m.ShedRequests)
	}
}

// TestFinalResultSurvivesLostReply: the server retains a finished
// session's result, so a client whose result frame was lost fetches
// the identical result by resuming and retrying Finish.
func TestFinalResultSurvivesLostReply(t *testing.T) {
	s := start(t, server.Config{})
	cfg := testConfig(500)
	accs, err := trace.Collect(trace.ZipfAccess(2, 0, 2048, 1.0, 100000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	c := dial(t, s)
	reply, err := c.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(accs); err != nil {
		t.Fatal(err)
	}
	got1, err := c.Finish()
	if err != nil {
		t.Fatal(err)
	}
	c.Close() // the reply arrived here, but pretend the client lost it

	// A resume against the finished session reports Done and serves the
	// retained result to a retried Finish.
	c2 := dial(t, s)
	r2, err := c2.Resume(cfg, reply.Token, 1)
	if err != nil {
		t.Fatalf("resume of finished session: %v", err)
	}
	if !r2.Done {
		t.Error("resume of finished session not marked done")
	}
	got2, err := c2.Finish()
	if err != nil {
		t.Fatalf("refetching final result: %v", err)
	}
	sameWireProfile(t, "first fetch vs local", got1, want)
	sameWireProfile(t, "refetched vs first", got2, got1)

	if got2.StateBytes != got1.StateBytes || got2.Accesses != got1.Accesses {
		t.Error("retained result differs from the original reply")
	}
}

// TestReplayedBatchesAreDiscarded: sending a batch the server already
// executed (same sequence number) must not change the profile — the
// metric counts it, the engine never sees it.
func TestReplayedBatchesAreDiscarded(t *testing.T) {
	s := start(t, server.Config{CheckpointEvery: 1})
	cfg := testConfig(500)
	accs, err := trace.Collect(trace.Cyclic(0, 256, 60000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)
	half := len(accs) / 2

	c := dial(t, s)
	reply, err := c.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(accs[:half]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	c.Close() // drop mid-session

	deadline := time.Now().Add(5 * time.Second)
	for s.MetricsSnapshot().SessionsActive != 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never freed")
		}
		time.Sleep(time.Millisecond)
	}

	c2 := dial(t, s)
	r2, err := c2.Resume(cfg, reply.Token, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r2.ResumeSeq != 1 {
		t.Fatalf("resume seq = %d, want 1", r2.ResumeSeq)
	}
	// Replay batch 1 (already executed) by resetting the counter, then
	// send the genuine second half.
	c2.SetNextSeq(1)
	if err := c2.SendBatch(accs[:half]); err != nil {
		t.Fatal(err)
	}
	if err := c2.SendBatch(accs[half:]); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sameWireProfile(t, "replayed remote vs local", got, want)
	if m := s.MetricsSnapshot(); m.ReplayedBatches != 1 {
		t.Errorf("replayed batches = %d, want 1", m.ReplayedBatches)
	}
}

// TestSequenceGapRejected: skipping a sequence number is a protocol
// error — executing out of order would silently corrupt the profile.
func TestSequenceGapRejected(t *testing.T) {
	s := start(t, server.Config{})
	c := dial(t, s)
	if _, err := c.Open(testConfig(500)); err != nil {
		t.Fatal(err)
	}
	accs := make([]mem.Access, 100)
	for i := range accs {
		accs[i] = mem.Access{Addr: mem.Addr(i * 64), Size: 8}
	}
	c.SetNextSeq(5) // skip 1..4
	if err := c.SendBatch(accs); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Finish(); err == nil || !strings.Contains(err.Error(), "sequence gap") {
		t.Errorf("gapped batch: err=%v, want sequence-gap rejection", err)
	}
}
