package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	rdx "repro"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/server"
	"repro/internal/trace"
	"repro/internal/wire"
)

func testConfig(period uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.SamplePeriod = period
	return cfg
}

func quietLogf(string, ...any) {}

// start spins up a server for one test and guarantees teardown.
func start(t *testing.T, cfg server.Config) *server.Server {
	t.Helper()
	cfg.Logf = quietLogf
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *server.Server) *wire.Client {
	t.Helper()
	c, err := wire.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// sameWireProfile asserts two results describe bit-identical profiles.
// StateBytes is excluded: it reports allocated capacity, which depends
// on append growth history, not on the profile.
func sameWireProfile(t *testing.T, label string, got, want *wire.Result) {
	t.Helper()
	if got.Config != want.Config {
		t.Errorf("%s: configs differ: %+v vs %+v", label, got.Config, want.Config)
	}
	type counters struct{ a, s, as, tr, rp, cs, d, e, du uint64 }
	c := func(r *wire.Result) counters {
		return counters{r.Accesses, r.Samples, r.ArmedSamples, r.Traps,
			r.ReusePairs, r.ColdSamples, r.Dropped, r.Evicted, r.Duplicates}
	}
	if c(got) != c(want) {
		t.Errorf("%s: counters differ: %+v vs %+v", label, c(got), c(want))
	}
	if math.Float64bits(got.TimeOverhead) != math.Float64bits(want.TimeOverhead) {
		t.Errorf("%s: overheads differ: %v vs %v", label, got.TimeOverhead, want.TimeOverhead)
	}
	if !reflect.DeepEqual(got.ReuseDistance.Snapshot(), want.ReuseDistance.Snapshot()) {
		t.Errorf("%s: reuse-distance histograms differ", label)
	}
	if !reflect.DeepEqual(got.ReuseTime.Snapshot(), want.ReuseTime.Snapshot()) {
		t.Errorf("%s: reuse-time histograms differ", label)
	}
	if !reflect.DeepEqual(got.Attribution, want.Attribution) {
		t.Errorf("%s: attributions differ", label)
	}
}

// localProfile is the ground truth: the public rdx.Profile API run
// in-process on the same stream and config.
func localProfile(t *testing.T, accs []mem.Access, cfg core.Config) *wire.Result {
	t.Helper()
	res, err := rdx.Profile(trace.FromSlice(accs), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return wire.FromCore(res, true)
}

// TestE2ERecordedTraceBitIdentical is the headline acceptance test:
// record a trace, stream the recording to rdxd over loopback, and the
// returned Result must be bit-identical to rdx.Profile on the same
// stream and config.
func TestE2ERecordedTraceBitIdentical(t *testing.T) {
	var rec bytes.Buffer
	if _, err := trace.Record(&rec, trace.ZipfAccess(11, 0, 8192, 1.0, 400000)); err != nil {
		t.Fatal(err)
	}
	replay := func() trace.Reader {
		r, err := trace.NewReader(bytes.NewReader(rec.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cfg := testConfig(300)
	accs, err := trace.Collect(replay())
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	s := start(t, server.Config{})
	// Deliberately awkward batch size so frame boundaries land mid-trace
	// everywhere; results must not depend on them.
	got, err := dial(t, s).Profile(replay(), cfg, wire.ProfileOptions{BatchSize: 1013})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Final {
		t.Error("finish result not marked final")
	}
	if got.Accesses != uint64(len(accs)) {
		t.Errorf("remote accesses = %d, want %d", got.Accesses, len(accs))
	}
	sameWireProfile(t, "remote vs local", got, want)
}

// TestE2EConcurrentSessions runs 16 sessions at once, each with its own
// stream, and every result must still be bit-identical to its local
// counterpart — session state must not bleed.
func TestE2EConcurrentSessions(t *testing.T) {
	const sessions, n = 16, 150000
	cfg := testConfig(400)
	stream := func(i int) []mem.Access {
		accs, err := trace.Collect(trace.ZipfAccess(uint64(i)+1, mem.Addr(i)<<40, 4096, 1.0, n))
		if err != nil {
			t.Fatal(err)
		}
		return accs
	}
	want := make([]*wire.Result, sessions)
	streams := make([][]mem.Access, sessions)
	for i := range want {
		streams[i] = stream(i)
		want[i] = localProfile(t, streams[i], cfg)
	}

	s := start(t, server.Config{Workers: 4})
	var wg sync.WaitGroup
	got := make([]*wire.Result, sessions)
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := wire.Dial(s.Addr())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			got[i], errs[i] = c.Profile(trace.FromSlice(streams[i]), cfg, wire.ProfileOptions{BatchSize: 4096})
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		sameWireProfile(t, fmt.Sprintf("session %d", i), got[i], want[i])
	}
	if m := s.MetricsSnapshot(); m.SessionsTotal != sessions || m.AccessesTotal != sessions*n {
		t.Errorf("metrics: %d sessions / %d accesses, want %d / %d",
			m.SessionsTotal, m.AccessesTotal, sessions, sessions*n)
	}
}

// TestLiveSnapshots drives a session with periodic snapshot requests:
// they must be non-final, monotone in accesses, and must not perturb
// the final result.
func TestLiveSnapshots(t *testing.T) {
	cfg := testConfig(250)
	accs, err := trace.Collect(trace.ZipfAccess(3, 0, 8192, 1.0, 300000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	s := start(t, server.Config{})
	var snaps []*wire.Result
	got, err := dial(t, s).Profile(trace.FromSlice(accs), cfg, wire.ProfileOptions{
		BatchSize:     2000,
		SnapshotEvery: 30,
		OnSnapshot:    func(r *wire.Result) { snaps = append(snaps, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	sameWireProfile(t, "snapshotted remote vs local", got, want)

	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	prev := uint64(0)
	for i, sn := range snaps {
		if sn.Final {
			t.Errorf("snapshot %d marked final", i)
		}
		if sn.Accesses <= prev || sn.Accesses > got.Accesses {
			t.Errorf("snapshot %d: accesses=%d not monotone (prev %d, final %d)",
				i, sn.Accesses, prev, got.Accesses)
		}
		prev = sn.Accesses
	}
	if m := s.MetricsSnapshot(); m.SnapshotsTotal != uint64(len(snaps)) {
		t.Errorf("metrics snapshots = %d, want %d", m.SnapshotsTotal, len(snaps))
	}
}

// TestBackpressureBoundsSessionMemory: a producer far faster than a
// deliberately slow engine must not balloon server memory. The queue
// high-water mark can never exceed QueueDepth plus the one batch the
// blocked reader holds in hand.
func TestBackpressureBoundsSessionMemory(t *testing.T) {
	const queueDepth = 2
	s := start(t, server.Config{
		Workers:    1,
		QueueDepth: queueDepth,
		StepDelay:  2 * time.Millisecond,
	})
	cfg := testConfig(500)
	accs, err := trace.Collect(trace.ZipfAccess(9, 0, 4096, 1.0, 400000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := dial(t, s).Profile(trace.FromSlice(accs), cfg, wire.ProfileOptions{BatchSize: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if got.Accesses != uint64(len(accs)) {
		t.Errorf("slow engine lost accesses: %d of %d", got.Accesses, len(accs))
	}
	m := s.MetricsSnapshot()
	if m.PeakQueueDepth > queueDepth+1 {
		t.Errorf("queue high-water mark %d exceeds bound %d: backpressure failed",
			m.PeakQueueDepth, queueDepth+1)
	}
	if m.PeakQueueDepth == 0 {
		t.Error("queue never observed — producer was not ahead of the engine")
	}
	if m.DroppedBatches != 0 {
		t.Errorf("%d batches dropped under backpressure; all must execute", m.DroppedBatches)
	}
}

// TestKilledConnectionFreesSession: a client that disappears mid-stream
// must not leak its session.
func TestKilledConnectionFreesSession(t *testing.T) {
	s := start(t, server.Config{})
	c := dial(t, s)
	if _, err := c.Open(testConfig(500)); err != nil {
		t.Fatal(err)
	}
	accs, err := trace.Collect(trace.Cyclic(0, 512, 50000))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := c.SendBatch(accs[i*5000 : (i+1)*5000]); err != nil {
			t.Fatal(err)
		}
	}
	c.Close() // vanish without Finish

	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := s.MetricsSnapshot(); m.SessionsActive == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not freed after kill: %+v", s.MetricsSnapshot())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The server must stay fully usable for the next client.
	cfg := testConfig(500)
	want := localProfile(t, accs, cfg)
	got, err := dial(t, s).Profile(trace.FromSlice(accs), cfg, wire.ProfileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameWireProfile(t, "post-kill session", got, want)
}

// TestShutdownDrainsInFlight: SIGTERM semantics. A session open when
// Shutdown starts completes and gets its final result; new connections
// are refused meanwhile.
func TestShutdownDrainsInFlight(t *testing.T) {
	s := start(t, server.Config{StepDelay: time.Millisecond})
	cfg := testConfig(500)
	accs, err := trace.Collect(trace.ZipfAccess(5, 0, 2048, 1.0, 200000))
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	c := dial(t, s)
	if _, err := c.Open(cfg); err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(accs[:100000]); err != nil {
		t.Fatal(err)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Wait until the drain is externally visible, then check that new
	// sessions are refused.
	deadline := time.Now().Add(5 * time.Second)
	for !s.MetricsSnapshot().Draining {
		if time.Now().After(deadline) {
			t.Fatal("drain never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	if c2, err := wire.Dial(s.Addr()); err == nil {
		if _, err := c2.Open(cfg); err == nil {
			t.Error("new session accepted while draining")
		}
		c2.Close()
	}

	// The in-flight session finishes normally and gets a correct,
	// bit-identical result.
	if err := c.SendBatch(accs[100000:]); err != nil {
		t.Fatalf("in-flight batch refused during drain: %v", err)
	}
	got, err := c.Finish()
	if err != nil {
		t.Fatalf("in-flight finish failed during drain: %v", err)
	}
	sameWireProfile(t, "drained session", got, want)

	if err := <-shutdownErr; err != nil {
		t.Errorf("drain did not complete cleanly: %v", err)
	}
}

// TestShutdownForceClosesStragglers: a session that never finishes is
// cut off when the drain deadline passes, and Shutdown reports it.
func TestShutdownForceClosesStragglers(t *testing.T) {
	s := start(t, server.Config{})
	c := dial(t, s)
	if _, err := c.Open(testConfig(500)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "1 sessions open") {
		t.Errorf("Shutdown error = %v, want straggler report", err)
	}
	if _, err := c.Snapshot(); err == nil {
		t.Error("straggler connection still alive after forced drain")
	}
}

// TestOpenRejections: invalid configs and the session cap produce
// remote errors, not hangs or disconnects.
func TestOpenRejections(t *testing.T) {
	s := start(t, server.Config{MaxSessions: 1})

	t.Run("invalid config", func(t *testing.T) {
		c := dial(t, s)
		if _, err := c.Open(core.Config{}); err == nil {
			t.Error("zero config accepted")
		}
	})

	t.Run("session limit", func(t *testing.T) {
		c1 := dial(t, s)
		if _, err := c1.Open(testConfig(500)); err != nil {
			t.Fatal(err)
		}
		c2 := dial(t, s)
		_, err := c2.Open(testConfig(500))
		if err == nil || !strings.Contains(err.Error(), "session limit") {
			t.Errorf("second session: err=%v, want session-limit rejection", err)
		}
	})
}

// TestOversizedBatchRejected: a batch beyond MaxBatch is a protocol
// error ending the session, not an OOM risk.
func TestOversizedBatchRejected(t *testing.T) {
	s := start(t, server.Config{MaxBatch: 1000})
	c := dial(t, s)
	reply, err := c.Open(testConfig(500))
	if err != nil {
		t.Fatal(err)
	}
	if reply.MaxBatch != 1000 {
		t.Errorf("advertised MaxBatch = %d, want 1000", reply.MaxBatch)
	}
	accs, err := trace.Collect(trace.Cyclic(0, 64, 5000))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(accs); err != nil {
		t.Fatal(err) // send succeeds; rejection arrives as a reply
	}
	if _, err := c.Finish(); err == nil || !strings.Contains(err.Error(), "exceeds max") {
		t.Errorf("oversized batch: err=%v, want max-batch rejection", err)
	}
}

// TestAdminEndpoints exercises /healthz and /metrics over real HTTP.
func TestAdminEndpoints(t *testing.T) {
	s := start(t, server.Config{AdminAddr: "127.0.0.1:0"})
	base := "http://" + s.AdminAddr()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz: %d %q", resp.StatusCode, body)
	}

	accs, err := trace.Collect(trace.Cyclic(0, 256, 80000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dial(t, s).Profile(trace.FromSlice(accs), testConfig(500), wire.ProfileOptions{}); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m server.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.AccessesTotal != uint64(len(accs)) || m.SessionsTotal != 1 || m.BytesIn == 0 {
		t.Errorf("metrics after one session: %+v", m)
	}

	// Draining flips healthz to 503.
	go s.Shutdown(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			break // admin listener already down: drain finished
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMetricsLoadGauge checks the routing gauge the pool dispatcher
// keys on: zero at rest, >= 1 while a session is admitted, and back to
// zero once it finishes.
func TestMetricsLoadGauge(t *testing.T) {
	s := start(t, server.Config{StepDelay: 2 * time.Millisecond})
	if load := s.MetricsSnapshot().Load; load != 0 {
		t.Fatalf("idle load = %d, want 0", load)
	}
	c := dial(t, s)
	if _, err := c.Open(testConfig(500)); err != nil {
		t.Fatal(err)
	}
	accs, err := trace.Collect(trace.Cyclic(0, 512, 20000))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(accs); off += 4096 {
		end := off + 4096
		if end > len(accs) {
			end = len(accs)
		}
		if err := c.SendBatch(accs[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	m := s.MetricsSnapshot()
	if m.Load < 1 {
		t.Errorf("mid-session load = %d, want >= 1", m.Load)
	}
	if m.Load != m.SessionsActive+m.PipelineQueueDepth {
		t.Errorf("load = %d, want sessions_active(%d) + pipeline(%d)", m.Load, m.SessionsActive, m.PipelineQueueDepth)
	}
	if _, err := c.Finish(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.MetricsSnapshot().Load != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("load never returned to 0: %d", s.MetricsSnapshot().Load)
		}
		time.Sleep(time.Millisecond)
	}
}
