package server

import "sync"

// The executor replaces the runner-goroutine-per-session model with a
// fixed worker set (Config.Workers, default GOMAXPROCS) multiplexing
// every session's work. Each worker owns a deque of runnable sessions;
// new work is injected through a shared queue, and an idle worker
// steals from its siblings' deques before parking. The scheduling unit
// is a session *step* (up to stepQuantum queue items), so one firehose
// session cannot pin a worker while its siblings starve.
//
// The correctness invariant is ownership: a session is executed by at
// most one worker at a time. It is enforced by the sched state machine
// below — a session enters a deque only through the sessIdle→sessQueued
// or sessRunningQueued→sessQueued transitions, each of which is a
// single CAS, so a session is never present in two deques (or a deque
// and a running worker) at once. Per-session batch order is therefore
// exactly what it was with dedicated runners, and results stay
// bit-identical no matter how steps interleave across workers.

// Session scheduling states (session.sched). Transitions:
//
//	Idle ──notify──▶ Queued ──worker pop──▶ Running ──┬─▶ Idle   (queue empty)
//	                   ▲                              ├─▶ Queued (more work / notified while running)
//	                   └───────◀──────────────────────┘
//	                                       Running ───▶ Done    (finish/fail/disconnect/migrate)
//
// A notify during Running moves to RunningQueued, which the owning
// worker resolves to Queued (re-enqueue) when the step ends — the
// wakeup is never lost, and the session never runs twice concurrently.
const (
	sessIdle int32 = iota
	sessQueued
	sessRunning
	sessRunningQueued
	sessDone
)

type executor struct {
	srv     *Server
	workers []*execWorker

	// mu guards inject, gen, and closed. gen is a wakeup generation
	// counter: every submission bumps it, and a worker about to park
	// re-scans if gen moved since its last empty scan — the classic
	// check-then-sleep race cannot lose a wakeup.
	mu     sync.Mutex
	cond   *sync.Cond
	inject []*session
	gen    uint64
	closed bool

	wg sync.WaitGroup
}

// execWorker is one executor worker: an OS-thread-agnostic goroutine
// plus the deque of sessions it currently owns. The deque is head/tail
// ordered: the owner pops from the tail and re-enqueues at the head, so
// its own sessions round-robin; thieves pop from the head, taking the
// session the owner would reach last.
type execWorker struct {
	id int
	mu sync.Mutex
	dq []*session
}

func newExecutor(srv *Server, workers int) *executor {
	e := &executor{srv: srv, workers: make([]*execWorker, workers)}
	e.cond = sync.NewCond(&e.mu)
	for i := range e.workers {
		e.workers[i] = &execWorker{id: i}
	}
	return e
}

func (e *executor) start() {
	for _, w := range e.workers {
		e.wg.Add(1)
		go e.run(w)
	}
}

// close stops the workers after all sessions have finished (the server
// waits out its connection goroutines first, so no deque holds work).
func (e *executor) close() {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.cond.Broadcast()
	e.wg.Wait()
}

// notify tells the executor sess may have runnable work (an item was
// enqueued, the queue closed, or a migration order arrived). It is safe
// from any goroutine and idempotent: at most one wakeup is ever
// outstanding per session, and a session already running absorbs the
// notify into its re-enqueue decision.
func (e *executor) notify(sess *session) {
	if !sess.admitted.Load() {
		// Handshake still in flight: handleConn kicks the session once
		// its queue and writer exist, and re-checks everything then.
		return
	}
	for {
		switch sess.sched.Load() {
		case sessIdle:
			if sess.sched.CompareAndSwap(sessIdle, sessQueued) {
				e.submit(sess)
				return
			}
		case sessRunning:
			if sess.sched.CompareAndSwap(sessRunning, sessRunningQueued) {
				return
			}
		default:
			// Queued, RunningQueued, Done: a wakeup is already owed (or
			// can never matter again).
			return
		}
	}
}

// submit places a newly-runnable session on the inject queue and wakes
// a parked worker.
func (e *executor) submit(sess *session) {
	e.mu.Lock()
	e.inject = append(e.inject, sess)
	e.gen++
	e.mu.Unlock()
	e.cond.Signal()
}

// requeue puts a session a worker just stepped back on that worker's
// own deque, then advertises it so a parked sibling can steal it.
func (e *executor) requeue(w *execWorker, sess *session) {
	w.pushHead(sess)
	e.mu.Lock()
	e.gen++
	e.mu.Unlock()
	e.cond.Signal()
}

func (w *execWorker) pushHead(sess *session) {
	w.mu.Lock()
	w.dq = append(w.dq, nil)
	copy(w.dq[1:], w.dq)
	w.dq[0] = sess
	w.mu.Unlock()
}

func (w *execWorker) popTail() *session {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.dq)
	if n == 0 {
		return nil
	}
	sess := w.dq[n-1]
	w.dq[n-1] = nil
	w.dq = w.dq[:n-1]
	return sess
}

func (w *execWorker) popHead() *session {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.dq)
	if n == 0 {
		return nil
	}
	sess := w.dq[0]
	copy(w.dq, w.dq[1:])
	w.dq[n-1] = nil
	w.dq = w.dq[:n-1]
	return sess
}

func (e *executor) run(w *execWorker) {
	defer e.wg.Done()
	for {
		sess := e.next(w)
		if sess == nil {
			return
		}
		e.step(w, sess)
	}
}

// next finds the next session for w to step: its own deque first, then
// the inject queue, then a steal sweep over the other workers' deques;
// empty-handed, it parks until a submission bumps the generation
// counter.
func (e *executor) next(w *execWorker) *session {
	for {
		e.mu.Lock()
		gen := e.gen
		if e.closed {
			e.mu.Unlock()
			return nil
		}
		if n := len(e.inject); n > 0 {
			sess := e.inject[0]
			copy(e.inject, e.inject[1:])
			e.inject[n-1] = nil
			e.inject = e.inject[:n-1]
			e.mu.Unlock()
			return sess
		}
		e.mu.Unlock()

		if sess := w.popTail(); sess != nil {
			return sess
		}
		for i := 1; i < len(e.workers); i++ {
			victim := e.workers[(w.id+i)%len(e.workers)]
			if sess := victim.popHead(); sess != nil {
				e.srv.metrics.executorSteals.Add(1)
				return sess
			}
		}

		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			return nil
		}
		if e.gen == gen {
			// Nothing was submitted since the (empty) scan above began;
			// any later submission will Signal us out of the Wait.
			e.cond.Wait()
		}
		e.mu.Unlock()
	}
}

// step runs one scheduling quantum of sess on w and resolves the
// session's next state. Ownership holds throughout: sess left the
// runnable set when it was popped, and rejoins it (or goes idle/done)
// only here.
func (e *executor) step(w *execWorker, sess *session) {
	sess.sched.Store(sessRunning)
	e.srv.metrics.executorSteps.Add(1)
	switch e.srv.sessionStep(sess) {
	case stepDone:
		sess.sched.Store(sessDone)
		close(sess.done)
	case stepMore:
		// Quantum exhausted with work still queued: straight back to the
		// runnable set regardless of how notify raced.
		for {
			if sess.sched.CompareAndSwap(sessRunning, sessQueued) ||
				sess.sched.CompareAndSwap(sessRunningQueued, sessQueued) {
				e.requeue(w, sess)
				return
			}
		}
	default: // stepYield
		for {
			if sess.sched.CompareAndSwap(sessRunning, sessIdle) {
				// Queue was empty; the next notify re-submits.
				return
			}
			if sess.sched.CompareAndSwap(sessRunningQueued, sessQueued) {
				// Notified mid-step: there may be work the step's last
				// poll missed, so run again rather than risk stranding it.
				e.requeue(w, sess)
				return
			}
		}
	}
}
