package server_test

import (
	"bytes"
	"runtime"
	"testing"

	"repro/internal/server"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestE2EQueueDepthOneBitIdentical pins down the pipelined ingest path
// under maximum recycling pressure: with a one-slot session queue every
// decode buffer cycles through the free ring between reader and runner,
// and any aliasing bug (a buffer recycled while the engine still reads
// it, a payload released before decode finished) corrupts the stream.
// The result must still be bit-identical to a local profile.
func TestE2EQueueDepthOneBitIdentical(t *testing.T) {
	var rec bytes.Buffer
	if _, err := trace.Record(&rec, trace.ZipfAccess(17, 0, 8192, 1.0, 300000)); err != nil {
		t.Fatal(err)
	}
	replay := func() trace.Reader {
		r, err := trace.NewReader(bytes.NewReader(rec.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cfg := testConfig(300)
	accs, err := trace.Collect(replay())
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	s := start(t, server.Config{QueueDepth: 1})
	// Awkward batch size: frame boundaries land mid-trace everywhere,
	// and decoded batches keep changing length so recycled buffers are
	// constantly re-sliced.
	got, err := dial(t, s).Profile(replay(), cfg, wire.ProfileOptions{BatchSize: 977})
	if err != nil {
		t.Fatal(err)
	}
	sameWireProfile(t, "queue-depth-1 remote vs local", got, want)
}

// TestStreamingAllocBudget bounds the steady-state allocation cost of
// streaming one batch end to end in-process: client encode + frame
// write, server frame read + decode + engine execution. Mallocs is
// process-wide, so the budget covers BOTH sides of the wire; before the
// pooled ingest pipeline this path cost ~8200 allocations per batch
// (one per access decode plus per-frame buffers), so the budget of 64
// is a >100x reduction with slack for scheduler and socket noise.
func TestStreamingAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const (
		batchSize   = trace.DefaultBatchSize
		warmBatches = 32
		batches     = 256
		budget      = 64.0
	)
	accs, err := trace.Collect(trace.ZipfAccess(5, 0, 1<<14, 1.0, batchSize))
	if err != nil {
		t.Fatal(err)
	}
	// Periodic checkpoints disabled: they are off the per-batch budget
	// by design (measured separately by the sync path tests).
	s := start(t, server.Config{CheckpointEvery: -1})
	c := dial(t, s)
	if _, err := c.Open(testConfig(4096)); err != nil {
		t.Fatal(err)
	}
	stream := func(n int) {
		for i := 0; i < n; i++ {
			if err := c.SendBatch(accs); err != nil {
				t.Fatal(err)
			}
		}
		// Sync acks only after every sent batch is executed and its
		// checkpoint durable, so the measured window contains the whole
		// server-side pipeline, not just the socket writes.
		if _, err := c.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	stream(warmBatches) // warm pools, free ring, engine state

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	stream(batches)
	runtime.ReadMemStats(&after)

	perBatch := float64(after.Mallocs-before.Mallocs) / batches
	t.Logf("end-to-end streaming: %.1f allocs/batch (%d accesses/batch)", perBatch, batchSize)
	if perBatch > budget {
		t.Errorf("streaming allocates %.1f times per batch, budget %v", perBatch, budget)
	}
}
