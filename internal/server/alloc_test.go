package server_test

import (
	"bytes"
	"math"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/testutil"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestE2EQueueDepthOneBitIdentical pins down the pipelined ingest path
// under maximum recycling pressure: with a one-slot session queue every
// decode buffer cycles through the free ring between reader and runner,
// and any aliasing bug (a buffer recycled while the engine still reads
// it, a payload released before decode finished) corrupts the stream.
// The result must still be bit-identical to a local profile.
func TestE2EQueueDepthOneBitIdentical(t *testing.T) {
	var rec bytes.Buffer
	if _, err := trace.Record(&rec, trace.ZipfAccess(17, 0, 8192, 1.0, 300000)); err != nil {
		t.Fatal(err)
	}
	replay := func() trace.Reader {
		r, err := trace.NewReader(bytes.NewReader(rec.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	cfg := testConfig(300)
	accs, err := trace.Collect(replay())
	if err != nil {
		t.Fatal(err)
	}
	want := localProfile(t, accs, cfg)

	s := start(t, server.Config{QueueDepth: 1})
	// Awkward batch size: frame boundaries land mid-trace everywhere,
	// and decoded batches keep changing length so recycled buffers are
	// constantly re-sliced.
	got, err := dial(t, s).Profile(replay(), cfg, wire.ProfileOptions{BatchSize: 977})
	if err != nil {
		t.Fatal(err)
	}
	sameWireProfile(t, "queue-depth-1 remote vs local", got, want)
}

// TestSteadyStateAllocs16Sessions pins the per-session allocation creep
// fixed in this change: BENCH_server.json showed allocs/batch growing
// 1.8 → 3.0 → 10.3 at 1/4/16 sessions because per-connection state
// (bufio readers and writers, decode scratch, column scratch) was
// allocated fresh per session and amortized over fewer batches. With
// those on cross-session pools, the steady state — sessions open, pools
// warm, batches streaming — must stay allocation-free no matter how
// many sessions share the server. The budget is 0.5 allocs/batch
// across 16 concurrent sessions, whole-process (client and server
// side), with slack only for scheduler and measurement noise.
func TestSteadyStateAllocs16Sessions(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const (
		sessions    = 16
		batchSize   = 4096
		warmBatches = 32
		batches     = 256 // per session, in the measured window
		budget      = 0.5
	)
	accs, err := trace.Collect(trace.ZipfAccess(11, 0, 1<<14, 1.0, batchSize))
	if err != nil {
		t.Fatal(err)
	}
	s := start(t, server.Config{CheckpointEvery: -1})

	clients := make([]*wire.Client, sessions)
	for i := range clients {
		c := dial(t, s)
		if _, err := c.Open(testConfig(4096)); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	stream := func(c *wire.Client, n int) error {
		for i := 0; i < n; i++ {
			if err := c.SendBatch(accs); err != nil {
				return err
			}
		}
		return nil
	}
	// Warm every session's pipeline concurrently — the same shape as the
	// measured window, so each session's free ring of column scratch is
	// fully grown; the Sync forces each one through decode, execute and
	// checkpoint so all pools are primed before the window opens.
	var warmWG sync.WaitGroup
	warmErrs := make([]error, sessions)
	for i, c := range clients {
		warmWG.Add(1)
		go func(i int, c *wire.Client) {
			defer warmWG.Done()
			if err := stream(c, warmBatches); err != nil {
				warmErrs[i] = err
				return
			}
			_, warmErrs[i] = c.Sync()
		}(i, c)
	}
	warmWG.Wait()
	for _, err := range warmErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Syncs checkpoint by design, which allocates; the measured window
	// therefore contains only streaming, and completion of the
	// server-side pipeline is confirmed through the metrics gauge
	// instead.
	base := s.MetricsSnapshot().AccessesTotal
	want := base + uint64(sessions*batches*batchSize)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *wire.Client) {
			defer wg.Done()
			errs[i] = stream(c, batches)
		}(i, c)
	}
	wg.Wait()
	for deadline := time.Now().Add(30 * time.Second); s.MetricsSnapshot().AccessesTotal < want; {
		if time.Now().After(deadline) {
			t.Fatalf("server executed %d of %d accesses", s.MetricsSnapshot().AccessesTotal, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
	runtime.ReadMemStats(&after)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	perBatch := float64(after.Mallocs-before.Mallocs) / (sessions * batches)
	t.Logf("16-session steady state: %.3f allocs/batch (%d accesses/batch)", perBatch, batchSize)
	if perBatch > budget {
		t.Errorf("steady state allocates %.3f times per batch across %d sessions, budget %v",
			perBatch, sessions, budget)
	}
	for _, c := range clients {
		if _, err := c.Finish(); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
}

// TestAllocCreepRatio16v1 gates the BENCH_server.json allocation-creep
// ratio: allocs/batch at 16 sessions divided by allocs/batch at 1
// session, with total work held constant (the bench's shape). The
// per-batch cost decomposes as
//
//	allocs/batch = steady + fixed*sessions/totalBatches
//
// where `steady` is the pooled streaming cost (≈0, gated separately by
// TestSteadyStateAllocs16Sessions) and `fixed` is the per-session
// lifecycle cost — JSON handshake and result codec, TCP dial, profiler
// construction — that no pool can remove. At 16 sessions the fixed term
// is amortized over 16x fewer batches per session, so a ratio well
// above 1 is structural, not a leak. What the gate catches is the fixed
// term growing: before per-connection state (client bufio, encode
// scratch, column buffers, frame payloads, server free rings) moved to
// cross-session pools, a client-side lifecycle alone cost ~194
// allocations and 1.4 MB; pooled it costs ~175 allocations and ~210 kB
// (BenchmarkSessionChurn), and the whole-process fixed term — both
// sides of the wire plus the open checkpoint — measures ~320, so at
// this window size (16*320/512) the ratio lands near 10. The gate at
// 14 leaves ~40% headroom on the fixed term while firing long before
// unpooled per-session buffers could silently return.
func TestAllocCreepRatio16v1(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const (
		totalBatches = 512 // constant across windows, like the bench
		batchSize    = 4096
		maxRatio     = 14.0
	)
	accs, err := trace.Collect(trace.ZipfAccess(23, 0, 1<<14, 1.0, batchSize))
	if err != nil {
		t.Fatal(err)
	}
	s := start(t, server.Config{CheckpointEvery: -1})

	// One full session lifecycle per goroutine: dial, open, stream,
	// finish, close — the same unit the bench amortizes.
	window := func(sessions int) float64 {
		per := totalBatches / sessions
		run := func() error {
			c, err := wire.Dial(s.Addr())
			if err != nil {
				return err
			}
			defer c.Close()
			if _, err := c.Open(testConfig(4096)); err != nil {
				return err
			}
			for i := 0; i < per; i++ {
				if err := c.SendBatch(accs); err != nil {
					return err
				}
			}
			_, err = c.Finish()
			return err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		var wg sync.WaitGroup
		errs := make([]error, sessions)
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = run()
			}(i)
		}
		wg.Wait()
		runtime.ReadMemStats(&after)
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		return float64(after.Mallocs-before.Mallocs) / totalBatches
	}

	window(16) // warm cross-session pools outside the measured windows
	one := window(1)
	sixteen := window(16)
	// Epsilon floor: the denominator is a handful of allocs per batch;
	// an unluckily clean 1-session window must not inflate the ratio.
	ratio := sixteen / math.Max(one, 1.0)
	t.Logf("allocs/batch: 1 session %.2f, 16 sessions %.2f, ratio %.2f (gate %v)",
		one, sixteen, ratio, maxRatio)
	if ratio > maxRatio {
		t.Errorf("16-session/1-session allocs-per-batch ratio %.2f exceeds %v: per-session fixed cost regressed",
			ratio, maxRatio)
	}
}

// TestStreamingAllocBudget bounds the steady-state allocation cost of
// streaming one batch end to end in-process: client encode + frame
// write, server frame read + decode + engine execution. Mallocs is
// process-wide, so the budget covers BOTH sides of the wire; before the
// pooled ingest pipeline this path cost ~8200 allocations per batch
// (one per access decode plus per-frame buffers), so the budget of 64
// is a >100x reduction with slack for scheduler and socket noise.
func TestStreamingAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	const (
		batchSize   = trace.DefaultBatchSize
		warmBatches = 32
		batches     = 256
		budget      = 64.0
	)
	accs, err := trace.Collect(trace.ZipfAccess(5, 0, 1<<14, 1.0, batchSize))
	if err != nil {
		t.Fatal(err)
	}
	// Periodic checkpoints disabled: they are off the per-batch budget
	// by design (measured separately by the sync path tests).
	s := start(t, server.Config{CheckpointEvery: -1})
	c := dial(t, s)
	if _, err := c.Open(testConfig(4096)); err != nil {
		t.Fatal(err)
	}
	stream := func(n int) {
		for i := 0; i < n; i++ {
			if err := c.SendBatch(accs); err != nil {
				t.Fatal(err)
			}
		}
		// Sync acks only after every sent batch is executed and its
		// checkpoint durable, so the measured window contains the whole
		// server-side pipeline, not just the socket writes.
		if _, err := c.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	stream(warmBatches) // warm pools, free ring, engine state

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	stream(batches)
	runtime.ReadMemStats(&after)

	perBatch := float64(after.Mallocs-before.Mallocs) / batches
	t.Logf("end-to-end streaming: %.1f allocs/batch (%d accesses/batch)", perBatch, batchSize)
	if perBatch > budget {
		t.Errorf("streaming allocates %.1f times per batch, budget %v", perBatch, budget)
	}
}
