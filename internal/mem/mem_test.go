package mem

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Errorf("Kind strings: got %q, %q", Load, Store)
	}
	if got := Kind(7).String(); got != "Kind(7)" {
		t.Errorf("unknown kind: got %q", got)
	}
}

func TestAccessOverlaps(t *testing.T) {
	tests := []struct {
		a, b Access
		want bool
	}{
		{Access{Addr: 0, Size: 8}, Access{Addr: 0, Size: 8}, true},
		{Access{Addr: 0, Size: 8}, Access{Addr: 7, Size: 1}, true},
		{Access{Addr: 0, Size: 8}, Access{Addr: 8, Size: 1}, false},
		{Access{Addr: 8, Size: 1}, Access{Addr: 0, Size: 8}, false},
		{Access{Addr: 4, Size: 4}, Access{Addr: 0, Size: 8}, true},
		{Access{Addr: 100, Size: 2}, Access{Addr: 101, Size: 2}, true},
		{Access{Addr: 100, Size: 1}, Access{Addr: 101, Size: 1}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Overlaps(tt.b); got != tt.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Overlaps(tt.a); got != tt.want {
			t.Errorf("overlap not symmetric for %v, %v", tt.a, tt.b)
		}
	}
}

func TestGranularityBlock(t *testing.T) {
	tests := []struct {
		g    Granularity
		addr Addr
		want Addr
	}{
		{ByteGranularity, 1234, 1234},
		{WordGranularity, 0, 0},
		{WordGranularity, 7, 0},
		{WordGranularity, 8, 1},
		{WordGranularity, 1<<40 + 9, 1<<37 + 1},
		{LineGranularity, 63, 0},
		{LineGranularity, 64, 1},
		{LineGranularity, 128, 2},
	}
	for _, tt := range tests {
		if got := tt.g.Block(tt.addr); got != tt.want {
			t.Errorf("%v.Block(%d) = %d, want %d", tt.g, tt.addr, got, tt.want)
		}
	}
}

func TestGranularityBlockBase(t *testing.T) {
	if got := LineGranularity.BlockBase(Addr(130)); got != 128 {
		t.Errorf("BlockBase(130) = %d, want 128", got)
	}
	if got := WordGranularity.BlockBase(Addr(15)); got != 8 {
		t.Errorf("BlockBase(15) = %d, want 8", got)
	}
}

func TestGranularityBlockSizeAndString(t *testing.T) {
	if LineGranularity.BlockSize() != 64 {
		t.Errorf("line block size = %d, want 64", LineGranularity.BlockSize())
	}
	if got := LineGranularity.String(); got != "64B" {
		t.Errorf("line string = %q, want 64B", got)
	}
	if got := ByteGranularity.String(); got != "1B" {
		t.Errorf("byte string = %q", got)
	}
}

func TestBlockConsistencyProperty(t *testing.T) {
	// Two addresses map to the same block iff their block bases agree.
	f := func(a, b uint64, gRaw uint8) bool {
		g := Granularity(gRaw % 13)
		sameBlock := g.Block(Addr(a)) == g.Block(Addr(b))
		sameBase := g.BlockBase(Addr(a)) == g.BlockBase(Addr(b))
		return sameBlock == sameBase
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockBaseWithinBlockProperty(t *testing.T) {
	f := func(a uint64, gRaw uint8) bool {
		g := Granularity(gRaw % 13)
		base := g.BlockBase(Addr(a))
		return base <= Addr(a) && Addr(a)-base < Addr(g.BlockSize())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
