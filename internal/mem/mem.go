// Package mem defines the fundamental memory-access vocabulary shared by
// every layer of the RDX reproduction: virtual addresses, access records as
// they appear in a trace, and measurement granularities (byte, word,
// cache line) used to map raw addresses onto the blocks whose reuse is
// being measured.
package mem

import "fmt"

// Addr is a virtual byte address.
type Addr uint64

// Kind distinguishes loads from stores. Reuse distance is agnostic to the
// kind, but the PMU can be programmed to sample only one of them and some
// workloads skew heavily one way, so traces carry it.
type Kind uint8

const (
	// Load is a memory read.
	Load Kind = iota
	// Store is a memory write.
	Store
)

// String returns "load" or "store".
func (k Kind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is one dynamic memory access: the effective byte address, the
// program counter of the instruction that issued it, the access width in
// bytes (1, 2, 4 or 8), and whether it was a load or a store. It is
// deliberately a small value type: simulations stream hundreds of
// millions of them.
//
// The PC is what makes attribution possible: profilers that capture the
// sampled access's PC and the reusing access's PC can report which pair
// of code locations carries each reuse — the actionable output of a
// locality tool. Synthetic workloads assign stable fake code addresses
// per kernel site.
type Access struct {
	Addr Addr
	PC   Addr
	Size uint8
	Kind Kind
}

// Overlaps reports whether the byte ranges [a.Addr, a.Addr+a.Size) and
// [b.Addr, b.Addr+b.Size) intersect.
func (a Access) Overlaps(b Access) bool {
	return a.Addr < b.Addr+Addr(b.Size) && b.Addr < a.Addr+Addr(a.Size)
}

// String formats the access for diagnostics.
func (a Access) String() string {
	return fmt.Sprintf("%s %d@%#x", a.Kind, a.Size, uint64(a.Addr))
}

// Granularity is the block size, expressed as a power-of-two shift, at
// which reuse distance is measured. Granularity 0 is byte granularity;
// 3 is 8-byte words (the widest a hardware debug register can watch);
// 6 is a 64-byte cache line.
type Granularity uint8

// Common granularities.
const (
	ByteGranularity Granularity = 0
	WordGranularity Granularity = 3 // 8-byte machine words
	LineGranularity Granularity = 6 // 64-byte cache lines
)

// BlockSize returns the block size in bytes.
func (g Granularity) BlockSize() uint64 { return 1 << g }

// Block maps a byte address to its block number at this granularity.
// Distinct block numbers correspond to distinct memory locations in the
// reuse-distance sense.
func (g Granularity) Block(a Addr) Addr { return a >> g }

// BlockBase returns the lowest byte address within a's block.
func (g Granularity) BlockBase(a Addr) Addr { return a >> g << g }

// String names the granularity ("1B", "8B", "64B", ...).
func (g Granularity) String() string {
	return fmt.Sprintf("%dB", g.BlockSize())
}
