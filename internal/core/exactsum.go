package core

import "math/big"

// exactSum accumulates float64 values exactly, so the final rounded
// float64 is independent of addition order. Thread histograms and
// attribution weights are genuinely non-integer floats (Kaplan-Meier
// censoring redistribution and the accesses/unitTotal weight scale in
// buildResult), so plain float64 summation is order-dependent in the
// last ulp — which would make a parallel merge tree produce different
// bits than the sequential fold. Summing in a big.Float wide enough to
// hold any float64 sum exactly makes addition associative; the single
// rounding happens once, at extraction.
//
// exactSumPrec covers the full double span: the smallest subnormal LSB
// is 2^-1074 and sums here stay far below 2^1024, so a window of
// 1074+1024 bits plus slack holds every partial sum without rounding.
// big.Float stores only significant words, so a typical sum costs a few
// machine words, not 2176 bits.
const exactSumPrec = 2176

// exactSum's zero value is an exact 0.
type exactSum struct{ f *big.Float }

// add folds one float64 into the sum. tmp is caller-owned scratch so
// the hot path allocates nothing beyond the lazily created accumulator.
func (s *exactSum) add(v float64, tmp *big.Float) {
	if v == 0 {
		return
	}
	if s.f == nil {
		s.f = new(big.Float).SetPrec(exactSumPrec)
	}
	tmp.SetFloat64(v)
	s.f.Add(s.f, tmp)
}

// addSum folds another exact partial sum into s (both stay exact: the
// precision window covers the combined value).
func (s *exactSum) addSum(o *exactSum) {
	if o.f == nil {
		return
	}
	if s.f == nil {
		s.f = new(big.Float).SetPrec(exactSumPrec)
	}
	s.f.Add(s.f, o.f)
}

// float64 rounds the exact sum to the nearest float64 — the one place
// rounding happens.
func (s *exactSum) float64() float64 {
	if s.f == nil {
		return 0
	}
	v, _ := s.f.Float64()
	return v
}
