package core

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/mem"
	"repro/internal/trace"
)

// runInterrupted drives cfg over mk()'s stream with the incremental
// Execute API in batches of batchSize accesses. After cutAt batches (0 =
// never) the session is serialized with Checkpoint, torn down, restored
// with RestoreProfiler, and continued on the restored profiler/machine.
func runInterrupted(t *testing.T, cfg Config, mk func() trace.Reader, batchSize, cutAt int) *Result {
	t.Helper()
	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(cpumodel.Default())
	r := mk()
	buf := make([]mem.Access, batchSize)
	batches := 0
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			m.Execute(buf[:n])
			batches++
			if batches == cutAt {
				blob := p.Checkpoint()
				p2, m2, err := RestoreProfiler(blob)
				if err != nil {
					t.Fatalf("RestoreProfiler: %v", err)
				}
				if m2 == nil {
					t.Fatal("RestoreProfiler returned no machine for a machine-attached checkpoint")
				}
				p, m = p2, m2
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
	}
	m.Finish()
	return p.Result()
}

// normalizeState clears the fields that legitimately depend on slice
// allocation history (a restored log has capacity == length, an
// uninterrupted one carries append growth). Everything else must match
// bit-exactly.
func normalizeState(r *Result) *Result {
	c := *r
	c.StateBytes = 0
	return &c
}

// TestCheckpointRestoreBitIdentical is the checkpoint contract test: for
// every replacement policy, several seeds/skids, several workloads and
// several cut points — including cuts with armed watchpoints and a
// pending skid countdown in flight — checkpoint → restore → continue
// must be indistinguishable from never having stopped.
func TestCheckpointRestoreBitIdentical(t *testing.T) {
	const n = 60000
	const batchSize = 512
	policies := []ReplacementPolicy{
		ReplaceProbabilistic, ReplaceReservoir, ReplaceAlways, ReplaceNever, ReplaceHybrid,
	}
	streams := map[string]func(seed uint64) trace.Reader{
		"zipf":   func(seed uint64) trace.Reader { return trace.ZipfAccess(seed, 0, 4000, 1.0, n) },
		"cyclic": func(seed uint64) trace.Reader { return trace.Cyclic(0, 900, n) },
	}
	cuts := []int{1, 7, 60, n/batchSize - 1}
	for _, pol := range policies {
		for seed := uint64(1); seed <= 2; seed++ {
			for name, mk := range streams {
				t.Run(fmt.Sprintf("%v/seed=%d/%s", pol, seed, name), func(t *testing.T) {
					cfg := DefaultConfig()
					cfg.SamplePeriod = 700
					cfg.Replacement = pol
					cfg.Seed = seed
					cfg.Skid = int(seed - 1)

					mkr := func() trace.Reader { return mk(seed) }
					want := normalizeState(runInterrupted(t, cfg, mkr, batchSize, 0))
					if want.Samples == 0 && cfg.Replacement != ReplaceNever {
						t.Fatal("degenerate run: no samples delivered")
					}
					for _, cut := range cuts {
						got := normalizeState(runInterrupted(t, cfg, mkr, batchSize, cut))
						if !reflect.DeepEqual(got, want) {
							t.Errorf("cut at batch %d diverges from uninterrupted run: got={samples:%d traps:%d pairs:%d dropped:%d evicted:%d} want={samples:%d traps:%d pairs:%d dropped:%d evicted:%d}",
								cut, got.Samples, got.Traps, got.ReusePairs, got.Dropped, got.Evicted,
								want.Samples, want.Traps, want.ReusePairs, want.Dropped, want.Evicted)
						}
					}
				})
			}
		}
	}
}

// TestCheckpointRoundTripStable asserts Checkpoint is a pure function of
// profiler state: restoring a checkpoint and immediately checkpointing
// again must reproduce the identical blob.
func TestCheckpointRoundTripStable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SamplePeriod = 500
	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(cpumodel.Default())
	buf := make([]mem.Access, 256)
	r := trace.ZipfAccess(9, 0, 2000, 1.0, 20000)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			m.Execute(buf[:n])
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
	}
	blob := p.Checkpoint()
	p2, _, err := RestoreProfiler(blob)
	if err != nil {
		t.Fatal(err)
	}
	blob2 := p2.Checkpoint()
	if !bytes.Equal(blob, blob2) {
		t.Fatalf("restore+re-checkpoint changed the blob: %d bytes vs %d bytes", len(blob), len(blob2))
	}

	// And the restored session must project the same snapshot.
	s1 := normalizeState(p.Snapshot())
	s2 := normalizeState(p2.Snapshot())
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("snapshots diverge after restore")
	}
}

// TestCheckpointWithoutMachine covers profilers serialized before (or
// without) NewMachine: the restore succeeds and reports no machine.
func TestCheckpointWithoutMachine(t *testing.T) {
	p, err := NewProfiler(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p2, m2, err := RestoreProfiler(p.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	if m2 != nil {
		t.Fatal("restored a machine that was never attached")
	}
	if p2 == nil {
		t.Fatal("no profiler restored")
	}
}

// TestRestoreProfilerRejectsCorruptInput feeds RestoreProfiler malformed
// blobs: every truncation point of a valid checkpoint, a bad magic, an
// unknown version, trailing garbage and an inflated slice count must all
// produce descriptive errors — never a panic or a giant allocation.
func TestRestoreProfilerRejectsCorruptInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SamplePeriod = 300
	p, err := NewProfiler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMachine(cpumodel.Default())
	buf := make([]mem.Access, 256)
	r := trace.Cyclic(0, 128, 30000)
	for {
		n, rerr := r.Read(buf)
		if n > 0 {
			m.Execute(buf[:n])
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			t.Fatal(rerr)
		}
	}
	blob := p.Checkpoint()
	if _, _, err := RestoreProfiler(blob); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}

	for cut := 0; cut < len(blob); cut++ {
		if _, _, err := RestoreProfiler(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}

	bad := append([]byte(nil), blob...)
	bad[0] = 'X'
	if _, _, err := RestoreProfiler(bad); err == nil {
		t.Fatal("bad magic accepted")
	}

	bad = append([]byte(nil), blob...)
	bad[4] = 99 // version
	if _, _, err := RestoreProfiler(bad); err == nil {
		t.Fatal("unknown version accepted")
	}

	if _, _, err := RestoreProfiler(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}

	// Inflate the slot count declared right after the fixed-width
	// header (magic + version + config + rng + 8 counters + finished):
	// the decoder must reject it against the remaining length instead of
	// allocating.
	slotCountOff := 4 + 1 + (8 + 1 + 8 + 1 + 1 + 8 + 8 + 1 + 8 + 1 + 1 + 8) + 8 + 8*8 + 1
	bad = append([]byte(nil), blob...)
	for i := 0; i < 8; i++ {
		bad[slotCountOff+i] = 0xFF
	}
	if _, _, err := RestoreProfiler(bad); err == nil {
		t.Fatal("inflated slot count accepted")
	}
}
