package core

import (
	"context"
	"io"

	"repro/internal/cpumodel"
	"repro/internal/trace"
)

// RunWindowedContext is RunContext with an exactly-placed observation
// hook: observe receives the profiler's live Snapshot at every
// windowAccesses-access boundary of the stream, from the driving
// goroutine, between Execute batches — the one place Snapshot is legal.
// Batches are split precisely at boundaries, which is free of result
// skew: Execute is batch-split invariant, so the final lifetime Result
// is bit-identical to RunContext's on the same stream and config no
// matter how many windows were observed. observe's argument is a fresh
// Snapshot the callback owns.
//
// windowAccesses == 0 or a nil observe degrades to plain RunContext.
// A boundary landing exactly on the end of the stream is observed
// before the final Result is built.
func (p *Profiler) RunWindowedContext(ctx context.Context, r trace.Reader, costs cpumodel.Costs, windowAccesses uint64, observe func(*Result)) (*Result, error) {
	if windowAccesses == 0 || observe == nil {
		return p.RunContext(ctx, r, costs)
	}
	m := p.NewMachine(costs)
	buf := trace.BatchBuf()
	defer trace.ReleaseBatchBuf(buf)
	var sinceObs uint64
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := r.Read(buf)
		if n > 0 {
			batch := buf[:n]
			for len(batch) > 0 {
				k := uint64(len(batch))
				if room := windowAccesses - sinceObs; k > room {
					k = room
				}
				m.Execute(batch[:k])
				batch = batch[k:]
				sinceObs += k
				if sinceObs == windowAccesses {
					observe(p.Snapshot())
					sinceObs = 0
				}
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
	}
	m.Finish()
	return p.Result(), nil
}
