package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/cpu"
	"repro/internal/cpumodel"
	"repro/internal/debugreg"
	"repro/internal/mem"
	"repro/internal/pmu"
)

// Checkpoint format ("RDXC", version 1, big-endian):
//
//	magic    [4]byte "RDXC"
//	version  u8
//	config   fixed-width field sequence (see encodeConfig)
//	rng      u64 splitmix64 state
//	counters seenFull, cold, samples, armed, dropped, evicted,
//	         duplicate, traps (u64 each), finished (u8)
//	slots    u64 count, then {block, usePC, c0} u64 triples
//	times    u64 count + u64 values
//	pcs      u64 count + {usePC, reusePC} u64 pairs
//	censored / endCensored  u64 count + u64 values
//	pmu      pmu.State fields (SkidLeft as two's-complement u64)
//	drs      u64 slot count, {addr u64, width u8, kind u8, tag u64} per
//	         slot, armed bitmap (u8 per slot), traps, arms
//	machine  presence u8; if 1: accessIndex, executed, account
//	         (5 cost constants + 5 event counters, u64 each)
//
// Every field the profiler's future behaviour depends on is carried
// bit-exactly (floats via IEEE-754 bits), which is what makes
// checkpoint → restore → continue indistinguishable from an
// uninterrupted run. Decoding is defensive: slice counts are validated
// against the bytes actually remaining, so corrupt or adversarial input
// fails fast instead of over-allocating.

var checkpointMagic = [4]byte{'R', 'D', 'X', 'C'}

// checkpointVersion is bumped whenever the serialized layout changes.
const checkpointVersion = 1

// maxCheckpointSlots bounds the watchpoint-slot counts a checkpoint may
// declare, far above any real debug-register file.
const maxCheckpointSlots = 1 << 20

// Checkpoint serializes the profiler's complete state — configuration,
// RNG positions, per-slot bookkeeping, observation logs, PMU and
// debug-register state, and (when a machine is attached) the machine's
// execution state — into a self-contained binary blob. Restoring it
// with RestoreProfiler and continuing the run produces results
// bit-identical to never having stopped.
//
// Checkpoint must not run concurrently with the machine executing
// accesses: call it between Execute batches, like Snapshot.
func (p *Profiler) Checkpoint() []byte {
	return p.CheckpointInto(nil)
}

// CheckpointInto is Checkpoint writing into dst's backing array (grown
// as needed), so periodic checkpointing can recycle blob buffers
// instead of allocating each one. The returned slice is the checkpoint;
// dst's previous contents are overwritten.
func (p *Profiler) CheckpointInto(dst []byte) []byte {
	e := ckptEncoder{buf: dst[:0]}
	e.bytes(checkpointMagic[:])
	e.u8(checkpointVersion)
	e.config(p.cfg)
	e.u64(p.rng.State())

	e.u64(p.seenFull)
	e.u64(p.cold)
	e.u64(p.samples)
	e.u64(p.armed)
	e.u64(p.dropped)
	e.u64(p.evicted)
	e.u64(p.duplicate)
	e.u64(p.traps)
	e.bool(p.finished)

	e.u64(uint64(len(p.slots)))
	for _, s := range p.slots {
		e.u64(uint64(s.block))
		e.u64(uint64(s.usePC))
		e.u64(s.c0)
	}
	e.u64slice(p.times)
	e.u64(uint64(len(p.pcs)))
	for _, k := range p.pcs {
		e.u64(uint64(k.UsePC))
		e.u64(uint64(k.ReusePC))
	}
	e.u64slice(p.censored)
	e.u64slice(p.endCensored)

	ps := p.pmuUnit.State()
	e.u64(ps.Count)
	e.u64(ps.AllCount)
	e.u64(ps.ToNext)
	e.u64(ps.Samples)
	e.u64(uint64(ps.SkidLeft))
	e.bool(ps.SkidArmed)
	e.u64(ps.RNG)

	ds := p.drs.State()
	e.u64(uint64(len(ds.Slots)))
	for _, w := range ds.Slots {
		e.u64(uint64(w.Addr))
		e.u8(w.Width)
		e.u8(uint8(w.Kind))
		e.u64(w.Tag)
	}
	for _, a := range ds.Armed {
		e.bool(a)
	}
	e.u64(ds.Traps)
	e.u64(ds.Arms)

	if p.machine != nil {
		e.bool(true)
		ms := p.machine.State()
		e.u64(ms.AccessIndex)
		e.u64(ms.Executed)
		e.u64(ms.Account.Costs.AccessCycles)
		e.u64(ms.Account.Costs.SampleCycles)
		e.u64(ms.Account.Costs.TrapCycles)
		e.u64(ms.Account.Costs.ArmCycles)
		e.u64(ms.Account.Costs.InstrumentCycles)
		e.u64(ms.Account.Accesses)
		e.u64(ms.Account.Samples)
		e.u64(ms.Account.Traps)
		e.u64(ms.Account.Arms)
		e.u64(ms.Account.Instrumented)
	} else {
		e.bool(false)
	}
	return e.buf
}

// RestoreProfiler reconstructs a profiler (and its machine, when one was
// attached at checkpoint time) from a Checkpoint blob. The returned
// machine, if non-nil, is wired to the profiler's PMU and debug
// registers and ready for further Execute calls.
func RestoreProfiler(data []byte) (*Profiler, *cpu.Machine, error) {
	d := ckptDecoder{b: data}
	var magic [4]byte
	d.bytes(magic[:])
	if d.err == nil && magic != checkpointMagic {
		return nil, nil, fmt.Errorf("core: bad checkpoint magic %q, want %q", magic, checkpointMagic)
	}
	if v := d.u8(); d.err == nil && v != checkpointVersion {
		return nil, nil, fmt.Errorf("core: unsupported checkpoint version %d (have %d)", v, checkpointVersion)
	}
	cfg, err := d.config()
	if err != nil {
		return nil, nil, err
	}
	p, err := NewProfiler(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("core: checkpoint config invalid: %w", err)
	}
	p.rng.Seed(d.u64())

	p.seenFull = d.u64()
	p.cold = d.u64()
	p.samples = d.u64()
	p.armed = d.u64()
	p.dropped = d.u64()
	p.evicted = d.u64()
	p.duplicate = d.u64()
	p.traps = d.u64()
	p.finished = d.bool()

	nSlots := d.count(24, maxCheckpointSlots)
	if d.err == nil && int(nSlots) != cfg.NumWatchpoints {
		return nil, nil, fmt.Errorf("core: checkpoint has %d slot records, config declares %d watchpoints", nSlots, cfg.NumWatchpoints)
	}
	for i := uint64(0); i < nSlots && d.err == nil; i++ {
		p.slots[i] = slotState{
			block: mem.Addr(d.u64()),
			usePC: mem.Addr(d.u64()),
			c0:    d.u64(),
		}
	}
	p.times = d.u64slice()
	nPCs := d.count(16, math.MaxInt)
	if d.err == nil && nPCs != uint64(len(p.times)) {
		return nil, nil, fmt.Errorf("core: checkpoint has %d PC pairs for %d reuse times", nPCs, len(p.times))
	}
	p.pcs = make([]PairKey, 0, nPCs)
	for i := uint64(0); i < nPCs && d.err == nil; i++ {
		p.pcs = append(p.pcs, PairKey{UsePC: mem.Addr(d.u64()), ReusePC: mem.Addr(d.u64())})
	}
	p.censored = d.u64slice()
	p.endCensored = d.u64slice()

	var ps pmu.State
	ps.Count = d.u64()
	ps.AllCount = d.u64()
	ps.ToNext = d.u64()
	ps.Samples = d.u64()
	ps.SkidLeft = int64(d.u64())
	ps.SkidArmed = d.bool()
	ps.RNG = d.u64()
	p.pmuUnit.SetState(ps)

	nDRS := d.count(19, maxCheckpointSlots)
	if d.err == nil && int(nDRS) != cfg.NumWatchpoints {
		return nil, nil, fmt.Errorf("core: checkpoint has %d debug-register records, config declares %d watchpoints", nDRS, cfg.NumWatchpoints)
	}
	ds := debugreg.FileState{
		Slots: make([]debugreg.Watchpoint, nDRS),
		Armed: make([]bool, nDRS),
	}
	for i := range ds.Slots {
		if d.err != nil {
			break
		}
		ds.Slots[i] = debugreg.Watchpoint{
			Addr:  mem.Addr(d.u64()),
			Width: d.u8(),
			Kind:  debugreg.WatchKind(d.u8()),
			Tag:   d.u64(),
		}
	}
	for i := range ds.Armed {
		ds.Armed[i] = d.bool()
	}
	ds.Traps = d.u64()
	ds.Arms = d.u64()
	if d.err == nil {
		if err := p.drs.SetState(ds); err != nil {
			return nil, nil, fmt.Errorf("core: checkpoint debug-register state: %w", err)
		}
	}

	var machine *cpu.Machine
	if d.bool() && d.err == nil {
		var ms cpu.MachineState
		ms.AccessIndex = d.u64()
		ms.Executed = d.u64()
		ms.Account.Costs = cpumodel.Costs{
			AccessCycles:     d.u64(),
			SampleCycles:     d.u64(),
			TrapCycles:       d.u64(),
			ArmCycles:        d.u64(),
			InstrumentCycles: d.u64(),
		}
		ms.Account.Accesses = d.u64()
		ms.Account.Samples = d.u64()
		ms.Account.Traps = d.u64()
		ms.Account.Arms = d.u64()
		ms.Account.Instrumented = d.u64()
		if d.err == nil {
			machine = p.NewMachine(ms.Account.Costs)
			machine.SetState(ms)
		}
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if len(d.b) != 0 {
		return nil, nil, fmt.Errorf("core: %d trailing bytes after checkpoint", len(d.b))
	}
	return p, machine, nil
}

// ckptEncoder appends big-endian fixed-width fields to a buffer.
type ckptEncoder struct {
	buf []byte
}

func (e *ckptEncoder) bytes(b []byte) { e.buf = append(e.buf, b...) }
func (e *ckptEncoder) u8(v uint8)     { e.buf = append(e.buf, v) }
func (e *ckptEncoder) u64(v uint64)   { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }
func (e *ckptEncoder) f64(v float64)  { e.u64(math.Float64bits(v)) }

func (e *ckptEncoder) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *ckptEncoder) u64slice(s []uint64) {
	e.u64(uint64(len(s)))
	for _, v := range s {
		e.u64(v)
	}
}

func (e *ckptEncoder) config(c Config) {
	e.u64(c.SamplePeriod)
	e.bool(c.RandomizePeriod)
	e.u64(uint64(c.NumWatchpoints))
	e.u8(c.WatchWidth)
	e.u8(uint8(c.Granularity))
	e.u64(uint64(c.Replacement))
	e.f64(c.ReplaceProb)
	e.u8(uint8(c.Event))
	e.u64(uint64(c.Skid))
	e.bool(c.ConvertDistances)
	e.bool(c.BiasCorrection)
	e.u64(c.Seed)
}

// ckptDecoder consumes fields from a buffer, latching the first error;
// subsequent reads return zero values so callers can decode a whole
// record and check d.err once.
type ckptDecoder struct {
	b   []byte
	err error
}

func (d *ckptDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("core: checkpoint truncated")
	}
}

func (d *ckptDecoder) bytes(dst []byte) {
	if d.err != nil {
		return
	}
	if len(d.b) < len(dst) {
		d.fail()
		return
	}
	copy(dst, d.b[:len(dst)])
	d.b = d.b[len(dst):]
}

func (d *ckptDecoder) u8() uint8 {
	if d.err != nil || len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *ckptDecoder) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *ckptDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *ckptDecoder) bool() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("core: checkpoint corrupt: invalid boolean")
		}
		return false
	}
}

// count reads a slice length and validates it against the bytes actually
// remaining (elemSize per element) and an absolute cap, so a corrupt
// length can never trigger a huge allocation.
func (d *ckptDecoder) count(elemSize int, max uint64) uint64 {
	n := d.u64()
	if d.err != nil {
		return 0
	}
	if n > max || n > uint64(len(d.b))/uint64(elemSize) {
		d.err = fmt.Errorf("core: checkpoint corrupt: count %d exceeds remaining data", n)
		return 0
	}
	return n
}

func (d *ckptDecoder) u64slice() []uint64 {
	n := d.count(8, math.MaxInt)
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]uint64, n)
	for i := range s {
		s[i] = d.u64()
	}
	return s
}

func (d *ckptDecoder) config() (Config, error) {
	var c Config
	c.SamplePeriod = d.u64()
	c.RandomizePeriod = d.bool()
	nwp := d.u64()
	c.WatchWidth = d.u8()
	c.Granularity = mem.Granularity(d.u8())
	c.Replacement = ReplacementPolicy(d.u64())
	c.ReplaceProb = d.f64()
	c.Event = pmu.EventSelect(d.u8())
	c.Skid = int(d.u64())
	c.ConvertDistances = d.bool()
	c.BiasCorrection = d.bool()
	c.Seed = d.u64()
	if d.err != nil {
		return Config{}, d.err
	}
	if nwp == 0 || nwp > maxCheckpointSlots {
		return Config{}, fmt.Errorf("core: checkpoint corrupt: %d watchpoints", nwp)
	}
	c.NumWatchpoints = int(nwp)
	return c, nil
}
