// Package core implements RDX, the paper's contribution: a
// reuse-distance profiler that performs no instrumentation, combining
// PMU overflow sampling (to pick random accesses and capture their
// effective addresses) with hardware debug registers (to catch the next
// access to a sampled address) and converting the measured reuse times
// into reuse distances via footprint theory.
package core

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/pmu"
)

// ReplacementPolicy decides what RDX does with a new PMU sample when all
// debug registers are armed.
type ReplacementPolicy int

const (
	// ReplaceProbabilistic admits a new sample arriving at a full
	// register file with fixed probability Config.ReplaceProb, evicting
	// a uniformly random armed watchpoint. The constant rate balances
	// arming throughput (always-replace's strength) against letting
	// long-pending watchpoints survive to completion (never-replace's
	// strength); the evictions it does perform are reported as
	// right-censored observations and redistributed, so they cost
	// variance rather than bias. This is the default (ablation A1
	// compares all four policies).
	ReplaceProbabilistic ReplacementPolicy = iota
	// ReplaceReservoir admits the new sample with probability k/(i+k)
	// (Vitter's algorithm R over the i samples seen while full),
	// evicting a uniformly random armed watchpoint. The armed set stays
	// a uniform sample of sampled addresses, but the decaying admission
	// rate means only O(k·log(samples)) watchpoints ever arm.
	ReplaceReservoir
	// ReplaceAlways always evicts a random armed watchpoint for the new
	// sample: maximum arming throughput, but watchpoints pending longer
	// than a few periods almost never survive.
	ReplaceAlways
	// ReplaceNever drops new samples while all registers are armed:
	// every armed watchpoint completes, but arming stalls whenever the
	// file is clogged by long-pending watchpoints.
	ReplaceNever
	// ReplaceHybrid dedicates register 0 as an always-replace express
	// lane — every sample arriving at a full file evicts it — while the
	// remaining registers hold their watchpoints until completion.
	// Short reuse times (shorter than the sampling period) resolve at
	// the full sampling rate through the express lane; the patient
	// registers complete the long reuse times that give the censored
	// express mass somewhere to be redistributed.
	ReplaceHybrid
)

// String names the policy.
func (p ReplacementPolicy) String() string {
	switch p {
	case ReplaceProbabilistic:
		return "probabilistic"
	case ReplaceReservoir:
		return "reservoir"
	case ReplaceAlways:
		return "always"
	case ReplaceNever:
		return "never"
	case ReplaceHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("ReplacementPolicy(%d)", int(p))
	}
}

// Config configures an RDX profiler. The zero value is not valid; use
// DefaultConfig as a starting point.
type Config struct {
	// SamplePeriod is the mean number of memory accesses between PMU
	// samples. The paper's featherlight operating point is tens of
	// thousands to millions of accesses per sample.
	SamplePeriod uint64
	// RandomizePeriod jitters inter-sample gaps uniformly in
	// [P/2, 3P/2) to avoid resonating with periodic access patterns.
	RandomizePeriod bool
	// NumWatchpoints is the number of hardware debug registers available
	// (4 on x86).
	NumWatchpoints int
	// WatchWidth is the width in bytes of each armed watchpoint (max 8,
	// the hardware limit).
	WatchWidth uint8
	// Granularity is the block size at which reuse is reported. When it
	// exceeds the watchpoint width, a trap on the watched word is taken
	// as a reuse of its enclosing block (the paper's same-word
	// approximation for cache-line granularity).
	Granularity mem.Granularity
	// Replacement is the watchpoint replacement policy.
	Replacement ReplacementPolicy
	// ReplaceProb is the per-sample admission probability used by
	// ReplaceProbabilistic (ignored by other policies).
	ReplaceProb float64
	// Event selects which accesses the PMU samples (reuse time is always
	// measured in all accesses).
	Event pmu.EventSelect
	// Skid is the maximum sample skid in accesses (0 = precise/PEBS).
	Skid int
	// ConvertDistances enables the footprint-theory conversion from
	// reuse times to reuse distances. When false, Result.ReuseDistance
	// reports raw reuse times (ablation A2's strawman).
	ConvertDistances bool
	// BiasCorrection weights each completed reuse pair by the inverse of
	// its watchpoint's survival probability against replacement.
	// Replacement censors long reuse times (the watchpoint is evicted
	// before the reuse arrives); the profiler tracks the exact per-slot
	// eviction risk of every sample that arrived while the register file
	// was full, so completed observations can be reweighted to represent
	// their censored peers (ablation A5 measures the effect).
	BiasCorrection bool
	// Seed makes the profiler's randomness (period jitter, reservoir)
	// deterministic.
	Seed uint64
}

// DefaultConfig returns the default operating point: 64K-access mean
// sampling period with randomization (the paper's featherlight regime),
// 4 watchpoints of width 8, word granularity, probabilistic replacement
// with censored-observation redistribution.
func DefaultConfig() Config {
	return Config{
		SamplePeriod:     64 << 10,
		RandomizePeriod:  true,
		NumWatchpoints:   4,
		WatchWidth:       8,
		Granularity:      mem.WordGranularity,
		Replacement:      ReplaceProbabilistic,
		ReplaceProb:      0.1,
		Event:            pmu.AllAccesses,
		ConvertDistances: true,
		BiasCorrection:   true,
		Seed:             1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.SamplePeriod == 0 {
		return fmt.Errorf("core: SamplePeriod must be positive")
	}
	if c.NumWatchpoints <= 0 {
		return fmt.Errorf("core: NumWatchpoints must be positive, got %d", c.NumWatchpoints)
	}
	switch c.WatchWidth {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("core: WatchWidth must be 1, 2, 4 or 8, got %d", c.WatchWidth)
	}
	if c.Skid < 0 {
		return fmt.Errorf("core: Skid must be non-negative, got %d", c.Skid)
	}
	if c.Replacement == ReplaceProbabilistic && (c.ReplaceProb < 0 || c.ReplaceProb > 1) {
		return fmt.Errorf("core: ReplaceProb must be in [0,1], got %v", c.ReplaceProb)
	}
	return nil
}
