package core

import (
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/histogram"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestProfileThreadsMatchesSingleThread(t *testing.T) {
	// Four threads each running the same kernel over disjoint regions
	// must merge to the same histogram shape as one thread running it.
	const n = 200000
	mkThread := func(i int) trace.Reader {
		return trace.Cyclic(mem.Addr(i)<<40, 700, n)
	}
	cfg := testConfig(500)
	multi, err := ProfileThreads([]trace.Reader{mkThread(0), mkThread(1), mkThread(2), mkThread(3)}, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	single := runRDX(t, cfg, mkThread(0))
	if acc := histogram.Accuracy(multi.ReuseDistance, single.ReuseDistance); acc < 0.95 {
		t.Errorf("merged histogram diverges from per-thread shape: accuracy %v", acc)
	}
	if multi.Accesses != 4*n {
		t.Errorf("merged accesses = %d, want %d", multi.Accesses, 4*n)
	}
	if len(multi.Threads) != 4 {
		t.Errorf("threads = %d", len(multi.Threads))
	}
	if multi.ReusePairs == 0 || multi.Samples == 0 {
		t.Error("merged counters empty")
	}
}

func TestProfileThreadsAgainstExactPerThread(t *testing.T) {
	// Merged multi-thread measurement vs merged per-thread ground truth.
	const n = 300000
	mk := func(i int) trace.Reader {
		return trace.ZipfAccess(uint64(i)+3, mem.Addr(i)<<40, 5000, 1.0, n)
	}
	cfg := testConfig(400)
	multi, err := ProfileThreads([]trace.Reader{mk(0), mk(1)}, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	gtMerged := histogram.New()
	for i := 0; i < 2; i++ {
		gt, err := exact.Measure(mk(i), mem.WordGranularity)
		if err != nil {
			t.Fatal(err)
		}
		gtMerged.AddHistogram(gt.ReuseDistance())
	}
	if acc := histogram.Accuracy(multi.ReuseDistance, gtMerged); acc < 0.85 {
		t.Errorf("multi-thread accuracy = %v, want >= 0.85", acc)
	}
}

func TestProfileThreadsHeterogeneous(t *testing.T) {
	// A streaming thread plus a cache-resident thread: the merged
	// histogram must contain both cold mass and short-distance mass.
	const n = 200000
	cfg := testConfig(500)
	multi, err := ProfileThreads([]trace.Reader{
		trace.Sequential(0, n, 8),   // all cold
		trace.Cyclic(1<<40, 100, n), // all short reuses
	}, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	rd := multi.ReuseDistance
	if rd.Cold() == 0 {
		t.Error("merged histogram lost the streaming thread's cold mass")
	}
	if rd.TotalFinite() == 0 {
		t.Error("merged histogram lost the hot thread's reuse mass")
	}
	coldFrac := rd.Cold() / rd.Total()
	if math.Abs(coldFrac-0.5) > 0.15 {
		t.Errorf("cold fraction = %v, want ~0.5 (half the threads stream)", coldFrac)
	}
}

func TestProfileThreadsMergedAttribution(t *testing.T) {
	const n = 200000
	cfg := testConfig(300)
	multi, err := ProfileThreads([]trace.Reader{
		trace.Tag(0x1000, trace.Cyclic(0, 64, n)),
		trace.Tag(0x2000, trace.Cyclic(1<<40, 64, n)),
	}, cfg, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	seen := map[mem.Addr]bool{}
	for _, p := range multi.Attribution {
		seen[p.Pair.UsePC] = true
	}
	if !seen[0x1000] || !seen[0x2000] {
		t.Errorf("merged attribution missing a thread's pairs: %+v", multi.Attribution)
	}
}

func TestProfileThreadsErrors(t *testing.T) {
	if _, err := ProfileThreads(nil, DefaultConfig(), cpumodel.Default()); err == nil {
		t.Error("empty stream list accepted")
	}
	if _, err := ProfileThreads([]trace.Reader{trace.Cyclic(0, 8, 100)}, Config{}, cpumodel.Default()); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestCrossThreadReuseInvisible(t *testing.T) {
	// Documented limitation: a block used by thread A and reused only by
	// thread B is never observed as a reuse (per-thread debug
	// registers). Both threads see their own stream as streaming.
	const n = 100000
	// Thread A touches even words once; thread B touches the same words
	// afterwards. Within each thread no address repeats.
	a := trace.Sequential(0, n, 8)
	b := trace.Sequential(0, n, 8) // same addresses, different thread
	multi, err := ProfileThreads([]trace.Reader{a, b}, testConfig(500), cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	if multi.ReusePairs != 0 {
		t.Errorf("cross-thread reuses observed (%d pairs); per-thread contexts should miss them", multi.ReusePairs)
	}
}

func TestMultiResultTimeOverheadIsWorstThread(t *testing.T) {
	const n = 200000
	multi, err := ProfileThreads([]trace.Reader{
		trace.Cyclic(0, 64, n),
		trace.Cyclic(1<<40, 64, n/10), // short thread
	}, testConfig(500), cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for _, r := range multi.Threads {
		if oh := r.TimeOverhead(); oh > worst {
			worst = oh
		}
	}
	if multi.TimeOverhead() != worst {
		t.Errorf("TimeOverhead = %v, want max per-thread %v", multi.TimeOverhead(), worst)
	}
}

func TestProfileThreadsPoolBoundsWorkers(t *testing.T) {
	// Far more streams than workers: the pool must multiplex them all
	// and produce results identical to any other pool size (per-thread
	// seeds derive from the stream index alone).
	const n, streams = 30000, 32
	mk := func() []trace.Reader {
		rs := make([]trace.Reader, streams)
		for i := range rs {
			rs[i] = trace.ZipfAccess(uint64(i)+1, mem.Addr(i)<<40, 800, 1.0, n)
		}
		return rs
	}
	cfg := testConfig(500)
	narrow, err := ProfileThreadsPool(mk(), cfg, cpumodel.Default(), 2)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := ProfileThreadsPool(mk(), cfg, cpumodel.Default(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(narrow.Threads) != streams || len(wide.Threads) != streams {
		t.Fatalf("thread results = %d/%d, want %d", len(narrow.Threads), len(wide.Threads), streams)
	}
	if narrow.Accesses != streams*n {
		t.Fatalf("accesses = %d, want %d", narrow.Accesses, streams*n)
	}
	// Per-thread results are fully deterministic, so pool size must not
	// change a single byte of them.
	for i := range narrow.Threads {
		if !reflect.DeepEqual(narrow.Threads[i], wide.Threads[i]) {
			t.Fatalf("thread %d result depends on pool size", i)
		}
	}
	if !reflect.DeepEqual(narrow.ReuseDistance, wide.ReuseDistance) {
		t.Fatal("merged histogram depends on pool size")
	}
}

// failingReader yields `good` accesses, then fails with a permanent
// error — a stand-in for a stream whose source (file, socket) dies
// mid-run.
type failingReader struct {
	good int
	err  error
}

func (f *failingReader) Read(dst []mem.Access) (int, error) {
	n := 0
	for n < len(dst) && f.good > 0 {
		dst[n] = mem.Access{Addr: mem.Addr(n) * 8, Size: 8}
		n++
		f.good--
	}
	if f.good == 0 && n < len(dst) {
		return n, f.err
	}
	return n, nil
}

func TestProfileThreadsPoolEdgeCases(t *testing.T) {
	cfg := testConfig(500)
	costs := cpumodel.Default()

	t.Run("no streams", func(t *testing.T) {
		if _, err := ProfileThreadsPool(nil, cfg, costs, 4); err == nil {
			t.Error("empty stream slice accepted")
		}
		if _, err := ProfileThreadsPool([]trace.Reader{}, cfg, costs, 4); err == nil {
			t.Error("zero-length stream slice accepted")
		}
	})

	t.Run("workers non-positive selects GOMAXPROCS", func(t *testing.T) {
		mk := func() []trace.Reader {
			return []trace.Reader{
				trace.Cyclic(0, 300, 50000),
				trace.Cyclic(1<<40, 300, 50000),
			}
		}
		for _, w := range []int{0, -1, -100} {
			got, err := ProfileThreadsPool(mk(), cfg, costs, w)
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			want, err := ProfileThreadsPool(mk(), cfg, costs, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.ReuseDistance, want.ReuseDistance) {
				t.Errorf("workers=%d: result differs from explicit pool", w)
			}
		}
	})

	t.Run("stream error surfaces without deadlock", func(t *testing.T) {
		streamErr := errors.New("stream died mid-run")
		streams := []trace.Reader{
			trace.Cyclic(0, 300, 30000),
			&failingReader{good: 10000, err: streamErr},
			trace.Cyclic(1<<40, 300, 30000),
			trace.Cyclic(2<<40, 300, 30000),
		}
		done := make(chan struct{})
		var res *MultiResult
		var err error
		go func() {
			defer close(done)
			res, err = ProfileThreadsPool(streams, cfg, costs, 2)
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("ProfileThreadsPool deadlocked on a failing stream")
		}
		if err == nil {
			t.Fatalf("failing stream produced no error (res=%v)", res)
		}
		if !errors.Is(err, streamErr) {
			t.Errorf("error does not wrap the stream's error: %v", err)
		}
		if !strings.Contains(err.Error(), "thread 1") {
			t.Errorf("error does not name the failing thread: %v", err)
		}
	})
}

// endless is a Reader that never returns EOF: cancellation tests use it
// to prove ProfileThreads can only be stopped by its context.
type endless struct{ next uint64 }

func (e *endless) Read(buf []mem.Access) (int, error) {
	for i := range buf {
		buf[i] = mem.Access{Addr: mem.Addr(e.next % 4096 * 8), PC: 0x400000, Kind: mem.Load, Size: 8}
		e.next++
	}
	return len(buf), nil
}

func TestProfileThreadsContextCancelPrompt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ProfileThreadsContext(ctx, []trace.Reader{&endless{}, &endless{}}, testConfig(500), cpumodel.Default())
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the workers get deep into the endless streams
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not stop an endless profile")
	}
}

func TestProfileThreadsContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ProfileThreadsContext(ctx, []trace.Reader{&endless{}}, testConfig(500), cpumodel.Default()); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

func TestThreadConfigDerivation(t *testing.T) {
	cfg := testConfig(500)
	if got := ThreadConfig(cfg, 0); got != cfg {
		t.Errorf("thread 0 must run the base config: %+v vs %+v", got, cfg)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 8; i++ {
		tc := ThreadConfig(cfg, i)
		if seen[tc.Seed] {
			t.Errorf("thread %d reuses a seed", i)
		}
		seen[tc.Seed] = true
		tc.Seed = cfg.Seed
		if tc != cfg {
			t.Errorf("thread %d changed more than the seed: %+v", i, tc)
		}
	}
}

// TestMergerIncrementalMatchesBatch proves the exported Merger is the
// same merge MergeResults performs: adding results one at a time (as a
// remote dispatcher does) yields a bit-identical MultiResult.
func TestMergerIncrementalMatchesBatch(t *testing.T) {
	cfg := testConfig(300)
	var results []*Result
	for i := 0; i < 4; i++ {
		p, err := NewProfiler(ThreadConfig(cfg, i))
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(trace.ZipfAccess(uint64(50+i), mem.Addr(uint64(i)<<40), 2048, 1.0, 60000), cpumodel.Default())
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, r)
	}
	want := MergeResults(results)
	g := NewMerger()
	for _, r := range results {
		g.Add(r)
	}
	got := g.Result()
	if !reflect.DeepEqual(got.ReuseDistance.Snapshot(), want.ReuseDistance.Snapshot()) {
		t.Error("merged reuse-distance histograms differ")
	}
	if !reflect.DeepEqual(got.Attribution, want.Attribution) {
		t.Error("merged attributions differ")
	}
	if got.Accesses != want.Accesses || got.Samples != want.Samples || got.ReusePairs != want.ReusePairs {
		t.Error("merged counters differ")
	}
	for i := range want.Threads {
		if got.Threads[i] != want.Threads[i] {
			t.Error("thread results not retained in order")
		}
	}
}

func TestMergerMisuse(t *testing.T) {
	g := NewMerger()
	g.Result()
	for _, f := range []func(){func() { g.Add(&Result{}) }, func() { g.Result() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Merger misuse after Result did not panic")
				}
			}()
			f()
		}()
	}
}
