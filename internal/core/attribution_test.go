package core

import (
	"testing"

	"repro/internal/cpumodel"
	"repro/internal/exact"
	"repro/internal/mem"
	"repro/internal/trace"
)

func TestAttributionSeparatesComponents(t *testing.T) {
	// Two components at distinct PCs with very different locality: a hot
	// small loop and a large cyclic sweep. Attribution must split them
	// and order their distances correctly.
	const n = 400000
	mk := func() trace.Reader {
		return trace.Limit(trace.Mix(3,
			[]trace.Reader{
				trace.Tag(0x1000, trace.Cyclic(0, 64, n/2)),
				trace.Tag(0x2000, trace.Cyclic(1<<30, 20000, n/2)),
			},
			[]float64{1, 1}), n)
	}
	cfg := testConfig(200)
	res := runRDX(t, cfg, mk())
	if len(res.Attribution) < 2 {
		t.Fatalf("attribution has %d pairs, want >= 2", len(res.Attribution))
	}
	var hot, big *PairStat
	for i := range res.Attribution {
		p := &res.Attribution[i]
		switch p.Pair {
		case PairKey{UsePC: 0x1000, ReusePC: 0x1000}:
			hot = p
		case PairKey{UsePC: 0x2000, ReusePC: 0x2000}:
			big = p
		}
	}
	if hot == nil || big == nil {
		t.Fatalf("expected same-site pairs for both components; got %+v", res.Attribution.TopWeight(5))
	}
	if hot.MeanDistance >= big.MeanDistance {
		t.Errorf("hot loop mean distance %v should be far below big sweep %v",
			hot.MeanDistance, big.MeanDistance)
	}
	if big.MeanDistance < 10000 || big.MeanDistance > 40000 {
		t.Errorf("big sweep mean distance = %v, want ~20000", big.MeanDistance)
	}
	if hot.MeanDistance > 200 {
		t.Errorf("hot loop mean distance = %v, want ~63", hot.MeanDistance)
	}
}

func TestAttributionMatchesExactPairs(t *testing.T) {
	// The sampled attribution's per-pair mean distances must agree with
	// exhaustive attribution within sampling error.
	const n = 400000
	mk := func() trace.Reader {
		return trace.Limit(trace.Mix(7,
			[]trace.Reader{
				trace.Tag(0x1000, trace.Cyclic(0, 500, n/2)),
				trace.Tag(0x2000, trace.Cyclic(1<<30, 9000, n/2)),
			},
			[]float64{1, 1}), n)
	}
	res := runRDX(t, testConfig(200), mk())

	gt := exact.New(mem.WordGranularity, exact.WithAttribution())
	if err := trace.ForEach(mk(), func(a mem.Access) bool { gt.Observe(a); return true }); err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Attribution.TopWeight(2) {
		gtAgg := gt.Pairs()[exact.PairKey{UsePC: p.Pair.UsePC, ReusePC: p.Pair.ReusePC}]
		if gtAgg == nil {
			t.Fatalf("pair %+v missing from exact attribution", p.Pair)
		}
		gtMean := gtAgg.MeanDistance()
		if p.MeanDistance < gtMean*0.5 || p.MeanDistance > gtMean*2 {
			t.Errorf("pair %+v mean distance %v vs exact %v (want within 2x)",
				p.Pair, p.MeanDistance, gtMean)
		}
	}
}

func TestAttributionWorstLocality(t *testing.T) {
	const n = 300000
	r := trace.Limit(trace.Mix(5,
		[]trace.Reader{
			trace.Tag(0x1000, trace.Cyclic(0, 32, n/2)),
			trace.Tag(0x2000, trace.Cyclic(1<<30, 8000, n/2)),
		},
		[]float64{1, 1}), n)
	res := runRDX(t, testConfig(300), r)
	worst := res.Attribution.WorstLocality(1, 0)
	if len(worst) != 1 {
		t.Fatalf("WorstLocality returned %d pairs", len(worst))
	}
	if worst[0].Pair.UsePC != 0x2000 {
		t.Errorf("worst-locality pair = %+v, want the big sweep (0x2000)", worst[0].Pair)
	}
	// minWeight filter excludes everything when set absurdly high.
	if got := res.Attribution.WorstLocality(5, 1e18); len(got) != 0 {
		t.Errorf("WorstLocality with huge minWeight returned %d pairs", len(got))
	}
}

func TestAttributionCrossSitePairs(t *testing.T) {
	// Stencil kernels reuse across sites: the (x+1,y) load (site 2) is
	// reused as the (x,y) load (site 0) one iteration later. Attribution
	// must surface cross-site pairs, not only same-site ones.
	cfg := testConfig(50)
	res := runRDX(t, cfg, trace.Tag(0x1000, trace.Stencil2D(0, 64, 512, 1)))
	cross := 0
	for _, p := range res.Attribution {
		if p.Pair.UsePC != p.Pair.ReusePC {
			cross++
		}
	}
	if cross == 0 {
		t.Errorf("no cross-site pairs in stencil attribution: %+v", res.Attribution.TopWeight(8))
	}
}

func TestAttributionEmptyForStreaming(t *testing.T) {
	res := runRDX(t, testConfig(500), trace.Sequential(0, 100000, 8))
	if len(res.Attribution) != 0 {
		t.Errorf("streaming produced %d attribution pairs, want 0", len(res.Attribution))
	}
}

func TestHistogramForPair(t *testing.T) {
	const n = 200000
	r := trace.Limit(trace.Mix(5,
		[]trace.Reader{
			trace.Tag(0x1000, trace.Cyclic(0, 64, n/2)),
			trace.Tag(0x2000, trace.Cyclic(1<<30, 5000, n/2)),
		},
		[]float64{1, 1}), n)
	p, err := NewProfiler(testConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(r, cpumodel.Default())
	if err != nil {
		t.Fatal(err)
	}
	key := PairKey{UsePC: 0x1000, ReusePC: 0x1000}
	h := histogramForPair(p.times, resultWeightsForTest(p), p.pcs, key, float64(p.cfg.SamplePeriod), func(t uint64) uint64 { return t })
	if h.Total() == 0 {
		t.Fatal("per-pair histogram empty")
	}
	if h.Total() >= res.ReuseTime.Total() {
		t.Error("per-pair histogram should be a strict subset of the full histogram")
	}
}

// resultWeightsForTest reconstructs unit weights (Result consumed the
// real ones); adequate for exercising histogramForPair.
func resultWeightsForTest(p *Profiler) []float64 {
	w := make([]float64, len(p.times))
	for i := range w {
		w[i] = 1
	}
	return w
}
